#!/usr/bin/env python3
"""Plot the paper figures from the bench CSV exports.

Run the bench binaries first (they write ./results/*.csv), then:

    python3 results/plot_figures.py [out_dir]

Produces one PNG per available figure. Requires matplotlib; degrades to a
text summary when it is not installed (the C++ benches already print every
number, so plotting is a convenience, not a dependency).
"""
import csv
import pathlib
import sys


def read(path):
    with open(path) as f:
        rows = list(csv.DictReader(f))
    return rows


def main():
    results = pathlib.Path(__file__).resolve().parent
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else results
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; bench tables already contain "
              "all figure data.")
        return 0

    schemes = ["pensieve", "nd", "a_ensemble", "v_ensemble", "buffer_based"]

    fig1 = results / "fig1_in_distribution.csv"
    if fig1.exists():
        rows = read(fig1)
        datasets = sorted({r["dataset"] for r in rows})
        fig, ax = plt.subplots(figsize=(9, 4))
        width = 0.15
        for i, scheme in enumerate(schemes):
            ys = [float(next(r["mean_qoe"] for r in rows
                             if r["dataset"] == d and r["scheme"] == scheme))
                  for d in datasets]
            xs = [j + (i - 2) * width for j in range(len(datasets))]
            ax.bar(xs, ys, width, label=scheme)
        ax.set_xticks(range(len(datasets)))
        ax.set_xticklabels(datasets, rotation=20)
        ax.set_ylabel("mean session QoE")
        ax.set_title("Figure 1: in-distribution QoE")
        ax.legend(fontsize=8)
        fig.tight_layout()
        fig.savefig(out_dir / "fig1.png", dpi=150)
        print("wrote fig1.png")

    fig5 = results / "fig5_ood_cdf.csv"
    if fig5.exists():
        rows = read(fig5)
        fig, ax = plt.subplots(figsize=(6, 4))
        for scheme in ["nd", "a_ensemble", "v_ensemble", "pensieve"]:
            pts = [(float(r["normalized_score"]),
                    float(r["cumulative_probability"]))
                   for r in rows if r["scheme"] == scheme]
            pts.sort()
            ax.plot([p[0] for p in pts], [p[1] for p in pts], label=scheme)
        ax.set_xlabel("normalized score (0 = Random, 1 = BB)")
        ax.set_ylabel("CDF")
        ax.set_xlim(-5, 3)
        ax.set_title("Figure 5: OOD performance CDF")
        ax.legend(fontsize=8)
        fig.tight_layout()
        fig.savefig(out_dir / "fig5.png", dpi=150)
        print("wrote fig5.png")

    fig3 = results / "fig3_matrix.csv"
    if fig3.exists():
        rows = read(fig3)
        names = sorted({r["train"] for r in rows})
        grid = [[0.0] * len(names) for _ in names]
        for r in rows:
            grid[names.index(r["train"])][names.index(r["test"])] = \
                float(r["loglinear_axis"])
        fig, ax = plt.subplots(figsize=(6, 5))
        im = ax.imshow(grid, cmap="RdYlGn", vmin=-4, vmax=2)
        ax.set_xticks(range(len(names)))
        ax.set_xticklabels(names, rotation=45, ha="right")
        ax.set_yticks(range(len(names)))
        ax.set_yticklabels(names)
        ax.set_xlabel("test distribution")
        ax.set_ylabel("training distribution")
        ax.set_title("Figure 3: normalized Pensieve score (log-linear axis)")
        fig.colorbar(im)
        fig.tight_layout()
        fig.savefig(out_dir / "fig3.png", dpi=150)
        print("wrote fig3.png")

    return 0


if __name__ == "__main__":
    sys.exit(main())
