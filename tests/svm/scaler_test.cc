#include "svm/scaler.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace osap::svm {
namespace {

TEST(StandardScaler, TransformBeforeFitThrows) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.Transform(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(StandardScaler, CentersAndScalesTrainingData) {
  Rng rng(1);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back({rng.Normal(5.0, 2.0), rng.Normal(-3.0, 0.5)});
  }
  StandardScaler scaler;
  scaler.Fit(data);
  RunningStats s0;
  RunningStats s1;
  for (const auto& row : data) {
    const auto t = scaler.Transform(row);
    s0.Add(t[0]);
    s1.Add(t[1]);
  }
  EXPECT_NEAR(s0.Mean(), 0.0, 1e-9);
  EXPECT_NEAR(s0.StdDev(), 1.0, 1e-9);
  EXPECT_NEAR(s1.Mean(), 0.0, 1e-9);
  EXPECT_NEAR(s1.StdDev(), 1.0, 1e-9);
}

TEST(StandardScaler, ConstantFeaturePassesThroughCentered) {
  const std::vector<std::vector<double>> data = {{7.0}, {7.0}, {7.0}};
  StandardScaler scaler;
  scaler.Fit(data);
  const auto t = scaler.Transform(std::vector<double>{9.0});
  EXPECT_DOUBLE_EQ(t[0], 2.0);  // centered, scale 1
}

TEST(StandardScaler, RejectsRaggedData) {
  const std::vector<std::vector<double>> data = {{1.0, 2.0}, {3.0}};
  StandardScaler scaler;
  EXPECT_THROW(scaler.Fit(data), std::invalid_argument);
}

TEST(StandardScaler, TransformAllMatchesElementwise) {
  const std::vector<std::vector<double>> data = {{0.0}, {10.0}};
  StandardScaler scaler;
  scaler.Fit(data);
  const auto all = scaler.TransformAll(data);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0][0], scaler.Transform(data[0])[0]);
}

TEST(StandardScaler, SetStateValidatesInputs) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.SetState({0.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(scaler.SetState({0.0, 1.0}, {1.0}), std::invalid_argument);
  scaler.SetState({1.0}, {2.0});
  const auto t = scaler.Transform(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(t[0], 2.0);
}

}  // namespace
}  // namespace osap::svm
