// Equivalence tests for the contiguous OC-SVM decision kernel: the
// norm-expansion linear scan must match the classic per-support-vector
// RBF evaluation, and Save/Load must round-trip the flattened
// representation exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "svm/ocsvm.h"
#include "util/rng.h"

namespace osap::svm {
namespace {

/// The model's persisted parameters, read back from the "OSAPSVM1" file.
/// Save writes the scaled-space support vectors, so this gives the test an
/// exact view of the flattened representation without widening the API.
struct SavedModel {
  std::uint64_t count = 0;
  std::uint64_t dim = 0;
  double rho = 0.0;
  double gamma = 0.0;
  std::vector<double> mean, stddev;
  std::vector<double> alphas;
  std::vector<std::vector<double>> svs;  // scaled space
};

SavedModel ParseSaved(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  char magic[8];
  in.read(magic, sizeof(magic));
  EXPECT_EQ(std::memcmp(magic, "OSAPSVM1", 8), 0);
  SavedModel m;
  const auto f64 = [&in] {
    double v = 0.0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  in.read(reinterpret_cast<char*>(&m.count), sizeof(m.count));
  in.read(reinterpret_cast<char*>(&m.dim), sizeof(m.dim));
  m.rho = f64();
  m.gamma = f64();
  f64();  // nu (unused by the reference decision)
  for (std::uint64_t d = 0; d < m.dim; ++d) m.mean.push_back(f64());
  for (std::uint64_t d = 0; d < m.dim; ++d) m.stddev.push_back(f64());
  for (std::uint64_t i = 0; i < m.count; ++i) {
    m.alphas.push_back(f64());
    std::vector<double> sv;
    for (std::uint64_t d = 0; d < m.dim; ++d) sv.push_back(f64());
    m.svs.push_back(std::move(sv));
  }
  EXPECT_TRUE(in.good());
  return m;
}

/// The pre-optimization reference: per-vector squared distance, one RBF
/// kernel evaluation per support vector.
double ReferenceDecision(const SavedModel& m, const std::vector<double>& x) {
  std::vector<double> scaled(x.size());
  for (std::size_t d = 0; d < x.size(); ++d) {
    scaled[d] = (x[d] - m.mean[d]) / m.stddev[d];
  }
  double f = 0.0;
  for (std::uint64_t i = 0; i < m.count; ++i) {
    double dist_sq = 0.0;
    for (std::uint64_t d = 0; d < m.dim; ++d) {
      const double diff = scaled[d] - m.svs[i][d];
      dist_sq += diff * diff;
    }
    f += m.alphas[i] * std::exp(-m.gamma * dist_sq);
  }
  return f - m.rho;
}

std::vector<std::vector<double>> TrainingBlob(std::size_t n, Rng& rng) {
  std::vector<std::vector<double>> data;
  for (std::size_t i = 0; i < n; ++i) {
    data.push_back({rng.Normal(3.0, 0.5), rng.Normal(0.5, 0.1),
                    rng.Normal(-1.0, 2.0)});
  }
  return data;
}

TEST(OcSvmEquivalence, ContiguousScanMatchesPerVectorReference) {
  Rng rng(17);
  OneClassSvm model;
  model.Fit(TrainingBlob(300, rng));
  ASSERT_TRUE(model.Fitted());

  const auto path =
      std::filesystem::temp_directory_path() / "osap_svm_equiv" / "model.bin";
  model.Save(path);
  const SavedModel saved = ParseSaved(path);
  ASSERT_EQ(saved.count, model.SupportVectorCount());

  // Probe both in-distribution and far-OOD points, including the training
  // rows themselves.
  std::vector<std::vector<double>> probes = TrainingBlob(40, rng);
  probes.push_back({100.0, -50.0, 7.0});
  probes.push_back({0.0, 0.0, 0.0});
  for (const auto& x : probes) {
    EXPECT_NEAR(model.DecisionValue(x), ReferenceDecision(saved, x), 1e-12);
  }
  std::filesystem::remove_all(path.parent_path());
}

TEST(OcSvmEquivalence, SaveLoadRoundTripsFlattenedRepresentationExactly) {
  Rng rng(23);
  OneClassSvm model;
  model.Fit(TrainingBlob(200, rng));

  const auto path =
      std::filesystem::temp_directory_path() / "osap_svm_equiv" / "rt.bin";
  model.Save(path);
  const OneClassSvm loaded = OneClassSvm::Load(path);

  EXPECT_EQ(loaded.SupportVectorCount(), model.SupportVectorCount());
  EXPECT_EQ(loaded.rho(), model.rho());
  EXPECT_EQ(loaded.gamma(), model.gamma());
  // Decisions must be bit-identical: the file stores the exact doubles of
  // the flattened buffer and Load recomputes the squared norms from them.
  for (const auto& x : TrainingBlob(25, rng)) {
    EXPECT_EQ(loaded.DecisionValue(x), model.DecisionValue(x));
  }
  std::filesystem::remove_all(path.parent_path());
}

}  // namespace
}  // namespace osap::svm
