// Exact-equivalence tests: the working-set OC-SVM solver (lazy LRU kernel
// rows, sparse initial gradient, bit-exact shrinking) must reproduce the
// dense reference solver bit for bit - same alphas, support vectors, rho,
// and iteration count - on seed-sized problems, across stress configs that
// force heavy shrinking, guard-triggered unshrinks, and cache eviction.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "svm/ocsvm.h"
#include "util/rng.h"

namespace osap::svm {
namespace {

std::vector<std::vector<double>> GaussianBlobs(std::size_t n, std::size_t dim,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Two clusters plus a few stragglers, so the SMO path includes both
    // easy interior points and boundary fights over the outliers.
    const double center = i % 3 == 0 ? -2.0 : 3.0;
    std::vector<double> row(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = rng.Normal(center, i % 17 == 0 ? 2.5 : 0.6);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string FileBytes(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Fits both solvers on `data` and asserts the full serialized models (SV
/// rows, alphas, rho, gamma, scaler) are byte-identical, plus the public
/// counters agree.
void ExpectSolversIdentical(const std::vector<std::vector<double>>& data,
                            OcSvmConfig ws_config, const std::string& tag) {
  OcSvmConfig dense_config = ws_config;
  dense_config.dense_solver = true;
  ws_config.dense_solver = false;

  OneClassSvm dense(dense_config);
  dense.Fit(data);
  OneClassSvm ws(ws_config);
  ws.Fit(data);

  EXPECT_EQ(dense.iterations(), ws.iterations()) << tag;
  EXPECT_EQ(dense.SupportVectorCount(), ws.SupportVectorCount()) << tag;
  ASSERT_EQ(dense.rho(), ws.rho()) << tag;
  ASSERT_EQ(dense.gamma(), ws.gamma()) << tag;

  const auto dir = std::filesystem::temp_directory_path();
  const auto dense_path = dir / ("osap_ocsvm_dense_" + tag + ".bin");
  const auto ws_path = dir / ("osap_ocsvm_ws_" + tag + ".bin");
  dense.Save(dense_path);
  ws.Save(ws_path);
  EXPECT_EQ(FileBytes(dense_path), FileBytes(ws_path)) << tag;
  std::filesystem::remove(dense_path);
  std::filesystem::remove(ws_path);

  // Spot-check the decision surface too (redundant with the byte compare,
  // but fails with a far more readable message).
  Rng rng(0x5EED);
  const std::size_t dim = data.front().size();
  for (int k = 0; k < 16; ++k) {
    std::vector<double> x(dim);
    for (double& v : x) v = rng.Uniform(-4.0, 5.0);
    EXPECT_EQ(dense.DecisionValue(x), ws.DecisionValue(x)) << tag;
  }
}

TEST(OcSvmWorkingSetTest, MatchesDenseSolverOnSeedSizedProblem) {
  ExpectSolversIdentical(GaussianBlobs(400, 8, 0xABCD01), OcSvmConfig{},
                         "default");
}

TEST(OcSvmWorkingSetTest, MatchesDenseUnderAggressiveShrinking) {
  // Shrinking every iteration maximizes guard checks, unshrink-replay
  // catch-ups, and stale-gradient bookkeeping.
  OcSvmConfig cfg;
  cfg.shrink_interval = 1;
  ExpectSolversIdentical(GaussianBlobs(300, 6, 0xABCD02), cfg, "shrink1");
}

TEST(OcSvmWorkingSetTest, MatchesDenseWithTinyKernelCache) {
  // A 0 MiB budget clamps the cache to its 2-row minimum, forcing eviction
  // on nearly every row fetch and the uncached single-element fallback
  // during replay catch-up.
  OcSvmConfig cfg;
  cfg.kernel_cache_mb = 0;
  cfg.shrink_interval = 8;
  ExpectSolversIdentical(GaussianBlobs(350, 5, 0xABCD03), cfg, "tinycache");
}

TEST(OcSvmWorkingSetTest, MatchesDenseWithShrinkingDisabled) {
  OcSvmConfig cfg;
  cfg.shrink_interval = 0;
  ExpectSolversIdentical(GaussianBlobs(250, 7, 0xABCD04), cfg, "noshrink");
}

TEST(OcSvmWorkingSetTest, MatchesDenseOnDegenerateDuplicates) {
  // All-identical rows: every kernel entry is exactly 1, the step
  // denominator hits its 1e-12 floor, and rho falls through to the
  // boundary-midpoint branch. Both solvers must agree bit for bit anyway.
  std::vector<std::vector<double>> data(64, std::vector<double>(4, 1.5));
  OcSvmConfig cfg;
  cfg.standardize = false;  // zero variance would divide by the floor guard
  cfg.gamma = 0.7;
  ExpectSolversIdentical(data, cfg, "duplicates");
}

TEST(OcSvmWorkingSetTest, MatchesDenseAcrossNuRange) {
  const auto data = GaussianBlobs(200, 6, 0xABCD05);
  for (double nu : {0.01, 0.1, 0.5, 0.9}) {
    OcSvmConfig cfg;
    cfg.nu = nu;
    cfg.shrink_interval = 4;
    ExpectSolversIdentical(data, cfg, "nu" + std::to_string(nu));
  }
}

}  // namespace
}  // namespace osap::svm
