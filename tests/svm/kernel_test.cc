#include "svm/kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace osap::svm {
namespace {

TEST(RbfKernel, SelfSimilarityIsOne) {
  RbfKernel k(0.5);
  const std::vector<double> x = {1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(k.Evaluate(x, x), 1.0);
}

TEST(RbfKernel, SymmetricAndBounded) {
  RbfKernel k(1.0);
  const std::vector<double> x = {0.0, 1.0};
  const std::vector<double> y = {2.0, -1.0};
  EXPECT_DOUBLE_EQ(k.Evaluate(x, y), k.Evaluate(y, x));
  EXPECT_GT(k.Evaluate(x, y), 0.0);
  EXPECT_LT(k.Evaluate(x, y), 1.0);
}

TEST(RbfKernel, MatchesClosedForm) {
  RbfKernel k(0.25);
  const std::vector<double> x = {0.0};
  const std::vector<double> y = {2.0};
  EXPECT_NEAR(k.Evaluate(x, y), std::exp(-0.25 * 4.0), 1e-12);
}

TEST(RbfKernel, DecreasesWithDistance) {
  RbfKernel k(1.0);
  const std::vector<double> o = {0.0};
  EXPECT_GT(k.Evaluate(o, std::vector<double>{1.0}),
            k.Evaluate(o, std::vector<double>{2.0}));
}

TEST(RbfKernel, RejectsNonPositiveGamma) {
  EXPECT_THROW(RbfKernel(0.0), std::invalid_argument);
  EXPECT_THROW(RbfKernel(-1.0), std::invalid_argument);
}

TEST(RbfKernel, RejectsDimensionMismatch) {
  RbfKernel k(1.0);
  const std::vector<double> x = {1.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(k.Evaluate(x, y), std::invalid_argument);
}

TEST(LinearKernel, IsDotProduct) {
  LinearKernel k;
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(k.Evaluate(x, y), 4.0 - 10.0 + 18.0);
}

TEST(ScaleGamma, MatchesSklearnFormula) {
  // Data with feature variance var over all entries:
  // gamma = 1 / (n_features * var).
  const std::vector<std::vector<double>> data = {{0.0, 0.0}, {2.0, 2.0}};
  // All values: {0,0,2,2}; mean 1, var 1. dim=2 -> gamma = 0.5.
  EXPECT_NEAR(ScaleGamma(data), 0.5, 1e-12);
}

TEST(ScaleGamma, ZeroVarianceFallsBack) {
  const std::vector<std::vector<double>> data = {{3.0, 3.0}, {3.0, 3.0}};
  EXPECT_NEAR(ScaleGamma(data), 0.5, 1e-12);  // 1/(2*1)
}

}  // namespace
}  // namespace osap::svm
