#include "svm/ocsvm.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/rng.h"

namespace osap::svm {
namespace {

/// Gaussian blob around a center.
std::vector<std::vector<double>> MakeBlob(double cx, double cy, double sd,
                                          std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.push_back({rng.Normal(cx, sd), rng.Normal(cy, sd)});
  }
  return data;
}

TEST(OneClassSvm, AcceptsInDistributionRejectsFarOutliers) {
  OcSvmConfig cfg;
  cfg.nu = 0.05;
  OneClassSvm model(cfg);
  model.Fit(MakeBlob(0.0, 0.0, 1.0, 400, 1));

  // Fresh samples from the same blob are mostly inliers.
  const auto test_in = MakeBlob(0.0, 0.0, 1.0, 200, 2);
  EXPECT_GT(model.InlierFraction(test_in), 0.85);

  // A far-away blob is almost entirely outliers.
  const auto test_out = MakeBlob(10.0, 10.0, 1.0, 200, 3);
  EXPECT_LT(model.InlierFraction(test_out), 0.05);
}

TEST(OneClassSvm, NuPropertyBoundsTrainingOutliers) {
  // The fraction of training points classified as outliers is ~<= nu
  // (up to SMO tolerance slack).
  for (double nu : {0.05, 0.1, 0.2}) {
    OcSvmConfig cfg;
    cfg.nu = nu;
    OneClassSvm model(cfg);
    const auto train = MakeBlob(0.0, 0.0, 1.0, 300, 7);
    model.Fit(train);
    const double outlier_fraction = 1.0 - model.InlierFraction(train);
    EXPECT_LE(outlier_fraction, nu + 0.05) << "nu=" << nu;
  }
}

TEST(OneClassSvm, HigherNuRejectsMore) {
  const auto train = MakeBlob(0.0, 0.0, 1.0, 300, 11);
  OcSvmConfig lo_cfg;
  lo_cfg.nu = 0.02;
  OneClassSvm lo(lo_cfg);
  lo.Fit(train);
  OcSvmConfig hi_cfg;
  hi_cfg.nu = 0.4;
  OneClassSvm hi(hi_cfg);
  hi.Fit(train);
  EXPECT_GT(lo.InlierFraction(train), hi.InlierFraction(train));
}

TEST(OneClassSvm, SupportVectorFractionAtLeastNu) {
  OcSvmConfig cfg;
  cfg.nu = 0.3;
  OneClassSvm model(cfg);
  const auto train = MakeBlob(0.0, 0.0, 1.0, 200, 13);
  model.Fit(train);
  EXPECT_GE(static_cast<double>(model.SupportVectorCount()) /
                static_cast<double>(train.size()),
            0.3 - 0.05);
}

TEST(OneClassSvm, DecisionValueDecreasesAwayFromData) {
  OcSvmConfig cfg;
  OneClassSvm model(cfg);
  model.Fit(MakeBlob(0.0, 0.0, 1.0, 300, 17));
  const double near = model.DecisionValue(std::vector<double>{0.0, 0.0});
  const double mid = model.DecisionValue(std::vector<double>{3.0, 0.0});
  const double far = model.DecisionValue(std::vector<double>{8.0, 0.0});
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
}

TEST(OneClassSvm, DeterministicAcrossFits) {
  const auto train = MakeBlob(1.0, -1.0, 0.5, 200, 19);
  OneClassSvm a;
  a.Fit(train);
  OneClassSvm b;
  b.Fit(train);
  const std::vector<double> probe = {1.5, -0.5};
  EXPECT_DOUBLE_EQ(a.DecisionValue(probe), b.DecisionValue(probe));
  EXPECT_EQ(a.SupportVectorCount(), b.SupportVectorCount());
}

TEST(OneClassSvm, SubsamplingCapsKernelMatrix) {
  OcSvmConfig cfg;
  cfg.max_samples = 100;
  OneClassSvm model(cfg);
  model.Fit(MakeBlob(0.0, 0.0, 1.0, 1000, 23));
  EXPECT_LE(model.SupportVectorCount(), 100u);
  // Still a sane detector.
  EXPECT_LT(model.InlierFraction(MakeBlob(10.0, 10.0, 0.5, 100, 29)), 0.1);
}

TEST(OneClassSvm, ScoreBeforeFitThrows) {
  OneClassSvm model;
  EXPECT_THROW(model.DecisionValue(std::vector<double>{0.0}),
               std::invalid_argument);
}

TEST(OneClassSvm, RejectsInvalidNu) {
  OcSvmConfig cfg;
  cfg.nu = 0.0;
  OneClassSvm zero(cfg);
  EXPECT_THROW(zero.Fit(MakeBlob(0, 0, 1, 10, 1)), std::invalid_argument);
  cfg.nu = 1.0;
  OneClassSvm one(cfg);
  EXPECT_THROW(one.Fit(MakeBlob(0, 0, 1, 10, 1)), std::invalid_argument);
}

TEST(OneClassSvm, RejectsRaggedData) {
  OneClassSvm model;
  std::vector<std::vector<double>> data = {{1.0, 2.0}, {3.0}};
  EXPECT_THROW(model.Fit(data), std::invalid_argument);
}

TEST(OneClassSvm, SaveLoadRoundTripPreservesDecisions) {
  const auto dir =
      std::filesystem::temp_directory_path() / "osap_svm_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / "model.bin";

  OneClassSvm model;
  model.Fit(MakeBlob(0.0, 0.0, 1.0, 200, 31));
  model.Save(path);
  const OneClassSvm loaded = OneClassSvm::Load(path);

  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> probe = {rng.Uniform(-5, 5),
                                       rng.Uniform(-5, 5)};
    EXPECT_DOUBLE_EQ(model.DecisionValue(probe),
                     loaded.DecisionValue(probe));
  }
  std::filesystem::remove_all(dir);
}

TEST(OneClassSvm, LoadMissingFileThrows) {
  EXPECT_THROW(OneClassSvm::Load("/nonexistent/model.bin"),
               std::runtime_error);
}

TEST(OneClassSvm, DecisionValuesBitIdenticalToPerSampleCalls) {
  // The serving path scores whole shard batches with DecisionValues; each
  // row must come out bit-for-bit equal to a DecisionValue call (same
  // scaling, accumulation and support-vector order).
  OneClassSvm model;
  model.Fit(MakeBlob(0.0, 0.0, 1.0, 300, 11));

  Rng rng(13);
  constexpr std::size_t kCount = 64;
  std::vector<double> rows(kCount * 2);
  for (double& v : rows) v = rng.Uniform(-6, 6);
  std::vector<double> batch(kCount);
  model.DecisionValues(rows.data(), kCount, batch);
  for (std::size_t i = 0; i < kCount; ++i) {
    const std::vector<double> probe = {rows[2 * i], rows[2 * i + 1]};
    const double expected = model.DecisionValue(probe);
    EXPECT_EQ(batch[i], expected) << "row " << i;
  }
}

TEST(OneClassSvm, DecisionValuesValidatesArguments) {
  OneClassSvm unfitted;
  std::vector<double> rows(4, 0.0);
  std::vector<double> out(2);
  EXPECT_THROW(unfitted.DecisionValues(rows.data(), 2, out),
               std::invalid_argument);

  OneClassSvm model;
  model.Fit(MakeBlob(0.0, 0.0, 1.0, 50, 17));
  std::vector<double> short_out(1);
  EXPECT_THROW(model.DecisionValues(rows.data(), 2, short_out),
               std::invalid_argument);
  model.DecisionValues(rows.data(), 0, short_out);  // count 0 is a no-op
}

TEST(OneClassSvm, WorksOnAnisotropicData) {
  // Features with very different scales - the standardizer must cope.
  Rng rng(41);
  std::vector<std::vector<double>> train;
  for (int i = 0; i < 300; ++i) {
    train.push_back({rng.Normal(1000.0, 100.0), rng.Normal(0.01, 0.001)});
  }
  OneClassSvm model;
  model.Fit(train);
  EXPECT_GT(model.InlierFraction(train), 0.9);
  // Outlier in the small-scale dimension only.
  EXPECT_FALSE(model.IsInlier(std::vector<double>{1000.0, 0.05}));
}

}  // namespace
}  // namespace osap::svm
