// Bit-identity tests for the batch-axis AVX2 DecisionValues kernel.
//
// The AVX2 path rides four samples on the four lanes of a vector register
// but keeps each sample's scalar accumulation chain (SV-ascending adds, no
// FMA, scalar std::exp per kernel term), so every batched value must be
// bit-identical to DecisionValue on the same row - across batch sizes that
// exercise the 4-wide blocking (empty, single, exact multiples, tails) and
// feature dimensions that are not multiples of any vector width. The
// ForceSimdForTest hook pins the dispatch to each path so the comparison is
// meaningful on any host; on non-AVX2 hosts the forced-SIMD arm simply
// re-runs the scalar scan and the tests degrade to self-consistency.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "svm/ocsvm.h"
#include "util/rng.h"
#include "util/simd.h"

namespace osap::svm {
namespace {

class OcSvmSimdTest : public ::testing::Test {
 protected:
  void TearDown() override { util::ResetSimdForTest(); }
};

/// Fits a small model on `dim`-dimensional clustered rows and returns it
/// together with a set of probe rows (mixing inliers and far outliers).
struct Fixture {
  OneClassSvm model;
  std::vector<double> rows;  // row-major probes
  std::size_t dim = 0;
  std::size_t count = 0;
};

Fixture MakeFixture(std::size_t dim, std::size_t probe_count,
                    std::uint64_t seed) {
  Fixture f;
  f.dim = dim;
  f.count = probe_count;
  Rng rng(seed);
  std::vector<std::vector<double>> train;
  for (std::size_t i = 0; i < 80; ++i) {
    std::vector<double> row(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = 2.0 * static_cast<double>(d) + rng.Normal(0.0, 0.7);
    }
    train.push_back(std::move(row));
  }
  OcSvmConfig config;
  config.nu = 0.1;
  f.model = OneClassSvm(config);
  f.model.Fit(train);
  f.rows.resize(probe_count * dim);
  for (std::size_t i = 0; i < probe_count; ++i) {
    // Every third probe is far out-of-distribution so the decision values
    // span both signs and a wide range of exp() magnitudes.
    const double shift = i % 3 == 2 ? 15.0 : 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      f.rows[i * dim + d] =
          2.0 * static_cast<double>(d) + shift + rng.Normal(0.0, 0.9);
    }
  }
  return f;
}

void ExpectBatchMatchesSingles(const Fixture& f) {
  std::vector<double> batch(f.count);
  f.model.DecisionValues(f.rows.data(), f.count, batch);
  for (std::size_t i = 0; i < f.count; ++i) {
    const double single = f.model.DecisionValue(
        {f.rows.data() + i * f.dim, f.dim});
    // Bit-identical, not approximately equal: compare representations.
    std::uint64_t batch_bits = 0;
    std::uint64_t single_bits = 0;
    std::memcpy(&batch_bits, &batch[i], sizeof(batch_bits));
    std::memcpy(&single_bits, &single, sizeof(single_bits));
    EXPECT_EQ(batch_bits, single_bits) << "row " << i << ": batch " << batch[i]
                                       << " vs single " << single;
  }
}

TEST_F(OcSvmSimdTest, EmptyBatchIsANoOp) {
  const Fixture f = MakeFixture(6, 4, 11);
  std::vector<double> out;
  f.model.DecisionValues(f.rows.data(), 0, out);  // must not touch out
  EXPECT_TRUE(out.empty());
}

TEST_F(OcSvmSimdTest, SingleRowBatch) {
  // count = 1 never reaches the 4-wide kernel; pure tail path.
  util::ForceSimdForTest(true);
  ExpectBatchMatchesSingles(MakeFixture(6, 1, 12));
}

TEST_F(OcSvmSimdTest, CountNotAMultipleOfSimdWidth) {
  // 4-wide blocks plus a 3-sample scalar tail.
  util::ForceSimdForTest(true);
  ExpectBatchMatchesSingles(MakeFixture(6, 11, 13));
}

TEST_F(OcSvmSimdTest, CountExactMultipleOfSimdWidth) {
  util::ForceSimdForTest(true);
  ExpectBatchMatchesSingles(MakeFixture(6, 12, 14));
}

TEST_F(OcSvmSimdTest, OddFeatureDimension) {
  // dim = 7: not a multiple of any vector width; the kernel vectorizes
  // across samples so dimension never needs padding.
  util::ForceSimdForTest(true);
  ExpectBatchMatchesSingles(MakeFixture(7, 10, 15));
}

TEST_F(OcSvmSimdTest, PaperSyntheticDimension) {
  // 2k = 60: the U_S feature width for the synthetic datasets (k = 30).
  util::ForceSimdForTest(true);
  ExpectBatchMatchesSingles(MakeFixture(60, 9, 16));
}

TEST_F(OcSvmSimdTest, ForcedScalarStillMatchesSingles) {
  // The OSAP_NO_AVX2 escape hatch routes here; DecisionValue itself is
  // scalar, so this arm must match trivially.
  util::ForceSimdForTest(false);
  ExpectBatchMatchesSingles(MakeFixture(6, 11, 17));
}

TEST_F(OcSvmSimdTest, Avx2AndScalarPathsBitIdentical) {
  // The core claim, stated directly: the two dispatch arms produce the
  // same bits for the same batch.
  const Fixture f = MakeFixture(10, 23, 18);
  std::vector<double> simd(f.count);
  std::vector<double> scalar(f.count);
  util::ForceSimdForTest(true);
  f.model.DecisionValues(f.rows.data(), f.count, simd);
  util::ForceSimdForTest(false);
  f.model.DecisionValues(f.rows.data(), f.count, scalar);
  EXPECT_EQ(0, std::memcmp(simd.data(), scalar.data(),
                           f.count * sizeof(double)));
}

}  // namespace
}  // namespace osap::svm
