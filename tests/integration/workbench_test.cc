#include "core/workbench.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace osap::core {
namespace {

using traces::DatasetId;

class WorkbenchTest : public ::testing::Test {
 protected:
  WorkbenchTest() : bench_(FastWorkbenchConfig()) {}
  Workbench bench_;
};

TEST_F(WorkbenchTest, SchemeNamesAreStable) {
  EXPECT_EQ(SchemeName(Scheme::kPensieve), "pensieve");
  EXPECT_EQ(SchemeName(Scheme::kNoveltyDetection), "nd");
  EXPECT_EQ(SchemeName(Scheme::kAgentEnsemble), "a_ensemble");
  EXPECT_EQ(SchemeName(Scheme::kValueEnsemble), "v_ensemble");
  EXPECT_EQ(SafetySchemes().size(), 3u);
}

TEST_F(WorkbenchTest, DatasetsAreMemoized) {
  const traces::Dataset& a = bench_.DatasetFor(DatasetId::kGamma22);
  const traces::Dataset& b = bench_.DatasetFor(DatasetId::kGamma22);
  EXPECT_EQ(&a, &b);
  EXPECT_FALSE(a.test.empty());
}

TEST_F(WorkbenchTest, BundleContainsAllArtifacts) {
  const TrainedBundle& bundle = bench_.BundleFor(DatasetId::kGamma22);
  EXPECT_EQ(bundle.agents.size(), bench_.config().ensemble_size);
  EXPECT_EQ(bundle.value_nets.size(), bench_.config().ensemble_size);
  ASSERT_NE(bundle.novelty, nullptr);
  EXPECT_TRUE(bundle.novelty->Fitted());
  EXPECT_GE(bundle.alpha_pi, 0.0);
  EXPECT_GE(bundle.alpha_v, 0.0);
}

TEST_F(WorkbenchTest, EvaluateIsMemoizedAndDeterministic) {
  const EvalResult& a =
      bench_.Evaluate(Scheme::kBufferBased, DatasetId::kGamma22,
                      DatasetId::kGamma22);
  const EvalResult& b =
      bench_.Evaluate(Scheme::kBufferBased, DatasetId::kGamma12,
                      DatasetId::kGamma22);  // baselines ignore train
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.per_trace_qoe.size(),
            bench_.DatasetFor(DatasetId::kGamma22).test.size());
}

TEST_F(WorkbenchTest, NormalizedAnchorsAreExact) {
  EXPECT_DOUBLE_EQ(bench_.NormalizedMean(Scheme::kRandom,
                                         DatasetId::kGamma22,
                                         DatasetId::kGamma22),
                   0.0);
  EXPECT_DOUBLE_EQ(bench_.NormalizedMean(Scheme::kBufferBased,
                                         DatasetId::kGamma22,
                                         DatasetId::kGamma22),
                   1.0);
}

TEST_F(WorkbenchTest, MakePolicyCoversAllSchemes) {
  for (Scheme scheme :
       {Scheme::kPensieve, Scheme::kBufferBased, Scheme::kRandom,
        Scheme::kNoveltyDetection, Scheme::kAgentEnsemble,
        Scheme::kValueEnsemble}) {
    const auto policy = bench_.MakePolicy(scheme, DatasetId::kGamma22);
    ASSERT_NE(policy, nullptr) << SchemeName(scheme);
  }
}

TEST_F(WorkbenchTest, SafetySchemePoliciesAreIndependent) {
  // Two ND policies must not share observation windows.
  const auto p1 =
      bench_.MakePolicy(Scheme::kNoveltyDetection, DatasetId::kGamma22);
  const auto p2 =
      bench_.MakePolicy(Scheme::kNoveltyDetection, DatasetId::kGamma22);
  EXPECT_NE(p1.get(), p2.get());
}

TEST_F(WorkbenchTest, CacheKeyChangesWithConfig) {
  WorkbenchConfig cfg = FastWorkbenchConfig();
  Workbench a(cfg);
  cfg.a2c.episodes += 1;
  Workbench b(cfg);
  EXPECT_NE(a.CacheKey(), b.CacheKey());
}

TEST(WorkbenchCache, SecondWorkbenchLoadsFromDisk) {
  WorkbenchConfig cfg = FastWorkbenchConfig();
  cfg.use_cache = true;
  cfg.cache_dir =
      std::filesystem::temp_directory_path() / "osap_wb_cache_test";
  std::filesystem::remove_all(cfg.cache_dir);
  {
    Workbench first(cfg);
    first.BundleFor(DatasetId::kGamma12);
  }
  Workbench second(cfg);
  const TrainedBundle& bundle = second.BundleFor(DatasetId::kGamma12);
  // Loading must produce the same evaluation results as training did.
  EXPECT_TRUE(bundle.novelty->Fitted());
  EXPECT_EQ(bundle.agents.size(), cfg.ensemble_size);
  std::filesystem::remove_all(cfg.cache_dir);
}

TEST(WorkbenchCache, CachedAgentsReproduceTrainedBehaviour) {
  WorkbenchConfig cfg = FastWorkbenchConfig();
  cfg.use_cache = true;
  cfg.cache_dir =
      std::filesystem::temp_directory_path() / "osap_wb_cache_test2";
  std::filesystem::remove_all(cfg.cache_dir);
  double trained_qoe = 0.0;
  {
    Workbench first(cfg);
    trained_qoe = first
                      .Evaluate(Scheme::kPensieve, DatasetId::kGamma12,
                                DatasetId::kGamma12)
                      .MeanQoe();
  }
  Workbench second(cfg);
  const double loaded_qoe =
      second
          .Evaluate(Scheme::kPensieve, DatasetId::kGamma12,
                    DatasetId::kGamma12)
          .MeanQoe();
  EXPECT_DOUBLE_EQ(trained_qoe, loaded_qoe);
  std::filesystem::remove_all(cfg.cache_dir);
}


TEST(WorkbenchCache, CorruptCacheFallsBackToRetraining) {
  WorkbenchConfig cfg = FastWorkbenchConfig();
  cfg.use_cache = true;
  cfg.cache_dir =
      std::filesystem::temp_directory_path() / "osap_wb_cache_test3";
  std::filesystem::remove_all(cfg.cache_dir);
  double trained_qoe = 0.0;
  {
    Workbench first(cfg);
    trained_qoe = first
                      .Evaluate(Scheme::kPensieve, DatasetId::kGamma12,
                                DatasetId::kGamma12)
                      .MeanQoe();
  }
  // Corrupt every cached artifact.
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(cfg.cache_dir)) {
    if (entry.is_regular_file() &&
        entry.path().extension() == ".bin") {
      std::ofstream out(entry.path(), std::ios::trunc);
      out << "garbage";
    }
  }
  Workbench second(cfg);
  const double retrained_qoe =
      second
          .Evaluate(Scheme::kPensieve, DatasetId::kGamma12,
                    DatasetId::kGamma12)
          .MeanQoe();
  // Training is deterministic, so the retrained agent matches.
  EXPECT_DOUBLE_EQ(trained_qoe, retrained_qoe);
  std::filesystem::remove_all(cfg.cache_dir);
}

}  // namespace
}  // namespace osap::core
