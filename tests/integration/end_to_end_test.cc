// End-to-end behavioural tests: the paper's qualitative claims on a
// fast-config workbench. These use more training than the unit tests so
// the learned policy is meaningful, but far less than the full benches.
#include <gtest/gtest.h>

#include <cmath>

#include "core/workbench.h"

namespace osap::core {
namespace {

using traces::DatasetId;

/// Shared across tests in this file (training is the expensive part).
Workbench& SharedBench() {
  static Workbench* bench = [] {
    WorkbenchConfig cfg = FastWorkbenchConfig();
    // Enough training for a meaningful in-distribution policy.
    cfg.a2c.episodes = 250;
    cfg.dataset.trace_count = 16;
    return new Workbench(cfg);
  }();
  return *bench;
}

TEST(EndToEnd, SafeAgentStreamsWholeSessions) {
  Workbench& bench = SharedBench();
  const EvalResult& result = bench.Evaluate(
      Scheme::kNoveltyDetection, DatasetId::kGamma22, DatasetId::kGamma22);
  EXPECT_EQ(result.per_trace_qoe.size(),
            bench.DatasetFor(DatasetId::kGamma22).test.size());
}

TEST(EndToEnd, SafetySchemesBoundTheOodCatastrophe) {
  // Trained on Gamma(2,2), tested on Exponential(1) - the distribution
  // pair where vanilla Pensieve collapses hardest in the pilot runs. All
  // three safety-enhanced variants must beat vanilla Pensieve.
  Workbench& bench = SharedBench();
  const double vanilla =
      bench.Evaluate(Scheme::kPensieve, DatasetId::kGamma22,
                     DatasetId::kExponential)
          .MeanQoe();
  for (Scheme scheme : SafetySchemes()) {
    const double safe =
        bench.Evaluate(scheme, DatasetId::kGamma22, DatasetId::kExponential)
            .MeanQoe();
    EXPECT_GT(safe, vanilla) << SchemeName(scheme);
  }
}

TEST(EndToEnd, NdSchemeTracksBbWhenOod) {
  // When ND correctly detects the shift it defaults to BB; its OOD QoE
  // must land in BB's neighbourhood, far above vanilla Pensieve's.
  Workbench& bench = SharedBench();
  const double nd =
      bench.Evaluate(Scheme::kNoveltyDetection, DatasetId::kGamma22,
                     DatasetId::kExponential)
          .MeanQoe();
  const double bb = bench.Evaluate(Scheme::kBufferBased,
                                   DatasetId::kExponential,
                                   DatasetId::kExponential)
                        .MeanQoe();
  const double vanilla =
      bench.Evaluate(Scheme::kPensieve, DatasetId::kGamma22,
                     DatasetId::kExponential)
          .MeanQoe();
  EXPECT_GT(nd, vanilla);
  // Within the BB-vanilla gap, ND must recover most of the distance. The
  // fast config streams only 48 chunks, so the detector warm-up
  // (window + k + l ~ 13 chunks of crashing Pensieve) caps the recovery
  // well below the paper's 240-chunk setting - 70% is the conservative
  // bound here.
  EXPECT_GT(nd, vanilla + 0.7 * (bb - vanilla));
}

TEST(EndToEnd, InDistributionSafetyStaysInTheHealthyBand) {
  // In-distribution, the safety-enhanced variants must remain clearly
  // above Random, in BB's neighbourhood. (The paper's full ordering
  // Pensieve > safety > BB requires the fully-trained agent; the fast
  // config's 250-episode Pensieve is weaker than BB in-distribution, so
  // here we assert the safety floor rather than the ceiling.)
  Workbench& bench = SharedBench();
  const double bb = bench.Evaluate(Scheme::kBufferBased,
                                   DatasetId::kGamma22, DatasetId::kGamma22)
                        .MeanQoe();
  const double random =
      bench.Evaluate(Scheme::kRandom, DatasetId::kGamma22,
                     DatasetId::kGamma22)
          .MeanQoe();
  ASSERT_GT(bb, random);
  for (Scheme scheme : SafetySchemes()) {
    const double safe =
        bench.Evaluate(scheme, DatasetId::kGamma22, DatasetId::kGamma22)
            .MeanQoe();
    EXPECT_GT(safe, random + 0.4 * (bb - random)) << SchemeName(scheme);
  }
}

TEST(EndToEnd, CalibrationEqualizesInDistributionPerformance) {
  // The calibrated ensemble schemes' in-distribution QoE must be close
  // to the ND scheme's (the calibration target, Section 2.5).
  Workbench& bench = SharedBench();
  const TrainedBundle& bundle = bench.BundleFor(DatasetId::kGamma22);
  const double nd_target = bundle.nd_in_dist_qoe;
  abr::AbrEnvironment env = bench.MakeEvalEnvironment();
  const auto& validation =
      bench.DatasetFor(DatasetId::kGamma22).validation;

  for (Scheme scheme : {Scheme::kAgentEnsemble, Scheme::kValueEnsemble}) {
    auto policy = bench.MakePolicy(scheme, DatasetId::kGamma22);
    const double qoe = EvaluatePolicy(*policy, env, validation).MeanQoe();
    // Calibration tolerance plus evaluation noise.
    EXPECT_NEAR(qoe, nd_target, 0.25 * std::abs(nd_target) + 20.0)
        << SchemeName(scheme);
  }
}

TEST(EndToEnd, NormalizedScoresAreFiniteEverywhere) {
  Workbench& bench = SharedBench();
  for (DatasetId test : {DatasetId::kGamma22, DatasetId::kExponential}) {
    for (Scheme scheme :
         {Scheme::kPensieve, Scheme::kNoveltyDetection,
          Scheme::kAgentEnsemble, Scheme::kValueEnsemble}) {
      const double score =
          bench.NormalizedMean(scheme, DatasetId::kGamma22, test);
      EXPECT_TRUE(std::isfinite(score))
          << SchemeName(scheme) << " on " << traces::DatasetName(test);
    }
  }
}

}  // namespace
}  // namespace osap::core
