// Sanitizer smoke test: a small, fast exercise of every concurrent code
// path - pooled ParallelFor, parallel multi-trace evaluation, and
// concurrent inference on shared nets - sized to finish quickly under
// ThreadSanitizer (build with -DOSAP_SANITIZE=thread, then
// `ctest -L sanitize`).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "abr/abr_environment.h"
#include "core/evaluation.h"
#include "nn/ensemble_forward.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_net.h"
#include "rl/a2c.h"
#include "traces/generators.h"
#include "util/thread_pool.h"

namespace osap {
namespace {

TEST(ParallelSmoke, PooledEvaluationOverGeneratedTraces) {
  Rng rng(3);
  const auto gen = traces::MakeNorway3gGenerator();
  std::vector<traces::Trace> traces;
  for (std::size_t i = 0; i < 8; ++i) {
    traces.push_back(gen->Generate(rng, 120.0, i));
  }

  const abr::VideoSpec video = abr::MakeEnvivioLikeVideo(1);
  abr::AbrEnvironment env(video, {});
  abr::AbrStateLayout layout;
  util::ThreadPool pool(3);

  policies::BufferBasedPolicy serial_policy(video, layout);
  const core::EvalResult serial =
      core::EvaluatePolicy(serial_policy, env, traces);
  const core::EvalResult parallel = core::EvaluatePolicyParallel(
      [&] { return std::make_shared<policies::BufferBasedPolicy>(video,
                                                                 layout); },
      env, traces, pool);
  ASSERT_EQ(serial.per_trace_qoe.size(), parallel.per_trace_qoe.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(serial.per_trace_qoe[i], parallel.per_trace_qoe[i]);
  }
}

TEST(ParallelSmoke, SharedNetConcurrentInference) {
  // Many threads querying one shared network through the const Infer path
  // (the situation SafeAgent ensembles are in during pooled evaluation).
  Rng rng(5);
  abr::AbrStateLayout layout;
  std::vector<std::unique_ptr<nn::ActorCriticNet>> members;
  std::vector<const nn::CompositeNet*> actors;
  for (int m = 0; m < 3; ++m) {
    members.push_back(std::make_unique<nn::ActorCriticNet>(
        policies::MakePensieveActorCritic(layout, {}, rng)));
    actors.push_back(&members.back()->actor());
  }
  const nn::BatchedEnsemble batched(actors);
  const std::vector<double> state(layout.Size(), 0.25);

  const std::vector<double> reference = members[0]->ActionProbs(state);
  util::ThreadPool pool(3);
  std::atomic<int> mismatches{0};
  pool.ParallelFor(0, 64, [&](std::size_t) {
    nn::InferScratch scratch;
    (void)batched.Infer(state, scratch);
    const std::vector<double> probs = members[0]->ActionProbs(state);
    if (probs != reference) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ParallelSmoke, ParallelA2cTrainingOnAbrEnvironment) {
  // A small end-to-end run of the batched-update A2C trainer on the real
  // ABR environment: per-slot clones, concurrent episode collection, and
  // the fixed-order gradient reduction all under the sanitizer, with the
  // thread-count bit-identity asserted at the end.
  Rng trace_rng(9);
  const auto gen = traces::MakeNorway3gGenerator();
  std::vector<traces::Trace> traces;
  for (std::size_t i = 0; i < 4; ++i) {
    traces.push_back(gen->Generate(trace_rng, 120.0, i));
  }
  const abr::VideoSpec video = abr::MakeEnvivioLikeVideo(1);
  abr::AbrEnvironmentConfig env_cfg;
  abr::AbrEnvironment env(video, env_cfg);
  env.SetTracePool(traces, 77);

  rl::A2cConfig cfg;
  cfg.episodes = 4;
  cfg.rollouts_per_update = 2;
  cfg.seed = 21;
  const rl::ActorCriticCloneFactory clone_net = [&env_cfg]() {
    Rng scratch(0);
    return policies::MakePensieveActorCritic(env_cfg.layout, {}, scratch);
  };
  const rl::EpisodeEnvFactory env_for_episode = [&env](std::size_t e) {
    auto copy = std::make_unique<abr::AbrEnvironment>(env);
    copy->SkipPoolEpisodes(e);
    return std::unique_ptr<mdp::Environment>(std::move(copy));
  };

  auto train = [&](std::size_t workers) {
    Rng init(55);
    auto net = std::make_unique<nn::ActorCriticNet>(
        policies::MakePensieveActorCritic(env_cfg.layout, {}, init));
    util::ThreadPool pool(workers);
    rl::TrainA2cParallel(*net, clone_net, env_for_episode, cfg, pool);
    return net;
  };
  const auto serial_net = train(0);
  const auto parallel_net = train(3);

  auto serial_params = serial_net->AllParams();
  auto parallel_params = parallel_net->AllParams();
  ASSERT_EQ(serial_params.size(), parallel_params.size());
  for (std::size_t i = 0; i < serial_params.size(); ++i) {
    EXPECT_EQ(serial_params[i]->value.values(),
              parallel_params[i]->value.values())
        << "param " << i;
  }
}

}  // namespace
}  // namespace osap
