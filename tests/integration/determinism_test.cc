// The threading contract: every parallel section of the workbench
// (per-trace evaluation rollouts, per-member ensemble training, ND feature
// collection) must produce results bit-identical to the serial path. Two
// workbenches differing only in `threads` must agree exactly - same
// per-trace QoE, same calibrated thresholds.
#include <gtest/gtest.h>

#include "core/workbench.h"

namespace osap::core {
namespace {

using traces::DatasetId;

WorkbenchConfig ConfigWithThreads(std::size_t threads) {
  WorkbenchConfig cfg = FastWorkbenchConfig();
  cfg.threads = threads;
  return cfg;
}

TEST(WorkbenchDeterminism, ParallelEvaluationBitIdenticalToSerial) {
  Workbench serial(ConfigWithThreads(1));
  Workbench parallel(ConfigWithThreads(4));
  constexpr auto kTrain = DatasetId::kGamma22;
  constexpr auto kTest = DatasetId::kExponential;

  // Calibrated thresholds come out of the full training + calibration
  // pipeline, whose ensemble training and validation rollouts both run on
  // the pool when threads > 1.
  const TrainedBundle& sb = serial.BundleFor(kTrain);
  const TrainedBundle& pb = parallel.BundleFor(kTrain);
  EXPECT_EQ(sb.alpha_pi, pb.alpha_pi);
  EXPECT_EQ(sb.alpha_v, pb.alpha_v);
  EXPECT_EQ(sb.nd_in_dist_qoe, pb.nd_in_dist_qoe);

  // Every scheme's per-trace evaluation must agree exactly, including
  // kRandom (which the workbench deliberately keeps serial).
  for (const Scheme scheme :
       {Scheme::kPensieve, Scheme::kBufferBased, Scheme::kRandom,
        Scheme::kNoveltyDetection, Scheme::kAgentEnsemble,
        Scheme::kValueEnsemble}) {
    const EvalResult& s = serial.Evaluate(scheme, kTrain, kTest);
    const EvalResult& p = parallel.Evaluate(scheme, kTrain, kTest);
    ASSERT_EQ(s.per_trace_qoe.size(), p.per_trace_qoe.size());
    for (std::size_t i = 0; i < s.per_trace_qoe.size(); ++i) {
      EXPECT_EQ(s.per_trace_qoe[i], p.per_trace_qoe[i])
          << SchemeName(scheme) << " trace " << i;
    }
  }
}

TEST(WorkbenchDeterminism, ReplayCalibrationBitIdenticalToFullReEvaluation) {
  // Record-and-replay calibration is a pure speedup: the calibrated
  // thresholds (and the ND target they chase) must match the legacy
  // full-SafeAgent-per-bisection-iteration path exactly.
  WorkbenchConfig full_cfg = FastWorkbenchConfig();
  full_cfg.calibration_replay = false;
  Workbench replay(FastWorkbenchConfig());
  Workbench full(full_cfg);
  constexpr auto kTrain = DatasetId::kGamma22;

  const TrainedBundle& rb = replay.BundleFor(kTrain);
  const TrainedBundle& fb = full.BundleFor(kTrain);
  EXPECT_EQ(rb.nd_in_dist_qoe, fb.nd_in_dist_qoe);
  EXPECT_EQ(rb.alpha_pi, fb.alpha_pi);
  EXPECT_EQ(rb.alpha_v, fb.alpha_v);
}

TEST(WorkbenchDeterminism, ReplayFlagDoesNotChangeCacheKey) {
  WorkbenchConfig full_cfg = FastWorkbenchConfig();
  full_cfg.calibration_replay = false;
  EXPECT_EQ(Workbench(FastWorkbenchConfig()).CacheKey(),
            Workbench(full_cfg).CacheKey());
}

TEST(WorkbenchDeterminism, ThreadCountDoesNotChangeCacheKey) {
  // `threads` is a performance knob, not a behaviour knob: cached artifacts
  // must be shared across thread settings.
  EXPECT_EQ(Workbench(ConfigWithThreads(1)).CacheKey(),
            Workbench(ConfigWithThreads(8)).CacheKey());
}

}  // namespace
}  // namespace osap::core
