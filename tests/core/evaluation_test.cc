#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "policies/buffer_based.h"
#include "policies/random_policy.h"

namespace osap::core {
namespace {

std::vector<traces::Trace> FlatTraces(std::initializer_list<double> rates) {
  std::vector<traces::Trace> traces;
  int i = 0;
  for (double r : rates) {
    traces.emplace_back("t" + std::to_string(i++), 1.0,
                        std::vector<double>(2000, r));
  }
  return traces;
}

TEST(EvaluatePolicy, OneQoePerTrace) {
  abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(1), {});
  policies::BufferBasedPolicy bb(env.video(), env.layout());
  const auto traces = FlatTraces({1.0, 3.0, 8.0});
  const EvalResult result = EvaluatePolicy(bb, env, traces);
  ASSERT_EQ(result.per_trace_qoe.size(), 3u);
  // More throughput, better QoE for BB.
  EXPECT_LT(result.per_trace_qoe[0], result.per_trace_qoe[1]);
  EXPECT_LT(result.per_trace_qoe[1], result.per_trace_qoe[2]);
}

TEST(EvaluatePolicy, MeanAndSummaryAgree) {
  abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(1), {});
  policies::BufferBasedPolicy bb(env.video(), env.layout());
  const auto traces = FlatTraces({2.0, 4.0});
  const EvalResult result = EvaluatePolicy(bb, env, traces);
  const Summary s = result.Summarize();
  EXPECT_DOUBLE_EQ(result.MeanQoe(), s.mean);
  EXPECT_EQ(s.count, 2u);
}

TEST(EvaluatePolicy, DeterministicForDeterministicPolicy) {
  abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(1), {});
  policies::BufferBasedPolicy bb(env.video(), env.layout());
  const auto traces = FlatTraces({2.5});
  const EvalResult a = EvaluatePolicy(bb, env, traces);
  const EvalResult b = EvaluatePolicy(bb, env, traces);
  EXPECT_EQ(a.per_trace_qoe, b.per_trace_qoe);
}

TEST(EvaluatePolicy, ResetsStochasticPolicyPerSession) {
  // A random policy is Reset per trace but its RNG stream continues; the
  // harness itself must remain usable for stochastic baselines.
  abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(1), {});
  policies::RandomPolicy random(env.ActionCount(), 3);
  const auto traces = FlatTraces({3.0, 3.0, 3.0});
  const EvalResult result = EvaluatePolicy(random, env, traces);
  EXPECT_EQ(result.per_trace_qoe.size(), 3u);
}

TEST(EvaluatePolicy, RejectsEmptyTraceSet) {
  abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(1), {});
  policies::BufferBasedPolicy bb(env.video(), env.layout());
  EXPECT_THROW(EvaluatePolicy(bb, env, {}), std::invalid_argument);
}

TEST(EvaluatePolicy, BufferBasedBeatsRandomOnModerateLinks) {
  // The anchor property of the paper's normalized scale.
  abr::AbrEnvironment env(abr::MakeEnvivioLikeVideo(1), {});
  policies::BufferBasedPolicy bb(env.video(), env.layout());
  policies::RandomPolicy random(env.ActionCount(), 5);
  const auto traces = FlatTraces({1.5, 3.0});
  const double bb_qoe = EvaluatePolicy(bb, env, traces).MeanQoe();
  const double random_qoe = EvaluatePolicy(random, env, traces).MeanQoe();
  EXPECT_GT(bb_qoe, random_qoe);
}

}  // namespace
}  // namespace osap::core
