// Record-and-replay calibration must be a pure speedup: every quantity it
// produces - the alpha search's upper bound, the per-candidate mean QoE,
// and therefore the calibrated alpha itself - must be bit-identical to the
// full SafeAgent re-evaluation it replaces.
#include "core/replay_calibration.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "abr/abr_environment.h"
#include "core/calibration.h"
#include "core/ensemble_estimators.h"
#include "core/evaluation.h"
#include "core/safe_agent.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_net.h"
#include "policies/pensieve_policy.h"
#include "traces/generators.h"

namespace osap::core {
namespace {

constexpr std::size_t kTriggerK = 5;
constexpr std::size_t kTriggerL = 3;

abr::AbrStateLayout Layout() { return abr::AbrStateLayout{}; }

std::vector<std::shared_ptr<nn::ActorCriticNet>> MakeAgents(std::size_t n) {
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents;
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(100 + i);
    agents.push_back(std::make_shared<nn::ActorCriticNet>(
        policies::MakePensieveActorCritic(Layout(), {}, rng)));
  }
  return agents;
}

std::vector<traces::Trace> ValidationTraces(std::size_t n) {
  Rng rng(77);
  const auto gen = traces::MakeNorway3gGenerator();
  std::vector<traces::Trace> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(gen->Generate(rng, 200.0, i));
  }
  return out;
}

struct ReplayFixtureParts {
  abr::VideoSpec video = abr::MakeEnvivioLikeVideo(1);
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents = MakeAgents(5);
  std::vector<traces::Trace> traces = ValidationTraces(4);

  std::shared_ptr<mdp::Policy> MakeLearned() const {
    return std::make_shared<policies::PensievePolicy>(
        agents.front(), policies::ActionSelection::kGreedy, /*seed=*/0);
  }
  std::shared_ptr<mdp::Policy> MakeFallback() const {
    return std::make_shared<policies::BufferBasedPolicy>(video,
                                                         abr::AbrStateLayout{});
  }
  /// Factory for the U_pi estimator under test: ScoreWith spawns one
  /// instance per worker, all equivalent (pure function of the weights).
  CalibrationReplay<abr::AbrEnvironment>::EstimatorFactory MakeEstimator(
      std::size_t discard) const {
    return [this, discard]() -> std::shared_ptr<UncertaintyEstimator> {
      return std::make_shared<AgentEnsembleEstimator>(agents, discard);
    };
  }
};

/// A stateful binary estimator for exercising the ND-style trigger path:
/// deterministic in the post-Reset step sequence (scores 1.0 on a fixed
/// periodic pattern long enough to sustain l consecutive exceedances).
class PeriodicBinaryEstimator final : public UncertaintyEstimator {
 public:
  void Reset() override { step_ = 0; }
  double Score(const mdp::State&) override {
    const std::size_t phase = step_++ % 29;
    return phase >= 20 && phase < 24 ? 1.0 : 0.0;
  }
  bool Ready() const override { return true; }
  std::string Name() const override { return "periodic_binary"; }

 private:
  std::size_t step_ = 0;
};

TEST(FirstTriggerStep, ReplicatesConsecutiveExceedanceSemantics) {
  ReplaySession session;
  // Window full from t >= k - 1 = 2 with k = 3.
  session.variances = {9.0, 9.0, 0.1, 5.0, 5.0, 0.1, 5.0, 5.0, 5.0};
  // t=0,1 exceed but the window is not full yet; t=3,4 exceed but the run
  // is broken at t=5; the first l=3 consecutive full-window exceedances
  // end at t=8.
  EXPECT_EQ(FirstTriggerStep(session, 1.0, /*k=*/3, /*l=*/3), 8u);
  EXPECT_EQ(FirstTriggerStep(session, 1.0, /*k=*/3, /*l=*/2), 4u);
  // Above every variance: never fires.
  EXPECT_EQ(FirstTriggerStep(session, 100.0, 3, 1), kReplayNoTrigger);
  // l = 1 fires on the first full-window exceedance.
  EXPECT_EQ(FirstTriggerStep(session, 1.0, 3, 1), 3u);
}

TEST(CalibrationReplay, UpperBoundMatchesMaxWindowVariance) {
  ReplayFixtureParts f;
  abr::AbrEnvironment env(f.video, {});
  AgentEnsembleEstimator estimator(f.agents, 2);

  CalibrationReplay<abr::AbrEnvironment> replay(
      [&] { return f.MakeLearned(); }, [&] { return f.MakeFallback(); }, env,
      f.traces, kTriggerK, kTriggerL, util::ThreadPool::Shared());
  replay.ScoreWith(f.MakeEstimator(2));

  abr::AbrEnvironment serial_env(f.video, {});
  auto driver = f.MakeLearned();
  const double direct = MaxWindowVariance(estimator, *driver, serial_env,
                                          f.traces, kTriggerK);
  EXPECT_GT(direct, 0.0);
  EXPECT_EQ(replay.MaxFullWindowVariance(), direct);
}

TEST(CalibrationReplay, MeanQoeBitIdenticalToFullSafeAgentEvaluation) {
  ReplayFixtureParts f;
  abr::AbrEnvironment env(f.video, {});
  auto estimator = std::make_shared<AgentEnsembleEstimator>(f.agents, 2);

  CalibrationReplay<abr::AbrEnvironment> replay(
      [&] { return f.MakeLearned(); }, [&] { return f.MakeFallback(); }, env,
      f.traces, kTriggerK, kTriggerL, util::ThreadPool::Shared());
  replay.ScoreWith(f.MakeEstimator(2));
  const double hi = replay.MaxFullWindowVariance();
  ASSERT_GT(hi, 0.0);

  // Sweep alphas that trigger never, sometimes, and immediately.
  for (const double alpha :
       {0.0, hi * 0.05, hi * 0.25, hi * 0.5, hi * 0.9, hi * 2.0}) {
    SafeAgentConfig cfg;
    cfg.trigger.mode = TriggerMode::kWindowVariance;
    cfg.trigger.k = kTriggerK;
    cfg.trigger.l = kTriggerL;
    cfg.trigger.alpha = alpha;
    SafeAgent agent(f.MakeLearned(), f.MakeFallback(), estimator, cfg);
    abr::AbrEnvironment eval_env(f.video, {});
    const double full = EvaluatePolicy(agent, eval_env, f.traces).MeanQoe();
    EXPECT_EQ(replay.MeanQoeAt(alpha), full) << "alpha = " << alpha;
  }
}

TEST(CalibrationReplay, CalibratedAlphaBitIdenticalToFullBisection) {
  ReplayFixtureParts f;
  abr::AbrEnvironment env(f.video, {});
  auto estimator = std::make_shared<AgentEnsembleEstimator>(f.agents, 2);
  CalibrationConfig calib;
  calib.max_iterations = 8;

  // Target: QoE halfway between never-defaulting and always-defaulting,
  // so the bisection has something to chase.
  CalibrationReplay<abr::AbrEnvironment> replay(
      [&] { return f.MakeLearned(); }, [&] { return f.MakeFallback(); }, env,
      f.traces, kTriggerK, kTriggerL, util::ThreadPool::Shared());
  replay.ScoreWith(f.MakeEstimator(2));
  const double hi = replay.MaxFullWindowVariance();
  ASSERT_GT(hi, 0.0);
  const double target =
      0.5 * (replay.MeanQoeAt(0.0) + replay.MeanQoeAt(hi * 2.0));

  const CalibrationResult via_replay = CalibrateAlpha(
      [&](double alpha) { return replay.MeanQoeAt(alpha); }, target, 0.0,
      hi * 1.25, calib);

  const CalibrationResult via_full = CalibrateAlpha(
      [&](double alpha) {
        SafeAgentConfig cfg;
        cfg.trigger.mode = TriggerMode::kWindowVariance;
        cfg.trigger.k = kTriggerK;
        cfg.trigger.l = kTriggerL;
        cfg.trigger.alpha = alpha;
        SafeAgent agent(f.MakeLearned(), f.MakeFallback(), estimator, cfg);
        abr::AbrEnvironment eval_env(f.video, {});
        return EvaluatePolicy(agent, eval_env, f.traces).MeanQoe();
      },
      target, 0.0, hi * 1.25, calib);

  EXPECT_EQ(via_replay.alpha, via_full.alpha);
  EXPECT_EQ(via_replay.achieved_qoe, via_full.achieved_qoe);
  EXPECT_EQ(via_replay.iterations, via_full.iterations);
}

TEST(CalibrationReplay, RescoringSharedTrajectoryMatchesDedicatedRecording) {
  // The workbench records ONE trajectory set and calls ScoreWith once per
  // estimator (U_pi, then U_V). That is only sound if rescoring a shared
  // recording gives exactly what a dedicated recording for that estimator
  // would - and doesn't disturb results for the first estimator.
  ReplayFixtureParts f;
  abr::AbrEnvironment env(f.video, {});
  const auto first = f.MakeEstimator(2);
  const auto second = f.MakeEstimator(0);  // different discard: new scores

  CalibrationReplay<abr::AbrEnvironment> shared(
      [&] { return f.MakeLearned(); }, [&] { return f.MakeFallback(); }, env,
      f.traces, kTriggerK, kTriggerL, util::ThreadPool::Shared());
  shared.ScoreWith(first);
  const double first_hi = shared.MaxFullWindowVariance();
  const double first_qoe = shared.MeanQoeAt(first_hi * 0.4);

  shared.ScoreWith(second);
  CalibrationReplay<abr::AbrEnvironment> dedicated(
      [&] { return f.MakeLearned(); }, [&] { return f.MakeFallback(); }, env,
      f.traces, kTriggerK, kTriggerL, util::ThreadPool::Shared());
  dedicated.ScoreWith(second);
  ASSERT_EQ(shared.SessionCount(), dedicated.SessionCount());
  for (std::size_t i = 0; i < shared.SessionCount(); ++i) {
    EXPECT_EQ(shared.Session(i).variances, dedicated.Session(i).variances)
        << i;
  }
  const double second_hi = shared.MaxFullWindowVariance();
  EXPECT_EQ(second_hi, dedicated.MaxFullWindowVariance());
  EXPECT_NE(second_hi, first_hi);  // the estimators genuinely differ
  EXPECT_EQ(shared.MeanQoeAt(second_hi * 0.4),
            dedicated.MeanQoeAt(second_hi * 0.4));

  // Scoring the first estimator again restores its results exactly.
  shared.ScoreWith(first);
  EXPECT_EQ(shared.MaxFullWindowVariance(), first_hi);
  EXPECT_EQ(shared.MeanQoeAt(first_hi * 0.4), first_qoe);
}

TEST(CalibrationReplay, ParallelRecordingMatchesSerial) {
  ReplayFixtureParts f;
  abr::AbrEnvironment env(f.video, {});

  util::ParallelOptions serial;
  serial.max_workers = 0;
  CalibrationReplay<abr::AbrEnvironment> one(
      [&] { return f.MakeLearned(); }, [&] { return f.MakeFallback(); }, env,
      f.traces, kTriggerK, kTriggerL, util::ThreadPool::Shared(), serial);
  one.ScoreWith(f.MakeEstimator(2));
  util::ParallelOptions wide;
  wide.max_workers = 3;
  CalibrationReplay<abr::AbrEnvironment> many(
      [&] { return f.MakeLearned(); }, [&] { return f.MakeFallback(); }, env,
      f.traces, kTriggerK, kTriggerL, util::ThreadPool::Shared(), wide);
  many.ScoreWith(f.MakeEstimator(2));

  ASSERT_EQ(one.SessionCount(), many.SessionCount());
  for (std::size_t i = 0; i < one.SessionCount(); ++i) {
    EXPECT_EQ(one.Session(i).actions, many.Session(i).actions) << i;
    EXPECT_EQ(one.Session(i).variances, many.Session(i).variances) << i;
    EXPECT_EQ(one.Session(i).total_qoe, many.Session(i).total_qoe) << i;
  }
  const double hi = one.MaxFullWindowVariance();
  for (const double alpha : {0.0, hi * 0.3, hi * 0.8}) {
    EXPECT_EQ(one.MeanQoeAt(alpha), many.MeanQoeAt(alpha)) << alpha;
  }
}

TEST(FirstBinaryTriggerStep, ReplicatesBinaryTriggerSemantics) {
  ReplaySession session;
  // No warm-up: uncertain whenever the score is >= 0.5.
  session.scores = {1.0, 1.0, 0.0, 0.6, 0.5, 0.4, 1.0, 0.7, 0.5};
  EXPECT_EQ(FirstBinaryTriggerStep(session, /*l=*/1), 0u);
  EXPECT_EQ(FirstBinaryTriggerStep(session, /*l=*/2), 1u);
  // The t=3,4 run breaks at t=5 (0.4 < 0.5); the first l=3 run ends at 8.
  EXPECT_EQ(FirstBinaryTriggerStep(session, /*l=*/3), 8u);
  EXPECT_EQ(FirstBinaryTriggerStep(session, /*l=*/4), kReplayNoTrigger);
}

TEST(CalibrationReplay,
     BinaryTriggerQoeBitIdenticalToFullSafeAgentEvaluation) {
  // The ND calibration target is derived from the shared recording via
  // the binary trigger scan; it must match a full SafeAgent evaluation
  // with TriggerMode::kBinary exactly. The periodic estimator is
  // stateful, so this also pins ScoreWith's per-trace Reset + in-order
  // scoring contract.
  ReplayFixtureParts f;
  abr::AbrEnvironment env(f.video, {});

  CalibrationReplay<abr::AbrEnvironment> replay(
      [&] { return f.MakeLearned(); }, [&] { return f.MakeFallback(); }, env,
      f.traces, kTriggerK, kTriggerL, util::ThreadPool::Shared());
  replay.ScoreWith([]() -> std::shared_ptr<UncertaintyEstimator> {
    return std::make_shared<PeriodicBinaryEstimator>();
  });

  SafeAgentConfig cfg;
  cfg.trigger.mode = TriggerMode::kBinary;
  cfg.trigger.k = kTriggerK;
  cfg.trigger.l = kTriggerL;
  SafeAgent agent(f.MakeLearned(), f.MakeFallback(),
                  std::make_shared<PeriodicBinaryEstimator>(), cfg);
  abr::AbrEnvironment eval_env(f.video, {});
  const double full = EvaluatePolicy(agent, eval_env, f.traces).MeanQoe();

  // The pattern fires mid-trace, so this exercises real suffix replays.
  ASSERT_NE(full, Mean([&] {
              std::vector<double> totals;
              for (std::size_t i = 0; i < replay.SessionCount(); ++i) {
                totals.push_back(replay.Session(i).total_qoe);
              }
              return totals;
            }()));
  EXPECT_EQ(replay.MeanQoeAtBinaryTrigger(), full);
}

}  // namespace
}  // namespace osap::core
