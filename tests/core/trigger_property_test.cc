// Property-based sweeps over the defaulting trigger: for every (k, l)
// combination, the firing semantics promised by the paper's thresholding
// description must hold exactly.
#include <gtest/gtest.h>

#include <tuple>

#include "core/trigger.h"
#include "util/rng.h"

namespace osap::core {
namespace {

using Params = std::tuple<std::size_t /*k*/, std::size_t /*l*/>;

class TriggerProperties : public ::testing::TestWithParam<Params> {};

TEST_P(TriggerProperties, BinaryFiresExactlyAfterLOnes) {
  const auto [k, l] = GetParam();
  TriggerConfig cfg;
  cfg.mode = TriggerMode::kBinary;
  cfg.k = k;
  cfg.l = l;
  DefaultTrigger trigger(cfg);
  for (std::size_t i = 1; i < l; ++i) {
    ASSERT_FALSE(trigger.Update(1.0)) << "fired early at " << i;
  }
  EXPECT_TRUE(trigger.Update(1.0));
}

TEST_P(TriggerProperties, AnyCertainStepDelaysFiringByExactlyItsPosition) {
  const auto [k, l] = GetParam();
  if (l < 2) GTEST_SKIP() << "needs a streak to break";
  TriggerConfig cfg;
  cfg.mode = TriggerMode::kBinary;
  cfg.k = k;
  cfg.l = l;
  DefaultTrigger trigger(cfg);
  // l-1 uncertain steps, then a certain one: streak resets to zero.
  for (std::size_t i = 0; i < l - 1; ++i) trigger.Update(1.0);
  trigger.Update(0.0);
  EXPECT_EQ(trigger.ConsecutiveUncertain(), 0u);
  // A fresh full streak is needed again.
  for (std::size_t i = 1; i < l; ++i) {
    ASSERT_FALSE(trigger.Update(1.0));
  }
  EXPECT_TRUE(trigger.Update(1.0));
}

TEST_P(TriggerProperties, VarianceModeNeverFiresDuringWarmup) {
  const auto [k, l] = GetParam();
  if (k < 2) GTEST_SKIP() << "variance mode requires k >= 2";
  TriggerConfig cfg;
  cfg.mode = TriggerMode::kWindowVariance;
  cfg.k = k;
  cfg.l = l;
  cfg.alpha = 0.0;
  DefaultTrigger trigger(cfg);
  Rng rng(k * 31 + l);
  for (std::size_t i = 0; i + 1 < k; ++i) {
    ASSERT_FALSE(trigger.Update(rng.Uniform(0.0, 100.0)))
        << "fired during warm-up at step " << i;
  }
}

TEST_P(TriggerProperties, VarianceModeConstantSignalNeverFires) {
  const auto [k, l] = GetParam();
  if (k < 2) GTEST_SKIP() << "variance mode requires k >= 2";
  TriggerConfig cfg;
  cfg.mode = TriggerMode::kWindowVariance;
  cfg.k = k;
  cfg.l = l;
  cfg.alpha = 1e-12;
  DefaultTrigger trigger(cfg);
  for (int i = 0; i < 200; ++i) {
    ASSERT_FALSE(trigger.Update(42.0));
  }
}

TEST_P(TriggerProperties, VarianceModeAlternatingSignalFiresOnceWarm) {
  const auto [k, l] = GetParam();
  if (k < 2) GTEST_SKIP() << "variance mode requires k >= 2";
  TriggerConfig cfg;
  cfg.mode = TriggerMode::kWindowVariance;
  cfg.k = k;
  cfg.l = l;
  cfg.alpha = 0.01;  // alternating 0/10 has variance 25 >> alpha
  DefaultTrigger trigger(cfg);
  bool fired = false;
  for (int i = 0; i < 200 && !fired; ++i) {
    fired = trigger.Update(i % 2 == 0 ? 0.0 : 10.0);
  }
  EXPECT_TRUE(fired);
}

TEST_P(TriggerProperties, ResetIsEquivalentToFreshTrigger) {
  const auto [k, l] = GetParam();
  TriggerConfig cfg;
  cfg.mode = TriggerMode::kWindowVariance;
  cfg.k = std::max<std::size_t>(k, 2);
  cfg.l = l;
  cfg.alpha = 0.5;
  DefaultTrigger used(cfg);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) used.Update(rng.Uniform(0.0, 10.0));
  used.Reset();
  DefaultTrigger fresh(cfg);
  Rng rng_a(13);
  Rng rng_b(13);
  for (int i = 0; i < 50; ++i) {
    const double a = rng_a.Uniform(0.0, 10.0);
    const double b = rng_b.Uniform(0.0, 10.0);
    ASSERT_EQ(used.Update(a), fresh.Update(b)) << "diverged at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KLGrid, TriggerProperties,
    ::testing::Combine(::testing::Values(2u, 5u, 30u),
                       ::testing::Values(1u, 3u, 7u)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_l" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace osap::core
