// Conformal calibration: the nonconformity score must be exactly the
// trigger-firing boundary, rank selection must honor the split-conformal
// coverage guarantee (finite-sample, checked empirically on synthetic
// regime-switch streams), and the streaming arm must keep coverage after
// a regime switch that strands the frozen offline threshold.
#include "core/conformal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/replay_calibration.h"
#include "util/rng.h"

namespace osap::core {
namespace {

ReplaySession SessionOf(std::vector<double> variances) {
  ReplaySession session;
  session.variances = std::move(variances);
  return session;
}

TEST(SessionNonconformity, HandComputedWindows) {
  // k=3: full windows from t=2. Runs of l=2 over {0.1,5,5,0.1,7,6,0.5}:
  // run minima are min(0.1,5)=0.1, min(5,5)=5, min(5,0.1)=0.1,
  // min(0.1,7)=0.1, min(7,6)=6, min(6,0.5)=0.5 -> max 6.
  const ReplaySession s =
      SessionOf({9.0, 9.0, 0.1, 5.0, 5.0, 0.1, 7.0, 6.0, 0.5});
  EXPECT_EQ(SessionNonconformity(s, 3, 2), 6.0);
  // l=1: the max full-window variance.
  EXPECT_EQ(SessionNonconformity(s, 3, 1), 7.0);
  // l=3: best run min over triples -> min(0.1,7,6)=0.1 etc; max is
  // min(5,5,0.1)... runs: (0.1,5,5)=0.1 (5,5,0.1)=0.1 (5,0.1,7)=0.1
  // (0.1,7,6)=0.1 (7,6,0.5)=0.5 -> 0.5.
  EXPECT_EQ(SessionNonconformity(s, 3, 3), 0.5);
  // Too short for any full-window l-run.
  EXPECT_EQ(SessionNonconformity(SessionOf({1.0, 2.0}), 3, 2), 0.0);
}

TEST(SessionNonconformity, IsExactlyTheTriggerFiringBoundary) {
  // The defining property: the (k, l) trigger fires at threshold alpha
  // iff alpha < SessionNonconformity. Checked against FirstTriggerStep
  // on randomized sessions at the boundary itself and one ulp below.
  Rng rng(42);
  for (std::size_t trial = 0; trial < 200; ++trial) {
    std::vector<double> variances;
    const std::size_t steps = 5 + rng.UniformInt(40);
    for (std::size_t t = 0; t < steps; ++t) {
      variances.push_back(rng.Uniform() < 0.2 ? 0.0
                                              : rng.Uniform(0.0, 10.0));
    }
    const std::size_t k = 2 + rng.UniformInt(4);
    const std::size_t l = 1 + rng.UniformInt(4);
    const ReplaySession session = SessionOf(variances);
    const double score = SessionNonconformity(session, k, l);
    EXPECT_EQ(FirstTriggerStep(session, score, k, l), kReplayNoTrigger)
        << "trial " << trial;
    if (score > 0.0) {
      const double below =
          std::nextafter(score, -std::numeric_limits<double>::infinity());
      EXPECT_NE(FirstTriggerStep(session, below, k, l), kReplayNoTrigger)
          << "trial " << trial;
    }
  }
}

TEST(BinaryTriggerRate, CountsFiringSessions) {
  ReplaySession fires;
  fires.scores = {0.9, 0.9, 0.9};
  ReplaySession quiet;
  quiet.scores = {0.9, 0.0, 0.9, 0.0};
  const std::vector<ReplaySession> sessions = {fires, quiet, fires, quiet};
  EXPECT_DOUBLE_EQ(BinaryTriggerRate(sessions, 3), 0.5);
  EXPECT_DOUBLE_EQ(BinaryTriggerRate(sessions, 1), 1.0);
  EXPECT_DOUBLE_EQ(BinaryTriggerRate(sessions, 4), 0.0);
}

TEST(ConformalAlpha, SelectsTheTextbookOrderStatistic) {
  // n=19 scores 1..19, epsilon=0.05: rank = ceil(20 * 0.95) = 19.
  std::vector<double> scores;
  for (int i = 19; i >= 1; --i) scores.push_back(i);  // unsorted on entry
  ConformalConfig config;
  config.miscoverage = 0.05;
  const ConformalResult r = ConformalAlpha(scores, config);
  EXPECT_EQ(r.rank, 19u);
  EXPECT_EQ(r.alpha, 19.0);
  EXPECT_EQ(r.sessions, 19u);
  EXPECT_EQ(r.empirical_miscoverage, 0.0);  // nothing exceeds the max

  // epsilon=0.5: rank = ceil(20 * 0.5) = 10 -> 9 of 19 scores above.
  config.miscoverage = 0.5;
  const ConformalResult median = ConformalAlpha(scores, config);
  EXPECT_EQ(median.rank, 10u);
  EXPECT_EQ(median.alpha, 10.0);
  EXPECT_DOUBLE_EQ(median.empirical_miscoverage, 9.0 / 19.0);
}

TEST(ConformalAlpha, CoverageGuaranteeHoldsOnFreshExchangeableSessions) {
  // The split-conformal bound, checked empirically: calibrate on n
  // scores, test on m fresh draws from the SAME distribution; the
  // fresh-session default rate must sit within binomial noise of
  // [epsilon - 1/(n+1), epsilon].
  Rng rng(7);
  const std::size_t n = 399;   // (n+1) * 0.05 = 20 exactly
  const std::size_t m = 20000;
  const double epsilon = 0.05;
  std::vector<double> calibration;
  for (std::size_t i = 0; i < n; ++i) {
    calibration.push_back(std::exp(rng.Normal()));
  }
  ConformalConfig config;
  config.miscoverage = epsilon;
  const ConformalResult r = ConformalAlpha(calibration, config);

  std::size_t defaults = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (std::exp(rng.Normal()) > r.alpha) ++defaults;
  }
  const double rate = static_cast<double>(defaults) / m;
  // 4 sigma of Bin(m, eps)/m ~ 0.0062, plus the 1/(n+1) lower slack.
  EXPECT_LT(rate, epsilon + 0.01);
  EXPECT_GT(rate, epsilon - 1.0 / (n + 1) - 0.01);
}

TEST(ConformalAlphaMatchingQoe, PicksTheRankClosestToTheTarget) {
  // Oracle: QoE decreases in alpha; the target sits exactly on the
  // rank-8 order statistic, one below the epsilon-seeded rank 9.
  std::vector<double> scores = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  ConformalConfig config;
  config.miscoverage = 0.1;  // seed rank = ceil(10 * 0.9) = 9
  config.refine_radius = 1;
  const auto qoe_at = [](double alpha) { return 100.0 - alpha; };
  const ConformalResult r =
      ConformalAlphaMatchingQoe(scores, config, qoe_at, 92.0);
  EXPECT_EQ(r.rank, 8u);
  EXPECT_EQ(r.alpha, 8.0);
  EXPECT_EQ(r.achieved_qoe, 92.0);
  EXPECT_EQ(r.evaluations, 2u);  // ranks 8 and 9, distinct values
  // Implied epsilon inverts the selected rank.
  EXPECT_DOUBLE_EQ(r.miscoverage, 1.0 - 8.0 / 10.0);

  // radius 0 degenerates to pure conformal selection.
  config.refine_radius = 0;
  const ConformalResult pure =
      ConformalAlphaMatchingQoe(scores, config, qoe_at, 92.0);
  EXPECT_EQ(pure.rank, 9u);
  EXPECT_EQ(pure.evaluations, 1u);
}

TEST(ConformalAlphaMatchingQoe, SkipsDuplicateOrderStatistics) {
  std::vector<double> scores = {1, 5, 5, 5, 5, 5, 5, 5, 9};
  ConformalConfig config;
  config.miscoverage = 0.5;  // seed rank 5, all duplicates of 5.0
  config.refine_radius = 2;
  std::size_t probes = 0;
  const auto qoe_at = [&](double) { ++probes; return 50.0; };
  const ConformalResult r =
      ConformalAlphaMatchingQoe(scores, config, qoe_at, 50.0);
  EXPECT_EQ(probes, 1u);  // ranks 3..7 share one distinct value
  EXPECT_EQ(r.alpha, 5.0);
}

// --- streaming arm: coverage across a regime switch ---------------------

/// Feeds `count` draws of `gen` into the calibrator, refreshing the
/// threshold every `refresh` observations (the epoch-boundary cadence),
/// and returns the fraction that exceeded the then-live threshold.
template <typename Gen>
double StreamRegime(StreamingConformal& conformal, Gen gen,
                    std::size_t count, std::size_t refresh) {
  const std::size_t before_obs = conformal.Observations();
  const std::size_t before_exc = conformal.Exceedances();
  for (std::size_t i = 0; i < count; ++i) {
    conformal.Observe(gen());
    if ((i + 1) % refresh == 0) conformal.RefreshAlpha();
  }
  return static_cast<double>(conformal.Exceedances() - before_exc) /
         static_cast<double>(conformal.Observations() - before_obs);
}

TEST(StreamingConformal, CoverageWithinBoundsBeforeAndAfterRegimeSwitch) {
  // Regime A: variance statistics ~ Uniform(0, 1). Regime B: the
  // distribution shifts up 5x (drift the frozen threshold cannot see).
  // In both regimes, once warmed up, the ONLINE arm's exceedance rate
  // must track the 10% target within finite-sample noise.
  Rng rng(123);
  const double epsilon = 0.10;
  const std::size_t window = 512;
  const std::size_t refresh = 64;
  StreamingConformal conformal(epsilon, window, /*initial_alpha=*/0.0);

  // Warm-up in regime A (discarded: the initial threshold is 0, so
  // every early observation "exceeds" until the sketch fills).
  StreamRegime(conformal, [&] { return rng.Uniform(); }, 2 * window,
               refresh);
  const double in_regime_a = StreamRegime(
      conformal, [&] { return rng.Uniform(); }, 4000, refresh);
  EXPECT_NEAR(in_regime_a, epsilon, 0.03);

  // Switch. Give the windowed sketch 2*window observations to rotate
  // the old regime out, then measure steady-state coverage in B.
  StreamRegime(conformal, [&] { return 5.0 * rng.Uniform(); }, 2 * window,
               refresh);
  const double in_regime_b = StreamRegime(
      conformal, [&] { return 5.0 * rng.Uniform(); }, 4000, refresh);
  EXPECT_NEAR(in_regime_b, epsilon, 0.03);
  // The live threshold followed the scale change.
  EXPECT_GT(conformal.Alpha(), 3.0);
  EXPECT_LT(conformal.Alpha(), 5.0);
}

TEST(StreamingConformal, FrozenOfflineThresholdDegradesAfterTheSwitch) {
  // The pinned comparison the online arm exists for: a threshold
  // conformally calibrated OFFLINE on regime A holds coverage on fresh
  // regime-A data but mis-covers regime B by an order of magnitude,
  // while the streaming arm re-covers after its rotation warm-up.
  Rng rng(321);
  const double epsilon = 0.10;
  std::vector<double> calibration;
  for (std::size_t i = 0; i < 499; ++i) {
    calibration.push_back(rng.Uniform());
  }
  ConformalConfig config;
  config.miscoverage = epsilon;
  const double frozen = ConformalAlpha(calibration, config).alpha;

  std::size_t frozen_exceed_a = 0;
  std::size_t frozen_exceed_b = 0;
  const std::size_t m = 5000;
  for (std::size_t i = 0; i < m; ++i) {
    if (rng.Uniform() > frozen) ++frozen_exceed_a;
    if (5.0 * rng.Uniform() > frozen) ++frozen_exceed_b;
  }
  const double frozen_rate_a = static_cast<double>(frozen_exceed_a) / m;
  const double frozen_rate_b = static_cast<double>(frozen_exceed_b) / m;
  EXPECT_NEAR(frozen_rate_a, epsilon, 0.03);  // still covered in-regime
  EXPECT_GT(frozen_rate_b, 0.75);             // collapsed after the switch

  // Streaming arm on the same post-switch stream: back within bounds.
  StreamingConformal conformal(epsilon, 512, frozen);
  StreamRegime(conformal, [&] { return 5.0 * rng.Uniform(); }, 1024, 64);
  const double streaming_rate_b = StreamRegime(
      conformal, [&] { return 5.0 * rng.Uniform(); }, 4000, 64);
  EXPECT_NEAR(streaming_rate_b, epsilon, 0.03);
  EXPECT_LT(streaming_rate_b, frozen_rate_b / 5.0);
}

}  // namespace
}  // namespace osap::core
