#include "core/ensemble_estimators.h"

#include <gtest/gtest.h>

#include "abr/state.h"
#include "policies/pensieve_net.h"

namespace osap::core {
namespace {

abr::AbrStateLayout Layout() { return abr::AbrStateLayout{}; }

std::vector<std::shared_ptr<nn::ActorCriticNet>> MakeAgents(
    std::size_t n, std::uint64_t seed_base) {
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents;
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(seed_base + i);
    agents.push_back(std::make_shared<nn::ActorCriticNet>(
        policies::MakePensieveActorCritic(Layout(), {}, rng)));
  }
  return agents;
}

std::vector<std::shared_ptr<nn::CompositeNet>> MakeValueNets(
    std::size_t n, std::uint64_t seed_base) {
  std::vector<std::shared_ptr<nn::CompositeNet>> nets;
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(seed_base + i);
    nets.push_back(std::make_shared<nn::CompositeNet>(
        policies::BuildPensieveNet(Layout(), 1, {}, rng)));
  }
  return nets;
}

TEST(SurvivingMembers, KeepsSmallestDistances) {
  const std::vector<double> d = {5.0, 1.0, 3.0, 0.5, 4.0};
  const auto survivors = SurvivingMembers(d, 3);
  EXPECT_EQ(survivors, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(SurvivingMembers, StableOnTies) {
  const std::vector<double> d = {1.0, 1.0, 1.0, 1.0};
  const auto survivors = SurvivingMembers(d, 2);
  EXPECT_EQ(survivors, (std::vector<std::size_t>{0, 1}));
}

TEST(SurvivingMembers, KeepAllIsIdentity) {
  const std::vector<double> d = {3.0, 1.0};
  const auto survivors = SurvivingMembers(d, 2);
  EXPECT_EQ(survivors, (std::vector<std::size_t>{0, 1}));
}

TEST(SurvivingMembers, ValidatesKeep) {
  const std::vector<double> d = {1.0};
  EXPECT_THROW(SurvivingMembers(d, 0), std::invalid_argument);
  EXPECT_THROW(SurvivingMembers(d, 2), std::invalid_argument);
}

TEST(AgentEnsembleEstimator, IdenticalMembersScoreZero) {
  // Five copies of the same network: perfect agreement.
  Rng rng(1);
  auto net = std::make_shared<nn::ActorCriticNet>(
      policies::MakePensieveActorCritic(Layout(), {}, rng));
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents(5, net);
  AgentEnsembleEstimator estimator(agents, 2);
  const mdp::State state(Layout().Size(), 0.3);
  EXPECT_NEAR(estimator.Score(state), 0.0, 1e-12);
}

TEST(AgentEnsembleEstimator, DisagreementYieldsPositiveScore) {
  AgentEnsembleEstimator estimator(MakeAgents(5, 100), 2);
  const mdp::State state(Layout().Size(), 0.3);
  EXPECT_GT(estimator.Score(state), 0.0);
}

TEST(AgentEnsembleEstimator, TrimmingRemovesOutlierInfluence) {
  // 4 identical members + 1 wildly different: with discard=1 the outlier
  // is dropped and the score collapses to ~0; with discard=0 it does not.
  Rng rng(2);
  auto common = std::make_shared<nn::ActorCriticNet>(
      policies::MakePensieveActorCritic(Layout(), {}, rng));
  Rng rng2(999);
  auto outlier = std::make_shared<nn::ActorCriticNet>(
      policies::MakePensieveActorCritic(Layout(), {}, rng2));
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents = {
      common, common, common, common, outlier};
  const mdp::State state(Layout().Size(), 0.4);
  AgentEnsembleEstimator trimmed(agents, 1);
  AgentEnsembleEstimator untrimmed(agents, 0);
  EXPECT_NEAR(trimmed.Score(state), 0.0, 1e-9);
  EXPECT_GT(untrimmed.Score(state), trimmed.Score(state));
}

TEST(AgentEnsembleEstimator, AlwaysReady) {
  AgentEnsembleEstimator estimator(MakeAgents(3, 10), 1);
  EXPECT_TRUE(estimator.Ready());
  estimator.Reset();  // no-op, must not throw
  EXPECT_TRUE(estimator.Ready());
}

TEST(AgentEnsembleEstimator, ValidatesConstruction) {
  EXPECT_THROW(AgentEnsembleEstimator({}, 0), std::invalid_argument);
  auto agents = MakeAgents(3, 20);
  EXPECT_THROW(AgentEnsembleEstimator(agents, 3), std::invalid_argument);
}

TEST(ValueEnsembleEstimator, IdenticalMembersScoreZero) {
  Rng rng(3);
  auto net = std::make_shared<nn::CompositeNet>(
      policies::BuildPensieveNet(Layout(), 1, {}, rng));
  std::vector<std::shared_ptr<nn::CompositeNet>> nets(5, net);
  ValueEnsembleEstimator estimator(nets, 2);
  EXPECT_NEAR(estimator.Score(mdp::State(Layout().Size(), 0.2)), 0.0,
              1e-12);
}

TEST(ValueEnsembleEstimator, DisagreementYieldsPositiveScore) {
  ValueEnsembleEstimator estimator(MakeValueNets(5, 200), 2);
  EXPECT_GT(estimator.Score(mdp::State(Layout().Size(), 0.2)), 0.0);
}

TEST(ValueEnsembleEstimator, ScoreMatchesManualComputation) {
  // 3 members, keep all: score = sum |v_i - mean|.
  auto nets = MakeValueNets(3, 300);
  ValueEnsembleEstimator estimator(nets, 0);
  const mdp::State state(Layout().Size(), 0.35);
  std::vector<double> values;
  for (const auto& n : nets) {
    values.push_back(n->Forward(nn::Matrix::RowVector(state)).At(0, 0));
  }
  const double mean = (values[0] + values[1] + values[2]) / 3.0;
  double expected = 0.0;
  for (double v : values) expected += std::abs(v - mean);
  EXPECT_NEAR(estimator.Score(state), expected, 1e-12);
}

TEST(ValueEnsembleEstimator, TrimmingDropsFarthestValues) {
  auto nets = MakeValueNets(5, 400);
  const mdp::State state(Layout().Size(), 0.15);
  ValueEnsembleEstimator trimmed(nets, 2);
  ValueEnsembleEstimator untrimmed(nets, 0);
  EXPECT_LT(trimmed.Score(state), untrimmed.Score(state));
}

/// A spread of pseudo-random states covering more than one ScoreBatch
/// chunk (kScoreBatch = 32 internally).
std::vector<mdp::State> MakeStates(std::size_t count) {
  Rng rng(77);
  std::vector<mdp::State> states;
  for (std::size_t i = 0; i < count; ++i) {
    mdp::State s(Layout().Size());
    for (double& v : s) v = rng.Normal(0.0, 1.0);
    states.push_back(std::move(s));
  }
  return states;
}

TEST(AgentEnsembleEstimator, ScoreBatchMatchesSequentialScoreBitForBit) {
  AgentEnsembleEstimator estimator(MakeAgents(5, 500), 2);
  const auto states = MakeStates(71);  // 2 full chunks + a partial one
  std::vector<double> batched(states.size());
  estimator.ScoreBatch(states, batched);
  for (std::size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(batched[i], estimator.Score(states[i])) << "state " << i;
  }
}

TEST(ValueEnsembleEstimator, ScoreBatchMatchesSequentialScoreBitForBit) {
  ValueEnsembleEstimator estimator(MakeValueNets(5, 600), 2);
  const auto states = MakeStates(71);
  std::vector<double> batched(states.size());
  estimator.ScoreBatch(states, batched);
  for (std::size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(batched[i], estimator.Score(states[i])) << "state " << i;
  }
}

TEST(ValueEnsembleEstimator, RejectsMultiOutputMembers) {
  Rng rng(5);
  auto bad = std::make_shared<nn::CompositeNet>(
      policies::BuildPensieveNet(Layout(), 2, {}, rng));
  std::vector<std::shared_ptr<nn::CompositeNet>> nets = {bad};
  EXPECT_THROW(ValueEnsembleEstimator(nets, 0), std::invalid_argument);
}

}  // namespace
}  // namespace osap::core
