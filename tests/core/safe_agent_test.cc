#include "core/safe_agent.h"

#include <gtest/gtest.h>

#include <memory>

namespace osap::core {
namespace {

/// Test doubles: constant policies and a scripted estimator.
class FixedPolicy final : public mdp::Policy {
 public:
  explicit FixedPolicy(mdp::Action a) : action_(a) {}
  mdp::Action SelectAction(const mdp::State&) override { return action_; }
  void Reset() override { ++resets; }
  std::string Name() const override { return "fixed"; }
  int resets = 0;

 private:
  mdp::Action action_;
};

/// Emits a scripted sequence of scores (repeats the last one when
/// exhausted).
class ScriptedEstimator final : public UncertaintyEstimator {
 public:
  explicit ScriptedEstimator(std::vector<double> scores)
      : scores_(std::move(scores)) {}
  void Reset() override {
    index_ = 0;
    ++resets;
  }
  double Score(const mdp::State&) override {
    const double s =
        index_ < scores_.size() ? scores_[index_] : scores_.back();
    ++index_;
    return s;
  }
  bool Ready() const override { return true; }
  std::string Name() const override { return "scripted"; }
  int resets = 0;

 private:
  std::vector<double> scores_;
  std::size_t index_ = 0;
};

SafeAgentConfig BinaryConfig(std::size_t l) {
  SafeAgentConfig cfg;
  cfg.trigger.mode = TriggerMode::kBinary;
  cfg.trigger.l = l;
  return cfg;
}

TEST(SafeAgent, UsesLearnedPolicyWhileCertain) {
  auto learned = std::make_shared<FixedPolicy>(5);
  auto fallback = std::make_shared<FixedPolicy>(0);
  auto estimator =
      std::make_shared<ScriptedEstimator>(std::vector<double>{0.0});
  SafeAgent agent(learned, fallback, estimator, BinaryConfig(3));
  const mdp::State s;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(agent.SelectAction(s), 5);
  }
  EXPECT_FALSE(agent.Defaulted());
  EXPECT_DOUBLE_EQ(agent.DefaultedFraction(), 0.0);
}

TEST(SafeAgent, DefaultsAfterLConsecutiveUncertainSteps) {
  auto learned = std::make_shared<FixedPolicy>(5);
  auto fallback = std::make_shared<FixedPolicy>(0);
  auto estimator = std::make_shared<ScriptedEstimator>(
      std::vector<double>{0.0, 0.0, 1.0, 1.0, 1.0, 1.0});
  SafeAgent agent(learned, fallback, estimator, BinaryConfig(3));
  const mdp::State s;
  EXPECT_EQ(agent.SelectAction(s), 5);  // score 0
  EXPECT_EQ(agent.SelectAction(s), 5);  // score 0
  EXPECT_EQ(agent.SelectAction(s), 5);  // first uncertain
  EXPECT_EQ(agent.SelectAction(s), 5);  // second uncertain
  EXPECT_EQ(agent.SelectAction(s), 0);  // third -> fires, defaults
  EXPECT_TRUE(agent.Defaulted());
  EXPECT_EQ(agent.DefaultStep(), 4u);
}

TEST(SafeAgent, PermanentModeNeverRevokes) {
  auto learned = std::make_shared<FixedPolicy>(5);
  auto fallback = std::make_shared<FixedPolicy>(0);
  // Uncertain burst then quiet forever.
  std::vector<double> scores(3, 1.0);
  scores.resize(100, 0.0);
  auto estimator = std::make_shared<ScriptedEstimator>(scores);
  SafeAgent agent(learned, fallback, estimator, BinaryConfig(3));
  const mdp::State s;
  for (int i = 0; i < 50; ++i) agent.SelectAction(s);
  EXPECT_TRUE(agent.Defaulted());
  EXPECT_EQ(agent.SelectAction(s), 0);
}

TEST(SafeAgent, RevocableModeReturnsAfterQuietPeriod) {
  auto learned = std::make_shared<FixedPolicy>(5);
  auto fallback = std::make_shared<FixedPolicy>(0);
  std::vector<double> scores = {1.0, 1.0};  // fire immediately (l=2)
  scores.resize(50, 0.0);                   // then quiet
  auto estimator = std::make_shared<ScriptedEstimator>(scores);
  SafeAgentConfig cfg = BinaryConfig(2);
  cfg.mode = DefaultingMode::kRevocable;
  cfg.revoke_after = 5;
  SafeAgent agent(learned, fallback, estimator, cfg);
  const mdp::State s;
  agent.SelectAction(s);
  EXPECT_EQ(agent.SelectAction(s), 0);  // defaulted at step 1
  // 5 quiet steps later the agent revokes.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(agent.SelectAction(s), 0);
  EXPECT_EQ(agent.SelectAction(s), 5);
  EXPECT_FALSE(agent.Defaulted());
}

TEST(SafeAgent, RevocableQuietStreakResetsOnNoise) {
  auto learned = std::make_shared<FixedPolicy>(5);
  auto fallback = std::make_shared<FixedPolicy>(0);
  // Fire (l=1), then alternate quiet and uncertain: never revokes with
  // revoke_after=3.
  std::vector<double> scores = {1.0};
  for (int i = 0; i < 30; ++i) {
    scores.push_back(0.0);
    scores.push_back(0.0);
    scores.push_back(1.0);
  }
  auto estimator = std::make_shared<ScriptedEstimator>(scores);
  SafeAgentConfig cfg = BinaryConfig(1);
  cfg.mode = DefaultingMode::kRevocable;
  cfg.revoke_after = 3;
  SafeAgent agent(learned, fallback, estimator, cfg);
  const mdp::State s;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    agent.SelectAction(s);
  }
  EXPECT_TRUE(agent.Defaulted());
}

TEST(SafeAgent, DefaultedFractionTracksUsage) {
  auto learned = std::make_shared<FixedPolicy>(5);
  auto fallback = std::make_shared<FixedPolicy>(0);
  std::vector<double> scores = {0.0, 0.0, 0.0, 0.0, 1.0};
  auto estimator = std::make_shared<ScriptedEstimator>(scores);
  SafeAgent agent(learned, fallback, estimator, BinaryConfig(1));
  const mdp::State s;
  for (int i = 0; i < 10; ++i) agent.SelectAction(s);
  // Steps 0-3 learned, steps 4-9 defaulted -> 6/10.
  EXPECT_NEAR(agent.DefaultedFraction(), 0.6, 1e-12);
  EXPECT_EQ(agent.StepCount(), 10u);
}

TEST(SafeAgent, ResetRestoresLearnedControlAndPropagates) {
  auto learned = std::make_shared<FixedPolicy>(5);
  auto fallback = std::make_shared<FixedPolicy>(0);
  auto estimator =
      std::make_shared<ScriptedEstimator>(std::vector<double>{1.0});
  SafeAgent agent(learned, fallback, estimator, BinaryConfig(1));
  const mdp::State s;
  agent.SelectAction(s);
  EXPECT_TRUE(agent.Defaulted());
  agent.Reset();
  EXPECT_FALSE(agent.Defaulted());
  EXPECT_EQ(agent.StepCount(), 0u);
  EXPECT_EQ(learned->resets, 1);
  EXPECT_EQ(fallback->resets, 1);
  EXPECT_EQ(estimator->resets, 1);
}

TEST(SafeAgent, NameDescribesComposition) {
  auto learned = std::make_shared<FixedPolicy>(5);
  auto fallback = std::make_shared<FixedPolicy>(0);
  auto estimator =
      std::make_shared<ScriptedEstimator>(std::vector<double>{0.0});
  SafeAgent agent(learned, fallback, estimator, BinaryConfig(1));
  EXPECT_EQ(agent.Name(), "safe(fixed->fixed,scripted)");
}

TEST(SafeAgent, ValidatesConstruction) {
  auto p = std::make_shared<FixedPolicy>(0);
  auto e = std::make_shared<ScriptedEstimator>(std::vector<double>{0.0});
  EXPECT_THROW(SafeAgent(nullptr, p, e, BinaryConfig(1)),
               std::invalid_argument);
  EXPECT_THROW(SafeAgent(p, nullptr, e, BinaryConfig(1)),
               std::invalid_argument);
  EXPECT_THROW(SafeAgent(p, p, nullptr, BinaryConfig(1)),
               std::invalid_argument);
}

// SafetyCore holds the defaulting state machine SafeAgent and the serving
// path's DecisionService both run; these tests pin the extracted core to
// the agent's observable behavior on the same score scripts.

TEST(SafetyCore, ObserveMatchesSafeAgentStepForStep) {
  const std::vector<double> scores = {0.0, 1.0, 1.0, 0.0, 1.0, 1.0,
                                      1.0, 0.0, 0.0, 0.0, 0.0, 1.0};
  for (const DefaultingMode mode :
       {DefaultingMode::kPermanent, DefaultingMode::kRevocable}) {
    SafeAgentConfig cfg = BinaryConfig(2);
    cfg.mode = mode;
    cfg.revoke_after = 3;
    auto learned = std::make_shared<FixedPolicy>(5);
    auto fallback = std::make_shared<FixedPolicy>(0);
    SafeAgent agent(learned, fallback,
                    std::make_shared<ScriptedEstimator>(scores), cfg);
    SafetyCore core(cfg);
    const mdp::State s;
    for (std::size_t i = 0; i < scores.size(); ++i) {
      const bool use_fallback = core.Observe(scores[i]);
      EXPECT_EQ(agent.SelectAction(s), use_fallback ? 0 : 5)
          << "step " << i;
      EXPECT_EQ(core.Defaulted(), agent.Defaulted()) << "step " << i;
    }
    EXPECT_EQ(core.StepCount(), agent.StepCount());
    EXPECT_EQ(core.DefaultStep(), agent.DefaultStep());
    EXPECT_DOUBLE_EQ(core.DefaultedFraction(), agent.DefaultedFraction());
  }
}

TEST(SafetyCore, ResetClearsTheStateMachine) {
  SafeAgentConfig cfg = BinaryConfig(1);
  SafetyCore core(cfg);
  EXPECT_TRUE(core.Observe(1.0));
  EXPECT_TRUE(core.Defaulted());
  core.Reset();
  EXPECT_FALSE(core.Defaulted());
  EXPECT_EQ(core.StepCount(), 0u);
  EXPECT_DOUBLE_EQ(core.DefaultedFraction(), 0.0);
  EXPECT_FALSE(core.Observe(0.0));
}

TEST(SafetyCore, RevocableRequiresPositiveRevokeAfter) {
  SafeAgentConfig cfg = BinaryConfig(1);
  cfg.mode = DefaultingMode::kRevocable;
  cfg.revoke_after = 0;
  EXPECT_THROW(SafetyCore core(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace osap::core
