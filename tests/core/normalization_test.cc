#include "core/normalization.h"

#include <gtest/gtest.h>

namespace osap::core {
namespace {

TEST(NormalizedScore, AnchorsMatchPaperConvention) {
  // 0 = Random, 1 = BB (Section 3.3).
  EXPECT_DOUBLE_EQ(NormalizedScore(10.0, 10.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedScore(50.0, 10.0, 50.0), 1.0);
}

TEST(NormalizedScore, LinearInBetweenAndBeyond) {
  EXPECT_DOUBLE_EQ(NormalizedScore(30.0, 10.0, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(NormalizedScore(90.0, 10.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(NormalizedScore(-30.0, 10.0, 50.0), -1.0);
}

TEST(NormalizedScore, WorksWithNegativeQoes) {
  // Random can be deeply negative (Figure 2).
  EXPECT_DOUBLE_EQ(NormalizedScore(-658.0, -658.0, 47.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedScore(47.0, -658.0, 47.0), 1.0);
  EXPECT_LT(NormalizedScore(-2000.0, -658.0, 47.0), 0.0);
}

TEST(NormalizedScore, DegenerateDenominatorReturnsZero) {
  EXPECT_DOUBLE_EQ(NormalizedScore(5.0, 10.0, 10.0), 0.0);
}

TEST(LogLinearAxis, IdentityInsideUnitInterval) {
  EXPECT_DOUBLE_EQ(LogLinearAxis(0.0), 0.0);
  EXPECT_DOUBLE_EQ(LogLinearAxis(0.7), 0.7);
  EXPECT_DOUBLE_EQ(LogLinearAxis(-1.0), -1.0);
  EXPECT_DOUBLE_EQ(LogLinearAxis(1.0), 1.0);
}

TEST(LogLinearAxis, LogOutside) {
  EXPECT_DOUBLE_EQ(LogLinearAxis(10.0), 2.0);
  EXPECT_DOUBLE_EQ(LogLinearAxis(100.0), 3.0);
  EXPECT_DOUBLE_EQ(LogLinearAxis(-10.0), -2.0);
  EXPECT_DOUBLE_EQ(LogLinearAxis(-100.0), -3.0);
}

TEST(LogLinearAxis, ContinuousAtTheBoundary) {
  EXPECT_NEAR(LogLinearAxis(1.0 + 1e-9), 1.0, 1e-6);
  EXPECT_NEAR(LogLinearAxis(-(1.0 + 1e-9)), -1.0, 1e-6);
}

TEST(LogLinearAxis, MonotoneAcrossTheWholeRange) {
  double prev = LogLinearAxis(-1000.0);
  for (double v : {-100.0, -5.0, -1.0, -0.5, 0.0, 0.5, 1.0, 5.0, 100.0}) {
    const double cur = LogLinearAxis(v);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace osap::core
