#include "core/trigger.h"

#include <gtest/gtest.h>

namespace osap::core {
namespace {

TriggerConfig Binary(std::size_t l) {
  TriggerConfig cfg;
  cfg.mode = TriggerMode::kBinary;
  cfg.l = l;
  return cfg;
}

TriggerConfig Variance(std::size_t k, std::size_t l, double alpha) {
  TriggerConfig cfg;
  cfg.mode = TriggerMode::kWindowVariance;
  cfg.k = k;
  cfg.l = l;
  cfg.alpha = alpha;
  return cfg;
}

TEST(DefaultTrigger, BinaryFiresAfterLConsecutive) {
  DefaultTrigger trigger(Binary(3));
  EXPECT_FALSE(trigger.Update(1.0));
  EXPECT_FALSE(trigger.Update(1.0));
  EXPECT_TRUE(trigger.Update(1.0));
}

TEST(DefaultTrigger, BinaryStreakResetsOnCertainStep) {
  DefaultTrigger trigger(Binary(3));
  trigger.Update(1.0);
  trigger.Update(1.0);
  EXPECT_FALSE(trigger.Update(0.0));  // streak broken
  EXPECT_EQ(trigger.ConsecutiveUncertain(), 0u);
  trigger.Update(1.0);
  trigger.Update(1.0);
  EXPECT_TRUE(trigger.Update(1.0));
}

TEST(DefaultTrigger, BinaryLOneFiresImmediately) {
  DefaultTrigger trigger(Binary(1));
  EXPECT_FALSE(trigger.Update(0.0));
  EXPECT_TRUE(trigger.Update(1.0));
}

TEST(DefaultTrigger, VarianceModeSilentDuringWarmup) {
  DefaultTrigger trigger(Variance(5, 1, 0.0));
  // Wild scores, but the window is not yet full.
  EXPECT_FALSE(trigger.Update(100.0));
  EXPECT_FALSE(trigger.Update(0.0));
  EXPECT_FALSE(trigger.Update(50.0));
  EXPECT_FALSE(trigger.Update(0.0));
}

TEST(DefaultTrigger, VarianceModeFiresOnHighVariance) {
  DefaultTrigger trigger(Variance(3, 1, 0.1));
  trigger.Update(0.0);
  trigger.Update(0.0);
  EXPECT_FALSE(trigger.Update(0.0));  // variance 0
  EXPECT_TRUE(trigger.Update(10.0));  // window {0,0,10}: var >> 0.1
}

TEST(DefaultTrigger, ConstantSignalNeverFiresVarianceMode) {
  DefaultTrigger trigger(Variance(4, 1, 1e-9));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(trigger.Update(7.7));
  }
}

TEST(DefaultTrigger, AlphaIsAStrictThreshold) {
  // Window {0, 2}: variance 1. alpha = 1 must NOT fire (strictly greater
  // required); alpha just below 1 must fire.
  DefaultTrigger at(Variance(2, 1, 1.0));
  at.Update(0.0);
  EXPECT_FALSE(at.Update(2.0));
  DefaultTrigger below(Variance(2, 1, 0.999));
  below.Update(0.0);
  EXPECT_TRUE(below.Update(2.0));
}

TEST(DefaultTrigger, VarianceModeRespectsL) {
  DefaultTrigger trigger(Variance(2, 3, 0.01));
  trigger.Update(0.0);
  EXPECT_FALSE(trigger.Update(1.0));  // uncertain 1
  EXPECT_FALSE(trigger.Update(0.0));  // uncertain 2 (window {1,0})
  EXPECT_TRUE(trigger.Update(1.0));   // uncertain 3 -> fire
}

TEST(DefaultTrigger, ResetClearsWindowAndStreak) {
  DefaultTrigger trigger(Variance(2, 1, 0.01));
  trigger.Update(0.0);
  trigger.Update(5.0);
  trigger.Reset();
  EXPECT_EQ(trigger.ConsecutiveUncertain(), 0u);
  // Warm-up applies again after reset.
  EXPECT_FALSE(trigger.Update(100.0));
}

TEST(DefaultTrigger, ValidatesConfig) {
  TriggerConfig bad = Binary(0);
  EXPECT_THROW(DefaultTrigger{bad}, std::invalid_argument);
  TriggerConfig bad_k = Variance(1, 1, 0.0);
  EXPECT_THROW(DefaultTrigger{bad_k}, std::invalid_argument);
  TriggerConfig bad_alpha = Variance(3, 1, -1.0);
  EXPECT_THROW(DefaultTrigger{bad_alpha}, std::invalid_argument);
}

TEST(DefaultTrigger, WindowVarianceAccessorTracksWindow) {
  DefaultTrigger trigger(Variance(2, 1, 100.0));
  trigger.Update(0.0);
  trigger.Update(2.0);
  EXPECT_NEAR(trigger.WindowVariance(), 1.0, 1e-12);
}

}  // namespace
}  // namespace osap::core
