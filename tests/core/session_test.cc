#include "core/session.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/safe_agent.h"
#include "policies/buffer_based.h"
#include "util/csv.h"

namespace osap::core {
namespace {

traces::Trace FlatTrace(double mbps) {
  return traces::Trace("flat", 1.0, std::vector<double>(2000, mbps));
}

class SessionTest : public ::testing::Test {
 protected:
  SessionTest()
      : env_(abr::MakeEnvivioLikeVideo(1), {}),
        bb_(std::make_shared<policies::BufferBasedPolicy>(env_.video(),
                                                          env_.layout())) {}
  abr::AbrEnvironment env_;
  std::shared_ptr<policies::BufferBasedPolicy> bb_;
};

TEST_F(SessionTest, RecordsEveryChunk) {
  const traces::Trace trace = FlatTrace(3.0);
  const SessionTrace session = StreamSession(env_, *bb_, trace);
  EXPECT_EQ(session.chunks.size(), env_.video().ChunkCount());
  for (std::size_t i = 0; i < session.chunks.size(); ++i) {
    EXPECT_EQ(session.chunks[i].chunk, i);
    EXPECT_GT(session.chunks[i].bitrate_kbps, 0.0);
    EXPECT_GT(session.chunks[i].download_seconds, 0.0);
    EXPECT_GT(session.chunks[i].throughput_mbps, 0.0);
  }
}

TEST_F(SessionTest, TotalQoeMatchesEnvironmentAccumulator) {
  const traces::Trace trace = FlatTrace(2.0);
  const SessionTrace session = StreamSession(env_, *bb_, trace);
  EXPECT_NEAR(session.TotalQoe(), env_.Qoe().Total(), 1e-9);
}

TEST_F(SessionTest, AggregatesMatchChunkRecords) {
  const traces::Trace trace = FlatTrace(1.5);
  const SessionTrace session = StreamSession(env_, *bb_, trace);
  double rebuffer = 0.0;
  std::size_t switches = 0;
  for (std::size_t i = 0; i < session.chunks.size(); ++i) {
    rebuffer += session.chunks[i].rebuffer_seconds;
    if (i > 0 &&
        session.chunks[i].action != session.chunks[i - 1].action) {
      ++switches;
    }
  }
  EXPECT_NEAR(session.TotalRebufferSeconds(), rebuffer, 1e-12);
  EXPECT_EQ(session.SwitchCount(), switches);
}

TEST_F(SessionTest, PlainPolicyNeverDefaults) {
  const traces::Trace trace = FlatTrace(3.0);
  const SessionTrace session = StreamSession(env_, *bb_, trace);
  EXPECT_EQ(session.FirstDefaultedChunk(), session.chunks.size());
  EXPECT_DOUBLE_EQ(session.DefaultedFraction(), 0.0);
}

/// Estimator firing from a fixed step onward.
class StepEstimator final : public UncertaintyEstimator {
 public:
  explicit StepEstimator(std::size_t fire_at) : fire_at_(fire_at) {}
  void Reset() override { step_ = 0; }
  double Score(const mdp::State&) override {
    return step_++ >= fire_at_ ? 1.0 : 0.0;
  }
  bool Ready() const override { return true; }
  std::string Name() const override { return "step"; }

 private:
  std::size_t fire_at_;
  std::size_t step_ = 0;
};

TEST_F(SessionTest, SafeAgentDefaultingIsVisibleInTheTrace) {
  SafeAgentConfig cfg;
  cfg.trigger.mode = TriggerMode::kBinary;
  cfg.trigger.l = 2;
  SafeAgent agent(bb_, bb_, std::make_shared<StepEstimator>(10), cfg);
  const traces::Trace trace = FlatTrace(3.0);
  const SessionTrace session = StreamSession(env_, agent, trace);
  // Fires after scores at steps 10,11 -> defaulted from chunk 11 onward.
  EXPECT_EQ(session.FirstDefaultedChunk(), 11u);
  EXPECT_GT(session.DefaultedFraction(), 0.5);
}

TEST_F(SessionTest, CsvExportRoundTripsRowCount) {
  const auto dir =
      std::filesystem::temp_directory_path() / "osap_session_test";
  std::filesystem::create_directories(dir);
  const traces::Trace trace = FlatTrace(3.0);
  const SessionTrace session = StreamSession(env_, *bb_, trace);
  const auto path = dir / "session.csv";
  WriteSessionCsv(session, path);
  const auto rows = ReadCsv(path);
  EXPECT_EQ(rows.size(), session.chunks.size() + 1);  // header + chunks
  EXPECT_EQ(rows[0].size(), 9u);
  std::filesystem::remove_all(dir);
}

TEST_F(SessionTest, EmptySessionTraceIsWellDefined) {
  SessionTrace empty;
  EXPECT_DOUBLE_EQ(empty.TotalQoe(), 0.0);
  EXPECT_DOUBLE_EQ(empty.DefaultedFraction(), 0.0);
  EXPECT_EQ(empty.SwitchCount(), 0u);
  EXPECT_EQ(empty.FirstDefaultedChunk(), 0u);
}

TEST_F(SessionTest, SingleChunkTraceAccessors) {
  // One chunk: no previous action to switch from, and the defaulted flag
  // alone decides FirstDefaultedChunk / DefaultedFraction.
  SessionTrace session;
  ChunkRecord chunk;
  chunk.action = 3;
  chunk.reward = 1.5;
  chunk.defaulted = false;
  session.chunks.push_back(chunk);
  EXPECT_EQ(session.SwitchCount(), 0u);
  EXPECT_EQ(session.FirstDefaultedChunk(), 1u);  // == chunks.size()
  EXPECT_DOUBLE_EQ(session.DefaultedFraction(), 0.0);

  session.chunks.front().defaulted = true;
  EXPECT_EQ(session.FirstDefaultedChunk(), 0u);
  EXPECT_DOUBLE_EQ(session.DefaultedFraction(), 1.0);
}

TEST_F(SessionTest, SwitchCountCountsActionChangesOnly) {
  SessionTrace session;
  for (const mdp::Action a : {2, 2, 4, 4, 1, 1, 1, 5}) {
    ChunkRecord chunk;
    chunk.action = a;
    session.chunks.push_back(chunk);
  }
  EXPECT_EQ(session.SwitchCount(), 3u);
  // A defaulted chunk in the middle does not affect switch accounting.
  session.chunks[3].defaulted = true;
  EXPECT_EQ(session.SwitchCount(), 3u);
  EXPECT_EQ(session.FirstDefaultedChunk(), 3u);
}

}  // namespace
}  // namespace osap::core
