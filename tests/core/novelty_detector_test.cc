#include "core/novelty_detector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <filesystem>

#include "util/rng.h"
#include "util/stats.h"

namespace osap::core {
namespace {

NoveltyDetectorConfig SmallConfig() {
  NoveltyDetectorConfig cfg;
  cfg.throughput_window = 4;
  cfg.k = 3;
  return cfg;
}

/// Synthetic per-chunk throughput sequence ~ N(mean, sd), clamped > 0.
std::vector<double> ThroughputSequence(double mean, double sd,
                                       std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> seq;
  seq.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seq.push_back(std::max(0.05, rng.Normal(mean, sd)));
  }
  return seq;
}

TEST(NoveltyFeatureExtractor, WarmupProducesNoFeatures) {
  NoveltyFeatureExtractor extractor(SmallConfig());
  // window 4, k 3: first feature after 4 + 3 - 1 = 6 pushes.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(extractor.Push(2.0).has_value()) << "push " << i;
  }
  EXPECT_TRUE(extractor.Push(2.0).has_value());
}

TEST(NoveltyFeatureExtractor, FeatureLayoutIsKMeanStdPairs) {
  NoveltyFeatureExtractor extractor(SmallConfig());
  std::optional<std::vector<double>> feature;
  // Constant input: every mean = 3, every std = 0.
  for (int i = 0; i < 10; ++i) feature = extractor.Push(3.0);
  ASSERT_TRUE(feature.has_value());
  ASSERT_EQ(feature->size(), 6u);  // 3 pairs
  for (std::size_t i = 0; i < 6; i += 2) {
    EXPECT_NEAR((*feature)[i], 3.0, 1e-12);      // mean
    EXPECT_NEAR((*feature)[i + 1], 0.0, 1e-12);  // std
  }
}

TEST(NoveltyFeatureExtractor, ResetRestartsWarmup) {
  NoveltyFeatureExtractor extractor(SmallConfig());
  for (int i = 0; i < 10; ++i) extractor.Push(1.0);
  extractor.Reset();
  EXPECT_FALSE(extractor.Push(1.0).has_value());
}

/// Reference implementation of the pair history as the deque the extractor
/// used before it was flattened into a fixed-capacity ring. The ring must
/// reproduce this sequence of emitted features bit for bit - same values,
/// same oldest-first order, same warm-up boundaries - including across a
/// Reset() that reuses the ring's storage.
class DequePairHistory {
 public:
  explicit DequePairHistory(const NoveltyDetectorConfig& config)
      : config_(config), window_(config.throughput_window) {}

  bool Push(double throughput_mbps, std::span<double> out) {
    window_.Push(throughput_mbps);
    if (!window_.Full()) return false;
    pairs_.emplace_back(window_.Mean(), window_.StdDev());
    if (pairs_.size() > config_.k) pairs_.pop_front();
    if (pairs_.size() < config_.k) return false;
    std::size_t i = 0;
    for (const auto& [mean, stddev] : pairs_) {
      out[i++] = mean;
      out[i++] = stddev;
    }
    return true;
  }

  void Reset() {
    window_.Reset();
    pairs_.clear();
  }

 private:
  NoveltyDetectorConfig config_;
  SlidingWindowStats window_;
  std::deque<std::pair<double, double>> pairs_;
};

TEST(NoveltyFeatureExtractor, RingMatchesDequeReferenceBitForBit) {
  const auto cfg = SmallConfig();
  NoveltyFeatureExtractor ring(cfg);
  DequePairHistory deque_ref(cfg);
  // Long enough to wrap the k-slot ring many times, with a Reset mid-way
  // to cover warm-up restarting over reused storage.
  const auto seq = ThroughputSequence(3.0, 1.0, 300, 42);
  std::vector<double> ring_out(2 * cfg.k);
  std::vector<double> deque_out(2 * cfg.k);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i == 150) {
      ring.Reset();
      deque_ref.Reset();
    }
    const bool ring_emitted = ring.Push(seq[i], ring_out);
    const bool deque_emitted = deque_ref.Push(seq[i], deque_out);
    ASSERT_EQ(ring_emitted, deque_emitted) << "push " << i;
    if (!ring_emitted) continue;
    for (std::size_t d = 0; d < ring_out.size(); ++d) {
      // Bit-identity (same doubles, not nearly-equal doubles): both sides
      // store the same window statistics, only the container differs.
      EXPECT_EQ(ring_out[d], deque_out[d]) << "push " << i << " dim " << d;
    }
  }
}

TEST(NoveltyFeatureExtractor, PlacementStorageMatchesOwningBitForBit) {
  // The serving path carves each extractor's window + pair ring out of a
  // shard slab; the span-backed extractor must stream exactly the owning
  // one's features, including across a Reset over recycled storage.
  const auto cfg = SmallConfig();
  NoveltyFeatureExtractor owning(cfg);
  std::vector<double> storage(NoveltyFeatureExtractor::StorageDoubles(cfg),
                              -7.0);  // deliberately dirty
  NoveltyFeatureExtractor placed(cfg, std::span<double>(storage));
  const auto seq = ThroughputSequence(3.0, 1.0, 200, 9);
  std::vector<double> owning_out(2 * cfg.k);
  std::vector<double> placed_out(2 * cfg.k);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i == 100) {
      owning.Reset();
      placed.Reset();
    }
    const bool a = owning.Push(seq[i], owning_out);
    const bool b = placed.Push(seq[i], placed_out);
    ASSERT_EQ(a, b) << "push " << i;
    if (!a) continue;
    for (std::size_t d = 0; d < owning_out.size(); ++d) {
      EXPECT_EQ(placed_out[d], owning_out[d]) << "push " << i << " dim " << d;
    }
  }
}

TEST(NoveltyFeatureExtractor, PlacementRejectsTooSmallStorage) {
  const auto cfg = SmallConfig();
  std::vector<double> storage(NoveltyFeatureExtractor::StorageDoubles(cfg) -
                              1);
  EXPECT_THROW(NoveltyFeatureExtractor(cfg, std::span<double>(storage)),
               std::invalid_argument);
}

TEST(NoveltyFeatureExtractor, CopyOfPlacedExtractorOwnsItsStorage) {
  const auto cfg = SmallConfig();
  std::vector<double> storage(NoveltyFeatureExtractor::StorageDoubles(cfg));
  NoveltyFeatureExtractor placed(cfg, std::span<double>(storage));
  for (int i = 0; i < 6; ++i) placed.Push(2.0 + i);

  NoveltyFeatureExtractor copy = placed;
  const std::vector<double> snapshot = storage;
  std::vector<double> out(2 * cfg.k);
  for (int i = 0; i < 6; ++i) copy.Push(9.0 + i, out);
  EXPECT_EQ(storage, snapshot)
      << "pushes into the copy must not touch the original's slab storage";

  // And the two streams now evolve independently but deterministically.
  std::vector<double> placed_out(2 * cfg.k);
  ASSERT_TRUE(placed.Push(8.0, placed_out));
  ASSERT_TRUE(copy.Push(8.0, out));
  EXPECT_NE(placed_out, out);  // different histories, different features
}

TEST(NoveltyDetector, ExtractFeaturesCountsMatchWindowAndK) {
  const auto cfg = SmallConfig();
  const auto seq = ThroughputSequence(3.0, 0.5, 20, 1);
  const auto features = NoveltyDetector::ExtractFeatures(seq, cfg);
  // First feature at index window+k-2 = 5 -> 20 - 6 + 1 = 15 features.
  EXPECT_EQ(features.size(), 15u);
  for (const auto& f : features) EXPECT_EQ(f.size(), 2u * cfg.k);
}

TEST(NoveltyDetector, FlagsShiftedDistributionAsOod) {
  const auto cfg = SmallConfig();
  abr::AbrStateLayout layout;
  NoveltyDetector detector(cfg, layout);
  // Train on ~3 Mbps sessions.
  std::vector<std::vector<double>> train_features;
  for (int s = 0; s < 20; ++s) {
    const auto session = ThroughputSequence(3.0, 0.4, 60, 100 + s);
    for (auto& f : NoveltyDetector::ExtractFeatures(session, cfg)) {
      train_features.push_back(std::move(f));
    }
  }
  detector.Fit(train_features);

  // In-distribution test features are mostly inliers.
  const auto in_features = NoveltyDetector::ExtractFeatures(
      ThroughputSequence(3.0, 0.4, 200, 999), cfg);
  std::size_t in_flagged = 0;
  for (const auto& f : in_features) {
    if (!detector.model().IsInlier(f)) ++in_flagged;
  }
  EXPECT_LT(static_cast<double>(in_flagged) / in_features.size(), 0.25);

  // A throughput collapse is flagged.
  const auto ood_features = NoveltyDetector::ExtractFeatures(
      ThroughputSequence(0.3, 0.05, 200, 998), cfg);
  std::size_t ood_flagged = 0;
  for (const auto& f : ood_features) {
    if (!detector.model().IsInlier(f)) ++ood_flagged;
  }
  EXPECT_GT(static_cast<double>(ood_flagged) / ood_features.size(), 0.9);
}

TEST(NoveltyDetector, ScoreReadsThroughputFromState) {
  const auto cfg = SmallConfig();
  abr::AbrStateLayout layout;
  NoveltyDetector detector(cfg, layout);
  std::vector<std::vector<double>> train_features;
  for (int s = 0; s < 10; ++s) {
    for (auto& f : NoveltyDetector::ExtractFeatures(
             ThroughputSequence(3.0, 0.3, 60, 200 + s), cfg)) {
      train_features.push_back(std::move(f));
    }
  }
  detector.Fit(train_features);

  auto state_with_throughput = [&](double mbps) {
    mdp::State s(layout.Size(), 0.0);
    s[layout.ThroughputBegin() + layout.history - 1] =
        mbps / abr::AbrStateLayout::kThroughputNormMbps;
    return s;
  };
  // In-distribution observations must be noisy like the training data:
  // a perfectly constant feed has zero window-stddev, which itself is an
  // outlier with respect to N(3, 0.3) windows.
  Rng rng(7);
  auto in_dist = [&] { return std::max(0.05, rng.Normal(3.0, 0.3)); };

  // Warm-up: scores 0 and not ready.
  detector.Reset();
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(detector.Score(state_with_throughput(in_dist())), 0.0);
  }
  EXPECT_FALSE(detector.Ready());
  // Feed enough in-distribution samples: ready, score 0.
  for (int i = 0; i < 10; ++i) {
    detector.Score(state_with_throughput(in_dist()));
  }
  EXPECT_TRUE(detector.Ready());
  EXPECT_DOUBLE_EQ(detector.Score(state_with_throughput(in_dist())), 0.0);
  // Sustained collapse flips the score to 1.
  double last = 0.0;
  for (int i = 0; i < 12; ++i) {
    last = detector.Score(state_with_throughput(0.1));
  }
  EXPECT_DOUBLE_EQ(last, 1.0);
}

TEST(NoveltyDetector, ZeroThroughputWarmupIsIgnored) {
  const auto cfg = SmallConfig();
  abr::AbrStateLayout layout;
  NoveltyDetector detector(cfg, layout);
  std::vector<std::vector<double>> features;
  for (auto& f : NoveltyDetector::ExtractFeatures(
           ThroughputSequence(3.0, 0.3, 100, 1), cfg)) {
    features.push_back(std::move(f));
  }
  detector.Fit(features);
  // Initial states (no download yet) must not poison the window.
  const mdp::State zero_state(layout.Size(), 0.0);
  EXPECT_DOUBLE_EQ(detector.Score(zero_state), 0.0);
  EXPECT_FALSE(detector.Ready());
}

TEST(NoveltyDetector, ScoreBeforeFitThrows) {
  NoveltyDetector detector(SmallConfig(), abr::AbrStateLayout{});
  EXPECT_THROW(detector.Score(mdp::State(abr::AbrStateLayout{}.Size(), 0.0)),
               std::invalid_argument);
}

TEST(NoveltyDetector, FitRejectsEmptyFeatures) {
  NoveltyDetector detector(SmallConfig(), abr::AbrStateLayout{});
  EXPECT_THROW(detector.Fit({}), std::invalid_argument);
}

TEST(NoveltyDetector, SaveLoadRoundTrip) {
  const auto dir =
      std::filesystem::temp_directory_path() / "osap_nd_test";
  std::filesystem::create_directories(dir);
  const auto cfg = SmallConfig();
  abr::AbrStateLayout layout;
  NoveltyDetector detector(cfg, layout);
  std::vector<std::vector<double>> features;
  for (auto& f : NoveltyDetector::ExtractFeatures(
           ThroughputSequence(2.0, 0.3, 120, 7), cfg)) {
    features.push_back(std::move(f));
  }
  detector.Fit(features);
  detector.Save(dir / "nd.bin");

  NoveltyDetector loaded(cfg, layout);
  loaded.LoadModel(dir / "nd.bin");
  for (const auto& f : features) {
    EXPECT_EQ(detector.model().IsInlier(f), loaded.model().IsInlier(f));
  }
  std::filesystem::remove_all(dir);
}

TEST(NoveltyDetector, CopyIsIndependentButSharesModel) {
  const auto cfg = SmallConfig();
  abr::AbrStateLayout layout;
  NoveltyDetector original(cfg, layout);
  std::vector<std::vector<double>> features;
  for (auto& f : NoveltyDetector::ExtractFeatures(
           ThroughputSequence(2.0, 0.3, 120, 8), cfg)) {
    features.push_back(std::move(f));
  }
  original.Fit(features);

  NoveltyDetector copy = original;  // fresh window, same fitted model
  copy.Reset();
  mdp::State s(layout.Size(), 0.0);
  s[layout.ThroughputBegin() + layout.history - 1] = 0.2;
  // Feeding the copy must not advance the original's window.
  for (int i = 0; i < 3; ++i) copy.Score(s);
  EXPECT_FALSE(original.Ready());
}

}  // namespace
}  // namespace osap::core
