#include "core/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

namespace osap::core {
namespace {

TEST(CalibrateAlpha, FindsThresholdOnAMonotoneCurve) {
  // QoE rises smoothly with alpha: qoe(alpha) = 100 * alpha / (1+alpha).
  auto qoe = [](double alpha) { return 100.0 * alpha / (1.0 + alpha); };
  const double target = 50.0;  // attained at alpha = 1
  const CalibrationResult result = CalibrateAlpha(qoe, target, 0.0, 16.0);
  EXPECT_NEAR(result.alpha, 1.0, 0.05);
  EXPECT_NEAR(result.achieved_qoe, 50.0, 2.0);
  EXPECT_DOUBLE_EQ(result.target_qoe, 50.0);
}

TEST(CalibrateAlpha, StepFunctionPicksClosestEvaluatedPoint) {
  // Defaulting is discrete in practice: QoE jumps at thresholds.
  auto qoe = [](double alpha) { return alpha < 2.0 ? 10.0 : 90.0; };
  const CalibrationResult low = CalibrateAlpha(qoe, 15.0, 0.0, 8.0);
  EXPECT_NEAR(low.achieved_qoe, 10.0, 1e-9);
  EXPECT_LT(low.alpha, 2.0);
  const CalibrationResult high = CalibrateAlpha(qoe, 85.0, 0.0, 8.0);
  EXPECT_NEAR(high.achieved_qoe, 90.0, 1e-9);
  EXPECT_GE(high.alpha, 2.0);
}

TEST(CalibrateAlpha, StopsEarlyWithinTolerance) {
  int evaluations = 0;
  auto qoe = [&](double alpha) {
    ++evaluations;
    return alpha;  // identity: target found quickly
  };
  CalibrationConfig cfg;
  cfg.tolerance = 0.5;
  const CalibrationResult result =
      CalibrateAlpha(qoe, 5.0, 0.0, 10.0, cfg);
  EXPECT_LE(result.iterations, 3u);
  EXPECT_EQ(evaluations, static_cast<int>(result.iterations));
  EXPECT_NEAR(result.achieved_qoe, 5.0, 0.5);
}

TEST(CalibrateAlpha, RespectsIterationBudget) {
  int evaluations = 0;
  auto qoe = [&](double) {
    ++evaluations;
    return 0.0;  // never reaches target
  };
  CalibrationConfig cfg;
  cfg.max_iterations = 6;
  const CalibrationResult result =
      CalibrateAlpha(qoe, 100.0, 0.0, 1.0, cfg);
  EXPECT_EQ(result.iterations, 6u);
  EXPECT_EQ(evaluations, 6);
}

TEST(CalibrateAlpha, ReturnsBestEverSeenNotLast) {
  // Non-monotone spike AT the first bisection midpoint (alpha = 4): the
  // first evaluation is the best ever seen; every later iterate is worse.
  // The result must report the spike, not the final midpoint.
  auto qoe = [](double alpha) {
    return std::abs(alpha - 4.0) < 0.1 ? 40.0 : 0.0;
  };
  const CalibrationResult result = CalibrateAlpha(qoe, 35.0, 0.0, 8.0);
  EXPECT_NEAR(result.achieved_qoe, 40.0, 1e-9);
  EXPECT_NEAR(result.alpha, 4.0, 1e-9);
}

TEST(CalibrateAlpha, ValidatesArguments) {
  auto qoe = [](double) { return 0.0; };
  EXPECT_THROW(CalibrateAlpha(qoe, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(CalibrateAlpha(qoe, 0.0, -1.0, 1.0),
               std::invalid_argument);
  CalibrationConfig cfg;
  cfg.max_iterations = 0;
  EXPECT_THROW(CalibrateAlpha(qoe, 0.0, 0.0, 1.0, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace osap::core
