// Tiny deterministic MDPs used by the mdp / rl unit tests, where optimal
// behaviour is known in closed form.
#pragma once

#include <string>

#include "mdp/environment.h"
#include "mdp/policy.h"
#include "util/rng.h"

namespace osap::testing {

/// A contextual bandit chain: the state is (step / length, flag), the flag
/// alternates 0/1 per step, and action == flag yields reward 1 (else 0).
/// Episode length is fixed. Optimal return == length.
class FlagBandit final : public mdp::Environment {
 public:
  explicit FlagBandit(std::size_t length) : length_(length) {}

  mdp::State Reset() override {
    step_ = 0;
    return MakeState();
  }

  mdp::StepResult Step(mdp::Action action) override {
    const int flag = static_cast<int>(step_ % 2);
    mdp::StepResult result;
    result.reward = action == flag ? 1.0 : 0.0;
    ++step_;
    result.done = step_ >= length_;
    result.next_state = MakeState();
    return result;
  }

  std::size_t ActionCount() const override { return 2; }
  std::size_t StateSize() const override { return 2; }

 private:
  mdp::State MakeState() const {
    return {static_cast<double>(step_) / static_cast<double>(length_),
            static_cast<double>(step_ % 2)};
  }
  std::size_t length_;
  std::size_t step_ = 0;
};

/// Always picks a fixed action.
class ConstantPolicy final : public mdp::Policy {
 public:
  explicit ConstantPolicy(mdp::Action action) : action_(action) {}
  mdp::Action SelectAction(const mdp::State&) override { return action_; }
  std::string Name() const override { return "constant"; }

 private:
  mdp::Action action_;
};

/// Picks the optimal FlagBandit action (matches the flag).
class OraclePolicy final : public mdp::Policy {
 public:
  mdp::Action SelectAction(const mdp::State& state) override {
    return static_cast<mdp::Action>(state[1]);
  }
  std::string Name() const override { return "oracle"; }
};

}  // namespace osap::testing
