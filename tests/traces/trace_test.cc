#include "traces/trace.h"

#include <gtest/gtest.h>

namespace osap::traces {
namespace {

TEST(Trace, ValidatesConstruction) {
  EXPECT_THROW(Trace("t", 0.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(Trace("t", 1.0, {}), std::invalid_argument);
  EXPECT_THROW(Trace("t", 1.0, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Trace("t", 1.0, {1.0, -2.0}), std::invalid_argument);
}

TEST(Trace, DurationIsSamplesTimesInterval) {
  const Trace t("t", 2.0, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.Duration(), 6.0);
  EXPECT_EQ(t.SampleCount(), 3u);
}

TEST(Trace, ThroughputAtIsPiecewiseConstant) {
  const Trace t("t", 1.0, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.ThroughputAt(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(0.99), 1.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(1.0), 2.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(2.5), 3.0);
}

TEST(Trace, WrapsAroundCyclically) {
  const Trace t("t", 1.0, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(t.ThroughputAt(2.0), 1.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(3.5), 2.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(100.0), 1.0);
}

TEST(Trace, NegativeTimeRejected) {
  const Trace t("t", 1.0, {1.0});
  EXPECT_THROW(t.ThroughputAt(-0.1), std::invalid_argument);
}

TEST(Trace, MeanThroughput) {
  const Trace t("t", 1.0, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.MeanThroughput(), 2.0);
}

TEST(Trace, NonUnitInterval) {
  const Trace t("t", 0.5, {4.0, 8.0});
  EXPECT_DOUBLE_EQ(t.ThroughputAt(0.4), 4.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(0.6), 8.0);
  EXPECT_DOUBLE_EQ(t.Duration(), 1.0);
}

}  // namespace
}  // namespace osap::traces
