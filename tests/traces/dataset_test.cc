#include "traces/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace osap::traces {
namespace {

TEST(Dataset, AllSixPaperDatasetsEnumerated) {
  const auto ids = AllDatasetIds();
  EXPECT_EQ(ids.size(), 6u);
  std::set<std::string> names;
  for (DatasetId id : ids) names.insert(DatasetName(id));
  EXPECT_EQ(names.size(), 6u);
}

TEST(Dataset, SyntheticFlagMatchesPaper) {
  EXPECT_FALSE(IsSyntheticIid(DatasetId::kNorway3g));
  EXPECT_FALSE(IsSyntheticIid(DatasetId::kBelgium4g));
  EXPECT_TRUE(IsSyntheticIid(DatasetId::kGamma12));
  EXPECT_TRUE(IsSyntheticIid(DatasetId::kGamma22));
  EXPECT_TRUE(IsSyntheticIid(DatasetId::kLogistic));
  EXPECT_TRUE(IsSyntheticIid(DatasetId::kExponential));
}

TEST(Dataset, SplitRatiosMatchPaper) {
  DatasetConfig cfg;
  cfg.trace_count = 40;
  const Dataset ds = BuildDataset(DatasetId::kGamma22, cfg);
  EXPECT_EQ(ds.TotalTraces(), 40u);
  // 70% train_total = 28; 30% of that = 8 validation, 20 train; 12 test.
  EXPECT_EQ(ds.test.size(), 12u);
  EXPECT_EQ(ds.validation.size(), 8u);
  EXPECT_EQ(ds.train.size(), 20u);
}

TEST(Dataset, SplitsAreDisjointTraces) {
  const Dataset ds = BuildDataset(DatasetId::kNorway3g);
  std::set<std::string> names;
  for (const auto& t : ds.train) names.insert(t.name());
  for (const auto& t : ds.validation) names.insert(t.name());
  for (const auto& t : ds.test) names.insert(t.name());
  EXPECT_EQ(names.size(), ds.TotalTraces());
}

TEST(Dataset, DeterministicForFixedSeed) {
  const Dataset a = BuildDataset(DatasetId::kExponential);
  const Dataset b = BuildDataset(DatasetId::kExponential);
  ASSERT_EQ(a.train.size(), b.train.size());
  EXPECT_EQ(a.train[0].samples(), b.train[0].samples());
  EXPECT_EQ(a.test.back().samples(), b.test.back().samples());
}

TEST(Dataset, DifferentSeedsDifferentTraces) {
  DatasetConfig cfg1;
  cfg1.seed = 1;
  DatasetConfig cfg2;
  cfg2.seed = 2;
  const Dataset a = BuildDataset(DatasetId::kGamma12, cfg1);
  const Dataset b = BuildDataset(DatasetId::kGamma12, cfg2);
  EXPECT_NE(a.train[0].samples(), b.train[0].samples());
}

TEST(Dataset, DatasetsAreIndependentStreams) {
  // Same seed, different ids -> different traces.
  const Dataset a = BuildDataset(DatasetId::kGamma12);
  const Dataset b = BuildDataset(DatasetId::kExponential);
  EXPECT_NE(a.train[0].samples(), b.train[0].samples());
}

TEST(Dataset, TraceDurationHonored) {
  DatasetConfig cfg;
  cfg.trace_duration_seconds = 123.0;
  const Dataset ds = BuildDataset(DatasetId::kLogistic, cfg);
  EXPECT_EQ(ds.train[0].SampleCount(), 123u);
}

TEST(Dataset, RejectsTooFewTraces) {
  DatasetConfig cfg;
  cfg.trace_count = 2;
  EXPECT_THROW(BuildDataset(DatasetId::kGamma22, cfg),
               std::invalid_argument);
}

TEST(Dataset, GeneratorFactoryCoversAllIds) {
  for (DatasetId id : AllDatasetIds()) {
    const auto gen = MakeGenerator(id);
    ASSERT_NE(gen, nullptr);
    Rng rng(1);
    const Trace t = gen->Generate(rng, 30.0, 0);
    EXPECT_EQ(t.SampleCount(), 30u);
  }
}

TEST(Dataset, LabelsAreHumanReadable) {
  EXPECT_EQ(DatasetLabel(DatasetId::kGamma22), "Gamma(2,2)");
  EXPECT_EQ(DatasetLabel(DatasetId::kNorway3g), "Norway 3G/HSDPA");
}

}  // namespace
}  // namespace osap::traces
