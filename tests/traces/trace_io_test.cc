#include "traces/trace_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "traces/generators.h"
#include "util/rng.h"

namespace osap::traces {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "osap_trace_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(TraceIoTest, CsvRoundTripPreservesSamples) {
  const Trace t("roundtrip", 1.0, {1.5, 2.5, 0.25});
  const auto path = dir_ / "t.csv";
  WriteCsvTrace(t, path);
  const Trace back = ReadCsvTrace(path);
  EXPECT_EQ(back.samples(), t.samples());
  EXPECT_DOUBLE_EQ(back.interval_seconds(), 1.0);
}

TEST_F(TraceIoTest, CsvRoundTripNonUnitInterval) {
  const Trace t("halfsec", 0.5, {4.0, 8.0, 6.0});
  const auto path = dir_ / "h.csv";
  WriteCsvTrace(t, path);
  const Trace back = ReadCsvTrace(path);
  EXPECT_DOUBLE_EQ(back.interval_seconds(), 0.5);
  EXPECT_EQ(back.samples(), t.samples());
}

TEST_F(TraceIoTest, MahimahiRoundTripPreservesRatesApproximately) {
  // Mahimahi quantizes to 1500-byte packets; per-second rates must
  // round-trip within one packet's worth (0.012 Mbps).
  const Trace t("mm", 1.0, {2.0, 5.0, 1.0, 3.5});
  const auto path = dir_ / "t.mahi";
  WriteMahimahiTrace(t, path);
  const Trace back = ReadMahimahiTrace(path);
  ASSERT_GE(back.SampleCount(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(back.samples()[i], t.samples()[i], 0.05) << "second " << i;
  }
}

TEST_F(TraceIoTest, MahimahiTimestampsAreSortedMilliseconds) {
  const Trace t("mm2", 1.0, {10.0, 10.0});
  const auto path = dir_ / "t2.mahi";
  WriteMahimahiTrace(t, path);
  std::ifstream in(path);
  long long prev = -1;
  long long ts = 0;
  std::size_t count = 0;
  while (in >> ts) {
    EXPECT_GE(ts, prev);
    prev = ts;
    ++count;
  }
  // 10 Mbps for 2 s = 2.5 MB ~ 1666 packets.
  EXPECT_NEAR(static_cast<double>(count), 2.0 * 10.0 * 1e6 / 8.0 / 1500.0,
              2.0);
}

TEST_F(TraceIoTest, MahimahiEmptyFileThrows) {
  const auto path = dir_ / "empty.mahi";
  std::ofstream(path).close();
  EXPECT_THROW(ReadMahimahiTrace(path), std::invalid_argument);
}

TEST_F(TraceIoTest, DirectoryRoundTrip) {
  Rng rng(1);
  IidTraceGenerator gen(std::make_shared<GammaDistribution>(2.0, 2.0));
  std::vector<Trace> traces;
  for (int i = 0; i < 5; ++i) traces.push_back(gen.Generate(rng, 20.0, i));
  const auto tdir = dir_ / "set";
  WriteTraceDirectory(traces, tdir);
  const auto back = ReadTraceDirectory(tdir);
  ASSERT_EQ(back.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(back[i].samples(), traces[i].samples());
  }
}

TEST_F(TraceIoTest, ReadDirectoryRejectsNonDirectory) {
  EXPECT_THROW(ReadTraceDirectory(dir_ / "missing"),
               std::invalid_argument);
}

TEST_F(TraceIoTest, ReadCsvMissingFileThrows) {
  EXPECT_THROW(ReadCsvTrace(dir_ / "missing.csv"), std::runtime_error);
}

}  // namespace
}  // namespace osap::traces
