#include "traces/generators.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace osap::traces {
namespace {

TEST(IidTraceGenerator, ProducesRequestedDuration) {
  IidTraceGenerator gen(std::make_shared<GammaDistribution>(2.0, 2.0));
  Rng rng(1);
  const Trace t = gen.Generate(rng, 120.0, 0);
  EXPECT_EQ(t.SampleCount(), 120u);
  EXPECT_DOUBLE_EQ(t.interval_seconds(), 1.0);
}

TEST(IidTraceGenerator, SamplesAreClamped) {
  IidTraceGenerator gen(std::make_shared<ExponentialDistribution>(1.0),
                        /*floor_mbps=*/0.5, /*cap_mbps=*/2.0);
  Rng rng(2);
  const Trace t = gen.Generate(rng, 500.0, 0);
  for (double v : t.samples()) {
    EXPECT_GE(v, 0.5);
    EXPECT_LE(v, 2.0);
  }
}

TEST(IidTraceGenerator, MeanTracksDistribution) {
  IidTraceGenerator gen(std::make_shared<GammaDistribution>(2.0, 2.0));
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 20; ++i) {
    const Trace t = gen.Generate(rng, 300.0, i);
    for (double v : t.samples()) stats.Add(v);
  }
  EXPECT_NEAR(stats.Mean(), 4.0, 0.15);
}

TEST(IidTraceGenerator, NameEmbedsDistribution) {
  IidTraceGenerator gen(std::make_shared<GammaDistribution>(1.0, 2.0));
  EXPECT_EQ(gen.Name(), "Gamma(1,2)");
  Rng rng(4);
  EXPECT_NE(gen.Generate(rng, 10.0, 3).name().find("trace-3"),
            std::string::npos);
}

TEST(IidTraceGenerator, DeterministicPerRngSeed) {
  IidTraceGenerator gen(std::make_shared<LogisticDistribution>(4.0, 0.5));
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(gen.Generate(a, 50.0, 0).samples(),
            gen.Generate(b, 50.0, 0).samples());
}

TEST(MarkovModulatedGenerator, ValidatesTransitionMatrix) {
  std::vector<Regime> regimes = {{1.0, 0.1}, {2.0, 0.1}};
  // Rows don't sum to 1.
  EXPECT_THROW(MarkovModulatedGenerator("bad", regimes,
                                        {{0.5, 0.4}, {0.5, 0.5}}),
               std::invalid_argument);
  // Not square.
  EXPECT_THROW(MarkovModulatedGenerator("bad", regimes, {{1.0}, {1.0}}),
               std::invalid_argument);
}

TEST(MarkovModulatedGenerator, SamplesStayWithinClamp) {
  const auto gen = MakeNorway3gGenerator();
  Rng rng(6);
  const Trace t = gen->Generate(rng, 600.0, 0);
  for (double v : t.samples()) {
    EXPECT_GE(v, 0.05);
    EXPECT_LE(v, 8.0);
  }
}

TEST(MarkovModulatedGenerator, IsTemporallyCorrelated) {
  // Lag-1 autocorrelation of a sticky-regime chain must clearly exceed the
  // i.i.d. generators' (~0).
  const auto gen = MakeNorway3gGenerator();
  Rng rng(7);
  const Trace t = gen->Generate(rng, 2000.0, 0);
  const auto& s = t.samples();
  double mean = t.MeanThroughput();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    num += (s[i] - mean) * (s[i + 1] - mean);
    den += (s[i] - mean) * (s[i] - mean);
  }
  EXPECT_GT(num / den, 0.4);
}

TEST(MarkovModulatedGenerator, BelgiumIsFasterThanNorway) {
  // The LTE profile's long-run mean throughput must exceed the 3G
  // profile's - the property that makes them distinct distributions.
  const auto norway = MakeNorway3gGenerator();
  const auto belgium = MakeBelgium4gGenerator();
  Rng rng1(8);
  Rng rng2(8);
  RunningStats n_stats;
  RunningStats b_stats;
  for (int i = 0; i < 10; ++i) {
    // Bind the traces: samples() returns a reference into the Trace, so
    // iterating over a temporary's member would dangle.
    const Trace n_trace = norway->Generate(rng1, 500.0, i);
    for (double v : n_trace.samples()) n_stats.Add(v);
    const Trace b_trace = belgium->Generate(rng2, 500.0, i);
    for (double v : b_trace.samples()) b_stats.Add(v);
  }
  EXPECT_GT(b_stats.Mean(), 1.5 * n_stats.Mean());
}

TEST(MarkovModulatedGenerator, DifferentIndicesDifferentTraces) {
  const auto gen = MakeNorway3gGenerator();
  Rng rng(9);
  const Trace a = gen->Generate(rng, 100.0, 0);
  const Trace b = gen->Generate(rng, 100.0, 1);
  EXPECT_NE(a.samples(), b.samples());
}

}  // namespace
}  // namespace osap::traces
