// Wire-protocol tests: encode/decode round trips, the pinned byte layout
// (these bytes ARE the protocol - any change must bump kProtocolVersion),
// and malformed-frame rejection.
#include "net/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace osap::net {
namespace {

std::vector<std::uint8_t> Body(const std::vector<std::uint8_t>& frame) {
  // Strip the u32 length prefix and check it against the body.
  EXPECT_GE(frame.size(), kLengthPrefixBytes);
  const std::uint32_t len = GetU32(frame.data());
  EXPECT_EQ(frame.size(), kLengthPrefixBytes + len);
  return {frame.begin() + kLengthPrefixBytes, frame.end()};
}

TEST(Protocol, ByteHelpersAreLittleEndian) {
  std::vector<std::uint8_t> out;
  PutU16(out, 0x1234);
  PutU32(out, 0xAABBCCDDu);
  PutU64(out, 0x0102030405060708ull);
  const std::vector<std::uint8_t> expected = {
      0x34, 0x12,                                      // u16
      0xDD, 0xCC, 0xBB, 0xAA,                          // u32
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // u64
  };
  EXPECT_EQ(out, expected);
  EXPECT_EQ(GetU16(out.data()), 0x1234);
  EXPECT_EQ(GetU32(out.data() + 2), 0xAABBCCDDu);
  EXPECT_EQ(GetU64(out.data() + 6), 0x0102030405060708ull);
}

TEST(Protocol, F64TravelsAsExactBitPattern) {
  // Bit-identity is an acceptance criterion: the wire must carry the
  // exact IEEE-754 bits, including values a text format would mangle.
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (double v : values) {
    std::vector<std::uint8_t> out;
    PutF64(out, v);
    ASSERT_EQ(out.size(), 8u);
    const double back = GetF64(out.data());
    std::uint64_t vb = 0, bb = 0;
    std::memcpy(&vb, &v, 8);
    std::memcpy(&bb, &back, 8);
    EXPECT_EQ(vb, bb);
  }
}

TEST(Protocol, RequestRoundTripAllTypes) {
  for (MsgType type : {MsgType::kOpenSession, MsgType::kCloseSession,
                       MsgType::kStats}) {
    RequestHeader header;
    header.type = type;
    header.request_id = 0xDEADBEEFCAFEull;
    header.session_id = 42;
    std::vector<std::uint8_t> frame;
    AppendRequestFrame(frame, header);
    const auto body = Body(frame);
    EXPECT_EQ(body.size(), kRequestHeaderBytes);
    DecodedRequest decoded;
    ASSERT_EQ(DecodeRequest(body, decoded), DecodeResult::kOk);
    EXPECT_EQ(decoded.header.version, kProtocolVersion);
    EXPECT_EQ(decoded.header.type, type);
    EXPECT_EQ(decoded.header.request_id, header.request_id);
    EXPECT_EQ(decoded.header.session_id, header.session_id);
    EXPECT_EQ(decoded.state_dim, 0u);
  }
}

TEST(Protocol, StepRequestRoundTripCarriesState) {
  const std::vector<double> state = {1.5, -2.25, 0.0, 1e-300, 3e17};
  RequestHeader header;
  header.type = MsgType::kStep;
  header.request_id = 7;
  header.session_id = 9;
  std::vector<std::uint8_t> frame;
  AppendRequestFrame(frame, header, state);
  EXPECT_EQ(frame.size(), StepFrameBytes(state.size()));
  const auto body = Body(frame);
  DecodedRequest decoded;
  ASSERT_EQ(DecodeRequest(body, decoded), DecodeResult::kOk);
  ASSERT_EQ(decoded.state_dim, state.size());
  std::vector<double> back(state.size());
  decoded.CopyState(back);
  EXPECT_EQ(back, state);
}

TEST(Protocol, ReplyRoundTrip) {
  Reply reply;
  reply.type = MsgType::kStep;
  reply.status = Status::kOk;
  reply.flags = kFlagDefaulted;
  reply.action = -3;
  reply.request_id = 1234567890123ull;
  reply.session_id = 17;
  reply.epoch = 99;
  std::vector<std::uint8_t> frame;
  AppendReplyFrame(frame, reply);
  const auto body = Body(frame);
  EXPECT_EQ(body.size(), kReplyBytes);
  Reply back;
  ASSERT_EQ(DecodeReply(body, back), DecodeResult::kOk);
  EXPECT_EQ(back.status, Status::kOk);
  EXPECT_TRUE(back.Defaulted());
  EXPECT_EQ(back.action, -3);
  EXPECT_EQ(back.request_id, reply.request_id);
  EXPECT_EQ(back.session_id, 17u);
  EXPECT_EQ(back.epoch, 99u);
}

TEST(Protocol, StatsReplyRoundTripCarriesPayload) {
  Reply reply;
  reply.type = MsgType::kStats;
  reply.status = Status::kOk;
  ServerStats stats;
  stats.open_sessions = 1;
  stats.session_bytes = 2;
  stats.in_flight = 3;
  stats.decided = 4;
  stats.busy = 5;
  stats.rejected_opens = 6;
  stats.epochs = 7;
  stats.connections = 8;
  stats.errors = 9;
  stats.calibration_active = 1;
  stats.SetCalibrationAlpha(0.0375);
  stats.calibration_observed = 4000;
  stats.calibration_exceeded = 200;
  std::vector<std::uint8_t> frame;
  AppendReplyFrame(frame, reply, &stats);
  const auto body = Body(frame);
  EXPECT_EQ(body.size(), kReplyBytes + kServerStatsBytes);
  Reply back;
  ServerStats back_stats;
  ASSERT_EQ(DecodeReply(body, back, &back_stats), DecodeResult::kOk);
  EXPECT_EQ(back_stats.open_sessions, 1u);
  EXPECT_EQ(back_stats.session_bytes, 2u);
  EXPECT_EQ(back_stats.in_flight, 3u);
  EXPECT_EQ(back_stats.decided, 4u);
  EXPECT_EQ(back_stats.busy, 5u);
  EXPECT_EQ(back_stats.rejected_opens, 6u);
  EXPECT_EQ(back_stats.epochs, 7u);
  EXPECT_EQ(back_stats.connections, 8u);
  EXPECT_EQ(back_stats.errors, 9u);
  EXPECT_EQ(back_stats.calibration_active, 1u);
  // The live threshold travels as its exact IEEE-754 bits.
  EXPECT_EQ(back_stats.CalibrationAlpha(), 0.0375);
  EXPECT_EQ(back_stats.calibration_observed, 4000u);
  EXPECT_EQ(back_stats.calibration_exceeded, 200u);
  EXPECT_DOUBLE_EQ(back_stats.EmpiricalMiscoverage(), 0.05);
}

// The exact bytes of a STEP request are pinned here so an accidental
// layout change (field reorder, width change, endianness regression)
// fails loudly instead of silently breaking cross-version peers.
TEST(Protocol, StepFrameLayoutIsPinned) {
  RequestHeader header;
  header.type = MsgType::kStep;
  header.request_id = 0x1122334455667788ull;
  header.session_id = 0x0A0B0C0D0E0F1011ull;
  const std::vector<double> state = {1.0};
  std::vector<std::uint8_t> frame;
  AppendRequestFrame(frame, header, state);
  const std::vector<std::uint8_t> expected = {
      // u32 body length = 20 header + 4 dim + 8 state = 32
      32, 0, 0, 0,
      // version, type (kStep = 2), reserved u16
      kProtocolVersion, 2, 0, 0,
      // request_id LE
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,
      // session_id LE
      0x11, 0x10, 0x0F, 0x0E, 0x0D, 0x0C, 0x0B, 0x0A,
      // state_dim = 1
      1, 0, 0, 0,
      // 1.0 as IEEE-754 LE: 0x3FF0000000000000
      0, 0, 0, 0, 0, 0, 0xF0, 0x3F,
  };
  EXPECT_EQ(frame, expected);
}

TEST(Protocol, RejectsWrongVersion) {
  RequestHeader header;
  header.type = MsgType::kOpenSession;
  std::vector<std::uint8_t> frame;
  AppendRequestFrame(frame, header);
  auto body = Body(frame);
  body[0] = kProtocolVersion + 1;
  DecodedRequest decoded;
  EXPECT_EQ(DecodeRequest(body, decoded), DecodeResult::kMalformed);
}

TEST(Protocol, RejectsUnknownType) {
  RequestHeader header;
  header.type = MsgType::kOpenSession;
  std::vector<std::uint8_t> frame;
  AppendRequestFrame(frame, header);
  auto body = Body(frame);
  body[1] = 0;  // no such type
  DecodedRequest decoded;
  EXPECT_EQ(DecodeRequest(body, decoded), DecodeResult::kMalformed);
  body[1] = 200;
  EXPECT_EQ(DecodeRequest(body, decoded), DecodeResult::kMalformed);
}

TEST(Protocol, RejectsTruncatedAndOversizedBodies) {
  DecodedRequest decoded;
  // Too short for even a header.
  std::vector<std::uint8_t> tiny(kRequestHeaderBytes - 1, 0);
  EXPECT_EQ(DecodeRequest(tiny, decoded), DecodeResult::kMalformed);

  // A STEP whose declared state_dim disagrees with the body size.
  RequestHeader header;
  header.type = MsgType::kStep;
  const std::vector<double> two = {1.0, 2.0};
  std::vector<std::uint8_t> frame;
  AppendRequestFrame(frame, header, two);
  auto body = Body(frame);
  body[kRequestHeaderBytes] = 3;  // claims 3 doubles, carries 2
  EXPECT_EQ(DecodeRequest(body, decoded), DecodeResult::kMalformed);

  // A non-STEP request with trailing bytes.
  header.type = MsgType::kOpenSession;
  frame.clear();
  AppendRequestFrame(frame, header);
  auto open_body = Body(frame);
  open_body.push_back(0);
  EXPECT_EQ(DecodeRequest(open_body, decoded), DecodeResult::kMalformed);
}

TEST(Protocol, RejectsMalformedReplies) {
  Reply reply;
  std::vector<std::uint8_t> frame;
  AppendReplyFrame(frame, reply);
  auto body = Body(frame);
  Reply back;
  // Truncated.
  std::vector<std::uint8_t> cut(body.begin(), body.end() - 1);
  EXPECT_EQ(DecodeReply(cut, back), DecodeResult::kMalformed);
  // Wrong version.
  body[0] = kProtocolVersion + 3;
  EXPECT_EQ(DecodeReply(body, back), DecodeResult::kMalformed);
  // Reply with a partial stats payload (neither bare nor full).
  body[0] = kProtocolVersion;
  body.resize(kReplyBytes + kServerStatsBytes / 2, 0);
  EXPECT_EQ(DecodeReply(body, back), DecodeResult::kMalformed);
}

}  // namespace
}  // namespace osap::net
