// Multi-edge NetServer tests: the properties the SO_REUSEPORT-sharded
// edge adds on top of the single-loop server (which the loopback tests
// keep pinning at edge_threads = 1).
//
//   - TCP_NODELAY is actually set on both ends of a connection: the
//     client socket (the Client promises it) and the server's accepted
//     socket (found through /proc/self/fd - server and test share a
//     process, so the accepted fd is inspectable with getsockopt).
//   - Graceful shutdown: Stop() with a pipelined burst admitted but
//     undecided answers every request before the client sees EOF.
//   - STATS accounting across edges: every per-status client-side count
//     (ok / busy / full / error) matches the summed per-edge counters
//     exactly, and ok + busy + full + error == requests sent.
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "abr/abr_environment.h"
#include "net/client.h"
#include "net/server.h"
#include "net_test_world.h"

namespace osap::net {
namespace {

using testing::NetModelFor;
using testing::NetWorld;
using testing::ServerRunner;
using testing::SharedNetWorld;

/// Both IO backends run the multi-edge properties; the uring arm skips
/// visibly where the kernel denies io_uring.
class NetMultiEdge : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == BackendKind::kUring && !UringBackendAvailable()) {
      GTEST_SKIP() << "io_uring denied by this kernel ("
                   << UringUnavailableReason()
                   << "); uring backend arm skipped";
    }
  }

  NetServerConfig Cfg() const {
    NetServerConfig cfg;
    cfg.backend = GetParam();
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, NetMultiEdge,
    ::testing::Values(BackendKind::kEpoll, BackendKind::kUring),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return std::string(BackendKindName(info.param));
    });

bool NodelaySet(int fd) {
  int flag = 0;
  socklen_t len = sizeof(flag);
  EXPECT_EQ(getsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &flag, &len), 0);
  return flag != 0;
}

/// The server-side fd of `client_fd`'s connection: the process's only
/// socket whose peer address is the client's local address (server and
/// test live in one process, so /proc/self/fd has both ends).
int AcceptedPeerFd(int client_fd) {
  sockaddr_in local{};
  socklen_t len = sizeof(local);
  if (getsockname(client_fd, reinterpret_cast<sockaddr*>(&local), &len) != 0) {
    return -1;
  }
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int found = -1;
  while (dirent* entry = readdir(dir)) {
    const int fd = std::atoi(entry->d_name);
    if (fd <= 2 || fd == client_fd) continue;
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    if (getpeername(fd, reinterpret_cast<sockaddr*>(&peer), &peer_len) != 0) {
      continue;
    }
    if (peer.sin_family == AF_INET && peer.sin_port == local.sin_port &&
        peer.sin_addr.s_addr == local.sin_addr.s_addr) {
      found = fd;
      break;
    }
  }
  closedir(dir);
  return found;
}

// Small pipelined frames must not wait out Nagle on either direction:
// both the client socket and the server's accepted socket carry
// TCP_NODELAY.
TEST_P(NetMultiEdge, TcpNodelaySetOnBothEndsOfAConnection) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kNovelty,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);

  Client client;
  client.Connect("127.0.0.1", server.Port());
  EXPECT_TRUE(NodelaySet(client.fd())) << "client socket";

  // A STATS round trip guarantees the accept (and its setsockopt) has
  // happened before we go looking for the server-side fd.
  client.Stats();
  const int accepted = AcceptedPeerFd(client.fd());
  ASSERT_GE(accepted, 0) << "accepted socket not found in /proc/self/fd";
  EXPECT_TRUE(NodelaySet(accepted)) << "server's accepted socket";
  client.Close();
}

// Stop() with admitted-but-undecided STEPs in the pipeline: the drain
// runs decision rounds until the backlog is answered and flushes every
// reply before closing, so the client reads 8 OK replies and only then a
// clean EOF. (Pipelined duplicates of one session defer one round each,
// so the 4x2 burst needs four decision rounds - Stop() lands mid-drain.)
TEST_P(NetMultiEdge, GracefulShutdownAnswersPipelinedBurstBeforeEof) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kAgentEnsemble,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.service.shard_count = 2;
  cfg.service.shard_workers = false;
  NetServer server(model, cfg);
  server.Start();
  std::thread loop([&server] { server.Run(); });

  Client client;
  client.Connect("127.0.0.1", server.Port());
  const std::uint64_t a = client.OpenSession();
  const std::uint64_t b = client.OpenSession();
  abr::AbrEnvironment env(w.video, {});
  env.SetFixedTrace(w.traces[0]);
  const mdp::State state = env.Reset();

  std::uint64_t rid = 0;
  for (int round = 0; round < 4; ++round) {
    client.SendStep(++rid, a, state);
    client.SendStep(++rid, b, state);
  }
  client.Flush();

  // One reply proves the server parsed the burst (ReadAndParse drains the
  // socket before any decision round replies); now stop mid-backlog.
  Reply reply;
  ASSERT_TRUE(client.ReadReply(reply));
  EXPECT_EQ(reply.status, Status::kOk);
  server.Stop();

  std::size_t answered = 1;
  while (client.ReadReply(reply)) {
    EXPECT_EQ(reply.status, Status::kOk);
    ++answered;
  }
  EXPECT_EQ(answered, rid) << "every admitted STEP answered before EOF";
  loop.join();
}

// Two-edge accounting, driven deterministically from one thread: every
// reply status the clients observed shows up in the aggregated per-edge
// counters exactly, and nothing is dropped or double-counted.
TEST_P(NetMultiEdge, StatsAggregateExactlyAcrossEdges) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kAgentEnsemble,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.edge_threads = 2;
  cfg.max_sessions = 4;
  cfg.lane_high_water = 1;  // one admitted STEP per lane per burst
  cfg.pause_reads_above = 0;
  cfg.service.shard_count = 2;
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);
  ASSERT_EQ(server.server().EdgeCount(), 2u);

  // Two connections; the kernel's SO_REUSEPORT hash decides which edge
  // each lands on (possibly the same one - the invariants hold
  // regardless).
  Client c1, c2;
  c1.Connect("127.0.0.1", server.Port());
  c2.Connect("127.0.0.1", server.Port());
  abr::AbrEnvironment env(w.video, {});
  env.SetFixedTrace(w.traces[0]);
  const mdp::State state = env.Reset();

  std::size_t ok_steps = 0, busy = 0, full = 0, errors = 0;

  // 6 sequential OPEN attempts against a cap of 4: exactly 2 FULL.
  std::vector<std::pair<Client*, std::uint64_t>> sessions;
  std::uint64_t rid = 100;
  for (std::size_t i = 0; i < 6; ++i) {
    Client& c = i % 2 == 0 ? c1 : c2;
    c.SendOpen(++rid);
    c.Flush();
    Reply reply;
    ASSERT_TRUE(c.ReadReply(reply));
    if (reply.status == Status::kOk) {
      sessions.emplace_back(&c, reply.session_id);
    } else {
      ASSERT_EQ(reply.status, Status::kFull);
      ++full;
    }
  }
  ASSERT_EQ(sessions.size(), 4u);
  EXPECT_EQ(full, 2u);

  // One clean STEP round trip per session.
  for (auto& [c, session] : sessions) {
    const Reply reply = c->Step(session, state);
    ASSERT_EQ(reply.status, Status::kOk);
    ++ok_steps;
  }

  // A pipelined burst of duplicates against lane_high_water = 1: the
  // burst parses in one go, so past the first STEP per lane the rest
  // BUSY. (A split read can admit more as rounds drain between chunks,
  // so assert the invariant sum, not exact counts.)
  auto& [bc, bs] = sessions.front();
  for (int i = 0; i < 6; ++i) bc->SendStep(++rid, bs, state);
  bc->Flush();
  for (int i = 0; i < 6; ++i) {
    Reply reply;
    ASSERT_TRUE(bc->ReadReply(reply));
    ASSERT_TRUE(reply.status == Status::kOk || reply.status == Status::kBusy);
    if (reply.status == Status::kOk) ++ok_steps; else ++busy;
  }
  EXPECT_GT(busy, 0u) << "6 duplicates against a lane mark of 1 must BUSY";

  // Deterministic errors: STEPs and a CLOSE on a session that does not
  // exist (id far past anything allocated).
  constexpr std::uint64_t kBogus = std::uint64_t{1} << 40;
  c1.SendStep(++rid, kBogus, state);
  c2.SendStep(++rid, kBogus + 1, state);
  c1.SendClose(++rid, kBogus);
  c1.Flush();
  c2.Flush();
  for (Client* c : {&c1, &c1, &c2}) {
    Reply reply;
    ASSERT_TRUE(c->ReadReply(reply));
    ASSERT_EQ(reply.status, Status::kError);
    ++errors;
  }

  for (auto& [c, session] : sessions) c->CloseSession(session);

  // The aggregated per-edge counters match the client-side tallies
  // exactly - decided/busy/rejected_opens/errors are sums over edges, so
  // any lost or double-counted reply shows up here.
  const ServerStats stats = c1.Stats();
  EXPECT_EQ(stats.decided, ok_steps);
  EXPECT_EQ(stats.busy, busy);
  EXPECT_EQ(stats.rejected_opens, full);
  EXPECT_EQ(stats.errors, errors);
  EXPECT_EQ(stats.open_sessions, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.connections, 2u);
  c1.Close();
  c2.Close();
}

}  // namespace
}  // namespace osap::net
