// NetServer loopback tests: the acceptance criteria of the network edge.
//
// The load-bearing property is end-to-end bit-identity: a session driven
// over the wire (state doubles encoded as IEEE-754 bit patterns, decisions
// computed by the server's micro-batched DecisionService, replies read
// back over TCP) must pick exactly the action sequence the in-process
// DecisionService picks for the same trace. Batching composition is
// already pinned by the serve equivalence tests, so any divergence here
// is a wire bug (lossy encoding, reply misrouting, state corruption).
//
// The admission tests pin the other acceptance criterion: a flooding
// client gets BUSY, lane depth stays at or below the high-water mark (the
// service's rings are bounded to it, so a violation aborts the server
// loop and the test), and every request gets exactly one reply - nothing
// is silently dropped.
#include "net/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "abr/abr_environment.h"
#include "net/client.h"
#include "net_test_world.h"
#include "serve/decision_service.h"

namespace osap::net {
namespace {

using testing::NetModelFor;
using testing::NetWorld;
using testing::ServerRunner;
using testing::SharedNetWorld;

/// Every loopback property runs under both IO backends: the epoll
/// reference arm and the io_uring arm must produce the same wire bytes
/// and the same decision stream. The uring arm skips (visibly) where
/// the kernel denies io_uring.
class NetServerLoopback : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == BackendKind::kUring && !UringBackendAvailable()) {
      GTEST_SKIP() << "io_uring denied by this kernel ("
                   << UringUnavailableReason()
                   << "); uring backend arm skipped";
    }
  }

  /// Config preloaded with the arm under test.
  NetServerConfig Cfg() const {
    NetServerConfig cfg;
    cfg.backend = GetParam();
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, NetServerLoopback,
    ::testing::Values(BackendKind::kEpoll, BackendKind::kUring),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return std::string(BackendKindName(info.param));
    });

struct SessionRun {
  std::vector<mdp::Action> actions;
  std::vector<char> defaulted;  // per-step defaulted flag
};

/// Reference arm: each trace runs alone through an in-process
/// DecisionService (serial config), start to finish.
std::vector<SessionRun> RunInProcess(
    const NetWorld& w, std::shared_ptr<const serve::ServingModel> model) {
  serve::DecisionServiceConfig cfg;
  cfg.shard_count = 2;
  cfg.shard_workers = false;
  serve::DecisionService service(model, cfg);
  std::vector<SessionRun> runs;
  for (const traces::Trace& trace : w.traces) {
    SessionRun run;
    const auto id = service.OpenSession();
    abr::AbrEnvironment env(w.video, {});
    env.SetFixedTrace(trace);
    mdp::State state = env.Reset();
    bool done = false;
    while (!done) {
      const mdp::Action action = service.Decide(id, state);
      run.actions.push_back(action);
      run.defaulted.push_back(service.Defaulted(id));
      mdp::StepResult result = env.Step(action);
      state = std::move(result.next_state);
      done = result.done;
    }
    service.CloseSession(id);
    runs.push_back(std::move(run));
  }
  return runs;
}

/// Wire arm: all traces run CONCURRENTLY over one pipelined connection,
/// so every decision round micro-batches across sessions - the
/// composition an edge in production sees.
std::vector<SessionRun> RunOverWire(const NetWorld& w, std::uint16_t port) {
  Client client;
  client.Connect("127.0.0.1", port);

  const std::size_t n = w.traces.size();
  std::vector<SessionRun> runs(n);
  std::vector<std::uint64_t> session(n);
  std::vector<abr::AbrEnvironment> envs;
  std::vector<mdp::State> states(n);
  std::vector<bool> done(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    envs.emplace_back(w.video, abr::AbrEnvironmentConfig{});
    envs[i].SetFixedTrace(w.traces[i]);
    states[i] = envs[i].Reset();
    session[i] = client.OpenSession();
  }

  std::size_t live = n;
  // High base so explicit ids never collide with the ids the Client's
  // convenience calls (OpenSession / CloseSession) pick internally.
  std::uint64_t next_request = 1 << 20;
  while (live > 0) {
    // One pipelined round: a STEP for every live session, one flush.
    std::map<std::uint64_t, std::size_t> viewer_of;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      const std::uint64_t rid = next_request++;
      viewer_of[rid] = i;
      client.SendStep(rid, session[i], states[i]);
    }
    client.Flush();
    std::vector<std::size_t> finished;
    for (std::size_t k = 0; k < viewer_of.size(); ++k) {
      Reply reply;
      if (!client.ReadReply(reply)) throw std::runtime_error("early EOF");
      const auto it = viewer_of.find(reply.request_id);
      if (it == viewer_of.end()) throw std::runtime_error("unknown id");
      const std::size_t i = it->second;
      EXPECT_EQ(reply.status, Status::kOk);
      EXPECT_EQ(reply.session_id, session[i]);
      runs[i].actions.push_back(reply.action);
      runs[i].defaulted.push_back(reply.Defaulted());
      mdp::StepResult result = envs[i].Step(reply.action);
      states[i] = std::move(result.next_state);
      if (result.done) {
        done[i] = true;
        --live;
        finished.push_back(i);
      }
    }
    // Close only once the burst is fully drained: CloseSession is its own
    // round trip and must not race the burst's outstanding replies.
    for (std::size_t i : finished) client.CloseSession(session[i]);
  }
  client.Close();
  return runs;
}

TEST_P(NetServerLoopback, DecisionsAreBitIdenticalToInProcessService) {
  const NetWorld& w = SharedNetWorld();
  for (serve::Signal signal :
       {serve::Signal::kNovelty, serve::Signal::kAgentEnsemble}) {
    const auto model =
        NetModelFor(w, signal, core::DefaultingMode::kPermanent);
    const std::vector<SessionRun> reference = RunInProcess(w, model);

    NetServerConfig cfg = Cfg();
    cfg.service.shard_count = 2;
    cfg.service.shard_workers = false;  // single-core test host
    ServerRunner server(model, cfg);
    const std::vector<SessionRun> wire = RunOverWire(w, server.Port());

    ASSERT_EQ(wire.size(), reference.size());
    std::size_t defaulted_steps = 0, learned_steps = 0;
    for (std::size_t i = 0; i < wire.size(); ++i) {
      EXPECT_EQ(wire[i].actions, reference[i].actions)
          << "session " << i << " diverged over the wire";
      EXPECT_EQ(wire[i].defaulted, reference[i].defaulted)
          << "session " << i << " defaulted flags diverged";
      for (char d : reference[i].defaulted) (d ? defaulted_steps
                                               : learned_steps)++;
    }
    // The comparison only means something if both decision paths ran:
    // some steps defaulted to the fallback, some used the learned actor.
    EXPECT_GT(defaulted_steps, 0u);
    EXPECT_GT(learned_steps, 0u);
  }
}

TEST_P(NetServerLoopback, ReplyEpochsAreMonotonic) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kAgentEnsemble,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);
  Client client;
  client.Connect("127.0.0.1", server.Port());
  const auto session = client.OpenSession();
  abr::AbrEnvironment env(w.video, {});
  env.SetFixedTrace(w.traces[0]);
  mdp::State state = env.Reset();
  std::uint64_t last_epoch = 0;
  for (int i = 0; i < 20; ++i) {
    const Reply reply = client.Step(session, state);
    ASSERT_EQ(reply.status, Status::kOk);
    EXPECT_GT(reply.epoch, last_epoch)
        << "every one-at-a-time STEP runs its own decision round";
    last_epoch = reply.epoch;
    state = env.Step(reply.action).next_state;
  }
  client.CloseSession(session);
}

// Acceptance criterion: with the in-flight cap set low, a flooding client
// gets BUSY replies, lane depth stays <= the high-water mark, and no
// request is silently dropped (replies exactly match requests sent).
TEST_P(NetServerLoopback, FloodPastInFlightCapGetsBusyNotDropped) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kAgentEnsemble,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.max_in_flight = 4;
  cfg.lane_high_water = 4;  // rings bounded to 4: deeper = loud abort
  cfg.pause_reads_above = 0;  // keep reading so BUSY is immediate
  cfg.service.shard_count = 1;
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);

  Client client;
  client.Connect("127.0.0.1", server.Port());
  // Flood across several sessions: one session would serialize to one
  // admitted STEP per round (the per-round dedup) without touching the
  // cap. Eight sessions x 8 steps = 64 requests against a cap of 4.
  constexpr std::size_t kFloodSessions = 8;
  constexpr std::size_t kStepsEach = 8;
  std::vector<std::uint64_t> sessions;
  for (std::size_t i = 0; i < kFloodSessions; ++i) {
    sessions.push_back(client.OpenSession());
  }
  abr::AbrEnvironment env(w.video, {});
  env.SetFixedTrace(w.traces[0]);
  const mdp::State state = env.Reset();

  std::uint64_t rid = 0;
  for (std::size_t step = 0; step < kStepsEach; ++step) {
    for (std::uint64_t session : sessions) {
      client.SendStep(++rid, session, state);
    }
  }
  client.Flush();

  std::size_t ok = 0, busy = 0;
  for (std::uint64_t k = 0; k < rid; ++k) {
    Reply reply;
    ASSERT_TRUE(client.ReadReply(reply)) << "reply " << k << " missing";
    ASSERT_TRUE(reply.status == Status::kOk || reply.status == Status::kBusy)
        << "unexpected status " << static_cast<int>(reply.status);
    ok += reply.status == Status::kOk;
    busy += reply.status == Status::kBusy;
  }
  // Every request answered exactly once; the flood actually tripped the
  // cap, and some requests were still served.
  EXPECT_EQ(ok + busy, rid);
  EXPECT_GT(busy, 0u) << "64 pipelined steps against a cap of 4 must BUSY";
  EXPECT_GT(ok, 0u);

  const ServerStats stats = client.Stats();
  EXPECT_EQ(stats.decided, ok);
  EXPECT_EQ(stats.busy, busy);
  EXPECT_EQ(stats.in_flight, 0u);  // all drained by now
  for (std::uint64_t session : sessions) client.CloseSession(session);
}

// The per-lane high-water mark rejects independently of the global cap:
// sessions hash to shard id % 2, so flooding only even sessions fills one
// lane while the global cap stays distant.
TEST_P(NetServerLoopback, LaneHighWaterMarkRejectsPerShard) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kAgentEnsemble,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.max_in_flight = 1000;  // global cap out of the way
  cfg.lane_high_water = 2;
  cfg.pause_reads_above = 0;
  cfg.service.shard_count = 2;
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);

  Client client;
  client.Connect("127.0.0.1", server.Port());
  std::vector<std::uint64_t> sessions;
  for (std::size_t i = 0; i < 6; ++i) sessions.push_back(client.OpenSession());
  abr::AbrEnvironment env(w.video, {});
  env.SetFixedTrace(w.traces[0]);
  const mdp::State state = env.Reset();

  // One pipelined STEP per session, all in one TCP burst. Sessions split
  // 3/3 over the two lanes; with a mark of 2, exactly one per lane BUSYs
  // if the burst is parsed in one go (a split read can admit more as
  // earlier rounds drain, so assert bounds, not exact counts).
  std::uint64_t rid = 0;
  for (std::uint64_t session : sessions) {
    client.SendStep(++rid, session, state);
  }
  client.Flush();
  std::size_t ok = 0, busy = 0;
  for (std::uint64_t k = 0; k < rid; ++k) {
    Reply reply;
    ASSERT_TRUE(client.ReadReply(reply));
    ok += reply.status == Status::kOk;
    busy += reply.status == Status::kBusy;
  }
  EXPECT_EQ(ok + busy, rid) << "every request answered";
  EXPECT_GE(ok, 4u) << "2 lanes x mark 2 admit at least 4";
  for (std::uint64_t session : sessions) client.CloseSession(session);
}

TEST_P(NetServerLoopback, OpenPastMaxSessionsGetsFull) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kNovelty,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.max_sessions = 3;
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);

  Client client;
  client.Connect("127.0.0.1", server.Port());
  std::vector<std::uint64_t> sessions;
  for (std::size_t i = 0; i < 3; ++i) sessions.push_back(client.OpenSession());
  EXPECT_THROW(client.OpenSession(), std::runtime_error);  // kFull

  // Closing one frees a slot; the gate is on live sessions, not a
  // lifetime count.
  client.CloseSession(sessions.back());
  sessions.back() = client.OpenSession();

  const ServerStats stats = client.Stats();
  EXPECT_EQ(stats.open_sessions, 3u);
  EXPECT_EQ(stats.rejected_opens, 1u);
  for (std::uint64_t session : sessions) client.CloseSession(session);
}

TEST_P(NetServerLoopback, BogusRequestsGetErrorRepliesNotSilence) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kNovelty,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);

  Client client;
  client.Connect("127.0.0.1", server.Port());
  const auto session = client.OpenSession();

  // STEP on a session that was never opened.
  std::vector<double> state(model->InputSize(), 0.5);
  client.SendStep(1, session + 999, state);
  // STEP with the wrong state width.
  std::vector<double> narrow(model->InputSize() - 1, 0.5);
  client.SendStep(2, session, narrow);
  // CLOSE of an unknown session.
  client.SendClose(3, session + 999);
  client.Flush();
  for (std::uint64_t rid = 1; rid <= 3; ++rid) {
    Reply reply;
    ASSERT_TRUE(client.ReadReply(reply));
    EXPECT_EQ(reply.request_id, rid);
    EXPECT_EQ(reply.status, Status::kError);
  }
  // The connection survives protocol-level errors (only framing
  // violations tear it down): the real session still works.
  const Reply reply = client.Step(session, state);
  EXPECT_EQ(reply.status, Status::kOk);
  client.CloseSession(session);
}

// A CLOSE that overtakes pipelined STEPs of the same session: every
// STEP still gets a reply (kOk if it made a decision round before the
// CLOSE was parsed, kError if the CLOSE failed it) - never silence - and
// a STEP after the CLOSE is kError.
TEST_P(NetServerLoopback, CloseOvertakingPipelinedStepsAnswersEverything) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kNovelty,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);

  Client client;
  client.Connect("127.0.0.1", server.Port());
  const auto session = client.OpenSession();
  std::vector<double> state(model->InputSize(), 0.25);

  client.SendStep(1, session, state);
  client.SendStep(2, session, state);
  client.SendStep(3, session, state);
  client.SendClose(4, session);
  client.SendStep(5, session, state);
  client.Flush();

  std::size_t answered = 0;
  for (std::size_t k = 0; k < 5; ++k) {
    Reply reply;
    ASSERT_TRUE(client.ReadReply(reply));
    ++answered;
    switch (reply.request_id) {
      case 1:
      case 2:
      case 3:
        EXPECT_TRUE(reply.status == Status::kOk ||
                    reply.status == Status::kError);
        break;
      case 4:
        EXPECT_EQ(reply.status, Status::kOk) << "the CLOSE itself";
        break;
      case 5:
        EXPECT_EQ(reply.status, Status::kError) << "STEP after CLOSE";
        break;
      default:
        FAIL() << "unknown request id " << reply.request_id;
    }
  }
  EXPECT_EQ(answered, 5u);
}

TEST_P(NetServerLoopback, StatsReflectServiceState) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kNovelty,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);

  Client client;
  client.Connect("127.0.0.1", server.Port());
  const ServerStats empty = client.Stats();
  EXPECT_EQ(empty.open_sessions, 0u);
  EXPECT_EQ(empty.decided, 0u);
  EXPECT_EQ(empty.connections, 1u);

  const auto a = client.OpenSession();
  const auto b = client.OpenSession();
  std::vector<double> state(model->InputSize(), 0.1);
  ASSERT_EQ(client.Step(a, state).status, Status::kOk);
  ASSERT_EQ(client.Step(b, state).status, Status::kOk);

  const ServerStats stats = client.Stats();
  EXPECT_EQ(stats.open_sessions, 2u);
  EXPECT_GT(stats.session_bytes, 0u);
  EXPECT_EQ(stats.decided, 2u);
  EXPECT_EQ(stats.epochs, 2u);
  EXPECT_EQ(stats.busy, 0u);
  client.CloseSession(a);
  client.CloseSession(b);
  const ServerStats after = client.Stats();
  EXPECT_EQ(after.open_sessions, 0u);
}

// Satellite regression for the send-path signal audit: a peer that
// RSTs (SO_LINGER abort) with replies still queued must cost the server
// at most that one connection - never a SIGPIPE (the flush path uses
// sendmsg + MSG_NOSIGNAL / in-kernel sends) and never a wedged loop.
TEST_P(NetServerLoopback, PeerResetMidReplyDoesNotKillServer) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kNovelty,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);

  std::vector<double> state(model->InputSize(), 0.4);
  for (int round = 0; round < 3; ++round) {
    Client rude;
    rude.Connect("127.0.0.1", server.Port());
    const auto session = rude.OpenSession();
    // Pipeline a burst the server will be answering when the reset
    // lands, then abort: SO_LINGER{on, 0} turns close() into RST, so
    // the server's queued replies hit a dead socket mid-flush.
    for (std::uint64_t rid = 1; rid <= 32; ++rid) {
      rude.SendStep(rid, session, state);
    }
    rude.Flush();
    struct linger hard {};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ASSERT_EQ(::setsockopt(rude.fd(), SOL_SOCKET, SO_LINGER, &hard,
                           sizeof hard),
              0);
    rude.Close();
  }

  // The server is still alive and consistent: a polite client gets
  // decisions, and the aborted connections' sessions were reaped.
  Client polite;
  polite.Connect("127.0.0.1", server.Port());
  const auto session = polite.OpenSession();
  const Reply reply = polite.Step(session, state);
  EXPECT_EQ(reply.status, Status::kOk);
  const ServerStats stats = polite.Stats();
  EXPECT_EQ(stats.open_sessions, 1u);
  EXPECT_EQ(stats.connections, 1u);
  polite.CloseSession(session);
}

// Requesting the uring arm never fails the server: where the kernel
// denies io_uring it comes up on epoll and says which arm actually runs.
TEST(NetServerBackend, UringRequestFallsBackWhenUnavailable) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kNovelty,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg;
  cfg.backend = BackendKind::kUring;
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);
  const BackendKind expected = UringBackendAvailable()
                                   ? BackendKind::kUring
                                   : BackendKind::kEpoll;
  EXPECT_EQ(server.server().backend_kind(), expected);
  Client client;
  client.Connect("127.0.0.1", server.Port());
  const auto session = client.OpenSession();
  std::vector<double> state(model->InputSize(), 0.3);
  EXPECT_EQ(client.Step(session, state).status, Status::kOk);
  client.CloseSession(session);
}

TEST(NetServerBackend, ParseBackendKindRoundTrips) {
  BackendKind kind = BackendKind::kEpoll;
  EXPECT_TRUE(ParseBackendKind("uring", kind));
  EXPECT_EQ(kind, BackendKind::kUring);
  EXPECT_TRUE(ParseBackendKind("epoll", kind));
  EXPECT_EQ(kind, BackendKind::kEpoll);
  EXPECT_FALSE(ParseBackendKind("kqueue", kind));
  EXPECT_EQ(kind, BackendKind::kEpoll) << "junk leaves the value alone";
  EXPECT_STREQ(BackendKindName(BackendKind::kEpoll), "epoll");
  EXPECT_STREQ(BackendKindName(BackendKind::kUring), "uring");
}

}  // namespace
}  // namespace osap::net
