// Network-edge concurrency smoke (runs under the sanitize label, so the
// TSan suite checks it): one NetServer event loop plus several in-process
// client threads hammering it over loopback with session churn
// mid-connection - open, step a few times, close, reopen - plus a
// mid-run STATS reader. The assertions are deliberately coarse (every
// request answered, zero protocol errors besides the expected ones); the
// point is the interleaving, not the values.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "abr/abr_environment.h"
#include "net/client.h"
#include "net/server.h"
#include "net_test_world.h"

namespace osap::net {
namespace {

using testing::NetModelFor;
using testing::NetWorld;
using testing::ServerRunner;
using testing::SharedNetWorld;

TEST(NetSmoke, ConcurrentClientsWithSessionChurn) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kAgentEnsemble,
                                 core::DefaultingMode::kRevocable);
  NetServerConfig cfg;
  // Small caps so the churn also exercises the BUSY path under load.
  cfg.max_in_flight = 16;
  cfg.lane_high_water = 8;
  cfg.service.shard_count = 2;
  cfg.service.shard_workers = false;  // single-core host: keep it lean
  ServerRunner server(model, cfg);

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kSessionsPerClient = 4;
  constexpr std::size_t kStepsPerSession = 6;
  std::atomic<std::size_t> total_ok{0};
  std::atomic<std::size_t> total_busy{0};
  std::atomic<std::size_t> failures{0};

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client;
        client.Connect("127.0.0.1", server.Port());
        abr::AbrEnvironment env(w.video, {});
        env.SetFixedTrace(w.traces[c % w.traces.size()]);
        // Churn: each session lives a few steps, then closes and a fresh
        // one takes over mid-connection.
        for (std::size_t s = 0; s < kSessionsPerClient; ++s) {
          const std::uint64_t session = client.OpenSession();
          mdp::State state = env.Reset();
          std::size_t stepped = 0;
          while (stepped < kStepsPerSession) {
            const Reply reply = client.Step(session, state);
            if (reply.status == Status::kBusy) {
              total_busy.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::yield();
              continue;  // resend the same state
            }
            ASSERT_EQ(reply.status, Status::kOk);
            total_ok.fetch_add(1, std::memory_order_relaxed);
            ++stepped;
            mdp::StepResult result = env.Step(reply.action);
            state = std::move(result.next_state);
            if (result.done) state = env.Reset();
          }
          // Interleave a STATS round trip into the churn.
          const ServerStats stats = client.Stats();
          ASSERT_LE(stats.in_flight, cfg.max_in_flight);
          client.CloseSession(session);
        }
        client.Close();
      } catch (const std::exception&) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(total_ok.load(), kClients * kSessionsPerClient * kStepsPerSession);

  // After the churn the server is quiet: no sessions, no in-flight work,
  // and its counters account for every OK/BUSY the clients saw.
  Client probe;
  probe.Connect("127.0.0.1", server.Port());
  const ServerStats stats = probe.Stats();
  EXPECT_EQ(stats.open_sessions, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.decided, total_ok.load());
  EXPECT_EQ(stats.busy, total_busy.load());
  probe.Close();
}

// Abrupt disconnects mid-session: the server must reap the connection's
// sessions and keep serving everyone else.
TEST(NetSmoke, AbruptDisconnectReapsSessions) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kNovelty,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg;
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);

  Client survivor;
  survivor.Connect("127.0.0.1", server.Port());
  const std::uint64_t session = survivor.OpenSession();
  std::vector<double> state(model->InputSize(), 0.5);

  for (int round = 0; round < 5; ++round) {
    Client dropper;
    dropper.Connect("127.0.0.1", server.Port());
    dropper.OpenSession();
    dropper.OpenSession();
    dropper.Close();  // two sessions die with the connection
    // The survivor's session keeps deciding throughout.
    ASSERT_EQ(survivor.Step(session, state).status, Status::kOk);
  }
  // Give the loop a beat to process the hangups, then check the reap:
  // only the survivor's session remains. The STATS round trip itself
  // serializes behind the loop's event processing.
  const ServerStats stats = survivor.Stats();
  EXPECT_EQ(stats.open_sessions, 1u);
  EXPECT_EQ(stats.connections, 1u);
  survivor.CloseSession(session);
}

}  // namespace
}  // namespace osap::net
