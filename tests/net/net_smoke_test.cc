// Network-edge concurrency smoke (runs under the sanitize label, so the
// TSan suite checks it): one NetServer event loop plus several in-process
// client threads hammering it over loopback with session churn
// mid-connection - open, step a few times, close, reopen - plus a
// mid-run STATS reader. The assertions are deliberately coarse (every
// request answered, zero protocol errors besides the expected ones); the
// point is the interleaving, not the values.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "abr/abr_environment.h"
#include "net/client.h"
#include "net/server.h"
#include "net_test_world.h"

namespace osap::net {
namespace {

using testing::NetModelFor;
using testing::NetWorld;
using testing::ServerRunner;
using testing::SharedNetWorld;

/// The TSan-checked churn smokes run under both IO backends; the uring
/// arm skips visibly where the kernel denies io_uring.
class NetSmoke : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == BackendKind::kUring && !UringBackendAvailable()) {
      GTEST_SKIP() << "io_uring denied by this kernel ("
                   << UringUnavailableReason()
                   << "); uring backend arm skipped";
    }
  }

  NetServerConfig Cfg() const {
    NetServerConfig cfg;
    cfg.backend = GetParam();
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Backends, NetSmoke,
    ::testing::Values(BackendKind::kEpoll, BackendKind::kUring),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return std::string(BackendKindName(info.param));
    });

TEST_P(NetSmoke, ConcurrentClientsWithSessionChurn) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kAgentEnsemble,
                                 core::DefaultingMode::kRevocable);
  NetServerConfig cfg = Cfg();
  // Small caps so the churn also exercises the BUSY path under load.
  cfg.max_in_flight = 16;
  cfg.lane_high_water = 8;
  cfg.service.shard_count = 2;
  cfg.service.shard_workers = false;  // single-core host: keep it lean
  ServerRunner server(model, cfg);

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kSessionsPerClient = 4;
  constexpr std::size_t kStepsPerSession = 6;
  std::atomic<std::size_t> total_ok{0};
  std::atomic<std::size_t> total_busy{0};
  std::atomic<std::size_t> failures{0};

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client;
        client.Connect("127.0.0.1", server.Port());
        abr::AbrEnvironment env(w.video, {});
        env.SetFixedTrace(w.traces[c % w.traces.size()]);
        // Churn: each session lives a few steps, then closes and a fresh
        // one takes over mid-connection.
        for (std::size_t s = 0; s < kSessionsPerClient; ++s) {
          const std::uint64_t session = client.OpenSession();
          mdp::State state = env.Reset();
          std::size_t stepped = 0;
          while (stepped < kStepsPerSession) {
            const Reply reply = client.Step(session, state);
            if (reply.status == Status::kBusy) {
              total_busy.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::yield();
              continue;  // resend the same state
            }
            ASSERT_EQ(reply.status, Status::kOk);
            total_ok.fetch_add(1, std::memory_order_relaxed);
            ++stepped;
            mdp::StepResult result = env.Step(reply.action);
            state = std::move(result.next_state);
            if (result.done) state = env.Reset();
          }
          // Interleave a STATS round trip into the churn.
          const ServerStats stats = client.Stats();
          ASSERT_LE(stats.in_flight, cfg.max_in_flight);
          client.CloseSession(session);
        }
        client.Close();
      } catch (const std::exception&) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(total_ok.load(), kClients * kSessionsPerClient * kStepsPerSession);

  // After the churn the server is quiet: no sessions, no in-flight work,
  // and its counters account for every OK/BUSY the clients saw.
  Client probe;
  probe.Connect("127.0.0.1", server.Port());
  const ServerStats stats = probe.Stats();
  EXPECT_EQ(stats.open_sessions, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.decided, total_ok.load());
  EXPECT_EQ(stats.busy, total_busy.load());
  probe.Close();
}

// Abrupt disconnects mid-session: the server must reap the connection's
// sessions and keep serving everyone else.
TEST_P(NetSmoke, AbruptDisconnectReapsSessions) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kNovelty,
                                 core::DefaultingMode::kPermanent);
  NetServerConfig cfg = Cfg();
  cfg.service.shard_workers = false;
  ServerRunner server(model, cfg);

  Client survivor;
  survivor.Connect("127.0.0.1", server.Port());
  const std::uint64_t session = survivor.OpenSession();
  std::vector<double> state(model->InputSize(), 0.5);

  for (int round = 0; round < 5; ++round) {
    Client dropper;
    dropper.Connect("127.0.0.1", server.Port());
    dropper.OpenSession();
    dropper.OpenSession();
    dropper.Close();  // two sessions die with the connection
    // The survivor's session keeps deciding throughout.
    ASSERT_EQ(survivor.Step(session, state).status, Status::kOk);
  }
  // Give the loop a beat to process the hangups, then check the reap:
  // only the survivor's session remains. The STATS round trip itself
  // serializes behind the loop's event processing.
  const ServerStats stats = survivor.Stats();
  EXPECT_EQ(stats.open_sessions, 1u);
  EXPECT_EQ(stats.connections, 1u);
  survivor.CloseSession(session);
}

// Four SO_REUSEPORT edge threads under concurrent client flood (the
// --edge-threads 4 TSan smoke): every status path fires - OK, BUSY (lane
// marks against pipelined duplicate bursts), FULL (more opens than
// max_sessions, held open across a latch so the attempts overlap) and
// ERROR (steps on bogus sessions) - and afterwards the aggregated
// per-edge counters match the client-side tallies exactly. The
// accounting invariant is the point: ok + busy + full + error ==
// requests sent, nothing dropped, nothing double-counted, across edges.
TEST_P(NetSmoke, MultiEdgeFloodAccountsEveryReply) {
  const NetWorld& w = SharedNetWorld();
  const auto model = NetModelFor(w, serve::Signal::kAgentEnsemble,
                                 core::DefaultingMode::kRevocable);
  NetServerConfig cfg = Cfg();
  cfg.edge_threads = 4;
  cfg.max_sessions = 8;
  cfg.lane_high_water = 2;
  cfg.pause_reads_above = 0;
  cfg.service.shard_count = 4;
  cfg.service.shard_workers = false;  // edges are the parallelism here
  ServerRunner server(model, cfg);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOpensEach = 3;
  std::vector<double> state(model->InputSize(), 0.5);
  std::atomic<std::size_t> ok_steps{0};
  std::atomic<std::size_t> busy{0};
  std::atomic<std::size_t> full{0};
  std::atomic<std::size_t> errors{0};
  std::atomic<std::size_t> failures{0};
  // All opens complete before any session closes, so the 12 attempts
  // genuinely contend for the 8 slots. (The gate reads the active count
  // per edge, so racing edges can briefly over-admit; the tallies still
  // balance, which is what this smoke pins.)
  std::latch opens_done(kThreads);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client client;
        client.Connect("127.0.0.1", server.Port());
        std::uint64_t rid = (t + 1) << 20;
        std::vector<std::uint64_t> sessions;
        for (std::size_t i = 0; i < kOpensEach; ++i) {
          client.SendOpen(++rid);
          client.Flush();
          Reply reply;
          ASSERT_TRUE(client.ReadReply(reply));
          if (reply.status == Status::kOk) {
            sessions.push_back(reply.session_id);
          } else {
            ASSERT_EQ(reply.status, Status::kFull);
            full.fetch_add(1, std::memory_order_relaxed);
          }
        }
        opens_done.arrive_and_wait();

        // Pipelined duplicate bursts per session: the per-lane mark of 2
        // BUSYs the tail of each burst when it parses in one chunk.
        for (std::uint64_t session : sessions) {
          for (int round = 0; round < 2; ++round) {
            for (int i = 0; i < 4; ++i) {
              client.SendStep(++rid, session, state);
            }
            client.Flush();
            for (int i = 0; i < 4; ++i) {
              Reply reply;
              ASSERT_TRUE(client.ReadReply(reply));
              ASSERT_TRUE(reply.status == Status::kOk ||
                          reply.status == Status::kBusy);
              if (reply.status == Status::kOk) {
                ok_steps.fetch_add(1, std::memory_order_relaxed);
              } else {
                busy.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
        }
        // One guaranteed error per thread: a STEP on a session that was
        // never opened anywhere.
        client.SendStep(++rid, (std::uint64_t{1} << 40) + t, state);
        client.Flush();
        Reply reply;
        ASSERT_TRUE(client.ReadReply(reply));
        ASSERT_EQ(reply.status, Status::kError);
        errors.fetch_add(1, std::memory_order_relaxed);

        for (std::uint64_t session : sessions) client.CloseSession(session);
        client.Close();
      } catch (const std::exception&) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(ok_steps.load(), 0u);
  EXPECT_GE(full.load(), 1u) << "12 held-open attempts against a cap of 8";
  EXPECT_EQ(errors.load(), kThreads);

  // Every client-side tally shows up in the summed per-edge counters
  // exactly; every session was closed over the wire before its client
  // disconnected, so the service is empty again.
  Client probe;
  probe.Connect("127.0.0.1", server.Port());
  const ServerStats stats = probe.Stats();
  EXPECT_EQ(stats.decided, ok_steps.load());
  EXPECT_EQ(stats.busy, busy.load());
  EXPECT_EQ(stats.rejected_opens, full.load());
  EXPECT_EQ(stats.errors, errors.load());
  EXPECT_EQ(stats.open_sessions, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  probe.Close();
}

}  // namespace
}  // namespace osap::net
