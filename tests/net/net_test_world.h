// Shared fixture for the network-edge tests: a small trained world (agent
// ensemble + fitted novelty detector + half-ID / half-OOD traces), model
// builders, and a ServerRunner that runs a NetServer event loop on its
// own thread for the lifetime of a test.
//
// Deliberately smaller than the serve-test World (fewer agents, shorter
// traces): the net tests pin wire-path properties (framing, admission,
// bit-transport), not estimator quality, and the TSan smoke needs the
// fixture cheap.
#pragma once

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "abr/abr_environment.h"
#include "abr/video.h"
#include "core/ensemble_estimators.h"
#include "core/novelty_detector.h"
#include "net/server.h"
#include "policies/pensieve_net.h"
#include "policies/pensieve_policy.h"
#include "serve/serving_model.h"
#include "traces/generators.h"
#include "util/stats.h"

namespace osap::net::testing {

constexpr std::size_t kEnsemble = 3;
constexpr std::size_t kDiscard = 1;
constexpr std::size_t kTriggerL = 2;
constexpr std::size_t kTriggerK = 4;
constexpr std::size_t kTraces = 4;

struct NetWorld {
  abr::AbrStateLayout layout;
  abr::VideoSpec video = abr::MakeEnvivioLikeVideo(1);
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents;
  std::shared_ptr<core::NoveltyDetector> novelty;
  std::vector<traces::Trace> traces;  // even = ID (Norway), odd = OOD
  double alpha_pi = 0.0;
};

inline const NetWorld& SharedNetWorld() {
  static const NetWorld* world = [] {
    auto* w = new NetWorld();
    policies::PensieveNetConfig net;
    net.conv_filters = 3;
    net.hidden = 8;
    Rng rng(23);
    for (std::size_t m = 0; m < kEnsemble; ++m) {
      w->agents.push_back(std::make_shared<nn::ActorCriticNet>(
          policies::MakePensieveActorCritic(w->layout, net, rng)));
    }
    const auto id_gen = traces::MakeNorway3gGenerator();
    const auto ood_gen = traces::MakeBelgium4gGenerator();
    Rng trace_rng(31);
    for (std::size_t i = 0; i < kTraces; ++i) {
      const auto& gen = i % 2 == 0 ? id_gen : ood_gen;
      w->traces.push_back(gen->Generate(trace_rng, 150.0, i));
    }

    core::NoveltyDetectorConfig nd;
    nd.throughput_window = 3;
    nd.k = 2;
    std::vector<std::vector<double>> features;
    for (std::size_t i = 0; i < 4; ++i) {
      const traces::Trace t = id_gen->Generate(trace_rng, 400.0, 50 + i);
      const auto f = core::NoveltyDetector::ExtractFeatures(t.samples(), nd);
      features.insert(features.end(), f.begin(), f.end());
    }
    w->novelty = std::make_shared<core::NoveltyDetector>(nd, w->layout);
    w->novelty->Fit(features);

    // Quick alpha probe for the U_pi variance trigger: 40th percentile of
    // windowed score variances under the deployed greedy policy, so the
    // trigger fires on some sessions and not others.
    core::AgentEnsembleEstimator estimator(w->agents, kDiscard);
    policies::PensievePolicy deployed(w->agents.front(),
                                      policies::ActionSelection::kGreedy, 0);
    std::vector<double> variances;
    for (const traces::Trace& trace : w->traces) {
      abr::AbrEnvironment env(w->video, {});
      env.SetFixedTrace(trace);
      SlidingWindowStats window(kTriggerK);
      mdp::State state = env.Reset();
      bool done = false;
      while (!done) {
        window.Push(estimator.Score(state));
        if (window.Full()) variances.push_back(window.Variance());
        mdp::StepResult result = env.Step(deployed.SelectAction(state));
        state = std::move(result.next_state);
        done = result.done;
      }
    }
    std::sort(variances.begin(), variances.end());
    w->alpha_pi = variances[variances.size() * 2 / 5];
    return w;
  }();
  return *world;
}

inline core::SafeAgentConfig NetConfigFor(const NetWorld& w,
                                          serve::Signal signal,
                                          core::DefaultingMode mode) {
  core::SafeAgentConfig config;
  config.trigger.l = kTriggerL;
  config.trigger.k = kTriggerK;
  config.mode = mode;
  if (signal == serve::Signal::kNovelty) {
    config.trigger.mode = core::TriggerMode::kBinary;
  } else {
    config.trigger.mode = core::TriggerMode::kWindowVariance;
    config.trigger.alpha = w.alpha_pi;
  }
  return config;
}

inline std::shared_ptr<const serve::ServingModel> NetModelFor(
    const NetWorld& w, serve::Signal signal, core::DefaultingMode mode) {
  const core::SafeAgentConfig config = NetConfigFor(w, signal, mode);
  if (signal == serve::Signal::kNovelty) {
    return serve::ServingModel::Novelty(w.agents, w.novelty, w.video,
                                        w.layout, config);
  }
  return serve::ServingModel::AgentEnsemble(w.agents, kDiscard, w.video,
                                            w.layout, config);
}

/// Starts a NetServer on an ephemeral port and runs its event loop on a
/// dedicated thread until destruction.
class ServerRunner {
 public:
  explicit ServerRunner(std::shared_ptr<const serve::ServingModel> model,
                        NetServerConfig config = {}) {
    config.port = 0;
    server_ = std::make_unique<NetServer>(std::move(model), config);
    server_->Start();
    thread_ = std::thread([this] { server_->Run(); });
  }

  ~ServerRunner() {
    server_->Stop();
    thread_.join();
  }

  std::uint16_t Port() const { return server_->Port(); }
  /// Safe only after the loop has returned (or for the STATS request use
  /// a client instead).
  const NetServer& server() const { return *server_; }

 private:
  std::unique_ptr<NetServer> server_;
  std::thread thread_;
};

}  // namespace osap::net::testing
