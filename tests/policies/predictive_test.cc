#include "policies/predictive.h"

#include <gtest/gtest.h>

#include "mdp/rollout.h"
#include "policies/buffer_based.h"
#include "traces/dataset.h"

namespace osap::policies {
namespace {

PredictiveAbrConfig FastConfig() {
  PredictiveAbrConfig cfg;
  cfg.training.epochs = 30;
  cfg.training.learning_rate = 0.01;
  return cfg;
}

class PredictiveTest : public ::testing::Test {
 protected:
  PredictiveTest()
      : env_(abr::MakeEnvivioLikeVideo(1), {}),
        bb_(env_.video(), env_.layout()) {}
  abr::AbrEnvironment env_;
  BufferBasedPolicy bb_;
};

TEST_F(PredictiveTest, CollectDatasetLabelsAreMeasuredThroughputs) {
  const traces::Trace trace("flat", 1.0, std::vector<double>(2000, 4.0));
  std::vector<traces::Trace> traces_ = {trace};
  const rl::ValueDataset ds =
      ThroughputPredictor::CollectDataset(env_, bb_, traces_);
  EXPECT_EQ(ds.Size(), env_.video().ChunkCount());
  for (double label : ds.returns) {
    EXPECT_GT(label, 0.0);
    EXPECT_LE(label, 4.0 + 1e-9);  // can't exceed the link rate
  }
}

TEST_F(PredictiveTest, LearnsAFlatLinkExactly) {
  const traces::Trace trace("flat", 1.0, std::vector<double>(2000, 3.0));
  std::vector<traces::Trace> traces_ = {trace, trace, trace};
  const rl::ValueDataset ds =
      ThroughputPredictor::CollectDataset(env_, bb_, traces_);
  Rng rng(1);
  ThroughputPredictor predictor(env_.layout(), FastConfig(), rng);
  predictor.Train(ds);
  // Steady-state predictions near the (RTT-discounted) measured rate.
  double err = 0.0;
  for (std::size_t i = ds.Size() / 2; i < ds.Size(); ++i) {
    err = std::max(err,
                   std::abs(predictor.Predict(ds.states[i]) -
                            ds.returns[i]));
  }
  EXPECT_LT(err, 0.6);
}

TEST_F(PredictiveTest, PredictionIsFlooredPositive) {
  Rng rng(2);
  ThroughputPredictor predictor(env_.layout(), FastConfig(), rng);
  // Untrained net may output negatives; Predict floors them.
  EXPECT_GE(predictor.Predict(mdp::State(env_.layout().Size(), 0.0)),
            0.05);
}

TEST_F(PredictiveTest, ControllerPlansAgainstTheForecast) {
  const traces::Trace trace("flat", 1.0, std::vector<double>(2000, 3.0));
  std::vector<traces::Trace> traces_ = {trace, trace, trace};
  const rl::ValueDataset ds =
      ThroughputPredictor::CollectDataset(env_, bb_, traces_);
  Rng rng(1);
  auto predictor =
      std::make_shared<ThroughputPredictor>(env_.layout(), FastConfig(),
                                            rng);
  predictor->Train(ds);
  PredictiveAbrPolicy policy(predictor, env_.video(), env_.layout(),
                             FastConfig());
  // On a steady in-distribution state with a healthy buffer, the MPC
  // lookahead sustains a mid-to-high rung against the ~2.9 Mbps forecast,
  // never the extremes.
  const mdp::Action a = policy.SelectAction(ds.states[ds.Size() / 2]);
  EXPECT_GE(a, 3);
  EXPECT_LE(a, 5);
}

TEST_F(PredictiveTest, EndToEndBeatsRandomInDistribution) {
  const traces::Dataset ds_set =
      traces::BuildDataset(traces::DatasetId::kGamma22);
  const rl::ValueDataset ds =
      ThroughputPredictor::CollectDataset(env_, bb_, ds_set.train);
  Rng rng(4);
  auto predictor = std::make_shared<ThroughputPredictor>(
      env_.layout(), FastConfig(), rng);
  predictor->Train(ds);
  PredictiveAbrPolicy policy(predictor, env_.video(), env_.layout(),
                             FastConfig());
  double total = 0.0;
  for (const auto& trace : ds_set.test) {
    env_.SetFixedTrace(trace);
    total += mdp::Rollout(env_, policy).TotalReward();
  }
  EXPECT_GT(total / static_cast<double>(ds_set.test.size()), 100.0);
}

TEST_F(PredictiveTest, ValidatesArguments) {
  Rng rng(5);
  auto predictor = std::make_shared<ThroughputPredictor>(
      env_.layout(), FastConfig(), rng);
  EXPECT_THROW(PredictiveAbrPolicy(nullptr, env_.video(), env_.layout(),
                                   FastConfig()),
               std::invalid_argument);
  PredictiveAbrConfig bad = FastConfig();
  bad.safety_factor = 0.0;
  EXPECT_THROW(
      PredictiveAbrPolicy(predictor, env_.video(), env_.layout(), bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace osap::policies
