#include "policies/rate_based.h"

#include <gtest/gtest.h>

namespace osap::policies {
namespace {

class RateBasedTest : public ::testing::Test {
 protected:
  RateBasedTest()
      : video_(abr::MakeEnvivioLikeVideo(1)),
        policy_(video_, layout_, {}) {}

  abr::AbrStateLayout layout_;
  abr::VideoSpec video_;
  RateBasedPolicy policy_;

  /// State whose newest `values.size()` throughput taps are `values`
  /// (oldest first).
  mdp::State StateWithThroughputs(const std::vector<double>& values) const {
    mdp::State s(layout_.Size(), 0.0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const std::size_t tap = layout_.history - values.size() + i;
      s[layout_.ThroughputBegin() + tap] =
          values[i] / abr::AbrStateLayout::kThroughputNormMbps;
    }
    return s;
  }
};

TEST_F(RateBasedTest, NoMeasurementsPicksLowest) {
  EXPECT_EQ(policy_.SelectAction(mdp::State(layout_.Size(), 0.0)), 0);
}

TEST_F(RateBasedTest, PicksHighestSustainableRung) {
  // Estimate 3.0 Mbps: ladder 0.3/0.75/1.2/1.85/2.85/4.3 -> level 4.
  EXPECT_EQ(policy_.SelectAction(StateWithThroughputs({3.0, 3.0, 3.0})), 4);
  // Estimate 1.0 -> level 1 (0.75).
  EXPECT_EQ(policy_.SelectAction(StateWithThroughputs({1.0})), 1);
  // Estimate 10 -> top.
  EXPECT_EQ(policy_.SelectAction(StateWithThroughputs({10.0, 10.0})), 5);
  // Estimate below lowest rung -> 0.
  EXPECT_EQ(policy_.SelectAction(StateWithThroughputs({0.2})), 0);
}

TEST_F(RateBasedTest, HarmonicMeanIsConservative) {
  // Harmonic mean of {1, 9} is 1.8 < arithmetic mean 5: one slow sample
  // dominates the estimate.
  const double est =
      policy_.EstimateThroughputMbps(StateWithThroughputs({1.0, 9.0}));
  EXPECT_NEAR(est, 1.8, 1e-9);
}

TEST_F(RateBasedTest, WindowLimitsHistoryUse) {
  RateBasedConfig cfg;
  cfg.window = 2;
  RateBasedPolicy policy(video_, layout_, cfg);
  // Old slow sample outside the window must be ignored.
  const auto s = StateWithThroughputs({0.1, 8.0, 8.0});
  EXPECT_NEAR(policy.EstimateThroughputMbps(s), 8.0, 1e-9);
}

TEST_F(RateBasedTest, SafetyFactorDiscountsEstimate) {
  RateBasedConfig cfg;
  cfg.safety_factor = 0.5;
  RateBasedPolicy policy(video_, layout_, cfg);
  // 3.0 * 0.5 = 1.5 -> level 2 (1.2).
  EXPECT_EQ(policy.SelectAction(StateWithThroughputs({3.0, 3.0})), 2);
}

TEST_F(RateBasedTest, ValidatesConfig) {
  RateBasedConfig bad;
  bad.window = 0;
  EXPECT_THROW(RateBasedPolicy(video_, layout_, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace osap::policies
