#include "policies/pensieve_net.h"
#include "policies/pensieve_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace osap::policies {
namespace {

abr::AbrStateLayout Layout() { return abr::AbrStateLayout{}; }

TEST(PensieveNet, TopologyMatchesStateLayout) {
  Rng rng(1);
  const abr::AbrStateLayout layout = Layout();
  nn::CompositeNet actor = BuildPensieveNet(layout, 6, {}, rng);
  EXPECT_EQ(actor.InputSize(), layout.Size());
  EXPECT_EQ(actor.OutputSize(), 6u);
  nn::CompositeNet value = BuildPensieveNet(layout, 1, {}, rng);
  EXPECT_EQ(value.OutputSize(), 1u);
}

TEST(PensieveNet, ActorCriticShareStateSize) {
  Rng rng(2);
  nn::ActorCriticNet net = MakePensieveActorCritic(Layout(), {}, rng);
  EXPECT_EQ(net.StateSize(), Layout().Size());
  EXPECT_EQ(net.ActionCount(), 6u);
}

TEST(PensieveNet, DifferentInitProducesDifferentOutputs) {
  Rng rng1(1);
  Rng rng2(2);
  nn::ActorCriticNet a = MakePensieveActorCritic(Layout(), {}, rng1);
  nn::ActorCriticNet b = MakePensieveActorCritic(Layout(), {}, rng2);
  const mdp::State state(Layout().Size(), 0.2);
  EXPECT_NE(a.ActionProbs(state), b.ActionProbs(state));
}

TEST(PensieveNet, SameSeedSameNetwork) {
  Rng rng1(7);
  Rng rng2(7);
  nn::ActorCriticNet a = MakePensieveActorCritic(Layout(), {}, rng1);
  nn::ActorCriticNet b = MakePensieveActorCritic(Layout(), {}, rng2);
  const mdp::State state(Layout().Size(), 0.4);
  EXPECT_EQ(a.ActionProbs(state), b.ActionProbs(state));
  EXPECT_DOUBLE_EQ(a.Value(state), b.Value(state));
}

TEST(PensieveNet, KernelMustFitVectors) {
  Rng rng(3);
  PensieveNetConfig cfg;
  cfg.conv_kernel = 7;  // > levels (6)
  EXPECT_THROW(BuildPensieveNet(Layout(), 6, cfg, rng),
               std::invalid_argument);
}

TEST(NetValueFunction, WrapsValueNetwork) {
  Rng rng(4);
  NetValueFunction vf(BuildPensieveNet(Layout(), 1, {}, rng));
  const mdp::State state(Layout().Size(), 0.1);
  EXPECT_TRUE(std::isfinite(vf.Value(state)));
  EXPECT_THROW(vf.Value(mdp::State(3, 0.0)), std::invalid_argument);
}

TEST(NetValueFunction, RejectsMultiOutputNet) {
  Rng rng(5);
  EXPECT_THROW(NetValueFunction(BuildPensieveNet(Layout(), 2, {}, rng)),
               std::invalid_argument);
}

TEST(PensievePolicy, GreedyPicksArgmax) {
  Rng rng(6);
  auto net = std::make_shared<nn::ActorCriticNet>(
      MakePensieveActorCritic(Layout(), {}, rng));
  PensievePolicy policy(net, ActionSelection::kGreedy, 0);
  const mdp::State state(Layout().Size(), 0.3);
  const auto probs = policy.ActionDistribution(state);
  const auto argmax = static_cast<int>(std::distance(
      probs.begin(), std::max_element(probs.begin(), probs.end())));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.SelectAction(state), argmax);
  }
}

TEST(PensievePolicy, SampleFollowsDistribution) {
  Rng rng(8);
  auto net = std::make_shared<nn::ActorCriticNet>(
      MakePensieveActorCritic(Layout(), {}, rng));
  PensievePolicy policy(net, ActionSelection::kSample, 1);
  const mdp::State state(Layout().Size(), 0.3);
  const auto probs = policy.ActionDistribution(state);
  std::vector<int> counts(probs.size(), 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(policy.SelectAction(state))];
  }
  for (std::size_t a = 0; a < probs.size(); ++a) {
    EXPECT_NEAR(static_cast<double>(counts[a]) / draws, probs[a], 0.02);
  }
}

TEST(PensievePolicy, DistributionSumsToOne) {
  Rng rng(9);
  auto net = std::make_shared<nn::ActorCriticNet>(
      MakePensieveActorCritic(Layout(), {}, rng));
  PensievePolicy policy(net, ActionSelection::kGreedy, 0);
  const auto probs =
      policy.ActionDistribution(mdp::State(Layout().Size(), 0.9));
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(PensievePolicy, RejectsNullNet) {
  EXPECT_THROW(PensievePolicy(nullptr, ActionSelection::kGreedy, 0),
               std::invalid_argument);
}

TEST(PensievePolicy, SharedNetReflectsUpdates) {
  // Two policies over one network see the same weights.
  Rng rng(10);
  auto net = std::make_shared<nn::ActorCriticNet>(
      MakePensieveActorCritic(Layout(), {}, rng));
  PensievePolicy p1(net, ActionSelection::kGreedy, 0);
  PensievePolicy p2(net, ActionSelection::kGreedy, 0);
  const mdp::State state(Layout().Size(), 0.5);
  EXPECT_EQ(p1.SelectAction(state), p2.SelectAction(state));
}

}  // namespace
}  // namespace osap::policies
