// Gradient check of the full Pensieve composite topology (scalar dense
// branches + three Conv1D branches + trunk) under both of its heads - the
// wiring most likely to hide a backprop bug is exactly the branch
// scatter/gather, so we verify it end to end against finite differences.
#include <gtest/gtest.h>

#include "nn/gradcheck.h"
#include "nn/losses.h"
#include "policies/pensieve_net.h"

namespace osap::policies {
namespace {

PensieveNetConfig TinyConfig() {
  PensieveNetConfig cfg;
  cfg.conv_filters = 4;
  cfg.hidden = 8;
  return cfg;
}

nn::Matrix RandomStates(std::size_t rows, const abr::AbrStateLayout& layout,
                        Rng& rng) {
  nn::Matrix x(rows, layout.Size());
  for (double& v : x.values()) v = rng.Uniform(0.0, 1.0);
  return x;
}

TEST(PensieveGradCheck, ActorHeadThroughPolicyGradientLoss) {
  Rng rng(1);
  const abr::AbrStateLayout layout;
  nn::CompositeNet actor = BuildPensieveNet(layout, 6, TinyConfig(), rng);
  const nn::Matrix x = RandomStates(3, layout, rng);
  const std::vector<int> actions = {0, 5, 2};
  const std::vector<double> advantages = {1.0, -0.5, 0.25};
  auto loss_fn = [&] {
    return nn::PolicyGradientLoss(actor.Forward(x), actions, advantages,
                                  0.2)
        .loss;
  };
  auto backward_fn = [&] {
    nn::ZeroGrads(actor.Params());
    actor.Backward(nn::PolicyGradientLoss(actor.Forward(x), actions,
                                          advantages, 0.2)
                       .grad);
  };
  const auto result =
      nn::CheckGradients(actor.Params(), loss_fn, backward_fn);
  EXPECT_LT(result.max_rel_error, 1e-5);
  EXPECT_GT(result.checked, 500u);  // the whole net was checked
}

TEST(PensieveGradCheck, ValueHeadThroughMseLoss) {
  Rng rng(2);
  const abr::AbrStateLayout layout;
  nn::CompositeNet critic = BuildPensieveNet(layout, 1, TinyConfig(), rng);
  const nn::Matrix x = RandomStates(4, layout, rng);
  nn::Matrix target(4, 1);
  for (double& v : target.values()) v = rng.Uniform(-2.0, 2.0);
  auto loss_fn = [&] {
    return nn::MseLoss(critic.Forward(x), target).loss;
  };
  auto backward_fn = [&] {
    nn::ZeroGrads(critic.Params());
    critic.Backward(nn::MseLoss(critic.Forward(x), target).grad);
  };
  const auto result =
      nn::CheckGradients(critic.Params(), loss_fn, backward_fn);
  EXPECT_LT(result.max_rel_error, 1e-5);
}

}  // namespace
}  // namespace osap::policies
