#include "policies/buffer_based.h"

#include <gtest/gtest.h>

#include "abr/abr_environment.h"

namespace osap::policies {
namespace {

class BufferBasedTest : public ::testing::Test {
 protected:
  BufferBasedTest()
      : video_(abr::MakeEnvivioLikeVideo(1)),
        policy_(video_, layout_, {}) {}

  abr::AbrStateLayout layout_;
  abr::VideoSpec video_;
  BufferBasedPolicy policy_;

  mdp::State StateWithBuffer(double buffer_seconds) const {
    mdp::State s(layout_.Size(), 0.0);
    s[layout_.BufferIndex()] =
        buffer_seconds / abr::AbrStateLayout::kBufferNormSeconds;
    return s;
  }
};

TEST_F(BufferBasedTest, BelowReservoirPicksLowest) {
  EXPECT_EQ(policy_.LevelForBuffer(0.0), 0u);
  EXPECT_EQ(policy_.LevelForBuffer(4.99), 0u);
}

TEST_F(BufferBasedTest, AboveCushionPicksHighest) {
  EXPECT_EQ(policy_.LevelForBuffer(15.0), 5u);
  EXPECT_EQ(policy_.LevelForBuffer(60.0), 5u);
}

TEST_F(BufferBasedTest, LinearInterpolationInsideCushion) {
  // reservoir 5, cushion 10: fraction = (b-5)/10 mapped over 5 levels.
  EXPECT_EQ(policy_.LevelForBuffer(5.0), 0u);
  EXPECT_EQ(policy_.LevelForBuffer(7.0), 1u);
  EXPECT_EQ(policy_.LevelForBuffer(9.0), 2u);
  EXPECT_EQ(policy_.LevelForBuffer(11.0), 3u);
  EXPECT_EQ(policy_.LevelForBuffer(13.0), 4u);
  EXPECT_EQ(policy_.LevelForBuffer(14.99), 4u);
}

TEST_F(BufferBasedTest, MonotoneInBuffer) {
  std::size_t prev = 0;
  for (double b = 0.0; b <= 20.0; b += 0.25) {
    const std::size_t level = policy_.LevelForBuffer(b);
    EXPECT_GE(level, prev);
    prev = level;
  }
}

TEST_F(BufferBasedTest, ReadsBufferFromState) {
  EXPECT_EQ(policy_.SelectAction(StateWithBuffer(2.0)), 0);
  EXPECT_EQ(policy_.SelectAction(StateWithBuffer(16.0)), 5);
  EXPECT_EQ(policy_.SelectAction(StateWithBuffer(9.0)), 2);
}

TEST_F(BufferBasedTest, IgnoresThroughputFields) {
  mdp::State s = StateWithBuffer(9.0);
  s[layout_.ThroughputBegin()] = 5.0;  // garbage in other fields
  s[layout_.LastBitrateIndex()] = 1.0;
  EXPECT_EQ(policy_.SelectAction(s), 2);
}

TEST_F(BufferBasedTest, CustomReservoirCushion) {
  BufferBasedConfig cfg;
  cfg.reservoir_seconds = 10.0;
  cfg.cushion_seconds = 20.0;
  BufferBasedPolicy policy(video_, layout_, cfg);
  EXPECT_EQ(policy.LevelForBuffer(9.0), 0u);
  EXPECT_EQ(policy.LevelForBuffer(30.0), 5u);
  EXPECT_EQ(policy.LevelForBuffer(20.0), 2u);
}

TEST_F(BufferBasedTest, ValidatesConfig) {
  BufferBasedConfig bad;
  bad.reservoir_seconds = 0.0;
  EXPECT_THROW(BufferBasedPolicy(video_, layout_, bad),
               std::invalid_argument);
}

TEST_F(BufferBasedTest, RejectsWrongStateSize) {
  mdp::State s(3, 0.0);
  EXPECT_THROW(policy_.SelectAction(s), std::invalid_argument);
}

TEST_F(BufferBasedTest, NeverRebuffersBadlyOnAStableLink) {
  // End-to-end sanity: BB on a link that can sustain mid bitrates keeps
  // rebuffering minimal after startup - the property that makes it the
  // paper's safe default.
  abr::AbrEnvironment env(video_, {});
  const traces::Trace trace("flat", 1.0, std::vector<double>(2000, 2.0));
  env.SetFixedTrace(trace);
  mdp::State s = env.Reset();
  bool done = false;
  double rebuffer = 0.0;
  bool first = true;
  while (!done) {
    const mdp::StepResult r = env.Step(policy_.SelectAction(s));
    if (!first) rebuffer += env.LastDownload().rebuffer_seconds;
    first = false;
    s = r.next_state;
    done = r.done;
  }
  EXPECT_LT(rebuffer, 1.0);
}

}  // namespace
}  // namespace osap::policies
