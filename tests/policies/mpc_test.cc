#include "policies/mpc.h"

#include <gtest/gtest.h>

#include "abr/abr_environment.h"
#include "mdp/rollout.h"
#include "policies/buffer_based.h"
#include "traces/generators.h"
#include "util/rng.h"

namespace osap::policies {
namespace {

class MpcTest : public ::testing::Test {
 protected:
  MpcTest() : video_(abr::MakeEnvivioLikeVideo(1)) {}

  abr::AbrStateLayout layout_;
  abr::VideoSpec video_;

  mdp::State StateWith(double buffer_s, double throughput_mbps,
                       double remaining_fraction = 1.0) const {
    mdp::State s(layout_.Size(), 0.0);
    s[layout_.BufferIndex()] =
        buffer_s / abr::AbrStateLayout::kBufferNormSeconds;
    s[layout_.ThroughputBegin() + layout_.history - 1] =
        throughput_mbps / abr::AbrStateLayout::kThroughputNormMbps;
    s[layout_.RemainingIndex()] = remaining_fraction;
    return s;
  }
};

TEST_F(MpcTest, NoMeasurementPicksSafestRung) {
  MpcPolicy mpc(video_, layout_);
  EXPECT_EQ(mpc.SelectAction(mdp::State(layout_.Size(), 0.0)), 0);
}

TEST_F(MpcTest, HighThroughputBigBufferPicksTop) {
  MpcPolicy mpc(video_, layout_);
  EXPECT_EQ(mpc.SelectAction(StateWith(30.0, 20.0)), 5);
}

TEST_F(MpcTest, LowThroughputEmptyBufferPicksBottom) {
  MpcPolicy mpc(video_, layout_);
  EXPECT_EQ(mpc.SelectAction(StateWith(0.0, 0.3)), 0);
}

TEST_F(MpcTest, BufferAllowsRidingAboveThroughput) {
  // With a large buffer, MPC can afford a bitrate above the predicted
  // throughput for the whole horizon.
  MpcPolicy mpc(video_, layout_);
  const int with_buffer = mpc.SelectAction(StateWith(40.0, 2.0));
  const int without_buffer = mpc.SelectAction(StateWith(1.0, 2.0));
  EXPECT_GT(with_buffer, without_buffer);
}

TEST_F(MpcTest, PredictionDiscountIsMoreConservative) {
  MpcConfig conservative;
  conservative.prediction_discount = 0.5;
  MpcPolicy robust(video_, layout_, {}, conservative);
  MpcPolicy plain(video_, layout_, {}, {});
  const auto s = StateWith(8.0, 3.0);
  EXPECT_LE(robust.SelectAction(s), plain.SelectAction(s));
}

TEST_F(MpcTest, MatchesGreedyOnHorizonOne)  {
  // With horizon 1 and a huge buffer, MPC maximizes single-chunk QoE:
  // highest bitrate (smoothness from prev 0 is offset by bitrate gain
  // only when bitrate - |bitrate - 0| >= others... with prev_bitrate = 0
  // the smoothness cancels the bitrate term, so all levels with no
  // rebuffer tie at 0 and the first maximizer (level 0) is kept unless
  // rebuffering breaks ties).
  MpcConfig cfg;
  cfg.horizon = 1;
  MpcPolicy mpc(video_, layout_, {}, cfg);
  mdp::State s = StateWith(60.0, 100.0);
  s[layout_.LastBitrateIndex()] = 1.0;  // prev bitrate = 4.3 Mbps
  // Now smoothness favors staying at the top.
  EXPECT_EQ(mpc.SelectAction(s), 5);
}

TEST_F(MpcTest, OutperformsBufferBasedOnAStableLink) {
  // On a flat 3 Mbps link the throughput predictor is exact, so MPC's
  // lookahead should at least match BB's QoE.
  abr::AbrEnvironment env(video_, {});
  const traces::Trace trace("flat", 1.0, std::vector<double>(2000, 3.0));
  env.SetFixedTrace(trace);
  MpcPolicy mpc(video_, layout_);
  BufferBasedPolicy bb(video_, layout_);
  const double mpc_qoe = mdp::Rollout(env, mpc).TotalReward();
  const double bb_qoe = mdp::Rollout(env, bb).TotalReward();
  EXPECT_GE(mpc_qoe, bb_qoe);
}

TEST_F(MpcTest, MemoizedLookaheadBitIdenticalToDirectRecursion) {
  // The per-decision download/bitrate/smoothness tables hold the exact
  // expressions the recursion evaluated inline, so every decision must
  // match the unmemoized enumeration bit-for-bit.
  MpcConfig direct_cfg;
  direct_cfg.memoize = false;
  MpcPolicy memoized(video_, layout_);
  MpcPolicy direct(video_, layout_, {}, direct_cfg);

  // A grid of synthetic states covering empty/full buffers, slow/fast
  // links, every previous level, and the end-of-video chunk clamp.
  for (const double buffer : {0.0, 1.5, 8.0, 40.0}) {
    for (const double mbps : {0.2, 0.7, 1.3, 3.0, 20.0}) {
      for (const double remaining : {1.0, 0.6, 0.1, 0.0}) {
        for (std::size_t prev = 0; prev < video_.LevelCount(); ++prev) {
          mdp::State s = StateWith(buffer, mbps, remaining);
          s[layout_.LastBitrateIndex()] =
              video_.BitrateMbps(prev) / video_.MaxBitrateMbps();
          EXPECT_EQ(memoized.SelectAction(s), direct.SelectAction(s))
              << "buffer=" << buffer << " mbps=" << mbps
              << " remaining=" << remaining << " prev=" << prev;
        }
      }
    }
  }

  // And over real sessions, where states come from the simulator.
  abr::AbrEnvironment env(video_, {});
  Rng rng(5);
  const auto gen = traces::MakeNorway3gGenerator();
  for (std::size_t t = 0; t < 3; ++t) {
    const traces::Trace trace = gen->Generate(rng, 200.0, t);
    env.SetFixedTrace(trace);
    const double memo_qoe = mdp::Rollout(env, memoized).TotalReward();
    env.SetFixedTrace(trace);
    const double direct_qoe = mdp::Rollout(env, direct).TotalReward();
    EXPECT_EQ(memo_qoe, direct_qoe) << "trace " << t;
  }
}

TEST_F(MpcTest, ValidatesConfig) {
  MpcConfig bad;
  bad.horizon = 0;
  EXPECT_THROW(MpcPolicy(video_, layout_, {}, bad), std::invalid_argument);
  MpcConfig bad2;
  bad2.prediction_discount = 0.0;
  EXPECT_THROW(MpcPolicy(video_, layout_, {}, bad2),
               std::invalid_argument);
}

}  // namespace
}  // namespace osap::policies
