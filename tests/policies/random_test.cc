#include "policies/random_policy.h"

#include <gtest/gtest.h>

#include <vector>

namespace osap::policies {
namespace {

TEST(RandomPolicy, ActionsCoverSupportUniformly) {
  RandomPolicy policy(6, 1);
  std::vector<int> counts(6, 0);
  const int draws = 60000;
  const mdp::State state(25, 0.0);
  for (int i = 0; i < draws; ++i) {
    const int a = policy.SelectAction(state);
    ASSERT_GE(a, 0);
    ASSERT_LT(a, 6);
    ++counts[static_cast<std::size_t>(a)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 1.0 / 6.0, 0.01);
  }
}

TEST(RandomPolicy, DistributionIsUniform) {
  RandomPolicy policy(4, 2);
  const auto dist = policy.ActionDistribution(mdp::State{});
  ASSERT_EQ(dist.size(), 4u);
  for (double p : dist) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(RandomPolicy, DeterministicPerSeed) {
  RandomPolicy a(6, 42);
  RandomPolicy b(6, 42);
  const mdp::State state;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.SelectAction(state), b.SelectAction(state));
  }
}

TEST(RandomPolicy, IgnoresState) {
  RandomPolicy a(6, 9);
  RandomPolicy b(6, 9);
  const mdp::State s1(25, 0.0);
  const mdp::State s2(25, 1.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.SelectAction(s1), b.SelectAction(s2));
  }
}

TEST(RandomPolicy, RejectsZeroActions) {
  EXPECT_THROW(RandomPolicy(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace osap::policies
