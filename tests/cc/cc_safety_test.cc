// Integration: the OSAP layer over the congestion-control domain - the
// domain-agnostic pieces (NoveltyDetector with a custom probe, SafeAgent,
// triggers) must compose with cc::CcEnvironment exactly as they do with
// the ABR environment.
#include <gtest/gtest.h>

#include <algorithm>

#include "cc/aimd_policy.h"
#include "cc/cc_net.h"
#include "core/novelty_detector.h"
#include "core/safe_agent.h"
#include "mdp/rollout.h"
#include "rl/a2c.h"
#include "traces/dataset.h"

namespace osap::cc {
namespace {

CcEnvironmentConfig SmallConfig() {
  CcEnvironmentConfig cfg;
  cfg.episode_mis = 150;
  cfg.initial_rate_mbps = 5.0;
  cfg.max_rate_mbps = 100.0;
  return cfg;
}

class GreedyRlPolicy final : public mdp::Policy {
 public:
  explicit GreedyRlPolicy(std::shared_ptr<nn::ActorCriticNet> net)
      : net_(std::move(net)) {}
  mdp::Action SelectAction(const mdp::State& s) override {
    const auto p = net_->ActionProbs(s);
    return static_cast<mdp::Action>(
        std::distance(p.begin(), std::max_element(p.begin(), p.end())));
  }
  std::string Name() const override { return "rl"; }

 private:
  std::shared_ptr<nn::ActorCriticNet> net_;
};

/// Shared tiny setup: agent trained briefly on fast links, ND fitted on
/// its delivered-rate windows.
struct Fixture {
  CcEnvironmentConfig cfg = SmallConfig();
  std::vector<traces::Trace> train;
  std::vector<traces::Trace> ood;
  std::shared_ptr<nn::ActorCriticNet> net;
  std::shared_ptr<GreedyRlPolicy> rl;
  std::shared_ptr<AimdPolicy> aimd;
  std::shared_ptr<core::NoveltyDetector> nd;

  Fixture() {
    traces::DatasetConfig dcfg;
    dcfg.trace_count = 8;
    dcfg.trace_duration_seconds = 60.0;
    train = traces::ScaleTraces(
        traces::BuildDataset(traces::DatasetId::kGamma22, dcfg).train,
        10.0);
    ood = traces::ScaleTraces(
        traces::BuildDataset(traces::DatasetId::kExponential, dcfg).test,
        10.0);

    CcEnvironment env(cfg);
    env.SetTracePool(train, 3);
    Rng rng(1);
    net = std::make_shared<nn::ActorCriticNet>(MakeCcActorCritic(
        cfg.layout, cfg.rate_multipliers.size(), {}, rng));
    rl::A2cConfig a2c;
    a2c.episodes = 200;
    rl::TrainA2c(*net, env, a2c);
    rl = std::make_shared<GreedyRlPolicy>(net);
    aimd = std::make_shared<AimdPolicy>(cfg.layout, cfg.rate_multipliers);

    core::NoveltyDetectorConfig nd_cfg;
    nd_cfg.throughput_window = 5;
    nd_cfg.k = 5;
    const CcStateLayout layout = cfg.layout;
    nd = std::make_shared<core::NoveltyDetector>(
        nd_cfg, [layout](const mdp::State& s) {
          return layout.LatestDeliveredMbps(s);
        });
    std::vector<std::vector<double>> features;
    for (const traces::Trace& trace : train) {
      env.SetFixedTrace(trace);
      std::vector<double> delivered;
      mdp::State s = env.Reset();
      bool done = false;
      while (!done) {
        mdp::StepResult r = env.Step(rl->SelectAction(s));
        delivered.push_back(env.LastReport().delivered_mbps);
        s = std::move(r.next_state);
        done = r.done;
      }
      for (auto& f :
           core::NoveltyDetector::ExtractFeatures(delivered, nd_cfg)) {
        features.push_back(std::move(f));
      }
    }
    nd->Fit(features);
  }

  std::shared_ptr<core::SafeAgent> MakeSafeAgent() {
    auto estimator = std::make_shared<core::NoveltyDetector>(*nd);
    estimator->Reset();
    core::SafeAgentConfig sa;
    sa.trigger.mode = core::TriggerMode::kBinary;
    sa.trigger.l = 3;
    return std::make_shared<core::SafeAgent>(rl, aimd, estimator, sa);
  }

  double Eval(mdp::Policy& policy,
              const std::vector<traces::Trace>& traces_) {
    CcEnvironment env(cfg);
    double total = 0.0;
    for (const traces::Trace& trace : traces_) {
      env.SetFixedTrace(trace);
      total += mdp::Rollout(env, policy).TotalReward();
    }
    return total / static_cast<double>(traces_.size());
  }
};

Fixture& SharedFixture() {
  static auto* fixture = new Fixture();
  return *fixture;
}

TEST(CcSafety, NoveltyProbeReadsDeliveredRate) {
  Fixture& f = SharedFixture();
  // In-distribution sessions mostly stay certain.
  auto agent = f.MakeSafeAgent();
  CcEnvironment env(f.cfg);
  env.SetFixedTrace(f.train.front());
  mdp::Rollout(env, *agent);
  EXPECT_LT(agent->DefaultedFraction(), 0.9);
}

TEST(CcSafety, SafetyNetFiresOnCapacityCollapse) {
  Fixture& f = SharedFixture();
  auto agent = f.MakeSafeAgent();
  CcEnvironment env(f.cfg);
  env.SetFixedTrace(f.ood.front());  // exponential x10: mean 10x lower
  mdp::Rollout(env, *agent);
  EXPECT_TRUE(agent->Defaulted());
}

TEST(CcSafety, SafeAgentBoundsTheOodDamage) {
  Fixture& f = SharedFixture();
  auto agent = f.MakeSafeAgent();
  const double rl_reward = f.Eval(*f.rl, f.ood);
  const double safe_reward = f.Eval(*agent, f.ood);
  const double aimd_reward = f.Eval(*f.aimd, f.ood);
  // The safety net must recover most of the RL-to-AIMD gap.
  EXPECT_GT(safe_reward, rl_reward);
  EXPECT_GT(safe_reward, rl_reward + 0.5 * (aimd_reward - rl_reward));
}

TEST(CcSafety, SafeAgentStaysNearTheAgentInDistribution) {
  Fixture& f = SharedFixture();
  auto agent = f.MakeSafeAgent();
  const double rl_reward = f.Eval(*f.rl, f.train);
  const double safe_reward = f.Eval(*agent, f.train);
  // Occasional false alarms are allowed; wholesale defaulting is not.
  EXPECT_GT(safe_reward, 0.5 * rl_reward);
}

}  // namespace
}  // namespace osap::cc
