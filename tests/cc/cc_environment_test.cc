#include "cc/cc_environment.h"

#include <gtest/gtest.h>

#include "mdp/rollout.h"
#include "policies/random_policy.h"

namespace osap::cc {
namespace {

traces::Trace FlatTrace(double mbps) {
  return traces::Trace("flat", 1.0, std::vector<double>(1000, mbps));
}

CcEnvironmentConfig SmallConfig() {
  CcEnvironmentConfig cfg;
  cfg.episode_mis = 50;
  return cfg;
}

TEST(CcEnvironment, ResetRequiresATrace) {
  CcEnvironment env(SmallConfig());
  EXPECT_THROW(env.Reset(), std::invalid_argument);
}

TEST(CcEnvironment, InitialStateIsZero) {
  CcEnvironment env(SmallConfig());
  const traces::Trace trace = FlatTrace(4.0);
  env.SetFixedTrace(trace);
  const mdp::State s = env.Reset();
  ASSERT_EQ(s.size(), env.StateSize());
  for (double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(env.CurrentRateMbps(),
                   SmallConfig().initial_rate_mbps);
}

TEST(CcEnvironment, EpisodeTerminatesAfterConfiguredMis) {
  CcEnvironment env(SmallConfig());
  const traces::Trace trace = FlatTrace(4.0);
  env.SetFixedTrace(trace);
  policies::RandomPolicy random(env.ActionCount(), 1);
  const mdp::Trajectory t = mdp::Rollout(env, random);
  EXPECT_EQ(t.Length(), 50u);
}

TEST(CcEnvironment, ActionsMultiplyTheRate) {
  CcEnvironmentConfig cfg = SmallConfig();
  CcEnvironment env(cfg);
  const traces::Trace trace = FlatTrace(100.0);  // never the bottleneck
  env.SetFixedTrace(trace);
  env.Reset();
  const double r0 = env.CurrentRateMbps();
  env.Step(4);  // x1.4
  EXPECT_NEAR(env.CurrentRateMbps(), r0 * 1.4, 1e-9);
  env.Step(0);  // x0.7
  EXPECT_NEAR(env.CurrentRateMbps(), r0 * 1.4 * 0.7, 1e-9);
}

TEST(CcEnvironment, RateRespectsBounds) {
  CcEnvironmentConfig cfg = SmallConfig();
  CcEnvironment env(cfg);
  const traces::Trace trace = FlatTrace(100.0);
  env.SetFixedTrace(trace);
  env.Reset();
  for (int i = 0; i < 100; ++i) env.Step(0);  // hammer decrease
  EXPECT_DOUBLE_EQ(env.CurrentRateMbps(), cfg.min_rate_mbps);
  env.Reset();
  for (int i = 0; i < 100; ++i) env.Step(4);  // hammer increase
  EXPECT_DOUBLE_EQ(env.CurrentRateMbps(), cfg.max_rate_mbps);
}

TEST(CcEnvironment, StateEncodesAuroraStatistics) {
  CcEnvironmentConfig cfg = SmallConfig();
  CcEnvironment env(cfg);
  const traces::Trace trace = FlatTrace(4.0);
  env.SetFixedTrace(trace);
  env.Reset();
  // Steady under-utilization (rate 2 < capacity 4): latency ratio ~1,
  // send ratio ~1, delivered ~rate.
  mdp::State s;
  for (int i = 0; i < 10; ++i) s = env.Step(2).next_state;  // no-op action
  const CcStateLayout& layout = env.layout();
  EXPECT_NEAR(layout.LatestLatencyRatio(s), 1.0, 1e-6);
  EXPECT_NEAR(layout.LatestSendRatio(s), 1.0, 1e-6);
  EXPECT_NEAR(layout.LatestDeliveredMbps(s), 2.0, 1e-6);
}

TEST(CcEnvironment, OverloadShowsUpInTheState) {
  CcEnvironmentConfig cfg = SmallConfig();
  cfg.initial_rate_mbps = 20.0;
  CcEnvironment env(cfg);
  const traces::Trace trace = FlatTrace(1.0);
  env.SetFixedTrace(trace);
  env.Reset();
  mdp::State s;
  for (int i = 0; i < 5; ++i) s = env.Step(2).next_state;
  const CcStateLayout& layout = env.layout();
  EXPECT_GT(layout.LatestSendRatio(s), 2.0);
  EXPECT_GT(layout.LatestLatencyRatio(s), 1.0);
}

TEST(CcEnvironment, RewardRewardsThroughputPenalizesCongestion) {
  CcEnvironmentConfig cfg = SmallConfig();
  CcEnvironment env(cfg);
  const traces::Trace trace = FlatTrace(4.0);
  env.SetFixedTrace(trace);
  // Clean under-utilization: reward == throughput term.
  env.Reset();
  const double clean = env.Step(2).reward;
  EXPECT_NEAR(clean, cfg.throughput_weight * 2.0, 1e-6);
  // Persistent overload: queueing latency drags the reward down.
  CcEnvironmentConfig hot = cfg;
  hot.initial_rate_mbps = 30.0;
  CcEnvironment hot_env(hot);
  hot_env.SetFixedTrace(trace);
  hot_env.Reset();
  double last = 0.0;
  for (int i = 0; i < 10; ++i) last = hot_env.Step(2).reward;
  EXPECT_LT(last, 0.0);
}

TEST(CcEnvironment, HistoryWindowShifts) {
  CcEnvironmentConfig cfg = SmallConfig();
  CcEnvironment env(cfg);
  const traces::Trace trace = FlatTrace(4.0);
  env.SetFixedTrace(trace);
  env.Reset();
  mdp::State s = env.Step(2).next_state;
  const CcStateLayout& layout = env.layout();
  // Only the newest MI slot is populated after one step.
  EXPECT_GT(s[layout.SendRatioIndex(layout.history - 1)], 0.0);
  EXPECT_DOUBLE_EQ(s[layout.SendRatioIndex(layout.history - 2)], 0.0);
  s = env.Step(2).next_state;
  EXPECT_GT(s[layout.SendRatioIndex(layout.history - 2)], 0.0);
}

TEST(CcEnvironment, FixedTraceIsDeterministic) {
  CcEnvironment env(SmallConfig());
  const traces::Trace trace("var", 1.0, {2.0, 6.0, 1.0, 8.0});
  env.SetFixedTrace(trace);
  policies::RandomPolicy p1(env.ActionCount(), 5);
  policies::RandomPolicy p2(env.ActionCount(), 5);
  EXPECT_DOUBLE_EQ(mdp::Rollout(env, p1).TotalReward(),
                   mdp::Rollout(env, p2).TotalReward());
}

TEST(CcEnvironment, ValidatesConfigAndActions) {
  CcEnvironmentConfig bad = SmallConfig();
  bad.rate_multipliers = {1.0};
  EXPECT_THROW(CcEnvironment{bad}, std::invalid_argument);
  CcEnvironment env(SmallConfig());
  const traces::Trace trace = FlatTrace(4.0);
  env.SetFixedTrace(trace);
  env.Reset();
  EXPECT_THROW(env.Step(-1), std::invalid_argument);
  EXPECT_THROW(env.Step(99), std::invalid_argument);
}

}  // namespace
}  // namespace osap::cc
