#include "cc/link.h"

#include <gtest/gtest.h>

namespace osap::cc {
namespace {

traces::Trace FlatTrace(double mbps, std::size_t seconds = 1000) {
  return traces::Trace("flat", 1.0, std::vector<double>(seconds, mbps));
}

LinkConfig DefaultConfig() { return LinkConfig{}; }

TEST(BottleneckLink, SendBeforeStartThrows) {
  BottleneckLink link(DefaultConfig());
  EXPECT_THROW(link.Send(1.0), std::invalid_argument);
}

TEST(BottleneckLink, UnderloadedLinkDeliversEverything) {
  BottleneckLink link(DefaultConfig());
  const traces::Trace trace = FlatTrace(10.0);
  link.Start(trace);
  const MiReport r = link.Send(4.0);
  EXPECT_NEAR(r.delivered_mbps, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.loss_rate, 0.0);
  EXPECT_NEAR(r.avg_latency_seconds, 0.05, 1e-9);  // base RTT only
  EXPECT_DOUBLE_EQ(link.QueueBits(), 0.0);
}

TEST(BottleneckLink, OverloadBuildsQueueAndLatency) {
  BottleneckLink link(DefaultConfig());
  const traces::Trace trace = FlatTrace(4.0);
  link.Start(trace);
  const MiReport r = link.Send(8.0);
  // 0.4 Mb excess in 0.1 s.
  EXPECT_NEAR(link.QueueBits(), 0.4e6, 1.0);
  EXPECT_GT(r.avg_latency_seconds, 0.05);
  EXPECT_DOUBLE_EQ(r.loss_rate, 0.0);  // queue has room (1 Mb budget)
  EXPECT_NEAR(r.delivered_mbps, 4.0, 1e-9);
}

TEST(BottleneckLink, FullQueueDropsOverflow) {
  LinkConfig cfg;
  cfg.queue_bdp = 1.0;  // 10 Mbps * 0.05 s = 0.5 Mb buffer
  BottleneckLink link(cfg);
  const traces::Trace trace = FlatTrace(1.0);
  link.Start(trace);
  // 20 Mbps into a 1 Mbps link: 1.9 Mb excess vs 0.5 Mb buffer.
  MiReport r{};
  for (int i = 0; i < 3; ++i) r = link.Send(20.0);
  EXPECT_GT(r.loss_rate, 0.5);
  EXPECT_NEAR(link.QueueBits(), 0.5e6, 1.0);
}

TEST(BottleneckLink, QueueDrainsWhenSenderBacksOff) {
  BottleneckLink link(DefaultConfig());
  const traces::Trace trace = FlatTrace(4.0);
  link.Start(trace);
  link.Send(8.0);  // builds 0.4 Mb
  const double q1 = link.QueueBits();
  link.Send(0.0);  // drains 0.4 Mb at 4 Mbps in 0.1 s
  EXPECT_LT(link.QueueBits(), q1);
  EXPECT_NEAR(link.QueueBits(), 0.0, 1.0);
}

TEST(BottleneckLink, DrainingQueueStillDelivers) {
  BottleneckLink link(DefaultConfig());
  const traces::Trace trace = FlatTrace(4.0);
  link.Start(trace);
  link.Send(8.0);
  const MiReport r = link.Send(0.0);
  // Queue (0.4 Mb) drains through the 4 Mbps link in the 0.1 s interval.
  EXPECT_NEAR(r.delivered_mbps, 4.0, 1e-6);
}

TEST(BottleneckLink, LatencyTracksQueueOverCapacity) {
  BottleneckLink link(DefaultConfig());
  const traces::Trace trace = FlatTrace(4.0);
  link.Start(trace);
  link.Send(8.0);  // queue 0.4 Mb after, 0.2 Mb average
  const MiReport r = link.Send(4.0);  // queue steady at 0.4 Mb
  EXPECT_NEAR(r.avg_latency_seconds, 0.05 + 0.4e6 / 4e6, 1e-9);
}

TEST(BottleneckLink, TimeAdvancesOneMiPerSend) {
  BottleneckLink link(DefaultConfig());
  const traces::Trace trace = FlatTrace(4.0);
  link.Start(trace);
  for (int i = 1; i <= 10; ++i) {
    link.Send(1.0);
    EXPECT_NEAR(link.TimeSeconds(), 0.1 * i, 1e-12);
  }
}

TEST(BottleneckLink, CapacityFollowsTheTrace) {
  BottleneckLink link(DefaultConfig());
  const traces::Trace trace("step", 1.0, {2.0, 8.0});
  link.Start(trace);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(link.Send(0.1).capacity_mbps, 2.0);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(link.Send(0.1).capacity_mbps, 8.0);
  }
  // Wraps around.
  EXPECT_DOUBLE_EQ(link.Send(0.1).capacity_mbps, 2.0);
}

TEST(BottleneckLink, StartResetsState) {
  BottleneckLink link(DefaultConfig());
  const traces::Trace trace = FlatTrace(1.0);
  link.Start(trace);
  link.Send(20.0);
  EXPECT_GT(link.QueueBits(), 0.0);
  link.Start(trace);
  EXPECT_DOUBLE_EQ(link.QueueBits(), 0.0);
  EXPECT_DOUBLE_EQ(link.TimeSeconds(), 0.0);
}

TEST(BottleneckLink, ValidatesConfigAndInput) {
  LinkConfig bad;
  bad.base_rtt_seconds = 0.0;
  EXPECT_THROW(BottleneckLink{bad}, std::invalid_argument);
  BottleneckLink link(DefaultConfig());
  const traces::Trace trace = FlatTrace(1.0);
  link.Start(trace);
  EXPECT_THROW(link.Send(-1.0), std::invalid_argument);
}

TEST(BottleneckLink, DeterministicReplay) {
  const traces::Trace trace("var", 1.0, {1.0, 5.0, 2.0, 8.0});
  BottleneckLink a(DefaultConfig());
  BottleneckLink b(DefaultConfig());
  a.Start(trace);
  b.Start(trace);
  for (int i = 0; i < 100; ++i) {
    const double rate = 1.0 + (i % 7);
    const MiReport ra = a.Send(rate);
    const MiReport rb = b.Send(rate);
    ASSERT_DOUBLE_EQ(ra.delivered_mbps, rb.delivered_mbps);
    ASSERT_DOUBLE_EQ(ra.avg_latency_seconds, rb.avg_latency_seconds);
  }
}

}  // namespace
}  // namespace osap::cc
