#include "cc/aimd_policy.h"

#include <gtest/gtest.h>

#include "mdp/rollout.h"

namespace osap::cc {
namespace {

CcEnvironmentConfig SmallConfig() {
  CcEnvironmentConfig cfg;
  cfg.episode_mis = 100;
  return cfg;
}

traces::Trace FlatTrace(double mbps) {
  return traces::Trace("flat", 1.0, std::vector<double>(1000, mbps));
}

TEST(AimdPolicy, PicksDecreaseAndIncreaseActionsFromTheSet) {
  const CcEnvironmentConfig cfg = SmallConfig();
  AimdPolicy aimd(cfg.layout, cfg.rate_multipliers);
  // Multipliers {0.7, 0.93, 1.0, 1.07, 1.4}: decrease = index 0 (0.7),
  // increase = index 3 (1.07, the mildest > 1).
  EXPECT_EQ(aimd.decrease_action(), 0);
  EXPECT_EQ(aimd.increase_action(), 3);
}

TEST(AimdPolicy, RequiresDecreaseAndIncreaseMultipliers) {
  const CcStateLayout layout;
  EXPECT_THROW(AimdPolicy(layout, {1.0, 1.1}), std::invalid_argument);
  EXPECT_THROW(AimdPolicy(layout, {0.5, 0.9}), std::invalid_argument);
}

TEST(AimdPolicy, IncreasesWhenUncongested) {
  const CcEnvironmentConfig cfg = SmallConfig();
  AimdPolicy aimd(cfg.layout, cfg.rate_multipliers);
  mdp::State s(cfg.layout.Size(), 0.0);
  const std::size_t newest = cfg.layout.history - 1;
  s[cfg.layout.SendRatioIndex(newest)] = 1.0;
  s[cfg.layout.LatencyRatioIndex(newest)] = 1.0;
  EXPECT_EQ(aimd.SelectAction(s), aimd.increase_action());
}

TEST(AimdPolicy, DecreasesOnCongestionSignals) {
  const CcEnvironmentConfig cfg = SmallConfig();
  AimdPolicy aimd(cfg.layout, cfg.rate_multipliers);
  const std::size_t newest = cfg.layout.history - 1;
  // High send ratio alone.
  mdp::State s1(cfg.layout.Size(), 0.0);
  s1[cfg.layout.SendRatioIndex(newest)] = 2.0;
  s1[cfg.layout.LatencyRatioIndex(newest)] = 1.0;
  EXPECT_EQ(aimd.SelectAction(s1), aimd.decrease_action());
  // High latency ratio alone.
  mdp::State s2(cfg.layout.Size(), 0.0);
  s2[cfg.layout.SendRatioIndex(newest)] = 1.0;
  s2[cfg.layout.LatencyRatioIndex(newest)] = 2.0;
  EXPECT_EQ(aimd.SelectAction(s2), aimd.decrease_action());
}

TEST(AimdPolicy, ProbesUpwardFromTheInitialState) {
  const CcEnvironmentConfig cfg = SmallConfig();
  AimdPolicy aimd(cfg.layout, cfg.rate_multipliers);
  EXPECT_EQ(aimd.SelectAction(mdp::State(cfg.layout.Size(), 0.0)),
            aimd.increase_action());
}

TEST(AimdPolicy, ConvergesNearCapacityOnAFlatLink) {
  const CcEnvironmentConfig cfg = SmallConfig();
  CcEnvironment env(cfg);
  const traces::Trace trace = FlatTrace(4.0);
  env.SetFixedTrace(trace);
  AimdPolicy aimd(cfg.layout, cfg.rate_multipliers);
  mdp::Rollout(env, aimd);
  // Sawtooth around capacity: within the one-multiplier band.
  EXPECT_GT(env.CurrentRateMbps(), 4.0 * 0.65);
  EXPECT_LT(env.CurrentRateMbps(), 4.0 * 1.5);
}

TEST(AimdPolicy, KeepsLatencyAndLossLowOnAFlatLink) {
  const CcEnvironmentConfig cfg = SmallConfig();
  CcEnvironment env(cfg);
  const traces::Trace trace = FlatTrace(4.0);
  env.SetFixedTrace(trace);
  AimdPolicy aimd(cfg.layout, cfg.rate_multipliers);
  mdp::State s = env.Reset();
  bool done = false;
  double max_latency = 0.0;
  double total_loss = 0.0;
  while (!done) {
    const mdp::StepResult r = env.Step(aimd.SelectAction(s));
    max_latency =
        std::max(max_latency, env.LastReport().avg_latency_seconds);
    total_loss += env.LastReport().loss_rate;
    s = r.next_state;
    done = r.done;
  }
  EXPECT_LT(max_latency, 0.10);  // base RTT 0.05 + bounded queueing
  EXPECT_LT(total_loss, 0.5);
}

TEST(AimdPolicy, BacksOffDuringACapacityCollapse) {
  const CcEnvironmentConfig cfg = SmallConfig();
  CcEnvironment env(cfg);
  // 8 Mbps for 5 s, then 0.5 Mbps.
  std::vector<double> samples(5, 8.0);
  samples.resize(100, 0.5);
  const traces::Trace trace("collapse", 1.0, samples);
  env.SetFixedTrace(trace);
  AimdPolicy aimd(cfg.layout, cfg.rate_multipliers);
  mdp::Rollout(env, aimd);
  // After the collapse AIMD must operate near the new capacity.
  EXPECT_LT(env.CurrentRateMbps(), 1.0);
}

}  // namespace
}  // namespace osap::cc
