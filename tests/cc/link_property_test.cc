// Property sweep over the bottleneck link: conservation and boundedness
// invariants that must hold for every (sending rate, capacity) pair.
#include <gtest/gtest.h>

#include <tuple>

#include "cc/link.h"
#include "util/rng.h"

namespace osap::cc {
namespace {

using Params = std::tuple<double /*rate*/, double /*capacity*/>;

class LinkInvariants : public ::testing::TestWithParam<Params> {};

TEST_P(LinkInvariants, ConservationAndBounds) {
  const auto [rate, capacity] = GetParam();
  LinkConfig cfg;
  BottleneckLink link(cfg);
  const traces::Trace trace("flat", 1.0,
                            std::vector<double>(1000, capacity));
  link.Start(trace);
  const double queue_capacity_bits =
      cfg.queue_bdp * cfg.reference_bandwidth_mbps * 1e6 *
      cfg.base_rtt_seconds;

  double sent_bits = 0.0;
  double delivered_bits = 0.0;
  double lost_bits = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double queue_before = link.QueueBits();
    const MiReport r = link.Send(rate);

    // Boundedness.
    ASSERT_GE(r.delivered_mbps, 0.0);
    ASSERT_LE(r.delivered_mbps, capacity + 1e-9);
    ASSERT_GE(r.loss_rate, 0.0);
    ASSERT_LE(r.loss_rate, 1.0);
    ASSERT_GE(r.avg_latency_seconds, cfg.base_rtt_seconds - 1e-12);
    ASSERT_LE(link.QueueBits(), queue_capacity_bits + 1e-6);

    // Per-interval conservation: arrivals go to delivery, loss, or queue.
    const double dt = cfg.mi_seconds;
    const double in_bits = rate * 1e6 * dt;
    const double out_bits = r.delivered_mbps * 1e6 * dt;
    const double loss_bits_mi = r.loss_rate * in_bits;
    const double queue_delta = link.QueueBits() - queue_before;
    ASSERT_NEAR(in_bits, out_bits + loss_bits_mi + queue_delta,
                1e-3 * std::max(1.0, in_bits))
        << "rate=" << rate << " capacity=" << capacity << " step=" << i;

    sent_bits += in_bits;
    delivered_bits += out_bits;
    lost_bits += loss_bits_mi;
  }
  // Whole-connection conservation.
  ASSERT_NEAR(sent_bits, delivered_bits + lost_bits + link.QueueBits(),
              1e-3 * sent_bits + 1.0);
  // Long-run delivery cannot exceed either the offered load or capacity.
  EXPECT_LE(delivered_bits, sent_bits + 1e-6);
}

TEST_P(LinkInvariants, SteadyStateLossOnlyWhenOverloaded) {
  const auto [rate, capacity] = GetParam();
  LinkConfig cfg;
  BottleneckLink link(cfg);
  const traces::Trace trace("flat", 1.0,
                            std::vector<double>(1000, capacity));
  link.Start(trace);
  MiReport r{};
  for (int i = 0; i < 300; ++i) r = link.Send(rate);
  if (rate <= capacity) {
    EXPECT_DOUBLE_EQ(r.loss_rate, 0.0);
  } else {
    // Once the queue saturates, the steady-state loss fraction is the
    // capacity deficit.
    EXPECT_NEAR(r.loss_rate, (rate - capacity) / rate, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RateCapacityGrid, LinkInvariants,
    ::testing::Combine(::testing::Values(0.1, 1.0, 4.0, 20.0, 80.0),
                       ::testing::Values(0.5, 4.0, 30.0)),
    [](const auto& info) {
      return "rate_" +
             std::to_string(
                 static_cast<int>(std::get<0>(info.param) * 10)) +
             "_cap_" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 10));
    });

}  // namespace
}  // namespace osap::cc
