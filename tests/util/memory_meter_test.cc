#include "util/memory_meter.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace osap::util {
namespace {

TEST(MemoryMeter, AccumulatesByCategoryInInsertionOrder) {
  MemoryMeter meter;
  meter.Add("a", 100);
  meter.Add("b", 50);
  meter.Add("a", 25);
  EXPECT_EQ(meter.Get("a"), 125u);
  EXPECT_EQ(meter.Get("b"), 50u);
  EXPECT_EQ(meter.Get("missing"), 0u);
  EXPECT_EQ(meter.Total(), 175u);
  ASSERT_EQ(meter.entries().size(), 2u);
  EXPECT_EQ(meter.entries()[0].first, "a");
  EXPECT_EQ(meter.entries()[1].first, "b");
}

TEST(MemoryMeter, EmptyMeterIsZero) {
  const MemoryMeter meter;
  EXPECT_EQ(meter.Total(), 0u);
  EXPECT_TRUE(meter.entries().empty());
}

TEST(RssProbe, CurrentRssIsPositiveAndPageAligned) {
  const std::size_t rss = CurrentRssBytes();
  ASSERT_GT(rss, 0u) << "/proc/self/statm should exist on Linux";
  // A running process resides in at least a few hundred KB.
  EXPECT_GT(rss, 100u * 1024u);
}

TEST(RssProbe, PeakRssIsAtLeastCurrent) {
  // Peak is monotonic over the process lifetime, so it can never be below
  // a current reading taken afterwards.
  const std::size_t current = CurrentRssBytes();
  const std::size_t peak = PeakRssBytes();
  ASSERT_GT(peak, 0u);
  EXPECT_GE(peak, current);
}

TEST(RssProbe, TouchingMemoryGrowsRss) {
  const std::size_t before = CurrentRssBytes();
  constexpr std::size_t kBytes = 32 * 1024 * 1024;
  auto block = std::make_unique<unsigned char[]>(kBytes);
  // Touch every page so the kernel actually maps it.
  for (std::size_t i = 0; i < kBytes; i += 4096) block[i] = 1;
  const std::size_t after = CurrentRssBytes();
  EXPECT_GE(after, before + kBytes / 2)
      << "32 MB of touched pages must show up in RSS";
  EXPECT_GE(PeakRssBytes(), after);
}

}  // namespace
}  // namespace osap::util
