#include "util/memory_meter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace osap::util {
namespace {

TEST(MemoryMeter, AccumulatesByCategoryInInsertionOrder) {
  MemoryMeter meter;
  meter.Add("a", 100);
  meter.Add("b", 50);
  meter.Add("a", 25);
  EXPECT_EQ(meter.Get("a"), 125u);
  EXPECT_EQ(meter.Get("b"), 50u);
  EXPECT_EQ(meter.Get("missing"), 0u);
  EXPECT_EQ(meter.Total(), 175u);
  ASSERT_EQ(meter.entries().size(), 2u);
  EXPECT_EQ(meter.entries()[0].first, "a");
  EXPECT_EQ(meter.entries()[1].first, "b");
}

TEST(MemoryMeter, EmptyMeterIsZero) {
  const MemoryMeter meter;
  EXPECT_EQ(meter.Total(), 0u);
  EXPECT_TRUE(meter.entries().empty());
}

TEST(RssProbe, CurrentRssIsPositiveAndPageAligned) {
  const std::size_t rss = CurrentRssBytes();
  ASSERT_GT(rss, 0u) << "/proc/self/statm should exist on Linux";
  // A running process resides in at least a few hundred KB.
  EXPECT_GT(rss, 100u * 1024u);
}

TEST(RssProbe, PeakRssIsAtLeastCurrent) {
  // Peak is monotonic over the process lifetime, so it can never be below
  // a current reading taken afterwards.
  const std::size_t current = CurrentRssBytes();
  const std::size_t peak = PeakRssBytes();
  ASSERT_GT(peak, 0u);
  EXPECT_GE(peak, current);
}

TEST(RssProbe, TouchingMemoryGrowsRss) {
  const std::size_t before = CurrentRssBytes();
  constexpr std::size_t kBytes = 32 * 1024 * 1024;
  auto block = std::make_unique<unsigned char[]>(kBytes);
  // Touch every page so the kernel actually maps it.
  for (std::size_t i = 0; i < kBytes; i += 4096) block[i] = 1;
  const std::size_t after = CurrentRssBytes();
  EXPECT_GE(after, before + kBytes / 2)
      << "32 MB of touched pages must show up in RSS";
  EXPECT_GE(PeakRssBytes(), after);
}

// The fallback contract behind both probes: a minimal container without a
// /proc mount must get 0, never an assert or a crash, so the network-edge
// server still boots there. The probes are path-parameterized exactly so
// this is testable without unmounting /proc.
TEST(RssProbe, MissingProcFilesDegradeToZero) {
  EXPECT_EQ(RssBytesFromStatm("/nonexistent/osap/statm"), 0u);
  EXPECT_EQ(PeakRssBytesFromStatus("/nonexistent/osap/status"), 0u);
}

TEST(RssProbe, MalformedProcFilesDegradeToZero) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "osap_meter_test";
  std::filesystem::create_directories(dir);
  const std::filesystem::path statm = dir / "statm";
  const std::filesystem::path status = dir / "status";
  std::ofstream(statm) << "not numbers at all";
  std::ofstream(status) << "Name:\tgarbage\nVmHWM:\tnot-a-number kB\n";
  EXPECT_EQ(RssBytesFromStatm(statm.c_str()), 0u);
  EXPECT_EQ(PeakRssBytesFromStatus(status.c_str()), 0u);
  std::filesystem::remove_all(dir);
}

TEST(RssProbe, WellFormedProcFilesParse) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "osap_meter_test_ok";
  std::filesystem::create_directories(dir);
  const std::filesystem::path statm = dir / "statm";
  const std::filesystem::path status = dir / "status";
  std::ofstream(statm) << "1000 250 100 10 0 200 0\n";
  std::ofstream(status) << "Name:\ttest\nVmHWM:\t  2048 kB\nVmRSS:\t1 kB\n";
  // 250 resident pages at whatever the host page size is.
  EXPECT_GT(RssBytesFromStatm(statm.c_str()), 0u);
  EXPECT_EQ(RssBytesFromStatm(statm.c_str()) % 250, 0u);
  EXPECT_EQ(PeakRssBytesFromStatus(status.c_str()), 2048u * 1024u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace osap::util
