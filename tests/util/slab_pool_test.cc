#include "util/slab_pool.h"

#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <vector>

namespace osap::util {
namespace {

// A slot type that records construction/destruction and remembers its
// scratch span, so tests can observe recycle-without-reconstruct and
// slab-carved storage.
struct Probe {
  explicit Probe(std::span<double> scratch)
      : scratch_data(scratch.data()), scratch_size(scratch.size()) {
    ++live;
    ++constructed;
  }
  ~Probe() { --live; }

  double* scratch_data;
  std::size_t scratch_size;
  int value = 0;

  static int live;
  static int constructed;
};

int Probe::live = 0;
int Probe::constructed = 0;

struct ProbeFixture : ::testing::Test {
  void SetUp() override {
    Probe::live = 0;
    Probe::constructed = 0;
  }
};
using SlabPoolTest = ProbeFixture;

TEST_F(SlabPoolTest, AcquireConstructsReleaseDoesNot) {
  SlabPool<Probe> pool(/*slots_per_slab=*/2);
  const auto make = [](std::span<double> s) { return Probe(s); };
  const auto a = pool.Acquire(make);
  const auto b = pool.Acquire(make);
  EXPECT_EQ(pool.ActiveCount(), 2u);
  EXPECT_EQ(Probe::live, 2);
  pool.Release(a);
  EXPECT_EQ(Probe::live, 2) << "Release must not destroy the slot";
  EXPECT_EQ(pool.ActiveCount(), 1u);
  EXPECT_EQ(pool.FreeCount(), 1u);
  pool.Release(b);
}

TEST_F(SlabPoolTest, RecycledSlotKeepsPreviousState) {
  SlabPool<Probe> pool(4);
  const auto make = [](std::span<double> s) { return Probe(s); };
  const auto a = pool.Acquire(make);
  pool[a].value = 42;
  pool.Release(a);
  const auto again = pool.Acquire(make);
  EXPECT_EQ(again, a) << "free list must hand the slot back";
  EXPECT_EQ(pool[again].value, 42) << "recycle must not reconstruct";
  EXPECT_EQ(Probe::constructed, 1) << "only the first Acquire constructs";
}

TEST_F(SlabPoolTest, GrowsSlabBySlabWithStableReferences) {
  SlabPool<Probe> pool(2);
  const auto make = [](std::span<double> s) { return Probe(s); };
  std::vector<SlabPool<Probe>::Index> indices;
  for (int i = 0; i < 5; ++i) {
    const auto index = pool.Acquire(make);
    pool[index].value = i;
    indices.push_back(index);
  }
  EXPECT_EQ(pool.SlabCount(), 3u);  // ceil(5 / 2)
  Probe* first = &pool[indices[0]];
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(pool[indices[i]].value, i);
  }
  EXPECT_EQ(first, &pool[indices[0]]) << "slots must never move";
}

TEST_F(SlabPoolTest, ScratchIsCarvedFromTheSlabPerSlot) {
  constexpr std::size_t kDoubles = 7;
  SlabPool<Probe> pool(3, kDoubles);
  const auto make = [](std::span<double> s) { return Probe(s); };
  const auto a = pool.Acquire(make);
  const auto b = pool.Acquire(make);
  ASSERT_EQ(pool[a].scratch_size, kDoubles);
  ASSERT_EQ(pool[b].scratch_size, kDoubles);
  // Adjacent slots of one slab get adjacent, non-overlapping carvings.
  EXPECT_EQ(pool[b].scratch_data, pool[a].scratch_data + kDoubles);
  pool[a].scratch_data[kDoubles - 1] = 1.0;
  pool[b].scratch_data[0] = 2.0;
  EXPECT_EQ(pool[a].scratch_data[kDoubles - 1], 1.0);
}

TEST_F(SlabPoolTest, NoScratchPoolPassesEmptySpan) {
  SlabPool<Probe> pool(2);
  const auto a = pool.Acquire([](std::span<double> s) { return Probe(s); });
  EXPECT_EQ(pool[a].scratch_size, 0u);
}

TEST_F(SlabPoolTest, TrimReleasesWhollyFreeTrailingSlabsOnly) {
  SlabPool<Probe> pool(2);
  const auto make = [](std::span<double> s) { return Probe(s); };
  std::vector<SlabPool<Probe>::Index> indices;
  for (int i = 0; i < 6; ++i) indices.push_back(pool.Acquire(make));
  ASSERT_EQ(pool.SlabCount(), 3u);

  // Free the middle slab only: nothing trailing is wholly free.
  pool.Release(indices[2]);
  pool.Release(indices[3]);
  EXPECT_EQ(pool.Trim(), 0u);
  EXPECT_EQ(pool.SlabCount(), 3u);

  // Free the last slab too: Trim drops it, which makes the (also wholly
  // free) middle slab trailing, so both go in one call.
  pool.Release(indices[4]);
  pool.Release(indices[5]);
  EXPECT_GT(pool.Trim(), 0u);
  EXPECT_EQ(pool.SlabCount(), 1u);
  EXPECT_EQ(Probe::live, 2);
  EXPECT_EQ(pool.FreeCount(), 0u) << "freed indices of dropped slabs purged";

  // The survivors are untouched and the pool still works.
  const auto fresh = pool.Acquire(make);
  EXPECT_EQ(pool.SlabCount(), 2u);
  pool.Release(fresh);
  pool.Release(indices[0]);
  pool.Release(indices[1]);
}

TEST_F(SlabPoolTest, DestructorDestroysConstructedSlots) {
  {
    SlabPool<Probe> pool(2);
    const auto make = [](std::span<double> s) { return Probe(s); };
    pool.Acquire(make);
    const auto b = pool.Acquire(make);
    pool.Acquire(make);
    pool.Release(b);  // free-listed slots are destroyed exactly once too
    EXPECT_EQ(Probe::live, 3);
  }
  EXPECT_EQ(Probe::live, 0);
}

TEST_F(SlabPoolTest, ValidatesArguments) {
  EXPECT_THROW(SlabPool<Probe>(0), std::invalid_argument);
  SlabPool<Probe> pool(2);
  EXPECT_THROW(pool.Release(0), std::invalid_argument);  // never acquired
}

TEST_F(SlabPoolTest, CapacityBytesCoversSlabsAndScratch) {
  constexpr std::size_t kDoubles = 4;
  SlabPool<Probe> pool(8, kDoubles);
  EXPECT_EQ(pool.CapacityBytes(), 0u);
  pool.Acquire([](std::span<double> s) { return Probe(s); });
  EXPECT_GE(pool.CapacityBytes(),
            8 * sizeof(Probe) + 8 * kDoubles * sizeof(double));
}

}  // namespace
}  // namespace osap::util
