#include "util/arg_parser.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace osap::util {
namespace {

std::vector<char*> Argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

TEST(ArgParserTest, ParsesPositionalsFlagsAndOptions) {
  ArgParser parser("tool");
  std::string signal;
  std::size_t sessions = 7;
  std::size_t shards = 1;
  bool verbose = false;
  parser.AddPositional("signal", "which signal", &signal);
  parser.AddOptionalPositional("sessions", "viewer count", &sessions);
  parser.AddOption("--shards", "N", "shard count", &shards);
  parser.AddFlag("--verbose", "chatty", &verbose);

  std::vector<std::string> args = {"tool", "us", "64", "--shards=3",
                                   "--verbose"};
  std::vector<char*> argv = Argv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(signal, "us");
  EXPECT_EQ(sessions, 64u);
  EXPECT_EQ(shards, 3u);
  EXPECT_TRUE(verbose);
}

TEST(ArgParserTest, DuplicateOptionRegistrationThrows) {
  ArgParser parser("tool");
  std::size_t a = 0;
  std::size_t b = 0;
  parser.AddOption("--shards", "N", "shard count", &a);
  // Silent shadowing bug this guards against: the second registration
  // would never receive a value (Parse binds the first match).
  EXPECT_THROW(parser.AddOption("--shards", "N", "again", &b),
               std::invalid_argument);
}

TEST(ArgParserTest, DuplicateFlagRegistrationThrows) {
  ArgParser parser("tool");
  bool a = false;
  std::string b;
  parser.AddFlag("--fast", "go fast", &a);
  // A flag and a valued option share the option namespace.
  EXPECT_THROW(parser.AddOption("--fast", "N", "valued twin", &b),
               std::invalid_argument);
}

TEST(ArgParserTest, DuplicatePositionalRegistrationThrows) {
  ArgParser parser("tool");
  std::string a;
  std::string b;
  parser.AddPositional("signal", "first", &a);
  EXPECT_THROW(parser.AddPositional("signal", "second", &b),
               std::invalid_argument);
}

TEST(ArgParserTest, DistinctNamesStillRegister) {
  ArgParser parser("tool");
  std::size_t shards = 0;
  std::size_t edges = 0;
  parser.AddOption("--shards", "N", "shard count", &shards);
  parser.AddOption("--edge-threads", "N", "edge loops", &edges);
  std::vector<std::string> args = {"tool", "--shards", "4",
                                   "--edge-threads", "2"};
  std::vector<char*> argv = Argv(args);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(shards, 4u);
  EXPECT_EQ(edges, 2u);
}

}  // namespace
}  // namespace osap::util
