#include "util/csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace osap {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "osap_csv_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST(Split, KeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleFieldWithoutDelimiter) {
  const auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, EmptyStringYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> fields = {"x", "y", "z"};
  EXPECT_EQ(Split(Join(fields, ';'), ';'), fields);
}

TEST(Trim, StripsWhitespaceBothEnds) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
}

TEST(ParseDouble, ParsesPlainAndScientific) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3"), -1e-3);
  EXPECT_DOUBLE_EQ(ParseDouble("  42 "), 42.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(ParseDouble("abc"), std::invalid_argument);
  EXPECT_THROW(ParseDouble(""), std::invalid_argument);
  EXPECT_THROW(ParseDouble("1.5x"), std::invalid_argument);
}

TEST_F(CsvTest, WriteAndReadBack) {
  const auto path = dir_ / "t.csv";
  {
    CsvWriter writer(path);
    writer.WriteHeader({"a", "b"});
    writer.WriteNumericRow({1.5, 2.5});
    writer.WriteRow({"x", "y"});
  }
  const auto rows = ReadCsv(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_DOUBLE_EQ(ParseDouble(rows[1][0]), 1.5);
  EXPECT_EQ(rows[2][1], "y");
}

TEST_F(CsvTest, NumericRowsPreserveFullPrecision) {
  const auto path = dir_ / "p.csv";
  const double value = 0.1234567890123456789;
  {
    CsvWriter writer(path);
    writer.WriteNumericRow({value});
  }
  const auto rows = ReadCsv(path);
  EXPECT_DOUBLE_EQ(ParseDouble(rows[0][0]), value);
}

TEST_F(CsvTest, CreatesParentDirectories) {
  const auto path = dir_ / "deep" / "nested" / "t.csv";
  CsvWriter writer(path);
  writer.WriteHeader({"h"});
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST_F(CsvTest, ReadSkipsBlankLines) {
  const auto path = dir_ / "blank.csv";
  {
    std::ofstream out(path);
    out << "a,b\n\n1,2\n   \n";
  }
  const auto rows = ReadCsv(path);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(ReadCsv(dir_ / "nope.csv"), std::runtime_error);
}

}  // namespace
}  // namespace osap
