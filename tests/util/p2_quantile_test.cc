// P² streaming quantile vs the exact sort-based reference arm
// (osap::Quantile): accuracy on randomized streams, exactness below five
// observations, adversarial monotone / constant / regime-switch streams,
// windowed drift tracking, and merge-of-sketches equivalence. Rides the
// sanitize suite (small, allocation-light, deterministic).
#include "util/p2_quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace osap::util {
namespace {

/// |estimate - exact| relative to the sample spread (the natural scale:
/// P² error bounds are quoted against the distribution's range).
double SpreadError(double estimate, std::vector<double> xs, double q) {
  const double exact = Quantile(xs, q);
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  const double spread = *hi - *lo;
  return spread == 0.0 ? std::abs(estimate - exact)
                       : std::abs(estimate - exact) / spread;
}

TEST(P2Quantile, ExactUpToFiveObservations) {
  // The first five observations are held in a sorted buffer, so the
  // estimate must EQUAL the reference quantile, not just approximate it.
  const std::vector<double> stream = {3.0, -1.0, 7.5, 0.25, 2.0};
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.95}) {
    P2Quantile sketch(q);
    std::vector<double> seen;
    for (const double x : stream) {
      sketch.Add(x);
      seen.push_back(x);
      EXPECT_EQ(sketch.Value(), Quantile(seen, q))
          << "q=" << q << " after " << seen.size();
    }
    EXPECT_EQ(sketch.Min(), -1.0);
    EXPECT_EQ(sketch.Max(), 7.5);
  }
}

TEST(P2Quantile, EmptyAndResetAreZero) {
  P2Quantile sketch(0.9);
  EXPECT_EQ(sketch.Value(), 0.0);
  EXPECT_EQ(sketch.Count(), 0u);
  sketch.Add(42.0);
  EXPECT_EQ(sketch.Value(), 42.0);
  sketch.Reset();
  EXPECT_EQ(sketch.Value(), 0.0);
  EXPECT_EQ(sketch.Count(), 0u);
  sketch.Reset(0.5);
  EXPECT_EQ(sketch.Target(), 0.5);
}

TEST(P2Quantile, TracksRandomizedStreamsAgainstSortReference) {
  // Uniform, heavy-ish tail (exp of normal), and bimodal streams across
  // the quantiles the calibrator actually uses. P² is an estimator;
  // 2.5% of the spread is well inside its published accuracy for n=4096
  // and fails loudly if a marker update regresses.
  Rng rng(1234);
  const std::size_t n = 4096;
  for (int dist = 0; dist < 3; ++dist) {
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      switch (dist) {
        case 0: xs.push_back(rng.Uniform(-5.0, 5.0)); break;
        case 1: xs.push_back(std::exp(rng.Normal())); break;
        default:
          xs.push_back(rng.Uniform() < 0.7 ? rng.Normal()
                                           : 10.0 + rng.Normal());
      }
    }
    for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
      P2Quantile sketch(q);
      for (const double x : xs) sketch.Add(x);
      EXPECT_EQ(sketch.Count(), n);
      EXPECT_LT(SpreadError(sketch.Value(), xs, q), 0.025)
          << "dist=" << dist << " q=" << q;
    }
  }
}

TEST(P2Quantile, AdversarialMonotoneAndConstantStreams) {
  // Monotone streams are the classic P² stressor (every observation
  // lands in the outermost cell); constants must collapse every marker.
  const std::size_t n = 2000;
  for (const double q : {0.5, 0.9, 0.95}) {
    P2Quantile increasing(q);
    P2Quantile decreasing(q);
    std::vector<double> xs;
    for (std::size_t i = 0; i < n; ++i) {
      xs.push_back(static_cast<double>(i));
      increasing.Add(static_cast<double>(i));
      decreasing.Add(static_cast<double>(n - 1 - i));
    }
    EXPECT_LT(SpreadError(increasing.Value(), xs, q), 0.05) << q;
    EXPECT_LT(SpreadError(decreasing.Value(), xs, q), 0.05) << q;

    P2Quantile constant(q);
    for (std::size_t i = 0; i < n; ++i) constant.Add(3.25);
    EXPECT_EQ(constant.Value(), 3.25);
    EXPECT_EQ(constant.Min(), 3.25);
    EXPECT_EQ(constant.Max(), 3.25);
  }
}

TEST(P2Quantile, RegimeSwitchEventuallyDominatedByNewRegime) {
  // An unwindowed sketch never forgets, but after 9x more post-switch
  // mass the estimate must sit in the new regime's range.
  Rng rng(7);
  P2Quantile sketch(0.9);
  for (std::size_t i = 0; i < 500; ++i) sketch.Add(rng.Uniform(0.0, 1.0));
  for (std::size_t i = 0; i < 4500; ++i) {
    sketch.Add(rng.Uniform(100.0, 101.0));
  }
  EXPECT_GT(sketch.Value(), 99.0);
  EXPECT_LT(sketch.Value(), 101.0);
}

TEST(WindowedP2Quantile, ReflectsOnlyRecentGenerations) {
  // After a regime switch, once 2*window post-switch observations have
  // arrived the old regime is fully rotated out, so the estimate lies in
  // the NEW regime's support - the property the unwindowed sketch above
  // only approaches asymptotically.
  Rng rng(99);
  const std::size_t window = 256;
  WindowedP2Quantile sketch(0.9, window);
  for (std::size_t i = 0; i < 4 * window; ++i) {
    sketch.Add(rng.Uniform(0.0, 1.0));
  }
  EXPECT_LE(sketch.Value(), 1.0);
  for (std::size_t i = 0; i < 2 * window; ++i) {
    sketch.Add(rng.Uniform(100.0, 101.0));
  }
  EXPECT_GE(sketch.Value(), 100.0);
  EXPECT_LE(sketch.Value(), 101.0);
  // The live generations hold between window and 2*window observations.
  EXPECT_GE(sketch.Count(), window);
  EXPECT_LE(sketch.Count(), 2 * window);
  EXPECT_EQ(sketch.TotalCount(), 6 * window);
}

TEST(WindowedP2Quantile, MatchesUnwindowedBelowOneWindow) {
  // Until the first rotation there is one generation: the windowed
  // estimate must equal the plain sketch fed the same stream.
  Rng rng(5);
  WindowedP2Quantile windowed(0.75, 1024);
  P2Quantile plain(0.75);
  for (std::size_t i = 0; i < 1000; ++i) {
    const double x = rng.Normal();
    windowed.Add(x);
    plain.Add(x);
    EXPECT_EQ(windowed.Value(), plain.Value()) << i;
  }
}

TEST(MergedQuantile, SingleSketchMatchesItsOwnEstimate) {
  Rng rng(11);
  P2Quantile sketch(0.9);
  for (std::size_t i = 0; i < 512; ++i) sketch.Add(rng.Normal());
  const P2Quantile* arms[] = {&sketch};
  // One small (exact) sketch merges to exactly the reference quantile.
  P2Quantile small(0.9);
  std::vector<double> seen;
  for (const double x : {4.0, 1.0, 3.0, 2.0}) {
    small.Add(x);
    seen.push_back(x);
  }
  const P2Quantile* small_arms[] = {&small};
  EXPECT_EQ(P2Quantile::MergedQuantile(small_arms, 0.9),
            Quantile(seen, 0.9));
  // A large sketch merges close to its own marker estimate (the merge
  // interpolates the same marker CDF it would read directly).
  const double merged = P2Quantile::MergedQuantile(arms, 0.9);
  EXPECT_NEAR(merged, sketch.Value(), 0.35);
}

TEST(MergedQuantile, ShardedStreamsMatchTheUnshardedQuantile) {
  // The serving-path contract: round-robin one stream over S per-shard
  // sketches, merge, and land near the exact quantile of the whole
  // stream - independent of shard count and of arm order.
  Rng rng(2024);
  const std::size_t n = 8192;
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(rng.Uniform() < 0.8 ? rng.Normal()
                                     : 5.0 + 2.0 * rng.Normal());
  }
  for (const std::size_t shards : {1u, 3u, 8u}) {
    std::vector<P2Quantile> sketches(shards, P2Quantile(0.95));
    for (std::size_t i = 0; i < n; ++i) sketches[i % shards].Add(xs[i]);
    std::vector<const P2Quantile*> arms;
    for (const P2Quantile& s : sketches) arms.push_back(&s);
    const double merged = P2Quantile::MergedQuantile(arms, 0.95);
    EXPECT_LT(SpreadError(merged, xs, 0.95), 0.03) << shards << " shards";
    // Order-insensitive: reversing the arms changes nothing.
    std::reverse(arms.begin(), arms.end());
    EXPECT_EQ(P2Quantile::MergedQuantile(arms, 0.95), merged);
  }
}

TEST(MergedQuantile, EmptyArmsContributeNothing) {
  P2Quantile empty(0.5);
  P2Quantile full(0.5);
  std::vector<double> seen;
  for (const double x : {1.0, 2.0, 3.0}) {
    full.Add(x);
    seen.push_back(x);
  }
  const P2Quantile* arms[] = {&empty, &full, &empty};
  EXPECT_EQ(P2Quantile::MergedQuantile(arms, 0.5), Quantile(seen, 0.5));
  const P2Quantile* none[] = {&empty};
  EXPECT_EQ(P2Quantile::MergedQuantile(none, 0.5), 0.0);
}

TEST(WindowedP2Quantile, CollectArmsMergeMatchesValue) {
  // Value() is DEFINED as the merge of the live generations; the
  // CollectArms + MergedQuantile path the service uses must agree.
  Rng rng(31);
  WindowedP2Quantile sketch(0.9, 128);
  for (std::size_t i = 0; i < 300; ++i) sketch.Add(rng.Normal());
  std::vector<const P2Quantile*> arms;
  sketch.CollectArms(arms);
  EXPECT_EQ(arms.size(), 2u);  // previous full + current partial
  EXPECT_EQ(P2Quantile::MergedQuantile(arms, 0.9), sketch.Value());
}

}  // namespace
}  // namespace osap::util
