#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.h"

namespace osap {
namespace {

TEST(Rng, EqualSeedsProduceEqualStreams) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Uniform());
  EXPECT_NEAR(stats.Mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.Variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.Uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversSupportUniformly) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.UniformInt(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.1, 0.01);
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformInt(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Normal());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.Variance(), 1.0, 0.02);
}

TEST(Rng, NormalScalesAndShifts) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stats.Mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.StdDev(), 2.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStdDev) {
  Rng rng(1);
  EXPECT_THROW(rng.Normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(21);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // Children differ from each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(21);
  Rng b(21);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ca(), cb());
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleChangesOrderForLongVectors) {
  Rng rng(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

}  // namespace
}  // namespace osap
