#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace osap {
namespace {

TEST(RunningStats, EmptyIsAllZero) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.Count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 3.5);
  EXPECT_DOUBLE_EQ(s.Max(), 3.5);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStats, SampleVarianceUsesBesselCorrection) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.SampleVariance(), 1.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Welford must not cancel catastrophically around a large mean.
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.Add(x);
  EXPECT_NEAR(s.Variance(), 2.0 / 3.0, 1e-6);
}

TEST(RunningStats, ResetClearsState) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(SlidingWindowStats, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindowStats(0), std::invalid_argument);
}

TEST(SlidingWindowStats, FillsThenSlides) {
  SlidingWindowStats w(3);
  w.Push(1.0);
  EXPECT_FALSE(w.Full());
  w.Push(2.0);
  w.Push(3.0);
  EXPECT_TRUE(w.Full());
  EXPECT_DOUBLE_EQ(w.Mean(), 2.0);
  w.Push(4.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.Mean(), 3.0);
  EXPECT_EQ(w.Size(), 3u);
}

TEST(SlidingWindowStats, ValuesAreOldestFirst) {
  SlidingWindowStats w(3);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) w.Push(x);
  const std::vector<double> expected = {3.0, 4.0, 5.0};
  EXPECT_EQ(w.Values(), expected);
}

TEST(SlidingWindowStats, VarianceMatchesBatchComputation) {
  Rng rng(2);
  SlidingWindowStats w(10);
  std::vector<double> history;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(0.0, 5.0);
    w.Push(x);
    history.push_back(x);
    if (w.Full()) {
      RunningStats batch;
      for (std::size_t j = history.size() - 10; j < history.size(); ++j) {
        batch.Add(history[j]);
      }
      ASSERT_NEAR(w.Variance(), batch.Variance(), 1e-9);
      ASSERT_NEAR(w.Mean(), batch.Mean(), 1e-9);
    }
  }
}

TEST(SlidingWindowStats, VarianceNeverNegative) {
  SlidingWindowStats w(5);
  for (int i = 0; i < 100; ++i) {
    w.Push(7.777777);  // identical values: cancellation-prone
    EXPECT_GE(w.Variance(), 0.0);
  }
}

TEST(SlidingWindowStats, ResetEmptiesWindow) {
  SlidingWindowStats w(4);
  w.Push(1.0);
  w.Push(2.0);
  w.Reset();
  EXPECT_EQ(w.Size(), 0u);
  EXPECT_EQ(w.Mean(), 0.0);
}

TEST(SlidingWindowStats, PlacementStorageMatchesOwningWindow) {
  // The serving path carves window storage from shard slabs; the
  // span-backed window must be bit-identical to the owning one.
  Rng rng(7);
  std::vector<double> storage(6, -1.0);
  SlidingWindowStats owning(6);
  SlidingWindowStats placed{std::span<double>(storage)};
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(0.0, 9.0);
    owning.Push(x);
    placed.Push(x);
    ASSERT_EQ(placed.Size(), owning.Size());
    ASSERT_EQ(placed.Full(), owning.Full());
    ASSERT_EQ(placed.Mean(), owning.Mean()) << "step " << i;
    ASSERT_EQ(placed.Variance(), owning.Variance()) << "step " << i;
  }
  EXPECT_EQ(placed.Values(), owning.Values());
}

TEST(SlidingWindowStats, PlacementRejectsEmptyStorage) {
  std::vector<double> storage;
  EXPECT_THROW(SlidingWindowStats{std::span<double>(storage)},
               std::invalid_argument);
}

TEST(SlidingWindowStats, CopyIsDeepAndIndependent) {
  std::vector<double> storage(3);
  SlidingWindowStats placed{std::span<double>(storage)};
  placed.Push(1.0);
  placed.Push(2.0);

  SlidingWindowStats copy = placed;  // copies always own their storage
  copy.Push(3.0);
  copy.Push(4.0);  // wraps in the copy only
  EXPECT_EQ(storage[0], 1.0) << "copy must not write the original storage";
  EXPECT_EQ(placed.Size(), 2u);
  EXPECT_DOUBLE_EQ(copy.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(placed.Mean(), 1.5);
}

TEST(Median, OddAndEvenLengths) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Median(odd), 3.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Median(even), 2.5);
}

TEST(Median, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{}), 0.0);
}

TEST(Quantile, EndpointsAndMidpoint) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.0);
}

TEST(Quantile, InterpolatesBetweenSamples) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.35), 3.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(Quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(Quantile(xs, 1.5), std::invalid_argument);
}

TEST(Summarize, MatchesManualComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = Summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
}

TEST(Summarize, EmptyIsZero) {
  const Summary s = Summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(EmpiricalCdf, IsSortedAndReachesOne) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  const auto cdf = EmpiricalCdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].first, 3.0);
  EXPECT_NEAR(cdf[0].second, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(MeanStdDev, SpanHelpers) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.0);
  EXPECT_NEAR(StdDev(xs), std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev(std::vector<double>{1.0}), 0.0);
}

}  // namespace
}  // namespace osap
