#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace osap::util {
namespace {

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(0, hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RespectsBeginOffset) {
  ThreadPool pool(2);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(4, 10, [&](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i >= 4 ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPool, ResultsArePositionallyDeterministic) {
  // Results written by index match a serial loop regardless of the
  // nondeterministic scheduling order.
  ThreadPool pool(4);
  std::vector<double> parallel_out(257, 0.0);
  std::vector<double> serial_out(257, 0.0);
  const auto body = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= i % 17; ++k) acc += static_cast<double>(i * k);
    return acc;
  };
  pool.ParallelFor(0, parallel_out.size(),
                   [&](std::size_t i) { parallel_out[i] = body(i); });
  for (std::size_t i = 0; i < serial_out.size(); ++i) serial_out[i] = body(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ThreadPool, ZeroWorkerPoolRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<std::size_t> order;
  pool.ParallelFor(0, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(3, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, RethrowsFirstBodyException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(0, 50,
                                [&](std::size_t i) {
                                  if (i == 13) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must remain usable after a failed job.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 20, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(8 * 8);
  pool.ParallelFor(0, 8, [&](std::size_t i) {
    // A nested call on the same pool must not deadlock; it runs the inner
    // loop serially on the current thread.
    pool.ParallelFor(0, 8,
                     [&](std::size_t j) { hits[i * 8 + j].fetch_add(1); });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HardwareConcurrencyHasFloorOfOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPool, ManyMoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.ParallelFor(0, 10000,
                   [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

}  // namespace
}  // namespace osap::util
