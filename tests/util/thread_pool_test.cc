#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace osap::util {
namespace {

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(0, hits.size(),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RespectsBeginOffset) {
  ThreadPool pool(2);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(4, 10, [&](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], i >= 4 ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPool, ResultsArePositionallyDeterministic) {
  // Results written by index match a serial loop regardless of the
  // nondeterministic scheduling order.
  ThreadPool pool(4);
  std::vector<double> parallel_out(257, 0.0);
  std::vector<double> serial_out(257, 0.0);
  const auto body = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= i % 17; ++k) acc += static_cast<double>(i * k);
    return acc;
  };
  pool.ParallelFor(0, parallel_out.size(),
                   [&](std::size_t i) { parallel_out[i] = body(i); });
  for (std::size_t i = 0; i < serial_out.size(); ++i) serial_out[i] = body(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ThreadPool, ZeroWorkerPoolRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<std::size_t> order;
  pool.ParallelFor(0, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(3, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, RethrowsFirstBodyException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(0, 50,
                                [&](std::size_t i) {
                                  if (i == 13) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must remain usable after a failed job.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 20, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(8 * 8);
  pool.ParallelFor(0, 8, [&](std::size_t i) {
    // A nested call on the same pool must not deadlock; it runs the inner
    // loop serially on the current thread.
    pool.ParallelFor(0, 8,
                     [&](std::size_t j) { hits[i * 8 + j].fetch_add(1); });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HardwareConcurrencyHasFloorOfOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPool, MaxWorkersZeroRunsSeriallyInOrder) {
  // A shared pool capped to zero workers must degrade to the plain serial
  // loop - same thread, ascending order.
  ThreadPool pool(3);
  ParallelOptions options;
  options.max_workers = 0;
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(
      0, 6,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
      },
      options);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(ThreadPool, ChunkOptionStillCoversEveryIndexOnce) {
  ThreadPool pool(3);
  for (const std::size_t chunk : {1u, 3u, 7u, 100u}) {
    ParallelOptions options;
    options.chunk = chunk;
    std::vector<std::atomic<int>> hits(50);
    pool.ParallelFor(
        0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, options);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "chunk " << chunk;
  }
}

TEST(ThreadPool, CurrentSlotStaysWithinSlotCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.SlotCount(), 4u);
  // Outside any pool job, the calling thread is slot 0.
  EXPECT_EQ(ThreadPool::CurrentSlot(), 0u);
  std::vector<std::atomic<int>> slot_hits(pool.SlotCount());
  pool.ParallelFor(0, 200, [&](std::size_t) {
    const std::size_t slot = ThreadPool::CurrentSlot();
    ASSERT_LT(slot, slot_hits.size());
    slot_hits[slot].fetch_add(1);
  });
  int total = 0;
  for (auto& h : slot_hits) total += h.load();
  EXPECT_EQ(total, 200);
}

TEST(ThreadPool, SlotIsStablePerThreadWithinAJob) {
  // Per-worker scratch indexed by CurrentSlot() relies on a thread keeping
  // its slot for the whole job and no two threads sharing one.
  ThreadPool pool(3);
  std::vector<std::atomic<std::size_t>> owner(pool.SlotCount());
  for (auto& o : owner) o.store(0);
  pool.ParallelFor(0, 500, [&](std::size_t) {
    const std::size_t slot = ThreadPool::CurrentSlot();
    const auto me =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
    std::size_t expected = 0;
    if (!owner[slot].compare_exchange_strong(expected, me)) {
      EXPECT_EQ(expected, me) << "slot " << slot << " changed threads";
    }
  });
}

TEST(ThreadPool, SharedPoolIsASingletonAndUsable) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.thread_count(), ThreadPool::HardwareConcurrency() - 1);
  std::atomic<int> count{0};
  a.ParallelFor(0, 64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ConcurrentCallersSerializeWithoutCrosstalk) {
  // Several threads submitting to the same pool at once: each caller's
  // job must run exactly its own indices (callers queue; jobs never mix).
  ThreadPool pool(2);
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kItems = 300;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kItems);
  }
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(0, kItems,
                       [&](std::size_t i) { hits[c][i].fetch_add(1); });
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[c][i].load(), 1) << "caller " << c << " index " << i;
    }
  }
}

TEST(ThreadPool, ParseSharedConcurrencyAcceptsPositiveIntegers) {
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("1"), 1u);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("3"), 3u);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("16"), 16u);
  // Surrounding whitespace is tolerated.
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency(" 4 "), 4u);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("\t8"), 8u);
}

TEST(ThreadPool, ParseSharedConcurrencyFallsBackOnBadInput) {
  const std::size_t fallback = ThreadPool::HardwareConcurrency();
  // Unset / empty / non-positive / malformed / overflowing values all
  // fall back to the hardware default rather than throwing: OSAP_THREADS
  // is best-effort tuning, not a correctness knob.
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency(nullptr), fallback);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency(""), fallback);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("   "), fallback);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("0"), fallback);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("-2"), fallback);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("abc"), fallback);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("3x"), fallback);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("2.5"), fallback);
  EXPECT_EQ(ThreadPool::ParseSharedConcurrency("99999999999999999999"),
            fallback);
}

TEST(ThreadPool, SharedConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::SharedConcurrency(), 1u);
}

TEST(ThreadPool, ManyMoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.ParallelFor(0, 10000,
                   [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

}  // namespace
}  // namespace osap::util
