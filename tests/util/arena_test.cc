#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

namespace osap::util {
namespace {

TEST(Arena, HandsOutDistinctWritableSpans) {
  Arena arena(64);
  auto a = arena.Alloc<double>(4);
  auto b = arena.Alloc<double>(4);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_NE(a.data(), b.data());
  std::iota(a.begin(), a.end(), 0.0);
  std::iota(b.begin(), b.end(), 10.0);
  EXPECT_EQ(a[3], 3.0);
  EXPECT_EQ(b[0], 10.0);  // writing b did not clobber a
  EXPECT_EQ(a[0], 0.0);
}

TEST(Arena, AllocationsAreAligned) {
  Arena arena(8);
  arena.Alloc<char>(3);  // misalign the bump pointer
  auto d = arena.Alloc<double>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
  auto i = arena.Alloc<std::int64_t>(1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i.data()) % alignof(std::int64_t),
            0u);
}

TEST(Arena, GrowsBeyondOneBlock) {
  Arena arena(16);  // every double-span below overflows a fresh block
  for (int round = 0; round < 4; ++round) {
    auto s = arena.Alloc<double>(8);
    ASSERT_EQ(s.size(), 8u);
    s[7] = static_cast<double>(round);
  }
  EXPECT_GE(arena.CapacityBytes(), 4u * 8u * sizeof(double));
}

TEST(Arena, ResetReusesCapacityWithoutGrowing) {
  Arena arena(32);
  arena.Alloc<double>(16);
  arena.Alloc<double>(16);
  const std::size_t grown = arena.CapacityBytes();
  for (int round = 0; round < 100; ++round) {
    arena.Reset();
    auto a = arena.Alloc<double>(16);
    auto b = arena.Alloc<double>(16);
    a[0] = b[0] = 1.0;
    EXPECT_EQ(arena.CapacityBytes(), grown) << "round " << round;
  }
}

TEST(Arena, ZeroCountReturnsEmptySpan) {
  Arena arena;
  EXPECT_TRUE(arena.Alloc<double>(0).empty());
  EXPECT_EQ(arena.CapacityBytes(), 0u);  // no block materialized
}

TEST(Arena, SingleAllocationLargerThanBlockSize) {
  Arena arena(8);
  auto s = arena.Alloc<double>(100);
  ASSERT_EQ(s.size(), 100u);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<double>(i);
  EXPECT_EQ(s[99], 99.0);
}

TEST(Arena, UsedBytesTracksAllocationsAndReset) {
  Arena arena(1024);
  EXPECT_EQ(arena.UsedBytes(), 0u);
  arena.Alloc<double>(10);
  EXPECT_GE(arena.UsedBytes(), 10u * sizeof(double));
  EXPECT_LE(arena.UsedBytes(), arena.CapacityBytes());
  arena.Reset();
  EXPECT_EQ(arena.UsedBytes(), 0u);
  EXPECT_GT(arena.CapacityBytes(), 0u);  // Reset keeps capacity
}

TEST(Arena, ShrinkToDropsTrailingBlocksDownToBudget) {
  Arena arena(64);
  // Grow through several doubling blocks.
  for (int round = 0; round < 6; ++round) arena.Alloc<double>(64);
  const std::size_t grown = arena.CapacityBytes();
  ASSERT_GT(grown, 512u);

  arena.ShrinkTo(512);
  EXPECT_LE(arena.CapacityBytes(), 512u);
  EXPECT_LT(arena.CapacityBytes(), grown);
  EXPECT_EQ(arena.UsedBytes(), 0u) << "ShrinkTo rewinds like Reset";

  // The arena still serves allocations afterwards (regrows on demand).
  auto s = arena.Alloc<double>(256);
  ASSERT_EQ(s.size(), 256u);
  s[255] = 1.0;
  EXPECT_EQ(s[255], 1.0);
}

TEST(Arena, ShrinkToZeroReleasesEverything) {
  Arena arena(64);
  arena.Alloc<double>(100);
  arena.ShrinkTo(0);
  EXPECT_EQ(arena.CapacityBytes(), 0u);
  auto s = arena.Alloc<double>(4);  // still usable
  ASSERT_EQ(s.size(), 4u);
}

TEST(Arena, ShrinkToAboveCapacityIsJustAReset) {
  Arena arena(64);
  arena.Alloc<double>(32);
  const std::size_t capacity = arena.CapacityBytes();
  arena.ShrinkTo(capacity + 1024);
  EXPECT_EQ(arena.CapacityBytes(), capacity);
  EXPECT_EQ(arena.UsedBytes(), 0u);
}

}  // namespace
}  // namespace osap::util
