// util::IoUring wrapper tests: ring setup, NOP round trips, submission
// batching (one enter per Submit regardless of queued SQEs), and the
// provided-buffer ring recycle path. All skip visibly where the kernel
// denies io_uring - the probe itself is pinned to be consistent either
// way.
#include "util/io_uring.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <set>

namespace osap::util {
namespace {

class IoUringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!IoUring::KernelSupported()) {
      GTEST_SKIP() << "io_uring unavailable: "
                   << IoUring::UnsupportedReason();
    }
  }
};

TEST(IoUringProbe, ReasonIsConsistentWithAvailability) {
  if (IoUring::KernelSupported()) {
    EXPECT_STREQ(IoUring::UnsupportedReason(), "");
  } else {
    EXPECT_GT(std::strlen(IoUring::UnsupportedReason()), 0u)
        << "an unavailable ring must say why";
  }
  // The probe is cached: asking twice answers the same.
  EXPECT_EQ(IoUring::KernelSupported(), IoUring::KernelSupported());
}

TEST_F(IoUringTest, NopRoundTrip) {
  IoUring ring;
  ASSERT_TRUE(ring.Init(8));
  io_uring_sqe* sqe = ring.GetSqe();
  sqe->opcode = IORING_OP_NOP;
  sqe->user_data = 77;
  EXPECT_EQ(ring.Submit(1), 1u);
  io_uring_cqe* cqe = ring.PeekCqe();
  ASSERT_NE(cqe, nullptr);
  EXPECT_EQ(cqe->user_data, 77u);
  EXPECT_EQ(cqe->res, 0);
  ring.AdvanceCqe();
  EXPECT_EQ(ring.PeekCqe(), nullptr);
}

TEST_F(IoUringTest, BatchedSubmitIsOneEnterCall) {
  IoUring ring;
  ASSERT_TRUE(ring.Init(16));
  const std::uint64_t before = ring.enter_calls();
  for (std::uint64_t i = 0; i < 10; ++i) {
    io_uring_sqe* sqe = ring.GetSqe();
    sqe->opcode = IORING_OP_NOP;
    sqe->user_data = i;
  }
  // The point of the backend: ten queued ops, ONE syscall.
  EXPECT_EQ(ring.Submit(10), 10u);
  EXPECT_EQ(ring.enter_calls(), before + 1);
  std::set<std::uint64_t> seen;
  io_uring_cqe* cqe;
  while ((cqe = ring.PeekCqe()) != nullptr) {
    seen.insert(cqe->user_data);
    ring.AdvanceCqe();
  }
  EXPECT_EQ(seen.size(), 10u) << "every NOP completed";
}

TEST_F(IoUringTest, GetSqeFlushesWhenRingFills) {
  IoUring ring;
  ASSERT_TRUE(ring.Init(4));
  // 9 SQEs through a 4-deep ring: GetSqe must flush under our feet
  // instead of handing out an overwritten slot.
  for (std::uint64_t i = 0; i < 9; ++i) {
    io_uring_sqe* sqe = ring.GetSqe();
    sqe->opcode = IORING_OP_NOP;
    sqe->user_data = 100 + i;
  }
  ring.Submit();
  std::size_t completed = 0;
  // CQ is 2x SQ by default (8 here): the 9th completion overflows into
  // the kernel-side stash and only surfaces on a flushing re-enter, so
  // drain in a reap/Submit loop exactly like the backend's Pump does.
  for (int spins = 0; spins < 10 && completed < 9; ++spins) {
    io_uring_cqe* cqe;
    while ((cqe = ring.PeekCqe()) != nullptr) {
      ++completed;
      ring.AdvanceCqe();
    }
    if (completed < 9) ring.Submit();
  }
  EXPECT_EQ(completed, 9u);
}

TEST_F(IoUringTest, ProvidedBufferRecycleRoundTrip) {
  IoUring ring;
  ASSERT_TRUE(ring.Init(8));
  ASSERT_TRUE(ring.RegisterBufRing(3, 8, 4096));
  EXPECT_EQ(ring.buffer_size(), 4096u);

  // Kernel-picked buffer on a read: write through a pipe and let a
  // buffer-select READ land in one of the registered buffers.
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const char msg[] = "ring recycle";
  ASSERT_EQ(::write(pipe_fds[1], msg, sizeof msg),
            static_cast<ssize_t>(sizeof msg));

  for (int round = 0; round < 3; ++round) {
    io_uring_sqe* sqe = ring.GetSqe();
    sqe->opcode = IORING_OP_READ;
    sqe->fd = pipe_fds[0];
    sqe->len = 0;  // the buffer ring decides
    sqe->flags = IOSQE_BUFFER_SELECT;
    sqe->buf_group = 3;
    sqe->user_data = 7;
    ASSERT_EQ(ring.Submit(1), 1u);
    io_uring_cqe* cqe = ring.PeekCqe();
    ASSERT_NE(cqe, nullptr);
    ASSERT_EQ(cqe->res, static_cast<int>(sizeof msg)) << "round " << round;
    ASSERT_NE(cqe->flags & IORING_CQE_F_BUFFER, 0u);
    const auto bid =
        static_cast<std::uint16_t>(cqe->flags >> IORING_CQE_BUFFER_SHIFT);
    EXPECT_STREQ(reinterpret_cast<const char*>(ring.BufferData(bid)), msg);
    ring.AdvanceCqe();
    // Recycle and refill: if the recycle were broken, 8 buffers would
    // run dry after 8 rounds; 3 rounds with a re-write each proves the
    // same ids cycle back.
    ring.RecycleBuffer(bid);
    ASSERT_EQ(::write(pipe_fds[1], msg, sizeof msg),
              static_cast<ssize_t>(sizeof msg));
  }
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

}  // namespace
}  // namespace osap::util
