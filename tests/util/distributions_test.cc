#include "util/distributions.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/stats.h"

namespace osap {
namespace {

// Every sampler's empirical moments must match its analytic moments: this
// is the property the paper's synthetic datasets rely on (Section 3.1).
struct DistCase {
  const char* label;
  std::shared_ptr<Distribution> dist;
};

class DistributionMoments : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionMoments, EmpiricalMomentsMatchAnalytic) {
  const auto& dist = *GetParam().dist;
  Rng rng(1234);
  RunningStats stats;
  const int n = 200000;
  for (int i = 0; i < n; ++i) stats.Add(dist.Sample(rng));
  const double mean_tol = 0.02 * std::max(1.0, std::abs(dist.Mean()));
  const double var_tol = 0.05 * std::max(1.0, dist.Variance());
  EXPECT_NEAR(stats.Mean(), dist.Mean(), mean_tol) << dist.Name();
  EXPECT_NEAR(stats.Variance(), dist.Variance(), var_tol) << dist.Name();
}

INSTANTIATE_TEST_SUITE_P(
    PaperDistributions, DistributionMoments,
    ::testing::Values(
        DistCase{"gamma_1_2", std::make_shared<GammaDistribution>(1.0, 2.0)},
        DistCase{"gamma_2_2", std::make_shared<GammaDistribution>(2.0, 2.0)},
        DistCase{"gamma_half",
                 std::make_shared<GammaDistribution>(0.5, 1.0)},
        DistCase{"logistic",
                 std::make_shared<LogisticDistribution>(4.0, 0.5)},
        DistCase{"exponential",
                 std::make_shared<ExponentialDistribution>(1.0)},
        DistCase{"normal", std::make_shared<NormalDistribution>(2.0, 3.0)},
        DistCase{"lognormal",
                 std::make_shared<LogNormalDistribution>(0.5, 0.4)}),
    [](const auto& info) { return info.param.label; });

TEST(Gamma, SamplesArePositive) {
  GammaDistribution dist(1.0, 2.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(dist.Sample(rng), 0.0);
  }
}

TEST(Exponential, SamplesArePositive) {
  ExponentialDistribution dist(1.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(dist.Sample(rng), 0.0);
  }
}

TEST(Gamma, RejectsNonPositiveParameters) {
  EXPECT_THROW(GammaDistribution(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GammaDistribution(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(GammaDistribution(-1.0, 1.0), std::invalid_argument);
}

TEST(Logistic, RejectsNonPositiveScale) {
  EXPECT_THROW(LogisticDistribution(0.0, 0.0), std::invalid_argument);
}

TEST(Exponential, RejectsNonPositiveScale) {
  EXPECT_THROW(ExponentialDistribution(-2.0), std::invalid_argument);
}

TEST(Distributions, NamesIdentifyParameters) {
  EXPECT_EQ(GammaDistribution(2.0, 2.0).Name(), "Gamma(2,2)");
  EXPECT_EQ(LogisticDistribution(4.0, 0.5).Name(), "Logistic(4,0.5)");
  EXPECT_EQ(ExponentialDistribution(1.0).Name(), "Exponential(1)");
}

TEST(Distributions, SamplingIsDeterministicPerSeed) {
  GammaDistribution dist(2.0, 2.0);
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(dist.Sample(a), dist.Sample(b));
  }
}

TEST(Logistic, MedianEqualsMu) {
  LogisticDistribution dist(4.0, 0.5);
  Rng rng(31);
  int above = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (dist.Sample(rng) > 4.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.01);
}

}  // namespace
}  // namespace osap
