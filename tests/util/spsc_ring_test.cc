// SpscRing: capacity/ordering semantics plus a two-thread handoff stress
// (the topology the serving path's shard lanes use).
#include "util/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace osap::util {
namespace {

TEST(SpscRing, StartsEmptyAndUnusable) {
  SpscRing<std::uint32_t> ring;
  EXPECT_EQ(ring.Capacity(), 0u);
  EXPECT_EQ(ring.Size(), 0u);
  std::uint32_t v = 0;
  EXPECT_FALSE(ring.Pop(v));
  // Push before Reserve must fail cleanly, not write anywhere.
  EXPECT_FALSE(ring.Push(1));
}

TEST(SpscRing, ReserveRoundsUpToPowerOfTwo) {
  SpscRing<std::uint32_t> ring;
  ring.Reserve(5);
  EXPECT_EQ(ring.Capacity(), 8u);
  ring.Reserve(3);  // never shrinks
  EXPECT_EQ(ring.Capacity(), 8u);
  ring.Reserve(9);
  EXPECT_EQ(ring.Capacity(), 16u);
}

TEST(SpscRing, FifoOrderAndFullness) {
  SpscRing<std::uint32_t> ring;
  ring.Reserve(4);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_TRUE(ring.Push(i));
  EXPECT_FALSE(ring.Push(99));  // full
  EXPECT_EQ(ring.Size(), 4u);
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.Pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.Pop(v));
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint32_t> ring;
  ring.Reserve(2);
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.Push(i));
    ASSERT_TRUE(ring.Pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(SpscRing, ReserveRelocatesUnconsumedValues) {
  SpscRing<std::uint32_t> ring;
  ring.Reserve(2);
  // Advance the cursors so the live values straddle the wrap point.
  std::uint32_t v = 0;
  ASSERT_TRUE(ring.Push(0));
  ASSERT_TRUE(ring.Pop(v));
  ASSERT_TRUE(ring.Push(7));
  ASSERT_TRUE(ring.Push(8));
  ring.Reserve(8);  // grow with two values in flight
  EXPECT_EQ(ring.Size(), 2u);
  for (std::uint32_t i = 0; i < 6; ++i) ASSERT_TRUE(ring.Push(10 + i));
  ASSERT_TRUE(ring.Pop(v));
  EXPECT_EQ(v, 7u);
  ASSERT_TRUE(ring.Pop(v));
  EXPECT_EQ(v, 8u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(ring.Pop(v));
    EXPECT_EQ(v, 10 + i);
  }
}

// The two capacity modes the serving path relies on, at their boundaries.
// Unbounded (default): a full ring grows through Reserve and accepts more.
// Bounded (SetBound, the network edge's lane high-water mark): Push fails
// at the bound even though the pow2 slot array is larger, and Reserve can
// never grow past it - an admission bug hits a loud failed Push instead
// of silent queue growth.
TEST(SpscRing, FullRingGrowsThroughReserveWhenUnbounded) {
  SpscRing<std::uint32_t> ring;
  ring.Reserve(4);
  for (std::uint32_t i = 0; i < 4; ++i) ASSERT_TRUE(ring.Push(i));
  ASSERT_FALSE(ring.Push(4));  // at capacity
  ring.Reserve(8);             // producer grows between epochs
  EXPECT_EQ(ring.Capacity(), 8u);
  for (std::uint32_t i = 4; i < 8; ++i) ASSERT_TRUE(ring.Push(i));
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.Pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(SpscRing, BoundCapsPushBelowSlotCapacity) {
  SpscRing<std::uint32_t> ring;
  ring.SetBound(5);
  ring.Reserve(64);  // clamped: slots round 5 up to 8, not 64
  EXPECT_EQ(ring.Capacity(), 8u);
  for (std::uint32_t i = 0; i < 5; ++i) ASSERT_TRUE(ring.Push(i));
  EXPECT_FALSE(ring.Push(5)) << "bound must cap in-flight values at 5";
  EXPECT_EQ(ring.Size(), 5u);
  std::uint32_t v = 0;
  ASSERT_TRUE(ring.Pop(v));
  EXPECT_EQ(v, 0u);
  // One slot freed: exactly one more push fits.
  EXPECT_TRUE(ring.Push(5));
  EXPECT_FALSE(ring.Push(6));
}

TEST(SpscRing, BoundedRingStaysFifoAcrossWrap) {
  SpscRing<std::uint32_t> ring;
  ring.SetBound(3);
  ring.Reserve(3);
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.Push(2 * i));
    ASSERT_TRUE(ring.Push(2 * i + 1));
    ASSERT_TRUE(ring.Pop(v));
    EXPECT_EQ(v, 2 * i);
    ASSERT_TRUE(ring.Pop(v));
    EXPECT_EQ(v, 2 * i + 1);
  }
}

TEST(SpscRing, ClearingBoundRestoresGrowth) {
  SpscRing<std::uint32_t> ring;
  ring.SetBound(2);
  ring.Reserve(16);
  ASSERT_TRUE(ring.Push(0));
  ASSERT_TRUE(ring.Push(1));
  ASSERT_FALSE(ring.Push(2));
  ring.SetBound(0);  // back to unbounded
  ring.Reserve(16);
  EXPECT_EQ(ring.Capacity(), 16u);
  for (std::uint32_t i = 2; i < 16; ++i) ASSERT_TRUE(ring.Push(i));
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(ring.Pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(SpscRing, SetBoundBelowCurrentSizeThrows) {
  SpscRing<std::uint32_t> ring;
  ring.Reserve(4);
  ASSERT_TRUE(ring.Push(1));
  ASSERT_TRUE(ring.Push(2));
  EXPECT_THROW(ring.SetBound(1), std::invalid_argument);
}

// Cross-thread handoff under the shard-lane protocol: one producer spins
// values in, one consumer drains them; every value must arrive exactly
// once, in order. Small capacity forces continuous wrap + backpressure.
// Runs under the sanitize label, so TSan checks the release/acquire pairs.
TEST(SpscRing, TwoThreadHandoffPreservesOrder) {
  constexpr std::uint32_t kValues = 4000;
  SpscRing<std::uint32_t> ring;
  ring.Reserve(8);
  std::vector<std::uint32_t> received;
  received.reserve(kValues);
  // Yield in the spin loops: on a single-core host the other side cannot
  // make progress until this thread gives up the CPU.
  std::thread consumer([&] {
    std::uint32_t v = 0;
    while (received.size() < kValues) {
      if (ring.Pop(v)) {
        received.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint32_t i = 0; i < kValues; ++i) {
    while (!ring.Push(i)) std::this_thread::yield();
  }
  consumer.join();
  ASSERT_EQ(received.size(), kValues);
  for (std::uint32_t i = 0; i < kValues; ++i) {
    ASSERT_EQ(received[i], i);
  }
}

// The bounded mode under the same two-thread protocol (TSan via the
// sanitize label): the bound only tightens the producer's full check, so
// ordering and exactly-once delivery must be unchanged while Size() never
// exceeds the bound from the consumer's viewpoint.
TEST(SpscRing, BoundedTwoThreadHandoffPreservesOrder) {
  constexpr std::uint32_t kValues = 4000;
  constexpr std::size_t kBound = 5;
  SpscRing<std::uint32_t> ring;
  ring.SetBound(kBound);
  ring.Reserve(64);  // clamped to the bound's pow2
  std::vector<std::uint32_t> received;
  received.reserve(kValues);
  std::thread consumer([&] {
    std::uint32_t v = 0;
    while (received.size() < kValues) {
      EXPECT_LE(ring.Size(), kBound);
      if (ring.Pop(v)) {
        received.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint32_t i = 0; i < kValues; ++i) {
    while (!ring.Push(i)) std::this_thread::yield();
  }
  consumer.join();
  ASSERT_EQ(received.size(), kValues);
  for (std::uint32_t i = 0; i < kValues; ++i) {
    ASSERT_EQ(received[i], i);
  }
}

}  // namespace
}  // namespace osap::util
