#include "util/table.h"

#include <gtest/gtest.h>

namespace osap {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"long-name", "22"});
  const std::string out = t.Render();
  // Header, separator, two rows.
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| long-name"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, AllRowsHaveEqualWidth) {
  TablePrinter t({"a", "bb", "ccc"});
  t.AddRow({"1", "2", "3"});
  t.AddRow({"wide-field", "2", "3"});
  const std::string out = t.Render();
  std::size_t expected = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    const std::size_t len = next - pos;
    if (expected == std::string::npos) expected = len;
    EXPECT_EQ(len, expected);
    pos = next + 1;
  }
}

TEST(TablePrinter, RejectsMismatchedRowWidth) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, NumFormatsWithPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(-1.0, 1), "-1.0");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace osap
