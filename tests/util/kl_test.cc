#include "util/kl.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace osap {
namespace {

TEST(KlDivergence, ZeroForIdenticalDistributions) {
  const std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(KlDivergence(p, p), 0.0);
}

TEST(KlDivergence, PositiveForDifferentDistributions) {
  const std::vector<double> p = {0.9, 0.1};
  const std::vector<double> q = {0.1, 0.9};
  EXPECT_GT(KlDivergence(p, q), 0.0);
}

TEST(KlDivergence, MatchesClosedForm) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {0.25, 0.75};
  const double expected =
      0.5 * std::log(0.5 / 0.25) + 0.5 * std::log(0.5 / 0.75);
  EXPECT_NEAR(KlDivergence(p, q), expected, 1e-12);
}

TEST(KlDivergence, IsAsymmetric) {
  const std::vector<double> p = {0.8, 0.2};
  const std::vector<double> q = {0.3, 0.7};
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
}

TEST(KlDivergence, ZeroMassInPContributesNothing) {
  const std::vector<double> p = {0.0, 1.0};
  const std::vector<double> q = {0.5, 0.5};
  EXPECT_NEAR(KlDivergence(p, q), std::log(1.0 / 0.5), 1e-12);
}

TEST(KlDivergence, ZeroMassInQStaysFinite) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {1.0, 0.0};
  const double kl = KlDivergence(p, q);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GT(kl, 0.0);
}

TEST(KlDivergence, RejectsMismatchedLengths) {
  const std::vector<double> p = {1.0};
  const std::vector<double> q = {0.5, 0.5};
  EXPECT_THROW(KlDivergence(p, q), std::invalid_argument);
}

TEST(KlDivergence, RejectsNegativeProbabilities) {
  const std::vector<double> p = {1.2, -0.2};
  const std::vector<double> q = {0.5, 0.5};
  EXPECT_THROW(KlDivergence(p, q), std::invalid_argument);
}

TEST(Entropy, UniformIsMaximal) {
  const std::vector<double> uniform = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(Entropy(uniform), std::log(4.0), 1e-12);
  const std::vector<double> skewed = {0.97, 0.01, 0.01, 0.01};
  EXPECT_LT(Entropy(skewed), Entropy(uniform));
}

TEST(Entropy, DegenerateIsZero) {
  const std::vector<double> p = {0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(Entropy(p), 0.0);
}

TEST(MeanDistribution, AveragesElementwise) {
  const std::vector<std::vector<double>> dists = {{1.0, 0.0}, {0.0, 1.0}};
  const auto mean = MeanDistribution(dists);
  EXPECT_DOUBLE_EQ(mean[0], 0.5);
  EXPECT_DOUBLE_EQ(mean[1], 0.5);
}

TEST(MeanDistribution, RejectsRaggedInput) {
  const std::vector<std::vector<double>> dists = {{1.0, 0.0}, {1.0}};
  EXPECT_THROW(MeanDistribution(dists), std::invalid_argument);
}

TEST(Normalize, ScalesToUnitSum) {
  const std::vector<double> w = {1.0, 3.0};
  const auto p = Normalize(w);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.75);
}

TEST(Normalize, RejectsZeroTotal) {
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(Normalize(w), std::invalid_argument);
}

}  // namespace
}  // namespace osap
