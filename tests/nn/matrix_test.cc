#include "nn/matrix.h"

#include <gtest/gtest.h>

#include <vector>

namespace osap::nn {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  for (double v : m.values()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(m.size(), 6u);
}

TEST(Matrix, ConstructFromDataValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, {1.0, 2.0, 3.0, 4.0}));
  EXPECT_THROW(Matrix(2, 2, {1.0}), std::invalid_argument);
}

TEST(Matrix, RowVectorHasOneRow) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const Matrix m = Matrix::RowVector(v);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 3.0);
}

TEST(Matrix, AtIsRowMajor) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.At(2, 0), std::logic_error);
  EXPECT_THROW(m.At(0, 2), std::logic_error);
}

TEST(Matrix, MatMulKnownProduct) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.MatMul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(Matrix, MatMulIdentity) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix eye(2, 2, {1, 0, 0, 1});
  const Matrix c = a.MatMul(eye);
  EXPECT_EQ(c.values(), a.values());
}

TEST(Matrix, MatMulRejectsDimensionMismatch) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.MatMul(b), std::invalid_argument);
}

TEST(Matrix, TransposedSwapsIndices) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 3.0);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a(1, 3, {1, 2, 3});
  const Matrix b(1, 3, {4, 5, 6});
  a.AddInPlace(b);
  EXPECT_EQ(a.values(), (std::vector<double>{5, 7, 9}));
  a.SubInPlace(b);
  EXPECT_EQ(a.values(), (std::vector<double>{1, 2, 3}));
  a.MulInPlace(b);
  EXPECT_EQ(a.values(), (std::vector<double>{4, 10, 18}));
  a.Scale(0.5);
  EXPECT_EQ(a.values(), (std::vector<double>{2, 5, 9}));
}

TEST(Matrix, ElementwiseOpsRejectShapeMismatch) {
  Matrix a(1, 3);
  const Matrix b(3, 1);
  EXPECT_THROW(a.AddInPlace(b), std::invalid_argument);
}

TEST(Matrix, AddRowBroadcast) {
  Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix bias(1, 2, {10, 20});
  a.AddRowBroadcast(bias);
  EXPECT_EQ(a.values(), (std::vector<double>{11, 22, 13, 24}));
}

TEST(Matrix, AddRowBroadcastRejectsNonRow) {
  Matrix a(2, 2);
  EXPECT_THROW(a.AddRowBroadcast(Matrix(2, 2)), std::invalid_argument);
}

TEST(Matrix, SumRows) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix s = a.SumRows();
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_EQ(s.values(), (std::vector<double>{5, 7, 9}));
}

TEST(Matrix, SquaredNorm) {
  const Matrix a(1, 3, {1, 2, 2});
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 9.0);
}

TEST(Matrix, ConcatCols) {
  const std::vector<Matrix> parts = {Matrix(2, 1, {1, 3}),
                                     Matrix(2, 2, {4, 5, 6, 7})};
  const Matrix c = Matrix::ConcatCols(parts);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_EQ(c.values(), (std::vector<double>{1, 4, 5, 3, 6, 7}));
}

TEST(Matrix, ConcatColsRejectsRowMismatch) {
  const std::vector<Matrix> parts = {Matrix(2, 1), Matrix(3, 1)};
  EXPECT_THROW(Matrix::ConcatCols(parts), std::invalid_argument);
}

TEST(Matrix, SliceCols) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix s = a.SliceCols(1, 2);
  EXPECT_EQ(s.values(), (std::vector<double>{2, 3, 5, 6}));
  EXPECT_THROW(a.SliceCols(2, 2), std::invalid_argument);
}

TEST(Matrix, SliceThenConcatRoundTrips) {
  const Matrix a(3, 4, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  const std::vector<Matrix> parts = {a.SliceCols(0, 2), a.SliceCols(2, 2)};
  EXPECT_EQ(Matrix::ConcatCols(parts).values(), a.values());
}

}  // namespace
}  // namespace osap::nn
