#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/losses.h"
#include "nn/sequential.h"

namespace osap::nn {
namespace {

TEST(Adam, MinimizesAQuadratic) {
  // f(w) = 0.5 * (w - 3)^2; gradient w - 3.
  Param w(Matrix(1, 1, {0.0}));
  AdamConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.clip_norm = 0.0;
  Adam adam({&w}, cfg);
  for (int i = 0; i < 500; ++i) {
    w.grad.At(0, 0) = w.value.At(0, 0) - 3.0;
    adam.Step();
  }
  EXPECT_NEAR(w.value.At(0, 0), 3.0, 1e-3);
}

TEST(Adam, StepZeroesGradients) {
  Param w(Matrix(1, 1, {0.0}));
  Adam adam({&w});
  w.grad.At(0, 0) = 1.0;
  adam.Step();
  EXPECT_EQ(w.grad.At(0, 0), 0.0);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // Adam's bias-corrected first step has magnitude ~lr regardless of
  // gradient scale.
  Param w(Matrix(1, 1, {0.0}));
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  cfg.clip_norm = 0.0;
  Adam adam({&w}, cfg);
  w.grad.At(0, 0) = 1234.5;
  adam.Step();
  EXPECT_NEAR(w.value.At(0, 0), -0.01, 1e-6);
}

TEST(Adam, ClippingPreservesDirectionAndStepScale) {
  // Adam is per-coordinate scale invariant, so global-norm clipping must
  // not change the first-step magnitude (~lr) or flip any signs - it only
  // protects the moment estimates from overflow on pathological gradients.
  Param a(Matrix(1, 1, {0.0}));
  Param b(Matrix(1, 1, {0.0}));
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  cfg.clip_norm = 1.0;
  Adam adam({&a, &b}, cfg);
  a.grad.At(0, 0) = 3e8;
  b.grad.At(0, 0) = -4e8;
  adam.Step();
  EXPECT_NEAR(a.value.At(0, 0), -0.01, 1e-4);
  EXPECT_NEAR(b.value.At(0, 0), 0.01, 1e-4);
}

TEST(Adam, FitsLinearRegression) {
  Rng rng(21);
  Sequential mlp = MakeMlp(2, {}, 1, rng);  // pure linear model
  AdamConfig cfg;
  cfg.learning_rate = 0.01;  // Adam steps are ~lr; 2000 steps must span ~2
  Adam adam(mlp.Params(), cfg);
  // Ground truth: y = 2 x0 - x1 + 0.5.
  for (int step = 0; step < 2000; ++step) {
    Matrix x(16, 2);
    Matrix y(16, 1);
    for (std::size_t i = 0; i < 16; ++i) {
      x.At(i, 0) = rng.Uniform(-1, 1);
      x.At(i, 1) = rng.Uniform(-1, 1);
      y.At(i, 0) = 2.0 * x.At(i, 0) - x.At(i, 1) + 0.5;
    }
    const auto loss = MseLoss(mlp.Forward(x), y);
    mlp.Backward(loss.grad);
    adam.Step();
  }
  // Verify learned function on fresh points.
  Matrix xt(1, 2, {0.3, -0.7});
  EXPECT_NEAR(mlp.Forward(xt).At(0, 0), 2.0 * 0.3 + 0.7 + 0.5, 0.02);
}

TEST(Adam, RejectsEmptyParamsAndBadLr) {
  EXPECT_THROW(Adam({}, {}), std::invalid_argument);
  Param w(Matrix(1, 1));
  AdamConfig cfg;
  cfg.learning_rate = 0.0;
  EXPECT_THROW(Adam({&w}, cfg), std::invalid_argument);
}

TEST(Sgd, DescendsAQuadratic) {
  Param w(Matrix(1, 1, {10.0}));
  Sgd sgd({&w}, 0.1);
  for (int i = 0; i < 200; ++i) {
    w.grad.At(0, 0) = w.value.At(0, 0) - 3.0;
    sgd.Step();
  }
  EXPECT_NEAR(w.value.At(0, 0), 3.0, 1e-6);
}

TEST(Sgd, StepIsExactlyLrTimesGrad) {
  Param w(Matrix(1, 2, {1.0, 2.0}));
  Sgd sgd({&w}, 0.5);
  w.grad = Matrix(1, 2, {2.0, -4.0});
  sgd.Step();
  EXPECT_DOUBLE_EQ(w.value.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(w.value.At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(w.grad.At(0, 0), 0.0);
}

}  // namespace
}  // namespace osap::nn
