#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "nn/losses.h"
#include "nn/sequential.h"

namespace osap::nn {
namespace {

TEST(Adam, MinimizesAQuadratic) {
  // f(w) = 0.5 * (w - 3)^2; gradient w - 3.
  Param w(Matrix(1, 1, {0.0}));
  AdamConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.clip_norm = 0.0;
  Adam adam({&w}, cfg);
  for (int i = 0; i < 500; ++i) {
    w.grad.At(0, 0) = w.value.At(0, 0) - 3.0;
    adam.Step();
  }
  EXPECT_NEAR(w.value.At(0, 0), 3.0, 1e-3);
}

TEST(Adam, StepZeroesGradients) {
  Param w(Matrix(1, 1, {0.0}));
  Adam adam({&w});
  w.grad.At(0, 0) = 1.0;
  adam.Step();
  EXPECT_EQ(w.grad.At(0, 0), 0.0);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // Adam's bias-corrected first step has magnitude ~lr regardless of
  // gradient scale.
  Param w(Matrix(1, 1, {0.0}));
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  cfg.clip_norm = 0.0;
  Adam adam({&w}, cfg);
  w.grad.At(0, 0) = 1234.5;
  adam.Step();
  EXPECT_NEAR(w.value.At(0, 0), -0.01, 1e-6);
}

TEST(Adam, ClippingPreservesDirectionAndStepScale) {
  // Adam is per-coordinate scale invariant, so global-norm clipping must
  // not change the first-step magnitude (~lr) or flip any signs - it only
  // protects the moment estimates from overflow on pathological gradients.
  Param a(Matrix(1, 1, {0.0}));
  Param b(Matrix(1, 1, {0.0}));
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  cfg.clip_norm = 1.0;
  Adam adam({&a, &b}, cfg);
  a.grad.At(0, 0) = 3e8;
  b.grad.At(0, 0) = -4e8;
  adam.Step();
  EXPECT_NEAR(a.value.At(0, 0), -0.01, 1e-4);
  EXPECT_NEAR(b.value.At(0, 0), 0.01, 1e-4);
}

TEST(Adam, FitsLinearRegression) {
  Rng rng(21);
  Sequential mlp = MakeMlp(2, {}, 1, rng);  // pure linear model
  AdamConfig cfg;
  cfg.learning_rate = 0.01;  // Adam steps are ~lr; 2000 steps must span ~2
  Adam adam(mlp.Params(), cfg);
  // Ground truth: y = 2 x0 - x1 + 0.5.
  for (int step = 0; step < 2000; ++step) {
    Matrix x(16, 2);
    Matrix y(16, 1);
    for (std::size_t i = 0; i < 16; ++i) {
      x.At(i, 0) = rng.Uniform(-1, 1);
      x.At(i, 1) = rng.Uniform(-1, 1);
      y.At(i, 0) = 2.0 * x.At(i, 0) - x.At(i, 1) + 0.5;
    }
    const auto loss = MseLoss(mlp.Forward(x), y);
    mlp.Backward(loss.grad);
    adam.Step();
  }
  // Verify learned function on fresh points.
  Matrix xt(1, 2, {0.3, -0.7});
  EXPECT_NEAR(mlp.Forward(xt).At(0, 0), 2.0 * 0.3 + 0.7 + 0.5, 0.02);
}

// The parallel A2C trainer buffers per-episode gradients and reduces them
// into the main params with AddInPlace before one Step() per update. The
// next three tests pin the optimizer contracts that schedule relies on.

/// Runs two fixed-clip Adam steps over two scalar params, feeding the
/// given (a, b) gradient per step, and returns the final weights.
std::pair<double, double> TwoStepAdam(
    const std::vector<std::pair<double, double>>& accumulations) {
  Param a(Matrix(1, 1, {0.0}));
  Param b(Matrix(1, 1, {0.0}));
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  cfg.clip_norm = 2.5;
  Adam adam({&a, &b}, cfg);
  // Each outer element is one optimizer step; pairs accumulate first.
  for (std::size_t step = 0; step + 1 < accumulations.size(); step += 2) {
    a.grad.At(0, 0) += accumulations[step].first;
    b.grad.At(0, 0) += accumulations[step].second;
    a.grad.At(0, 0) += accumulations[step + 1].first;
    b.grad.At(0, 0) += accumulations[step + 1].second;
    adam.Step();
  }
  return {a.value.At(0, 0), b.value.At(0, 0)};
}

TEST(Adam, AccumulatedPartialsMatchPreReducedGradient) {
  // Two per-episode partials summed into the grad buffers must yield the
  // bitwise-identical update to handing Adam the reduced gradient
  // directly, including when the reduced norm (5) exceeds the clip (2.5).
  const auto accumulated =
      TwoStepAdam({{3.0, 0.0}, {0.0, 4.0},     // step 1: partials
                   {0.2, -0.1}, {0.0, 0.0}});  // step 2
  const auto reduced =
      TwoStepAdam({{3.0, 4.0}, {0.0, 0.0},     // step 1: pre-summed
                   {0.2, -0.1}, {0.0, 0.0}});
  EXPECT_EQ(accumulated.first, reduced.first);
  EXPECT_EQ(accumulated.second, reduced.second);
}

TEST(Adam, ClipsTheReducedGradientNotThePartials) {
  // Wrong scheme for contrast: clipping each partial to the 2.5 budget
  // BEFORE summing turns ((3,0), (0,4)) into (2.5, 2.5) - a different
  // direction than the correctly clipped sum (3,4) * 0.5 = (1.5, 2). The
  // deviation must be observable in the trained weights (the second step
  // breaks Adam's per-coordinate scale invariance), proving the
  // equivalence test above can actually detect a mis-placed clip.
  const auto correct =
      TwoStepAdam({{3.0, 0.0}, {0.0, 4.0}, {0.2, -0.1}, {0.0, 0.0}});
  const auto clipped_partials =
      TwoStepAdam({{2.5, 0.0}, {0.0, 2.5}, {0.2, -0.1}, {0.0, 0.0}});
  EXPECT_NE(correct.second, clipped_partials.second);
}

TEST(Adam, StepZeroesEveryGradientUnderAccumulation) {
  // After the per-update Step(), every gradient element must be exactly
  // zero so the next update's episode buffers reduce into clean storage.
  Param w(Matrix(3, 4));
  Param b(Matrix(1, 4));
  for (double& v : w.value.values()) v = 0.5;
  Adam adam({&w, &b});
  for (int episode = 0; episode < 3; ++episode) {
    Matrix pw(3, 4);
    Matrix pb(1, 4);
    for (std::size_t i = 0; i < pw.size(); ++i) {
      pw.values()[i] = 0.1 * static_cast<double>(i + episode);
    }
    for (std::size_t i = 0; i < pb.size(); ++i) pb.values()[i] = -1.0;
    w.grad.AddInPlace(pw);
    b.grad.AddInPlace(pb);
  }
  adam.Step();
  for (double g : w.grad.values()) EXPECT_EQ(g, 0.0);
  for (double g : b.grad.values()) EXPECT_EQ(g, 0.0);
}

TEST(Adam, RejectsEmptyParamsAndBadLr) {
  EXPECT_THROW(Adam({}, {}), std::invalid_argument);
  Param w(Matrix(1, 1));
  AdamConfig cfg;
  cfg.learning_rate = 0.0;
  EXPECT_THROW(Adam({&w}, cfg), std::invalid_argument);
}

TEST(Sgd, DescendsAQuadratic) {
  Param w(Matrix(1, 1, {10.0}));
  Sgd sgd({&w}, 0.1);
  for (int i = 0; i < 200; ++i) {
    w.grad.At(0, 0) = w.value.At(0, 0) - 3.0;
    sgd.Step();
  }
  EXPECT_NEAR(w.value.At(0, 0), 3.0, 1e-6);
}

TEST(Sgd, StepIsExactlyLrTimesGrad) {
  Param w(Matrix(1, 2, {1.0, 2.0}));
  Sgd sgd({&w}, 0.5);
  w.grad = Matrix(1, 2, {2.0, -4.0});
  sgd.Step();
  EXPECT_DOUBLE_EQ(w.value.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(w.value.At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(w.grad.At(0, 0), 0.0);
}

}  // namespace
}  // namespace osap::nn
