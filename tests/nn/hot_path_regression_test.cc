// Regression tests for the optimized inference kernels: the blocked MatMul
// and tiled Transposed must match a naive triple-loop reference bit for
// bit (the blocking is required to preserve the accumulation order), and
// the batched ensemble forward must match per-member Forward exactly.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "nn/ensemble_forward.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace osap::nn {
namespace {

Matrix Random(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m.At(i, j) = rng.Normal(0.0, 1.0);
  return m;
}

/// The pre-optimization reference: i-k-j triple loop, ascending k,
/// individually rounded accumulations.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k)
      for (std::size_t j = 0; j < b.cols(); ++j)
        out.At(i, j) += a.At(i, k) * b.At(k, j);
  return out;
}

void ExpectBitIdentical(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j)
      EXPECT_EQ(got.At(i, j), want.At(i, j)) << "at (" << i << "," << j << ")";
}

TEST(MatMulRegression, MatchesNaiveOnOddAndDegenerateShapes) {
  // 1xN row chains (the online decision path), Nx1 columns, shapes that are
  // not multiples of the unroll factor (4) or the panel size (64), and
  // shapes spanning multiple panels.
  const std::vector<std::array<std::size_t, 3>> shapes = {
      {1, 1, 1},   {1, 5, 1},    {1, 64, 128},  {7, 1, 9},
      {3, 5, 9},   {5, 25, 128}, {65, 130, 67}, {2, 63, 3},
      {4, 65, 4},  {1, 127, 6},
  };
  Rng rng(42);
  for (const auto& [m, k, n] : shapes) {
    const Matrix a = Random(m, k, rng);
    const Matrix b = Random(k, n, rng);
    ExpectBitIdentical(a.MatMul(b), NaiveMatMul(a, b));
  }
}

TEST(MatMulRegression, MatMulIntoReusesOutputBuffer) {
  Rng rng(7);
  const Matrix a = Random(3, 70, rng);
  const Matrix b = Random(70, 5, rng);
  Matrix out = Random(11, 13, rng);  // wrong shape, stale contents
  a.MatMulInto(b, out);
  ExpectBitIdentical(out, NaiveMatMul(a, b));
}

TEST(TransposedRegression, MatchesNaiveOnOddShapes) {
  Rng rng(3);
  for (const auto& [r, c] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 17}, {17, 1}, {33, 65}, {64, 64}, {100, 3}}) {
    const Matrix a = Random(r, c, rng);
    const Matrix t = a.Transposed();
    ASSERT_EQ(t.rows(), c);
    ASSERT_EQ(t.cols(), r);
    for (std::size_t i = 0; i < r; ++i)
      for (std::size_t j = 0; j < c; ++j) EXPECT_EQ(t.At(j, i), a.At(i, j));
  }
}

/// A small branched net covering every packed op kind: a dense branch, a
/// Conv1D branch, a Tanh branch, and a dense trunk.
CompositeNet MakeBranchedNet(Rng& rng) {
  CompositeNet net;
  Sequential dense;
  dense.Add(std::make_unique<Linear>(1, 4, rng));
  dense.Add(std::make_unique<ReLU>(4));
  net.AddBranch(0, 1, std::move(dense));
  Sequential conv;
  conv.Add(std::make_unique<Conv1D>(1, 2, 3, 8, rng));
  conv.Add(std::make_unique<ReLU>(12));
  net.AddBranch(1, 8, std::move(conv));
  Sequential tanh_branch;
  tanh_branch.Add(std::make_unique<Linear>(2, 3, rng));
  tanh_branch.Add(std::make_unique<Tanh>(3));
  net.AddBranch(9, 2, std::move(tanh_branch));
  Sequential trunk;
  trunk.Add(std::make_unique<Linear>(19, 5, rng));
  trunk.Add(std::make_unique<Tanh>(5));
  net.SetTrunk(std::move(trunk));
  return net;
}

TEST(BatchedEnsembleRegression, MatchesPerMemberForwardBitForBit) {
  Rng rng(11);
  std::vector<CompositeNet> members;
  for (int m = 0; m < 3; ++m) members.push_back(MakeBranchedNet(rng));
  std::vector<const CompositeNet*> views;
  for (const auto& m : members) views.push_back(&m);
  const BatchedEnsemble batched(views);
  EXPECT_EQ(batched.MemberCount(), 3u);
  EXPECT_EQ(batched.InputSize(), 11u);
  EXPECT_EQ(batched.OutputSize(), 5u);

  InferScratch scratch;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> state(11);
    for (double& v : state) v = rng.Normal(0.0, 1.0);
    const Matrix& out = batched.Infer(state, scratch);
    ASSERT_EQ(out.rows(), 3u);
    ASSERT_EQ(out.cols(), 5u);
    Matrix x(1, state.size());
    for (std::size_t j = 0; j < state.size(); ++j) x.At(0, j) = state[j];
    for (std::size_t m = 0; m < members.size(); ++m) {
      const Matrix ref = members[m].Forward(x);
      for (std::size_t j = 0; j < 5; ++j) {
        EXPECT_EQ(out.At(m, j), ref.At(0, j))
            << "member " << m << " output " << j;
      }
    }
  }
}

TEST(BatchedEnsembleRegression, InferBatchMatchesPerStateInferBitForBit) {
  Rng rng(23);
  std::vector<CompositeNet> members;
  for (int m = 0; m < 3; ++m) members.push_back(MakeBranchedNet(rng));
  std::vector<const CompositeNet*> views;
  for (const auto& m : members) views.push_back(&m);
  const BatchedEnsemble batched(views);

  // Batch sizes around the edge cases: one state, odd counts, and rows
  // wider than InputSize (extra columns must be ignored).
  for (const std::size_t batch : {std::size_t{1}, std::size_t{2},
                                  std::size_t{7}, std::size_t{33}}) {
    Matrix states = Random(batch, 13, rng);  // 13 > InputSize() == 11
    InferScratch scratch;
    const Matrix& out = batched.InferBatch(states, scratch);
    ASSERT_EQ(out.rows(), batch * 3u);
    ASSERT_EQ(out.cols(), 5u);
    InferScratch single;
    for (std::size_t b = 0; b < batch; ++b) {
      const Matrix& ref =
          batched.Infer(states.Row(b).first(batched.InputSize()), single);
      for (std::size_t m = 0; m < 3; ++m) {
        for (std::size_t j = 0; j < 5; ++j) {
          EXPECT_EQ(out.At(b * 3 + m, j), ref.At(m, j))
              << "state " << b << " member " << m << " output " << j;
        }
      }
    }
  }
}

TEST(BatchedEnsembleRegression, CompositeInferMatchesForward) {
  Rng rng(5);
  CompositeNet net = MakeBranchedNet(rng);
  InferScratch scratch;
  for (int trial = 0; trial < 5; ++trial) {
    Matrix x = Random(1, 11, rng);
    const Matrix& inferred = net.Infer(x, scratch);
    ExpectBitIdentical(inferred, net.Forward(x));
  }
}

TEST(BatchedEnsembleRegression, RejectsEmptyAndNullMembers) {
  EXPECT_THROW(BatchedEnsemble({}), std::invalid_argument);
  EXPECT_THROW(BatchedEnsemble(std::vector<const CompositeNet*>{nullptr}),
               std::invalid_argument);
}

TEST(BatchedEnsembleRegression, RejectsMismatchedTopology) {
  Rng rng(9);
  CompositeNet a = MakeBranchedNet(rng);
  CompositeNet b;  // different topology: single dense branch
  Sequential dense;
  dense.Add(std::make_unique<Linear>(11, 5, rng));
  b.AddBranch(0, 11, std::move(dense));
  Sequential trunk;
  trunk.Add(std::make_unique<Linear>(5, 5, rng));
  b.SetTrunk(std::move(trunk));
  EXPECT_THROW(BatchedEnsemble(std::vector<const CompositeNet*>{&a, &b}),
               std::invalid_argument);
}

}  // namespace
}  // namespace osap::nn
