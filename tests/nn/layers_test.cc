#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/gradcheck.h"
#include "nn/sequential.h"

namespace osap::nn {
namespace {

/// Sums all outputs of a layer (scalar loss for gradient checking).
double SumForward(Layer& layer, const Matrix& x) {
  const Matrix y = layer.Forward(x);
  double s = 0.0;
  // Weight each output element differently so gradients are not symmetric.
  for (std::size_t i = 0; i < y.size(); ++i) {
    s += y.values()[i] * (0.3 + 0.7 * static_cast<double>(i % 5));
  }
  return s;
}

void BackwardWeighted(Layer& layer, const Matrix& x) {
  ZeroGrads(layer.Params());
  const Matrix y = layer.Forward(x);
  Matrix dy(y.rows(), y.cols());
  for (std::size_t i = 0; i < dy.size(); ++i) {
    dy.values()[i] = 0.3 + 0.7 * static_cast<double>(i % 5);
  }
  layer.Backward(dy);
}

Matrix RandomBatch(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix x(rows, cols);
  for (double& v : x.values()) v = rng.Uniform(-1.0, 1.0);
  return x;
}

TEST(Linear, ForwardMatchesManualAffine) {
  Rng rng(1);
  Linear lin(2, 2, rng);
  // Overwrite weights with known values.
  lin.weight().value = Matrix(2, 2, {1, 2, 3, 4});
  lin.bias().value = Matrix(1, 2, {10, 20});
  const Matrix x(1, 2, {1, 1});
  const Matrix y = lin.Forward(x);
  EXPECT_DOUBLE_EQ(y.At(0, 0), 14.0);  // 1*1 + 1*3 + 10
  EXPECT_DOUBLE_EQ(y.At(0, 1), 26.0);  // 1*2 + 1*4 + 20
}

TEST(Linear, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Linear lin(4, 3, rng);
  const Matrix x = RandomBatch(5, 4, rng);
  const auto result = CheckGradients(
      lin.Params(), [&] { return SumForward(lin, x); },
      [&] { BackwardWeighted(lin, x); });
  EXPECT_LT(result.max_rel_error, 1e-6);
  EXPECT_EQ(result.checked, 4u * 3u + 3u);
}

TEST(Linear, BackwardAccumulatesAcrossCalls) {
  Rng rng(3);
  Linear lin(2, 2, rng);
  const Matrix x = RandomBatch(1, 2, rng);
  BackwardWeighted(lin, x);
  const Matrix grad_once = lin.weight().grad;
  // Without zeroing, a second pass doubles the gradient.
  const Matrix y = lin.Forward(x);
  Matrix dy(y.rows(), y.cols());
  for (std::size_t i = 0; i < dy.size(); ++i) {
    dy.values()[i] = 0.3 + 0.7 * static_cast<double>(i % 5);
  }
  lin.Backward(dy);
  for (std::size_t i = 0; i < grad_once.size(); ++i) {
    EXPECT_NEAR(lin.weight().grad.values()[i], 2.0 * grad_once.values()[i],
                1e-12);
  }
}

TEST(Linear, XavierInitBounded) {
  Rng rng(4);
  Linear lin(100, 50, rng);
  const double bound = std::sqrt(6.0 / 150.0);
  for (double v : lin.weight().value.values()) {
    EXPECT_LE(std::abs(v), bound);
  }
  for (double v : lin.bias().value.values()) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(ReLU, ClampsNegativeInputs) {
  ReLU relu(3);
  const Matrix x(1, 3, {-1.0, 0.0, 2.0});
  const Matrix y = relu.Forward(x);
  EXPECT_EQ(y.values(), (std::vector<double>{0.0, 0.0, 2.0}));
}

TEST(ReLU, GradientMasksNegativeRegion) {
  ReLU relu(2);
  const Matrix x(1, 2, {-1.0, 3.0});
  relu.Forward(x);
  const Matrix dy(1, 2, {5.0, 7.0});
  const Matrix dx = relu.Backward(dy);
  EXPECT_EQ(dx.values(), (std::vector<double>{0.0, 7.0}));
}

TEST(Tanh, ForwardIsBounded) {
  Tanh tanh_layer(1);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Matrix x(1, 1, {rng.Uniform(-10, 10)});
    const double y = tanh_layer.Forward(x).At(0, 0);
    EXPECT_GT(y, -1.0);
    EXPECT_LT(y, 1.0);
  }
}

TEST(Tanh, GradientMatchesDerivative) {
  Tanh tanh_layer(1);
  const Matrix x(1, 1, {0.5});
  const double y = tanh_layer.Forward(x).At(0, 0);
  const Matrix dx = tanh_layer.Backward(Matrix(1, 1, {1.0}));
  EXPECT_NEAR(dx.At(0, 0), 1.0 - y * y, 1e-12);
}

TEST(Conv1D, OutputLengthIsValidConvolution) {
  Rng rng(6);
  Conv1D conv(1, 4, 3, 8, rng);
  EXPECT_EQ(conv.OutputLength(), 6u);
  EXPECT_EQ(conv.OutputSize(), 24u);
  EXPECT_EQ(conv.InputSize(), 8u);
}

TEST(Conv1D, KnownSingleFilterConvolution) {
  Rng rng(7);
  Conv1D conv(1, 1, 2, 4, rng);
  // Set filter [1, -1], bias 0.5.
  conv.Params()[0]->value = Matrix(2, 1, {1.0, -1.0});
  conv.Params()[1]->value = Matrix(1, 1, {0.5});
  const Matrix x(1, 4, {3.0, 1.0, 4.0, 1.0});
  const Matrix y = conv.Forward(x);
  ASSERT_EQ(y.cols(), 3u);
  EXPECT_DOUBLE_EQ(y.At(0, 0), 3.0 - 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(y.At(0, 1), 1.0 - 4.0 + 0.5);
  EXPECT_DOUBLE_EQ(y.At(0, 2), 4.0 - 1.0 + 0.5);
}

TEST(Conv1D, GradientsMatchFiniteDifferencesSingleChannel) {
  Rng rng(8);
  Conv1D conv(1, 3, 4, 8, rng);
  const Matrix x = RandomBatch(3, 8, rng);
  const auto result = CheckGradients(
      conv.Params(), [&] { return SumForward(conv, x); },
      [&] { BackwardWeighted(conv, x); });
  EXPECT_LT(result.max_rel_error, 1e-6);
}

TEST(Conv1D, GradientsMatchFiniteDifferencesMultiChannel) {
  Rng rng(9);
  Conv1D conv(2, 3, 3, 6, rng);
  const Matrix x = RandomBatch(2, 12, rng);
  const auto result = CheckGradients(
      conv.Params(), [&] { return SumForward(conv, x); },
      [&] { BackwardWeighted(conv, x); });
  EXPECT_LT(result.max_rel_error, 1e-6);
}

TEST(Conv1D, InputGradientMatchesFiniteDifferences) {
  // Check dL/dInput by treating the input as the "parameter".
  Rng rng(10);
  Conv1D conv(1, 2, 3, 6, rng);
  Param input(Matrix(1, 6, {0.2, -0.4, 0.6, 0.1, -0.3, 0.5}));
  auto loss_fn = [&] { return SumForward(conv, input.value); };
  auto backward_fn = [&] {
    input.grad.SetZero();
    ZeroGrads(conv.Params());
    const Matrix y = conv.Forward(input.value);
    Matrix dy(y.rows(), y.cols());
    for (std::size_t i = 0; i < dy.size(); ++i) {
      dy.values()[i] = 0.3 + 0.7 * static_cast<double>(i % 5);
    }
    input.grad = conv.Backward(dy);
  };
  const auto result =
      CheckGradients({&input}, loss_fn, backward_fn);
  EXPECT_LT(result.max_rel_error, 1e-6);
}

TEST(Conv1D, RejectsKernelLargerThanInput) {
  Rng rng(11);
  EXPECT_THROW(Conv1D(1, 1, 9, 8, rng), std::invalid_argument);
}

TEST(Layers, InputWidthValidated) {
  Rng rng(12);
  Linear lin(3, 2, rng);
  EXPECT_THROW(lin.Forward(Matrix(1, 4)), std::invalid_argument);
  ReLU relu(3);
  EXPECT_THROW(relu.Forward(Matrix(1, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace osap::nn
