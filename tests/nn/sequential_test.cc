#include "nn/sequential.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/actor_critic_net.h"
#include "nn/gradcheck.h"
#include "nn/losses.h"

namespace osap::nn {
namespace {

Matrix RandomBatch(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix x(rows, cols);
  for (double& v : x.values()) v = rng.Uniform(-1.0, 1.0);
  return x;
}

TEST(Sequential, RejectsMismatchedLayerWidths) {
  Rng rng(1);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(4, 8, rng));
  EXPECT_THROW(seq.Add(std::make_unique<Linear>(9, 2, rng)),
               std::invalid_argument);
}

TEST(Sequential, ForwardOnEmptyThrows) {
  Sequential seq;
  EXPECT_THROW(seq.Forward(Matrix(1, 1)), std::invalid_argument);
}

TEST(MakeMlp, BuildsRequestedTopology) {
  Rng rng(2);
  Sequential mlp = MakeMlp(10, {32, 16}, 4, rng);
  EXPECT_EQ(mlp.InputSize(), 10u);
  EXPECT_EQ(mlp.OutputSize(), 4u);
  // Linear+ReLU per hidden layer plus the head Linear.
  EXPECT_EQ(mlp.LayerCount(), 5u);
  // Param count: (10*32+32) + (32*16+16) + (16*4+4).
  EXPECT_EQ(ParamCount(mlp.Params()), 10u * 32 + 32 + 32 * 16 + 16 + 16 * 4 + 4);
}

TEST(MakeMlp, GradientsFlowThroughWholeStack) {
  Rng rng(3);
  Sequential mlp = MakeMlp(6, {10, 8}, 3, rng);
  const Matrix x = RandomBatch(4, 6, rng);
  Matrix target(4, 3);
  for (double& v : target.values()) v = rng.Uniform(-1, 1);
  auto loss_fn = [&] { return MseLoss(mlp.Forward(x), target).loss; };
  auto backward_fn = [&] {
    ZeroGrads(mlp.Params());
    mlp.Backward(MseLoss(mlp.Forward(x), target).grad);
  };
  const auto check = CheckGradients(mlp.Params(), loss_fn, backward_fn);
  EXPECT_LT(check.max_rel_error, 1e-5);
}

CompositeNet MakeTestComposite(Rng& rng) {
  // Input width 7: scalar branch on col 0, conv branch on cols 1-6.
  CompositeNet net;
  Sequential scalar;
  scalar.AddLinearReLU(1, 4, rng);
  net.AddBranch(0, 1, std::move(scalar));
  Sequential conv;
  auto c = std::make_unique<Conv1D>(1, 2, 3, 6, rng);
  const std::size_t out = c->OutputSize();
  conv.Add(std::move(c));
  conv.Add(std::make_unique<ReLU>(out));
  net.AddBranch(1, 6, std::move(conv));
  Sequential trunk;
  trunk.AddLinearReLU(4 + out, 8, rng);
  trunk.Add(std::make_unique<Linear>(8, 2, rng));
  net.SetTrunk(std::move(trunk));
  return net;
}

TEST(CompositeNet, ShapesAreConsistent) {
  Rng rng(4);
  CompositeNet net = MakeTestComposite(rng);
  EXPECT_EQ(net.InputSize(), 7u);
  EXPECT_EQ(net.OutputSize(), 2u);
  const Matrix y = net.Forward(Matrix(3, 7));
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(CompositeNet, TrunkWidthValidated) {
  Rng rng(5);
  CompositeNet net;
  Sequential branch;
  branch.AddLinearReLU(2, 4, rng);
  net.AddBranch(0, 2, std::move(branch));
  Sequential trunk;
  trunk.AddLinearReLU(5, 2, rng);  // should be 4
  EXPECT_THROW(net.SetTrunk(std::move(trunk)), std::invalid_argument);
}

TEST(CompositeNet, BranchWidthValidated) {
  Rng rng(6);
  CompositeNet net;
  Sequential branch;
  branch.AddLinearReLU(3, 4, rng);
  EXPECT_THROW(net.AddBranch(0, 2, std::move(branch)),
               std::invalid_argument);
}

TEST(CompositeNet, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  CompositeNet net = MakeTestComposite(rng);
  const Matrix x = RandomBatch(3, 7, rng);
  Matrix target(3, 2);
  for (double& v : target.values()) v = rng.Uniform(-1, 1);
  auto loss_fn = [&] { return MseLoss(net.Forward(x), target).loss; };
  auto backward_fn = [&] {
    ZeroGrads(net.Params());
    net.Backward(MseLoss(net.Forward(x), target).grad);
  };
  const auto check = CheckGradients(net.Params(), loss_fn, backward_fn);
  EXPECT_LT(check.max_rel_error, 1e-5);
}

TEST(CompositeNet, InputGradientCoversAllBranches) {
  Rng rng(8);
  CompositeNet net = MakeTestComposite(rng);
  const Matrix x = RandomBatch(1, 7, rng);
  net.Forward(x);
  const Matrix dx = net.Backward(Matrix(1, 2, {1.0, -1.0}));
  EXPECT_EQ(dx.rows(), 1u);
  EXPECT_EQ(dx.cols(), 7u);
  // With random weights, gradient should reach both column regions.
  double scalar_grad = std::abs(dx.At(0, 0));
  double conv_grad = 0.0;
  for (std::size_t c = 1; c < 7; ++c) conv_grad += std::abs(dx.At(0, c));
  EXPECT_GT(scalar_grad + conv_grad, 0.0);
}

TEST(CopyParams, TransfersValues) {
  Rng rng(9);
  Sequential a = MakeMlp(3, {4}, 2, rng);
  Sequential b = MakeMlp(3, {4}, 2, rng);
  CopyParams(a.Params(), b.Params());
  const Matrix x = RandomBatch(2, 3, rng);
  const Matrix ya = a.Forward(x);
  const Matrix yb = b.Forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_DOUBLE_EQ(ya.values()[i], yb.values()[i]);
  }
}

TEST(ActorCriticNet, ActionProbsAreADistribution) {
  Rng rng(10);
  CompositeNet actor = MakeTestComposite(rng);
  // Critic with one output over the same input width.
  CompositeNet critic;
  Sequential branch;
  branch.AddLinearReLU(7, 6, rng);
  critic.AddBranch(0, 7, std::move(branch));
  Sequential trunk;
  trunk.Add(std::make_unique<Linear>(6, 1, rng));
  critic.SetTrunk(std::move(trunk));

  ActorCriticNet net(std::move(actor), std::move(critic));
  const std::vector<double> state(7, 0.3);
  const auto probs = net.ActionProbs(state);
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
  EXPECT_TRUE(std::isfinite(net.Value(state)));
}

TEST(ActorCriticNet, RejectsMultiOutputCritic) {
  Rng rng(11);
  CompositeNet actor = MakeTestComposite(rng);
  CompositeNet critic = MakeTestComposite(rng);  // outputs 2
  EXPECT_THROW(ActorCriticNet(std::move(actor), std::move(critic)),
               std::invalid_argument);
}

}  // namespace
}  // namespace osap::nn
