#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "nn/losses.h"
#include "nn/sequential.h"

namespace osap::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "osap_nn_ser_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(SerializeTest, RoundTripPreservesOutputs) {
  Rng rng1(1);
  Rng rng2(2);
  Sequential a = MakeMlp(4, {8}, 3, rng1);
  Sequential b = MakeMlp(4, {8}, 3, rng2);  // different init

  const auto path = dir_ / "mlp.bin";
  SaveParamsToFile(path, a.Params());
  LoadParamsFromFile(path, b.Params());

  Matrix x(2, 4);
  Rng rng(3);
  for (double& v : x.values()) v = rng.Uniform(-1, 1);
  const Matrix ya = a.Forward(x);
  const Matrix yb = b.Forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_DOUBLE_EQ(ya.values()[i], yb.values()[i]);
  }
}

TEST_F(SerializeTest, StreamRoundTrip) {
  Rng rng(4);
  Sequential a = MakeMlp(3, {}, 2, rng);
  std::stringstream stream;
  SaveParams(stream, a.Params());
  Sequential b = MakeMlp(3, {}, 2, rng);
  LoadParams(stream, b.Params());
  EXPECT_EQ(a.Params()[0]->value.values(), b.Params()[0]->value.values());
}

TEST_F(SerializeTest, RejectsBadMagic) {
  std::stringstream stream;
  stream << "NOTANNFILE------";
  Rng rng(5);
  Sequential net = MakeMlp(2, {}, 1, rng);
  EXPECT_THROW(LoadParams(stream, net.Params()), std::runtime_error);
}

TEST_F(SerializeTest, RejectsParamCountMismatch) {
  Rng rng(6);
  Sequential small = MakeMlp(2, {}, 1, rng);
  Sequential big = MakeMlp(2, {4}, 1, rng);
  std::stringstream stream;
  SaveParams(stream, small.Params());
  EXPECT_THROW(LoadParams(stream, big.Params()), std::runtime_error);
}

TEST_F(SerializeTest, RejectsShapeMismatch) {
  Rng rng(7);
  Sequential a = MakeMlp(2, {}, 3, rng);
  Sequential b = MakeMlp(3, {}, 2, rng);  // same param count, diff shapes
  std::stringstream stream;
  SaveParams(stream, a.Params());
  EXPECT_THROW(LoadParams(stream, b.Params()), std::runtime_error);
}

TEST_F(SerializeTest, RejectsTruncatedStream) {
  Rng rng(8);
  Sequential a = MakeMlp(4, {8}, 3, rng);
  std::stringstream stream;
  SaveParams(stream, a.Params());
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  Sequential b = MakeMlp(4, {8}, 3, rng);
  EXPECT_THROW(LoadParams(truncated, b.Params()), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  Rng rng(9);
  Sequential net = MakeMlp(2, {}, 1, rng);
  EXPECT_THROW(LoadParamsFromFile(dir_ / "missing.bin", net.Params()),
               std::runtime_error);
}

TEST_F(SerializeTest, SaveCreatesParentDirectories) {
  Rng rng(10);
  Sequential net = MakeMlp(2, {}, 1, rng);
  const auto path = dir_ / "a" / "b" / "net.bin";
  SaveParamsToFile(path, net.Params());
  EXPECT_TRUE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace osap::nn
