#include "nn/losses.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.h"
#include "nn/sequential.h"

namespace osap::nn {
namespace {

TEST(Softmax, SumsToOne) {
  const std::vector<double> logits = {1.0, 2.0, 3.0};
  const auto p = Softmax(logits);
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Softmax, MonotoneInLogits) {
  const auto p = Softmax(std::vector<double>{1.0, 3.0, 2.0});
  EXPECT_GT(p[1], p[2]);
  EXPECT_GT(p[2], p[0]);
}

TEST(Softmax, InvariantToConstantShift) {
  const auto p1 = Softmax(std::vector<double>{1.0, 2.0});
  const auto p2 = Softmax(std::vector<double>{101.0, 102.0});
  EXPECT_NEAR(p1[0], p2[0], 1e-12);
}

TEST(Softmax, NumericallyStableForHugeLogits) {
  const auto p = Softmax(std::vector<double>{1000.0, 999.0});
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(SoftmaxRows, NormalizesEachRow) {
  const Matrix logits(2, 3, {1, 2, 3, 3, 2, 1});
  const Matrix p = SoftmaxRows(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += p.At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_NEAR(p.At(0, 0), p.At(1, 2), 1e-12);
}

TEST(PolicyGradientLoss, MatchesClosedFormForSingleStep) {
  // One state, two actions, logits (0, 0) -> p = (.5, .5).
  const Matrix logits(1, 2, {0.0, 0.0});
  const std::vector<int> actions = {0};
  const std::vector<double> adv = {2.0};
  const auto result = PolicyGradientLoss(logits, actions, adv, 0.0);
  EXPECT_NEAR(result.loss, -2.0 * std::log(0.5), 1e-12);
  // dL/dz = A*(p - onehot): (2*(0.5-1), 2*0.5) = (-1, 1).
  EXPECT_NEAR(result.grad.At(0, 0), -1.0, 1e-12);
  EXPECT_NEAR(result.grad.At(0, 1), 1.0, 1e-12);
}

TEST(PolicyGradientLoss, EntropyTermLowersLossOfUniformPolicy) {
  const Matrix logits(1, 2, {0.0, 0.0});
  const std::vector<int> actions = {0};
  const std::vector<double> adv = {0.0};
  const auto with = PolicyGradientLoss(logits, actions, adv, 1.0);
  EXPECT_NEAR(with.loss, -std::log(2.0), 1e-12);
}

TEST(PolicyGradientLoss, NegativeAdvantagePushesActionDown) {
  const Matrix logits(1, 3, {0.0, 0.0, 0.0});
  const std::vector<int> actions = {1};
  const std::vector<double> adv = {-1.5};
  const auto result = PolicyGradientLoss(logits, actions, adv, 0.0);
  // Gradient ascent direction on the chosen logit is negative advantage:
  // dL/dz_1 = A*(p-1) = -1.5*(1/3-1) > 0 pushes z_1 down on a descent step.
  EXPECT_GT(result.grad.At(0, 1), 0.0);
  EXPECT_LT(result.grad.At(0, 0), 0.0);
}

TEST(PolicyGradientLoss, GradientMatchesFiniteDifferencesThroughMlp) {
  Rng rng(17);
  Sequential mlp = MakeMlp(5, {12}, 4, rng);
  Matrix x(3, 5);
  for (double& v : x.values()) v = rng.Uniform(-1, 1);
  const std::vector<int> actions = {0, 3, 2};
  const std::vector<double> adv = {1.2, -0.4, 0.8};
  const double entropy_coef = 0.25;
  auto loss_fn = [&] {
    return PolicyGradientLoss(mlp.Forward(x), actions, adv, entropy_coef)
        .loss;
  };
  auto backward_fn = [&] {
    ZeroGrads(mlp.Params());
    const auto result =
        PolicyGradientLoss(mlp.Forward(x), actions, adv, entropy_coef);
    mlp.Backward(result.grad);
  };
  const auto check = CheckGradients(mlp.Params(), loss_fn, backward_fn);
  EXPECT_LT(check.max_rel_error, 1e-5);
}

TEST(PolicyGradientLoss, ValidatesInputs) {
  const Matrix logits(2, 3);
  const std::vector<int> one_action = {0};
  const std::vector<double> two_adv = {1.0, 1.0};
  EXPECT_THROW(PolicyGradientLoss(logits, one_action, two_adv, 0.0),
               std::invalid_argument);
  const std::vector<int> bad_action = {0, 7};
  EXPECT_THROW(PolicyGradientLoss(logits, bad_action, two_adv, 0.0),
               std::invalid_argument);
}

TEST(MseLoss, ZeroForPerfectPrediction) {
  const Matrix pred(2, 1, {1.0, 2.0});
  const auto result = MseLoss(pred, pred);
  EXPECT_DOUBLE_EQ(result.loss, 0.0);
  for (double g : result.grad.values()) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(MseLoss, MatchesClosedForm) {
  const Matrix pred(2, 1, {1.0, 3.0});
  const Matrix target(2, 1, {0.0, 1.0});
  const auto result = MseLoss(pred, target);
  // mean over elements of 0.5*d^2: 0.5*(1 + 4)/2 = 1.25.
  EXPECT_DOUBLE_EQ(result.loss, 1.25);
  EXPECT_DOUBLE_EQ(result.grad.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(result.grad.At(1, 0), 1.0);
}

TEST(MseLoss, GradientMatchesFiniteDifferencesThroughMlp) {
  Rng rng(19);
  Sequential mlp = MakeMlp(4, {8}, 1, rng);
  Matrix x(6, 4);
  for (double& v : x.values()) v = rng.Uniform(-1, 1);
  Matrix target(6, 1);
  for (double& v : target.values()) v = rng.Uniform(-2, 2);
  auto loss_fn = [&] { return MseLoss(mlp.Forward(x), target).loss; };
  auto backward_fn = [&] {
    ZeroGrads(mlp.Params());
    const auto result = MseLoss(mlp.Forward(x), target);
    mlp.Backward(result.grad);
  };
  const auto check = CheckGradients(mlp.Params(), loss_fn, backward_fn);
  EXPECT_LT(check.max_rel_error, 1e-5);
}

TEST(MseLoss, RejectsShapeMismatch) {
  EXPECT_THROW(MseLoss(Matrix(2, 1), Matrix(1, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace osap::nn
