// Equivalence tests for the transposed-operand matmul kernels and the
// runtime SIMD dispatch.
//
// The backward-pass kernels (MatMulTNInto / MatMulNTInto) and the AVX2
// variants of all matmul kernels are *speed-only* transformations: every
// output element must keep the exact scalar accumulation chain of the
// reference formulation (ascending reduction index, multiply then add, no
// FMA). These tests pin that contract bitwise, across shapes chosen to hit
// every tile path (8-wide AVX2 panels, 4-wide tiles, scalar 4x4 blocks, and
// the 1x1 edge remainders).
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "nn/matrix.h"
#include "nn/simd.h"
#include "util/rng.h"

namespace osap::nn {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.values()) v = rng.Uniform(-2.0, 2.0);
  return m;
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
}

struct Shape {
  std::size_t m, k, n;
};

// Shapes exercising the panel widths and remainders of every kernel:
// n/p in {1..4} hit the scalar/1x1 edges, 8/9/16/17 hit the 8-wide AVX2
// panels plus 4-wide and 1-wide remainders; 32/40 are the production
// Pensieve trunk shapes.
const Shape kShapes[] = {
    {1, 1, 1},  {1, 7, 1},   {2, 3, 2},   {3, 5, 4},    {4, 4, 8},
    {5, 3, 9},  {7, 13, 11}, {8, 16, 16}, {13, 9, 17},  {29, 6, 23},
    {6, 240, 32}, {240, 256, 32}, {240, 32, 6}, {17, 31, 40},
};

TEST(MatrixKernelTest, MatMulTNMatchesTransposedReference) {
  Rng rng(0xBEEF01);
  for (const Shape& s : kShapes) {
    // TN: a is k x m ("x"), b is k x n ("dy"); out = a^T b is m x n.
    const Matrix a = RandomMatrix(s.k, s.m, rng);
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    const Matrix expected = a.Transposed().MatMul(b);
    Matrix got;
    a.MatMulTNInto(b, got);
    ExpectBitIdentical(expected, got);
  }
}

TEST(MatrixKernelTest, MatMulTNAccumulateMatchesAddInPlace) {
  Rng rng(0xBEEF02);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.k, s.m, rng);
    const Matrix b = RandomMatrix(s.k, s.n, rng);
    const Matrix seed = RandomMatrix(s.m, s.n, rng);

    Matrix expected = seed;
    expected.AddInPlace(a.Transposed().MatMul(b));

    Matrix got = seed;
    a.MatMulTNInto(b, got, /*accumulate=*/true);
    ExpectBitIdentical(expected, got);
  }
}

TEST(MatrixKernelTest, MatMulNTMatchesTransposedReference) {
  Rng rng(0xBEEF03);
  for (const Shape& s : kShapes) {
    // NT: a is m x k ("dy"), b is n x k ("W"); out = a b^T is m x n.
    const Matrix a = RandomMatrix(s.m, s.k, rng);
    const Matrix b = RandomMatrix(s.n, s.k, rng);
    const Matrix expected = a.MatMul(b.Transposed());
    Matrix got;
    a.MatMulNTInto(b, got);
    ExpectBitIdentical(expected, got);
  }
}

TEST(MatrixKernelTest, TNRejectsMismatchedRows) {
  Matrix a(3, 2);
  Matrix b(4, 2);
  Matrix out;
  EXPECT_THROW(a.MatMulTNInto(b, out), std::exception);
}

TEST(MatrixKernelTest, NTRejectsMismatchedCols) {
  Matrix a(3, 2);
  Matrix b(4, 3);
  Matrix out;
  EXPECT_THROW(a.MatMulNTInto(b, out), std::exception);
}

// Scalar and AVX2 dispatch paths must agree bit for bit; the dispatch (and
// the OSAP_NO_AVX2 env override that flips it) may only ever change speed.
class SimdDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetSimdForTest(); }
};

TEST_F(SimdDispatchTest, ScalarAndAvx2PathsAgreeBitForBit) {
  ForceSimdForTest(true);
  if (!UseAvx2()) GTEST_SKIP() << "CPU lacks AVX2; single-path machine";

  Rng rng(0xBEEF04);
  for (const Shape& s : kShapes) {
    const Matrix x = RandomMatrix(s.k, s.m, rng);
    const Matrix dy = RandomMatrix(s.k, s.n, rng);
    const Matrix w = RandomMatrix(s.m, s.n, rng);
    const Matrix seed = RandomMatrix(s.m, s.n, rng);

    ForceSimdForTest(false);
    ASSERT_FALSE(UseAvx2());
    Matrix nn_s;
    x.Transposed().MatMulInto(dy, nn_s);  // plain NN product, scalar
    Matrix tn_s;
    x.MatMulTNInto(dy, tn_s);
    Matrix acc_s = seed;
    x.MatMulTNInto(dy, acc_s, /*accumulate=*/true);
    Matrix nt_s;
    dy.MatMulNTInto(w, nt_s);

    ForceSimdForTest(true);
    ASSERT_TRUE(UseAvx2());
    Matrix nn_v;
    x.Transposed().MatMulInto(dy, nn_v);
    Matrix tn_v;
    x.MatMulTNInto(dy, tn_v);
    Matrix acc_v = seed;
    x.MatMulTNInto(dy, acc_v, /*accumulate=*/true);
    Matrix nt_v;
    dy.MatMulNTInto(w, nt_v);

    ExpectBitIdentical(nn_s, nn_v);
    ExpectBitIdentical(tn_s, tn_v);
    ExpectBitIdentical(acc_s, acc_v);
    ExpectBitIdentical(nt_s, nt_v);
  }
}

}  // namespace
}  // namespace osap::nn
