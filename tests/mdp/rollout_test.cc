#include "mdp/rollout.h"

#include <gtest/gtest.h>

#include "testing/toy_env.h"

namespace osap::mdp {
namespace {

TEST(Rollout, RunsUntilEnvironmentTerminates) {
  testing::FlagBandit env(10);
  testing::OraclePolicy policy;
  const Trajectory t = Rollout(env, policy);
  EXPECT_EQ(t.Length(), 10u);
  EXPECT_DOUBLE_EQ(t.TotalReward(), 10.0);
}

TEST(Rollout, ConstantPolicyGetsHalfTheReward) {
  testing::FlagBandit env(10);
  testing::ConstantPolicy policy(0);
  const Trajectory t = Rollout(env, policy);
  EXPECT_DOUBLE_EQ(t.TotalReward(), 5.0);  // flag==0 on even steps
}

TEST(Rollout, MaxStepsCapsEpisode) {
  testing::FlagBandit env(100);
  testing::OraclePolicy policy;
  const Trajectory t = Rollout(env, policy, 7);
  EXPECT_EQ(t.Length(), 7u);
}

TEST(Rollout, RecordsStatesAndActionsInOrder) {
  testing::FlagBandit env(4);
  testing::OraclePolicy policy;
  const Trajectory t = Rollout(env, policy);
  ASSERT_EQ(t.Length(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    // State flag alternates 0,1,0,1; the oracle mirrors it.
    EXPECT_EQ(t.transitions[i].action, static_cast<int>(i % 2));
    EXPECT_DOUBLE_EQ(t.transitions[i].state[1],
                     static_cast<double>(i % 2));
    EXPECT_DOUBLE_EQ(t.transitions[i].reward, 1.0);
  }
}

TEST(Rollout, ResetsEnvironmentEachCall) {
  testing::FlagBandit env(5);
  testing::OraclePolicy policy;
  const Trajectory t1 = Rollout(env, policy);
  const Trajectory t2 = Rollout(env, policy);
  EXPECT_EQ(t1.Length(), t2.Length());
  EXPECT_DOUBLE_EQ(t1.TotalReward(), t2.TotalReward());
}

}  // namespace
}  // namespace osap::mdp
