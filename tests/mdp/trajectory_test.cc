#include "mdp/trajectory.h"

#include <gtest/gtest.h>

#include <cmath>

namespace osap::mdp {
namespace {

TEST(Trajectory, TotalRewardSumsTransitions) {
  Trajectory t;
  t.transitions.push_back({{0.0}, 0, 1.0});
  t.transitions.push_back({{0.0}, 1, -2.5});
  t.transitions.push_back({{0.0}, 0, 4.0});
  EXPECT_DOUBLE_EQ(t.TotalReward(), 2.5);
  EXPECT_EQ(t.Length(), 3u);
  EXPECT_FALSE(t.Empty());
}

TEST(Trajectory, EmptyTrajectory) {
  Trajectory t;
  EXPECT_DOUBLE_EQ(t.TotalReward(), 0.0);
  EXPECT_TRUE(t.Empty());
}

TEST(DiscountedReturns, UndiscountedIsSuffixSum) {
  const std::vector<double> rewards = {1.0, 2.0, 3.0};
  const auto returns = DiscountedReturns(rewards, 1.0);
  EXPECT_DOUBLE_EQ(returns[0], 6.0);
  EXPECT_DOUBLE_EQ(returns[1], 5.0);
  EXPECT_DOUBLE_EQ(returns[2], 3.0);
}

TEST(DiscountedReturns, GammaZeroIsImmediateReward) {
  const std::vector<double> rewards = {1.0, 2.0, 3.0};
  const auto returns = DiscountedReturns(rewards, 0.0);
  EXPECT_DOUBLE_EQ(returns[0], 1.0);
  EXPECT_DOUBLE_EQ(returns[1], 2.0);
  EXPECT_DOUBLE_EQ(returns[2], 3.0);
}

TEST(DiscountedReturns, MatchesClosedFormGeometricSeries) {
  // Constant reward 1 with gamma: G_0 = (1 - gamma^T) / (1 - gamma).
  const double gamma = 0.9;
  const std::vector<double> rewards(10, 1.0);
  const auto returns = DiscountedReturns(rewards, gamma);
  const double expected = (1.0 - std::pow(gamma, 10)) / (1.0 - gamma);
  EXPECT_NEAR(returns[0], expected, 1e-12);
}

TEST(DiscountedReturns, BootstrapExtendsTheHorizon) {
  const std::vector<double> rewards = {1.0};
  const auto returns = DiscountedReturns(rewards, 0.5, 10.0);
  EXPECT_DOUBLE_EQ(returns[0], 1.0 + 0.5 * 10.0);
}

TEST(DiscountedReturns, RecursiveConsistency) {
  const std::vector<double> rewards = {0.3, -1.2, 2.0, 0.7};
  const double gamma = 0.97;
  const auto returns = DiscountedReturns(rewards, gamma);
  for (std::size_t t = 0; t + 1 < rewards.size(); ++t) {
    EXPECT_NEAR(returns[t], rewards[t] + gamma * returns[t + 1], 1e-12);
  }
}

TEST(DiscountedReturns, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(DiscountedReturns(std::vector<double>{}, 0.9).empty());
}

TEST(DiscountedReturns, RejectsGammaOutOfRange) {
  const std::vector<double> rewards = {1.0};
  EXPECT_THROW(DiscountedReturns(rewards, 1.5), std::invalid_argument);
  EXPECT_THROW(DiscountedReturns(rewards, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace osap::mdp
