// Thread-sanitizer smoke for the DecisionService shard fan-out.
//
// Runs mixed in-distribution / out-of-distribution viewers through a
// 4-shard service on a private 3-worker pool (the shared pool may have no
// workers on a small CI host) and checks the answers against a serial
// service (max_workers = 0) round for round. Built into its own binary so
// the sanitize ctest label can select it; under TSan this exercises the
// claim that shards touch disjoint sessions and output slots.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "abr/abr_environment.h"
#include "abr/video.h"
#include "core/novelty_detector.h"
#include "policies/pensieve_net.h"
#include "serve/decision_service.h"
#include "serve/serving_model.h"
#include "traces/generators.h"
#include "util/thread_pool.h"

namespace osap::serve {
namespace {

constexpr std::size_t kSessions = 12;
constexpr std::size_t kRounds = 40;

struct SmokeWorld {
  abr::AbrStateLayout layout;
  abr::VideoSpec video = abr::MakeEnvivioLikeVideo(1);
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents;
  std::shared_ptr<core::NoveltyDetector> novelty;
  std::vector<traces::Trace> traces;
};

SmokeWorld MakeSmokeWorld() {
  SmokeWorld w;
  policies::PensieveNetConfig net;
  net.conv_filters = 2;
  net.hidden = 6;
  Rng rng(5);
  for (std::size_t m = 0; m < 3; ++m) {
    w.agents.push_back(std::make_shared<nn::ActorCriticNet>(
        policies::MakePensieveActorCritic(w.layout, net, rng)));
  }
  const auto id_gen = traces::MakeNorway3gGenerator();
  const auto ood_gen = traces::MakeBelgium4gGenerator();
  Rng trace_rng(7);
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto& gen = i % 2 == 0 ? id_gen : ood_gen;
    w.traces.push_back(gen->Generate(trace_rng, 150.0, i));
  }
  core::NoveltyDetectorConfig nd;
  nd.throughput_window = 3;
  nd.k = 2;
  std::vector<std::vector<double>> features;
  for (std::size_t i = 0; i < 3; ++i) {
    const traces::Trace t = id_gen->Generate(trace_rng, 300.0, 50 + i);
    const auto f = core::NoveltyDetector::ExtractFeatures(t.samples(), nd);
    features.insert(features.end(), f.begin(), f.end());
  }
  w.novelty = std::make_shared<core::NoveltyDetector>(nd, w.layout);
  w.novelty->Fit(features);
  return w;
}

std::shared_ptr<const ServingModel> SmokeModel(const SmokeWorld& w,
                                               Signal signal) {
  core::SafeAgentConfig safety;
  safety.trigger.l = 2;
  safety.trigger.k = 4;
  if (signal == Signal::kNovelty) {
    safety.trigger.mode = core::TriggerMode::kBinary;
    return ServingModel::Novelty(w.agents, w.novelty, w.video, w.layout,
                                 safety);
  }
  safety.trigger.mode = core::TriggerMode::kWindowVariance;
  safety.trigger.alpha = 1e-4;
  return ServingModel::AgentEnsemble(w.agents, 1, w.video, w.layout, safety);
}

/// Drives the parallel and serial services in lockstep over the same
/// closed-loop sessions and compares every answer.
void RunSmoke(const SmokeWorld& w, Signal signal) {
  util::ThreadPool pool(3);
  DecisionServiceConfig parallel_config;
  parallel_config.shard_count = 4;
  parallel_config.pool = &pool;
  DecisionService parallel(SmokeModel(w, signal), parallel_config);

  DecisionServiceConfig serial_config;
  serial_config.shard_count = 4;
  serial_config.max_workers = 0;  // all shards on the calling thread
  DecisionService serial(SmokeModel(w, signal), serial_config);

  std::vector<DecisionService::SessionId> ids(kSessions);
  std::vector<abr::AbrEnvironment> envs;
  envs.reserve(kSessions);
  std::vector<mdp::State> states(kSessions);
  std::vector<bool> done(kSessions, false);
  for (std::size_t i = 0; i < kSessions; ++i) {
    ids[i] = parallel.OpenSession();
    const auto serial_id = serial.OpenSession();
    ASSERT_EQ(ids[i], serial_id);
    envs.emplace_back(w.video, abr::AbrEnvironmentConfig{});
    envs[i].SetFixedTrace(w.traces[i]);
    states[i] = envs[i].Reset();
  }

  std::vector<DecisionService::Request> requests;
  std::vector<mdp::Action> parallel_out;
  std::vector<mdp::Action> serial_out;
  std::vector<std::size_t> request_session;
  for (std::size_t round = 0; round < kRounds; ++round) {
    requests.clear();
    request_session.clear();
    for (std::size_t i = 0; i < kSessions; ++i) {
      if (done[i]) continue;
      requests.push_back({ids[i], &states[i]});
      request_session.push_back(i);
    }
    if (requests.empty()) break;
    parallel_out.resize(requests.size());
    serial_out.resize(requests.size());
    parallel.DecideBatch(requests, parallel_out);
    serial.DecideBatch(requests, serial_out);
    ASSERT_EQ(parallel_out, serial_out) << "round " << round;
    for (std::size_t j = 0; j < requests.size(); ++j) {
      const std::size_t i = request_session[j];
      mdp::StepResult result = envs[i].Step(parallel_out[j]);
      states[i] = std::move(result.next_state);
      done[i] = result.done;
    }
  }
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_EQ(parallel.Defaulted(ids[i]), serial.Defaulted(ids[i]));
    EXPECT_EQ(parallel.StepCount(ids[i]), serial.StepCount(ids[i]));
  }
}

TEST(ServeSmoke, NoveltyShardsRaceFree) {
  RunSmoke(MakeSmokeWorld(), Signal::kNovelty);
}

TEST(ServeSmoke, AgentEnsembleShardsRaceFree) {
  RunSmoke(MakeSmokeWorld(), Signal::kAgentEnsemble);
}

}  // namespace
}  // namespace osap::serve
