// Thread-sanitizer smoke for the DecisionService persistent shard workers.
//
// Runs mixed in-distribution / out-of-distribution viewers through a
// 4-shard service whose shards 1..3 live on persistent worker threads
// (epoch-ticket handoff) and checks the answers against a serial service
// (shard_workers = false) round for round. A second scenario churns the
// session set - viewers joining and leaving between epochs - while the
// workers stay parked, exercising the claim that the epoch ticket's
// release/acquire edge publishes membership changes to the worker that
// owns the session's shard. Built into its own binary so the sanitize
// ctest label can select it; under TSan this exercises the claim that
// shards touch disjoint sessions and output slots and that the ring/
// ticket handoff is properly ordered.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "abr/abr_environment.h"
#include "abr/video.h"
#include "core/novelty_detector.h"
#include "policies/pensieve_net.h"
#include "serve/decision_service.h"
#include "serve/serving_model.h"
#include "traces/generators.h"

namespace osap::serve {
namespace {

constexpr std::size_t kSessions = 12;
constexpr std::size_t kRounds = 40;

struct SmokeWorld {
  abr::AbrStateLayout layout;
  abr::VideoSpec video = abr::MakeEnvivioLikeVideo(1);
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents;
  std::shared_ptr<core::NoveltyDetector> novelty;
  std::vector<traces::Trace> traces;
};

SmokeWorld MakeSmokeWorld() {
  SmokeWorld w;
  policies::PensieveNetConfig net;
  net.conv_filters = 2;
  net.hidden = 6;
  Rng rng(5);
  for (std::size_t m = 0; m < 3; ++m) {
    w.agents.push_back(std::make_shared<nn::ActorCriticNet>(
        policies::MakePensieveActorCritic(w.layout, net, rng)));
  }
  const auto id_gen = traces::MakeNorway3gGenerator();
  const auto ood_gen = traces::MakeBelgium4gGenerator();
  Rng trace_rng(7);
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto& gen = i % 2 == 0 ? id_gen : ood_gen;
    w.traces.push_back(gen->Generate(trace_rng, 150.0, i));
  }
  core::NoveltyDetectorConfig nd;
  nd.throughput_window = 3;
  nd.k = 2;
  std::vector<std::vector<double>> features;
  for (std::size_t i = 0; i < 3; ++i) {
    const traces::Trace t = id_gen->Generate(trace_rng, 300.0, 50 + i);
    const auto f = core::NoveltyDetector::ExtractFeatures(t.samples(), nd);
    features.insert(features.end(), f.begin(), f.end());
  }
  w.novelty = std::make_shared<core::NoveltyDetector>(nd, w.layout);
  w.novelty->Fit(features);
  return w;
}

std::shared_ptr<const ServingModel> SmokeModel(const SmokeWorld& w,
                                               Signal signal) {
  core::SafeAgentConfig safety;
  safety.trigger.l = 2;
  safety.trigger.k = 4;
  if (signal == Signal::kNovelty) {
    safety.trigger.mode = core::TriggerMode::kBinary;
    return ServingModel::Novelty(w.agents, w.novelty, w.video, w.layout,
                                 safety);
  }
  safety.trigger.mode = core::TriggerMode::kWindowVariance;
  safety.trigger.alpha = 1e-4;
  return ServingModel::AgentEnsemble(w.agents, 1, w.video, w.layout, safety);
}

/// Drives the worker-backed and serial services in lockstep over the same
/// closed-loop sessions and compares every answer.
void RunSmoke(const SmokeWorld& w, Signal signal) {
  DecisionServiceConfig parallel_config;
  parallel_config.shard_count = 4;
  parallel_config.shard_workers = true;
  DecisionService parallel(SmokeModel(w, signal), parallel_config);
  ASSERT_EQ(parallel.WorkerCount(), 3u);

  DecisionServiceConfig serial_config;
  serial_config.shard_count = 4;
  serial_config.shard_workers = false;  // all shards on the calling thread
  DecisionService serial(SmokeModel(w, signal), serial_config);
  ASSERT_EQ(serial.WorkerCount(), 0u);

  std::vector<DecisionService::SessionId> ids(kSessions);
  std::vector<abr::AbrEnvironment> envs;
  envs.reserve(kSessions);
  std::vector<mdp::State> states(kSessions);
  std::vector<bool> done(kSessions, false);
  for (std::size_t i = 0; i < kSessions; ++i) {
    ids[i] = parallel.OpenSession();
    const auto serial_id = serial.OpenSession();
    ASSERT_EQ(ids[i], serial_id);
    envs.emplace_back(w.video, abr::AbrEnvironmentConfig{});
    envs[i].SetFixedTrace(w.traces[i]);
    states[i] = envs[i].Reset();
  }

  std::vector<DecisionService::Request> requests;
  std::vector<mdp::Action> parallel_out;
  std::vector<mdp::Action> serial_out;
  std::vector<std::size_t> request_session;
  for (std::size_t round = 0; round < kRounds; ++round) {
    requests.clear();
    request_session.clear();
    for (std::size_t i = 0; i < kSessions; ++i) {
      if (done[i]) continue;
      requests.push_back({ids[i], &states[i]});
      request_session.push_back(i);
    }
    if (requests.empty()) break;
    parallel_out.resize(requests.size());
    serial_out.resize(requests.size());
    parallel.DecideBatch(requests, parallel_out);
    serial.DecideBatch(requests, serial_out);
    ASSERT_EQ(parallel_out, serial_out) << "round " << round;
    for (std::size_t j = 0; j < requests.size(); ++j) {
      const std::size_t i = request_session[j];
      mdp::StepResult result = envs[i].Step(parallel_out[j]);
      states[i] = std::move(result.next_state);
      done[i] = result.done;
    }
  }
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_EQ(parallel.Defaulted(ids[i]), serial.Defaulted(ids[i]));
    EXPECT_EQ(parallel.StepCount(ids[i]), serial.StepCount(ids[i]));
  }
}

TEST(ServeSmoke, NoveltyShardsRaceFree) {
  RunSmoke(MakeSmokeWorld(), Signal::kNovelty);
}

TEST(ServeSmoke, AgentEnsembleShardsRaceFree) {
  RunSmoke(MakeSmokeWorld(), Signal::kAgentEnsemble);
}

/// Session churn between epochs while the workers persist: every few
/// rounds one viewer leaves (its slot is recycled by a fresh viewer on a
/// different trace) and an extra viewer joins, so ring sizes grow, shard
/// membership shifts, and recycled SessionContexts cross the epoch
/// ticket into the worker threads. Answers must still match the serial
/// service performing the identical churn.
TEST(ServeSmoke, SessionChurnAcrossEpochs) {
  const SmokeWorld w = MakeSmokeWorld();
  DecisionServiceConfig parallel_config;
  parallel_config.shard_count = 4;
  parallel_config.shard_workers = true;
  DecisionService parallel(SmokeModel(w, Signal::kNovelty), parallel_config);
  DecisionServiceConfig serial_config;
  serial_config.shard_count = 4;
  serial_config.shard_workers = false;
  DecisionService serial(SmokeModel(w, Signal::kNovelty), serial_config);

  // One live viewer per id; churn keeps both services' id assignments in
  // lockstep so the comparison stays exact.
  struct Viewer {
    DecisionService::SessionId id = 0;
    abr::AbrEnvironment env;
    mdp::State state;
  };
  std::vector<Viewer> viewers;
  std::size_t next_trace = 0;
  const auto join = [&] {
    Viewer v{parallel.OpenSession(),
             abr::AbrEnvironment(w.video, abr::AbrEnvironmentConfig{}),
             {}};
    const auto serial_id = serial.OpenSession();
    ASSERT_EQ(v.id, serial_id);
    v.env.SetFixedTrace(w.traces[next_trace++ % w.traces.size()]);
    v.state = v.env.Reset();
    viewers.push_back(std::move(v));
  };
  for (std::size_t i = 0; i < 6; ++i) join();

  std::vector<DecisionService::Request> requests;
  std::vector<mdp::Action> parallel_out;
  std::vector<mdp::Action> serial_out;
  for (std::size_t round = 0; round < kRounds; ++round) {
    if (round % 5 == 3 && !viewers.empty()) {
      // One viewer leaves mid-run; both services retire the same id.
      const std::size_t leaver = round % viewers.size();
      parallel.CloseSession(viewers[leaver].id);
      serial.CloseSession(viewers[leaver].id);
      viewers.erase(viewers.begin() + static_cast<std::ptrdiff_t>(leaver));
    }
    if (round % 4 == 1) join();  // and another joins (may recycle the slot)
    requests.clear();
    for (Viewer& v : viewers) requests.push_back({v.id, &v.state});
    parallel_out.resize(requests.size());
    serial_out.resize(requests.size());
    parallel.DecideBatch(requests, parallel_out);
    serial.DecideBatch(requests, serial_out);
    ASSERT_EQ(parallel_out, serial_out) << "round " << round;
    for (std::size_t j = 0; j < viewers.size(); ++j) {
      mdp::StepResult result = viewers[j].env.Step(parallel_out[j]);
      viewers[j].state = std::move(result.next_state);
      if (result.done) viewers[j].state = viewers[j].env.Reset();
    }
  }
  EXPECT_EQ(parallel.ActiveSessionCount(), serial.ActiveSessionCount());
}

}  // namespace
}  // namespace osap::serve
