// DecisionService online-calibration arm (DESIGN.md §11).
//
// Three properties: (1) before the first sketch publication the online
// arm is BIT-IDENTICAL to the frozen service (the live threshold starts
// at the model's trigger alpha, and SafetyObserveLive is the same
// arithmetic SafetyObserve forwards to); (2) once lanes publish at the
// refresh cadence, the live threshold moves to the sketches' quantile
// and the coverage counters advance; (3) the config is validated up
// front (window-variance triggers only, epsilon in (0,1)).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "abr/abr_environment.h"
#include "abr/video.h"
#include "core/ensemble_estimators.h"
#include "policies/pensieve_net.h"
#include "serve/decision_service.h"
#include "serve/serving_model.h"
#include "traces/generators.h"

namespace osap::serve {
namespace {

constexpr std::size_t kSessions = 6;
constexpr std::size_t kEnsemble = 3;
constexpr std::size_t kDiscard = 1;
constexpr std::size_t kTriggerK = 4;
constexpr std::size_t kTriggerL = 2;

struct World {
  abr::AbrStateLayout layout;
  abr::VideoSpec video = abr::MakeEnvivioLikeVideo(1);
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents;
  std::vector<traces::Trace> traces;
};

const World& SharedWorld() {
  static const World* world = [] {
    auto* w = new World();
    policies::PensieveNetConfig net;
    net.conv_filters = 3;
    net.hidden = 8;
    Rng rng(41);
    for (std::size_t m = 0; m < kEnsemble; ++m) {
      w->agents.push_back(std::make_shared<nn::ActorCriticNet>(
          policies::MakePensieveActorCritic(w->layout, net, rng)));
    }
    const auto id_gen = traces::MakeNorway3gGenerator();
    const auto ood_gen = traces::MakeBelgium4gGenerator();
    Rng trace_rng(43);
    for (std::size_t i = 0; i < kSessions; ++i) {
      const auto& gen = i % 2 == 0 ? id_gen : ood_gen;
      w->traces.push_back(gen->Generate(trace_rng, 200.0, i));
    }
    return w;
  }();
  return *world;
}

std::shared_ptr<const ServingModel> UpiModel(const World& w, double alpha) {
  core::SafeAgentConfig config;
  config.trigger.mode = core::TriggerMode::kWindowVariance;
  config.trigger.k = kTriggerK;
  config.trigger.l = kTriggerL;
  config.trigger.alpha = alpha;
  return ServingModel::AgentEnsemble(w.agents, kDiscard, w.video, w.layout,
                                     config);
}

/// Streams every session to completion through lockstep DecideBatch
/// rounds; returns each session's action sequence.
std::vector<std::vector<mdp::Action>> RunSessions(DecisionService& service,
                                          const World& w) {
  std::vector<DecisionService::SessionId> ids(kSessions);
  std::vector<abr::AbrEnvironment> envs;
  std::vector<mdp::State> states(kSessions);
  std::vector<bool> done(kSessions, false);
  for (std::size_t i = 0; i < kSessions; ++i) {
    ids[i] = service.OpenSession();
    envs.emplace_back(w.video, abr::AbrEnvironmentConfig{});
    envs[i].SetFixedTrace(w.traces[i]);
    states[i] = envs[i].Reset();
  }
  std::vector<std::vector<mdp::Action>> actions(kSessions);
  std::vector<DecisionService::Request> requests;
  std::vector<mdp::Action> answers;
  std::vector<std::size_t> of;
  while (true) {
    requests.clear();
    of.clear();
    for (std::size_t i = 0; i < kSessions; ++i) {
      if (done[i]) continue;
      requests.push_back({ids[i], &states[i]});
      of.push_back(i);
    }
    if (requests.empty()) break;
    answers.resize(requests.size());
    service.DecideBatch(requests, answers);
    for (std::size_t j = 0; j < requests.size(); ++j) {
      const std::size_t i = of[j];
      actions[i].push_back(answers[j]);
      mdp::StepResult r = envs[i].Step(answers[j]);
      states[i] = std::move(r.next_state);
      done[i] = r.done;
    }
  }
  return actions;
}

TEST(OnlineCalibration, BitIdenticalToFrozenServiceBeforeFirstPublish) {
  const World& w = SharedWorld();
  const double alpha = 1e-4;  // fires on some sessions, not all

  DecisionServiceConfig frozen_cfg;
  frozen_cfg.shard_count = 2;
  DecisionService frozen(UpiModel(w, alpha), frozen_cfg);
  const auto expected = RunSessions(frozen, w);

  DecisionServiceConfig online_cfg;
  online_cfg.shard_count = 2;
  online_cfg.online_calibration = true;
  // Publication pushed past the run's epoch count: the live threshold
  // stays at the frozen alpha for the whole run.
  online_cfg.calibration_refresh_epochs = 1u << 30;
  DecisionService online(UpiModel(w, alpha), online_cfg);
  EXPECT_TRUE(online.OnlineCalibration());
  EXPECT_EQ(online.LiveAlpha(), alpha);
  const auto actual = RunSessions(online, w);

  EXPECT_EQ(actual, expected);
  EXPECT_EQ(online.LiveAlpha(), alpha);  // never published
  // Counters publish with the sketches; none happened.
  EXPECT_EQ(online.CalibrationObservations(), 0u);
}

TEST(OnlineCalibration, PublishesSketchQuantileAndCoverageCounters) {
  const World& w = SharedWorld();
  const double frozen_alpha = 1e-4;

  DecisionServiceConfig cfg;
  cfg.shard_count = 2;
  cfg.online_calibration = true;
  cfg.calibration_miscoverage = 0.25;
  cfg.calibration_window = 64;
  cfg.calibration_refresh_epochs = 2;  // publish early and often
  DecisionService service(UpiModel(w, frozen_alpha), cfg);
  RunSessions(service, w);

  // Hundreds of decision epochs ran: every lane published, the counters
  // moved, and the live threshold is now the sketches' quantile - a real
  // full-window variance, not the frozen seed.
  EXPECT_GT(service.CalibrationObservations(), 0u);
  EXPECT_GE(service.CalibrationObservations(),
            service.CalibrationExceedances());
  EXPECT_NE(service.LiveAlpha(), frozen_alpha);
  EXPECT_GE(service.LiveAlpha(), 0.0);

  // The published exceedance share is a plausible miscoverage estimate
  // (not degenerate all-or-nothing once the threshold warmed up).
  const double rate =
      static_cast<double>(service.CalibrationExceedances()) /
      static_cast<double>(service.CalibrationObservations());
  EXPECT_GE(rate, 0.0);
  EXPECT_LT(rate, 0.9);
}

TEST(OnlineCalibration, MemoryStatsCountSketchScratch) {
  const World& w = SharedWorld();
  DecisionServiceConfig cfg;
  cfg.shard_count = 2;
  cfg.online_calibration = true;
  DecisionService with(UpiModel(w, 1e-4), cfg);
  DecisionServiceConfig plain_cfg;
  plain_cfg.shard_count = 2;
  DecisionService without(UpiModel(w, 1e-4), plain_cfg);
  EXPECT_GT(with.MemoryStats().scratch_bytes,
            without.MemoryStats().scratch_bytes);
}

TEST(OnlineCalibration, RejectsBinaryTriggerAndBadConfig) {
  const World& w = SharedWorld();
  core::SafeAgentConfig binary;
  binary.trigger.mode = core::TriggerMode::kBinary;
  binary.trigger.l = kTriggerL;
  auto nd_like = ServingModel::AgentEnsemble(w.agents, kDiscard, w.video,
                                             w.layout, binary);
  DecisionServiceConfig cfg;
  cfg.online_calibration = true;
  EXPECT_THROW(DecisionService(nd_like, cfg), std::invalid_argument);

  DecisionServiceConfig bad_eps;
  bad_eps.online_calibration = true;
  bad_eps.calibration_miscoverage = 1.5;
  EXPECT_THROW(DecisionService(UpiModel(w, 1e-4), bad_eps),
               std::invalid_argument);

  DecisionServiceConfig zero_window;
  zero_window.online_calibration = true;
  zero_window.calibration_window = 0;
  EXPECT_THROW(DecisionService(UpiModel(w, 1e-4), zero_window),
               std::invalid_argument);
}

}  // namespace
}  // namespace osap::serve
