// Session churn at scale: 10k+ open/close/recycle cycles through a
// worker-backed DecisionService, checked against an independent
// sequential mirror (a fresh NoveltyDetector + SafetyCore per session -
// the pre-serving stack). Pins the slab/SoA bookkeeping the memory diet
// introduced:
//   - recycled slots start fresh (no stale trigger or extractor state
//     leaks from the previous occupant - the mirror would diverge),
//   - the duplicate-request guard (last_round) survives slot recycling,
//   - the slot registry is bounded by the peak live population, not the
//     total number of sessions ever opened, and
//   - extractor slabs are trimmed once a population spike recedes.
// Rides in the serve_smoke_tests binary so `ctest -L sanitize` runs it
// under TSan (epoch-ticket handoff) and ASan (slab lifetime).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "abr/video.h"
#include "core/novelty_detector.h"
#include "core/safety_core.h"
#include "policies/pensieve_net.h"
#include "serve/decision_service.h"
#include "serve/serving_model.h"
#include "traces/generators.h"
#include "util/rng.h"

namespace osap::serve {
namespace {

struct ChurnWorld {
  abr::AbrStateLayout layout;
  abr::VideoSpec video = abr::MakeEnvivioLikeVideo(1);
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents;
  std::shared_ptr<core::NoveltyDetector> novelty;
  core::SafeAgentConfig safety;
};

ChurnWorld MakeChurnWorld() {
  ChurnWorld w;
  policies::PensieveNetConfig net;
  net.conv_filters = 2;
  net.hidden = 6;
  Rng rng(11);
  w.agents.push_back(std::make_shared<nn::ActorCriticNet>(
      policies::MakePensieveActorCritic(w.layout, net, rng)));
  core::NoveltyDetectorConfig nd;
  nd.throughput_window = 3;
  nd.k = 2;
  const auto id_gen = traces::MakeNorway3gGenerator();
  Rng trace_rng(13);
  std::vector<std::vector<double>> features;
  for (std::size_t i = 0; i < 3; ++i) {
    const traces::Trace t = id_gen->Generate(trace_rng, 300.0, 90 + i);
    const auto f = core::NoveltyDetector::ExtractFeatures(t.samples(), nd);
    features.insert(features.end(), f.begin(), f.end());
  }
  w.novelty = std::make_shared<core::NoveltyDetector>(nd, w.layout);
  w.novelty->Fit(features);
  w.safety.trigger.mode = core::TriggerMode::kBinary;
  w.safety.trigger.l = 2;
  return w;
}

/// The pre-serving sequential stack for one session: what the service's
/// per-slot state must behave like if recycling is leak-free.
struct Mirror {
  explicit Mirror(const ChurnWorld& w)
      : detector(*w.novelty), safety(w.safety) {
    detector.Reset();
  }
  core::NoveltyDetector detector;
  core::SafetyCore safety;
};

TEST(SessionChurnAtScale, TenThousandRecyclesMatchFreshMirrors) {
  const ChurnWorld w = MakeChurnWorld();
  const auto model =
      ServingModel::Novelty(w.agents, w.novelty, w.video, w.layout, w.safety);
  DecisionServiceConfig config;
  config.shard_count = 4;
  config.shard_workers = true;
  config.extractor_slab_slots = 64;  // several slabs per shard at peak
  DecisionService service(model, config);

  struct Live {
    DecisionService::SessionId id = 0;
    std::unique_ptr<Mirror> mirror;
    double mean_mbps = 0.0;  // this viewer's synthetic throughput regime
  };
  std::vector<Live> live;
  Rng rng(17);
  std::size_t total_opened = 0;
  const auto join = [&] {
    Live v;
    v.id = service.OpenSession();
    EXPECT_EQ(service.StepCount(v.id), 0u)
        << "recycled slot must start fresh (open #" << total_opened << ")";
    EXPECT_FALSE(service.Defaulted(v.id));
    v.mirror = std::make_unique<Mirror>(w);
    // Half the viewers stream in-distribution-ish throughput, half far
    // out of distribution so recycled slots flip between regimes - a
    // stale extractor window or trigger streak would surface as a
    // mirror divergence on the next occupant.
    v.mean_mbps = total_opened % 2 == 0 ? 1.0 : 40.0;
    ++total_opened;
    live.push_back(std::move(v));
  };

  constexpr std::size_t kPopulation = 1000;
  constexpr std::size_t kRounds = 40;
  constexpr std::size_t kChurnPerRound = 250;
  for (std::size_t i = 0; i < kPopulation; ++i) join();

  std::vector<mdp::State> states;
  std::vector<DecisionService::Request> requests;
  std::vector<mdp::Action> out;
  std::size_t peak_live = live.size();
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Churn: a block of viewers leaves, a block joins (recycling slots).
    for (std::size_t c = 0; c < kChurnPerRound && !live.empty(); ++c) {
      const std::size_t leaver = rng.UniformInt(live.size());
      service.CloseSession(live[leaver].id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(leaver));
    }
    for (std::size_t c = 0; c < kChurnPerRound; ++c) join();
    peak_live = std::max(peak_live, live.size());

    // One decision round over every live viewer on synthetic states.
    states.assign(live.size(), mdp::State(w.layout.Size(), 0.0));
    requests.clear();
    for (std::size_t i = 0; i < live.size(); ++i) {
      const double mbps =
          std::max(0.05, rng.Normal(live[i].mean_mbps, 0.2));
      states[i][w.layout.ThroughputBegin() + w.layout.history - 1] =
          mbps / abr::AbrStateLayout::kThroughputNormMbps;
      states[i][w.layout.BufferIndex()] = 0.4;
      requests.push_back({live[i].id, &states[i]});
    }
    out.resize(requests.size());
    service.DecideBatch(requests, out);

    for (std::size_t i = 0; i < live.size(); ++i) {
      Mirror& m = *live[i].mirror;
      const double score = m.detector.Score(states[i]);
      m.safety.Observe(score);
      ASSERT_EQ(service.Defaulted(live[i].id), m.safety.Defaulted())
          << "round " << round << " viewer " << i;
      ASSERT_EQ(service.StepCount(live[i].id), m.safety.StepCount())
          << "round " << round << " viewer " << i;
    }
  }
  EXPECT_GT(total_opened, 10000u);

  // Slot reuse: the registry is bounded by the peak live population (plus
  // nothing), not by the 10k+ sessions ever opened.
  const ServiceMemoryStats stats = service.MemoryStats();
  EXPECT_EQ(stats.open_sessions, live.size());
  EXPECT_LE(stats.session_slots, peak_live + kChurnPerRound);

  // The duplicate-request guard survives recycling: close one viewer,
  // reopen (recycles its slot), and submit the id twice in one batch.
  service.CloseSession(live.back().id);
  const auto recycled = service.OpenSession();
  mdp::State state(w.layout.Size(), 0.0);
  const DecisionService::Request twice[] = {{recycled, &state},
                                            {recycled, &state}};
  mdp::Action two[2];
  EXPECT_THROW(service.DecideBatch(twice, two), std::invalid_argument);

  // Extractor slabs drain once the population recedes: close everything
  // and the trailing-slab trim should release nearly all extractor bytes.
  const std::size_t extractor_peak = stats.extractor_bytes;
  service.CloseSession(recycled);
  live.pop_back();
  for (const Live& v : live) service.CloseSession(v.id);
  const ServiceMemoryStats drained = service.MemoryStats();
  EXPECT_EQ(drained.open_sessions, 0u);
  EXPECT_LT(drained.extractor_bytes, extractor_peak / 4)
      << "wholly free slabs must be trimmed after a mass close";
}

}  // namespace
}  // namespace osap::serve
