// DecisionService equivalence and API tests.
//
// The load-bearing property of the serving path is bit-identity: for every
// uncertainty signal (U_S / U_pi / U_V) and both defaulting modes
// (kPermanent / kRevocable), the sharded micro-batched service must pick
// exactly the action sequence a sequential SafeAgent running each session
// alone would pick. The tests here drive full closed-loop sessions over a
// mix of in-distribution (Norway 3G) and out-of-distribution (Belgium 4G)
// traces and compare the two stacks step by step.
#include "serve/decision_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "abr/abr_environment.h"
#include "abr/video.h"
#include "core/ensemble_estimators.h"
#include "core/novelty_detector.h"
#include "core/safe_agent.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_net.h"
#include "policies/pensieve_policy.h"
#include "serve/serving_model.h"
#include "traces/generators.h"
#include "util/stats.h"

namespace osap::serve {
namespace {

constexpr std::size_t kSessions = 6;
constexpr std::size_t kEnsemble = 4;
constexpr std::size_t kDiscard = 1;
constexpr std::size_t kTriggerL = 2;
constexpr std::size_t kTriggerK = 4;
constexpr std::size_t kRevokeAfter = 3;

/// Trained-world fixture shared by every test in this file: a small agent
/// ensemble, a value-net ensemble, a novelty detector fitted on
/// in-distribution throughput, and a half-ID / half-OOD trace set.
struct World {
  abr::AbrStateLayout layout;
  abr::VideoSpec video = abr::MakeEnvivioLikeVideo(1);
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents;
  std::vector<std::shared_ptr<nn::CompositeNet>> value_nets;
  std::shared_ptr<core::NoveltyDetector> novelty;
  std::vector<traces::Trace> traces;
  double alpha_pi = 0.0;
  double alpha_v = 0.0;
};

std::shared_ptr<core::UncertaintyEstimator> MakeEstimator(const World& w,
                                                          Signal signal) {
  switch (signal) {
    case Signal::kNovelty: {
      // Fresh streaming state over the shared fitted OC-SVM.
      auto detector = std::make_shared<core::NoveltyDetector>(*w.novelty);
      detector->Reset();
      return detector;
    }
    case Signal::kAgentEnsemble:
      return std::make_shared<core::AgentEnsembleEstimator>(w.agents,
                                                            kDiscard);
    case Signal::kValueEnsemble:
      return std::make_shared<core::ValueEnsembleEstimator>(w.value_nets,
                                                            kDiscard);
  }
  throw std::logic_error("unreachable");
}

/// Calibrates a variance-trigger threshold from a probe run: drives every
/// trace with the deployed greedy policy, collects the k-window variances
/// of the estimator's scores and returns their 40th percentile, so the
/// trigger fires on some sessions and stays quiet on others.
double CalibratedAlpha(const World& w, Signal signal) {
  auto estimator = MakeEstimator(w, signal);
  policies::PensievePolicy deployed(w.agents.front(),
                                    policies::ActionSelection::kGreedy, 0);
  std::vector<double> variances;
  for (const traces::Trace& trace : w.traces) {
    abr::AbrEnvironment env(w.video, {});
    env.SetFixedTrace(trace);
    SlidingWindowStats window(kTriggerK);
    mdp::State state = env.Reset();
    bool done = false;
    while (!done) {
      window.Push(estimator->Score(state));
      if (window.Full()) variances.push_back(window.Variance());
      mdp::StepResult result = env.Step(deployed.SelectAction(state));
      state = std::move(result.next_state);
      done = result.done;
    }
  }
  std::sort(variances.begin(), variances.end());
  return variances[variances.size() * 2 / 5];
}

const World& SharedWorld() {
  static const World* world = [] {
    auto* w = new World();
    policies::PensieveNetConfig net;
    net.conv_filters = 3;
    net.hidden = 8;
    Rng rng(17);
    for (std::size_t m = 0; m < kEnsemble; ++m) {
      w->agents.push_back(std::make_shared<nn::ActorCriticNet>(
          policies::MakePensieveActorCritic(w->layout, net, rng)));
      w->value_nets.push_back(std::make_shared<nn::CompositeNet>(
          policies::BuildPensieveNet(w->layout, 1, net, rng)));
    }

    // Viewers alternate between the distribution the detector is fitted
    // to (Norway 3G) and an out-of-distribution network (Belgium 4G).
    const auto id_gen = traces::MakeNorway3gGenerator();
    const auto ood_gen = traces::MakeBelgium4gGenerator();
    Rng trace_rng(29);
    for (std::size_t i = 0; i < kSessions; ++i) {
      const auto& gen = i % 2 == 0 ? id_gen : ood_gen;
      w->traces.push_back(gen->Generate(trace_rng, 200.0, i));
    }

    core::NoveltyDetectorConfig nd;
    nd.throughput_window = 3;
    nd.k = 2;
    std::vector<std::vector<double>> features;
    for (std::size_t i = 0; i < 4; ++i) {
      const traces::Trace t = id_gen->Generate(trace_rng, 400.0, 100 + i);
      const auto session_features =
          core::NoveltyDetector::ExtractFeatures(t.samples(), nd);
      features.insert(features.end(), session_features.begin(),
                      session_features.end());
    }
    w->novelty = std::make_shared<core::NoveltyDetector>(nd, w->layout);
    w->novelty->Fit(features);

    w->alpha_pi = CalibratedAlpha(*w, Signal::kAgentEnsemble);
    w->alpha_v = CalibratedAlpha(*w, Signal::kValueEnsemble);
    return w;
  }();
  return *world;
}

core::SafeAgentConfig ConfigFor(const World& w, Signal signal,
                                core::DefaultingMode mode) {
  core::SafeAgentConfig config;
  config.trigger.l = kTriggerL;
  config.trigger.k = kTriggerK;
  config.mode = mode;
  config.revoke_after = kRevokeAfter;
  switch (signal) {
    case Signal::kNovelty:
      config.trigger.mode = core::TriggerMode::kBinary;
      break;
    case Signal::kAgentEnsemble:
      config.trigger.mode = core::TriggerMode::kWindowVariance;
      config.trigger.alpha = w.alpha_pi;
      break;
    case Signal::kValueEnsemble:
      config.trigger.mode = core::TriggerMode::kWindowVariance;
      config.trigger.alpha = w.alpha_v;
      break;
  }
  return config;
}

std::shared_ptr<const ServingModel> ModelFor(const World& w, Signal signal,
                                             core::SafeAgentConfig config) {
  switch (signal) {
    case Signal::kNovelty:
      return ServingModel::Novelty(w.agents, w.novelty, w.video, w.layout,
                                   config);
    case Signal::kAgentEnsemble:
      return ServingModel::AgentEnsemble(w.agents, kDiscard, w.video,
                                         w.layout, config);
    case Signal::kValueEnsemble:
      return ServingModel::ValueEnsemble(w.agents, w.value_nets, kDiscard,
                                         w.video, w.layout, config);
  }
  throw std::logic_error("unreachable");
}

struct SessionOutcome {
  std::vector<mdp::Action> actions;
  bool defaulted = false;
  std::size_t steps = 0;
  double defaulted_fraction = 0.0;
};

/// Reference arm: one sequential SafeAgent per session, run to completion.
std::vector<SessionOutcome> RunSequential(const World& w, Signal signal,
                                          core::DefaultingMode mode) {
  const core::SafeAgentConfig config = ConfigFor(w, signal, mode);
  std::vector<SessionOutcome> outcomes(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    core::SafeAgent agent(
        std::make_shared<policies::PensievePolicy>(
            w.agents.front(), policies::ActionSelection::kGreedy, 0),
        std::make_shared<policies::BufferBasedPolicy>(w.video, w.layout),
        MakeEstimator(w, signal), config);
    abr::AbrEnvironment env(w.video, {});
    env.SetFixedTrace(w.traces[i]);
    mdp::State state = env.Reset();
    bool done = false;
    while (!done) {
      const mdp::Action action = agent.SelectAction(state);
      outcomes[i].actions.push_back(action);
      mdp::StepResult result = env.Step(action);
      state = std::move(result.next_state);
      done = result.done;
    }
    outcomes[i].defaulted = agent.Defaulted();
    outcomes[i].steps = agent.StepCount();
    outcomes[i].defaulted_fraction = agent.DefaultedFraction();
  }
  return outcomes;
}

/// Serving arm: all sessions advance in lockstep through DecideBatch.
/// Requests are submitted in REVERSE session order to exercise the
/// request-index scatter (answer order must follow the request span, not
/// session ids).
std::vector<SessionOutcome> RunService(const World& w, Signal signal,
                                       core::DefaultingMode mode,
                                       DecisionServiceConfig service_config) {
  DecisionService service(ModelFor(w, signal, ConfigFor(w, signal, mode)),
                          service_config);
  std::vector<DecisionService::SessionId> ids(kSessions);
  std::vector<abr::AbrEnvironment> envs;
  envs.reserve(kSessions);
  std::vector<mdp::State> states(kSessions);
  std::vector<bool> done(kSessions, false);
  for (std::size_t i = 0; i < kSessions; ++i) {
    ids[i] = service.OpenSession();
    envs.emplace_back(w.video, abr::AbrEnvironmentConfig{});
    envs[i].SetFixedTrace(w.traces[i]);
    states[i] = envs[i].Reset();
  }

  std::vector<SessionOutcome> outcomes(kSessions);
  std::vector<DecisionService::Request> requests;
  std::vector<mdp::Action> answers;
  std::vector<std::size_t> request_session;
  while (true) {
    requests.clear();
    request_session.clear();
    for (std::size_t r = kSessions; r-- > 0;) {
      if (done[r]) continue;
      requests.push_back({ids[r], &states[r]});
      request_session.push_back(r);
    }
    if (requests.empty()) break;
    answers.resize(requests.size());
    service.DecideBatch(requests, answers);
    for (std::size_t j = 0; j < requests.size(); ++j) {
      const std::size_t i = request_session[j];
      outcomes[i].actions.push_back(answers[j]);
      mdp::StepResult result = envs[i].Step(answers[j]);
      states[i] = std::move(result.next_state);
      done[i] = result.done;
    }
  }
  for (std::size_t i = 0; i < kSessions; ++i) {
    outcomes[i].defaulted = service.Defaulted(ids[i]);
    outcomes[i].steps = service.StepCount(ids[i]);
    outcomes[i].defaulted_fraction = service.DefaultedFraction(ids[i]);
  }
  return outcomes;
}

void ExpectBitIdentical(const World& w, Signal signal,
                        core::DefaultingMode mode,
                        DecisionServiceConfig service_config) {
  const std::vector<SessionOutcome> expected = RunSequential(w, signal, mode);
  const std::vector<SessionOutcome> actual =
      RunService(w, signal, mode, service_config);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    EXPECT_EQ(expected[i].actions, actual[i].actions);
    EXPECT_EQ(expected[i].defaulted, actual[i].defaulted);
    EXPECT_EQ(expected[i].steps, actual[i].steps);
    // Exact: both fractions are the same integer ratio.
    EXPECT_EQ(expected[i].defaulted_fraction, actual[i].defaulted_fraction);
  }
}

class DecisionServiceEquivalence
    : public ::testing::TestWithParam<
          std::tuple<Signal, core::DefaultingMode>> {};

TEST_P(DecisionServiceEquivalence, MatchesSequentialSafeAgent) {
  // Serial arm: every shard runs inline on the calling thread.
  const auto [signal, mode] = GetParam();
  DecisionServiceConfig config;
  config.shard_count = 3;
  config.shard_workers = false;
  ExpectBitIdentical(SharedWorld(), signal, mode, config);
}

TEST_P(DecisionServiceEquivalence, MatchesWithPersistentWorkers) {
  // Same property with shards 1..3 on their persistent pinned workers,
  // fed through the per-shard rings and epoch tickets.
  const auto [signal, mode] = GetParam();
  DecisionServiceConfig config;
  config.shard_count = 4;
  config.shard_workers = true;
  ExpectBitIdentical(SharedWorld(), signal, mode, config);
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<Signal, core::DefaultingMode>>&
        info) {
  const auto [signal, mode] = info.param;
  std::string name;
  switch (signal) {
    case Signal::kNovelty: name = "Novelty"; break;
    case Signal::kAgentEnsemble: name = "AgentEnsemble"; break;
    case Signal::kValueEnsemble: name = "ValueEnsemble"; break;
  }
  name += mode == core::DefaultingMode::kPermanent ? "Permanent"
                                                   : "Revocable";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSignalsBothModes, DecisionServiceEquivalence,
    ::testing::Combine(::testing::Values(Signal::kNovelty,
                                         Signal::kAgentEnsemble,
                                         Signal::kValueEnsemble),
                       ::testing::Values(core::DefaultingMode::kPermanent,
                                         core::DefaultingMode::kRevocable)),
    ParamName);

TEST(DecisionServiceEquivalenceSanity, OutOfDistributionSessionsDefault) {
  // The equivalence runs are only meaningful if the trigger actually
  // fires somewhere: the Belgium 4G viewers must drive U_S to default
  // while at least one Norway 3G viewer stays on the learned policy.
  const World& w = SharedWorld();
  const auto outcomes =
      RunSequential(w, Signal::kNovelty, core::DefaultingMode::kPermanent);
  std::size_t defaulted = 0;
  for (const auto& outcome : outcomes) defaulted += outcome.defaulted;
  EXPECT_GE(defaulted, 1u);
  EXPECT_LT(defaulted, kSessions);
}

TEST(DecisionServiceApi, DuplicateSessionInOneBatchThrows) {
  const World& w = SharedWorld();
  DecisionService service(ModelFor(
      w, Signal::kAgentEnsemble,
      ConfigFor(w, Signal::kAgentEnsemble, core::DefaultingMode::kPermanent)));
  const auto id = service.OpenSession();
  const mdp::State state(w.layout.Size(), 0.0);
  const DecisionService::Request requests[] = {{id, &state}, {id, &state}};
  mdp::Action out[2];
  EXPECT_THROW(service.DecideBatch(requests, out), std::invalid_argument);
}

TEST(DecisionServiceApi, UnknownSessionThrows) {
  const World& w = SharedWorld();
  DecisionService service(ModelFor(
      w, Signal::kAgentEnsemble,
      ConfigFor(w, Signal::kAgentEnsemble, core::DefaultingMode::kPermanent)));
  const mdp::State state(w.layout.Size(), 0.0);
  EXPECT_THROW(service.Decide(0, state), std::invalid_argument);
  const auto id = service.OpenSession();
  service.CloseSession(id);
  EXPECT_THROW(service.Decide(id, state), std::invalid_argument);
  EXPECT_THROW(service.CloseSession(id), std::invalid_argument);
}

TEST(DecisionServiceApi, MissizedStateThrows) {
  const World& w = SharedWorld();
  DecisionService service(ModelFor(
      w, Signal::kAgentEnsemble,
      ConfigFor(w, Signal::kAgentEnsemble, core::DefaultingMode::kPermanent)));
  const auto id = service.OpenSession();
  const mdp::State tiny(2, 0.0);
  EXPECT_THROW(service.Decide(id, tiny), std::invalid_argument);
}

TEST(DecisionServiceApi, EmptyBatchIsANoOp) {
  const World& w = SharedWorld();
  DecisionService service(ModelFor(
      w, Signal::kAgentEnsemble,
      ConfigFor(w, Signal::kAgentEnsemble, core::DefaultingMode::kPermanent)));
  service.DecideBatch({}, {});
  EXPECT_EQ(service.ActiveSessionCount(), 0u);
}

TEST(DecisionServiceApi, RecycledSlotStartsFresh) {
  const World& w = SharedWorld();
  DecisionService service(ModelFor(
      w, Signal::kAgentEnsemble,
      ConfigFor(w, Signal::kAgentEnsemble, core::DefaultingMode::kPermanent)));
  const auto id = service.OpenSession();
  const mdp::State state(w.layout.Size(), 0.0);
  service.Decide(id, state);
  service.Decide(id, state);
  EXPECT_EQ(service.StepCount(id), 2u);
  service.CloseSession(id);
  EXPECT_EQ(service.ActiveSessionCount(), 0u);
  const auto recycled = service.OpenSession();
  EXPECT_EQ(recycled, id);
  EXPECT_EQ(service.StepCount(recycled), 0u);
  EXPECT_FALSE(service.Defaulted(recycled));
}

TEST(DecisionServiceApi, SessionBookkeeping) {
  const World& w = SharedWorld();
  DecisionService service(
      ModelFor(w, Signal::kValueEnsemble,
               ConfigFor(w, Signal::kValueEnsemble,
                         core::DefaultingMode::kPermanent)),
      DecisionServiceConfig{.shard_count = 3});
  EXPECT_EQ(service.ShardCount(), 3u);
  EXPECT_EQ(service.WorkerCount(), 2u);  // shard 0 rides the caller
  const auto a = service.OpenSession();
  const auto b = service.OpenSession();
  const auto c = service.OpenSession();
  EXPECT_EQ(service.ActiveSessionCount(), 3u);
  service.CloseSession(b);
  EXPECT_EQ(service.ActiveSessionCount(), 2u);
  EXPECT_NE(a, c);
}

TEST(DecisionServiceMemory, UpiSessionsFitTheBudget) {
  // The memory-diet contract: a U_pi session is SafetyState + its
  // variance-trigger ring + a few registry bytes - no extractor, no
  // per-session heap objects. 256 B/session leaves room for vector
  // capacity slack (growth doubling) on top of the ~100 B of state.
  const World& w = SharedWorld();
  DecisionService service(
      ModelFor(w, Signal::kAgentEnsemble,
               ConfigFor(w, Signal::kAgentEnsemble,
                         core::DefaultingMode::kPermanent)),
      DecisionServiceConfig{.shard_count = 4});
  constexpr std::size_t kMany = 10000;
  for (std::size_t i = 0; i < kMany; ++i) service.OpenSession();

  const ServiceMemoryStats stats = service.MemoryStats();
  EXPECT_EQ(stats.open_sessions, kMany);
  EXPECT_EQ(stats.extractor_bytes, 0u)
      << "U_pi sessions must pay zero extractor bytes";
  // Every open session owns exactly ring_width doubles of trigger window.
  EXPECT_GE(stats.trigger_ring_bytes, kMany * kTriggerK * sizeof(double));
  EXPECT_GE(stats.session_hot_bytes, kMany * sizeof(core::SafetyState));
  EXPECT_LE(stats.BytesPerSession(), 256.0)
      << "hot " << stats.session_hot_bytes << " cold "
      << stats.session_cold_bytes << " rings " << stats.trigger_ring_bytes
      << " registry " << stats.registry_bytes;
}

TEST(DecisionServiceMemory, NoveltySessionsFitTheBudget) {
  // U_S adds the slab-pooled extractor (window + pair ring carved from
  // the slab) but drops the trigger ring (binary trigger): the budget is
  // 512 B/session including slab rounding and capacity slack.
  const World& w = SharedWorld();
  DecisionService service(
      ModelFor(
          w, Signal::kNovelty,
          ConfigFor(w, Signal::kNovelty, core::DefaultingMode::kPermanent)),
      DecisionServiceConfig{.shard_count = 4});
  constexpr std::size_t kMany = 10000;
  for (std::size_t i = 0; i < kMany; ++i) service.OpenSession();

  const ServiceMemoryStats stats = service.MemoryStats();
  EXPECT_EQ(stats.open_sessions, kMany);
  EXPECT_EQ(stats.trigger_ring_bytes, 0u)
      << "binary-trigger sessions must pay zero ring bytes";
  EXPECT_GT(stats.extractor_bytes, 0u);
  EXPECT_LE(stats.BytesPerSession(), 512.0);
}

TEST(DecisionServiceMemory, MeterCategoriesMatchTheStats) {
  const World& w = SharedWorld();
  DecisionService service(ModelFor(
      w, Signal::kNovelty,
      ConfigFor(w, Signal::kNovelty, core::DefaultingMode::kPermanent)));
  for (std::size_t i = 0; i < 100; ++i) service.OpenSession();

  const ServiceMemoryStats stats = service.MemoryStats();
  util::MemoryMeter meter;
  service.MeasureMemory(meter);
  EXPECT_EQ(meter.Get("session.hot"), stats.session_hot_bytes);
  EXPECT_EQ(meter.Get("session.rings"), stats.trigger_ring_bytes);
  EXPECT_EQ(meter.Get("session.extractors"), stats.extractor_bytes);
  EXPECT_EQ(meter.Get("shard.scratch"), stats.scratch_bytes);
  EXPECT_EQ(meter.Total(), stats.TotalBytes());
}

TEST(DecisionServiceApi, InvalidConstructionThrows) {
  const World& w = SharedWorld();
  EXPECT_THROW(DecisionService(nullptr), std::invalid_argument);
  EXPECT_THROW(
      DecisionService(
          ModelFor(w, Signal::kAgentEnsemble,
                   ConfigFor(w, Signal::kAgentEnsemble,
                             core::DefaultingMode::kPermanent)),
          DecisionServiceConfig{.shard_count = 0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace osap::serve
