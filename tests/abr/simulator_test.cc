#include "abr/simulator.h"

#include <gtest/gtest.h>

#include "traces/trace.h"

namespace osap::abr {
namespace {

/// A video with no VBR jitter so download times are exactly predictable.
VideoSpec FlatVideo() {
  return VideoSpec({1000.0, 2000.0}, 10, 4.0, /*vbr_jitter=*/0.0);
}

SimulatorConfig NoRttConfig() {
  SimulatorConfig cfg;
  cfg.rtt_seconds = 0.0;
  return cfg;
}

TEST(AbrSimulator, DownloadTimeMatchesBytesOverThroughput) {
  const VideoSpec video = FlatVideo();
  AbrSimulator sim(video, NoRttConfig());
  const traces::Trace trace("flat", 1.0, std::vector<double>(100, 8.0));
  sim.StartSession(trace);
  // Chunk at level 0: 1000 kbps * 4 s = 500000 bytes = 4 Mb; at 8 Mbps
  // that is 0.5 s.
  const DownloadResult r = sim.DownloadChunk(0);
  EXPECT_NEAR(r.download_seconds, 0.5, 1e-9);
  EXPECT_NEAR(r.throughput_mbps, 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.bytes, 500000.0);
}

TEST(AbrSimulator, RttAddsLatency) {
  const VideoSpec video = FlatVideo();
  SimulatorConfig cfg;
  cfg.rtt_seconds = 0.08;
  AbrSimulator sim(video, cfg);
  const traces::Trace trace("flat", 1.0, std::vector<double>(100, 8.0));
  sim.StartSession(trace);
  EXPECT_NEAR(sim.DownloadChunk(0).download_seconds, 0.58, 1e-9);
}

TEST(AbrSimulator, FirstChunkStallsForItsFullDownload) {
  const VideoSpec video = FlatVideo();
  AbrSimulator sim(video, NoRttConfig());
  const traces::Trace trace("flat", 1.0, std::vector<double>(100, 8.0));
  sim.StartSession(trace);
  const DownloadResult r = sim.DownloadChunk(0);
  // Empty buffer: the whole download is a stall (startup delay).
  EXPECT_NEAR(r.rebuffer_seconds, 0.5, 1e-9);
  EXPECT_NEAR(r.buffer_seconds, 4.0, 1e-9);
}

TEST(AbrSimulator, BufferDrainsDuringDownload) {
  const VideoSpec video = FlatVideo();
  AbrSimulator sim(video, NoRttConfig());
  const traces::Trace trace("flat", 1.0, std::vector<double>(100, 8.0));
  sim.StartSession(trace);
  sim.DownloadChunk(0);  // buffer: 4 s
  const DownloadResult r = sim.DownloadChunk(0);
  EXPECT_NEAR(r.rebuffer_seconds, 0.0, 1e-9);
  EXPECT_NEAR(r.buffer_seconds, 4.0 - 0.5 + 4.0, 1e-9);
}

TEST(AbrSimulator, SlowLinkCausesRebuffering) {
  const VideoSpec video = FlatVideo();
  AbrSimulator sim(video, NoRttConfig());
  // 0.5 Mbps: a 4 Mb chunk takes 8 s > 4 s of buffer per chunk.
  const traces::Trace trace("slow", 1.0, std::vector<double>(1000, 0.5));
  sim.StartSession(trace);
  sim.DownloadChunk(0);  // startup
  const DownloadResult r = sim.DownloadChunk(0);
  EXPECT_NEAR(r.rebuffer_seconds, 8.0 - 4.0, 1e-9);
}

TEST(AbrSimulator, IntegratesAcrossThroughputChanges) {
  const VideoSpec video = FlatVideo();
  AbrSimulator sim(video, NoRttConfig());
  // 4 Mb chunk: first second at 2 Mbps delivers 2 Mb, second second at
  // 4 Mbps delivers the remaining 2 Mb in 0.5 s -> 1.5 s total.
  std::vector<double> samples = {2.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0};
  const traces::Trace trace("step", 1.0, samples);
  sim.StartSession(trace);
  EXPECT_NEAR(sim.DownloadChunk(0).download_seconds, 1.5, 1e-9);
}

TEST(AbrSimulator, TraceWrapsAround) {
  const VideoSpec video = FlatVideo();
  AbrSimulator sim(video, NoRttConfig());
  const traces::Trace trace("short", 1.0, {8.0, 8.0});  // 2 s cycle
  sim.StartSession(trace);
  for (int i = 0; i < 10; ++i) {
    const DownloadResult r = sim.DownloadChunk(0);
    EXPECT_NEAR(r.download_seconds, 0.5, 1e-9);
  }
}

TEST(AbrSimulator, SleepsWhenBufferFull) {
  const VideoSpec video = FlatVideo();
  SimulatorConfig cfg = NoRttConfig();
  cfg.buffer_capacity_seconds = 10.0;
  AbrSimulator sim(video, cfg);
  // Very fast link: buffer grows ~4 s per chunk with negligible drain.
  const traces::Trace trace("fast", 1.0, std::vector<double>(100, 1000.0));
  sim.StartSession(trace);
  double total_sleep = 0.0;
  for (int i = 0; i < 5; ++i) {
    total_sleep += sim.DownloadChunk(0).sleep_seconds;
    EXPECT_LE(sim.BufferSeconds(), 10.0 + 1e-9);
  }
  EXPECT_GT(total_sleep, 0.0);
}

TEST(AbrSimulator, ChunkAccountingReachesVideoEnd) {
  const VideoSpec video = FlatVideo();
  AbrSimulator sim(video, NoRttConfig());
  const traces::Trace trace("flat", 1.0, std::vector<double>(100, 8.0));
  sim.StartSession(trace);
  for (std::size_t i = 0; i < video.ChunkCount(); ++i) {
    EXPECT_EQ(sim.NextChunkIndex(), i);
    const DownloadResult r = sim.DownloadChunk(1);
    EXPECT_EQ(r.video_finished, i + 1 == video.ChunkCount());
  }
  EXPECT_EQ(sim.ChunksRemaining(), 0u);
  EXPECT_THROW(sim.DownloadChunk(0), std::invalid_argument);
}

TEST(AbrSimulator, StartSessionResetsState) {
  const VideoSpec video = FlatVideo();
  AbrSimulator sim(video, NoRttConfig());
  const traces::Trace trace("flat", 1.0, std::vector<double>(100, 8.0));
  sim.StartSession(trace);
  sim.DownloadChunk(0);
  sim.DownloadChunk(0);
  sim.StartSession(trace);
  EXPECT_EQ(sim.NextChunkIndex(), 0u);
  EXPECT_DOUBLE_EQ(sim.BufferSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(sim.TraceTimeSeconds(), 0.0);
}

TEST(AbrSimulator, RequiresActiveSession) {
  const VideoSpec video = FlatVideo();
  AbrSimulator sim(video, NoRttConfig());
  EXPECT_THROW(sim.DownloadChunk(0), std::invalid_argument);
}

TEST(AbrSimulator, RejectsBadLevel) {
  const VideoSpec video = FlatVideo();
  AbrSimulator sim(video, NoRttConfig());
  const traces::Trace trace("flat", 1.0, std::vector<double>(10, 8.0));
  sim.StartSession(trace);
  EXPECT_THROW(sim.DownloadChunk(2), std::invalid_argument);
}

TEST(AbrSimulator, DeterministicReplay) {
  const VideoSpec video = MakeEnvivioLikeVideo(1);
  const traces::Trace trace("flat", 1.0, std::vector<double>(300, 3.0));
  AbrSimulator a(video, {});
  AbrSimulator b(video, {});
  a.StartSession(trace);
  b.StartSession(trace);
  for (std::size_t i = 0; i < video.ChunkCount(); ++i) {
    const DownloadResult ra = a.DownloadChunk(i % video.LevelCount());
    const DownloadResult rb = b.DownloadChunk(i % video.LevelCount());
    ASSERT_DOUBLE_EQ(ra.download_seconds, rb.download_seconds);
    ASSERT_DOUBLE_EQ(ra.buffer_seconds, rb.buffer_seconds);
  }
}

}  // namespace
}  // namespace osap::abr
