#include "abr/qoe.h"

#include <gtest/gtest.h>

namespace osap::abr {
namespace {

TEST(Qoe, FirstChunkHasNoSmoothnessTerm) {
  QoeAccumulator qoe;
  const double r = qoe.AddChunk(4.3, 0.0);
  EXPECT_DOUBLE_EQ(r, 4.3);
  EXPECT_DOUBLE_EQ(qoe.Total(), 4.3);
}

TEST(Qoe, RebufferPenaltyIsMuTimesStall) {
  QoeConfig cfg;
  cfg.rebuffer_penalty = 4.3;
  QoeAccumulator qoe(cfg);
  const double r = qoe.AddChunk(1.0, 2.0);
  EXPECT_DOUBLE_EQ(r, 1.0 - 4.3 * 2.0);
}

TEST(Qoe, SmoothnessPenalizesBothDirections) {
  QoeAccumulator qoe;
  qoe.AddChunk(1.0, 0.0);
  const double up = qoe.AddChunk(3.0, 0.0);
  EXPECT_DOUBLE_EQ(up, 3.0 - 2.0);
  const double down = qoe.AddChunk(1.0, 0.0);
  EXPECT_DOUBLE_EQ(down, 1.0 - 2.0);
}

TEST(Qoe, MatchesPaperFormulaOverASession) {
  // QoE = sum R_n - mu sum T_n - sum |R_{n+1} - R_n|.
  QoeAccumulator qoe;
  const std::vector<double> bitrates = {0.3, 0.75, 0.75, 4.3, 2.85};
  const std::vector<double> stalls = {0.5, 0.0, 0.0, 1.25, 0.0};
  for (std::size_t i = 0; i < bitrates.size(); ++i) {
    qoe.AddChunk(bitrates[i], stalls[i]);
  }
  double expected_bitrate = 0.0;
  for (double b : bitrates) expected_bitrate += b;
  double expected_stall = 4.3 * (0.5 + 1.25);
  double expected_smooth = 0.45 + 0.0 + 3.55 + 1.45;
  EXPECT_NEAR(qoe.Total(),
              expected_bitrate - expected_stall - expected_smooth, 1e-12);
  EXPECT_NEAR(qoe.BitrateUtility(), expected_bitrate, 1e-12);
  EXPECT_NEAR(qoe.RebufferPenalty(), expected_stall, 1e-12);
  EXPECT_NEAR(qoe.SmoothnessPenalty(), expected_smooth, 1e-12);
  EXPECT_EQ(qoe.ChunkCount(), 5u);
}

TEST(Qoe, CustomPenaltyWeights) {
  QoeConfig cfg;
  cfg.rebuffer_penalty = 10.0;
  cfg.smoothness_penalty = 2.0;
  QoeAccumulator qoe(cfg);
  qoe.AddChunk(1.0, 0.1);
  const double r = qoe.AddChunk(2.0, 0.0);
  EXPECT_DOUBLE_EQ(r, 2.0 - 2.0 * 1.0);
  EXPECT_DOUBLE_EQ(qoe.Total(), (1.0 - 1.0) + 0.0);
}

TEST(Qoe, ResetClearsEverything) {
  QoeAccumulator qoe;
  qoe.AddChunk(4.3, 1.0);
  qoe.Reset();
  EXPECT_DOUBLE_EQ(qoe.Total(), 0.0);
  EXPECT_EQ(qoe.ChunkCount(), 0u);
  // After reset the next chunk is "first" again: no smoothness term.
  const double r = qoe.AddChunk(2.85, 0.0);
  EXPECT_DOUBLE_EQ(r, 2.85);
}

TEST(Qoe, ValidatesInputs) {
  QoeAccumulator qoe;
  EXPECT_THROW(qoe.AddChunk(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(qoe.AddChunk(1.0, -0.5), std::invalid_argument);
  EXPECT_THROW(QoeAccumulator(QoeConfig{-1.0, 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace osap::abr
