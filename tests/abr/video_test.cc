#include "abr/video.h"

#include <gtest/gtest.h>

namespace osap::abr {
namespace {

TEST(VideoSpec, EnvivioLikeMatchesPaperParameters) {
  const VideoSpec v = MakeEnvivioLikeVideo(5);
  EXPECT_EQ(v.LevelCount(), 6u);
  EXPECT_EQ(v.ChunkCount(), 240u);  // 48 x 5
  EXPECT_DOUBLE_EQ(v.ChunkSeconds(), 4.0);
  EXPECT_DOUBLE_EQ(v.BitrateKbps(0), 300.0);
  EXPECT_DOUBLE_EQ(v.BitrateKbps(5), 4300.0);
  EXPECT_DOUBLE_EQ(v.MaxBitrateMbps(), 4.3);
  EXPECT_DOUBLE_EQ(v.Duration(), 960.0);
}

TEST(VideoSpec, ChunkBytesNearNominalSize) {
  const VideoSpec v = MakeEnvivioLikeVideo(1);
  for (std::size_t c = 0; c < v.ChunkCount(); ++c) {
    for (std::size_t l = 0; l < v.LevelCount(); ++l) {
      const double nominal = v.BitrateKbps(l) * 1000.0 / 8.0 * 4.0;
      EXPECT_NEAR(v.ChunkBytes(c, l), nominal, nominal * 0.05 + 1e-9);
    }
  }
}

TEST(VideoSpec, HigherLevelsAreLarger) {
  const VideoSpec v = MakeEnvivioLikeVideo(1);
  for (std::size_t c = 0; c < v.ChunkCount(); ++c) {
    for (std::size_t l = 0; l + 1 < v.LevelCount(); ++l) {
      EXPECT_LT(v.ChunkBytes(c, l), v.ChunkBytes(c, l + 1));
    }
  }
}

TEST(VideoSpec, VbrJitterVariesAcrossChunks) {
  const VideoSpec v = MakeEnvivioLikeVideo(1);
  // Not all chunks at a level have identical size (VBR).
  bool varied = false;
  for (std::size_t c = 1; c < v.ChunkCount() && !varied; ++c) {
    varied = v.ChunkBytes(c, 0) != v.ChunkBytes(0, 0);
  }
  EXPECT_TRUE(varied);
}

TEST(VideoSpec, ZeroJitterGivesExactNominalSizes) {
  const VideoSpec v({1000.0}, 4, 2.0, /*vbr_jitter=*/0.0);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(v.ChunkBytes(c, 0), 1000.0 * 1000.0 / 8.0 * 2.0);
  }
}

TEST(VideoSpec, DeterministicPerSeed) {
  const VideoSpec a({300.0, 750.0}, 10, 4.0, 0.05, 42);
  const VideoSpec b({300.0, 750.0}, 10, 4.0, 0.05, 42);
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_DOUBLE_EQ(a.ChunkBytes(c, 1), b.ChunkBytes(c, 1));
  }
}

TEST(VideoSpec, ValidatesArguments) {
  EXPECT_THROW(VideoSpec({}, 10, 4.0), std::invalid_argument);
  EXPECT_THROW(VideoSpec({750.0, 300.0}, 10, 4.0), std::invalid_argument);
  EXPECT_THROW(VideoSpec({300.0}, 0, 4.0), std::invalid_argument);
  EXPECT_THROW(VideoSpec({300.0}, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(VideoSpec({300.0}, 10, 4.0, 1.0), std::invalid_argument);
}

TEST(VideoSpec, IndexBoundsChecked) {
  const VideoSpec v = MakeEnvivioLikeVideo(1);
  EXPECT_THROW(v.BitrateKbps(6), std::invalid_argument);
  EXPECT_THROW(v.ChunkBytes(48, 0), std::invalid_argument);
  EXPECT_THROW(v.ChunkBytes(0, 6), std::invalid_argument);
}

}  // namespace
}  // namespace osap::abr
