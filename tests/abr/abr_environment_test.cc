#include "abr/abr_environment.h"

#include <gtest/gtest.h>

#include <set>

#include "mdp/rollout.h"
#include "policies/random_policy.h"

namespace osap::abr {
namespace {

traces::Trace FlatTrace(double mbps = 8.0, std::size_t seconds = 2000) {
  return traces::Trace("flat", 1.0,
                       std::vector<double>(seconds, mbps));
}

AbrEnvironment MakeEnv(std::size_t repeats = 1) {
  return AbrEnvironment(MakeEnvivioLikeVideo(repeats), {});
}

TEST(AbrEnvironment, ResetRequiresATrace) {
  AbrEnvironment env = MakeEnv();
  EXPECT_THROW(env.Reset(), std::invalid_argument);
}

TEST(AbrEnvironment, InitialStateIsZeroHistory) {
  AbrEnvironment env = MakeEnv();
  const traces::Trace trace = FlatTrace();
  env.SetFixedTrace(trace);
  const mdp::State s = env.Reset();
  const AbrStateLayout& layout = env.layout();
  ASSERT_EQ(s.size(), layout.Size());
  EXPECT_DOUBLE_EQ(s[layout.LastBitrateIndex()], 0.0);
  EXPECT_DOUBLE_EQ(s[layout.BufferIndex()], 0.0);
  for (std::size_t i = 0; i < layout.history; ++i) {
    EXPECT_DOUBLE_EQ(layout.ThroughputMbps(s, i), 0.0);
  }
  EXPECT_DOUBLE_EQ(layout.RemainingFraction(s), 1.0);
  // Next-chunk sizes for chunk 0 are populated.
  EXPECT_GT(layout.NextChunkBytes(s, 0), 0.0);
}

TEST(AbrEnvironment, StepUpdatesAllStateFields) {
  AbrEnvironment env = MakeEnv();
  const traces::Trace trace = FlatTrace();
  env.SetFixedTrace(trace);
  env.Reset();
  const mdp::StepResult r = env.Step(5);
  const AbrStateLayout& layout = env.layout();
  const mdp::State& s = r.next_state;
  EXPECT_DOUBLE_EQ(s[layout.LastBitrateIndex()], 1.0);  // top level
  EXPECT_GT(layout.BufferSeconds(s), 0.0);
  EXPECT_GT(layout.LatestThroughputMbps(s), 0.0);
  EXPECT_NEAR(layout.RemainingFraction(s), 47.0 / 48.0, 1e-12);
  EXPECT_FALSE(r.done);
}

TEST(AbrEnvironment, ThroughputHistoryShiftsOldestFirst) {
  AbrEnvironment env = MakeEnv();
  const traces::Trace trace = FlatTrace();
  env.SetFixedTrace(trace);
  env.Reset();
  const AbrStateLayout& layout = env.layout();
  mdp::State s;
  for (int i = 0; i < 3; ++i) s = env.Step(0).next_state;
  // Three most recent taps populated; older taps zero.
  for (std::size_t i = 0; i < layout.history - 3; ++i) {
    EXPECT_DOUBLE_EQ(layout.ThroughputMbps(s, i), 0.0);
  }
  for (std::size_t i = layout.history - 3; i < layout.history; ++i) {
    EXPECT_GT(layout.ThroughputMbps(s, i), 0.0);
  }
}

TEST(AbrEnvironment, RewardMatchesQoeAccumulator) {
  AbrEnvironment env = MakeEnv();
  const traces::Trace trace = FlatTrace();
  env.SetFixedTrace(trace);
  env.Reset();
  double total = 0.0;
  total += env.Step(2).reward;
  total += env.Step(4).reward;
  total += env.Step(1).reward;
  EXPECT_NEAR(total, env.Qoe().Total(), 1e-12);
}

TEST(AbrEnvironment, EpisodeTerminatesAfterAllChunks) {
  AbrEnvironment env = MakeEnv();
  const traces::Trace trace = FlatTrace();
  env.SetFixedTrace(trace);
  policies::RandomPolicy policy(env.ActionCount(), 3);
  const mdp::Trajectory t = mdp::Rollout(env, policy);
  EXPECT_EQ(t.Length(), 48u);
}

TEST(AbrEnvironment, FixedTraceIsDeterministic) {
  AbrEnvironment env = MakeEnv();
  const traces::Trace trace = FlatTrace(3.0);
  env.SetFixedTrace(trace);
  policies::RandomPolicy p1(env.ActionCount(), 7);
  policies::RandomPolicy p2(env.ActionCount(), 7);
  const double q1 = mdp::Rollout(env, p1).TotalReward();
  const double q2 = mdp::Rollout(env, p2).TotalReward();
  EXPECT_DOUBLE_EQ(q1, q2);
}

TEST(AbrEnvironment, TracePoolSamplesDifferentTraces) {
  AbrEnvironment env = MakeEnv();
  std::vector<traces::Trace> pool;
  pool.emplace_back("a", 1.0, std::vector<double>(2000, 1.0));
  pool.emplace_back("b", 1.0, std::vector<double>(2000, 8.0));
  env.SetTracePool(pool, 5);
  std::set<std::string> seen;
  for (int i = 0; i < 20; ++i) {
    env.Reset();
    seen.insert(env.current_trace()->name());
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST(AbrEnvironment, LastDownloadExposesObservation) {
  AbrEnvironment env = MakeEnv();
  const traces::Trace trace = FlatTrace();
  env.SetFixedTrace(trace);
  env.Reset();
  env.Step(3);
  const DownloadResult& d = env.LastDownload();
  EXPECT_GT(d.throughput_mbps, 0.0);
  EXPECT_GT(d.bytes, 0.0);
}

TEST(AbrEnvironment, RejectsOutOfRangeAction) {
  AbrEnvironment env = MakeEnv();
  const traces::Trace trace = FlatTrace();
  env.SetFixedTrace(trace);
  env.Reset();
  EXPECT_THROW(env.Step(6), std::invalid_argument);
  EXPECT_THROW(env.Step(-1), std::invalid_argument);
}

TEST(AbrEnvironment, StateNormalizationsAreBounded) {
  // Over a random rollout, normalized state entries stay in sane ranges.
  AbrEnvironment env = MakeEnv(5);
  const traces::Trace trace = FlatTrace(2.0);
  env.SetFixedTrace(trace);
  policies::RandomPolicy policy(env.ActionCount(), 13);
  mdp::State s = env.Reset();
  bool done = false;
  while (!done) {
    for (double v : s) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 20.0);
    }
    const mdp::StepResult r = env.Step(policy.SelectAction(s));
    s = r.next_state;
    done = r.done;
  }
}

TEST(AbrEnvironment, ResumePointRestoresMidSessionStateExactly) {
  // Save a resume point mid-session, finish the session recording every
  // step, then restore the point into a DIFFERENT environment instance
  // and replay the same actions: rewards and states must match bit for
  // bit (this is what record-and-replay calibration stands on).
  std::vector<double> mbps;
  for (std::size_t i = 0; i < 2000; ++i) {
    mbps.push_back(1.0 + 0.5 * static_cast<double>(i % 7));
  }
  const traces::Trace trace("varying", 1.0, mbps);
  AbrEnvironment env = MakeEnv();
  env.SetFixedTrace(trace);
  env.Reset();
  const std::vector<int> prefix = {0, 3, 5, 1, 4, 2, 5, 0};
  for (const int a : prefix) env.Step(a);

  const AbrEnvironment::ResumePoint resume = env.SaveResumePoint();
  std::vector<mdp::Action> actions;
  std::vector<double> rewards;
  std::vector<mdp::State> states;
  bool done = false;
  int a = 1;
  while (!done) {
    const mdp::StepResult r = env.Step(a);
    actions.push_back(a);
    rewards.push_back(r.reward);
    states.push_back(r.next_state);
    done = r.done;
    a = (a + 2) % 6;
  }

  AbrEnvironment other = MakeEnv();  // same video/config, fresh instance
  other.RestoreResumePoint(resume);
  for (std::size_t t = 0; t < actions.size(); ++t) {
    const mdp::StepResult r = other.Step(actions[t]);
    EXPECT_EQ(r.reward, rewards[t]) << "step " << t;
    EXPECT_EQ(r.next_state, states[t]) << "step " << t;
    EXPECT_EQ(r.done, t + 1 == actions.size()) << "step " << t;
  }
}

TEST(AbrEnvironment, ResumePointSurvivesInterleavedUse) {
  // Restoring after the source env has moved on (or been reset onto
  // another trace) still reproduces the saved step: the resume point
  // owns all dynamic state except the trace, which the caller keeps
  // alive.
  const traces::Trace trace = FlatTrace(3.0);
  const traces::Trace other_trace = FlatTrace(9.0);
  AbrEnvironment env = MakeEnv();
  env.SetFixedTrace(trace);
  env.Reset();
  env.Step(2);
  env.Step(4);
  const AbrEnvironment::ResumePoint resume = env.SaveResumePoint();
  const mdp::StepResult expected = env.Step(3);

  env.SetFixedTrace(other_trace);  // clobber the source env's state
  env.Reset();
  env.Step(1);

  env.RestoreResumePoint(resume);
  const mdp::StepResult replayed = env.Step(3);
  EXPECT_EQ(replayed.reward, expected.reward);
  EXPECT_EQ(replayed.next_state, expected.next_state);
  EXPECT_EQ(replayed.done, expected.done);
}

}  // namespace
}  // namespace osap::abr
