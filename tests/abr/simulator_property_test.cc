// Property-based sweeps over the ABR simulator: invariants that must hold
// for every (throughput, ladder level, buffer capacity) combination, not
// just the hand-picked cases in simulator_test.cc.
#include <gtest/gtest.h>

#include <tuple>

#include "abr/simulator.h"
#include "traces/trace.h"

namespace osap::abr {
namespace {

using Params = std::tuple<double /*mbps*/, std::size_t /*level*/>;

class SimulatorInvariants : public ::testing::TestWithParam<Params> {
 protected:
  SimulatorInvariants()
      : video_(MakeEnvivioLikeVideo(1)), sim_(video_, MakeConfig()) {}

  static SimulatorConfig MakeConfig() {
    SimulatorConfig cfg;
    cfg.rtt_seconds = 0.08;
    return cfg;
  }

  VideoSpec video_;
  AbrSimulator sim_;
};

TEST_P(SimulatorInvariants, SessionInvariantsHoldForEveryChunk) {
  const auto [mbps, level] = GetParam();
  const traces::Trace trace("flat", 1.0,
                            std::vector<double>(5000, mbps));
  sim_.StartSession(trace);
  double previous_trace_time = 0.0;
  for (std::size_t c = 0; c < video_.ChunkCount(); ++c) {
    const DownloadResult r = sim_.DownloadChunk(level);

    // Bytes transferred are exactly the chunk's size.
    ASSERT_DOUBLE_EQ(r.bytes, video_.ChunkBytes(c, level));

    // Download takes at least the RTT plus the ideal transfer time.
    const double ideal = r.bytes * 8.0 / 1e6 / mbps;
    ASSERT_GE(r.download_seconds, 0.08 + ideal - 1e-9);

    // Measured throughput never exceeds the link rate.
    ASSERT_LE(r.throughput_mbps, mbps + 1e-9);

    // Rebuffering is bounded by the download duration.
    ASSERT_GE(r.rebuffer_seconds, 0.0);
    ASSERT_LE(r.rebuffer_seconds, r.download_seconds + 1e-9);

    // The buffer stays within [0, capacity] and gains at most one chunk.
    ASSERT_GE(r.buffer_seconds, 0.0);
    ASSERT_LE(r.buffer_seconds,
              sim_.config().buffer_capacity_seconds + 1e-9);

    // Wall-clock time advances monotonically.
    ASSERT_GT(sim_.TraceTimeSeconds(), previous_trace_time);
    previous_trace_time = sim_.TraceTimeSeconds();
  }
  EXPECT_EQ(sim_.ChunksRemaining(), 0u);
}

TEST_P(SimulatorInvariants, PlaybackAccounting) {
  // Played video + buffered video == downloaded video, and total session
  // wall-clock == transfer + sleep time. Verified via: buffer level +
  // (trace time - total stall) >= played content... simplified to the
  // conservation check below: each chunk adds exactly ChunkSeconds to the
  // buffer, and drain never exceeds elapsed time.
  const auto [mbps, level] = GetParam();
  const traces::Trace trace("flat", 1.0,
                            std::vector<double>(5000, mbps));
  sim_.StartSession(trace);
  double drained_total = 0.0;
  double prev_buffer = 0.0;
  for (std::size_t c = 0; c < video_.ChunkCount(); ++c) {
    const DownloadResult r = sim_.DownloadChunk(level);
    const double drained =
        prev_buffer + video_.ChunkSeconds() - r.buffer_seconds;
    // Drain during this step is bounded by the elapsed wall-clock time.
    ASSERT_GE(drained, -1e-9);
    ASSERT_LE(drained,
              r.download_seconds + r.sleep_seconds + 1e-9);
    drained_total += drained;
    prev_buffer = r.buffer_seconds;
  }
  // Everything downloaded is either played (drained) or still buffered.
  EXPECT_NEAR(drained_total + prev_buffer,
              video_.Duration(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    ThroughputLevelGrid, SimulatorInvariants,
    ::testing::Combine(::testing::Values(0.2, 1.0, 3.0, 12.0, 40.0),
                       ::testing::Values(0u, 2u, 5u)),
    [](const auto& info) {
      return "mbps_" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
             "_level_" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace osap::abr
