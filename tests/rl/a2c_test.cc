#include "rl/a2c.h"

#include <gtest/gtest.h>

#include "nn/sequential.h"
#include "testing/toy_env.h"

namespace osap::rl {
namespace {

/// Small actor-critic over the FlagBandit's 2-feature state.
nn::ActorCriticNet MakeToyNet(Rng& rng) {
  auto make = [&rng](std::size_t out) {
    nn::CompositeNet net;
    nn::Sequential branch;
    branch.AddLinearReLU(2, 16, rng);
    net.AddBranch(0, 2, std::move(branch));
    nn::Sequential trunk;
    trunk.Add(std::make_unique<nn::Linear>(16, out, rng));
    net.SetTrunk(std::move(trunk));
    return net;
  };
  return nn::ActorCriticNet(make(2), make(1));
}

TEST(TrainA2c, LearnsTheFlagBandit) {
  osap::testing::FlagBandit env(20);
  Rng rng(1);
  nn::ActorCriticNet net = MakeToyNet(rng);
  A2cConfig cfg;
  cfg.episodes = 300;
  cfg.actor_learning_rate = 0.01;
  cfg.critic_learning_rate = 0.02;
  cfg.entropy_coef_start = 0.3;
  cfg.entropy_coef_end = 0.01;
  const TrainingHistory history = TrainA2c(net, env, cfg);
  // Optimal return is 20; random is 10. The agent must get close to
  // optimal by the end.
  EXPECT_GT(history.RecentMeanReward(30), 17.0);
  // And it must have improved over its own start.
  double early = 0.0;
  for (int i = 0; i < 30; ++i) early += history.episode_rewards[i];
  early /= 30.0;
  EXPECT_GT(history.RecentMeanReward(30), early + 3.0);
}

TEST(TrainA2c, GreedyPolicyIsOptimalAfterTraining) {
  osap::testing::FlagBandit env(20);
  Rng rng(2);
  nn::ActorCriticNet net = MakeToyNet(rng);
  A2cConfig cfg;
  cfg.episodes = 300;
  cfg.actor_learning_rate = 0.01;
  cfg.critic_learning_rate = 0.02;
  TrainA2c(net, env, cfg);
  // Greedy evaluation.
  mdp::State s = env.Reset();
  double total = 0.0;
  bool done = false;
  while (!done) {
    const auto probs = net.ActionProbs(s);
    const int a = static_cast<int>(std::distance(
        probs.begin(), std::max_element(probs.begin(), probs.end())));
    const mdp::StepResult r = env.Step(a);
    total += r.reward;
    s = r.next_state;
    done = r.done;
  }
  EXPECT_DOUBLE_EQ(total, 20.0);
}

TEST(TrainA2c, CriticLearnsReturnScale) {
  osap::testing::FlagBandit env(10);
  Rng rng(3);
  nn::ActorCriticNet net = MakeToyNet(rng);
  A2cConfig cfg;
  cfg.episodes = 400;
  cfg.actor_learning_rate = 0.01;
  cfg.critic_learning_rate = 0.05;
  cfg.gamma = 1.0;
  TrainA2c(net, env, cfg);
  // At the initial state, the undiscounted value of the near-optimal
  // policy is close to 10.
  const double v = net.Value(env.Reset());
  EXPECT_GT(v, 6.0);
  EXPECT_LT(v, 12.0);
}

TEST(TrainA2c, DeterministicForFixedSeed) {
  A2cConfig cfg;
  cfg.episodes = 50;
  osap::testing::FlagBandit env1(10);
  Rng rng1(4);
  nn::ActorCriticNet net1 = MakeToyNet(rng1);
  const TrainingHistory h1 = TrainA2c(net1, env1, cfg);

  osap::testing::FlagBandit env2(10);
  Rng rng2(4);
  nn::ActorCriticNet net2 = MakeToyNet(rng2);
  const TrainingHistory h2 = TrainA2c(net2, env2, cfg);

  EXPECT_EQ(h1.episode_rewards, h2.episode_rewards);
}

TEST(TrainA2c, RecordsEpisodeLengths) {
  osap::testing::FlagBandit env(13);
  Rng rng(5);
  nn::ActorCriticNet net = MakeToyNet(rng);
  A2cConfig cfg;
  cfg.episodes = 5;
  const TrainingHistory h = TrainA2c(net, env, cfg);
  ASSERT_EQ(h.episode_lengths.size(), 5u);
  for (std::size_t len : h.episode_lengths) EXPECT_EQ(len, 13u);
}

TEST(TrainA2c, ValidatesConfig) {
  osap::testing::FlagBandit env(5);
  Rng rng(6);
  nn::ActorCriticNet net = MakeToyNet(rng);
  A2cConfig bad;
  bad.episodes = 0;
  EXPECT_THROW(TrainA2c(net, env, bad), std::invalid_argument);
  A2cConfig bad_gamma;
  bad_gamma.gamma = 1.5;
  EXPECT_THROW(TrainA2c(net, env, bad_gamma), std::invalid_argument);
}

TEST(TrainingHistory, RecentMeanRewardHandlesShortHistories) {
  TrainingHistory h;
  EXPECT_DOUBLE_EQ(h.RecentMeanReward(), 0.0);
  h.episode_rewards = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(h.RecentMeanReward(2), 2.5);
  EXPECT_DOUBLE_EQ(h.RecentMeanReward(100), 2.0);
}

}  // namespace
}  // namespace osap::rl
