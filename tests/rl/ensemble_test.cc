#include "rl/ensemble.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/toy_env.h"

namespace osap::rl {
namespace {

nn::CompositeNet MakeNet(std::size_t out, Rng& rng) {
  nn::CompositeNet net;
  nn::Sequential branch;
  branch.AddLinearReLU(2, 8, rng);
  net.AddBranch(0, 2, std::move(branch));
  nn::Sequential trunk;
  trunk.Add(std::make_unique<nn::Linear>(8, out, rng));
  net.SetTrunk(std::move(trunk));
  return net;
}

nn::ActorCriticNet MakeAc(Rng& rng) {
  return nn::ActorCriticNet(MakeNet(2, rng), MakeNet(1, rng));
}

TEST(TrainAgentEnsemble, ProducesRequestedMembers) {
  osap::testing::FlagBandit env(10);
  A2cConfig cfg;
  cfg.episodes = 30;
  const AgentEnsembleResult result =
      TrainAgentEnsemble(3, MakeAc, env, cfg, /*base_seed=*/1);
  EXPECT_EQ(result.members.size(), 3u);
  EXPECT_EQ(result.histories.size(), 3u);
  for (const auto& m : result.members) EXPECT_NE(m, nullptr);
}

TEST(TrainAgentEnsemble, MembersDifferOnlyByInitialization) {
  // Different initialization -> different trained weights -> (generally)
  // different outputs on some state.
  osap::testing::FlagBandit env(10);
  A2cConfig cfg;
  cfg.episodes = 10;
  const AgentEnsembleResult result =
      TrainAgentEnsemble(3, MakeAc, env, cfg, 2);
  const mdp::State state = {0.5, 1.0};
  const auto p0 = result.members[0]->ActionProbs(state);
  const auto p1 = result.members[1]->ActionProbs(state);
  EXPECT_NE(p0, p1);
}

TEST(TrainAgentEnsemble, DeterministicPerBaseSeed) {
  A2cConfig cfg;
  cfg.episodes = 10;
  osap::testing::FlagBandit env1(8);
  const auto r1 = TrainAgentEnsemble(2, MakeAc, env1, cfg, 7);
  osap::testing::FlagBandit env2(8);
  const auto r2 = TrainAgentEnsemble(2, MakeAc, env2, cfg, 7);
  const mdp::State state = {0.25, 0.0};
  EXPECT_EQ(r1.members[0]->ActionProbs(state),
            r2.members[0]->ActionProbs(state));
  EXPECT_EQ(r1.members[1]->ActionProbs(state),
            r2.members[1]->ActionProbs(state));
}

TEST(TrainAgentEnsemble, AllMembersLearn) {
  osap::testing::FlagBandit env(10);
  A2cConfig cfg;
  cfg.episodes = 250;
  cfg.actor_learning_rate = 0.01;
  cfg.critic_learning_rate = 0.02;
  const auto result = TrainAgentEnsemble(3, MakeAc, env, cfg, 3);
  for (const auto& h : result.histories) {
    EXPECT_GT(h.RecentMeanReward(20), 8.0);  // optimal 10, random 5
  }
}

TEST(TrainValueEnsemble, MembersShareDataDifferInInit) {
  osap::testing::FlagBandit env(10);
  osap::testing::OraclePolicy policy;
  ValueTrainConfig cfg;
  cfg.rollout_episodes = 5;
  cfg.epochs = 3;
  const auto members = TrainValueEnsemble(
      4, [](Rng& rng) { return MakeNet(1, rng); }, env, policy, cfg, 5);
  EXPECT_EQ(members.size(), 4u);
  const mdp::State state = {0.5, 1.0};
  const double v0 =
      members[0]->Forward(nn::Matrix::RowVector(state)).At(0, 0);
  const double v1 =
      members[1]->Forward(nn::Matrix::RowVector(state)).At(0, 0);
  EXPECT_NE(v0, v1);
}

TEST(TrainValueEnsemble, MembersAgreeOnWellCoveredStates) {
  // Long training on shared data: member values at a frequently-visited
  // state must be close (the property U_V exploits in-distribution).
  osap::testing::FlagBandit env(10);
  osap::testing::OraclePolicy policy;
  ValueTrainConfig cfg;
  cfg.rollout_episodes = 20;
  cfg.epochs = 100;
  cfg.learning_rate = 0.05;
  cfg.gamma = 1.0;
  const auto members = TrainValueEnsemble(
      3, [](Rng& rng) { return MakeNet(1, rng); }, env, policy, cfg, 6);
  const mdp::State start = {0.0, 0.0};
  std::vector<double> values;
  for (const auto& m : members) {
    values.push_back(m->Forward(nn::Matrix::RowVector(start)).At(0, 0));
  }
  // All members converge near the true value, and - the property U_V
  // exploits - they agree with each other tightly.
  for (double v : values) {
    EXPECT_NEAR(v, 10.0, 2.0);
  }
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  EXPECT_LT(*hi - *lo, 1.0);
}

TEST(Ensembles, RejectZeroSize) {
  osap::testing::FlagBandit env(5);
  A2cConfig cfg;
  EXPECT_THROW(TrainAgentEnsemble(0, MakeAc, env, cfg, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace osap::rl
