// Determinism tests for the parallel training paths: the batched-update
// A2C trainer and the parallel value-dataset collector must produce
// bit-identical results at every pool size (threads=N == threads=1),
// because gradients/episodes are buffered per episode and reduced or
// concatenated in fixed episode order regardless of thread scheduling.
//
// The test machine may expose a single hardware thread, so the multi-thread
// side always constructs a private 2-worker pool instead of relying on
// ThreadPool::Shared().
#include <cstring>
#include <memory>

#include "gtest/gtest.h"
#include "nn/sequential.h"
#include "rl/a2c.h"
#include "rl/ensemble.h"
#include "rl/value_trainer.h"
#include "testing/toy_env.h"
#include "util/thread_pool.h"

namespace osap::rl {
namespace {

/// Small actor-critic over the FlagBandit's 2-feature state.
nn::ActorCriticNet MakeToyNet(Rng& rng) {
  auto make = [&rng](std::size_t out) {
    nn::CompositeNet net;
    nn::Sequential branch;
    branch.AddLinearReLU(2, 16, rng);
    net.AddBranch(0, 2, std::move(branch));
    nn::Sequential trunk;
    trunk.Add(std::make_unique<nn::Linear>(16, out, rng));
    net.SetTrunk(std::move(trunk));
    return net;
  };
  return nn::ActorCriticNet(make(2), make(1));
}

void ExpectParamsBitIdentical(std::vector<nn::Param*> a,
                              std::vector<nn::Param*> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i]->value.size(), b[i]->value.size());
    EXPECT_EQ(0, std::memcmp(a[i]->value.data(), b[i]->value.data(),
                             a[i]->value.size() * sizeof(double)))
        << "param " << i;
  }
}

/// Trains one net with TrainA2cParallel on a pool of the given width and
/// returns (net, history). FlagBandit is stateless across episodes, so a
/// fresh instance per episode satisfies the EpisodeEnvFactory contract.
std::pair<std::unique_ptr<nn::ActorCriticNet>, TrainingHistory>
TrainOnPool(std::size_t workers, const A2cConfig& config) {
  Rng init_rng(42);
  auto net = std::make_unique<nn::ActorCriticNet>(MakeToyNet(init_rng));
  const ActorCriticCloneFactory clone_net = []() {
    Rng scratch(0);
    return MakeToyNet(scratch);
  };
  const EpisodeEnvFactory env_for_episode = [](std::size_t) {
    return std::unique_ptr<mdp::Environment>(
        std::make_unique<osap::testing::FlagBandit>(20));
  };
  util::ThreadPool pool(workers);
  TrainingHistory history =
      TrainA2cParallel(*net, clone_net, env_for_episode, config, pool);
  return {std::move(net), std::move(history)};
}

TEST(TrainA2cParallel, ThreadCountDoesNotChangeResults) {
  A2cConfig cfg;
  cfg.episodes = 10;
  cfg.rollouts_per_update = 4;  // updates of 4, 4, and 2 episodes
  cfg.actor_learning_rate = 0.01;
  cfg.critic_learning_rate = 0.02;
  cfg.seed = 7;

  auto [serial_net, serial_history] = TrainOnPool(0, cfg);
  auto [parallel_net, parallel_history] = TrainOnPool(2, cfg);

  ExpectParamsBitIdentical(serial_net->AllParams(),
                           parallel_net->AllParams());
  EXPECT_EQ(serial_history.episode_rewards, parallel_history.episode_rewards);
  EXPECT_EQ(serial_history.episode_lengths, parallel_history.episode_lengths);
}

TEST(TrainA2cParallel, SingleRolloutScheduleIsThreadInvariantToo) {
  // rollouts_per_update = 1 degenerates to one step per episode; the
  // per-episode seeding still makes every pool size agree bitwise.
  A2cConfig cfg;
  cfg.episodes = 6;
  cfg.rollouts_per_update = 1;
  cfg.seed = 11;

  auto [serial_net, serial_history] = TrainOnPool(0, cfg);
  auto [parallel_net, parallel_history] = TrainOnPool(2, cfg);

  ExpectParamsBitIdentical(serial_net->AllParams(),
                           parallel_net->AllParams());
  EXPECT_EQ(serial_history.episode_rewards, parallel_history.episode_rewards);
}

TEST(TrainA2cParallel, NormalizedAdvantagesStayDeterministic) {
  A2cConfig cfg;
  cfg.episodes = 8;
  cfg.rollouts_per_update = 3;
  cfg.normalize_advantages = true;
  cfg.seed = 13;

  auto [serial_net, serial_history] = TrainOnPool(0, cfg);
  auto [parallel_net, parallel_history] = TrainOnPool(2, cfg);

  ExpectParamsBitIdentical(serial_net->AllParams(),
                           parallel_net->AllParams());
  EXPECT_EQ(serial_history.episode_rewards, parallel_history.episode_rewards);
}

ValueDataset CollectOnPool(std::size_t workers) {
  const RolloutEnvFactory env_for_episode = [](std::size_t) {
    return std::unique_ptr<mdp::Environment>(
        std::make_unique<osap::testing::FlagBandit>(15));
  };
  const RolloutPolicyFactory policy_for_episode = [](std::size_t e) {
    // Alternate policies so episodes are distinguishable in the output:
    // any episode-order mixup changes the concatenated returns.
    return std::unique_ptr<mdp::Policy>(
        e % 2 == 0 ? std::unique_ptr<mdp::Policy>(
                         std::make_unique<osap::testing::OraclePolicy>())
                   : std::unique_ptr<mdp::Policy>(
                         std::make_unique<osap::testing::ConstantPolicy>(0)));
  };
  ValueTrainConfig cfg;
  cfg.rollout_episodes = 9;
  cfg.gamma = 1.0;  // undiscounted: returns are exact small integers
  util::ThreadPool pool(workers);
  return CollectValueDatasetParallel(env_for_episode, policy_for_episode, cfg,
                                     pool);
}

TEST(CollectValueDatasetParallel, ThreadCountDoesNotChangeDataset) {
  const ValueDataset serial = CollectOnPool(0);
  const ValueDataset parallel = CollectOnPool(2);
  ASSERT_EQ(serial.Size(), parallel.Size());
  EXPECT_EQ(serial.returns, parallel.returns);
  for (std::size_t i = 0; i < serial.Size(); ++i) {
    EXPECT_EQ(serial.states[i], parallel.states[i]) << "state " << i;
  }
  // Episodes alternate oracle (return 15) and constant-0 (return 8: the 8
  // even steps match the flag), so a correct episode-order concatenation
  // starts with the oracle's full-score return.
  EXPECT_EQ(serial.returns.front(), 15.0);
  EXPECT_EQ(serial.returns[15], 8.0);  // first state of episode 1
}

TEST(TrainAgentEnsembleParallel, EpisodeParallelVariantIsThreadInvariant) {
  const ActorCriticFactory factory = [](Rng& rng) { return MakeToyNet(rng); };
  const MemberEpisodeEnvFactory env_for_episode = [](std::size_t,
                                                     std::size_t) {
    return std::unique_ptr<mdp::Environment>(
        std::make_unique<osap::testing::FlagBandit>(12));
  };
  A2cConfig cfg;
  cfg.episodes = 6;
  cfg.rollouts_per_update = 3;
  cfg.seed = 5;

  util::ThreadPool pool0(0);
  AgentEnsembleResult serial = TrainAgentEnsembleParallel(
      2, factory, env_for_episode, cfg, /*base_seed=*/99, pool0);
  util::ThreadPool pool2(2);
  AgentEnsembleResult parallel = TrainAgentEnsembleParallel(
      2, factory, env_for_episode, cfg, /*base_seed=*/99, pool2);

  ASSERT_EQ(serial.members.size(), parallel.members.size());
  for (std::size_t m = 0; m < serial.members.size(); ++m) {
    ExpectParamsBitIdentical(serial.members[m]->AllParams(),
                             parallel.members[m]->AllParams());
    EXPECT_EQ(serial.histories[m].episode_rewards,
              parallel.histories[m].episode_rewards);
  }
}

}  // namespace
}  // namespace osap::rl
