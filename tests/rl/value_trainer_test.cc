#include "rl/value_trainer.h"

#include <gtest/gtest.h>

#include "testing/toy_env.h"

namespace osap::rl {
namespace {

nn::CompositeNet MakeValueNet(Rng& rng) {
  nn::CompositeNet net;
  nn::Sequential branch;
  branch.AddLinearReLU(2, 16, rng);
  net.AddBranch(0, 2, std::move(branch));
  nn::Sequential trunk;
  trunk.Add(std::make_unique<nn::Linear>(16, 1, rng));
  net.SetTrunk(std::move(trunk));
  return net;
}

TEST(CollectValueDataset, RecordsEveryVisitedState) {
  osap::testing::FlagBandit env(15);
  osap::testing::OraclePolicy policy;
  ValueTrainConfig cfg;
  cfg.rollout_episodes = 4;
  const ValueDataset ds = CollectValueDataset(env, policy, cfg);
  EXPECT_EQ(ds.Size(), 4u * 15u);
  EXPECT_EQ(ds.states.size(), ds.returns.size());
}

TEST(CollectValueDataset, ReturnsAreDiscountedReturnsToGo) {
  osap::testing::FlagBandit env(5);
  osap::testing::OraclePolicy policy;  // reward 1 every step
  ValueTrainConfig cfg;
  cfg.rollout_episodes = 1;
  cfg.gamma = 0.5;
  const ValueDataset ds = CollectValueDataset(env, policy, cfg);
  ASSERT_EQ(ds.Size(), 5u);
  // G_t for constant reward 1, gamma .5, T=5: {1.9375,1.875,1.75,1.5,1}.
  EXPECT_NEAR(ds.returns[4], 1.0, 1e-12);
  EXPECT_NEAR(ds.returns[3], 1.5, 1e-12);
  EXPECT_NEAR(ds.returns[0], 1.9375, 1e-12);
}

TEST(TrainValueNet, FitsReturnsOfAFixedPolicy) {
  osap::testing::FlagBandit env(10);
  osap::testing::OraclePolicy policy;
  ValueTrainConfig cfg;
  cfg.rollout_episodes = 20;
  cfg.epochs = 60;
  cfg.learning_rate = 0.02;
  cfg.gamma = 1.0;
  const ValueDataset ds = CollectValueDataset(env, policy, cfg);
  Rng rng(1);
  nn::CompositeNet net = MakeValueNet(rng);
  const double final_loss = TrainValueNet(net, ds, cfg);
  EXPECT_LT(final_loss, 0.05);
  // Value at the start state (undiscounted, optimal policy) ~ 10.
  const double v0 =
      net.Forward(nn::Matrix::RowVector(ds.states.front())).At(0, 0);
  EXPECT_NEAR(v0, 10.0, 1.0);
}

TEST(TrainValueNet, LossDecreasesWithTraining) {
  osap::testing::FlagBandit env(10);
  osap::testing::OraclePolicy policy;
  ValueTrainConfig cfg;
  cfg.rollout_episodes = 10;
  const ValueDataset ds = CollectValueDataset(env, policy, cfg);
  Rng rng1(2);
  nn::CompositeNet brief_net = MakeValueNet(rng1);
  ValueTrainConfig brief = cfg;
  brief.epochs = 1;
  const double loss_brief = TrainValueNet(brief_net, ds, brief);
  Rng rng2(2);
  nn::CompositeNet long_net = MakeValueNet(rng2);
  ValueTrainConfig longer = cfg;
  longer.epochs = 50;
  const double loss_long = TrainValueNet(long_net, ds, longer);
  EXPECT_LT(loss_long, loss_brief);
}

TEST(TrainValueNet, ValidatesInputs) {
  Rng rng(3);
  nn::CompositeNet net = MakeValueNet(rng);
  ValueDataset empty;
  EXPECT_THROW(TrainValueNet(net, empty, {}), std::invalid_argument);
}

TEST(TrainValueNet, DeterministicForFixedSeed) {
  osap::testing::FlagBandit env(8);
  osap::testing::OraclePolicy policy;
  ValueTrainConfig cfg;
  cfg.rollout_episodes = 5;
  cfg.epochs = 5;
  const ValueDataset ds = CollectValueDataset(env, policy, cfg);
  Rng rng1(4);
  nn::CompositeNet a = MakeValueNet(rng1);
  Rng rng2(4);
  nn::CompositeNet b = MakeValueNet(rng2);
  EXPECT_DOUBLE_EQ(TrainValueNet(a, ds, cfg), TrainValueNet(b, ds, cfg));
}

}  // namespace
}  // namespace osap::rl
