#include "util/arg_parser.h"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "util/check.h"

namespace osap::util {

namespace {

bool ParseUnsigned(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  out = value;
  return true;
}

bool ParseDouble(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  out = value;
  return true;
}

template <typename T>
ArgParser::Setter UnsignedSetter(T* out) {
  return [out](const std::string& text) {
    std::uint64_t value = 0;
    if (!ParseUnsigned(text, value)) return false;
    if (value > std::numeric_limits<T>::max()) return false;
    *out = static_cast<T>(value);
    return true;
  };
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void ArgParser::AddPositionalImpl(const std::string& name,
                                  const std::string& help, bool required,
                                  Setter set) {
  OSAP_REQUIRE(!required || positionals_.empty() ||
                   positionals_.back().required,
               "ArgParser: required positional after an optional one");
  for (const Positional& p : positionals_) {
    OSAP_REQUIRE(p.name != name,
                 "ArgParser: duplicate positional registration");
  }
  positionals_.push_back({name, help, required, std::move(set)});
}

void ArgParser::AddOptionImpl(const std::string& name,
                              const std::string& value_name,
                              const std::string& help, Setter set) {
  OSAP_REQUIRE(name.size() > 2 && name[0] == '-' && name[1] == '-',
               "ArgParser: option names start with --");
  // Loud failure at setup: a re-registered name would silently shadow
  // the earlier binding (Parse matches the first entry).
  for (const Option& o : options_) {
    OSAP_REQUIRE(o.name != name, "ArgParser: duplicate option registration");
  }
  options_.push_back({name, value_name, help, std::move(set)});
}

void ArgParser::AddPositional(const std::string& name, const std::string& help,
                              std::string* out) {
  AddPositionalImpl(name, help, true, [out](const std::string& text) {
    *out = text;
    return true;
  });
}

void ArgParser::AddPositional(const std::string& name, const std::string& help,
                              std::size_t* out) {
  AddPositionalImpl(name, help, true, UnsignedSetter(out));
}

void ArgParser::AddOptionalPositional(const std::string& name,
                                      const std::string& help,
                                      std::string* out) {
  AddPositionalImpl(name, help, false, [out](const std::string& text) {
    *out = text;
    return true;
  });
}

void ArgParser::AddOptionalPositional(const std::string& name,
                                      const std::string& help,
                                      std::size_t* out) {
  AddPositionalImpl(name, help, false, UnsignedSetter(out));
}

void ArgParser::AddOptionalPositional(const std::string& name,
                                      const std::string& help, double* out) {
  AddPositionalImpl(name, help, false, [out](const std::string& text) {
    return ParseDouble(text, *out);
  });
}

void ArgParser::AddFlag(const std::string& name, const std::string& help,
                        bool* out) {
  AddOptionImpl(name, "", help, [out](const std::string&) {
    *out = true;
    return true;
  });
}

void ArgParser::AddOption(const std::string& name,
                          const std::string& value_name,
                          const std::string& help, std::string* out) {
  AddOptionImpl(name, value_name, help, [out](const std::string& text) {
    *out = text;
    return true;
  });
}

void ArgParser::AddOption(const std::string& name,
                          const std::string& value_name,
                          const std::string& help, std::size_t* out) {
  AddOptionImpl(name, value_name, help, UnsignedSetter(out));
}

void ArgParser::AddOption(const std::string& name,
                          const std::string& value_name,
                          const std::string& help, double* out) {
  AddOptionImpl(name, value_name, help, [out](const std::string& text) {
    return ParseDouble(text, *out);
  });
}

bool ArgParser::Fail(std::string message) {
  error_ = std::move(message);
  return false;
}

bool ArgParser::Parse(int argc, char* const* argv, int first) {
  error_.clear();
  help_requested_ = false;
  std::size_t next_positional = 0;
  for (int a = first; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "-h" || arg == "--help") {
      help_requested_ = true;
      return true;
    }
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const std::size_t eq = arg.find('=');
      const std::string name = arg.substr(0, eq);
      const Option* match = nullptr;
      for (const Option& opt : options_) {
        if (opt.name == name) {
          match = &opt;
          break;
        }
      }
      if (match == nullptr) return Fail("unknown option " + name);
      if (match->value_name.empty()) {
        if (eq != std::string::npos) {
          return Fail(name + " takes no value");
        }
        match->set("");
        continue;
      }
      std::string value;
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
      } else {
        if (a + 1 >= argc) return Fail(name + " needs a value");
        value = argv[++a];
      }
      if (!match->set(value)) {
        return Fail("bad value '" + value + "' for " + name);
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Fail("unknown option " + arg);
    }
    if (next_positional >= positionals_.size()) {
      return Fail("unexpected argument '" + arg + "'");
    }
    Positional& pos = positionals_[next_positional++];
    if (!pos.set(arg)) {
      return Fail("bad value '" + arg + "' for <" + pos.name + ">");
    }
  }
  if (next_positional < positionals_.size() &&
      positionals_[next_positional].required) {
    return Fail("missing required argument <" +
                positionals_[next_positional].name + ">");
  }
  return true;
}

std::string ArgParser::UsageLine() const {
  std::string line = "usage: " + program_;
  for (const Positional& pos : positionals_) {
    line += pos.required ? " <" + pos.name + ">" : " [" + pos.name + "]";
  }
  if (!options_.empty()) line += " [options]";
  return line;
}

std::string ArgParser::HelpText() const {
  std::string text = UsageLine() + "\n";
  if (!summary_.empty()) text += "\n" + summary_ + "\n";
  if (!positionals_.empty()) {
    text += "\narguments:\n";
    for (const Positional& pos : positionals_) {
      std::string label = "  " + pos.name;
      if (!pos.required) label += " (optional)";
      while (label.size() < 26) label += ' ';
      text += label + pos.help + "\n";
    }
  }
  if (!options_.empty()) {
    text += "\noptions:\n";
    for (const Option& opt : options_) {
      std::string label = "  " + opt.name;
      if (!opt.value_name.empty()) label += " " + opt.value_name;
      while (label.size() < 26) label += ' ';
      text += label + opt.help + "\n";
    }
  }
  text += "\n  -h, --help              show this help and exit\n";
  return text;
}

void ArgParser::ExitWithError() const {
  std::fprintf(stderr, "%s: %s\n%s\n", program_.c_str(), error_.c_str(),
               UsageLine().c_str());
  std::exit(2);
}

void ArgParser::ExitWithHelp() const {
  std::fputs(HelpText().c_str(), stdout);
  std::exit(0);
}

}  // namespace osap::util
