// Descriptive statistics used across the library: Welford running moments
// (for the U_pi/U_V sliding-variance trigger and for feature scaling), batch
// summaries (for the Figure 4 min/max/mean/median rows), quantiles and
// empirical CDFs (Figure 5), and simple vector helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace osap {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations so far.
  std::size_t Count() const { return n_; }

  /// Mean of observations; 0 when empty.
  double Mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Population variance (divides by n); 0 when fewer than 2 observations.
  double Variance() const;

  /// Sample variance (divides by n-1); 0 when fewer than 2 observations.
  double SampleVariance() const;

  /// Population standard deviation.
  double StdDev() const;

  /// Smallest / largest observation; 0 when empty.
  double Min() const { return n_ == 0 ? 0.0 : min_; }
  double Max() const { return n_ == 0 ? 0.0 : max_; }

  /// Resets to the empty state.
  void Reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity sliding window with O(1) mean/variance queries, used by
/// the defaulting trigger ("variance of the uncertainty signal across the
/// last k time steps", paper Section 2.5) and by the ND feature extractor
/// ("mean and standard deviation of the 10 most recent network
/// throughputs", Section 3.1).
///
/// The ring storage either lives in a private heap allocation (the
/// capacity constructor) or is placed into caller-owned memory (the span
/// constructor) - the serving path carves per-session windows out of a
/// shard slab so a session costs no private allocation. Copies are always
/// deep into a fresh owned buffer; moves steal the source's storage.
class SlidingWindowStats {
 public:
  /// Window of the given capacity with owned storage; capacity must be
  /// > 0.
  explicit SlidingWindowStats(std::size_t capacity);

  /// Window placed into `storage` (capacity = storage.size(), must be
  /// > 0). The caller keeps `storage` alive and in place for the
  /// window's lifetime; contents need not be initialized.
  explicit SlidingWindowStats(std::span<double> storage);

  ~SlidingWindowStats();
  SlidingWindowStats(const SlidingWindowStats& other);
  SlidingWindowStats& operator=(const SlidingWindowStats& other);
  SlidingWindowStats(SlidingWindowStats&& other) noexcept;
  SlidingWindowStats& operator=(SlidingWindowStats&& other) noexcept;

  /// Pushes an observation, evicting the oldest when full.
  void Push(double x);

  /// True once capacity observations have been pushed.
  bool Full() const { return size_ == capacity_; }

  std::size_t Size() const { return size_; }
  std::size_t Capacity() const { return capacity_; }

  /// Mean over current contents; 0 when empty.
  double Mean() const;

  /// Population variance over current contents; 0 when fewer than 2.
  double Variance() const;

  /// Population standard deviation.
  double StdDev() const;

  /// Contents oldest-first (copies; window is small by construction).
  std::vector<double> Values() const;

  void Reset();

 private:
  double* data_ = nullptr;  // ring buffer (owned iff owns_)
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  std::uint32_t capacity_ = 0;
  std::uint32_t size_ = 0;
  std::uint32_t head_ = 0;  // index of oldest element once full
  bool owns_ = false;
};

/// Batch summary of a sample: the exact statistics Figure 4 reports.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

/// Computes a Summary; tolerates empty input (all-zero summary).
Summary Summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for empty input.
double Mean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than 2 elements.
double StdDev(std::span<const double> xs);

/// Median via partial sort of a copy; 0 for empty input.
double Median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]. Requires non-empty input.
double Quantile(std::span<const double> xs, double q);

/// One (value, cumulative-probability) point per sorted sample, i.e. the
/// empirical CDF Figure 5 plots. Probability of the i-th smallest value is
/// (i+1)/n.
std::vector<std::pair<double, double>> EmpiricalCdf(
    std::span<const double> xs);

}  // namespace osap
