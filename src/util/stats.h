// Descriptive statistics used across the library: Welford running moments
// (for the U_pi/U_V sliding-variance trigger and for feature scaling), batch
// summaries (for the Figure 4 min/max/mean/median rows), quantiles and
// empirical CDFs (Figure 5), and simple vector helpers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace osap {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations so far.
  std::size_t Count() const { return n_; }

  /// Mean of observations; 0 when empty.
  double Mean() const { return n_ == 0 ? 0.0 : mean_; }

  /// Population variance (divides by n); 0 when fewer than 2 observations.
  double Variance() const;

  /// Sample variance (divides by n-1); 0 when fewer than 2 observations.
  double SampleVariance() const;

  /// Population standard deviation.
  double StdDev() const;

  /// Smallest / largest observation; 0 when empty.
  double Min() const { return n_ == 0 ? 0.0 : min_; }
  double Max() const { return n_ == 0 ? 0.0 : max_; }

  /// Resets to the empty state.
  void Reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity sliding window with O(1) mean/variance queries, used by
/// the defaulting trigger ("variance of the uncertainty signal across the
/// last k time steps", paper Section 2.5) and by the ND feature extractor
/// ("mean and standard deviation of the 10 most recent network
/// throughputs", Section 3.1).
class SlidingWindowStats {
 public:
  /// Window of the given capacity; capacity must be > 0.
  explicit SlidingWindowStats(std::size_t capacity);

  /// Pushes an observation, evicting the oldest when full.
  void Push(double x);

  /// True once capacity observations have been pushed.
  bool Full() const { return buffer_.size() == capacity_; }

  std::size_t Size() const { return buffer_.size(); }
  std::size_t Capacity() const { return capacity_; }

  /// Mean over current contents; 0 when empty.
  double Mean() const;

  /// Population variance over current contents; 0 when fewer than 2.
  double Variance() const;

  /// Population standard deviation.
  double StdDev() const;

  /// Contents oldest-first (copies; window is small by construction).
  std::vector<double> Values() const;

  void Reset();

 private:
  std::size_t capacity_;
  std::vector<double> buffer_;  // ring buffer
  std::size_t head_ = 0;        // index of oldest element
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Batch summary of a sample: the exact statistics Figure 4 reports.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

/// Computes a Summary; tolerates empty input (all-zero summary).
Summary Summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for empty input.
double Mean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than 2 elements.
double StdDev(std::span<const double> xs);

/// Median via partial sort of a copy; 0 for empty input.
double Median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1]. Requires non-empty input.
double Quantile(std::span<const double> xs, double q);

/// One (value, cumulative-probability) point per sorted sample, i.e. the
/// empirical CDF Figure 5 plots. Probability of the i-th smallest value is
/// (i+1)/n.
std::vector<std::pair<double, double>> EmpiricalCdf(
    std::span<const double> xs);

}  // namespace osap
