// Invariant-checking macros used throughout the library.
//
// OSAP_CHECK enforces preconditions and invariants that indicate programmer
// error; violations throw std::logic_error with file/line context so tests
// can assert on them and applications fail loudly rather than silently.
// OSAP_REQUIRE is for user-facing argument validation and throws
// std::invalid_argument.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace osap {

namespace detail {

[[noreturn]] inline void CheckFailed(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " - " << msg;
  if (std::string(kind) == "OSAP_REQUIRE") throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace detail

#define OSAP_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::osap::detail::CheckFailed("OSAP_CHECK", #expr, __FILE__, __LINE__,   \
                                  "");                                       \
  } while (false)

#define OSAP_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr))                                                             \
      ::osap::detail::CheckFailed("OSAP_CHECK", #expr, __FILE__, __LINE__,   \
                                  (msg));                                    \
  } while (false)

#define OSAP_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr))                                                             \
      ::osap::detail::CheckFailed("OSAP_REQUIRE", #expr, __FILE__, __LINE__, \
                                  (msg));                                    \
  } while (false)

}  // namespace osap
