#include "util/memory_meter.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace osap::util {

std::size_t RssBytesFromStatm(const char* statm_path) {
  std::FILE* f = std::fopen(statm_path, "r");
  if (f == nullptr) return 0;
  long total_pages = 0;
  long resident_pages = 0;
  const int fields = std::fscanf(f, "%ld %ld", &total_pages, &resident_pages);
  std::fclose(f);
  if (fields != 2 || resident_pages < 0) return 0;
#if defined(_SC_PAGESIZE)
  const long page = sysconf(_SC_PAGESIZE);
#else
  const long page = 4096;
#endif
  return static_cast<std::size_t>(resident_pages) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
}

std::size_t PeakRssBytesFromStatus(const char* status_path) {
  std::FILE* f = std::fopen(status_path, "r");
  if (f == nullptr) return 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) != 0) continue;
    long kib = 0;
    if (std::sscanf(line + 6, "%ld", &kib) == 1 && kib >= 0) {
      std::fclose(f);
      return static_cast<std::size_t>(kib) * 1024;
    }
    break;
  }
  std::fclose(f);
  return 0;
}

std::size_t CurrentRssBytes() { return RssBytesFromStatm("/proc/self/statm"); }

std::size_t PeakRssBytes() {
  const std::size_t from_status = PeakRssBytesFromStatus("/proc/self/status");
  if (from_status > 0) return from_status;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
    // Linux reports ru_maxrss in KiB (macOS in bytes, but macOS never
    // reaches here: /proc is absent and this branch reports bytes anyway,
    // an acceptable upper bound).
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
  }
#endif
  return 0;
}

void MemoryMeter::Add(std::string_view category, std::size_t bytes) {
  for (auto& [name, total] : entries_) {
    if (name == category) {
      total += bytes;
      return;
    }
  }
  entries_.emplace_back(std::string(category), bytes);
}

std::size_t MemoryMeter::Get(std::string_view category) const {
  for (const auto& [name, total] : entries_) {
    if (name == category) return total;
  }
  return 0;
}

std::size_t MemoryMeter::Total() const {
  std::size_t total = 0;
  for (const auto& [name, bytes] : entries_) total += bytes;
  return total;
}

}  // namespace osap::util
