#include "util/io_uring.h"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace osap::util {

namespace {

int SysSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_setup, entries, params));
}

int SysEnter(int fd, unsigned to_submit, unsigned min_complete,
             unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int SysRegister(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// The ring head/tail words are shared with the kernel; the ABI wants
// acquire loads on the side the kernel writes and release stores on the
// side we write.
unsigned LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
void StoreRelease(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

IoUring::~IoUring() { Close(); }

void IoUring::Close() {
  if (buf_ring_ != nullptr) {
    ::munmap(buf_ring_, buf_ring_bytes_);
    buf_ring_ = nullptr;
  }
  if (buf_mem_ != nullptr) {
    ::munmap(buf_mem_, buf_mem_bytes_);
    buf_mem_ = nullptr;
  }
  if (sqes_ != nullptr) {
    ::munmap(sqes_, sqes_bytes_);
    sqes_ = nullptr;
  }
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  cq_ring_ = nullptr;
  if (sq_ring_ != nullptr) {
    ::munmap(sq_ring_, sq_ring_bytes_);
    sq_ring_ = nullptr;
  }
  if (ring_fd_ >= 0) {
    ::close(ring_fd_);
    ring_fd_ = -1;
  }
}

bool IoUring::Init(unsigned sq_entries, unsigned cq_entries) {
  io_uring_params params{};
  params.flags = IORING_SETUP_CLAMP;
  if (cq_entries > 0) {
    params.flags |= IORING_SETUP_CQSIZE;
    params.cq_entries = cq_entries;
  }
  ring_fd_ = SysSetup(sq_entries, &params);
  if (ring_fd_ < 0) {
    ring_fd_ = -1;
    return false;
  }
  features_ = params.features;

  sq_ring_bytes_ =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  if ((features_ & IORING_FEAT_SINGLE_MMAP) != 0) {
    sq_ring_bytes_ = cq_ring_bytes_ =
        sq_ring_bytes_ > cq_ring_bytes_ ? sq_ring_bytes_ : cq_ring_bytes_;
  }
  sq_ring_ = static_cast<std::uint8_t*>(
      ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING));
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    Close();
    return false;
  }
  if ((features_ & IORING_FEAT_SINGLE_MMAP) != 0) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = static_cast<std::uint8_t*>(
        ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING));
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      Close();
      return false;
    }
  }
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    Close();
    return false;
  }

  sq_khead_ = reinterpret_cast<unsigned*>(sq_ring_ + params.sq_off.head);
  sq_ktail_ = reinterpret_cast<unsigned*>(sq_ring_ + params.sq_off.tail);
  sq_kflags_ = reinterpret_cast<unsigned*>(sq_ring_ + params.sq_off.flags);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq_ring_ + params.sq_off.ring_mask);
  sq_entries_ = params.sq_entries;
  sq_local_tail_ = *sq_ktail_;
  // Identity sq_array, written once: slot i of the indirection ring
  // always names SQE i, so publishing the tail is the whole submit.
  unsigned* sq_array =
      reinterpret_cast<unsigned*>(sq_ring_ + params.sq_off.array);
  for (unsigned i = 0; i < params.sq_entries; ++i) sq_array[i] = i;

  cq_khead_ = reinterpret_cast<unsigned*>(cq_ring_ + params.cq_off.head);
  cq_ktail_ = reinterpret_cast<unsigned*>(cq_ring_ + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq_ring_ + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq_ring_ + params.cq_off.cqes);
  return true;
}

io_uring_sqe* IoUring::GetSqe() {
  if (sq_local_tail_ - LoadAcquire(sq_khead_) >= sq_entries_) {
    Submit();  // non-SQPOLL: enter consumes the whole queue synchronously
    if (sq_local_tail_ - LoadAcquire(sq_khead_) >= sq_entries_) {
      throw std::runtime_error("IoUring: submission queue stuck full");
    }
  }
  io_uring_sqe* sqe = &sqes_[sq_local_tail_ & sq_mask_];
  ++sq_local_tail_;
  std::memset(sqe, 0, sizeof *sqe);
  return sqe;
}

unsigned IoUring::Submit(unsigned wait_nr) {
  StoreRelease(sq_ktail_, sq_local_tail_);
  const unsigned to_submit = sq_local_tail_ - LoadAcquire(sq_khead_);
  const bool overflow =
      (LoadAcquire(sq_kflags_) & IORING_SQ_CQ_OVERFLOW) != 0;
  if (to_submit == 0 && wait_nr == 0 && !overflow) return 0;
  for (;;) {
    const int ret =
        SysEnter(ring_fd_, to_submit, wait_nr, IORING_ENTER_GETEVENTS);
    ++enter_calls_;
    if (ret >= 0) return static_cast<unsigned>(ret);
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("IoUring: io_uring_enter: ") +
                             std::strerror(errno));
  }
}

io_uring_cqe* IoUring::PeekCqe() {
  const unsigned head = *cq_khead_;  // we are the only consumer
  if (head == LoadAcquire(cq_ktail_)) return nullptr;
  return &cqes_[head & cq_mask_];
}

void IoUring::AdvanceCqe(unsigned n) {
  StoreRelease(cq_khead_, *cq_khead_ + n);
}

bool IoUring::RegisterBufRing(std::uint16_t bgid, std::uint32_t count,
                              std::uint32_t size) {
  if (count == 0 || (count & (count - 1)) != 0) return false;
  // MAP_SHARED is load-bearing: the kernel pins the ring pages at
  // registration time, BEFORE we write the first descriptor. A private
  // anonymous mapping would pin the CoW zero page and our later writes
  // would fault in a fresh page the kernel never looks at - every
  // buffer-select op then fails ENOBUFS against a forever-empty ring.
  buf_ring_bytes_ = count * sizeof(io_uring_buf);
  buf_ring_ = static_cast<io_uring_buf_ring*>(
      ::mmap(nullptr, buf_ring_bytes_, PROT_READ | PROT_WRITE,
             MAP_ANONYMOUS | MAP_SHARED, -1, 0));
  if (buf_ring_ == MAP_FAILED) {
    buf_ring_ = nullptr;
    return false;
  }
  buf_mem_bytes_ = static_cast<std::size_t>(count) * size;
  buf_mem_ = static_cast<std::uint8_t*>(
      ::mmap(nullptr, buf_mem_bytes_, PROT_READ | PROT_WRITE,
             MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
  if (buf_mem_ == MAP_FAILED) {
    buf_mem_ = nullptr;
    ::munmap(buf_ring_, buf_ring_bytes_);
    buf_ring_ = nullptr;
    return false;
  }
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uint64_t>(buf_ring_);
  reg.ring_entries = count;
  reg.bgid = bgid;
  if (SysRegister(ring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
    ::munmap(buf_mem_, buf_mem_bytes_);
    buf_mem_ = nullptr;
    ::munmap(buf_ring_, buf_ring_bytes_);
    buf_ring_ = nullptr;
    return false;
  }
  buf_bgid_ = bgid;
  buf_count_ = count;
  buf_size_ = size;
  buf_mask_ = static_cast<std::uint16_t>(count - 1);
  buf_local_tail_ = 0;
  for (std::uint32_t bid = 0; bid < count; ++bid) {
    RecycleBuffer(static_cast<std::uint16_t>(bid));
  }
  return true;
}

void IoUring::RecycleBuffer(std::uint16_t bid) {
  // NOT buf_ring_->bufs[...]: __DECLARE_FLEX_ARRAY pads the flex member
  // with a one-byte struct under C++, shifting bufs[] to offset 8. The
  // kernel ABI puts descriptor 0 at offset 0, so index the ring base
  // directly (tail, on the union's other side, is unaffected).
  io_uring_buf* entries = reinterpret_cast<io_uring_buf*>(buf_ring_);
  io_uring_buf* entry = &entries[buf_local_tail_ & buf_mask_];
  entry->addr = reinterpret_cast<std::uint64_t>(
      buf_mem_ + static_cast<std::size_t>(bid) * buf_size_);
  entry->len = buf_size_;
  entry->bid = bid;
  ++buf_local_tail_;
  __atomic_store_n(&buf_ring_->tail, buf_local_tail_, __ATOMIC_RELEASE);
}

namespace {

const char* g_unsupported_reason = "";

bool ProbeOnce() {
  IoUring ring;
  if (!ring.Init(8)) {
    g_unsupported_reason = (errno == ENOSYS || errno == EPERM ||
                            errno == EACCES)
                               ? "io_uring_setup denied (ENOSYS/EPERM)"
                               : "io_uring_setup failed";
    return false;
  }
  if (!ring.RegisterBufRing(0, 8, 4096)) {
    g_unsupported_reason = "provided-buffer rings unsupported (< 5.19)";
    return false;
  }
  // Op-table version check: multishot accept/recv landed by 6.0, the
  // same release as IORING_OP_SEND_ZC - an op the probe CAN see.
  alignas(io_uring_probe) std::uint8_t
      probe_mem[sizeof(io_uring_probe) + 256 * sizeof(io_uring_probe_op)] = {};
  auto* probe = reinterpret_cast<io_uring_probe*>(probe_mem);
  if (::syscall(__NR_io_uring_register, ring.ring_fd(), IORING_REGISTER_PROBE,
                probe, 256) < 0 ||
      probe->last_op < IORING_OP_SEND_ZC) {
    g_unsupported_reason = "kernel predates multishot recv (< 6.0)";
    return false;
  }
  // One NOP round trip proves submit + reap end to end.
  io_uring_sqe* sqe = ring.GetSqe();
  sqe->opcode = IORING_OP_NOP;
  sqe->user_data = 42;
  ring.Submit(1);
  io_uring_cqe* cqe = ring.PeekCqe();
  if (cqe == nullptr || cqe->user_data != 42) {
    g_unsupported_reason = "NOP round trip failed";
    return false;
  }
  ring.AdvanceCqe();
  return true;
}

}  // namespace

bool IoUring::KernelSupported() {
  static const bool supported = ProbeOnce();
  return supported;
}

const char* IoUring::UnsupportedReason() {
  return KernelSupported() ? "" : g_unsupported_reason;
}

}  // namespace osap::util
