#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace osap {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::SampleVariance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void RunningStats::Reset() {
  n_ = 0;
  mean_ = m2_ = min_ = max_ = 0.0;
}

SlidingWindowStats::SlidingWindowStats(std::size_t capacity)
    : data_(nullptr),
      capacity_(static_cast<std::uint32_t>(capacity)),
      owns_(true) {
  OSAP_REQUIRE(capacity > 0, "SlidingWindowStats capacity must be > 0");
  data_ = new double[capacity_];
}

SlidingWindowStats::SlidingWindowStats(std::span<double> storage)
    : data_(storage.data()),
      capacity_(static_cast<std::uint32_t>(storage.size())),
      owns_(false) {
  OSAP_REQUIRE(!storage.empty(), "SlidingWindowStats capacity must be > 0");
}

SlidingWindowStats::~SlidingWindowStats() {
  if (owns_) delete[] data_;
}

SlidingWindowStats::SlidingWindowStats(const SlidingWindowStats& other)
    : sum_(other.sum_),
      sum_sq_(other.sum_sq_),
      capacity_(other.capacity_),
      size_(other.size_),
      head_(other.head_),
      owns_(true) {
  // Copies always own their storage (a placement-backed source stays tied
  // to its slab; its copy must not).
  data_ = new double[capacity_];
  for (std::uint32_t i = 0; i < size_; ++i) data_[i] = other.data_[i];
}

SlidingWindowStats& SlidingWindowStats::operator=(
    const SlidingWindowStats& other) {
  if (this == &other) return *this;
  SlidingWindowStats copy(other);
  *this = std::move(copy);
  return *this;
}

SlidingWindowStats::SlidingWindowStats(SlidingWindowStats&& other) noexcept
    : data_(other.data_),
      sum_(other.sum_),
      sum_sq_(other.sum_sq_),
      capacity_(other.capacity_),
      size_(other.size_),
      head_(other.head_),
      owns_(other.owns_) {
  other.data_ = nullptr;
  other.capacity_ = other.size_ = other.head_ = 0;
  other.owns_ = false;
}

SlidingWindowStats& SlidingWindowStats::operator=(
    SlidingWindowStats&& other) noexcept {
  if (this == &other) return *this;
  if (owns_) delete[] data_;
  data_ = other.data_;
  sum_ = other.sum_;
  sum_sq_ = other.sum_sq_;
  capacity_ = other.capacity_;
  size_ = other.size_;
  head_ = other.head_;
  owns_ = other.owns_;
  other.data_ = nullptr;
  other.capacity_ = other.size_ = other.head_ = 0;
  other.owns_ = false;
  return *this;
}

void SlidingWindowStats::Push(double x) {
  if (size_ < capacity_) {
    data_[size_++] = x;
  } else {
    const double old = data_[head_];
    sum_ -= old;
    sum_sq_ -= old * old;
    data_[head_] = x;
    head_ = (head_ + 1) % capacity_;
  }
  sum_ += x;
  sum_sq_ += x * x;
}

double SlidingWindowStats::Mean() const {
  return size_ == 0 ? 0.0 : sum_ / static_cast<double>(size_);
}

double SlidingWindowStats::Variance() const {
  if (size_ < 2) return 0.0;
  const double n = static_cast<double>(size_);
  const double m = sum_ / n;
  // Guard against tiny negative values from cancellation.
  return std::max(0.0, sum_sq_ / n - m * m);
}

double SlidingWindowStats::StdDev() const { return std::sqrt(Variance()); }

std::vector<double> SlidingWindowStats::Values() const {
  std::vector<double> out;
  out.reserve(size_);
  for (std::uint32_t i = 0; i < size_; ++i) {
    out.push_back(data_[(head_ + i) % size_]);
  }
  return out;
}

void SlidingWindowStats::Reset() {
  size_ = 0;
  head_ = 0;
  sum_ = sum_sq_ = 0.0;
}

Summary Summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  s.min = rs.Min();
  s.max = rs.Max();
  s.mean = rs.Mean();
  s.stddev = rs.StdDev();
  s.median = Median(xs);
  return s;
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  return rs.StdDev();
}

double Median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<long>(mid),
                   copy.end());
  const double upper = copy[mid];
  if (copy.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(copy.begin(), copy.begin() + static_cast<long>(mid));
  return 0.5 * (lower + upper);
}

double Quantile(std::span<const double> xs, double q) {
  OSAP_REQUIRE(!xs.empty(), "Quantile requires non-empty input");
  OSAP_REQUIRE(q >= 0.0 && q <= 1.0, "Quantile q must be in [0,1]");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const double pos = q * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] * (1.0 - frac) + copy[hi] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf(
    std::span<const double> xs) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  std::vector<std::pair<double, double>> cdf;
  cdf.reserve(copy.size());
  const double n = static_cast<double>(copy.size());
  for (std::size_t i = 0; i < copy.size(); ++i) {
    cdf.emplace_back(copy[i], static_cast<double>(i + 1) / n);
  }
  return cdf;
}

}  // namespace osap
