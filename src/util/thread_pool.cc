#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace osap::util {

namespace {

/// True on threads currently executing a ParallelFor body; nested calls
/// from such threads run inline instead of re-entering the pool.
thread_local bool t_in_parallel_for = false;

/// Scratch slot of the current thread: worker w of the pool that owns it
/// reports w + 1, every other thread reports 0. See CurrentSlot().
thread_local std::size_t t_slot = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t ThreadPool::CurrentSlot() { return t_slot; }

std::size_t ThreadPool::ParseSharedConcurrency(const char* value) {
  if (value == nullptr) return HardwareConcurrency();
  const char* p = value;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p < '0' || *p > '9') return HardwareConcurrency();
  std::size_t parsed = 0;
  for (; *p >= '0' && *p <= '9'; ++p) {
    if (parsed > (std::numeric_limits<std::size_t>::max() - 9) / 10) {
      return HardwareConcurrency();  // overflow: treat as malformed
    }
    parsed = parsed * 10 + static_cast<std::size_t>(*p - '0');
  }
  while (*p == ' ' || *p == '\t') ++p;
  if (*p != '\0' || parsed == 0) return HardwareConcurrency();
  return parsed;
}

std::size_t ThreadPool::SharedConcurrency() {
  return ParseSharedConcurrency(std::getenv("OSAP_THREADS"));
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(SharedConcurrency() - 1);
  return pool;
}

void ThreadPool::DrainJob(std::unique_lock<std::mutex>& lock) {
  while (job_.next < job_.end) {
    const std::size_t chunk_begin = job_.next;
    const std::size_t chunk_end =
        std::min(chunk_begin + job_.chunk, job_.end);
    job_.next = chunk_end;
    job_.in_flight += chunk_end - chunk_begin;
    lock.unlock();
    std::exception_ptr error;
    t_in_parallel_for = true;
    for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
      try {
        (*job_.fn)(i);
      } catch (...) {
        error = std::current_exception();
        break;  // abandon the rest of this chunk
      }
    }
    t_in_parallel_for = false;
    lock.lock();
    job_.in_flight -= chunk_end - chunk_begin;
    if (error && !job_.error) {
      job_.error = error;
      job_.next = job_.end;  // abandon unclaimed indices
    }
  }
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  t_slot = worker_index + 1;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stop_ || (has_job_ && job_.next < job_.end &&
                       job_.active < job_.worker_cap);
    });
    if (stop_) return;
    ++job_.active;
    DrainJob(lock);
    --job_.active;
    if (job_.in_flight == 0) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  ParallelFor(begin, end, fn, ParallelOptions{});
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn,
                             const ParallelOptions& options) {
  OSAP_REQUIRE(begin <= end, "ParallelFor: begin must be <= end");
  if (begin == end) return;
  const std::size_t cap = std::min(options.max_workers, workers_.size());
  if (cap == 0 || end - begin == 1 || t_in_parallel_for) {
    // Serial fallback: no workers available (or allowed), a single item,
    // or a nested call from inside a worker (claiming pool capacity here
    // could deadlock).
    const bool was_nested = t_in_parallel_for;
    t_in_parallel_for = true;
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      t_in_parallel_for = was_nested;
      throw;
    }
    t_in_parallel_for = was_nested;
    return;
  }

  std::size_t chunk = options.chunk;
  if (chunk == 0) {
    // ~4 fetches per participant: coarse enough to amortize the counter
    // lock on fine-grained loops, fine enough to rebalance stragglers.
    chunk = std::max<std::size_t>(1, (end - begin) / ((cap + 1) * 4));
  }

  std::unique_lock<std::mutex> lock(mutex_);
  // Concurrent callers queue here until the pool is idle again.
  done_cv_.wait(lock, [this] { return !has_job_; });
  job_ = Job{};
  job_.next = begin;
  job_.end = end;
  job_.fn = &fn;
  job_.chunk = chunk;
  job_.worker_cap = cap;
  has_job_ = true;
  work_cv_.notify_all();

  DrainJob(lock);  // the caller works too
  done_cv_.wait(lock, [this] {
    return job_.in_flight == 0 && job_.active == 0;
  });
  has_job_ = false;
  const std::exception_ptr error = job_.error;
  job_ = Job{};
  done_cv_.notify_all();  // wake queued callers
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace osap::util
