#include "util/thread_pool.h"

#include "util/check.h"

namespace osap::util {

namespace {

/// True on threads currently executing a ParallelFor body; nested calls
/// from such threads run inline instead of re-entering the pool.
thread_local bool t_in_parallel_for = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::DrainJob(std::unique_lock<std::mutex>& lock) {
  while (job_.next < job_.end) {
    const std::size_t i = job_.next++;
    ++job_.in_flight;
    lock.unlock();
    std::exception_ptr error;
    try {
      t_in_parallel_for = true;
      (*job_.fn)(i);
    } catch (...) {
      error = std::current_exception();
    }
    t_in_parallel_for = false;
    lock.lock();
    --job_.in_flight;
    if (error && !job_.error) {
      job_.error = error;
      job_.next = job_.end;  // abandon unclaimed indices
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stop_ || (has_job_ && job_.next < job_.end);
    });
    if (stop_) return;
    DrainJob(lock);
    if (job_.in_flight == 0) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  OSAP_REQUIRE(begin <= end, "ParallelFor: begin must be <= end");
  if (begin == end) return;
  if (workers_.empty() || end - begin == 1 || t_in_parallel_for) {
    // Serial fallback: no workers, a single item, or a nested call from
    // inside a worker (claiming pool capacity here could deadlock).
    const bool was_nested = t_in_parallel_for;
    t_in_parallel_for = true;
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      t_in_parallel_for = was_nested;
      throw;
    }
    t_in_parallel_for = was_nested;
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  OSAP_CHECK_MSG(!has_job_, "ParallelFor: pool already running a job");
  job_ = Job{};
  job_.next = begin;
  job_.end = end;
  job_.fn = &fn;
  has_job_ = true;
  work_cv_.notify_all();

  DrainJob(lock);  // the caller works too
  done_cv_.wait(lock, [this] { return job_.in_flight == 0; });
  has_job_ = false;
  const std::exception_ptr error = job_.error;
  job_ = Job{};
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace osap::util
