// Runtime SIMD dispatch shared by every vectorized kernel in the tree:
// the nn batched-inference / backward kernels and the svm batched OC-SVM
// decision scan. It lives in util so that svm (which, per the CMake
// layering, must not depend on nn) can share one dispatch decision with
// the nn kernels; nn/simd.h re-exports these names into osap::nn for the
// existing call sites.
//
// All AVX2 kernels in this codebase are bit-identical to their scalar
// counterparts by construction (no FMA, every output element keeps its own
// scalar accumulation chain), so dispatch is purely a speed decision:
//   - the CPU must report AVX2, and
//   - the OSAP_NO_AVX2=1 environment variable must not be set (lets CI
//     machines with AVX2 exercise the scalar numerics, and is the
//     escape hatch if a host ever misreports support).
// Tests can additionally force either path in-process to prove the
// scalar/AVX2 equivalence without re-exec.
#pragma once

namespace osap::util {

/// True when the AVX2 kernels should run: CPU support, no OSAP_NO_AVX2=1
/// in the environment, and no active test override to the contrary.
bool UseAvx2();

/// Test hook: forces dispatch to the scalar path (false) or the AVX2 path
/// (true). Forcing AVX2 on a CPU without it still yields the scalar path
/// (running the kernels would fault). Not thread-safe against concurrent
/// kernel launches; intended for single-threaded equivalence tests.
void ForceSimdForTest(bool use_avx2);

/// Restores environment/CPU-based dispatch after ForceSimdForTest.
void ResetSimdForTest();

}  // namespace osap::util
