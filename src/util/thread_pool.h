// Fixed-size worker thread pool with a ParallelFor helper.
//
// The pool exists for the embarrassingly-parallel outer loops of the
// workbench (per-trace evaluation rollouts, per-member ensemble training):
// work items are indexed, workers claim index chunks from a shared counter,
// and every result is written to a caller-owned slot addressed by the
// item's index - so the *scheduling* order is nondeterministic but the
// *results* are positionally deterministic and bit-identical to a serial
// loop over the same items.
//
// ParallelFor blocks until every index has been processed. The calling
// thread participates in the work, so a pool of T threads applies T + 1
// workers to the loop and ParallelFor(…) on a 0-thread pool degrades to a
// plain serial loop. Exceptions thrown by the body are captured and the
// first one is rethrown on the calling thread after the loop drains.
// Nested ParallelFor calls from inside a worker run the inner loop inline
// (serially) instead of deadlocking on the pool.
//
// Concurrent ParallelFor calls from different threads serialize: the
// second caller blocks until the pool is idle, then posts its job. This
// lets independent subsystems share one process-wide pool (see Shared())
// instead of each constructing its own set of threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace osap::util {

/// Per-call tuning for ThreadPool::ParallelFor. Neither field affects
/// results - scheduling only.
struct ParallelOptions {
  /// Upper bound on *pool* workers that may join the loop (the calling
  /// thread always participates, so the loop runs on at most
  /// max_workers + 1 threads). 0 forces a serial loop on the caller; the
  /// default lets every pool worker join. This is how a user-facing
  /// "threads" knob caps a shared pool without resizing it.
  std::size_t max_workers = std::numeric_limits<std::size_t>::max();
  /// Indices claimed per counter fetch. 0 picks a heuristic from the
  /// range size and worker count (coarse enough to amortize the lock,
  /// fine enough to load-balance). Use 1 for very coarse items (e.g.
  /// whole-trace rollouts).
  std::size_t chunk = 0;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 is allowed (ParallelFor runs serially on
  /// the caller).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Number of pool workers (excluding the calling thread).
  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [begin, end), distributing indices across
  /// the workers and the calling thread. Blocks until done; rethrows the
  /// first exception any invocation threw.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn,
                   const ParallelOptions& options);

  /// Number of distinct scratch slots ParallelFor bodies may observe via
  /// CurrentSlot(): one per worker plus one for the calling thread.
  std::size_t SlotCount() const { return workers_.size() + 1; }

  /// Stable per-thread scratch index for the current thread: pool worker
  /// w reports w + 1, any non-worker thread (the ParallelFor caller,
  /// including the serial fallback) reports 0. Because a pool runs one
  /// job at a time, indexing a caller-owned array of SlotCount() scratch
  /// buffers by CurrentSlot() gives each participating thread a private
  /// buffer that is reused across items - the mechanism behind
  /// allocation-free parallel loops.
  static std::size_t CurrentSlot();

  /// Lazily-initialized process-wide pool sized to SharedConcurrency() - 1
  /// workers. Subsystems share it (ParallelFor calls serialize) instead
  /// of constructing per-call pools; per-call ParallelOptions::max_workers
  /// caps effective parallelism below the pool size.
  static ThreadPool& Shared();

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 when undetectable).
  static std::size_t HardwareConcurrency();

  /// Total concurrency (workers + caller) the Shared() pool is sized for:
  /// the OSAP_THREADS environment variable when it parses to a positive
  /// integer, HardwareConcurrency() otherwise. The override gives benches
  /// and CI a deterministic pool width on 1-core hosts. Read once, at the
  /// Shared() pool's first use.
  static std::size_t SharedConcurrency();

  /// SharedConcurrency's parsing rule, exposed for tests: `value` is the
  /// raw environment string (nullptr when unset). Positive integers (with
  /// optional surrounding whitespace) win; anything else - unset, empty,
  /// zero, negative, non-numeric, trailing junk - falls back to
  /// HardwareConcurrency().
  static std::size_t ParseSharedConcurrency(const char* value);

 private:
  struct Job {
    std::size_t end = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t next = 0;        // next unclaimed index
    std::size_t chunk = 1;       // indices claimed per fetch
    std::size_t in_flight = 0;   // indices claimed but not finished
    std::size_t worker_cap = 0;  // max pool workers allowed to join
    std::size_t active = 0;      // pool workers currently draining
    std::exception_ptr error;
  };

  void WorkerLoop(std::size_t worker_index);
  /// Claims and runs index chunks of the current job until none remain.
  void DrainJob(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: job posted / stop
  std::condition_variable done_cv_;  // signals callers: job drained / idle
  Job job_;
  bool has_job_ = false;
  bool stop_ = false;
};

}  // namespace osap::util
