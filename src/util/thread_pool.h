// Fixed-size worker thread pool with a ParallelFor helper.
//
// The pool exists for the embarrassingly-parallel outer loops of the
// workbench (per-trace evaluation rollouts, per-member ensemble training):
// work items are indexed, workers claim indices from a shared counter, and
// every result is written to a caller-owned slot addressed by the item's
// index - so the *scheduling* order is nondeterministic but the *results*
// are positionally deterministic and bit-identical to a serial loop over
// the same items.
//
// ParallelFor blocks until every index has been processed. The calling
// thread participates in the work, so a pool of T threads applies T + 1
// workers to the loop and ParallelFor(…) on a 0-thread pool degrades to a
// plain serial loop. Exceptions thrown by the body are captured and the
// first one is rethrown on the calling thread after the loop drains.
// Nested ParallelFor calls from inside a worker run the inner loop inline
// (serially) instead of deadlocking on the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace osap::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 is allowed (ParallelFor runs serially on
  /// the caller); `FromConfig` below maps user-facing thread counts.
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Number of pool workers (excluding the calling thread).
  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [begin, end), distributing indices across
  /// the workers and the calling thread. Blocks until done; rethrows the
  /// first exception any invocation threw.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 when undetectable).
  static std::size_t HardwareConcurrency();

 private:
  struct Job {
    std::size_t end = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t next = 0;       // next unclaimed index
    std::size_t in_flight = 0;  // indices claimed but not finished
    std::exception_ptr error;
  };

  void WorkerLoop();
  /// Claims and runs indices of the current job until none remain.
  void DrainJob(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: job posted / stop
  std::condition_variable done_cv_;  // signals caller: job drained
  Job job_;
  bool has_job_ = false;
  bool stop_ = false;
};

}  // namespace osap::util
