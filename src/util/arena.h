// Bump allocator for per-decision scratch.
//
// The online hot path (one uncertainty score per ABR decision) needs a
// handful of short-lived arrays - per-member distributions, means,
// distances - whose sizes are fixed per session. An Arena hands out
// spans from reusable blocks: the first few decisions grow it, Reset()
// rewinds it for the next decision, and from then on allocation is a
// pointer bump. Spans stay valid until the next Reset().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace osap::util {

class Arena {
 public:
  explicit Arena(std::size_t min_block_bytes = 1024)
      : min_block_bytes_(min_block_bytes == 0 ? 1 : min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns an uninitialized span of `count` Ts, valid until Reset().
  /// T must be trivially destructible (nothing is ever destroyed).
  template <typename T>
  std::span<T> Alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena only holds trivially destructible types");
    if (count == 0) return {};
    const std::size_t bytes = count * sizeof(T);
    void* p = AllocBytes(bytes, alignof(T));
    return {static_cast<T*>(p), count};
  }

  /// Rewinds every block; previously returned spans become invalid.
  /// Capacity is retained, so a steady-state caller never reallocates.
  void Reset() {
    for (Block& b : blocks_) b.used = 0;
    active_ = 0;
  }

  /// Total bytes of backing storage across all blocks.
  std::size_t CapacityBytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Bytes handed out since the last Reset() (including alignment
  /// padding) - the high-water mark shrink decisions compare against.
  std::size_t UsedBytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.used;
    return total;
  }

  /// Rewinds like Reset(), then drops whole trailing blocks until the
  /// backing capacity is <= budget_bytes (possibly releasing everything).
  /// Previously returned spans become invalid; subsequent allocations
  /// regrow on demand, so an idle shard lane can return a transient
  /// high-water mark to the allocator without changing steady-state
  /// behaviour.
  void ShrinkTo(std::size_t budget_bytes) {
    Reset();
    std::size_t capacity = CapacityBytes();
    while (!blocks_.empty() && capacity > budget_bytes) {
      capacity -= blocks_.back().size;
      blocks_.pop_back();
    }
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* AllocBytes(std::size_t bytes, std::size_t align) {
    while (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      const std::size_t offset = AlignUp(b.used, align);
      if (offset + bytes <= b.size) {
        b.used = offset + bytes;
        return b.data.get() + offset;
      }
      ++active_;  // doesn't fit; bump into the next (or a new) block
    }
    std::size_t size = min_block_bytes_;
    if (!blocks_.empty()) size = blocks_.back().size * 2;
    if (size < bytes + align) size = bytes + align;
    Block b;
    b.data = std::make_unique<std::byte[]>(size);
    b.size = size;
    blocks_.push_back(std::move(b));
    Block& nb = blocks_.back();
    const std::size_t offset =
        AlignUp(reinterpret_cast<std::uintptr_t>(nb.data.get()), align) -
        reinterpret_cast<std::uintptr_t>(nb.data.get());
    nb.used = offset + bytes;
    return nb.data.get() + offset;
  }

  static std::size_t AlignUp(std::size_t v, std::size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  std::size_t min_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;
};

}  // namespace osap::util
