// Information-theoretic helpers for the U_pi (agent-ensemble) uncertainty
// signal: Kullback-Leibler divergence between discrete action distributions,
// entropy (also used as the A2C exploration bonus), and normalization.
#pragma once

#include <span>
#include <vector>

namespace osap {

/// KL(p || q) for discrete distributions over the same support.
///
/// Both inputs must be the same length, non-negative, and (approximately)
/// sum to 1. Terms with p[i] == 0 contribute 0; q is floored at a small
/// epsilon so that KL stays finite when q has zero mass where p does not
/// (the convention used when comparing softmax outputs, which are never
/// exactly zero anyway).
double KlDivergence(std::span<const double> p, std::span<const double> q);

/// Shannon entropy (nats) of a discrete distribution.
double Entropy(std::span<const double> p);

/// Element-wise average of a set of equal-length distributions.
std::vector<double> MeanDistribution(
    std::span<const std::vector<double>> dists);

/// Rescales a non-negative vector to sum to 1. Requires a positive sum.
std::vector<double> Normalize(std::span<const double> weights);

}  // namespace osap
