// Minimal CSV and string helpers: benches export every figure's data as CSV
// next to the printed table so results can be re-plotted, and the trace
// module uses the parsing helpers for Mahimahi-style trace files.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace osap {

/// Splits on a delimiter; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a delimiter.
std::string Join(const std::vector<std::string>& parts, char delim);

/// Trims ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// Parses a double; throws std::invalid_argument with context on failure.
double ParseDouble(std::string_view s);

/// Row-oriented CSV writer. Values are written with full double precision;
/// fields containing the delimiter are not escaped (callers only write
/// numeric and identifier fields).
class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::filesystem::path& path);

  /// Writes a header row.
  void WriteHeader(const std::vector<std::string>& columns);

  /// Writes one row of string fields.
  void WriteRow(const std::vector<std::string>& fields);

  /// Writes one row of numeric fields.
  void WriteNumericRow(const std::vector<double>& values);

  /// Path the writer targets.
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  std::string buffer_;
  void Flush();
};

/// Reads a whole CSV file into rows of fields. Skips blank lines.
std::vector<std::vector<std::string>> ReadCsv(
    const std::filesystem::path& path, char delim = ',');

}  // namespace osap
