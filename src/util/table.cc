#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace osap {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OSAP_REQUIRE(!headers_.empty(), "TablePrinter requires >= 1 column");
}

void TablePrinter::AddRow(std::vector<std::string> fields) {
  OSAP_REQUIRE(fields.size() == headers_.size(),
               "TablePrinter row width must match header width");
  rows_.push_back(std::move(fields));
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TablePrinter::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace osap
