// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (trace generators, network weight
// initialization, exploration, the ABR simulator's VBR jitter) draw from an
// explicitly seeded Rng so that every experiment in the paper reproduction is
// bit-for-bit repeatable. The core generator is xoshiro256++ (Blackman &
// Vigna), seeded through SplitMix64 so that small, human-friendly seeds
// (0, 1, 2, ...) still yield well-mixed states.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace osap {

/// Deterministic 64-bit PRNG (xoshiro256++) with convenience samplers.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// plugged into <random> distributions, although the built-in samplers below
/// are preferred for cross-platform reproducibility (libstdc++/libc++
/// distributions are not guaranteed to produce identical streams).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(std::uint64_t seed = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal via Box-Muller (deterministic across platforms).
  double Normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double Normal(double mean, double stddev);

  /// Derives an independent child generator; used to give each ensemble
  /// member / trace / worker its own stream without correlation.
  Rng Fork();

  /// Fisher-Yates shuffle of an index vector, reproducible across platforms.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace osap
