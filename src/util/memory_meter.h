// Memory accounting for the serving path.
//
// Two complementary probes: MemoryMeter is an exact, deterministic
// category accumulator (a component walks its own containers and reports
// capacity bytes per category - what the bytes/session gates pin), and
// CurrentRssBytes/PeakRssBytes read the kernel's view of the whole
// process from /proc (what actually limits how many sessions fit on a
// host, including allocator overhead the exact walk cannot see).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace osap::util {

/// Resident set size in bytes from /proc/self/statm; 0 when the proc
/// filesystem is unavailable (non-Linux hosts, minimal containers with no
/// /proc mount). Never asserts - callers treat 0 as "no RSS view".
std::size_t CurrentRssBytes();

/// Peak resident set size in bytes (VmHWM from /proc/self/status, falling
/// back to getrusage); 0 when neither source is available. Monotonic over
/// the process lifetime - report it alongside CurrentRssBytes, not
/// instead of it.
std::size_t PeakRssBytes();

/// The probes behind the two functions above, parameterized on the proc
/// path so the missing/malformed-file fallbacks are unit-testable. Both
/// return 0 (never assert) when the file is absent or does not parse;
/// neither consults getrusage (that fallback lives in PeakRssBytes only).
std::size_t RssBytesFromStatm(const char* statm_path);
std::size_t PeakRssBytesFromStatus(const char* status_path);

/// Accumulates exact byte counts by category (insertion-ordered). Add on
/// an existing category accumulates, so nested components can report into
/// a shared bucket.
class MemoryMeter {
 public:
  void Add(std::string_view category, std::size_t bytes);

  /// Bytes accumulated under `category`; 0 when absent.
  std::size_t Get(std::string_view category) const;

  std::size_t Total() const;

  const std::vector<std::pair<std::string, std::size_t>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::size_t>> entries_;
};

}  // namespace osap::util
