// Single-producer/single-consumer ring buffer for cross-thread handoff.
//
// The serving path's persistent shard workers each drain a private ring of
// request indices staged by the DecideBatch caller: exactly one producer
// (the caller) and one consumer (the shard's worker), which is the only
// topology this ring supports. Push/Pop synchronize with a release/acquire
// pair on the head/tail counters, so a popped value happens-after the push
// that wrote it; no locks, no system calls, and the slots themselves need
// no atomicity.
//
// Capacity is fixed per Reserve() call (rounded up to a power of two so
// the index masks stay branch-free). Reserve() is NOT thread-safe - the
// producer may only call it while the consumer is quiescent (for the
// serving path: between epochs, while the worker is parked on its ticket).
// Values must be trivially copyable.
//
// Two capacity modes:
//   - unbounded (default): Reserve() grows the slot array on demand, so a
//     ring can follow any population spike.
//   - bounded (SetBound): capacity is clamped to a hard ceiling and Push
//     fails once `bound` values are in flight even when the slot array is
//     larger. The network edge bounds each shard lane to its admission
//     high-water mark, so a bug that admits past the mark surfaces as a
//     loud failed Push instead of silent queue growth.
#pragma once

#include <atomic>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace osap::util {

template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing holds trivially copyable values only");

 public:
  SpscRing() = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Caps the ring at `bound` in-flight values (0 restores unbounded
  /// growth). Same thread-safety contract as Reserve(): both sides must
  /// be quiescent. Requires bound >= current Size().
  void SetBound(std::size_t bound) {
    OSAP_REQUIRE(bound == 0 || bound >= Size(),
                 "SpscRing::SetBound below current size");
    bound_ = bound;
  }

  std::size_t Bound() const { return bound_; }

  /// Ensures room for at least `capacity` un-popped values (clamped to
  /// the bound when one is set). Grows only (never shrinks) and must not
  /// run concurrently with Push/Pop.
  void Reserve(std::size_t capacity) {
    if (bound_ != 0 && capacity > bound_) capacity = bound_;
    if (capacity <= Capacity()) return;
    std::size_t pow2 = 1;
    while (pow2 < capacity) pow2 *= 2;
    // Relocate any unconsumed values into the new slot array in order.
    std::vector<T> slots(pow2);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t n = 0;
    for (; head != tail; ++head) slots[n++] = slots_[head & mask_];
    slots_ = std::move(slots);
    mask_ = pow2 - 1;
    head_.store(0, std::memory_order_relaxed);
    tail_.store(n, std::memory_order_relaxed);
  }

  std::size_t Capacity() const { return slots_.size(); }

  /// Values pushed and not yet popped (approximate under concurrency,
  /// exact when either side is quiescent).
  std::size_t Size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  /// Producer side. Returns false when the ring is full (or was never
  /// Reserve()d), or when a SetBound() ceiling is reached.
  bool Push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t cap = bound_ != 0 && bound_ < slots_.size()
                                ? bound_
                                : slots_.size();
    if (tail - head >= cap) return false;
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool Pop(T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    value = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;   // slots_.size() - 1 once Reserve()d
  std::size_t bound_ = 0;  // hard capacity ceiling; 0 = unbounded
  // Monotonic counters; slot index is counter & mask_.
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace osap::util
