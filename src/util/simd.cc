#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace osap::util {

namespace {

// -1: follow environment/CPU; 0: force scalar; 1: force AVX2.
std::atomic<int> g_force{-1};

bool CpuHasAvx2() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool DispatchDefault() {
  if (!CpuHasAvx2()) return false;
  const char* env = std::getenv("OSAP_NO_AVX2");
  if (env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    return false;
  }
  return true;
}

}  // namespace

bool UseAvx2() {
  const int force = g_force.load(std::memory_order_relaxed);
  if (force == 0) return false;
  if (force == 1) return CpuHasAvx2();
  static const bool use = DispatchDefault();
  return use;
}

void ForceSimdForTest(bool use_avx2) {
  g_force.store(use_avx2 ? 1 : 0, std::memory_order_relaxed);
}

void ResetSimdForTest() { g_force.store(-1, std::memory_order_relaxed); }

}  // namespace osap::util
