#include "util/csv.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/check.h"

namespace osap {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, char delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(delim);
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

double ParseDouble(std::string_view s) {
  const std::string t = Trim(s);
  OSAP_REQUIRE(!t.empty(), "ParseDouble: empty field");
  // std::from_chars for double is available in libstdc++ 11+.
  double value = 0.0;
  const char* begin = t.data();
  const char* end = begin + t.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  OSAP_REQUIRE(ec == std::errc() && ptr == end,
               "ParseDouble: not a number: '" + t + "'");
  return value;
}

CsvWriter::CsvWriter(const std::filesystem::path& path) : path_(path) {
  if (path_.has_parent_path()) {
    std::filesystem::create_directories(path_.parent_path());
  }
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("CsvWriter: cannot open " + path_.string());
  }
}

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  buffer_ += Join(columns, ',');
  buffer_ += '\n';
  Flush();
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  buffer_ += Join(fields, ',');
  buffer_ += '\n';
  Flush();
}

void CsvWriter::WriteNumericRow(const std::vector<double>& values) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ',';
    os << values[i];
  }
  os << '\n';
  buffer_ += os.str();
  Flush();
}

void CsvWriter::Flush() {
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    throw std::runtime_error("CsvWriter: cannot append to " + path_.string());
  }
  out << buffer_;
  buffer_.clear();
}

std::vector<std::vector<std::string>> ReadCsv(
    const std::filesystem::path& path, char delim) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ReadCsv: cannot open " + path.string());
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    rows.push_back(Split(line, delim));
  }
  return rows;
}

}  // namespace osap
