// ArgParser: the one command-line parser behind every osap_* tool.
//
// Each tool used to hand-roll its own positional/flag loop; this binds
// declared arguments straight to the caller's variables and generates the
// usage/--help text from the declarations, so the tools stay one screen
// of argument wiring:
//
//   util::ArgParser parser("osap_serve", "load generator ...");
//   parser.AddPositional("signal", "us | upi | uv", &signal);
//   parser.AddOptionalPositional("sessions", "concurrent viewers",
//                                &sessions);
//   parser.AddOption("--shards", "N", "shard count", &shards);
//   parser.AddFlag("--revocable", "revocable defaulting", &revocable);
//   if (!parser.Parse(argc, argv)) parser.ExitWithError();
//   if (parser.HelpRequested()) parser.ExitWithHelp();
//
// Supported shapes: required then optional positionals (in declaration
// order), boolean `--flag`, and valued `--opt VALUE` / `--opt=VALUE`.
// Values bind to std::string, std::size_t, std::uint64_t, or double;
// numeric parses reject trailing garbage and negatives. `-h` / `--help`
// stops parsing and sets HelpRequested(). Parse never exits and reports
// one-line errors, so tests can drive the failure paths; the tools use
// the ExitWith* conveniences.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace osap::util {

class ArgParser {
 public:
  using Setter = std::function<bool(const std::string&)>;

  /// `program` names the tool in usage text; `summary` is the one-line
  /// description printed by --help.
  explicit ArgParser(std::string program, std::string summary = "");

  // --- declarations (call before Parse) ---------------------------------

  void AddPositional(const std::string& name, const std::string& help,
                     std::string* out);
  void AddPositional(const std::string& name, const std::string& help,
                     std::size_t* out);
  /// Optional positionals must follow every required one; `*out` keeps
  /// its prior value (the default) when the argument is omitted.
  void AddOptionalPositional(const std::string& name, const std::string& help,
                             std::string* out);
  void AddOptionalPositional(const std::string& name, const std::string& help,
                             std::size_t* out);
  void AddOptionalPositional(const std::string& name, const std::string& help,
                             double* out);

  /// `--name` (no value): sets *out = true when present.
  void AddFlag(const std::string& name, const std::string& help, bool* out);

  /// `--name VALUE` or `--name=VALUE`. `value_name` labels the value in
  /// help text (e.g. "N", "PORT", "RATE").
  void AddOption(const std::string& name, const std::string& value_name,
                 const std::string& help, std::string* out);
  void AddOption(const std::string& name, const std::string& value_name,
                 const std::string& help, std::size_t* out);
  void AddOption(const std::string& name, const std::string& value_name,
                 const std::string& help, double* out);

  // --- parsing -----------------------------------------------------------

  /// Parses argv[first..argc). Returns false on any error (unknown flag,
  /// missing value, unparseable number, missing required positional,
  /// excess positionals) with Error() set. `-h`/`--help` returns true
  /// with HelpRequested() set and no bindings applied beyond that point.
  bool Parse(int argc, char* const* argv, int first = 1);

  bool HelpRequested() const { return help_requested_; }
  const std::string& Error() const { return error_; }

  std::string UsageLine() const;
  /// Full --help text: usage line, summary, positional and option tables.
  std::string HelpText() const;

  /// Prints Error() + the usage line to stderr and exits 2.
  [[noreturn]] void ExitWithError() const;
  /// Prints HelpText() to stdout and exits 0.
  [[noreturn]] void ExitWithHelp() const;

 private:
  struct Positional {
    std::string name;
    std::string help;
    bool required = true;
    Setter set;
  };
  struct Option {
    std::string name;        // including leading --
    std::string value_name;  // empty for flags
    std::string help;
    Setter set;
  };

  void AddPositionalImpl(const std::string& name, const std::string& help,
                         bool required, Setter set);
  void AddOptionImpl(const std::string& name, const std::string& value_name,
                     const std::string& help, Setter set);
  bool Fail(std::string message);

  std::string program_;
  std::string summary_;
  std::vector<Positional> positionals_;
  std::vector<Option> options_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace osap::util
