#include "util/distributions.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace osap {

namespace {

std::string FormatParams(const char* name, double a, double b) {
  std::ostringstream os;
  os << name << "(" << a << "," << b << ")";
  return os.str();
}

}  // namespace

GammaDistribution::GammaDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  OSAP_REQUIRE(shape > 0.0, "Gamma shape must be > 0");
  OSAP_REQUIRE(scale > 0.0, "Gamma scale must be > 0");
}

double GammaDistribution::Sample(Rng& rng) const {
  // Marsaglia & Tsang (2000). For shape < 1, sample Gamma(shape + 1) and
  // multiply by U^(1/shape).
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    double u;
    do {
      u = rng.Uniform();
    } while (u <= 0.0);
    boost = std::pow(u, 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v * scale_;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return boost * d * v * scale_;
    }
  }
}

std::string GammaDistribution::Name() const {
  return FormatParams("Gamma", shape_, scale_);
}

LogisticDistribution::LogisticDistribution(double mu, double scale)
    : mu_(mu), scale_(scale) {
  OSAP_REQUIRE(scale > 0.0, "Logistic scale must be > 0");
}

double LogisticDistribution::Sample(Rng& rng) const {
  double u;
  do {
    u = rng.Uniform();
  } while (u <= 0.0 || u >= 1.0);
  return mu_ + scale_ * std::log(u / (1.0 - u));
}

double LogisticDistribution::Variance() const {
  const double pi = 3.14159265358979323846;
  return scale_ * scale_ * pi * pi / 3.0;
}

std::string LogisticDistribution::Name() const {
  return FormatParams("Logistic", mu_, scale_);
}

ExponentialDistribution::ExponentialDistribution(double scale)
    : scale_(scale) {
  OSAP_REQUIRE(scale > 0.0, "Exponential scale must be > 0");
}

double ExponentialDistribution::Sample(Rng& rng) const {
  double u;
  do {
    u = rng.Uniform();
  } while (u <= 0.0);
  return -scale_ * std::log(u);
}

std::string ExponentialDistribution::Name() const {
  std::ostringstream os;
  os << "Exponential(" << scale_ << ")";
  return os.str();
}

NormalDistribution::NormalDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  OSAP_REQUIRE(stddev >= 0.0, "Normal stddev must be >= 0");
}

double NormalDistribution::Sample(Rng& rng) const {
  return rng.Normal(mean_, stddev_);
}

std::string NormalDistribution::Name() const {
  return FormatParams("Normal", mean_, stddev_);
}

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  OSAP_REQUIRE(sigma >= 0.0, "LogNormal sigma must be >= 0");
}

double LogNormalDistribution::Sample(Rng& rng) const {
  return std::exp(rng.Normal(mu_, sigma_));
}

double LogNormalDistribution::Mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormalDistribution::Variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::string LogNormalDistribution::Name() const {
  return FormatParams("LogNormal", mu_, sigma_);
}

}  // namespace osap
