// Streaming quantile estimation for online threshold calibration
// (DESIGN.md §11).
//
// P2Quantile is the classic P² estimator (Jain & Chlamtac, CACM 1985):
// five markers track the min, the q/2, q, (1+q)/2 quantiles and the max
// of everything observed so far, adjusted towards their ideal positions
// with piecewise-parabolic interpolation. O(1) time and 40 bytes of
// state per observation, no stored samples. The first five observations
// are held exactly (sorted), so small streams are exact.
//
// WindowedP2Quantile layers drift tracking on top: two P² sketches
// rotate every `window` observations, and queries read the merge of the
// previous (full) generation and the current (partial) one — so the
// estimate always reflects between `window` and `2*window` of the most
// recent observations and forgets anything older. Rotation keeps the
// estimator O(1) per observation and fixed-size, unlike an exact
// sliding window.
//
// Merging (P2Quantile::MergedQuantile) interpolates the target rank
// across the union of the sketches' marker CDFs: each sketch
// contributes its markers as (value, cumulative-count) points, the
// union is sorted by value, and the target rank q * total_count is
// interpolated linearly between the bracketing points. Deterministic,
// O(sketches) — this is also how the serving path combines per-shard
// sketches into one global threshold at epoch boundaries
// (serve::DecisionService online calibration).
//
// The exact reference arm for tests is osap::Quantile (util/stats.h):
// sort-based, linear-interpolated, same q convention.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace osap::util {

/// P² streaming estimator of the q-quantile. Exact (sorted buffer) for
/// the first 5 observations, O(1) marker updates afterwards.
class P2Quantile {
 public:
  /// Targets the q-quantile, q in (0, 1).
  explicit P2Quantile(double q);

  /// Default-constructs targeting the median; Reset(q) to retarget.
  P2Quantile() : P2Quantile(0.5) {}

  /// Adds one observation. O(1).
  void Add(double x);

  /// Current estimate of the q-quantile; 0 when empty. Exact while
  /// Count() <= 5 (linear-interpolated order statistic, matching
  /// osap::Quantile's convention).
  double Value() const;

  /// Observations absorbed so far.
  std::size_t Count() const { return count_; }

  /// Smallest / largest observation so far; 0 when empty.
  double Min() const { return count_ == 0 ? 0.0 : heights_[0]; }
  double Max() const;

  /// Target quantile.
  double Target() const { return q_; }

  /// Forgets all observations; optionally retargets.
  void Reset();
  void Reset(double q);

  /// Estimate of the q-quantile over the UNION of the given sketches'
  /// observations, by rank interpolation across their merged marker
  /// CDFs (empty sketches contribute nothing; 0 when all are empty).
  /// The sketches may target different quantiles; `q` names the rank
  /// being interpolated. Deterministic in the sketch contents and
  /// order-insensitive.
  static double MergedQuantile(std::span<const P2Quantile* const> sketches,
                               double q);

 private:
  double q_ = 0.5;
  // Marker heights (values) and integer positions (1-based ranks), plus
  // the ideal (desired) positions. heights_[0..4] sorted ascending once
  // count_ >= 5.
  double heights_[5] = {0, 0, 0, 0, 0};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {1, 2, 3, 4, 5};
  double desired_rate_[5] = {0, 0, 0, 0, 0};
  std::size_t count_ = 0;
};

/// Drift-tracking variant: two rotating P² generations over a fixed
/// observation window. Value() reflects the last `window` to
/// `2*window` observations only.
class WindowedP2Quantile {
 public:
  /// Targets the q-quantile; rotates generations every `window`
  /// observations (window must be > 0).
  WindowedP2Quantile(double q, std::size_t window);

  WindowedP2Quantile() : WindowedP2Quantile(0.5, 1024) {}

  /// Adds one observation, rotating generations when the current one
  /// fills. O(1).
  void Add(double x);

  /// Estimate over the previous + current generations (the most recent
  /// window..2*window observations); 0 when empty.
  double Value() const;

  /// Observations in the live generations (what Value() reflects).
  std::size_t Count() const;

  /// Total observations ever absorbed (including rotated-out ones).
  std::size_t TotalCount() const { return total_; }

  double Target() const { return current_.Target(); }
  std::size_t Window() const { return window_; }

  void Reset();

  /// Appends the live generations' sketches (previous full generation,
  /// then the current partial one; empty ones skipped) to `out` — the
  /// hook cross-instance merges use: collect every shard's arms, then
  /// P2Quantile::MergedQuantile over the union.
  void CollectArms(std::vector<const P2Quantile*>& out) const;

 private:
  P2Quantile current_;
  P2Quantile previous_;
  std::size_t window_ = 1024;
  std::size_t total_ = 0;
  bool has_previous_ = false;
};

}  // namespace osap::util
