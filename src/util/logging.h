// Tiny leveled logger. Benches and the experiment workbench use it to
// narrate long-running phases (training, calibration); the level can be
// raised to silence everything in unit tests.
#pragma once

#include <sstream>
#include <string>

namespace osap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Emits a line to stderr when level >= the global minimum.
void LogMessage(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

#define OSAP_LOG(level) ::osap::detail::LogLine(::osap::LogLevel::level)

}  // namespace osap
