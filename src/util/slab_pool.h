// Slab pool for per-session serving state.
//
// A serving shard opens and closes sessions for the lifetime of the
// process; allocating each session's state with make_unique scatters it
// across the heap (pointer-chasing on the epoch scan) and pays the
// allocator on every open/close. SlabPool instead carves fixed-capacity
// slabs: Acquire() pops a free-list index or constructs the next
// never-used slot in the newest slab, Release() pushes the index back.
// Recycled slots are handed out WITHOUT destroying or reconstructing the
// object - the caller resets it in place - so steady-state churn touches
// no allocator and no constructor.
//
// Each slot optionally carries a fixed `scratch_doubles` span carved from
// the same slab, passed to the factory on first construction. This is how
// the serving path places each U_S session's novelty-extractor ring
// inside the shard's slab instead of a private heap buffer.
//
// Slot references are stable: slabs never move. Trim() releases wholly
// free trailing slabs (destroying their slots) so a population spike does
// not pin its high-water mark forever.
//
// Not thread-safe; each shard owns its own pool (sessions are sharded, so
// cross-shard sharing never happens by construction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace osap::util {

template <typename T>
class SlabPool {
 public:
  using Index = std::uint32_t;
  /// Sentinel for "no slot" (a session without an extractor).
  static constexpr Index kInvalid = 0xffffffffu;

  explicit SlabPool(std::size_t slots_per_slab = 256,
                    std::size_t scratch_doubles = 0)
      : slots_per_slab_(slots_per_slab), scratch_doubles_(scratch_doubles) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "SlabPool: over-aligned slot types are not supported");
    OSAP_REQUIRE(slots_per_slab_ >= 1,
                 "SlabPool: slots_per_slab must be >= 1");
  }

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  ~SlabPool() {
    for (std::size_t s = 0; s < slabs_.size(); ++s) DestroySlab(s);
  }

  /// Returns a slot index. Recycled slots come back as-is (the previous
  /// occupant's state intact - reset it); never-used slots are
  /// constructed from make(scratch), where scratch is this slot's
  /// scratch_doubles span (empty when the pool was built without
  /// scratch).
  template <typename Factory>
  Index Acquire(Factory&& make) {
    if (!free_.empty()) {
      const Index index = free_.back();
      free_.pop_back();
      --slab_free_[index / slots_per_slab_];
      return index;
    }
    if (slabs_.empty() || slabs_.back().constructed == slots_per_slab_) {
      AddSlab();
    }
    Slab& slab = slabs_.back();
    const Index index = static_cast<Index>(
        (slabs_.size() - 1) * slots_per_slab_ + slab.constructed);
    double* scratch =
        scratch_doubles_ == 0
            ? nullptr
            : slab.scratch.get() +
                  slab.constructed * scratch_doubles_;
    new (SlotPtr(index)) T(make(std::span<double>(scratch, scratch_doubles_)));
    ++slab.constructed;
    return index;
  }

  /// Returns a slot to the free list. The object is NOT destroyed (it is
  /// recycled by a later Acquire, or destroyed by Trim/destruction).
  /// Releasing an index twice corrupts the free list - callers guard
  /// liveness themselves (the service's open_ flags).
  void Release(Index index) {
    OSAP_REQUIRE(index < SlotCount(), "SlabPool::Release: bad index");
    free_.push_back(index);
    ++slab_free_[index / slots_per_slab_];
  }

  T& operator[](Index index) { return *SlotPtr(index); }
  const T& operator[](Index index) const {
    return *const_cast<SlabPool*>(this)->SlotPtr(index);
  }

  /// Slots constructed so far (live + free-listed).
  std::size_t SlotCount() const {
    if (slabs_.empty()) return 0;
    return (slabs_.size() - 1) * slots_per_slab_ + slabs_.back().constructed;
  }

  std::size_t ActiveCount() const { return SlotCount() - free_.size(); }
  std::size_t FreeCount() const { return free_.size(); }
  std::size_t SlabCount() const { return slabs_.size(); }

  /// Backing bytes: slab object + scratch storage plus free-list capacity.
  std::size_t CapacityBytes() const {
    return slabs_.size() * SlabBytes() + free_.capacity() * sizeof(Index) +
           slab_free_.capacity() * sizeof(std::size_t);
  }

  /// Destroys and releases wholly free trailing slabs; returns the bytes
  /// released. O(free-list) only when a slab is actually reclaimed.
  std::size_t Trim() {
    std::size_t released = 0;
    while (!slabs_.empty()) {
      const std::size_t last = slabs_.size() - 1;
      if (slabs_[last].constructed == 0 ||
          slab_free_[last] != slabs_[last].constructed) {
        break;
      }
      const Index first = static_cast<Index>(last * slots_per_slab_);
      std::erase_if(free_, [first](Index i) { return i >= first; });
      DestroySlab(last);
      slabs_.pop_back();
      slab_free_.pop_back();
      released += SlabBytes();
    }
    return released;
  }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> objects;   // slots_per_slab x sizeof(T)
    std::unique_ptr<double[]> scratch;      // slots_per_slab x scratch_doubles
    std::size_t constructed = 0;            // slots built, in order
  };

  std::size_t SlabBytes() const {
    return slots_per_slab_ * sizeof(T) +
           slots_per_slab_ * scratch_doubles_ * sizeof(double);
  }

  T* SlotPtr(Index index) {
    Slab& slab = slabs_[index / slots_per_slab_];
    return std::launder(reinterpret_cast<T*>(
        slab.objects.get() + (index % slots_per_slab_) * sizeof(T)));
  }

  void AddSlab() {
    Slab slab;
    slab.objects =
        std::make_unique<std::byte[]>(slots_per_slab_ * sizeof(T));
    if (scratch_doubles_ > 0) {
      slab.scratch =
          std::make_unique<double[]>(slots_per_slab_ * scratch_doubles_);
    }
    slabs_.push_back(std::move(slab));
    slab_free_.push_back(0);
  }

  void DestroySlab(std::size_t s) {
    Slab& slab = slabs_[s];
    for (std::size_t i = slab.constructed; i-- > 0;) {
      SlotPtr(static_cast<Index>(s * slots_per_slab_ + i))->~T();
    }
    slab.constructed = 0;
  }

  std::size_t slots_per_slab_;
  std::size_t scratch_doubles_;
  std::vector<Slab> slabs_;
  std::vector<std::size_t> slab_free_;  // free slots per slab (Trim guard)
  std::vector<Index> free_;
};

}  // namespace osap::util
