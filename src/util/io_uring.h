// Minimal io_uring wrapper over the raw syscalls - the host ships
// <linux/io_uring.h> but no liburing, so the ring setup, mmap layout and
// memory-ordering rules live here (DESIGN.md §10.5). Scope is exactly
// what the net edge's uring backend needs:
//
//   - io_uring_setup + the SQ/CQ mmaps (IORING_FEAT_SINGLE_MMAP aware),
//     identity sq_array filled once at Init,
//   - SQE acquisition with automatic flush when the ring is full,
//   - one Submit() wrapping io_uring_enter(GETEVENTS): submits every
//     queued SQE and optionally blocks for completions; reaping CQEs
//     afterwards is pure shared-memory reads (no syscall),
//   - a provided-buffer ring (IORING_REGISTER_PBUF_RING) for multishot
//     recv: fixed-size buffers handed to the kernel, recycled by id,
//   - a cached KernelSupported() probe so callers can fall back to
//     epoll when the kernel denies io_uring_setup (ENOSYS/EPERM - e.g.
//     sandboxed CI) or predates multishot recv.
//
// Single-threaded by design: one ring belongs to one edge loop. The
// kernel is the only other party touching the mapped rings, synchronized
// with acquire/release on the head/tail words exactly as the io_uring
// ABI specifies.
#pragma once

#include <linux/io_uring.h>
#include <sys/socket.h>

#include <cstddef>
#include <cstdint>

namespace osap::util {

class IoUring {
 public:
  IoUring() = default;
  ~IoUring();

  IoUring(const IoUring&) = delete;
  IoUring& operator=(const IoUring&) = delete;

  /// Creates and maps the ring (cq_entries 0 = kernel default, 2x SQ).
  /// False with errno intact when the kernel refuses - callers decide
  /// whether that means fallback (ENOSYS/EPERM) or a hard error.
  bool Init(unsigned sq_entries, unsigned cq_entries = 0);
  bool ok() const { return ring_fd_ >= 0; }
  int ring_fd() const { return ring_fd_; }

  /// Next free SQE, zeroed. Flushes the queue with Submit() first when
  /// the SQ is full (the kernel consumes submitted SQEs synchronously,
  /// so a flush always frees the ring).
  io_uring_sqe* GetSqe();

  /// Publishes every queued SQE and calls io_uring_enter once, waiting
  /// for at least `wait_nr` completions. Skips the syscall entirely when
  /// there is nothing to submit, nothing to wait for, and no kernel-side
  /// CQ overflow to flush. EINTR is retried. Returns the number of SQEs
  /// the kernel consumed; throws std::runtime_error on fatal errno.
  unsigned Submit(unsigned wait_nr = 0);

  /// Oldest unseen CQE, or nullptr (shared-memory read, no syscall).
  io_uring_cqe* PeekCqe();
  /// Marks the oldest `n` CQEs consumed.
  void AdvanceCqe(unsigned n = 1);

  /// Registers a provided-buffer ring: `count` (power of two) buffers of
  /// `size` bytes under group `bgid`, all initially owned by the kernel.
  bool RegisterBufRing(std::uint16_t bgid, std::uint32_t count,
                       std::uint32_t size);
  /// Returns buffer `bid` to the kernel after consuming a CQE that
  /// carried it (IORING_CQE_F_BUFFER).
  void RecycleBuffer(std::uint16_t bid);
  const std::uint8_t* BufferData(std::uint16_t bid) const {
    return buf_mem_ + static_cast<std::size_t>(bid) * buf_size_;
  }
  std::uint32_t buffer_size() const { return buf_size_; }

  /// io_uring_enter invocations so far (the edge's syscall budget).
  std::uint64_t enter_calls() const { return enter_calls_; }

  /// One cached process-wide probe: io_uring_setup succeeds, provided
  /// buffer rings register, and the op table is new enough for multishot
  /// accept/recv (>= IORING_OP_SEND_ZC, i.e. kernel >= 6.0).
  static bool KernelSupported();
  /// Human-readable reason when KernelSupported() is false, else "".
  static const char* UnsupportedReason();

 private:
  void Close();

  int ring_fd_ = -1;
  unsigned features_ = 0;

  // SQ/CQ mappings (cq_ring_ aliases sq_ring_ under SINGLE_MMAP).
  std::uint8_t* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  std::uint8_t* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;

  unsigned* sq_khead_ = nullptr;  // kernel-written consumer index
  unsigned* sq_ktail_ = nullptr;  // ours, release-published on Submit
  unsigned* sq_kflags_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned sq_local_tail_ = 0;  // SQEs handed out, not yet published

  unsigned* cq_khead_ = nullptr;  // ours, release-published on Advance
  unsigned* cq_ktail_ = nullptr;  // kernel-written producer index
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  // Provided-buffer ring + the buffer slab behind it.
  io_uring_buf_ring* buf_ring_ = nullptr;
  std::size_t buf_ring_bytes_ = 0;
  std::uint8_t* buf_mem_ = nullptr;
  std::size_t buf_mem_bytes_ = 0;
  std::uint16_t buf_bgid_ = 0;
  std::uint32_t buf_count_ = 0;
  std::uint32_t buf_size_ = 0;
  std::uint16_t buf_mask_ = 0;
  std::uint16_t buf_local_tail_ = 0;

  std::uint64_t enter_calls_ = 0;
};

}  // namespace osap::util
