#include "util/p2_quantile.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace osap::util {

namespace {

/// Linear-interpolated quantile of a sorted prefix xs[0..n), matching
/// osap::Quantile's convention (pos = q * (n - 1)).
double SortedQuantile(const double* xs, std::size_t n, double q) {
  if (n == 0) return 0.0;
  if (n == 1) return xs[0];
  const double pos = q * static_cast<double>(n - 1);
  const std::size_t idx =
      std::min(static_cast<std::size_t>(pos), n - 2);
  const double frac = pos - static_cast<double>(idx);
  // Same expression as osap::Quantile, so the exact phase is
  // bit-identical to the reference arm, not just algebraically equal.
  return xs[idx] * (1.0 - frac) + xs[idx + 1] * frac;
}

}  // namespace

P2Quantile::P2Quantile(double q) { Reset(q); }

void P2Quantile::Reset() { Reset(q_); }

void P2Quantile::Reset(double q) {
  OSAP_REQUIRE(q > 0.0 && q < 1.0, "P2Quantile: q must be in (0, 1)");
  q_ = q;
  count_ = 0;
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  // Ideal marker ranks at n = 5 and their per-observation increments:
  // n'_i = 1 + (n - 1) * d_i with d = {0, q/2, q, (1+q)/2, 1}.
  desired_rate_[0] = 0.0;
  desired_rate_[1] = q / 2.0;
  desired_rate_[2] = q;
  desired_rate_[3] = (1.0 + q) / 2.0;
  desired_rate_[4] = 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] = 1.0 + 4.0 * desired_rate_[i];
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    // Exact phase: keep the first five observations sorted in place.
    std::size_t i = count_;
    while (i > 0 && heights_[i - 1] > x) {
      heights_[i] = heights_[i - 1];
      --i;
    }
    heights_[i] = x;
    ++count_;
    return;
  }

  // Locate the marker cell containing x, extending the extremes.
  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) ++cell;
  }

  for (int i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += desired_rate_[i];
  ++count_;

  // Nudge the three interior markers towards their ideal ranks with
  // piecewise-parabolic (P²) height prediction, falling back to linear
  // when the parabola would break marker monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const double delta = desired_[i] - positions_[i];
    const double ahead = positions_[i + 1] - positions_[i];
    const double behind = positions_[i - 1] - positions_[i];
    if ((delta >= 1.0 && ahead > 1.0) || (delta <= -1.0 && behind < -1.0)) {
      const double d = delta >= 1.0 ? 1.0 : -1.0;
      const double span = positions_[i + 1] - positions_[i - 1];
      const double parabolic =
          heights_[i] +
          d / span *
              ((positions_[i] - positions_[i - 1] + d) *
                   (heights_[i + 1] - heights_[i]) / ahead +
               (positions_[i + 1] - positions_[i] - d) *
                   (heights_[i] - heights_[i - 1]) / -behind);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = i + static_cast<int>(d);
        heights_[i] += d * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += d;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ <= 5) return SortedQuantile(heights_, count_, q_);
  return heights_[2];
}

double P2Quantile::Max() const {
  if (count_ == 0) return 0.0;
  return count_ <= 5 ? heights_[count_ - 1] : heights_[4];
}

double P2Quantile::MergedQuantile(
    std::span<const P2Quantile* const> sketches, double q) {
  // Each sketch contributes its marker CDF as (value, 1-based rank)
  // points: the exact sorted samples while count <= 5, the five markers
  // afterwards (positions_[4] == count by construction). The union CDF
  // is the sum of the per-sketch piecewise-linear CDFs; the q-quantile
  // is its inverse at rank 1 + q * (N - 1), evaluated by scanning the
  // merged breakpoints.
  struct Arm {
    const double* values;
    const double* ranks;     // nullptr => ranks are 1..n (exact phase)
    std::size_t n;
  };
  std::vector<Arm> arms;
  std::size_t total = 0;
  std::vector<double> breakpoints;
  for (const P2Quantile* sketch : sketches) {
    if (sketch == nullptr || sketch->count_ == 0) continue;
    const std::size_t n = std::min<std::size_t>(sketch->count_, 5);
    arms.push_back({sketch->heights_,
                    sketch->count_ <= 5 ? nullptr : sketch->positions_, n});
    total += sketch->count_;
    breakpoints.insert(breakpoints.end(), sketch->heights_,
                       sketch->heights_ + n);
  }
  if (arms.empty()) return 0.0;
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()),
                    breakpoints.end());

  // Rank of value v within one arm: 0 below its min, its count at or
  // above its max, linear between adjacent markers.
  const auto rank_at = [](const Arm& arm, double v) -> double {
    if (v < arm.values[0]) return 0.0;
    const auto marker_rank = [&](std::size_t i) {
      return arm.ranks == nullptr ? static_cast<double>(i + 1)
                                  : arm.ranks[i];
    };
    if (v >= arm.values[arm.n - 1]) return marker_rank(arm.n - 1);
    std::size_t i = 0;
    while (i + 1 < arm.n && v >= arm.values[i + 1]) ++i;
    const double lo = arm.values[i];
    const double hi = arm.values[i + 1];
    const double frac = hi > lo ? (v - lo) / (hi - lo) : 0.0;
    return marker_rank(i) + frac * (marker_rank(i + 1) - marker_rank(i));
  };
  // Summing in sorted order keeps the merge independent of arm order
  // (double addition is not associative); this is the cold calibration
  // path, so the per-breakpoint sort over a handful of arms is free.
  std::vector<double> arm_ranks(arms.size());
  const auto total_rank = [&](double v) {
    for (std::size_t i = 0; i < arms.size(); ++i) {
      arm_ranks[i] = rank_at(arms[i], v);
    }
    std::sort(arm_ranks.begin(), arm_ranks.end());
    double r = 0.0;
    for (const double rk : arm_ranks) r += rk;
    return r;
  };

  const double target = 1.0 + q * static_cast<double>(total - 1);
  double prev_v = breakpoints.front();
  double prev_r = total_rank(prev_v);
  if (target <= prev_r) return prev_v;
  for (std::size_t i = 1; i < breakpoints.size(); ++i) {
    const double v = breakpoints[i];
    const double r = total_rank(v);
    if (target <= r) {
      const double frac = r > prev_r ? (target - prev_r) / (r - prev_r) : 1.0;
      return prev_v + frac * (v - prev_v);
    }
    prev_v = v;
    prev_r = r;
  }
  return breakpoints.back();
}

WindowedP2Quantile::WindowedP2Quantile(double q, std::size_t window)
    : current_(q), previous_(q), window_(window) {
  OSAP_REQUIRE(window > 0, "WindowedP2Quantile: window must be > 0");
}

void WindowedP2Quantile::Add(double x) {
  current_.Add(x);
  ++total_;
  if (current_.Count() >= window_) {
    previous_ = current_;
    has_previous_ = true;
    current_.Reset();
  }
}

double WindowedP2Quantile::Value() const {
  if (!has_previous_) return current_.Value();
  if (current_.Count() == 0) return previous_.Value();
  const P2Quantile* arms[2] = {&previous_, &current_};
  return P2Quantile::MergedQuantile(arms, current_.Target());
}

std::size_t WindowedP2Quantile::Count() const {
  return current_.Count() + (has_previous_ ? previous_.Count() : 0);
}

void WindowedP2Quantile::CollectArms(
    std::vector<const P2Quantile*>& out) const {
  if (has_previous_ && previous_.Count() > 0) out.push_back(&previous_);
  if (current_.Count() > 0) out.push_back(&current_);
}

void WindowedP2Quantile::Reset() {
  current_.Reset();
  previous_.Reset();
  has_previous_ = false;
  total_ = 0;
}

}  // namespace osap::util
