// Samplers for the probability distributions used by the paper's synthetic
// datasets (Section 3.1): Gamma(shape=1, scale=2), Gamma(shape=2, scale=2),
// Logistic(mu=4, scale=0.5) and Exponential(scale=1), plus the auxiliary
// distributions (normal, lognormal) used by the empirical-like trace
// generators.
//
// All samplers are deterministic functions of the supplied Rng, so every
// synthetic dataset is reproducible from its seed. Each distribution exposes
// its analytic mean/variance so tests can verify sampler correctness against
// closed forms.
#pragma once

#include <memory>
#include <string>

#include "util/rng.h"

namespace osap {

/// Interface for a scalar distribution that can be sampled with an Rng.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample.
  virtual double Sample(Rng& rng) const = 0;

  /// Analytic mean (used by tests and by trace generators for scaling).
  virtual double Mean() const = 0;

  /// Analytic variance.
  virtual double Variance() const = 0;

  /// Human-readable name, e.g. "Gamma(2,2)".
  virtual std::string Name() const = 0;
};

/// Gamma(shape k, scale theta). Marsaglia-Tsang for k >= 1; boost via
/// Johnk-style transformation for k < 1.
class GammaDistribution final : public Distribution {
 public:
  GammaDistribution(double shape, double scale);
  double Sample(Rng& rng) const override;
  double Mean() const override { return shape_ * scale_; }
  double Variance() const override { return shape_ * scale_ * scale_; }
  std::string Name() const override;

 private:
  double shape_;
  double scale_;
};

/// Logistic(mu, s): CDF inverse sampling.
class LogisticDistribution final : public Distribution {
 public:
  LogisticDistribution(double mu, double scale);
  double Sample(Rng& rng) const override;
  double Mean() const override { return mu_; }
  double Variance() const override;
  std::string Name() const override;

 private:
  double mu_;
  double scale_;
};

/// Exponential with the given scale (mean). Rate = 1/scale.
class ExponentialDistribution final : public Distribution {
 public:
  explicit ExponentialDistribution(double scale);
  double Sample(Rng& rng) const override;
  double Mean() const override { return scale_; }
  double Variance() const override { return scale_ * scale_; }
  std::string Name() const override;

 private:
  double scale_;
};

/// Normal(mean, stddev).
class NormalDistribution final : public Distribution {
 public:
  NormalDistribution(double mean, double stddev);
  double Sample(Rng& rng) const override;
  double Mean() const override { return mean_; }
  double Variance() const override { return stddev_ * stddev_; }
  std::string Name() const override;

 private:
  double mean_;
  double stddev_;
};

/// LogNormal: exp(Normal(mu, sigma)).
class LogNormalDistribution final : public Distribution {
 public:
  LogNormalDistribution(double mu, double sigma);
  double Sample(Rng& rng) const override;
  double Mean() const override;
  double Variance() const override;
  std::string Name() const override;

 private:
  double mu_;
  double sigma_;
};

}  // namespace osap
