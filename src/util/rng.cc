#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace osap {

namespace {

// SplitMix64: used only to expand the user seed into xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  OSAP_REQUIRE(lo <= hi, "Uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  OSAP_REQUIRE(n > 0, "UniformInt requires n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

double Rng::Normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  OSAP_REQUIRE(stddev >= 0.0, "Normal requires stddev >= 0");
  return mean + stddev * Normal();
}

Rng Rng::Fork() {
  // Derive a child seed from two raw draws; the parent stream advances, so
  // successive forks are independent of each other as well.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ Rotl(b, 32));
}

}  // namespace osap
