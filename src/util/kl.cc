#include "util/kl.h"

#include <cmath>

#include "util/check.h"

namespace osap {

namespace {
constexpr double kEps = 1e-12;
}

double KlDivergence(std::span<const double> p, std::span<const double> q) {
  OSAP_REQUIRE(p.size() == q.size(),
               "KL divergence requires equal-length distributions");
  OSAP_REQUIRE(!p.empty(), "KL divergence requires non-empty distributions");
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    OSAP_REQUIRE(p[i] >= 0.0 && q[i] >= 0.0,
                 "KL divergence requires non-negative probabilities");
    if (p[i] > 0.0) {
      kl += p[i] * std::log(p[i] / std::max(q[i], kEps));
    }
  }
  // Floating-point noise can produce tiny negatives when p == q.
  return std::max(0.0, kl);
}

double Entropy(std::span<const double> p) {
  double h = 0.0;
  for (double pi : p) {
    OSAP_REQUIRE(pi >= 0.0, "Entropy requires non-negative probabilities");
    if (pi > 0.0) h -= pi * std::log(pi);
  }
  return std::max(0.0, h);
}

std::vector<double> MeanDistribution(
    std::span<const std::vector<double>> dists) {
  OSAP_REQUIRE(!dists.empty(), "MeanDistribution requires >= 1 distribution");
  const std::size_t dim = dists.front().size();
  std::vector<double> mean(dim, 0.0);
  for (const auto& d : dists) {
    OSAP_REQUIRE(d.size() == dim,
                 "MeanDistribution requires equal-length distributions");
    for (std::size_t i = 0; i < dim; ++i) mean[i] += d[i];
  }
  for (double& m : mean) m /= static_cast<double>(dists.size());
  return mean;
}

std::vector<double> Normalize(std::span<const double> weights) {
  double sum = 0.0;
  for (double w : weights) {
    OSAP_REQUIRE(w >= 0.0, "Normalize requires non-negative weights");
    sum += w;
  }
  OSAP_REQUIRE(sum > 0.0, "Normalize requires a positive total weight");
  std::vector<double> out(weights.begin(), weights.end());
  for (double& w : out) w /= sum;
  return out;
}

}  // namespace osap
