// ASCII table rendering for the figure-reproduction benches: every bench
// prints the same rows/series the corresponding paper figure reports, and
// TablePrinter keeps those dumps aligned and readable.
#pragma once

#include <string>
#include <vector>

namespace osap {

/// Accumulates rows and renders a column-aligned ASCII table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many fields as there are headers.
  void AddRow(std::vector<std::string> fields);

  /// Formats a double with the given precision (helper for callers).
  static std::string Num(double v, int precision = 2);

  /// Renders the table, including a separator under the header.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace osap
