// One-class support vector machine (Scholkopf, Platt, Shawe-Taylor, Smola,
// Williamson, "Estimating the support of a high-dimensional distribution",
// Neural Computation 2001) - the novelty-detection method the paper adopts
// for the U_S uncertainty signal (Sections 2.4 and 3.1).
//
// We solve the libsvm-style dual
//     min_alpha 1/2 alpha^T Q alpha
//     s.t. 0 <= alpha_i <= 1,  sum_i alpha_i = nu * n,
// with Q_ij = k(x_i, x_j), by SMO with maximal-violating-pair working-set
// selection. The decision function is
//     f(x) = sum_i alpha_i k(x_i, x) - rho,
// with f(x) >= 0 classifying x as in-distribution (+1) and f(x) < 0 as
// out-of-distribution (-1). nu upper-bounds the fraction of training
// outliers and lower-bounds the fraction of support vectors (the
// "nu-property", verified in tests).
#pragma once

#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "svm/kernel.h"
#include "svm/scaler.h"

namespace osap::svm {

struct OcSvmConfig {
  /// Outlier-fraction parameter in (0, 1).
  double nu = 0.05;
  /// RBF gamma; <= 0 selects the "scale" heuristic from the training data.
  double gamma = 0.0;
  /// KKT violation tolerance for SMO termination.
  double tolerance = 1e-4;
  /// Hard cap on SMO iterations (safety net; reported via iterations()).
  std::size_t max_iterations = 200000;
  /// If > 0 and the training set is larger, a deterministic uniform
  /// subsample of this size is used (keeps the n^2 kernel matrix bounded).
  std::size_t max_samples = 3000;
  /// Standardize features before the kernel (recommended; the paper's
  /// features mix throughput means and standard deviations).
  bool standardize = true;
  /// Budget for the working-set solver's LRU kernel-row cache, in MiB.
  /// Rows are computed lazily on demand, so fit cost tracks the rows the
  /// SMO loop actually touches instead of the full n^2 kernel matrix.
  std::size_t kernel_cache_mb = 16;
  /// Shrink the working set every this many SMO iterations (0 disables
  /// shrinking). Shrinking is bit-exact: a drift-bound guard unshrinks
  /// (and replays the skipped gradient updates in order) before a shrunk
  /// point could ever alter pair selection.
  std::size_t shrink_interval = 64;
  /// Force the original dense solver (full n^2 kernel precompute). The
  /// working-set solver is bit-identical to it - this switch exists for the
  /// equivalence tests and as an escape hatch.
  bool dense_solver = false;
};

/// Trained one-class SVM model.
class OneClassSvm {
 public:
  explicit OneClassSvm(OcSvmConfig config = {});

  /// Fits the model on in-distribution training rows (all same length).
  /// Throws std::invalid_argument on empty/ragged data or invalid config.
  void Fit(const std::vector<std::vector<double>>& data);

  /// Signed decision value f(x); >= 0 means in-distribution.
  double DecisionValue(std::span<const double> x) const;

  /// Batched decision values over `count` contiguous row-major samples
  /// (count x Dimension()). out[i] is bit-identical to DecisionValue on
  /// row i. On AVX2 hosts (unless OSAP_NO_AVX2 is set) blocks of four
  /// samples ride the four lanes of a vector register: the kernel
  /// vectorizes across samples only, so each sample keeps its scalar
  /// accumulation chain (SV-ascending additions, no FMA) and every
  /// kernel term still goes through scalar std::exp - hence bit-identity
  /// with the scalar scan, which handles non-AVX2 hosts and the tail
  /// samples. The scalar scan is SV-outer/sample-inner: every SV row
  /// streams once for the whole batch instead of once per sample.
  void DecisionValues(const double* rows, std::size_t count,
                      std::span<double> out) const;

  /// True when x is classified as in-distribution (+1).
  bool IsInlier(std::span<const double> x) const { return DecisionValue(x) >= 0.0; }

  /// Fraction of the given rows classified as inliers.
  double InlierFraction(const std::vector<std::vector<double>>& data) const;

  bool Fitted() const { return sv_count_ > 0; }
  std::size_t SupportVectorCount() const { return sv_count_; }
  /// Input dimensionality of the fitted model.
  std::size_t Dimension() const { return sv_dim_; }
  double rho() const { return rho_; }
  double gamma() const { return gamma_; }
  std::size_t iterations() const { return iterations_; }
  const OcSvmConfig& config() const { return config_; }

  /// Model (de)serialization: support vectors, alphas, rho, gamma, scaler.
  void Save(const std::filesystem::path& path) const;
  static OneClassSvm Load(const std::filesystem::path& path);

 private:
  /// Portable batch scan (also the AVX2 path's tail handler): scales the
  /// samples, then one SV-outer/sample-inner pass.
  void DecisionValuesScalar(const double* rows, std::size_t count,
                            std::span<double> out) const;

  OcSvmConfig config_;
  double gamma_ = 0.0;  // resolved gamma actually used
  StandardScaler scaler_;
  // Support vectors flattened into one contiguous row-major buffer
  // (sv_count_ x sv_dim_, scaled space) with precomputed squared norms, so
  // DecisionValue is one linear scan using the norm expansion
  //   k(x, sv_i) = exp(-gamma (|x|^2 - 2 x.sv_i + |sv_i|^2)).
  std::vector<double> sv_data_;
  std::vector<double> sv_sq_norms_;
  std::vector<double> alphas_;  // aligned with SV rows
  std::size_t sv_count_ = 0;
  std::size_t sv_dim_ = 0;
  double rho_ = 0.0;
  std::size_t iterations_ = 0;
};

}  // namespace osap::svm
