// Kernel functions for the one-class SVM (Scholkopf et al. 2001), the
// novelty detector behind the paper's U_S uncertainty signal. The paper uses
// SciPy's (libsvm's) OC-SVM with the default RBF kernel; we provide RBF and
// linear kernels behind a small interface.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace osap::svm {

/// A positive-semidefinite kernel over equal-length real vectors.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// k(x, y); x and y must have equal length.
  virtual double Evaluate(std::span<const double> x,
                          std::span<const double> y) const = 0;

  virtual std::string Name() const = 0;
};

/// RBF kernel: k(x,y) = exp(-gamma * ||x - y||^2).
class RbfKernel final : public Kernel {
 public:
  explicit RbfKernel(double gamma);
  double Evaluate(std::span<const double> x,
                  std::span<const double> y) const override;
  std::string Name() const override { return "rbf"; }
  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

/// Linear kernel: k(x,y) = <x, y>.
class LinearKernel final : public Kernel {
 public:
  double Evaluate(std::span<const double> x,
                  std::span<const double> y) const override;
  std::string Name() const override { return "linear"; }
};

/// The "scale" heuristic for gamma (sklearn's default):
/// gamma = 1 / (n_features * var(all feature values)). Falls back to
/// 1 / n_features when the data has zero variance.
double ScaleGamma(const std::vector<std::vector<double>>& data);

}  // namespace osap::svm
