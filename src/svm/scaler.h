// Per-feature standardization (zero mean, unit variance), fit on training
// data and applied to every sample before it reaches the OC-SVM. Without
// scaling, the throughput-mean feature would dominate the throughput-stddev
// feature in the RBF distance.
#pragma once

#include <span>
#include <vector>

namespace osap::svm {

class StandardScaler {
 public:
  StandardScaler() = default;

  /// Fits per-dimension mean and standard deviation. Dimensions with zero
  /// variance get scale 1 (pass-through after centering).
  void Fit(const std::vector<std::vector<double>>& data);

  /// (x - mean) / std, element-wise. Requires Fit first.
  std::vector<double> Transform(std::span<const double> x) const;

  /// Transform applied to every row.
  std::vector<std::vector<double>> TransformAll(
      const std::vector<std::vector<double>>& data) const;

  bool Fitted() const { return !mean_.empty(); }
  std::size_t Dim() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

  /// Direct state injection, used by model deserialization.
  void SetState(std::vector<double> mean, std::vector<double> stddev);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace osap::svm
