#include "svm/scaler.h"

#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace osap::svm {

void StandardScaler::Fit(const std::vector<std::vector<double>>& data) {
  OSAP_REQUIRE(!data.empty(), "StandardScaler::Fit: empty data");
  const std::size_t dim = data.front().size();
  OSAP_REQUIRE(dim > 0, "StandardScaler::Fit: zero-dimensional data");
  std::vector<RunningStats> stats(dim);
  for (const auto& row : data) {
    OSAP_REQUIRE(row.size() == dim, "StandardScaler::Fit: ragged data");
    for (std::size_t i = 0; i < dim; ++i) stats[i].Add(row[i]);
  }
  mean_.resize(dim);
  stddev_.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    mean_[i] = stats[i].Mean();
    const double sd = stats[i].StdDev();
    stddev_[i] = sd > 0.0 ? sd : 1.0;
  }
}

std::vector<double> StandardScaler::Transform(
    std::span<const double> x) const {
  OSAP_REQUIRE(Fitted(), "StandardScaler::Transform before Fit");
  OSAP_REQUIRE(x.size() == mean_.size(),
               "StandardScaler::Transform: dimension mismatch");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = (x[i] - mean_[i]) / stddev_[i];
  }
  return out;
}

std::vector<std::vector<double>> StandardScaler::TransformAll(
    const std::vector<std::vector<double>>& data) const {
  std::vector<std::vector<double>> out;
  out.reserve(data.size());
  for (const auto& row : data) out.push_back(Transform(row));
  return out;
}

void StandardScaler::SetState(std::vector<double> mean,
                              std::vector<double> stddev) {
  OSAP_REQUIRE(mean.size() == stddev.size(),
               "StandardScaler::SetState: size mismatch");
  for (double s : stddev) {
    OSAP_REQUIRE(s > 0.0, "StandardScaler::SetState: stddev must be > 0");
  }
  mean_ = std::move(mean);
  stddev_ = std::move(stddev);
}

}  // namespace osap::svm
