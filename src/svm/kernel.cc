#include "svm/kernel.h"

#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace osap::svm {

RbfKernel::RbfKernel(double gamma) : gamma_(gamma) {
  OSAP_REQUIRE(gamma > 0.0, "RbfKernel: gamma must be > 0");
}

double RbfKernel::Evaluate(std::span<const double> x,
                           std::span<const double> y) const {
  OSAP_REQUIRE(x.size() == y.size(), "RbfKernel: dimension mismatch");
  double d2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    d2 += d * d;
  }
  return std::exp(-gamma_ * d2);
}

double LinearKernel::Evaluate(std::span<const double> x,
                              std::span<const double> y) const {
  OSAP_REQUIRE(x.size() == y.size(), "LinearKernel: dimension mismatch");
  double dot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) dot += x[i] * y[i];
  return dot;
}

double ScaleGamma(const std::vector<std::vector<double>>& data) {
  OSAP_REQUIRE(!data.empty(), "ScaleGamma: empty data");
  const std::size_t dim = data.front().size();
  OSAP_REQUIRE(dim > 0, "ScaleGamma: zero-dimensional data");
  RunningStats rs;
  for (const auto& row : data) {
    OSAP_REQUIRE(row.size() == dim, "ScaleGamma: ragged data");
    for (double v : row) rs.Add(v);
  }
  const double var = rs.Variance();
  const double denom = static_cast<double>(dim) * (var > 0.0 ? var : 1.0);
  return 1.0 / denom;
}

}  // namespace osap::svm
