#include "svm/ocsvm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"

namespace osap::svm {

namespace {

constexpr char kMagic[8] = {'O', 'S', 'A', 'P', 'S', 'V', 'M', '1'};

void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t ReadU64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("OneClassSvm::Load: truncated stream");
  return v;
}

double ReadF64(std::istream& in) {
  double v = 0.0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("OneClassSvm::Load: truncated stream");
  return v;
}

}  // namespace

OneClassSvm::OneClassSvm(OcSvmConfig config) : config_(config) {}

double OneClassSvm::KernelValue(std::span<const double> a,
                                std::span<const double> b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return std::exp(-gamma_ * d2);
}

void OneClassSvm::Fit(const std::vector<std::vector<double>>& data) {
  OSAP_REQUIRE(config_.nu > 0.0 && config_.nu < 1.0,
               "OneClassSvm: nu must be in (0, 1)");
  OSAP_REQUIRE(!data.empty(), "OneClassSvm::Fit: empty data");
  const std::size_t dim = data.front().size();
  OSAP_REQUIRE(dim > 0, "OneClassSvm::Fit: zero-dimensional data");
  for (const auto& row : data) {
    OSAP_REQUIRE(row.size() == dim, "OneClassSvm::Fit: ragged data");
  }

  // Deterministic subsample when the training set exceeds the cap.
  std::vector<std::vector<double>> samples;
  if (config_.max_samples > 0 && data.size() > config_.max_samples) {
    std::vector<std::size_t> idx(data.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    Rng rng(0xF17E5EED);
    rng.Shuffle(idx);
    idx.resize(config_.max_samples);
    std::sort(idx.begin(), idx.end());
    samples.reserve(idx.size());
    for (std::size_t i : idx) samples.push_back(data[i]);
  } else {
    samples = data;
  }
  const std::size_t n = samples.size();

  if (config_.standardize) {
    scaler_.Fit(samples);
    samples = scaler_.TransformAll(samples);
  } else {
    // Identity scaler so Transform is a no-op with the right dimension.
    scaler_.SetState(std::vector<double>(dim, 0.0),
                     std::vector<double>(dim, 1.0));
  }

  gamma_ = config_.gamma > 0.0 ? config_.gamma : ScaleGamma(samples);

  // Precompute the kernel matrix (n is capped by max_samples).
  std::vector<double> q(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = KernelValue(samples[i], samples[j]);
      q[i * n + j] = k;
      q[j * n + i] = k;
    }
  }

  // libsvm-style initialization: sum alpha = nu*n with the first
  // floor(nu*n) coordinates at the upper bound 1 and one fractional entry.
  std::vector<double> alpha(n, 0.0);
  const double total = config_.nu * static_cast<double>(n);
  {
    double remaining = total;
    for (std::size_t i = 0; i < n && remaining > 0.0; ++i) {
      alpha[i] = std::min(1.0, remaining);
      remaining -= alpha[i];
    }
  }

  // Gradient of the objective: G = Q alpha.
  std::vector<double> grad(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double g = 0.0;
    const double* qrow = q.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) g += qrow[j] * alpha[j];
    grad[i] = g;
  }

  // SMO with maximal-violating-pair selection. We can move mass from a
  // coordinate j (alpha_j > 0) to a coordinate i (alpha_i < 1); optimality
  // when max_j G_j - min_i G_i <= tolerance over the movable sets.
  iterations_ = 0;
  const double kUpper = 1.0;
  while (iterations_ < config_.max_iterations) {
    int best_i = -1;  // receiver: alpha_i < 1, minimal gradient
    int best_j = -1;  // donor: alpha_j > 0, maximal gradient
    double min_gi = std::numeric_limits<double>::infinity();
    double max_gj = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (alpha[t] < kUpper && grad[t] < min_gi) {
        min_gi = grad[t];
        best_i = static_cast<int>(t);
      }
      if (alpha[t] > 0.0 && grad[t] > max_gj) {
        max_gj = grad[t];
        best_j = static_cast<int>(t);
      }
    }
    if (best_i < 0 || best_j < 0 || best_i == best_j ||
        max_gj - min_gi <= config_.tolerance) {
      break;
    }
    const auto i = static_cast<std::size_t>(best_i);
    const auto j = static_cast<std::size_t>(best_j);
    // Unconstrained optimal step along (e_i - e_j).
    const double denom =
        std::max(q[i * n + i] + q[j * n + j] - 2.0 * q[i * n + j], 1e-12);
    double delta = (grad[j] - grad[i]) / denom;
    // Box constraints: alpha_i + delta <= 1, alpha_j - delta >= 0.
    delta = std::min(delta, kUpper - alpha[i]);
    delta = std::min(delta, alpha[j]);
    if (delta <= 0.0) break;
    alpha[i] += delta;
    alpha[j] -= delta;
    const double* qi = q.data() + i * n;
    const double* qj = q.data() + j * n;
    for (std::size_t t = 0; t < n; ++t) {
      grad[t] += delta * (qi[t] - qj[t]);
    }
    ++iterations_;
  }

  // rho: average gradient over free support vectors (0 < alpha < 1);
  // fall back to the midpoint of the boundary gradients if none are free.
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-9 && alpha[t] < kUpper - 1e-9) {
      rho_sum += grad[t];
      ++rho_count;
    }
  }
  if (rho_count > 0) {
    rho_ = rho_sum / static_cast<double>(rho_count);
  } else {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (alpha[t] >= kUpper - 1e-9) lo = std::max(lo, grad[t]);
      if (alpha[t] <= 1e-9) hi = std::min(hi, grad[t]);
    }
    if (!std::isfinite(lo)) lo = hi;
    if (!std::isfinite(hi)) hi = lo;
    rho_ = 0.5 * (lo + hi);
  }

  // Keep only support vectors.
  support_vectors_.clear();
  alphas_.clear();
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-9) {
      support_vectors_.push_back(samples[t]);
      alphas_.push_back(alpha[t]);
    }
  }
  OSAP_CHECK_MSG(!support_vectors_.empty(),
                 "OneClassSvm::Fit produced no support vectors");
}

double OneClassSvm::DecisionValue(std::span<const double> x) const {
  OSAP_REQUIRE(Fitted(), "OneClassSvm::DecisionValue before Fit");
  const std::vector<double> xs = scaler_.Transform(x);
  double f = -rho_;
  for (std::size_t i = 0; i < support_vectors_.size(); ++i) {
    f += alphas_[i] * KernelValue(support_vectors_[i], xs);
  }
  return f;
}

double OneClassSvm::InlierFraction(
    const std::vector<std::vector<double>>& data) const {
  OSAP_REQUIRE(!data.empty(), "InlierFraction: empty data");
  std::size_t inliers = 0;
  for (const auto& row : data) {
    if (IsInlier(row)) ++inliers;
  }
  return static_cast<double>(inliers) / static_cast<double>(data.size());
}

void OneClassSvm::Save(const std::filesystem::path& path) const {
  OSAP_REQUIRE(Fitted(), "OneClassSvm::Save before Fit");
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("OneClassSvm::Save: cannot open " +
                             path.string());
  }
  out.write(kMagic, sizeof(kMagic));
  const std::size_t dim = support_vectors_.front().size();
  WriteU64(out, support_vectors_.size());
  WriteU64(out, dim);
  WriteF64(out, rho_);
  WriteF64(out, gamma_);
  WriteF64(out, config_.nu);
  for (double m : scaler_.mean()) WriteF64(out, m);
  for (double s : scaler_.stddev()) WriteF64(out, s);
  for (std::size_t i = 0; i < support_vectors_.size(); ++i) {
    WriteF64(out, alphas_[i]);
    for (double v : support_vectors_[i]) WriteF64(out, v);
  }
  if (!out) throw std::runtime_error("OneClassSvm::Save: write failed");
}

OneClassSvm OneClassSvm::Load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("OneClassSvm::Load: cannot open " +
                             path.string());
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("OneClassSvm::Load: bad magic");
  }
  const std::uint64_t count = ReadU64(in);
  const std::uint64_t dim = ReadU64(in);
  OneClassSvm model;
  model.rho_ = ReadF64(in);
  model.gamma_ = ReadF64(in);
  model.config_.gamma = model.gamma_;
  model.config_.nu = ReadF64(in);
  std::vector<double> mean(dim);
  std::vector<double> stddev(dim);
  for (auto& m : mean) m = ReadF64(in);
  for (auto& s : stddev) s = ReadF64(in);
  model.scaler_.SetState(std::move(mean), std::move(stddev));
  model.support_vectors_.resize(count, std::vector<double>(dim));
  model.alphas_.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    model.alphas_[i] = ReadF64(in);
    for (auto& v : model.support_vectors_[i]) v = ReadF64(in);
  }
  return model;
}

}  // namespace osap::svm
