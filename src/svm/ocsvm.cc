#include "svm/ocsvm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"

namespace osap::svm {

namespace {

constexpr char kMagic[8] = {'O', 'S', 'A', 'P', 'S', 'V', 'M', '1'};

void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t ReadU64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("OneClassSvm::Load: truncated stream");
  return v;
}

double ReadF64(std::istream& in) {
  double v = 0.0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("OneClassSvm::Load: truncated stream");
  return v;
}

}  // namespace

OneClassSvm::OneClassSvm(OcSvmConfig config) : config_(config) {}

void OneClassSvm::Fit(const std::vector<std::vector<double>>& data) {
  OSAP_REQUIRE(config_.nu > 0.0 && config_.nu < 1.0,
               "OneClassSvm: nu must be in (0, 1)");
  OSAP_REQUIRE(!data.empty(), "OneClassSvm::Fit: empty data");
  const std::size_t dim = data.front().size();
  OSAP_REQUIRE(dim > 0, "OneClassSvm::Fit: zero-dimensional data");
  for (const auto& row : data) {
    OSAP_REQUIRE(row.size() == dim, "OneClassSvm::Fit: ragged data");
  }

  // Deterministic subsample when the training set exceeds the cap.
  std::vector<std::vector<double>> samples;
  if (config_.max_samples > 0 && data.size() > config_.max_samples) {
    std::vector<std::size_t> idx(data.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    Rng rng(0xF17E5EED);
    rng.Shuffle(idx);
    idx.resize(config_.max_samples);
    std::sort(idx.begin(), idx.end());
    samples.reserve(idx.size());
    for (std::size_t i : idx) samples.push_back(data[i]);
  } else {
    samples = data;
  }
  const std::size_t n = samples.size();

  if (config_.standardize) {
    scaler_.Fit(samples);
    samples = scaler_.TransformAll(samples);
  } else {
    // Identity scaler so Transform is a no-op with the right dimension.
    scaler_.SetState(std::vector<double>(dim, 0.0),
                     std::vector<double>(dim, 1.0));
  }

  gamma_ = config_.gamma > 0.0 ? config_.gamma : ScaleGamma(samples);

  // Flatten the (scaled) samples into one contiguous row-major buffer with
  // precomputed squared norms - the same representation DecisionValue scans
  // - so each kernel row below is dot products against a linear buffer via
  // the norm expansion |a - b|^2 = |a|^2 - 2 a.b + |b|^2.
  std::vector<double> flat(n * dim);
  std::vector<double> sq_norms(n);
  for (std::size_t i = 0; i < n; ++i) {
    double* dst = flat.data() + i * dim;
    std::copy(samples[i].begin(), samples[i].end(), dst);
    double s = 0.0;
    for (std::size_t d = 0; d < dim; ++d) s += dst[d] * dst[d];
    sq_norms[i] = s;
  }

  // Precompute the kernel matrix row by row (n is capped by max_samples);
  // symmetry fills the lower triangle.
  std::vector<double> q(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* xi = flat.data() + i * dim;
    for (std::size_t j = i; j < n; ++j) {
      const double* xj = flat.data() + j * dim;
      double dot = 0.0;
      for (std::size_t d = 0; d < dim; ++d) dot += xi[d] * xj[d];
      const double k =
          std::exp(-gamma_ * (sq_norms[i] - 2.0 * dot + sq_norms[j]));
      q[i * n + j] = k;
      q[j * n + i] = k;
    }
  }

  // libsvm-style initialization: sum alpha = nu*n with the first
  // floor(nu*n) coordinates at the upper bound 1 and one fractional entry.
  std::vector<double> alpha(n, 0.0);
  const double total = config_.nu * static_cast<double>(n);
  {
    double remaining = total;
    for (std::size_t i = 0; i < n && remaining > 0.0; ++i) {
      alpha[i] = std::min(1.0, remaining);
      remaining -= alpha[i];
    }
  }

  // Gradient of the objective: G = Q alpha.
  std::vector<double> grad(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double g = 0.0;
    const double* qrow = q.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) g += qrow[j] * alpha[j];
    grad[i] = g;
  }

  // SMO with maximal-violating-pair selection. We can move mass from a
  // coordinate j (alpha_j > 0) to a coordinate i (alpha_i < 1); optimality
  // when max_j G_j - min_i G_i <= tolerance over the movable sets.
  iterations_ = 0;
  const double kUpper = 1.0;
  while (iterations_ < config_.max_iterations) {
    int best_i = -1;  // receiver: alpha_i < 1, minimal gradient
    int best_j = -1;  // donor: alpha_j > 0, maximal gradient
    double min_gi = std::numeric_limits<double>::infinity();
    double max_gj = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (alpha[t] < kUpper && grad[t] < min_gi) {
        min_gi = grad[t];
        best_i = static_cast<int>(t);
      }
      if (alpha[t] > 0.0 && grad[t] > max_gj) {
        max_gj = grad[t];
        best_j = static_cast<int>(t);
      }
    }
    if (best_i < 0 || best_j < 0 || best_i == best_j ||
        max_gj - min_gi <= config_.tolerance) {
      break;
    }
    const auto i = static_cast<std::size_t>(best_i);
    const auto j = static_cast<std::size_t>(best_j);
    // Unconstrained optimal step along (e_i - e_j).
    const double denom =
        std::max(q[i * n + i] + q[j * n + j] - 2.0 * q[i * n + j], 1e-12);
    double delta = (grad[j] - grad[i]) / denom;
    // Box constraints: alpha_i + delta <= 1, alpha_j - delta >= 0.
    delta = std::min(delta, kUpper - alpha[i]);
    delta = std::min(delta, alpha[j]);
    if (delta <= 0.0) break;
    alpha[i] += delta;
    alpha[j] -= delta;
    const double* qi = q.data() + i * n;
    const double* qj = q.data() + j * n;
    for (std::size_t t = 0; t < n; ++t) {
      grad[t] += delta * (qi[t] - qj[t]);
    }
    ++iterations_;
  }

  // rho: average gradient over free support vectors (0 < alpha < 1);
  // fall back to the midpoint of the boundary gradients if none are free.
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-9 && alpha[t] < kUpper - 1e-9) {
      rho_sum += grad[t];
      ++rho_count;
    }
  }
  if (rho_count > 0) {
    rho_ = rho_sum / static_cast<double>(rho_count);
  } else {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (alpha[t] >= kUpper - 1e-9) lo = std::max(lo, grad[t]);
      if (alpha[t] <= 1e-9) hi = std::min(hi, grad[t]);
    }
    if (!std::isfinite(lo)) lo = hi;
    if (!std::isfinite(hi)) hi = lo;
    rho_ = 0.5 * (lo + hi);
  }

  // Keep only support vectors, compacted into the flat decision buffer.
  sv_data_.clear();
  sv_sq_norms_.clear();
  alphas_.clear();
  sv_dim_ = dim;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-9) {
      const double* src = flat.data() + t * dim;
      sv_data_.insert(sv_data_.end(), src, src + dim);
      sv_sq_norms_.push_back(sq_norms[t]);
      alphas_.push_back(alpha[t]);
    }
  }
  sv_count_ = alphas_.size();
  OSAP_CHECK_MSG(sv_count_ > 0,
                 "OneClassSvm::Fit produced no support vectors");
}

double OneClassSvm::DecisionValue(std::span<const double> x) const {
  OSAP_REQUIRE(Fitted(), "OneClassSvm::DecisionValue before Fit");
  const std::vector<double> xs = scaler_.Transform(x);
  double x_norm = 0.0;
  for (double v : xs) x_norm += v * v;
  // Single linear scan over the contiguous SV buffer:
  //   f(x) = sum_i alpha_i exp(-gamma (|x|^2 - 2 x.sv_i + |sv_i|^2)) - rho.
  double f = -rho_;
  const double* sv = sv_data_.data();
  for (std::size_t i = 0; i < sv_count_; ++i, sv += sv_dim_) {
    double dot = 0.0;
    for (std::size_t d = 0; d < sv_dim_; ++d) dot += xs[d] * sv[d];
    f += alphas_[i] *
         std::exp(-gamma_ * (x_norm - 2.0 * dot + sv_sq_norms_[i]));
  }
  return f;
}

double OneClassSvm::InlierFraction(
    const std::vector<std::vector<double>>& data) const {
  OSAP_REQUIRE(!data.empty(), "InlierFraction: empty data");
  std::size_t inliers = 0;
  for (const auto& row : data) {
    if (IsInlier(row)) ++inliers;
  }
  return static_cast<double>(inliers) / static_cast<double>(data.size());
}

void OneClassSvm::Save(const std::filesystem::path& path) const {
  OSAP_REQUIRE(Fitted(), "OneClassSvm::Save before Fit");
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("OneClassSvm::Save: cannot open " +
                             path.string());
  }
  out.write(kMagic, sizeof(kMagic));
  WriteU64(out, sv_count_);
  WriteU64(out, sv_dim_);
  WriteF64(out, rho_);
  WriteF64(out, gamma_);
  WriteF64(out, config_.nu);
  for (double m : scaler_.mean()) WriteF64(out, m);
  for (double s : scaler_.stddev()) WriteF64(out, s);
  for (std::size_t i = 0; i < sv_count_; ++i) {
    WriteF64(out, alphas_[i]);
    const double* sv = sv_data_.data() + i * sv_dim_;
    for (std::size_t d = 0; d < sv_dim_; ++d) WriteF64(out, sv[d]);
  }
  if (!out) throw std::runtime_error("OneClassSvm::Save: write failed");
}

OneClassSvm OneClassSvm::Load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("OneClassSvm::Load: cannot open " +
                             path.string());
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("OneClassSvm::Load: bad magic");
  }
  const std::uint64_t count = ReadU64(in);
  const std::uint64_t dim = ReadU64(in);
  OneClassSvm model;
  model.rho_ = ReadF64(in);
  model.gamma_ = ReadF64(in);
  model.config_.gamma = model.gamma_;
  model.config_.nu = ReadF64(in);
  std::vector<double> mean(dim);
  std::vector<double> stddev(dim);
  for (auto& m : mean) m = ReadF64(in);
  for (auto& s : stddev) s = ReadF64(in);
  model.scaler_.SetState(std::move(mean), std::move(stddev));
  model.sv_count_ = count;
  model.sv_dim_ = dim;
  model.sv_data_.resize(count * dim);
  model.sv_sq_norms_.resize(count);
  model.alphas_.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    model.alphas_[i] = ReadF64(in);
    double* sv = model.sv_data_.data() + i * dim;
    double s = 0.0;
    for (std::uint64_t d = 0; d < dim; ++d) {
      sv[d] = ReadF64(in);
      s += sv[d] * sv[d];
    }
    model.sv_sq_norms_[i] = s;
  }
  return model;
}

}  // namespace osap::svm
