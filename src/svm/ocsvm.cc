#include "svm/ocsvm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/check.h"
#include "util/rng.h"
#include "util/simd.h"

// Batch-axis SIMD for the batched decision scan: four independent samples
// ride the four lanes of an AVX2 vector while every sample keeps its own
// scalar accumulation chain (SV-ascending additions, no FMA - the target
// below deliberately omits it) and each kernel term still goes through
// scalar std::exp per lane. That makes the vectorized scan bit-identical
// to DecisionValue yet ~4x cheaper on the dot products that dominate for
// the paper's wide synthetic feature windows (dim = 2k = 60). Guarded by
// the shared runtime dispatch (util::UseAvx2, OSAP_NO_AVX2 escape hatch);
// non-x86 or pre-AVX2 hosts use the scalar scan.
#if defined(__x86_64__) && defined(__GNUC__)
#define OSAP_OCSVM_BATCH_SIMD 1
#endif

namespace osap::svm {

namespace {

#ifdef OSAP_OCSVM_BATCH_SIMD

using V4 = double __attribute__((vector_size(32)));

/// Decision values for four scaled samples presented dim-major
/// (xt[d * 4 + lane]) with precomputed squared norms. Per lane the chain
/// is exactly DecisionValue's: f = -rho, then one SV-ascending addition
/// of alpha_i * exp(-gamma (|x|^2 - 2 x.sv_i + |sv_i|^2)) per support
/// vector, with the same association inside the exponent argument.
__attribute__((target("avx2"))) void DecisionValues4Avx2(
    const double* xt, const double* norms4, const double* sv_data,
    const double* sv_sq_norms, const double* alphas, std::size_t sv_count,
    std::size_t dim, double gamma, double rho, double* out4) {
  V4 acc = {-rho, -rho, -rho, -rho};
  V4 norms;
  std::memcpy(&norms, norms4, sizeof(V4));
  const double* sv = sv_data;
  for (std::size_t i = 0; i < sv_count; ++i, sv += dim) {
    V4 dot{};
    for (std::size_t d = 0; d < dim; ++d) {
      V4 x;
      std::memcpy(&x, xt + d * 4, sizeof(V4));
      dot = dot + x * sv[d];
    }
    const V4 arg = -gamma * (norms - 2.0 * dot + sv_sq_norms[i]);
    const V4 e = {std::exp(arg[0]), std::exp(arg[1]), std::exp(arg[2]),
                  std::exp(arg[3])};
    acc = acc + alphas[i] * e;
  }
  std::memcpy(out4, &acc, sizeof(V4));
}

#endif  // OSAP_OCSVM_BATCH_SIMD

constexpr char kMagic[8] = {'O', 'S', 'A', 'P', 'S', 'V', 'M', '1'};

void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t ReadU64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("OneClassSvm::Load: truncated stream");
  return v;
}

double ReadF64(std::istream& in) {
  double v = 0.0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("OneClassSvm::Load: truncated stream");
  return v;
}

// RBF kernel over the flattened (scaled) samples, evaluated element-wise in
// a canonical index order: element (r, c) is always computed as
//   exp(-gamma (|x_min|^2 - 2 x_min.x_max + |x_max|^2)),  min/max of (r, c),
// which is exactly how the dense solver fills its upper triangle and then
// mirrors it. The dot product itself is order-insensitive bitwise (same
// ascending-d chain, commutative products), so any lazily computed row or
// single element is bit-identical to the dense matrix entry.
struct KernelEval {
  const double* flat;
  const double* sq_norms;
  std::size_t dim;
  std::size_t n;
  double gamma;

  double At(std::size_t r, std::size_t c) const {
    const std::size_t i = std::min(r, c);
    const std::size_t j = std::max(r, c);
    const double* xi = flat + i * dim;
    const double* xj = flat + j * dim;
    double dot = 0.0;
    for (std::size_t d = 0; d < dim; ++d) dot += xi[d] * xj[d];
    return std::exp(-gamma * (sq_norms[i] - 2.0 * dot + sq_norms[j]));
  }

  void Row(std::size_t r, double* out) const {
    for (std::size_t c = 0; c < n; ++c) out[c] = At(r, c);
  }
};

// Bounded LRU cache of full kernel rows. The working-set solver touches a
// small, highly repetitive set of rows (the nonzero-alpha prefix for the
// initial gradient plus the maximal-violating pairs), so fit cost tracks
// the rows actually used instead of the full n^2 precompute.
class KernelRowCache {
 public:
  KernelRowCache(const KernelEval& kernel, std::size_t budget_mb)
      : kernel_(kernel), n_(kernel.n) {
    const std::size_t row_bytes = n_ * sizeof(double);
    const std::size_t budget = budget_mb * 1024 * 1024;
    capacity_ = std::clamp<std::size_t>(budget / std::max<std::size_t>(row_bytes, 1),
                                        2, std::max<std::size_t>(n_, 2));
    pool_.resize(capacity_ * n_);
    slot_of_.assign(n_, -1);
    row_of_.assign(capacity_, n_);
    last_used_.assign(capacity_, 0);
  }

  /// Cached row pointer; computes (and possibly evicts) on miss. Valid
  /// until the next Row() call.
  const double* Row(std::size_t r) {
    int s = slot_of_[r];
    if (s < 0) {
      s = AcquireSlot();
      if (row_of_[static_cast<std::size_t>(s)] < n_) {
        slot_of_[row_of_[static_cast<std::size_t>(s)]] = -1;
      }
      row_of_[static_cast<std::size_t>(s)] = r;
      slot_of_[r] = s;
      kernel_.Row(r, pool_.data() + static_cast<std::size_t>(s) * n_);
    }
    last_used_[static_cast<std::size_t>(s)] = ++tick_;
    return pool_.data() + static_cast<std::size_t>(s) * n_;
  }

  /// Single element, served from either symmetric cached row when present
  /// (bit-identical either way thanks to the canonical element order).
  /// Does not touch LRU state and never allocates.
  double At(std::size_t r, std::size_t c) const {
    if (slot_of_[r] >= 0) {
      return pool_[static_cast<std::size_t>(slot_of_[r]) * n_ + c];
    }
    if (slot_of_[c] >= 0) {
      return pool_[static_cast<std::size_t>(slot_of_[c]) * n_ + r];
    }
    return kernel_.At(r, c);
  }

 private:
  int AcquireSlot() {
    if (used_ < capacity_) return static_cast<int>(used_++);
    std::size_t lru = 0;
    for (std::size_t s = 1; s < capacity_; ++s) {
      if (last_used_[s] < last_used_[lru]) lru = s;
    }
    return static_cast<int>(lru);
  }

  const KernelEval& kernel_;
  std::size_t n_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<double> pool_;
  std::vector<int> slot_of_;          // sample index -> slot, -1 if absent
  std::vector<std::size_t> row_of_;   // slot -> sample index, n_ if free
  std::vector<std::uint64_t> last_used_;
};

/// The original solver: full n x n kernel precompute, dense initial
/// gradient, maximal-violating-pair SMO. Kept verbatim as the reference the
/// working-set solver must match bit for bit (see ocsvm_working_set_test).
std::size_t SolveDenseSmo(const KernelEval& kernel, const OcSvmConfig& config,
                          std::vector<double>& alpha,
                          std::vector<double>& grad) {
  const std::size_t n = kernel.n;
  std::vector<double> q(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = kernel.At(i, j);
      q[i * n + j] = k;
      q[j * n + i] = k;
    }
  }

  // Gradient of the objective: G = Q alpha.
  for (std::size_t i = 0; i < n; ++i) {
    double g = 0.0;
    const double* qrow = q.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) g += qrow[j] * alpha[j];
    grad[i] = g;
  }

  // SMO with maximal-violating-pair selection. We can move mass from a
  // coordinate j (alpha_j > 0) to a coordinate i (alpha_i < 1); optimality
  // when max_j G_j - min_i G_i <= tolerance over the movable sets.
  std::size_t iterations = 0;
  const double kUpper = 1.0;
  while (iterations < config.max_iterations) {
    int best_i = -1;  // receiver: alpha_i < 1, minimal gradient
    int best_j = -1;  // donor: alpha_j > 0, maximal gradient
    double min_gi = std::numeric_limits<double>::infinity();
    double max_gj = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (alpha[t] < kUpper && grad[t] < min_gi) {
        min_gi = grad[t];
        best_i = static_cast<int>(t);
      }
      if (alpha[t] > 0.0 && grad[t] > max_gj) {
        max_gj = grad[t];
        best_j = static_cast<int>(t);
      }
    }
    if (best_i < 0 || best_j < 0 || best_i == best_j ||
        max_gj - min_gi <= config.tolerance) {
      break;
    }
    const auto i = static_cast<std::size_t>(best_i);
    const auto j = static_cast<std::size_t>(best_j);
    // Unconstrained optimal step along (e_i - e_j).
    const double denom =
        std::max(q[i * n + i] + q[j * n + j] - 2.0 * q[i * n + j], 1e-12);
    double delta = (grad[j] - grad[i]) / denom;
    // Box constraints: alpha_i + delta <= 1, alpha_j - delta >= 0.
    delta = std::min(delta, kUpper - alpha[i]);
    delta = std::min(delta, alpha[j]);
    if (delta <= 0.0) break;
    alpha[i] += delta;
    alpha[j] -= delta;
    const double* qi = q.data() + i * n;
    const double* qj = q.data() + j * n;
    for (std::size_t t = 0; t < n; ++t) {
      grad[t] += delta * (qi[t] - qj[t]);
    }
    ++iterations;
  }
  return iterations;
}

/// Working-set solver: lazy LRU kernel rows, sparse initial gradient, and
/// bit-exact shrinking. Every quantity it computes - pair selection, step
/// sizes, gradients, iteration count - is bitwise identical to
/// SolveDenseSmo, by the following argument:
///
///  * Kernel elements are computed in the canonical (min, max) index order
///    wherever they are produced (full rows, cached symmetric reads, or
///    single on-demand elements), so they equal the dense matrix entries.
///  * The initial gradient skips zero-alpha terms. All kernel values are
///    positive and alphas non-negative, so the running sums never produce
///    -0.0 and adding a skipped 0.0 term is a bitwise no-op; the nonzero
///    alphas form a prefix, so term order is unchanged.
///  * Shrinking removes only alpha == 0 points (never donor candidates)
///    whose gradients sit above the current max donor gradient. A shrunk
///    point's true gradient can drift below its value at shrink time by at
///    most the sum D of subsequent step sizes (|q_i[t] - q_j[t]| <= 1 for
///    RBF). Selection therefore only proceeds on a shrunk working set while
///    min over shrunk of (grad_at_shrink) - D (minus a slack dwarfing the
///    FP error of this accounting) stays strictly above the active minimum
///    gradient - i.e. while no shrunk point could be chosen as receiver by
///    the dense scan, which also keeps the dense scan's first-index
///    tie-breaking intact. When the guard trips, shrunk points are caught
///    up by replaying the logged (i, j, delta) steps in order - the exact
///    same accumulation chain the dense solver applied - and unshrunk.
///  * Remaining shrunk points are caught up the same way after the loop,
///    so the rho computation sees the exact dense gradients.
std::size_t SolveWorkingSetSmo(const KernelEval& kernel,
                               const OcSvmConfig& config,
                               std::vector<double>& alpha,
                               std::vector<double>& grad) {
  const std::size_t n = kernel.n;
  const double kUpper = 1.0;
  KernelRowCache cache(kernel, config.kernel_cache_mb);

  // Sparse initial gradient over the nonzero-alpha prefix, ascending j per
  // element just like the dense G = Q alpha.
  std::size_t nz = 0;
  while (nz < n && alpha[nz] > 0.0) ++nz;
  for (std::size_t j = 0; j < nz; ++j) {
    const double* qj = cache.Row(j);
    const double aj = alpha[j];
    for (std::size_t t = 0; t < n; ++t) grad[t] += qj[t] * aj;
  }

  struct Step {
    std::uint32_t i;
    std::uint32_t j;
    double delta;
  };
  std::vector<unsigned char> shrunk(n, 0);
  std::vector<std::size_t> shrink_from(n, 0);  // log index at shrink time
  std::vector<Step> log;
  std::size_t shrunk_count = 0;
  double drift = 0.0;  // sum of deltas since the current shrink epoch began
  double guard_min = std::numeric_limits<double>::infinity();
  // Slack absorbing the floating-point error of the drift accounting (a few
  // hundred additions of O(1) terms, so ~1e-12 worst case); 1e-9 leaves
  // three orders of magnitude margin while remaining far below the 1e-4
  // tolerance scale that shrinking candidates clear by construction.
  const double kGuardSlack = 1e-9;

  auto catch_up = [&](std::size_t t) {
    for (std::size_t k = shrink_from[t]; k < log.size(); ++k) {
      const Step& s = log[k];
      grad[t] += s.delta * (cache.At(s.i, t) - cache.At(s.j, t));
    }
  };
  auto unshrink_all = [&]() {
    for (std::size_t t = 0; t < n; ++t) {
      if (shrunk[t]) {
        catch_up(t);
        shrunk[t] = 0;
      }
    }
    shrunk_count = 0;
    drift = 0.0;
    guard_min = std::numeric_limits<double>::infinity();
    log.clear();
  };

  std::size_t iterations = 0;
  while (iterations < config.max_iterations) {
    int best_i = -1;
    int best_j = -1;
    double min_gi = std::numeric_limits<double>::infinity();
    double max_gj = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (shrunk[t]) continue;
      if (alpha[t] < kUpper && grad[t] < min_gi) {
        min_gi = grad[t];
        best_i = static_cast<int>(t);
      }
      if (alpha[t] > 0.0 && grad[t] > max_gj) {
        max_gj = grad[t];
        best_j = static_cast<int>(t);
      }
    }
    if (shrunk_count > 0 && !(guard_min - (drift + kGuardSlack) > min_gi)) {
      // A shrunk point could (conservatively) now beat the active receiver
      // minimum: restore exact gradients and redo this selection densely.
      unshrink_all();
      continue;
    }
    if (best_i < 0 || best_j < 0 || best_i == best_j ||
        max_gj - min_gi <= config.tolerance) {
      break;
    }
    const auto i = static_cast<std::size_t>(best_i);
    const auto j = static_cast<std::size_t>(best_j);
    const double* qi = cache.Row(i);
    const double* qj = cache.Row(j);
    const double denom = std::max(qi[i] + qj[j] - 2.0 * qi[j], 1e-12);
    double delta = (grad[j] - grad[i]) / denom;
    delta = std::min(delta, kUpper - alpha[i]);
    delta = std::min(delta, alpha[j]);
    if (delta <= 0.0) break;
    alpha[i] += delta;
    alpha[j] -= delta;
    for (std::size_t t = 0; t < n; ++t) {
      if (!shrunk[t]) grad[t] += delta * (qi[t] - qj[t]);
    }
    if (shrunk_count > 0) {
      log.push_back(Step{static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j), delta});
      drift += delta;
    }
    ++iterations;

    if (config.shrink_interval > 0 &&
        iterations % config.shrink_interval == 0) {
      for (std::size_t t = 0; t < n; ++t) {
        if (!shrunk[t] && alpha[t] == 0.0 && grad[t] > max_gj) {
          shrunk[t] = 1;
          ++shrunk_count;
          shrink_from[t] = log.size();
          guard_min = std::min(guard_min, grad[t] + drift);
        }
      }
    }
  }

  // rho needs the exact gradient of every point.
  for (std::size_t t = 0; t < n; ++t) {
    if (shrunk[t]) catch_up(t);
  }
  return iterations;
}

}  // namespace

OneClassSvm::OneClassSvm(OcSvmConfig config) : config_(config) {}

void OneClassSvm::Fit(const std::vector<std::vector<double>>& data) {
  OSAP_REQUIRE(config_.nu > 0.0 && config_.nu < 1.0,
               "OneClassSvm: nu must be in (0, 1)");
  OSAP_REQUIRE(!data.empty(), "OneClassSvm::Fit: empty data");
  const std::size_t dim = data.front().size();
  OSAP_REQUIRE(dim > 0, "OneClassSvm::Fit: zero-dimensional data");
  for (const auto& row : data) {
    OSAP_REQUIRE(row.size() == dim, "OneClassSvm::Fit: ragged data");
  }

  // Deterministic subsample when the training set exceeds the cap.
  std::vector<std::vector<double>> samples;
  if (config_.max_samples > 0 && data.size() > config_.max_samples) {
    std::vector<std::size_t> idx(data.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    Rng rng(0xF17E5EED);
    rng.Shuffle(idx);
    idx.resize(config_.max_samples);
    std::sort(idx.begin(), idx.end());
    samples.reserve(idx.size());
    for (std::size_t i : idx) samples.push_back(data[i]);
  } else {
    samples = data;
  }
  const std::size_t n = samples.size();

  if (config_.standardize) {
    scaler_.Fit(samples);
    samples = scaler_.TransformAll(samples);
  } else {
    // Identity scaler so Transform is a no-op with the right dimension.
    scaler_.SetState(std::vector<double>(dim, 0.0),
                     std::vector<double>(dim, 1.0));
  }

  gamma_ = config_.gamma > 0.0 ? config_.gamma : ScaleGamma(samples);

  // Flatten the (scaled) samples into one contiguous row-major buffer with
  // precomputed squared norms - the same representation DecisionValue scans
  // - so each kernel row below is dot products against a linear buffer via
  // the norm expansion |a - b|^2 = |a|^2 - 2 a.b + |b|^2.
  std::vector<double> flat(n * dim);
  std::vector<double> sq_norms(n);
  for (std::size_t i = 0; i < n; ++i) {
    double* dst = flat.data() + i * dim;
    std::copy(samples[i].begin(), samples[i].end(), dst);
    double s = 0.0;
    for (std::size_t d = 0; d < dim; ++d) s += dst[d] * dst[d];
    sq_norms[i] = s;
  }

  // libsvm-style initialization: sum alpha = nu*n with the first
  // floor(nu*n) coordinates at the upper bound 1 and one fractional entry.
  std::vector<double> alpha(n, 0.0);
  const double total = config_.nu * static_cast<double>(n);
  {
    double remaining = total;
    for (std::size_t i = 0; i < n && remaining > 0.0; ++i) {
      alpha[i] = std::min(1.0, remaining);
      remaining -= alpha[i];
    }
  }

  // Solve the dual. The working-set solver (default) is bit-identical to
  // the dense reference solver but only computes the kernel rows the SMO
  // loop touches, so fit cost no longer grows with the full n^2 matrix.
  std::vector<double> grad(n, 0.0);
  const KernelEval kernel{flat.data(), sq_norms.data(), dim, n, gamma_};
  iterations_ = config_.dense_solver
                    ? SolveDenseSmo(kernel, config_, alpha, grad)
                    : SolveWorkingSetSmo(kernel, config_, alpha, grad);
  const double kUpper = 1.0;

  // rho: average gradient over free support vectors (0 < alpha < 1);
  // fall back to the midpoint of the boundary gradients if none are free.
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-9 && alpha[t] < kUpper - 1e-9) {
      rho_sum += grad[t];
      ++rho_count;
    }
  }
  if (rho_count > 0) {
    rho_ = rho_sum / static_cast<double>(rho_count);
  } else {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (alpha[t] >= kUpper - 1e-9) lo = std::max(lo, grad[t]);
      if (alpha[t] <= 1e-9) hi = std::min(hi, grad[t]);
    }
    if (!std::isfinite(lo)) lo = hi;
    if (!std::isfinite(hi)) hi = lo;
    rho_ = 0.5 * (lo + hi);
  }

  // Keep only support vectors, compacted into the flat decision buffer.
  sv_data_.clear();
  sv_sq_norms_.clear();
  alphas_.clear();
  sv_dim_ = dim;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-9) {
      const double* src = flat.data() + t * dim;
      sv_data_.insert(sv_data_.end(), src, src + dim);
      sv_sq_norms_.push_back(sq_norms[t]);
      alphas_.push_back(alpha[t]);
    }
  }
  sv_count_ = alphas_.size();
  OSAP_CHECK_MSG(sv_count_ > 0,
                 "OneClassSvm::Fit produced no support vectors");
}

double OneClassSvm::DecisionValue(std::span<const double> x) const {
  OSAP_REQUIRE(Fitted(), "OneClassSvm::DecisionValue before Fit");
  const std::vector<double> xs = scaler_.Transform(x);
  double x_norm = 0.0;
  for (double v : xs) x_norm += v * v;
  // Single linear scan over the contiguous SV buffer:
  //   f(x) = sum_i alpha_i exp(-gamma (|x|^2 - 2 x.sv_i + |sv_i|^2)) - rho.
  double f = -rho_;
  const double* sv = sv_data_.data();
  for (std::size_t i = 0; i < sv_count_; ++i, sv += sv_dim_) {
    double dot = 0.0;
    for (std::size_t d = 0; d < sv_dim_; ++d) dot += xs[d] * sv[d];
    f += alphas_[i] *
         std::exp(-gamma_ * (x_norm - 2.0 * dot + sv_sq_norms_[i]));
  }
  return f;
}

void OneClassSvm::DecisionValues(const double* rows, std::size_t count,
                                 std::span<double> out) const {
  OSAP_REQUIRE(Fitted(), "OneClassSvm::DecisionValues before Fit");
  OSAP_REQUIRE(out.size() >= count, "DecisionValues: output span too short");
  if (count == 0) return;
#ifdef OSAP_OCSVM_BATCH_SIMD
  if (count >= 4 && util::UseAvx2()) {
    const std::vector<double>& mean = scaler_.mean();
    const std::vector<double>& stddev = scaler_.stddev();
    // One dim-major block of four scaled samples at a time; thread-local
    // so the serving steady state is allocation-free.
    thread_local std::vector<double> xt;
    xt.resize(sv_dim_ * 4);
    alignas(32) double norms4[4];
    std::size_t s = 0;
    for (; s + 4 <= count; s += 4) {
      for (std::size_t lane = 0; lane < 4; ++lane) {
        const double* x = rows + (s + lane) * sv_dim_;
        double norm = 0.0;
        for (std::size_t d = 0; d < sv_dim_; ++d) {
          const double v = (x[d] - mean[d]) / stddev[d];
          xt[d * 4 + lane] = v;
          norm += v * v;
        }
        norms4[lane] = norm;
      }
      DecisionValues4Avx2(xt.data(), norms4, sv_data_.data(),
                          sv_sq_norms_.data(), alphas_.data(), sv_count_,
                          sv_dim_, gamma_, rho_, out.data() + s);
    }
    if (s < count) {
      DecisionValuesScalar(rows + s * sv_dim_, count - s, out.subspan(s));
    }
    return;
  }
#endif
  DecisionValuesScalar(rows, count, out);
}

void OneClassSvm::DecisionValuesScalar(const double* rows, std::size_t count,
                                       std::span<double> out) const {
  // Scale all samples up front (same per-element (x - mean) / stddev as
  // StandardScaler::Transform), with squared norms alongside. Thread-local
  // so the serving steady state is allocation-free.
  thread_local std::vector<double> scaled;
  thread_local std::vector<double> norms;
  scaled.resize(count * sv_dim_);
  norms.resize(count);
  const std::vector<double>& mean = scaler_.mean();
  const std::vector<double>& stddev = scaler_.stddev();
  for (std::size_t s = 0; s < count; ++s) {
    const double* x = rows + s * sv_dim_;
    double* xs = scaled.data() + s * sv_dim_;
    double x_norm = 0.0;
    for (std::size_t d = 0; d < sv_dim_; ++d) {
      xs[d] = (x[d] - mean[d]) / stddev[d];
      x_norm += xs[d] * xs[d];
    }
    norms[s] = x_norm;
    out[s] = -rho_;
  }
  // SV-outer / sample-inner: each support-vector row streams once for the
  // whole batch, while every sample's accumulator still sums its kernel
  // terms in ascending SV order - the exact chain DecisionValue runs - so
  // the results are bit-identical to the one-sample path.
  const double* sv = sv_data_.data();
  for (std::size_t i = 0; i < sv_count_; ++i, sv += sv_dim_) {
    const double a = alphas_[i];
    const double sv_sq = sv_sq_norms_[i];
    for (std::size_t s = 0; s < count; ++s) {
      const double* xs = scaled.data() + s * sv_dim_;
      double dot = 0.0;
      for (std::size_t d = 0; d < sv_dim_; ++d) dot += xs[d] * sv[d];
      out[s] += a * std::exp(-gamma_ * (norms[s] - 2.0 * dot + sv_sq));
    }
  }
}

double OneClassSvm::InlierFraction(
    const std::vector<std::vector<double>>& data) const {
  OSAP_REQUIRE(!data.empty(), "InlierFraction: empty data");
  std::size_t inliers = 0;
  for (const auto& row : data) {
    if (IsInlier(row)) ++inliers;
  }
  return static_cast<double>(inliers) / static_cast<double>(data.size());
}

void OneClassSvm::Save(const std::filesystem::path& path) const {
  OSAP_REQUIRE(Fitted(), "OneClassSvm::Save before Fit");
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("OneClassSvm::Save: cannot open " +
                             path.string());
  }
  out.write(kMagic, sizeof(kMagic));
  WriteU64(out, sv_count_);
  WriteU64(out, sv_dim_);
  WriteF64(out, rho_);
  WriteF64(out, gamma_);
  WriteF64(out, config_.nu);
  for (double m : scaler_.mean()) WriteF64(out, m);
  for (double s : scaler_.stddev()) WriteF64(out, s);
  for (std::size_t i = 0; i < sv_count_; ++i) {
    WriteF64(out, alphas_[i]);
    const double* sv = sv_data_.data() + i * sv_dim_;
    for (std::size_t d = 0; d < sv_dim_; ++d) WriteF64(out, sv[d]);
  }
  if (!out) throw std::runtime_error("OneClassSvm::Save: write failed");
}

OneClassSvm OneClassSvm::Load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("OneClassSvm::Load: cannot open " +
                             path.string());
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("OneClassSvm::Load: bad magic");
  }
  const std::uint64_t count = ReadU64(in);
  const std::uint64_t dim = ReadU64(in);
  OneClassSvm model;
  model.rho_ = ReadF64(in);
  model.gamma_ = ReadF64(in);
  model.config_.gamma = model.gamma_;
  model.config_.nu = ReadF64(in);
  std::vector<double> mean(dim);
  std::vector<double> stddev(dim);
  for (auto& m : mean) m = ReadF64(in);
  for (auto& s : stddev) s = ReadF64(in);
  model.scaler_.SetState(std::move(mean), std::move(stddev));
  model.sv_count_ = count;
  model.sv_dim_ = dim;
  model.sv_data_.resize(count * dim);
  model.sv_sq_norms_.resize(count);
  model.alphas_.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    model.alphas_[i] = ReadF64(in);
    double* sv = model.sv_data_.data() + i * dim;
    double s = 0.0;
    for (std::uint64_t d = 0; d < dim; ++d) {
      sv[d] = ReadF64(in);
      s += sv[d] * sv[d];
    }
    model.sv_sq_norms_[i] = s;
  }
  return model;
}

}  // namespace osap::svm
