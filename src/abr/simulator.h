// Chunk-level ABR streaming simulator.
//
// This is the substrate substituting for the paper's MahiMahi testbed [30]:
// it reproduces the dynamics the evaluation depends on at the same fidelity
// Pensieve's own training simulator uses (Mao et al.'s env.py):
//
//  - a chunk download occupies the link for bytes/throughput, integrated
//    over the piecewise-constant trace (so throughput changes mid-download
//    are honored), plus one RTT of request latency;
//  - the playback buffer drains in real time during the download; an empty
//    buffer stalls playback (rebuffering) until the chunk arrives;
//  - each finished chunk adds chunk_seconds of playable video;
//  - when the buffer would exceed its capacity the client pauses requesting
//    (Pensieve sleeps in 500 ms units) and the trace clock advances.
#pragma once

#include <cstddef>

#include "abr/video.h"
#include "traces/trace.h"

namespace osap::abr {

struct SimulatorConfig {
  /// Client-server round-trip time (the paper emulates 80 ms).
  double rtt_seconds = 0.08;
  /// Playback buffer capacity in seconds (Pensieve: 60 s).
  double buffer_capacity_seconds = 60.0;
  /// Pause quantum when the buffer is full (Pensieve: 500 ms).
  double drain_quantum_seconds = 0.5;
};

/// Result of downloading one chunk.
struct DownloadResult {
  /// Wall-clock time the download took (including RTT).
  double download_seconds = 0.0;
  /// Playback stall incurred while waiting for this chunk.
  double rebuffer_seconds = 0.0;
  /// Time spent paused because the buffer was full (after the download).
  double sleep_seconds = 0.0;
  /// Bytes transferred.
  double bytes = 0.0;
  /// Buffer level after the chunk was added (seconds of video).
  double buffer_seconds = 0.0;
  /// Measured throughput for this chunk: bytes / download time, in Mbps.
  /// This is the observation the ND (U_S) scheme monitors.
  double throughput_mbps = 0.0;
  /// True when this was the final chunk of the video.
  bool video_finished = false;
};

/// Simulates one client streaming one video over one trace. Deterministic:
/// equal (video, trace, decisions) produce equal results.
class AbrSimulator {
 public:
  /// The video spec is copied so the simulator is freely movable.
  AbrSimulator(VideoSpec video, SimulatorConfig config = {});

  /// Starts a session over the given trace at trace time 0. The trace must
  /// outlive the simulator's use of it.
  void StartSession(const traces::Trace& trace);

  /// Downloads the next chunk at the given ladder level. Requires an active
  /// session with chunks remaining.
  DownloadResult DownloadChunk(std::size_t level);

  /// The simulator's full dynamic state: restoring it resumes the session
  /// mid-stream as if the prefix had just been simulated. The trace pointer
  /// is non-owning; the trace must still be alive at Restore time. Tiny
  /// (four words) - checkpointing per step costs nothing next to a chunk
  /// download, unlike copying the simulator with its embedded VideoSpec.
  struct Checkpoint {
    const traces::Trace* trace = nullptr;
    std::size_t next_chunk = 0;
    double buffer_seconds = 0.0;
    double trace_time = 0.0;
  };
  Checkpoint SaveCheckpoint() const {
    return {trace_, next_chunk_, buffer_seconds_, trace_time_};
  }
  void RestoreCheckpoint(const Checkpoint& c) {
    trace_ = c.trace;
    next_chunk_ = c.next_chunk;
    buffer_seconds_ = c.buffer_seconds;
    trace_time_ = c.trace_time;
  }

  /// Index of the next chunk to download (0-based).
  std::size_t NextChunkIndex() const { return next_chunk_; }

  /// Chunks left to download.
  std::size_t ChunksRemaining() const;

  /// Current buffer level (seconds of video ready to play).
  double BufferSeconds() const { return buffer_seconds_; }

  /// Wall-clock position in the (cyclically repeating) trace.
  double TraceTimeSeconds() const { return trace_time_; }

  bool SessionActive() const { return trace_ != nullptr; }
  const VideoSpec& video() const { return video_; }
  const SimulatorConfig& config() const { return config_; }

 private:
  VideoSpec video_;
  SimulatorConfig config_;
  const traces::Trace* trace_ = nullptr;
  std::size_t next_chunk_ = 0;
  double buffer_seconds_ = 0.0;
  double trace_time_ = 0.0;

  /// Advances trace time while transferring `bytes`; returns elapsed time.
  double TransferTime(double bytes);
};

}  // namespace osap::abr
