// Video description for ABR streaming.
//
// The paper streams the "EnvivioDash3" DASH reference video: 48 chunks of
// ~4 seconds encoded at six bitrates, concatenated five times to prolong
// the session (Section 3.1). We reproduce that structure synthetically:
// the same bitrate ladder ({300, 750, 1200, 1850, 2850, 4300} kbps - the
// ladder of the Pensieve reference implementation), 4-second chunks, and
// per-chunk VBR size jitter (real encoders do not emit exactly
// bitrate*duration bytes per chunk) generated deterministically per
// (chunk, level).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace osap::abr {

class VideoSpec {
 public:
  /// Builds a video with the given ladder (kbps, ascending), chunk count
  /// and duration. vbr_jitter in [0, 1) scales the +/- size deviation per
  /// chunk; 0 disables jitter. `seed` fixes the jitter pattern.
  VideoSpec(std::vector<double> bitrates_kbps, std::size_t chunk_count,
            double chunk_seconds, double vbr_jitter = 0.05,
            std::uint64_t seed = 7);

  std::size_t LevelCount() const { return bitrates_kbps_.size(); }
  std::size_t ChunkCount() const { return chunk_count_; }
  double ChunkSeconds() const { return chunk_seconds_; }

  /// Ladder entry in kbps / Mbps.
  double BitrateKbps(std::size_t level) const;
  double BitrateMbps(std::size_t level) const { return BitrateKbps(level) / 1000.0; }

  /// Highest ladder entry in Mbps (the conventional rebuffer penalty).
  double MaxBitrateMbps() const;

  /// Size in bytes of a chunk at a level, including VBR jitter.
  double ChunkBytes(std::size_t chunk, std::size_t level) const;

  /// Total video duration in seconds.
  double Duration() const { return chunk_seconds_ * static_cast<double>(chunk_count_); }

 private:
  std::vector<double> bitrates_kbps_;
  std::size_t chunk_count_;
  double chunk_seconds_;
  // chunk-major size table [chunk * LevelCount + level]
  std::vector<double> chunk_bytes_;
};

/// The paper's video: EnvivioDash3-like, 48 chunks x 4 s, repeated
/// `repeats` times (the paper uses 5 -> 240 chunks).
VideoSpec MakeEnvivioLikeVideo(std::size_t repeats = 5);

}  // namespace osap::abr
