#include "abr/abr_environment.h"

#include <algorithm>

#include "util/check.h"

namespace osap::abr {

AbrEnvironment::AbrEnvironment(VideoSpec video, AbrEnvironmentConfig config)
    : video_(std::move(video)),
      config_(config),
      simulator_(video_, config.simulator),
      qoe_(config.qoe) {
  OSAP_REQUIRE(config_.layout.levels == video_.LevelCount(),
               "AbrEnvironment: layout levels must match the video ladder");
  OSAP_REQUIRE(config_.layout.history > 0,
               "AbrEnvironment: history must be > 0");
}

void AbrEnvironment::SetTracePool(std::span<const traces::Trace> pool,
                                  std::uint64_t seed) {
  OSAP_REQUIRE(!pool.empty(), "SetTracePool: empty pool");
  pool_ = pool;
  pool_rng_ = Rng(seed);
  fixed_trace_ = nullptr;
}

void AbrEnvironment::SetFixedTrace(const traces::Trace& trace) {
  fixed_trace_ = &trace;
  pool_ = {};
}

void AbrEnvironment::SkipPoolEpisodes(std::size_t episodes) {
  OSAP_REQUIRE(!pool_.empty(), "SkipPoolEpisodes: no trace pool");
  for (std::size_t i = 0; i < episodes; ++i) {
    (void)pool_rng_.UniformInt(pool_.size());
  }
}

mdp::State AbrEnvironment::Reset() {
  OSAP_REQUIRE(fixed_trace_ != nullptr || !pool_.empty(),
               "AbrEnvironment::Reset: no trace configured");
  current_trace_ =
      fixed_trace_ != nullptr
          ? fixed_trace_
          : &pool_[static_cast<std::size_t>(pool_rng_.UniformInt(pool_.size()))];
  simulator_.StartSession(*current_trace_);
  qoe_.Reset();
  throughput_history_mbps_.assign(config_.layout.history, 0.0);
  download_time_history_s_.assign(config_.layout.history, 0.0);
  last_bitrate_mbps_ = 0.0;
  last_download_ = DownloadResult{};
  return BuildState();
}

mdp::StepResult AbrEnvironment::Step(mdp::Action action) {
  OSAP_REQUIRE(simulator_.SessionActive(),
               "AbrEnvironment::Step before Reset");
  OSAP_REQUIRE(action >= 0 &&
                   static_cast<std::size_t>(action) < video_.LevelCount(),
               "AbrEnvironment::Step: action out of range");
  const auto level = static_cast<std::size_t>(action);
  last_download_ = simulator_.DownloadChunk(level);

  // Shift the oldest-first history taps and append this chunk's
  // observations.
  throughput_history_mbps_.erase(throughput_history_mbps_.begin());
  throughput_history_mbps_.push_back(last_download_.throughput_mbps);
  download_time_history_s_.erase(download_time_history_s_.begin());
  download_time_history_s_.push_back(last_download_.download_seconds);

  const double bitrate_mbps = video_.BitrateMbps(level);
  const double reward =
      qoe_.AddChunk(bitrate_mbps, last_download_.rebuffer_seconds);
  last_bitrate_mbps_ = bitrate_mbps;

  mdp::StepResult result;
  result.reward = reward;
  result.done = last_download_.video_finished;
  result.next_state = BuildState();
  return result;
}

AbrEnvironment::ResumePoint AbrEnvironment::SaveResumePoint() const {
  ResumePoint rp;
  rp.simulator = simulator_.SaveCheckpoint();
  rp.qoe = qoe_;
  rp.fixed_trace = fixed_trace_;
  rp.current_trace = current_trace_;
  rp.throughput_history_mbps = throughput_history_mbps_;
  rp.download_time_history_s = download_time_history_s_;
  rp.last_bitrate_mbps = last_bitrate_mbps_;
  rp.last_download = last_download_;
  return rp;
}

void AbrEnvironment::RestoreResumePoint(const ResumePoint& rp) {
  // The trace-pool members are deliberately untouched: a resume point
  // captures one session in flight, not the episode-sampling stream.
  simulator_.RestoreCheckpoint(rp.simulator);
  qoe_ = rp.qoe;
  fixed_trace_ = rp.fixed_trace;
  current_trace_ = rp.current_trace;
  throughput_history_mbps_ = rp.throughput_history_mbps;
  download_time_history_s_ = rp.download_time_history_s;
  last_bitrate_mbps_ = rp.last_bitrate_mbps;
  last_download_ = rp.last_download;
}

mdp::State AbrEnvironment::BuildState() const {
  const AbrStateLayout& layout = config_.layout;
  mdp::State s(layout.Size(), 0.0);
  s[layout.LastBitrateIndex()] =
      last_bitrate_mbps_ / video_.MaxBitrateMbps();
  s[layout.BufferIndex()] =
      simulator_.BufferSeconds() / AbrStateLayout::kBufferNormSeconds;
  for (std::size_t i = 0; i < layout.history; ++i) {
    s[layout.ThroughputBegin() + i] =
        throughput_history_mbps_[i] / AbrStateLayout::kThroughputNormMbps;
    s[layout.DownloadTimeBegin() + i] =
        download_time_history_s_[i] /
        AbrStateLayout::kDownloadTimeNormSeconds;
  }
  if (simulator_.ChunksRemaining() > 0) {
    const std::size_t next = simulator_.NextChunkIndex();
    for (std::size_t l = 0; l < layout.levels; ++l) {
      s[layout.NextSizesBegin() + l] =
          video_.ChunkBytes(next, l) / AbrStateLayout::kChunkBytesNorm;
    }
  }
  s[layout.RemainingIndex()] =
      static_cast<double>(simulator_.ChunksRemaining()) /
      static_cast<double>(video_.ChunkCount());
  return s;
}

}  // namespace osap::abr
