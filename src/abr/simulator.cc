#include "abr/simulator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace osap::abr {

AbrSimulator::AbrSimulator(VideoSpec video, SimulatorConfig config)
    : video_(std::move(video)), config_(config) {
  OSAP_REQUIRE(config_.rtt_seconds >= 0.0, "SimulatorConfig: rtt must be >= 0");
  OSAP_REQUIRE(config_.buffer_capacity_seconds > video_.ChunkSeconds(),
               "SimulatorConfig: buffer capacity must exceed one chunk");
  OSAP_REQUIRE(config_.drain_quantum_seconds > 0.0,
               "SimulatorConfig: drain quantum must be > 0");
}

void AbrSimulator::StartSession(const traces::Trace& trace) {
  trace_ = &trace;
  next_chunk_ = 0;
  buffer_seconds_ = 0.0;
  trace_time_ = 0.0;
}

std::size_t AbrSimulator::ChunksRemaining() const {
  return video_.ChunkCount() - next_chunk_;
}

double AbrSimulator::TransferTime(double bytes) {
  // Integrate the piecewise-constant trace: within each trace interval the
  // link drains at the interval's throughput; cross interval boundaries
  // until all bytes are delivered.
  double remaining = bytes;
  double elapsed = 0.0;
  while (remaining > 0.0) {
    const double mbps = trace_->ThroughputAt(trace_time_ + elapsed);
    const double bytes_per_second = mbps * 1e6 / 8.0;
    // Time left inside the current trace interval.
    const double interval = trace_->interval_seconds();
    const double into_interval =
        std::fmod(trace_time_ + elapsed, interval);
    const double interval_left = interval - into_interval;
    const double deliverable = bytes_per_second * interval_left;
    if (deliverable >= remaining) {
      elapsed += remaining / bytes_per_second;
      remaining = 0.0;
    } else {
      elapsed += interval_left;
      remaining -= deliverable;
    }
  }
  return elapsed;
}

DownloadResult AbrSimulator::DownloadChunk(std::size_t level) {
  OSAP_REQUIRE(SessionActive(), "DownloadChunk: no active session");
  OSAP_REQUIRE(ChunksRemaining() > 0, "DownloadChunk: video already finished");
  OSAP_REQUIRE(level < video_.LevelCount(), "DownloadChunk: bad level");

  DownloadResult result;
  result.bytes = video_.ChunkBytes(next_chunk_, level);
  const double transfer = TransferTime(result.bytes);
  result.download_seconds = config_.rtt_seconds + transfer;
  trace_time_ += result.download_seconds;

  // Playback drains the buffer during the download; an empty buffer stalls.
  result.rebuffer_seconds =
      std::max(0.0, result.download_seconds - buffer_seconds_);
  buffer_seconds_ =
      std::max(0.0, buffer_seconds_ - result.download_seconds) +
      video_.ChunkSeconds();

  // Full buffer: pause requesting in drain-quantum units (Pensieve's
  // convention) until there is room for further video.
  while (buffer_seconds_ > config_.buffer_capacity_seconds) {
    const double pause = config_.drain_quantum_seconds;
    buffer_seconds_ -= pause;
    trace_time_ += pause;
    result.sleep_seconds += pause;
  }

  result.buffer_seconds = buffer_seconds_;
  result.throughput_mbps =
      result.bytes * 8.0 / 1e6 / std::max(result.download_seconds, 1e-9);
  ++next_chunk_;
  result.video_finished = ChunksRemaining() == 0;
  return result;
}

}  // namespace osap::abr
