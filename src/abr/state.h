// Pensieve state encoding (Mao et al., SIGCOMM '17, Section 5.2).
//
// The agent observes, per decision:
//   [0]                 bitrate of the last downloaded chunk / top bitrate
//   [1]                 playback buffer (seconds) / 10
//   [2 .. 2+H)          measured throughput (Mbps/10) of the last H chunks
//   [2+H .. 2+2H)       download time (seconds/10) of the last H chunks
//   [2+2H .. 2+2H+L)    sizes (MB) of the next chunk at each ladder level
//   [2+2H+L]            fraction of chunks remaining
// with H = 8 history taps and L = 6 ladder levels by default. History
// vectors are oldest-first; slots before the first download are zero.
//
// AbrStateLayout centralizes offsets and normalization constants so the
// Pensieve network builder, the heuristic policies and the U_S feature
// extractor all agree on the encoding.
#pragma once

#include <cstddef>

#include "mdp/types.h"

namespace osap::abr {

struct AbrStateLayout {
  std::size_t history = 8;  // H: throughput / download-time taps
  std::size_t levels = 6;   // L: ladder size

  // Normalization constants (Pensieve's conventions).
  static constexpr double kBufferNormSeconds = 10.0;
  static constexpr double kThroughputNormMbps = 10.0;
  static constexpr double kDownloadTimeNormSeconds = 10.0;
  static constexpr double kChunkBytesNorm = 1e6;  // bytes -> MB

  // Offsets.
  std::size_t LastBitrateIndex() const { return 0; }
  std::size_t BufferIndex() const { return 1; }
  std::size_t ThroughputBegin() const { return 2; }
  std::size_t DownloadTimeBegin() const { return 2 + history; }
  std::size_t NextSizesBegin() const { return 2 + 2 * history; }
  std::size_t RemainingIndex() const { return 2 + 2 * history + levels; }
  std::size_t Size() const { return 2 + 2 * history + levels + 1; }

  // Decoders (denormalize fields from a state vector).
  double BufferSeconds(const mdp::State& s) const {
    return s[BufferIndex()] * kBufferNormSeconds;
  }
  double LastBitrateFraction(const mdp::State& s) const {
    return s[LastBitrateIndex()];
  }
  /// Throughput tap i in [0, history), oldest-first, in Mbps.
  double ThroughputMbps(const mdp::State& s, std::size_t i) const {
    return s[ThroughputBegin() + i] * kThroughputNormMbps;
  }
  /// Most recent measured chunk throughput in Mbps (0 before any download).
  double LatestThroughputMbps(const mdp::State& s) const {
    return ThroughputMbps(s, history - 1);
  }
  /// Next-chunk size at a ladder level, bytes.
  double NextChunkBytes(const mdp::State& s, std::size_t level) const {
    return s[NextSizesBegin() + level] * kChunkBytesNorm;
  }
  double RemainingFraction(const mdp::State& s) const {
    return s[RemainingIndex()];
  }
};

}  // namespace osap::abr
