#include "abr/qoe.h"

#include <cmath>

#include "util/check.h"

namespace osap::abr {

QoeAccumulator::QoeAccumulator(QoeConfig config) : config_(config) {
  OSAP_REQUIRE(config_.rebuffer_penalty >= 0.0,
               "QoeConfig: rebuffer penalty must be >= 0");
  OSAP_REQUIRE(config_.smoothness_penalty >= 0.0,
               "QoeConfig: smoothness penalty must be >= 0");
}

double QoeAccumulator::AddChunk(double bitrate_mbps,
                                double rebuffer_seconds) {
  OSAP_REQUIRE(bitrate_mbps > 0.0, "QoE: bitrate must be > 0");
  OSAP_REQUIRE(rebuffer_seconds >= 0.0, "QoE: rebuffer must be >= 0");
  const double smooth =
      chunks_ == 0 ? 0.0 : std::abs(bitrate_mbps - prev_bitrate_mbps_);
  const double reward = bitrate_mbps -
                        config_.rebuffer_penalty * rebuffer_seconds -
                        config_.smoothness_penalty * smooth;
  bitrate_sum_ += bitrate_mbps;
  rebuffer_sum_ += config_.rebuffer_penalty * rebuffer_seconds;
  smoothness_sum_ += config_.smoothness_penalty * smooth;
  total_ += reward;
  prev_bitrate_mbps_ = bitrate_mbps;
  ++chunks_;
  return reward;
}

void QoeAccumulator::Reset() {
  total_ = bitrate_sum_ = rebuffer_sum_ = smoothness_sum_ = 0.0;
  prev_bitrate_mbps_ = 0.0;
  chunks_ = 0;
}

}  // namespace osap::abr
