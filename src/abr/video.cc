#include "abr/video.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace osap::abr {

VideoSpec::VideoSpec(std::vector<double> bitrates_kbps,
                     std::size_t chunk_count, double chunk_seconds,
                     double vbr_jitter, std::uint64_t seed)
    : bitrates_kbps_(std::move(bitrates_kbps)),
      chunk_count_(chunk_count),
      chunk_seconds_(chunk_seconds) {
  OSAP_REQUIRE(!bitrates_kbps_.empty(), "VideoSpec: empty bitrate ladder");
  OSAP_REQUIRE(std::is_sorted(bitrates_kbps_.begin(), bitrates_kbps_.end()),
               "VideoSpec: ladder must be ascending");
  OSAP_REQUIRE(bitrates_kbps_.front() > 0.0, "VideoSpec: bitrates must be > 0");
  OSAP_REQUIRE(chunk_count > 0, "VideoSpec: chunk count must be > 0");
  OSAP_REQUIRE(chunk_seconds > 0.0, "VideoSpec: chunk duration must be > 0");
  OSAP_REQUIRE(vbr_jitter >= 0.0 && vbr_jitter < 1.0,
               "VideoSpec: vbr_jitter must be in [0, 1)");
  // Deterministic per-(chunk, level) VBR jitter around the nominal size.
  Rng rng(seed);
  chunk_bytes_.resize(chunk_count_ * LevelCount());
  for (std::size_t c = 0; c < chunk_count_; ++c) {
    for (std::size_t l = 0; l < LevelCount(); ++l) {
      const double nominal =
          bitrates_kbps_[l] * 1000.0 / 8.0 * chunk_seconds_;
      const double factor = 1.0 + rng.Uniform(-vbr_jitter, vbr_jitter);
      chunk_bytes_[c * LevelCount() + l] = nominal * factor;
    }
  }
}

double VideoSpec::BitrateKbps(std::size_t level) const {
  OSAP_REQUIRE(level < LevelCount(), "VideoSpec: level out of range");
  return bitrates_kbps_[level];
}

double VideoSpec::MaxBitrateMbps() const {
  return bitrates_kbps_.back() / 1000.0;
}

double VideoSpec::ChunkBytes(std::size_t chunk, std::size_t level) const {
  OSAP_REQUIRE(chunk < chunk_count_, "VideoSpec: chunk out of range");
  OSAP_REQUIRE(level < LevelCount(), "VideoSpec: level out of range");
  return chunk_bytes_[chunk * LevelCount() + level];
}

VideoSpec MakeEnvivioLikeVideo(std::size_t repeats) {
  OSAP_REQUIRE(repeats > 0, "MakeEnvivioLikeVideo: repeats must be > 0");
  // Pensieve's EnvivioDash3 ladder; 48 chunks of ~4 s per repetition.
  return VideoSpec({300.0, 750.0, 1200.0, 1850.0, 2850.0, 4300.0},
                   48 * repeats, 4.0);
}

}  // namespace osap::abr
