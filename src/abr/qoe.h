// The linear QoE metric of the paper (Section 3.1, following [27, 63]):
//
//   QoE = sum_n R_n - mu * sum_n T_n - sum_n |R_{n+1} - R_n|
//
// with R_n the bitrate (Mbps) chunk n was downloaded at, T_n the
// rebuffering time chunk n incurred, and mu the rebuffer penalty
// (conventionally the top ladder bitrate, 4.3 for the EnvivioDash3 ladder).
// The per-chunk reward decomposition (bitrate - rebuffer penalty -
// smoothness penalty) is exactly the reward Pensieve trains on.
#pragma once

#include <cstddef>

namespace osap::abr {

struct QoeConfig {
  /// Rebuffer penalty mu (per stalled second). 4.3 = top ladder Mbps.
  double rebuffer_penalty = 4.3;
  /// Weight of the |R_{n+1} - R_n| smoothness term (1.0 in the paper).
  double smoothness_penalty = 1.0;
};

/// Accumulates per-chunk QoE over a session.
class QoeAccumulator {
 public:
  explicit QoeAccumulator(QoeConfig config = {});

  /// Adds chunk n's contribution and returns it (the per-chunk reward).
  /// For the first chunk there is no smoothness term.
  double AddChunk(double bitrate_mbps, double rebuffer_seconds);

  /// Session QoE so far.
  double Total() const { return total_; }

  /// Decomposed terms (all accumulated): bitrate utility, rebuffer
  /// penalty (positive number subtracted), smoothness penalty.
  double BitrateUtility() const { return bitrate_sum_; }
  double RebufferPenalty() const { return rebuffer_sum_; }
  double SmoothnessPenalty() const { return smoothness_sum_; }
  std::size_t ChunkCount() const { return chunks_; }

  void Reset();

 private:
  QoeConfig config_;
  double total_ = 0.0;
  double bitrate_sum_ = 0.0;
  double rebuffer_sum_ = 0.0;
  double smoothness_sum_ = 0.0;
  double prev_bitrate_mbps_ = 0.0;
  std::size_t chunks_ = 0;
};

}  // namespace osap::abr
