// MDP adapter over the ABR simulator: actions are ladder levels for the
// next chunk, observations are the Pensieve state encoding, rewards are the
// per-chunk linear QoE terms. One episode = one full video over one trace.
//
// For training, the environment can hold a pool of traces and pick one
// uniformly at random per episode (Pensieve's training setup); for
// evaluation it replays a fixed trace deterministically.
#pragma once

#include <span>
#include <vector>

#include "abr/qoe.h"
#include "abr/simulator.h"
#include "abr/state.h"
#include "abr/video.h"
#include "mdp/environment.h"
#include "traces/trace.h"
#include "util/rng.h"

namespace osap::abr {

struct AbrEnvironmentConfig {
  SimulatorConfig simulator;
  QoeConfig qoe;
  AbrStateLayout layout;
};

class AbrEnvironment final : public mdp::Environment {
 public:
  /// The video is copied; the layout's `levels` must match its ladder.
  AbrEnvironment(VideoSpec video, AbrEnvironmentConfig config = {});

  /// Training mode: Reset() picks a trace uniformly from the pool.
  /// The traces must outlive the environment.
  void SetTracePool(std::span<const traces::Trace> pool, std::uint64_t seed);

  /// Evaluation mode: Reset() always replays this trace.
  void SetFixedTrace(const traces::Trace& trace);

  /// Advances the trace-pool RNG as if `episodes` episodes had been Reset
  /// (one pool draw each) without running them. Lets per-member environment
  /// copies in parallel ensemble training reproduce the serial episode
  /// stream bit-exactly: member m trains on a copy fast-forwarded past the
  /// first m members' episodes.
  void SkipPoolEpisodes(std::size_t episodes);

  // mdp::Environment
  mdp::State Reset() override;
  mdp::StepResult Step(mdp::Action action) override;
  std::size_t ActionCount() const override { return video_.LevelCount(); }
  std::size_t StateSize() const override { return config_.layout.Size(); }

  /// A mid-session resume point: the environment's full dynamic state
  /// minus the immutable video/config/trace storage. Restoring one
  /// continues the session bit-identically from that step, at a fraction
  /// of the cost of copying the whole environment (which drags two
  /// VideoSpec copies along). Trace pointers are non-owning; the traces
  /// must outlive every restore. Used by record-and-replay calibration to
  /// checkpoint every step of a rollout.
  struct ResumePoint {
    AbrSimulator::Checkpoint simulator;
    QoeAccumulator qoe;
    const traces::Trace* fixed_trace = nullptr;
    const traces::Trace* current_trace = nullptr;
    std::vector<double> throughput_history_mbps;
    std::vector<double> download_time_history_s;
    double last_bitrate_mbps = 0.0;
    DownloadResult last_download;
  };
  ResumePoint SaveResumePoint() const;
  void RestoreResumePoint(const ResumePoint& rp);

  /// Observation side channels used by logging and the safety layer.
  const DownloadResult& LastDownload() const { return last_download_; }
  const QoeAccumulator& Qoe() const { return qoe_; }
  const VideoSpec& video() const { return video_; }
  const AbrStateLayout& layout() const { return config_.layout; }
  const traces::Trace* current_trace() const { return current_trace_; }

 private:
  VideoSpec video_;
  AbrEnvironmentConfig config_;
  AbrSimulator simulator_;
  QoeAccumulator qoe_;

  std::span<const traces::Trace> pool_;
  Rng pool_rng_;
  const traces::Trace* fixed_trace_ = nullptr;
  const traces::Trace* current_trace_ = nullptr;

  // Rolling observation history (oldest-first, length layout.history).
  std::vector<double> throughput_history_mbps_;
  std::vector<double> download_time_history_s_;
  double last_bitrate_mbps_ = 0.0;
  DownloadResult last_download_;

  mdp::State BuildState() const;
};

}  // namespace osap::abr
