#include "net/backend_uring.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "net/edge.h"
#include "net/server.h"

namespace osap::net {

namespace {

/// Provided-buffer ring: count (power of two) x size handed to the
/// kernel for multishot recv. Frames are small (a STEP request is ~100
/// bytes), so many modest buffers beat few kReadChunk-sized ones: a
/// pipelined burst lands across several CQEs and every byte is memcpy'd
/// out and the buffer recycled before the next Submit.
constexpr std::uint16_t kBufGroup = 0;
constexpr std::uint32_t kRecvBufCount = 256;
constexpr std::uint32_t kRecvBufSize = 8 * 1024;

constexpr unsigned kSqEntries = 512;
constexpr unsigned kCqEntries = 4096;

/// user_data slot value for ops that have no connection (listener,
/// wake, cancel-all) or whose cancel CQE nobody needs to see.
constexpr std::uint32_t kNoConn = 0xffffffffu;

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

/// user_data layout: [63:56] op, [55:32] generation, [31:0] slot.
constexpr std::uint64_t MakeTag(std::uint8_t op, std::uint32_t gen,
                                std::uint32_t slot) {
  return (static_cast<std::uint64_t>(op) << 56) |
         (static_cast<std::uint64_t>(gen & 0xffffffu) << 32) | slot;
}

}  // namespace

bool UringBackendAvailable() { return util::IoUring::KernelSupported(); }

const char* UringUnavailableReason() {
  return util::IoUring::UnsupportedReason();
}

void UringBackend::Init() {
  if (!ring_.Init(kSqEntries, kCqEntries)) {
    ThrowErrno("UringBackend: io_uring_setup");
  }
  if (!ring_.RegisterBufRing(kBufGroup, kRecvBufCount, kRecvBufSize)) {
    ThrowErrno("UringBackend: IORING_REGISTER_PBUF_RING");
  }
  ArmAccept();
  ArmWake();
  ring_.Submit();
  SyncSyscalls();
}

void UringBackend::Pump(bool block) {
  // One enter for the whole round: publish every SQE queued since the
  // last kick and (when idle) sleep until a CQE lands - already-pending
  // CQEs make the wait pointless, so skip it.
  const unsigned wait = (block && ring_.PeekCqe() == nullptr) ? 1 : 0;
  ring_.Submit(wait);
  DrainCqes();
  ProcessRearms();
  SyncSyscalls();
}

void UringBackend::Kick() {
  ring_.Submit();
  SyncSyscalls();
}

void UringBackend::DrainCqes() {
  const io_uring_cqe* cqe;
  while ((cqe = ring_.PeekCqe()) != nullptr) {
    const io_uring_cqe copy = *cqe;
    ring_.AdvanceCqe();
    HandleCqe(copy);
  }
}

void UringBackend::HandleCqe(const io_uring_cqe& cqe) {
  // Every CQE belongs to an op this backend armed; an op instance stays
  // "in flight" until its final CQE (multishots signal more-to-come
  // with F_MORE).
  const bool terminal = (cqe.flags & IORING_CQE_F_MORE) == 0;
  if (terminal && ops_in_flight_ > 0) --ops_in_flight_;
  const auto op = static_cast<Op>(cqe.user_data >> 56);
  const auto gen =
      static_cast<std::uint32_t>((cqe.user_data >> 32) & 0xffffffu);
  const auto slot = static_cast<std::uint32_t>(cqe.user_data);
  switch (op) {
    case Op::kAccept:
      OnAcceptCqe(cqe.res, terminal);
      break;
    case Op::kWake:
      OnWakeCqe(terminal);
      break;
    case Op::kRecv:
      OnRecvCqe(slot, gen, cqe, terminal);
      break;
    case Op::kSend:
      OnSendCqe(slot, gen, cqe.res);
      break;
    case Op::kCancel:
      OnCancelCqe(slot, gen);
      break;
  }
}

void UringBackend::OnAcceptCqe(int res, bool terminal) {
  if (res >= 0) {
    if (draining_) {
      ::close(res);  // nothing new past the drain point
    } else {
      server_.AdmitConnection(edge_, res);
    }
  }
  // The multishot terminated (backlog hiccup, ECANCELED, fd pressure):
  // stand a fresh one up unless we are tearing down.
  if (terminal && !draining_) ArmAccept();
}

void UringBackend::OnWakeCqe(bool terminal) {
  std::uint64_t drained = 0;
  [[maybe_unused]] const ssize_t r =
      ::read(edge_.wake_fd, &drained, sizeof drained);
  edge_.io_syscalls.fetch_add(1, std::memory_order_relaxed);
  if (terminal && !draining_) ArmWake();
}

void UringBackend::OnRecvCqe(std::uint32_t slot, std::uint32_t gen,
                             const io_uring_cqe& cqe, bool terminal) {
  SlotIo& io = slot_io_[slot];
  const bool stale = gen != io.gen;
  // The provided buffer goes back to the kernel immediately - its bytes
  // are copied into the connection's own input slab first (stale or
  // draining CQEs drop them: a dead peer's bytes have no stream to
  // join, and the drain path reads nothing new by contract).
  if ((cqe.flags & IORING_CQE_F_BUFFER) != 0) {
    const auto bid =
        static_cast<std::uint16_t>(cqe.flags >> IORING_CQE_BUFFER_SHIFT);
    if (cqe.res > 0 && !stale && !draining_) {
      Connection& conn = *edge_.connections[slot];
      const std::uint8_t* data = ring_.BufferData(bid);
      conn.in.insert(conn.in.end(), data, data + cqe.res);
    }
    ring_.RecycleBuffer(bid);
  }
  if (stale) return;
  if (terminal) io.recv_armed = false;
  Connection& conn = *edge_.connections[slot];
  if (!conn.open || draining_) return;
  if (cqe.res == 0) {  // EOF
    server_.CloseConnection(edge_, slot);
    return;
  }
  if (cqe.res < 0) {
    switch (-cqe.res) {
      case ENOBUFS:
        // The buffer ring ran dry mid-round; this round's CQEs recycle
        // buffers as they drain, so re-arm once the round is processed.
        rearm_recv_.push_back(slot);
        return;
      case ECANCELED:  // our pause-cancel landed
        io.cancel_pending = false;
        MaybeRearmRecv(slot);
        return;
      case EINTR:
      case EAGAIN:
        MaybeRearmRecv(slot);
        return;
      default:
        server_.CloseConnection(edge_, slot);
        return;
    }
  }
  if (!server_.ParseBuffered(edge_, slot)) {
    server_.CloseConnection(edge_, slot);
    return;
  }
  if (conn.paused && io.recv_armed && !io.cancel_pending) {
    // TCP pushback: a standing multishot recv would keep emptying the
    // socket and defeat the closed-window backpressure - cancel it (by
    // user_data; data CQEs already in flight still append above and
    // wait, unparsed, for the resume).
    SubmitCancel(MakeTag(static_cast<std::uint8_t>(Op::kRecv), io.gen,
                         slot),
                 slot, io.gen);
    io.cancel_pending = true;
  }
  if (terminal) MaybeRearmRecv(slot);
}

void UringBackend::OnSendCqe(std::uint32_t slot, std::uint32_t gen,
                             int res) {
  SlotIo& io = slot_io_[slot];
  if (gen != io.gen) {
    // The connection closed while this send was in flight; the zombie
    // list kept its frames alive for the kernel - recycle them now.
    for (auto it = zombie_sends_.begin(); it != zombie_sends_.end(); ++it) {
      if (it->slot != slot || it->gen != gen) continue;
      for (auto& frame : it->frames) {
        frame.clear();
        edge_.spare_frames.push_back(std::move(frame));
      }
      zombie_sends_.erase(it);
      break;
    }
    return;
  }
  io.send_inflight = false;
  Connection& conn = *edge_.connections[slot];
  if (!conn.open) return;
  if (res < 0) {
    switch (-res) {
      case ECANCELED:  // drain cancel: DirectFlush owns the socket now
        return;
      case EINTR:
      case EAGAIN:
        StartSend(slot);
        return;
      default:  // EPIPE, ECONNRESET, ...: peer is gone
        server_.CloseConnection(edge_, slot);
        return;
    }
  }
  server_.ConsumeOutput(edge_, slot, static_cast<std::size_t>(res));
  if (!drained_ && conn.out_head < conn.out_q.size()) StartSend(slot);
}

void UringBackend::OnCancelCqe(std::uint32_t slot, std::uint32_t gen) {
  if (slot == kNoConn) return;  // close-cancel / cancel-all: fire-and-forget
  SlotIo& io = slot_io_[slot];
  if (gen != io.gen) return;
  // Pause-cancel settled (possibly -ENOENT because the recv terminated
  // on its own first). If the connection resumed while the cancel was
  // in flight, it is waiting on us to re-arm.
  io.cancel_pending = false;
  MaybeRearmRecv(slot);
}

void UringBackend::ArmAccept() {
  io_uring_sqe* sqe = ring_.GetSqe();
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = edge_.listen_fd;
  sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
  sqe->user_data =
      MakeTag(static_cast<std::uint8_t>(Op::kAccept), 0, kNoConn);
  ++ops_in_flight_;
}

void UringBackend::ArmWake() {
  io_uring_sqe* sqe = ring_.GetSqe();
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = edge_.wake_fd;
  sqe->len = IORING_POLL_ADD_MULTI;
  sqe->poll32_events = POLLIN;
  sqe->user_data =
      MakeTag(static_cast<std::uint8_t>(Op::kWake), 0, kNoConn);
  ++ops_in_flight_;
}

void UringBackend::ArmRecv(std::size_t slot) {
  Connection& conn = *edge_.connections[slot];
  SlotIo& io = slot_io_[slot];
  io_uring_sqe* sqe = ring_.GetSqe();
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = conn.fd;
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = kBufGroup;
  sqe->user_data = MakeTag(static_cast<std::uint8_t>(Op::kRecv), io.gen,
                           static_cast<std::uint32_t>(slot));
  io.recv_armed = true;
  ++ops_in_flight_;
}

void UringBackend::MaybeRearmRecv(std::size_t slot) {
  Connection& conn = *edge_.connections[slot];
  SlotIo& io = slot_io_[slot];
  if (conn.open && !conn.paused && !io.recv_armed && !io.cancel_pending &&
      !draining_) {
    ArmRecv(slot);
  }
}

void UringBackend::StartSend(std::size_t slot) {
  Connection& conn = *edge_.connections[slot];
  SlotIo& io = slot_io_[slot];
  io.iov.clear();
  for (std::size_t i = conn.out_head;
       i < conn.out_q.size() &&
       io.iov.size() < static_cast<std::size_t>(kMaxIov);
       ++i) {
    const std::size_t off = i == conn.out_head ? conn.out_head_off : 0;
    iovec entry;
    entry.iov_base =
        const_cast<std::uint8_t*>(conn.out_q[i].data() + off);
    entry.iov_len = conn.out_q[i].size() - off;
    io.iov.push_back(entry);
  }
  std::memset(&io.msg, 0, sizeof io.msg);
  io.msg.msg_iov = io.iov.data();
  io.msg.msg_iovlen = io.iov.size();
  io_uring_sqe* sqe = ring_.GetSqe();
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = conn.fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(&io.msg);
  sqe->len = 1;
  sqe->msg_flags = MSG_NOSIGNAL;  // peer reset -> EPIPE, never SIGPIPE
  sqe->user_data = MakeTag(static_cast<std::uint8_t>(Op::kSend), io.gen,
                           static_cast<std::uint32_t>(slot));
  io.send_inflight = true;
  ++ops_in_flight_;
}

void UringBackend::SubmitCancel(std::uint64_t target,
                                std::uint32_t tag_slot,
                                std::uint32_t tag_gen) {
  io_uring_sqe* sqe = ring_.GetSqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->addr = target;
  sqe->user_data = MakeTag(static_cast<std::uint8_t>(Op::kCancel),
                           tag_gen, tag_slot);
  ++ops_in_flight_;
}

bool UringBackend::OnConnectionOpened(std::size_t slot) {
  if (slot_io_.size() <= slot) slot_io_.resize(slot + 1);
  SlotIo& io = slot_io_[slot];
  io.recv_armed = false;  // gen survived the last close; flags reset
  io.send_inflight = false;
  io.cancel_pending = false;
  ArmRecv(slot);
  return true;
}

void UringBackend::OnConnectionClosing(std::size_t slot) {
  SlotIo& io = slot_io_[slot];
  // Cancel by user_data, not fd: the fd closes right after this call
  // and may be reused by the next accept before the CQEs land.
  if (io.recv_armed || io.cancel_pending) {
    SubmitCancel(MakeTag(static_cast<std::uint8_t>(Op::kRecv), io.gen,
                         static_cast<std::uint32_t>(slot)),
                 kNoConn, 0);
  }
  if (io.send_inflight) {
    SubmitCancel(MakeTag(static_cast<std::uint8_t>(Op::kSend), io.gen,
                         static_cast<std::uint32_t>(slot)),
                 kNoConn, 0);
    // The kernel may still be reading the reply frames' bytes: park
    // them until the stale send CQE releases them (the server recycles
    // an empty out_q and never notices).
    Connection& conn = *edge_.connections[slot];
    zombie_sends_.push_back({static_cast<std::uint32_t>(slot), io.gen,
                             std::move(conn.out_q)});
    conn.out_q.clear();
  }
  io.gen = (io.gen + 1) & 0xffffffu;
  io.recv_armed = false;
  io.send_inflight = false;
  io.cancel_pending = false;
}

void UringBackend::OnReadsResumed(std::size_t slot) {
  // Unlike the edge-triggered arm there is nothing to drain by hand:
  // bytes that arrived while paused sit in the socket buffer and a
  // fresh multishot recv delivers them. If the pause-cancel is still in
  // flight, its CQE re-arms through the same guarded path.
  MaybeRearmRecv(slot);
}

void UringBackend::FlushWrites(std::size_t slot) {
  if (drained_) {
    // Post-quiesce the ring is idle by invariant; the shared blocking
    // drain path owns the sockets.
    server_.DirectFlush(edge_, slot);
    return;
  }
  Connection& conn = *edge_.connections[slot];
  SlotIo& io = slot_io_[slot];
  // One in-flight SENDMSG per connection keeps the byte stream ordered;
  // its CQE chains the next batch if frames remain.
  if (!io.send_inflight && conn.out_head < conn.out_q.size()) {
    StartSend(slot);
  }
}

void UringBackend::PrepareDrain() {
  draining_ = true;
  // One cancel-all covers every standing op (multishot accepts/recvs/
  // polls and in-flight sends); then reap until the op counter says the
  // ring is quiet. Sends that had already moved bytes complete normally
  // and advance the shared continuation - nothing is sent twice.
  io_uring_sqe* sqe = ring_.GetSqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->cancel_flags = IORING_ASYNC_CANCEL_ANY;
  sqe->user_data =
      MakeTag(static_cast<std::uint8_t>(Op::kCancel), 0, kNoConn);
  ++ops_in_flight_;
  while (ops_in_flight_ > 0) {
    ring_.Submit(1);
    DrainCqes();
  }
  rearm_recv_.clear();
  drained_ = true;
  SyncSyscalls();
}

void UringBackend::ProcessRearms() {
  for (const std::uint32_t slot : rearm_recv_) MaybeRearmRecv(slot);
  rearm_recv_.clear();
}

void UringBackend::SyncSyscalls() {
  const std::uint64_t now = ring_.enter_calls();
  edge_.io_syscalls.fetch_add(now - last_enter_calls_,
                              std::memory_order_relaxed);
  last_enter_calls_ = now;
}

}  // namespace osap::net
