// net::Backend: the readiness/IO abstraction behind NetServer's edge
// loops (DESIGN.md §10.5). One Backend instance per edge thread, two
// arms:
//
//   - EpollBackend: the original edge-triggered epoll loop - one
//     epoll_wait per round, recv-until-EAGAIN per readable socket,
//     writev per flushable connection. Unchanged semantics; the
//     bit-identical reference.
//   - UringBackend: io_uring over the vendored util::IoUring wrapper -
//     multishot accept, buffered multishot recv through a provided
//     buffer ring, one SENDMSG SQE per connection flush, so a steady
//     round costs one io_uring_enter instead of one syscall per socket.
//
// The split line: backends own readiness objects and move bytes;
// NetServer owns sockets, framing, admission, batching, sessions and
// the drain. Both arms dispatch into the same server paths
// (AdmitConnection / ParseBuffered / CloseConnection / ConsumeOutput),
// so the wire bytes and decision stream are backend-invariant - the
// loopback bit-identity pins run under both.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

namespace osap::net {

class NetServer;
struct Edge;

enum class BackendKind { kEpoll, kUring };

/// "epoll" / "uring" - flag values, test-parameter names, summary lines.
const char* BackendKindName(BackendKind kind);
/// Parses a --backend flag value; false (out untouched) on junk.
bool ParseBackendKind(std::string_view name, BackendKind& out);

/// True when this kernel can run the uring arm (cached util::IoUring
/// probe: io_uring_setup permitted, provided-buffer rings, multishot
/// ops). When false, NetServer falls back to epoll and tests/benches
/// skip the uring axis visibly.
bool UringBackendAvailable();
/// Why UringBackendAvailable() is false ("" when it is true).
const char* UringUnavailableReason();

class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind Kind() const = 0;

  /// Creates the edge's readiness objects (epoll instance / ring +
  /// registered buffers) and starts watching the already-created
  /// listener and wake eventfd. Throws on failure - the epoll fallback
  /// decision happens at NetServer construction, never here.
  virtual void Init() = 0;

  /// One gather-and-dispatch round: accepts, reads (parsed into pending
  /// steps through the shared server paths), write continuations, wake
  /// drains. Waits for new IO only when `block`; otherwise collects
  /// whatever is already ready and returns.
  virtual void Pump(bool block) = 0;

  /// Pushes queued IO toward the kernel NOW (uring: publish + submit the
  /// round's SQEs so replies leave before the next decision round). The
  /// syscall-per-op arm has nothing queued - default no-op.
  virtual void Kick() {}

  /// A freshly admitted connection: start watching its fd. False means
  /// the backend cannot track it and the server undoes the admission.
  virtual bool OnConnectionOpened(std::size_t slot) = 0;

  /// The connection is being torn down (fd still open): forget or
  /// cancel every in-flight op for the slot so nothing dangles past the
  /// upcoming close. Reply frames still referenced by in-flight sends
  /// must be kept alive by the backend until those ops settle.
  virtual void OnConnectionClosing(std::size_t slot) = 0;

  /// Reads resume after TCP-pushback pause: deliver the slot's data
  /// again, INCLUDING bytes the readiness mechanism will not re-announce
  /// (epoll: explicit edge-triggered drain; uring: re-arm the multishot
  /// recv). The caller has already parsed what was buffered.
  virtual void OnReadsResumed(std::size_t slot) = 0;

  /// Moves the slot's queued replies toward the socket without blocking
  /// and arranges its own continuation (EPOLLOUT / send CQE).
  virtual void FlushWrites(std::size_t slot) = 0;

  /// Stop() has been observed: quiesce - cancel and reap every in-flight
  /// op. Afterwards the shared drain path owns the raw sockets and
  /// flushes them with direct blocking writes.
  virtual void PrepareDrain() = 0;
};

/// Factory used by NetServer::StartEdge. `kind` has already survived the
/// availability check / fallback decision.
std::unique_ptr<Backend> MakeBackend(BackendKind kind, NetServer& server,
                                     Edge& edge);

}  // namespace osap::net
