// Per-edge server state shared between NetServer and its IO backends
// (DESIGN.md §10.5). Everything here used to be private to server.cc;
// the backend split moves the definitions into this internal header so
// backend_epoll.cc / backend_uring.cc can drive the same connection
// slabs, pending queues and bookkeeping without a copy. Ownership rules
// are unchanged: every field is touched by exactly one edge thread
// except the trailing published atomics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "mdp/types.h"
#include "serve/decision_service.h"

namespace osap::net {

class Backend;

/// One recv() worth of input growth on the epoll arm (the uring arm
/// sizes its provided-buffer ring separately in backend_uring.cc).
constexpr std::size_t kReadChunk = 64 * 1024;
/// A vectored send gathers at most this many reply frames per call
/// (writev/sendmsg on the epoll arm, one SENDMSG SQE on the uring arm).
constexpr int kMaxIov = 64;

/// Per-connection state. Objects are recycled through a free list - the
/// input buffer, output frame queue and session list keep their capacity
/// across connections, so steady-state accept/close churn touches no
/// allocator (the frame buffers themselves recycle through the edge's
/// spare-frame pool).
struct Connection {
  int fd = -1;
  bool open = false;
  /// Reads deferred (TCP pushback): this connection's admitted backlog
  /// crossed pause_reads_above; bytes stay in the kernel receive buffer
  /// until the backlog halves.
  bool paused = false;
  bool want_write = false;  // epoll arm: EPOLLOUT armed (partial write)
  bool dirty = false;       // queued replies awaiting a flush this round
  std::uint32_t in_flight = 0;  // admitted STEPs not yet answered

  std::vector<std::uint8_t> in;  // unparsed bytes live at [in_off, size)
  std::size_t in_off = 0;

  std::vector<std::vector<std::uint8_t>> out_q;  // encoded reply frames
  std::size_t out_head = 0;      // first not-fully-written frame
  std::size_t out_head_off = 0;  // bytes of out_q[out_head] already sent

  std::vector<std::uint64_t> sessions;  // session ids this peer owns
};

/// One edge thread's whole world: its SO_REUSEPORT listener, IO backend,
/// wake eventfd, connection slab, pending queue and per-session
/// bookkeeping. Everything here is touched by exactly one thread (the
/// edge's loop); only the trailing atomics are read cross-edge, for
/// STATS aggregation and the shutdown summary.
struct Edge {
  /// One admitted STEP awaiting its decision round.
  struct PendingStep {
    std::uint32_t conn = 0;
    std::uint64_t request_id = 0;
    std::uint64_t session = 0;
    std::size_t dense = 0;  // edge-local bookkeeping index of `session`
    mdp::State state;       // decoded off the wire; storage recycled
  };

  std::size_t index = 0;        // == submitter group in the service
  std::size_t group_begin = 0;  // first service shard this edge owns
  std::size_t group_width = 0;  // shards [begin, begin + width)

  int listen_fd = -1;
  int wake_fd = -1;  // eventfd: Stop() -> loop wakeup
  /// The edge's readiness/IO driver (epoll or io_uring); owns the
  /// readiness objects, never the sockets or the protocol state.
  std::unique_ptr<Backend> backend;
  std::exception_ptr failure;

  std::vector<std::unique_ptr<Connection>> connections;
  std::vector<std::uint32_t> free_conn_slots;
  /// Slots closed during the current IO round; they join free_conn_slots
  /// only once the round's gathered events are fully processed, so a
  /// stale event for a dead fd can never alias a freshly accepted one.
  std::vector<std::uint32_t> pending_free_slots_swap;

  std::vector<PendingStep> pending;
  std::vector<std::size_t> shard_pending;  // admitted per owned lane
  std::vector<mdp::State> state_pool;      // recycled PendingStep storage
  /// Recycled reply-frame buffers (the slab behind the output queues).
  std::vector<std::vector<std::uint8_t>> spare_frames;
  std::vector<std::uint32_t> dirty;     // connections with queued replies
  std::vector<std::uint32_t> unpaused;  // resumed this batch: drain them

  // Per-session edge bookkeeping, indexed by the DENSE edge-local index
  // (local_slot * group_width + lane; the session id itself for a
  // single-edge server). owner_of[d] is the connection slot (or
  // kNoOwner), pending_of[d] counts that session's entries in pending,
  // batch_stamp[d] marks "already in this round" (a session decides at
  // most once per DecideBatch; duplicates defer to the next round).
  std::vector<std::uint32_t> owner_of;
  std::vector<std::uint32_t> pending_of;
  std::vector<std::uint64_t> batch_stamp;
  std::uint64_t batch_round = 0;
  std::size_t open_cursor = 0;  // round-robin lane for multi-edge opens

  // Round scratch (persists across batches; steady state allocates
  // nothing).
  std::vector<serve::DecisionService::Request> round_requests;
  std::vector<mdp::Action> round_actions;
  std::vector<std::size_t> round_pending_idx;

  std::size_t opens_since_measure = 0;

  // Published counters: written by this edge (relaxed), summed by any
  // edge answering STATS and by NetServer::Stats().
  std::atomic<std::uint64_t> decided{0};
  std::atomic<std::uint64_t> busy{0};
  std::atomic<std::uint64_t> rejected_opens{0};
  std::atomic<std::uint64_t> epochs{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> session_bytes{0};  // cached group bytes
  /// Every IO syscall the edge loop issues (epoll_wait/epoll_ctl/accept4/
  /// recv/sendmsg/wake reads/poll/io_uring_enter) - the numerator of the
  /// shutdown summary's syscalls-per-decision.
  std::atomic<std::uint64_t> io_syscalls{0};
};

}  // namespace osap::net
