#include "net/backend_epoll.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "net/edge.h"
#include "net/server.h"

namespace osap::net {

namespace {

constexpr std::uint64_t kListenTag = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t kWakeTag = kListenTag - 1;

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

EpollBackend::~EpollBackend() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EpollBackend::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) ThrowErrno("EpollBackend: epoll_create1");
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: accept until EAGAIN anyway
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, edge_.listen_fd, &ev) < 0) {
    ThrowErrno("EpollBackend: epoll_ctl(listen)");
  }
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, edge_.wake_fd, &ev) < 0) {
    ThrowErrno("EpollBackend: epoll_ctl(wake)");
  }
}

void EpollBackend::Pump(bool block) {
  int n;
  for (;;) {
    n = ::epoll_wait(epoll_fd_, events_.data(),
                     static_cast<int>(events_.size()), block ? -1 : 0);
    edge_.io_syscalls.fetch_add(1, std::memory_order_relaxed);
    if (n >= 0) break;
    if (errno == EINTR) continue;
    ThrowErrno("EpollBackend: epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    const std::uint64_t tag = events_[i].data.u64;
    if (tag == kListenTag) {
      AcceptReady();
      continue;
    }
    if (tag == kWakeTag) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(edge_.wake_fd, &drained, sizeof drained);
      edge_.io_syscalls.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const auto slot = static_cast<std::size_t>(tag);
    Connection& conn = *edge_.connections[slot];
    // A peer closed earlier in this same event array: its slot is not
    // recycled until the end of the round, so stale events are
    // recognizable and ignored here.
    if (!conn.open) continue;
    if ((events_[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
      server_.CloseConnection(edge_, slot);
      continue;
    }
    if ((events_[i].events & EPOLLOUT) != 0) FlushWrites(slot);
    if (!conn.open) continue;
    if ((events_[i].events & EPOLLIN) != 0) {
      if (!DrainSocket(slot)) server_.CloseConnection(edge_, slot);
    }
  }
}

void EpollBackend::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(edge_.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    edge_.io_syscalls.fetch_add(1, std::memory_order_relaxed);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or transient accept failure: try next event
    }
    server_.AdmitConnection(edge_, fd);
  }
}

bool EpollBackend::DrainSocket(std::size_t slot) {
  Connection& conn = *edge_.connections[slot];
  // Edge-triggered: drain until EAGAIN, or stop early on pause (the
  // unread bytes close the TCP window - that IS the backpressure).
  while (!conn.paused) {
    const std::size_t old = conn.in.size();
    conn.in.resize(old + kReadChunk);
    const ssize_t r = ::recv(conn.fd, conn.in.data() + old, kReadChunk, 0);
    edge_.io_syscalls.fetch_add(1, std::memory_order_relaxed);
    if (r > 0) {
      conn.in.resize(old + static_cast<std::size_t>(r));
      if (!server_.ParseBuffered(edge_, slot)) return false;
      continue;
    }
    conn.in.resize(old);
    if (r == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool EpollBackend::OnConnectionOpened(std::size_t slot) {
  Connection& conn = *edge_.connections[slot];
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = slot;
  edge_.io_syscalls.fetch_add(1, std::memory_order_relaxed);
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev) == 0;
}

void EpollBackend::OnConnectionClosing(std::size_t slot) {
  // Nothing is in flight on this arm; just stop watching the fd.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, edge_.connections[slot]->fd,
              nullptr);
  edge_.io_syscalls.fetch_add(1, std::memory_order_relaxed);
}

void EpollBackend::OnReadsResumed(std::size_t slot) {
  // The pause may have swallowed an edge: the kernel owes no further
  // EPOLLIN for bytes that arrived while paused, so drain explicitly.
  if (!DrainSocket(slot)) server_.CloseConnection(edge_, slot);
}

void EpollBackend::FlushWrites(std::size_t slot) {
  Connection& conn = *edge_.connections[slot];
  server_.DirectFlush(edge_, slot);
  if (!conn.open) return;
  const bool want_write = conn.out_head < conn.out_q.size();
  if (want_write != conn.want_write) {
    conn.want_write = want_write;
    UpdateInterest(slot);
  }
}

void EpollBackend::UpdateInterest(std::size_t slot) {
  Connection& conn = *edge_.connections[slot];
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | (conn.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = slot;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  edge_.io_syscalls.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace osap::net
