#include "net/protocol.h"

#include "util/check.h"

namespace osap::net {

void AppendRequestFrame(std::vector<std::uint8_t>& out,
                        const RequestHeader& header,
                        std::span<const double> state) {
  OSAP_REQUIRE(header.type == MsgType::kStep || state.empty(),
               "AppendRequestFrame: only STEP carries state");
  const std::size_t body = kRequestHeaderBytes +
                           (header.type == MsgType::kStep
                                ? 4 + 8 * state.size()
                                : 0);
  OSAP_REQUIRE(body <= kMaxFrameBody, "AppendRequestFrame: frame too large");
  out.reserve(out.size() + kLengthPrefixBytes + body);
  PutU32(out, static_cast<std::uint32_t>(body));
  out.push_back(header.version);
  out.push_back(static_cast<std::uint8_t>(header.type));
  PutU16(out, 0);  // reserved
  PutU64(out, header.request_id);
  PutU64(out, header.session_id);
  if (header.type == MsgType::kStep) {
    PutU32(out, static_cast<std::uint32_t>(state.size()));
    for (double v : state) PutF64(out, v);
  }
}

void AppendReplyFrame(std::vector<std::uint8_t>& out, const Reply& reply,
                      const ServerStats* stats) {
  const bool with_stats = stats != nullptr &&
                          reply.type == MsgType::kStats &&
                          reply.status == Status::kOk;
  const std::size_t body =
      kReplyBytes + (with_stats ? kServerStatsBytes : 0);
  out.reserve(out.size() + kLengthPrefixBytes + body);
  PutU32(out, static_cast<std::uint32_t>(body));
  out.push_back(reply.version);
  out.push_back(static_cast<std::uint8_t>(reply.type));
  out.push_back(static_cast<std::uint8_t>(reply.status));
  out.push_back(reply.flags);
  PutU32(out, static_cast<std::uint32_t>(reply.action));
  PutU64(out, reply.request_id);
  PutU64(out, reply.session_id);
  PutU64(out, reply.epoch);
  if (with_stats) {
    PutU64(out, stats->open_sessions);
    PutU64(out, stats->session_bytes);
    PutU64(out, stats->in_flight);
    PutU64(out, stats->decided);
    PutU64(out, stats->busy);
    PutU64(out, stats->rejected_opens);
    PutU64(out, stats->epochs);
    PutU64(out, stats->connections);
    PutU64(out, stats->errors);
    PutU64(out, stats->calibration_active);
    PutU64(out, stats->calibration_alpha_bits);
    PutU64(out, stats->calibration_observed);
    PutU64(out, stats->calibration_exceeded);
  }
}

void DecodedRequest::CopyState(std::span<double> out) const {
  OSAP_REQUIRE(out.size() == state_dim,
               "DecodedRequest::CopyState: size mismatch");
  for (std::size_t i = 0; i < state_dim; ++i) {
    out[i] = GetF64(state + 8 * i);
  }
}

DecodeResult DecodeRequest(std::span<const std::uint8_t> body,
                           DecodedRequest& out) {
  if (body.size() < kRequestHeaderBytes) return DecodeResult::kMalformed;
  const std::uint8_t* p = body.data();
  out.header.version = p[0];
  if (out.header.version != kProtocolVersion) return DecodeResult::kMalformed;
  const std::uint8_t type = p[1];
  if (type < static_cast<std::uint8_t>(MsgType::kOpenSession) ||
      type > static_cast<std::uint8_t>(MsgType::kStats)) {
    return DecodeResult::kMalformed;
  }
  out.header.type = static_cast<MsgType>(type);
  out.header.request_id = GetU64(p + 4);
  out.header.session_id = GetU64(p + 12);
  out.state_dim = 0;
  out.state = nullptr;
  if (out.header.type == MsgType::kStep) {
    if (body.size() < kRequestHeaderBytes + 4) return DecodeResult::kMalformed;
    out.state_dim = GetU32(p + kRequestHeaderBytes);
    if (body.size() != kRequestHeaderBytes + 4 + 8ul * out.state_dim) {
      return DecodeResult::kMalformed;
    }
    out.state = p + kRequestHeaderBytes + 4;
  } else if (body.size() != kRequestHeaderBytes) {
    return DecodeResult::kMalformed;
  }
  return DecodeResult::kOk;
}

DecodeResult DecodeReply(std::span<const std::uint8_t> body, Reply& out,
                         ServerStats* stats) {
  if (stats != nullptr) *stats = ServerStats{};
  if (body.size() < kReplyBytes) return DecodeResult::kMalformed;
  const std::uint8_t* p = body.data();
  out.version = p[0];
  if (out.version != kProtocolVersion) return DecodeResult::kMalformed;
  out.type = static_cast<MsgType>(p[1]);
  out.status = static_cast<Status>(p[2]);
  out.flags = p[3];
  out.action = static_cast<std::int32_t>(GetU32(p + 4));
  out.request_id = GetU64(p + 8);
  out.session_id = GetU64(p + 16);
  out.epoch = GetU64(p + 24);
  if (body.size() == kReplyBytes) return DecodeResult::kOk;
  if (body.size() != kReplyBytes + kServerStatsBytes) {
    return DecodeResult::kMalformed;
  }
  if (stats != nullptr) {
    const std::uint8_t* s = p + kReplyBytes;
    stats->open_sessions = GetU64(s);
    stats->session_bytes = GetU64(s + 8);
    stats->in_flight = GetU64(s + 16);
    stats->decided = GetU64(s + 24);
    stats->busy = GetU64(s + 32);
    stats->rejected_opens = GetU64(s + 40);
    stats->epochs = GetU64(s + 48);
    stats->connections = GetU64(s + 56);
    stats->errors = GetU64(s + 64);
    stats->calibration_active = GetU64(s + 72);
    stats->calibration_alpha_bits = GetU64(s + 80);
    stats->calibration_observed = GetU64(s + 88);
    stats->calibration_exceeded = GetU64(s + 96);
  }
  return DecodeResult::kOk;
}

}  // namespace osap::net
