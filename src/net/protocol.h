// Wire protocol of the OSAP network edge (DESIGN.md §10).
//
// Length-prefixed little-endian binary frames over TCP. A frame is a
// 32-bit body length followed by the body; the first two body bytes are a
// protocol version and a message type, so the framing layer can reject
// unknown versions before touching type-specific fields. Four request
// types (OPEN_SESSION / STEP / CLOSE_SESSION / STATS) and one reply shape
// (status + defaulted flag + action + epoch, with an extended stats
// payload on STATS replies) cover the whole serving conversation:
//
//   request  := u32 body_len | u8 version | u8 type | u16 reserved
//               | u64 request_id | u64 session_id
//               | [STEP only] u32 state_dim | f64 state[state_dim]
//   reply    := u32 body_len | u8 version | u8 type | u8 status | u8 flags
//               | i32 action | u64 request_id | u64 session_id | u64 epoch
//               | [STATS + kOk only] ServerStats (13 x u64)
//
// request_id is chosen by the client and echoed verbatim, so a pipelined
// client can match replies to in-flight requests without assuming FIFO
// completion. session_id is server-assigned by OPEN_SESSION (the reply's
// session_id field carries the new id) and names the session in every
// later STEP / CLOSE_SESSION.
//
// Encoding is explicitly little-endian byte by byte - the helpers below
// are correct on any host endianness and cost nothing on x86 (memcpy of
// the native representation compiles to the same stores). Doubles travel
// as their IEEE-754 bit pattern, so a decision computed from wire-decoded
// state bits is bit-identical to one computed in-process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace osap::net {

/// Protocol version carried in every frame. Bump on any layout change.
/// v2: ServerStats grew the `errors` counter (kError replies sent).
/// v3: ServerStats grew the online-calibration block (live threshold,
///     observation / exceedance counters; DESIGN.md §11).
inline constexpr std::uint8_t kProtocolVersion = 3;

/// Frames larger than this are a protocol violation (a STEP carries one
/// state vector, not a payload): the server closes the connection rather
/// than buffering unbounded garbage.
inline constexpr std::size_t kMaxFrameBody = 1 << 20;

enum class MsgType : std::uint8_t {
  kOpenSession = 1,
  kStep = 2,
  kCloseSession = 3,
  kStats = 4,
};

enum class Status : std::uint8_t {
  kOk = 0,
  /// Admission control: the request was read and understood but the
  /// server is at its in-flight cap or the session's shard lane is past
  /// its high-water mark. The request was NOT queued - retry later.
  kBusy = 1,
  /// OPEN_SESSION only: the session table is at max_sessions (or past the
  /// session-memory budget). No session was created.
  kFull = 2,
  /// Malformed or inapplicable request (unknown session, wrong state
  /// width, unknown type). The connection stays up; the client should
  /// treat its own state as suspect.
  kError = 3,
};

/// Reply flag bits.
inline constexpr std::uint8_t kFlagDefaulted = 0x01;

struct RequestHeader {
  std::uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kStep;
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
};

struct Reply {
  std::uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kStep;
  Status status = Status::kOk;
  std::uint8_t flags = 0;
  std::int32_t action = 0;
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  /// The service's decision-round counter when the reply was completed
  /// (the epoch-ticket round that answered a STEP; the current round for
  /// the other types).
  std::uint64_t epoch = 0;

  bool Defaulted() const { return (flags & kFlagDefaulted) != 0; }
};

/// Extended payload of a successful STATS reply.
struct ServerStats {
  std::uint64_t open_sessions = 0;
  std::uint64_t session_bytes = 0;  // ServiceMemoryStats::SessionBytes()
  std::uint64_t in_flight = 0;      // admitted STEPs awaiting a decision
  std::uint64_t decided = 0;        // STEP replies completed with kOk
  std::uint64_t busy = 0;           // kBusy replies sent (admission hits)
  std::uint64_t rejected_opens = 0; // kFull replies sent
  std::uint64_t epochs = 0;         // DecideBatch rounds run
  std::uint64_t connections = 0;    // currently accepted connections
  std::uint64_t errors = 0;         // kError replies sent
  // Online-calibration block (v3, DESIGN.md §11). When calibration is
  // off, calibration_active is 0, alpha_bits still carries the frozen
  // trigger threshold, and the counters stay 0.
  std::uint64_t calibration_active = 0;      // 0/1: online arm enabled
  std::uint64_t calibration_alpha_bits = 0;  // live threshold, f64 bits
  std::uint64_t calibration_observed = 0;    // trigger statistics seen
  std::uint64_t calibration_exceeded = 0;    // statistics above threshold

  /// The live threshold as a double (IEEE-754 bits on the wire).
  double CalibrationAlpha() const {
    double v;
    std::memcpy(&v, &calibration_alpha_bits, sizeof v);
    return v;
  }
  void SetCalibrationAlpha(double v) {
    std::memcpy(&calibration_alpha_bits, &v, sizeof calibration_alpha_bits);
  }
  /// Fraction of observed trigger statistics above the then-live
  /// threshold — the served miscoverage estimate.
  double EmpiricalMiscoverage() const {
    return calibration_observed == 0
               ? 0.0
               : static_cast<double>(calibration_exceeded) /
                     static_cast<double>(calibration_observed);
  }
};

// --- byte-level helpers -------------------------------------------------

inline void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void PutF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(out, bits);
}

inline std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

inline std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline double GetF64(const std::uint8_t* p) {
  const std::uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// --- frame sizes --------------------------------------------------------

/// Request body bytes before any STEP state payload.
inline constexpr std::size_t kRequestHeaderBytes = 1 + 1 + 2 + 8 + 8;
/// Fixed reply body size (STATS replies append ServerStats after this).
inline constexpr std::size_t kReplyBytes = 1 + 1 + 1 + 1 + 4 + 8 + 8 + 8;
inline constexpr std::size_t kServerStatsBytes = 13 * 8;
/// u32 length prefix.
inline constexpr std::size_t kLengthPrefixBytes = 4;

/// Wire bytes of a STEP request carrying `dim` state doubles.
inline constexpr std::size_t StepFrameBytes(std::size_t dim) {
  return kLengthPrefixBytes + kRequestHeaderBytes + 4 + 8 * dim;
}

// --- encoding -----------------------------------------------------------

/// Appends one request frame (length prefix included). `state` must be
/// empty unless header.type == kStep.
void AppendRequestFrame(std::vector<std::uint8_t>& out,
                        const RequestHeader& header,
                        std::span<const double> state = {});

/// Appends one reply frame. `stats` is encoded only when reply.type ==
/// kStats and reply.status == kOk (pass nullptr otherwise).
void AppendReplyFrame(std::vector<std::uint8_t>& out, const Reply& reply,
                      const ServerStats* stats = nullptr);

// --- decoding -----------------------------------------------------------

/// A decoded request body. For STEP, `state` points INTO the frame bytes
/// handed to DecodeRequest (unaligned little-endian f64s - read via
/// CopyState, do not reinterpret) and is valid only while they are.
struct DecodedRequest {
  RequestHeader header;
  std::uint32_t state_dim = 0;
  const std::uint8_t* state = nullptr;

  /// Decodes the STEP state payload into `out` (size must be state_dim).
  void CopyState(std::span<double> out) const;
};

enum class DecodeResult {
  kOk,
  /// Version / type / size mismatch: the framing is broken, close the
  /// connection (there is no way to resynchronize a byte stream).
  kMalformed,
};

/// Decodes one request body (the bytes AFTER the length prefix).
DecodeResult DecodeRequest(std::span<const std::uint8_t> body,
                           DecodedRequest& out);

/// Decodes one reply body. When the reply carries a stats payload and
/// `stats` is non-null it is filled; a missing payload leaves it zeroed.
DecodeResult DecodeReply(std::span<const std::uint8_t> body, Reply& out,
                         ServerStats* stats = nullptr);

}  // namespace osap::net
