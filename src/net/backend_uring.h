// The batched-syscall arm: io_uring over the vendored util::IoUring
// wrapper (DESIGN.md §10.5). Where the epoll arm pays one syscall per
// socket per operation, this arm keeps standing multishot ops in the
// kernel and pays ONE io_uring_enter per service round:
//
//   - multishot ACCEPT on the listener (one SQE ever, a CQE per peer),
//   - multishot RECV per connection through a provided-buffer ring
//     (buffers are recycled back to the kernel as soon as each CQE's
//     bytes are appended to the connection's own slab buffer - the
//     parse/admission path upstairs never sees a difference),
//   - one SENDMSG SQE per connection flush, gathering up to kMaxIov
//     reply frames - the send-CQE handler advances the shared
//     partial-write continuation and resubmits while frames remain,
//   - multishot POLL on the wake eventfd.
//
// Slot recycling is guarded by a per-slot generation stamped into every
// user_data: ops canceled at close are canceled BY user_data (cancel by
// fd would race fd reuse), and any CQE carrying a stale generation is
// dropped - except in-flight sends, whose reply frames a zombie list
// keeps alive until the kernel lets go of the iovecs.
//
// Stop(): PrepareDrain cancels everything in flight
// (IORING_ASYNC_CANCEL_ANY), reaps until the op counter hits zero, and
// hands the raw sockets to the shared blocking drain path.
#pragma once

#include <sys/socket.h>
#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/backend.h"
#include "util/io_uring.h"

namespace osap::net {

class UringBackend final : public Backend {
 public:
  UringBackend(NetServer& server, Edge& edge)
      : server_(server), edge_(edge) {}

  BackendKind Kind() const override { return BackendKind::kUring; }
  void Init() override;
  void Pump(bool block) override;
  void Kick() override;
  bool OnConnectionOpened(std::size_t slot) override;
  void OnConnectionClosing(std::size_t slot) override;
  void OnReadsResumed(std::size_t slot) override;
  void FlushWrites(std::size_t slot) override;
  void PrepareDrain() override;

 private:
  enum class Op : std::uint8_t {
    kAccept = 1,
    kRecv = 2,
    kSend = 3,
    kWake = 4,
    kCancel = 5,
  };

  /// Per-slot IO state, parallel to Edge::connections. `gen` is bumped
  /// on every close so CQEs of a previous tenant of the slot are
  /// recognizably stale.
  struct SlotIo {
    std::uint32_t gen = 0;      // 24 bits ride in user_data[55:32]
    bool recv_armed = false;    // a multishot recv stands in the kernel
    bool send_inflight = false;  // exactly one SENDMSG may be in flight
    bool cancel_pending = false;  // pause-cancel awaiting completion
    std::vector<iovec> iov;     // SENDMSG gather list (stable storage)
    msghdr msg{};
  };

  /// Reply frames of a connection that closed while its SENDMSG was in
  /// flight: the kernel still reads the iovec targets, so the frames
  /// stay here until the stale send CQE arrives, then recycle.
  struct ZombieSend {
    std::uint32_t slot;
    std::uint32_t gen;
    std::vector<std::vector<std::uint8_t>> frames;
  };

  void HandleCqe(const io_uring_cqe& cqe);
  void OnAcceptCqe(int res, bool terminal);
  void OnWakeCqe(bool terminal);
  void OnRecvCqe(std::uint32_t slot, std::uint32_t gen,
                 const io_uring_cqe& cqe, bool terminal);
  void OnSendCqe(std::uint32_t slot, std::uint32_t gen, int res);
  void OnCancelCqe(std::uint32_t slot, std::uint32_t gen);

  void ArmAccept();
  void ArmWake();
  void ArmRecv(std::size_t slot);
  /// Arms a recv only when the slot actually wants one (open, unpaused,
  /// nothing armed or being canceled) - every re-arm path funnels here
  /// so a slot can never carry two standing recvs.
  void MaybeRearmRecv(std::size_t slot);
  /// Queues one SENDMSG SQE gathering the slot's unsent frames.
  void StartSend(std::size_t slot);
  /// Queues an ASYNC_CANCEL for `target` user_data; the cancel's own
  /// CQE is tagged (tag_slot, tag_gen) - kNoConn when nobody cares.
  void SubmitCancel(std::uint64_t target, std::uint32_t tag_slot,
                    std::uint32_t tag_gen);
  void DrainCqes();
  void ProcessRearms();
  /// Folds the ring's io_uring_enter count into the edge's syscall
  /// counter (the wrapper may flush inside GetSqe, so we diff).
  void SyncSyscalls();

  NetServer& server_;
  Edge& edge_;
  util::IoUring ring_;
  std::vector<SlotIo> slot_io_;
  std::vector<ZombieSend> zombie_sends_;
  /// Slots whose multishot recv died of ENOBUFS this round; re-armed at
  /// the end of Pump, after the round's CQEs recycled their buffers.
  std::vector<std::uint32_t> rearm_recv_;
  /// Armed op instances (multishot counts 1 until its final CQE). The
  /// drain loop runs until this reaches zero.
  std::size_t ops_in_flight_ = 0;
  std::uint64_t last_enter_calls_ = 0;
  bool draining_ = false;  // PrepareDrain started: stop parsing/arming
  bool drained_ = false;   // quiesced: FlushWrites -> blocking DirectFlush
};

}  // namespace osap::net
