// NetServer: the epoll-based binary-protocol front-end of the serving
// path (DESIGN.md §10).
//
// A thin, dumb edge in front of serve::DecisionService, shaped like a
// control/data-plane split: the edge owns sockets, framing and admission;
// the decision hot path (DecideBatch's shard lanes and epoch tickets)
// never touches a file descriptor. One event-loop thread runs the whole
// edge:
//
//   epoll_wait -> accept / drain readable sockets (edge-triggered,
//   non-blocking) -> parse frames, admit or reject each request ->
//   when admitted STEPs are pending, ONE DecideBatch over all of them
//   (micro-batching across connections and sessions) -> encode replies
//   into per-connection output queues -> flush with vectored writes,
//   partial writes continue under EPOLLOUT.
//
// DecideBatch itself fans out over the service's persistent shard
// workers, so the edge thread is shard 0's inline lane and the socket
// work overlaps the other shards' compute only between rounds - by
// construction a slow client socket can delay its OWN replies (they sit
// in the connection's output queue) but never a decision round.
//
// Admission control and backpressure (all per NetServerConfig):
//   - max_in_flight caps admitted-but-unanswered STEPs process-wide;
//     past it, new STEPs get an immediate BUSY reply instead of queueing.
//   - lane_high_water caps pending STEPs per shard lane, so one hot
//     shard cannot grow the whole queue; STEPs routed to a lane at its
//     mark get BUSY. The service's SPSC rings are bounded to the same
//     mark (DecisionServiceConfig::lane_capacity_bound), converting any
//     admission bug into a loud ring-overflow failure instead of silent
//     unbounded growth.
//   - pause_reads_above stops READING a connection whose own admitted
//     backlog passes the threshold: its bytes accumulate in the kernel
//     receive buffer, the TCP window closes, and the sender blocks - the
//     transport-level pushback behind the BUSY vocabulary. Reads resume
//     (and missed edge-triggered data is drained explicitly) once the
//     connection's backlog halves.
//   - max_sessions / max_session_bytes gate OPEN_SESSION on the session
//     table size and the service's exact ServiceMemoryStats accounting;
//     past either, opens get FULL.
// Every rejected request is answered (BUSY / FULL / ERROR) - nothing is
// silently dropped while a connection lives.
//
// Threading: Start() binds and listens; Run() blocks running the loop
// until Stop() (thread-safe, via eventfd) is called; tests and
// `osap_serve --listen` run Run() on whatever thread they like. All
// other methods are loop-thread-only unless noted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mdp/types.h"
#include "net/protocol.h"
#include "serve/decision_service.h"
#include "serve/serving_model.h"

namespace osap::net {

struct NetServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (see Port()).
  std::uint16_t port = 0;
  int listen_backlog = 128;
  std::size_t max_connections = 4096;
  /// Process-wide cap on admitted STEPs awaiting a decision; 0 = no cap.
  std::size_t max_in_flight = 64 * 1024;
  /// Pending-STEP cap per shard lane (BUSY past it); 0 disables the
  /// per-lane mark (only max_in_flight applies).
  std::size_t lane_high_water = 16 * 1024;
  /// Stop reading a connection whose admitted backlog exceeds this
  /// (TCP pushback); reads resume once it drains to half. 0 disables.
  std::size_t pause_reads_above = 1024;
  /// OPEN_SESSION gate: max concurrently open sessions (0 = 1M).
  std::size_t max_sessions = 1 << 20;
  /// OPEN_SESSION gate on ServiceMemoryStats::SessionBytes(), refreshed
  /// every 64 opens (the walk is not free). 0 = unlimited.
  std::size_t max_session_bytes = 0;
  /// Largest DecideBatch per round; 0 = bounded by max_in_flight only.
  std::size_t max_batch = 0;
  /// Sharding/backpressure config for the service the server owns.
  serve::DecisionServiceConfig service;
};

class NetServer {
 public:
  NetServer(std::shared_ptr<const serve::ServingModel> model,
            NetServerConfig config = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds + listens (throws std::runtime_error on socket failure).
  /// Call once before Run().
  void Start();

  /// The bound TCP port (valid after Start(); resolves port 0).
  std::uint16_t Port() const { return port_; }

  /// Runs the event loop until Stop(). Must follow Start().
  void Run();

  /// Signals Run() to return after the current iteration. Thread-safe;
  /// callable from signal-ish contexts (one eventfd write).
  void Stop();

  /// Counters as of the last loop iteration. Loop-thread-only while
  /// Run() is live (remote callers use the STATS request); safe from
  /// anywhere once Run() has returned.
  ServerStats Stats() const;

  const serve::DecisionService& service() const { return service_; }

 private:
  struct Connection;

  void Accept();
  /// Drains `fd` until EAGAIN, parsing complete frames as they land.
  /// Returns false when the connection died (EOF / error / protocol
  /// violation) and must be torn down.
  bool ReadAndParse(std::size_t slot);
  /// Parses every complete frame in the connection's input buffer
  /// (stops early when the connection pauses). False on protocol error.
  bool ParseBuffered(std::size_t slot);
  void HandleRequest(std::size_t slot, const DecodedRequest& request);
  void RunBatch();
  /// Answers and removes every pending STEP of `session` with `status`
  /// (a CLOSE overtaking pipelined STEPs, never the normal path).
  void FailPendingOf(std::uint64_t session, Status status);
  void CloseConnection(std::size_t slot);
  void QueueReply(std::size_t slot, const Reply& reply,
                  const ServerStats* stats = nullptr);
  /// Flushes every connection QueueReply marked dirty this iteration.
  void FlushDirty();
  /// writev as much of the connection's output queue as the socket
  /// accepts; arms/disarms EPOLLOUT around partial writes.
  void FlushWrites(std::size_t slot);
  void UpdateEpollInterest(std::size_t slot);
  ServerStats BuildStats();

  std::shared_ptr<const serve::ServingModel> model_;
  NetServerConfig config_;
  serve::DecisionService service_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop() -> loop wakeup
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  /// One admitted STEP awaiting its decision round.
  struct PendingStep {
    std::uint32_t conn = 0;
    std::uint64_t request_id = 0;
    std::uint64_t session = 0;
    mdp::State state;  // decoded off the wire; storage recycled
  };

  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<std::uint32_t> free_conn_slots_;
  /// Slots closed during the current epoll iteration; they join
  /// free_conn_slots_ only once the event array is fully processed, so a
  /// stale event for a dead fd can never alias a freshly accepted one.
  std::vector<std::uint32_t> pending_free_slots_swap_;
  std::size_t open_connections_ = 0;

  std::vector<PendingStep> pending_;
  std::vector<std::size_t> shard_pending_;  // admitted per shard lane
  std::vector<mdp::State> state_pool_;      // recycled PendingStep storage
  /// Recycled reply-frame buffers (the slab behind the output queues).
  std::vector<std::vector<std::uint8_t>> spare_frames_;
  std::vector<std::uint32_t> dirty_;     // connections with queued replies
  std::vector<std::uint32_t> unpaused_;  // resumed this batch: drain them

  // Per-session edge bookkeeping, indexed by service session id (dense
  // slot ids). owner_of_[id] is the connection slot (or kNoOwner),
  // pending_of_[id] counts that session's entries in pending_,
  // batch_stamp_[id] marks "already in this round" (a session decides at
  // most once per DecideBatch; duplicates defer to the next round).
  static constexpr std::uint32_t kNoOwner = 0xffffffffu;
  std::vector<std::uint32_t> owner_of_;
  std::vector<std::uint32_t> pending_of_;
  std::vector<std::uint64_t> batch_stamp_;
  std::uint64_t batch_round_ = 0;

  // Round scratch (persists across batches; steady state allocates
  // nothing).
  std::vector<serve::DecisionService::Request> round_requests_;
  std::vector<mdp::Action> round_actions_;
  std::vector<std::size_t> round_pending_idx_;

  // Cached session-bytes gate (refreshed every 64 admitted opens).
  std::size_t session_bytes_cache_ = 0;
  std::size_t opens_since_measure_ = 0;

  ServerStats stats_;
};

}  // namespace osap::net
