// NetServer: the binary-protocol front-end of the serving path
// (DESIGN.md §10).
//
// A thin, dumb edge in front of serve::DecisionService, shaped like a
// control/data-plane split: the edge owns sockets, framing and admission;
// the decision hot path (DecideBatch's shard lanes and epoch tickets)
// never touches a file descriptor. The edge is N independent event-loop
// threads (NetServerConfig::edge_threads); each edge thread owns
//
//   - its OWN SO_REUSEPORT listener on the shared port (the kernel
//     shards incoming connections across the listeners by 4-tuple hash),
//   - its own IO backend (net::Backend - the epoll/ET loop or the
//     io_uring ring, NetServerConfig::backend), wake eventfd, and
//     slab-recycled connection buffers / pending queues / reply-frame
//     pools,
//   - a contiguous GROUP of the service's shard lanes (submitter group e
//     of DecisionServiceConfig::submitter_count = edge_threads): the
//     edge opens its sessions round-robin over its own shards and
//     submits its micro-batches through DecideBatchGroup, so the epoch
//     tickets stay single-submitter per lane.
//
// Nothing mutable is shared between edge threads on the read / decode /
// decide path; the only cross-edge state is a handful of atomics (the
// global in-flight admission budget, the stop flag, per-edge stats
// counters summed on STATS). Each edge runs the same loop the
// single-threaded server ran:
//
//   backend->Pump (epoll_wait or io_uring_enter; accept / drain readable
//   sockets) -> parse frames, admit or reject each request -> when
//   admitted STEPs are pending, ONE DecideBatchGroup over all of them
//   (micro-batching across connections and sessions) -> encode replies
//   into per-connection output queues -> flush with vectored writes,
//   partial writes continue under EPOLLOUT / send CQEs.
//
// edge_threads = 1 is bit-identical to the classic single-loop server:
// one group = every shard, the global id allocator, the same admission
// arithmetic (the shared budget sees exactly one edge), the same wire
// bytes. The backend choice never changes the decision stream either -
// framing, per-round dedup, batching, admission and drain are shared
// above the Backend interface.
//
// Admission control and backpressure (all per NetServerConfig):
//   - max_in_flight caps admitted-but-unanswered STEPs process-wide via
//     one shared atomic budget (reserve on admit, release on reply);
//     past it, new STEPs get an immediate BUSY reply instead of queueing.
//   - lane_high_water caps pending STEPs per shard lane, so one hot
//     shard cannot grow the whole queue; STEPs routed to a lane at its
//     mark get BUSY. Lanes belong to exactly one edge, so this needs no
//     atomics. The service's SPSC rings are bounded to the same mark
//     (DecisionServiceConfig::lane_capacity_bound), converting any
//     admission bug into a loud ring-overflow failure instead of silent
//     unbounded growth.
//   - pause_reads_above stops READING a connection whose own admitted
//     backlog passes the threshold: its bytes accumulate in the kernel
//     receive buffer, the TCP window closes, and the sender blocks - the
//     transport-level pushback behind the BUSY vocabulary. Reads resume
//     (and missed edge-triggered data is drained explicitly) once the
//     connection's backlog halves.
//   - max_sessions / max_session_bytes gate OPEN_SESSION on the session
//     table size and the service's exact ServiceMemoryStats accounting
//     (each edge caches its own group's bytes; STATS sums the caches);
//     past either, opens get FULL.
// Every rejected request is answered (BUSY / FULL / ERROR) - nothing is
// silently dropped while a connection lives.
//
// Shutdown is graceful: Stop() (thread-safe, one eventfd write per edge)
// makes every edge stop reading, quiesce its backend, run decision
// rounds until its admitted backlog is answered, flush every queued
// reply (blocking-poll bounded by kDrainDeadline), and only then close
// its connections - a client that stops sending sees every request it
// managed to send answered before EOF.
//
// Threading: Start() binds and listens (all edges); Run() blocks running
// edge 0's loop on the calling thread and the other edges on internal
// threads until Stop(); tests and `osap_serve --listen` run Run() on
// whatever thread they like. Stats() is safe from any thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "mdp/types.h"
#include "net/backend.h"
#include "net/protocol.h"
#include "serve/decision_service.h"
#include "serve/serving_model.h"

namespace osap::net {

struct Connection;
struct Edge;

struct NetServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (see Port()).
  std::uint16_t port = 0;
  /// Independent event-loop threads, each with its own SO_REUSEPORT
  /// listener and its own contiguous group of service shard lanes. Must
  /// be >= 1; service.shard_count must be >= edge_threads (one lane per
  /// edge minimum). 1 = the classic single-loop server.
  std::size_t edge_threads = 1;
  /// Per-edge IO driver. kUring silently falls back to kEpoll (with one
  /// stderr notice) when the kernel denies io_uring - backend_kind()
  /// reports what actually runs.
  BackendKind backend = BackendKind::kEpoll;
  int listen_backlog = 128;
  /// Cap on concurrently accepted connections, shared across edges.
  std::size_t max_connections = 4096;
  /// Process-wide cap on admitted STEPs awaiting a decision, enforced
  /// through one shared atomic budget; 0 = no cap.
  std::size_t max_in_flight = 64 * 1024;
  /// Pending-STEP cap per shard lane (BUSY past it); 0 disables the
  /// per-lane mark (only max_in_flight applies).
  std::size_t lane_high_water = 16 * 1024;
  /// Stop reading a connection whose admitted backlog exceeds this
  /// (TCP pushback); reads resume once it drains to half. 0 disables.
  std::size_t pause_reads_above = 1024;
  /// OPEN_SESSION gate: max concurrently open sessions (0 = 1M).
  std::size_t max_sessions = 1 << 20;
  /// OPEN_SESSION gate on ServiceMemoryStats::SessionBytes(), refreshed
  /// every 64 opens (the walk is not free). 0 = unlimited.
  std::size_t max_session_bytes = 0;
  /// Largest DecideBatch per round and per edge; 0 = bounded by
  /// max_in_flight only.
  std::size_t max_batch = 0;
  /// Sharding/backpressure config for the service the server owns.
  /// submitter_count is overwritten with edge_threads.
  serve::DecisionServiceConfig service;
};

class NetServer {
 public:
  NetServer(std::shared_ptr<const serve::ServingModel> model,
            NetServerConfig config = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds + listens every edge's SO_REUSEPORT listener (throws
  /// std::runtime_error on socket failure). Call once before Run().
  void Start();

  /// The bound TCP port (valid after Start(); resolves port 0). All
  /// edges share it.
  std::uint16_t Port() const { return port_; }

  /// Runs the edge loops until Stop(): edge 0 on the calling thread,
  /// edges 1..N-1 on internal threads (joined before returning). Must
  /// follow Start(). An edge failure stops every edge and rethrows.
  void Run();

  /// Signals every edge loop to drain and return. Thread-safe; callable
  /// from signal-ish contexts (atomic flag + one eventfd write per edge).
  void Stop();

  /// Aggregated counters (relaxed sums of the per-edge atomics plus the
  /// shared budget). Safe from any thread, any time.
  ServerStats Stats() const;

  std::size_t EdgeCount() const { return edges_.size(); }

  /// The backend actually running (after any epoll fallback).
  BackendKind backend_kind() const { return backend_kind_; }
  const char* BackendName() const { return BackendKindName(backend_kind_); }

  /// Total IO syscalls issued by the edge loops so far (epoll_wait,
  /// recv, sendmsg, accept4, io_uring_enter, ...). Relaxed sum; the
  /// denominator for syscalls-per-decision is Stats().decided.
  std::uint64_t IoSyscalls() const;

  const serve::DecisionService& service() const { return service_; }

 private:
  friend class EpollBackend;
  friend class UringBackend;

  /// Creates edge e's listener / wake eventfd / backend (edge 0 resolves
  /// the shared port; the rest bind it via SO_REUSEPORT).
  void StartEdge(std::size_t e);
  /// Edge e's event loop: runs until stop_, then drains gracefully.
  void RunEdge(Edge& edge);
  /// Post-stop drain: quiesce the backend, answer every admitted STEP,
  /// flush every queued reply (bounded blocking), then close the edge's
  /// connections.
  void DrainOnStop(Edge& edge);
  /// One freshly accepted fd: admission cap, TCP_NODELAY, slot
  /// assignment, then backend->OnConnectionOpened. Called by both arms'
  /// accept paths (accept4 loop / multishot-accept CQEs).
  void AdmitConnection(Edge& edge, int fd);
  /// Parses every complete frame in the connection's input buffer
  /// (stops early when the connection pauses). False on protocol error.
  bool ParseBuffered(Edge& edge, std::size_t slot);
  void HandleRequest(Edge& edge, std::size_t slot,
                     const DecodedRequest& request);
  void RunBatch(Edge& edge);
  /// Answers and removes every pending STEP of `session` with `status`
  /// (a CLOSE overtaking pipelined STEPs, never the normal path).
  void FailPendingOf(Edge& edge, std::uint64_t session, Status status);
  void CloseConnection(Edge& edge, std::size_t slot);
  void QueueReply(Edge& edge, std::size_t slot, const Reply& reply,
                  const ServerStats* stats = nullptr);
  /// Flushes every connection QueueReply marked dirty this iteration
  /// through the backend, then kicks queued submissions.
  void FlushDirty(Edge& edge);
  /// Sends as much of the connection's output queue as the socket
  /// accepts right now (sendmsg + MSG_NOSIGNAL, EAGAIN stops). The
  /// epoll arm's flush and both arms' drain path; the uring arm's
  /// steady-state flush goes through SENDMSG SQEs instead.
  void DirectFlush(Edge& edge, std::size_t slot);
  /// Partial-write continuation: advances (out_head, out_head_off) by
  /// `wrote` bytes, recycling fully sent frames; resets the queue when
  /// drained. Shared by DirectFlush and the uring send-CQE path.
  void ConsumeOutput(Edge& edge, std::size_t slot, std::size_t wrote);
  /// Refreshes edge's session-bytes cache and sums every edge's
  /// published counters (the STATS reply payload).
  ServerStats BuildStats(Edge& edge);
  /// Edge-local dense index of a session id (slots for owner/pending/
  /// stamp bookkeeping): local * group_width + (shard - group_begin).
  /// With one edge this is the id itself.
  std::size_t DenseIndex(const Edge& edge, std::uint64_t session) const;
  /// Exact session bytes of the edge's shard group (full-service walk
  /// for the single-edge server - its one group owns everything
  /// including the global id free list).
  std::size_t GroupSessionBytes(const Edge& edge) const;

  bool stopping() const { return stop_.load(std::memory_order_acquire); }

  std::shared_ptr<const serve::ServingModel> model_;
  NetServerConfig config_;
  BackendKind backend_kind_ = BackendKind::kEpoll;  // post-fallback
  serve::DecisionService service_;

  std::vector<std::unique_ptr<Edge>> edges_;
  std::vector<std::thread> edge_runners_;  // edges 1..N-1 during Run()
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  // Shared admission budget and connection count (the only cross-edge
  // mutable state on the request path).
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> open_connections_{0};
};

}  // namespace osap::net
