#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace osap::net {

namespace {

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

Client::~Client() { Close(); }

void Client::Connect(const std::string& host, std::uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) ThrowErrno("Client: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw std::runtime_error("Client: bad address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    Close();
    errno = saved;
    ThrowErrno("Client: connect");
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  out_.clear();
  in_.clear();
  in_off_ = 0;
}

void Client::SendOpen(std::uint64_t request_id) {
  RequestHeader header;
  header.type = MsgType::kOpenSession;
  header.request_id = request_id;
  AppendRequestFrame(out_, header);
}

void Client::SendStep(std::uint64_t request_id, std::uint64_t session,
                      std::span<const double> state) {
  RequestHeader header;
  header.type = MsgType::kStep;
  header.request_id = request_id;
  header.session_id = session;
  AppendRequestFrame(out_, header, state);
}

void Client::SendClose(std::uint64_t request_id, std::uint64_t session) {
  RequestHeader header;
  header.type = MsgType::kCloseSession;
  header.request_id = request_id;
  header.session_id = session;
  AppendRequestFrame(out_, header);
}

void Client::SendStats(std::uint64_t request_id) {
  RequestHeader header;
  header.type = MsgType::kStats;
  header.request_id = request_id;
  AppendRequestFrame(out_, header);
}

void Client::Flush() {
  std::size_t off = 0;
  while (off < out_.size()) {
    const ssize_t wrote =
        ::send(fd_, out_.data() + off, out_.size() - off, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("Client: send");
    }
    off += static_cast<std::size_t>(wrote);
  }
  out_.clear();
}

bool Client::ReadReply(Reply& reply, ServerStats* stats) {
  for (;;) {
    const std::size_t avail = in_.size() - in_off_;
    if (avail >= kLengthPrefixBytes) {
      const std::uint32_t body = GetU32(in_.data() + in_off_);
      if (body > kMaxFrameBody) {
        throw std::runtime_error("Client: oversized reply frame");
      }
      if (avail >= kLengthPrefixBytes + body) {
        if (DecodeReply({in_.data() + in_off_ + kLengthPrefixBytes, body},
                        reply, stats) != DecodeResult::kOk) {
          throw std::runtime_error("Client: malformed reply");
        }
        in_off_ += kLengthPrefixBytes + body;
        if (in_off_ == in_.size()) {
          in_.clear();
          in_off_ = 0;
        }
        return true;
      }
    }
    if (in_off_ > 0 && in_off_ == in_.size()) {
      in_.clear();
      in_off_ = 0;
    }
    const std::size_t old = in_.size();
    in_.resize(old + 16 * 1024);
    const ssize_t r = ::recv(fd_, in_.data() + old, 16 * 1024, 0);
    if (r > 0) {
      in_.resize(old + static_cast<std::size_t>(r));
      continue;
    }
    in_.resize(old);
    if (r == 0) {
      if (in_off_ != in_.size()) {
        throw std::runtime_error("Client: EOF mid-frame");
      }
      return false;
    }
    if (errno == EINTR) continue;
    ThrowErrno("Client: recv");
  }
}

Reply Client::RoundTrip(std::uint64_t request_id, ServerStats* stats) {
  Flush();
  Reply reply;
  if (!ReadReply(reply, stats)) {
    throw std::runtime_error("Client: connection closed by server");
  }
  if (reply.request_id != request_id) {
    throw std::runtime_error("Client: reply/request id mismatch");
  }
  return reply;
}

std::uint64_t Client::OpenSession() {
  const std::uint64_t id = next_request_id_++;
  SendOpen(id);
  const Reply reply = RoundTrip(id);
  if (reply.status != Status::kOk) {
    throw std::runtime_error("Client: OPEN_SESSION rejected (status " +
                             std::to_string(static_cast<int>(reply.status)) +
                             ")");
  }
  return reply.session_id;
}

Reply Client::Step(std::uint64_t session, std::span<const double> state) {
  const std::uint64_t id = next_request_id_++;
  SendStep(id, session, state);
  return RoundTrip(id);
}

void Client::CloseSession(std::uint64_t session) {
  const std::uint64_t id = next_request_id_++;
  SendClose(id, session);
  const Reply reply = RoundTrip(id);
  if (reply.status != Status::kOk) {
    throw std::runtime_error("Client: CLOSE_SESSION rejected");
  }
}

ServerStats Client::Stats() {
  const std::uint64_t id = next_request_id_++;
  SendStats(id);
  ServerStats stats;
  const Reply reply = RoundTrip(id, &stats);
  if (reply.status != Status::kOk) {
    throw std::runtime_error("Client: STATS rejected");
  }
  return stats;
}

}  // namespace osap::net
