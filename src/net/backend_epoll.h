// The reference arm: edge-triggered epoll, one syscall per socket per
// operation. This is the original NetServer event loop verbatim, moved
// behind net::Backend - epoll_wait gathers readiness, accept4 loops to
// EAGAIN, recv drains to EAGAIN, DirectFlush (sendmsg) pushes replies
// with EPOLLOUT continuation for partial writes. The uring arm is
// measured against this one; the loopback bit-identity pins run both.
#pragma once

#include <sys/epoll.h>

#include <cstddef>
#include <vector>

#include "net/backend.h"

namespace osap::net {

class EpollBackend final : public Backend {
 public:
  EpollBackend(NetServer& server, Edge& edge)
      : server_(server), edge_(edge) {}
  ~EpollBackend() override;

  BackendKind Kind() const override { return BackendKind::kEpoll; }
  void Init() override;
  void Pump(bool block) override;
  bool OnConnectionOpened(std::size_t slot) override;
  void OnConnectionClosing(std::size_t slot) override;
  void OnReadsResumed(std::size_t slot) override;
  void FlushWrites(std::size_t slot) override;
  void PrepareDrain() override {}  // nothing in flight to cancel

 private:
  /// accept4 until EAGAIN; each fd goes through the shared admission.
  void AcceptReady();
  /// Edge-triggered read: recv until EAGAIN (or pause), parsing as
  /// bytes land. False closes the connection (EOF / protocol error).
  bool DrainSocket(std::size_t slot);
  /// Re-arms the fd's interest set (EPOLLIN|EPOLLET [+EPOLLOUT]).
  void UpdateInterest(std::size_t slot);

  NetServer& server_;
  Edge& edge_;
  int epoll_fd_ = -1;
  std::vector<epoll_event> events_{256};
};

}  // namespace osap::net
