// Client: a blocking, pipelining client for the OSAP network edge.
//
// One TCP connection, two buffers: Send*() encode request frames into an
// output buffer (nothing hits the socket), Flush() writes the buffer out,
// ReadReply() blocks for the next reply frame in arrival order. A caller
// that wants pipelining encodes a burst of STEPs, flushes once, then
// reads the burst of replies, matching them to requests by the echoed
// request_id. The Open/Step/Close/Stats conveniences wrap one
// send-flush-read round trip each for callers that do not pipeline.
//
// The class is deliberately blocking and single-threaded (one client per
// thread): the open-loop load generator runs one of these per connection,
// and the loopback tests drive one from a plain function. Not thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace osap::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (throws std::runtime_error on failure).
  void Connect(const std::string& host, std::uint16_t port);
  bool Connected() const { return fd_ >= 0; }
  /// The connected socket (-1 when closed); exposed so tests can assert
  /// socket options (TCP_NODELAY) the client promises to set.
  int fd() const { return fd_; }
  void Close();

  // --- pipelined interface ---------------------------------------------

  /// Encode a request into the output buffer (no socket I/O until
  /// Flush()).
  void SendOpen(std::uint64_t request_id);
  void SendStep(std::uint64_t request_id, std::uint64_t session,
                std::span<const double> state);
  void SendClose(std::uint64_t request_id, std::uint64_t session);
  void SendStats(std::uint64_t request_id);

  /// Writes the whole output buffer to the socket (blocking).
  void Flush();

  /// Blocks for the next reply frame. Returns false on a clean EOF;
  /// throws on socket errors or malformed frames. `stats` (optional) is
  /// filled when the reply carries a stats payload.
  bool ReadReply(Reply& reply, ServerStats* stats = nullptr);

  // --- one-round-trip conveniences --------------------------------------

  /// OPEN_SESSION; returns the server-assigned session id. Throws on a
  /// non-OK status (including kFull).
  std::uint64_t OpenSession();
  /// STEP; returns the full reply (check reply.status for kBusy).
  Reply Step(std::uint64_t session, std::span<const double> state);
  /// CLOSE_SESSION; throws on a non-OK status.
  void CloseSession(std::uint64_t session);
  /// STATS round trip.
  ServerStats Stats();

 private:
  /// Blocks for one reply and requires its request_id to match.
  Reply RoundTrip(std::uint64_t request_id, ServerStats* stats = nullptr);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::uint8_t> out_;
  std::vector<std::uint8_t> in_;
  std::size_t in_off_ = 0;
};

}  // namespace osap::net
