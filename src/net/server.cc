#include "net/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/check.h"

namespace osap::net {

namespace {

constexpr std::uint64_t kListenTag = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t kWakeTag = kListenTag - 1;
constexpr std::size_t kReadChunk = 64 * 1024;
/// writev gathers at most this many reply frames per call.
constexpr int kMaxIov = 64;
/// Compact the input buffer once this many consumed bytes accumulate.
constexpr std::size_t kCompactAbove = 64 * 1024;
/// Refresh the cached ServiceMemoryStats session-bytes gate every this
/// many admitted opens (the walk touches every shard lane).
constexpr std::size_t kBytesGateRefresh = 64;

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

/// Per-connection state. Objects are recycled through a free list - the
/// input buffer, output frame queue and session list keep their capacity
/// across connections, so steady-state accept/close churn touches no
/// allocator (the frame buffers themselves recycle through the server's
/// spare-frame pool).
struct NetServer::Connection {
  int fd = -1;
  bool open = false;
  /// Reads deferred (TCP pushback): this connection's admitted backlog
  /// crossed pause_reads_above; bytes stay in the kernel receive buffer
  /// until the backlog halves.
  bool paused = false;
  bool want_write = false;  // EPOLLOUT armed (partial write pending)
  bool dirty = false;       // queued replies awaiting a flush this round
  std::uint32_t in_flight = 0;  // admitted STEPs not yet answered

  std::vector<std::uint8_t> in;  // unparsed bytes live at [in_off, size)
  std::size_t in_off = 0;

  std::vector<std::vector<std::uint8_t>> out_q;  // encoded reply frames
  std::size_t out_head = 0;      // first not-fully-written frame
  std::size_t out_head_off = 0;  // bytes of out_q[out_head] already sent

  std::vector<std::uint64_t> sessions;  // session ids this peer owns
};

NetServer::NetServer(std::shared_ptr<const serve::ServingModel> model,
                     NetServerConfig config)
    : model_(std::move(model)),
      config_(config),
      service_(
          [&]() -> std::shared_ptr<const serve::ServingModel> {
            OSAP_REQUIRE(model_ != nullptr, "NetServer: null model");
            return model_;
          }(),
          [&] {
            // Bound the shard lanes to the admission high-water mark:
            // admission keeps per-lane pending below the mark, so a ring
            // overflow can only mean an edge bug - fail loudly instead
            // of growing silently.
            serve::DecisionServiceConfig svc = config.service;
            if (config.lane_high_water > 0 && svc.lane_capacity_bound == 0) {
              svc.lane_capacity_bound = config.lane_high_water;
            }
            return svc;
          }()) {
  shard_pending_.assign(service_.ShardCount(), 0);
}

NetServer::~NetServer() {
  for (auto& conn : connections_) {
    if (conn && conn->open && conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void NetServer::Start() {
  OSAP_REQUIRE(listen_fd_ < 0, "NetServer::Start: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) ThrowErrno("NetServer: socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    ThrowErrno("NetServer: bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ThrowErrno("NetServer: getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, config_.listen_backlog) < 0) {
    ThrowErrno("NetServer: listen");
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) ThrowErrno("NetServer: epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) ThrowErrno("NetServer: eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: accept until EAGAIN anyway
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    ThrowErrno("NetServer: epoll_ctl(listen)");
  }
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    ThrowErrno("NetServer: epoll_ctl(wake)");
  }
}

void NetServer::Stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  // Best effort: a full eventfd still wakes the loop.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void NetServer::Run() {
  OSAP_REQUIRE(epoll_fd_ >= 0, "NetServer::Run: call Start() first");
  std::vector<epoll_event> events(256);
  std::vector<std::uint32_t> freed_slots;
  while (!stop_.load(std::memory_order_acquire)) {
    // Block only when idle; with admitted work pending, poll (gathering
    // whatever arrived during the previous round) and run a batch.
    const int timeout = pending_.empty() ? -1 : 0;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("NetServer: epoll_wait");
    }
    pending_free_slots_swap_.clear();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        Accept();
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof drained);
        continue;
      }
      const auto slot = static_cast<std::size_t>(tag);
      Connection& conn = *connections_[slot];
      // A peer closed earlier in this same event array: its slot is not
      // recycled until the end of the iteration, so stale events are
      // recognizable and ignored here.
      if (!conn.open) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(slot);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) FlushWrites(slot);
      if (!conn.open) continue;
      if ((events[i].events & EPOLLIN) != 0) {
        if (!ReadAndParse(slot)) CloseConnection(slot);
      }
    }
    // Flush admission replies (BUSY / FULL / opens) before the decision
    // round so rejected clients hear back without waiting on compute.
    FlushDirty();
    if (!pending_.empty()) RunBatch();
    FlushDirty();
    // Slots freed this iteration become reusable only now (see above).
    for (const std::uint32_t slot : pending_free_slots_swap_) {
      free_conn_slots_.push_back(slot);
    }
  }
}

void NetServer::Accept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or transient accept failure: try next event
    }
    if (open_connections_ >= config_.max_connections) {
      ::close(fd);  // hard admission: no fd budget to even say BUSY
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    std::uint32_t slot;
    if (!free_conn_slots_.empty()) {
      slot = free_conn_slots_.back();
      free_conn_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(connections_.size());
      connections_.push_back(std::make_unique<Connection>());
    }
    Connection& conn = *connections_[slot];
    conn.fd = fd;
    conn.open = true;

    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = slot;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      conn.fd = -1;
      conn.open = false;
      free_conn_slots_.push_back(slot);
      continue;
    }
    ++open_connections_;
  }
}

bool NetServer::ReadAndParse(std::size_t slot) {
  Connection& conn = *connections_[slot];
  // Edge-triggered: drain until EAGAIN, or stop early on pause (the
  // unread bytes close the TCP window - that IS the backpressure).
  while (!conn.paused) {
    const std::size_t old = conn.in.size();
    conn.in.resize(old + kReadChunk);
    const ssize_t r = ::recv(conn.fd, conn.in.data() + old, kReadChunk, 0);
    if (r > 0) {
      conn.in.resize(old + static_cast<std::size_t>(r));
      if (!ParseBuffered(slot)) return false;
      continue;
    }
    conn.in.resize(old);
    if (r == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool NetServer::ParseBuffered(std::size_t slot) {
  Connection& conn = *connections_[slot];
  while (!conn.paused) {
    const std::size_t avail = conn.in.size() - conn.in_off;
    if (avail < kLengthPrefixBytes) break;
    const std::uint32_t body = GetU32(conn.in.data() + conn.in_off);
    if (body > kMaxFrameBody || body < kRequestHeaderBytes) {
      return false;  // unframeable stream: no way to resynchronize
    }
    if (avail < kLengthPrefixBytes + body) break;
    DecodedRequest request;
    if (DecodeRequest({conn.in.data() + conn.in_off + kLengthPrefixBytes,
                       body},
                      request) != DecodeResult::kOk) {
      return false;
    }
    conn.in_off += kLengthPrefixBytes + body;
    HandleRequest(slot, request);
  }
  if (conn.in_off == conn.in.size()) {
    conn.in.clear();
    conn.in_off = 0;
  } else if (conn.in_off >= kCompactAbove) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_off));
    conn.in_off = 0;
  }
  return true;
}

void NetServer::HandleRequest(std::size_t slot,
                              const DecodedRequest& request) {
  Connection& conn = *connections_[slot];
  Reply reply;
  reply.type = request.header.type;
  reply.request_id = request.header.request_id;
  reply.session_id = request.header.session_id;
  reply.epoch = service_.RoundCount();

  switch (request.header.type) {
    case MsgType::kOpenSession: {
      const std::size_t max_sessions =
          config_.max_sessions > 0
              ? config_.max_sessions
              : std::numeric_limits<std::size_t>::max();
      bool over_bytes = false;
      if (config_.max_session_bytes > 0) {
        if (opens_since_measure_ >= kBytesGateRefresh) {
          session_bytes_cache_ = service_.MemoryStats().SessionBytes();
          opens_since_measure_ = 0;
        }
        over_bytes = session_bytes_cache_ >= config_.max_session_bytes;
      }
      if (service_.ActiveSessionCount() >= max_sessions || over_bytes) {
        reply.status = Status::kFull;
        ++stats_.rejected_opens;
        QueueReply(slot, reply);
        return;
      }
      const auto id = service_.OpenSession();
      if (owner_of_.size() <= id) {
        owner_of_.resize(id + 1, kNoOwner);
        pending_of_.resize(id + 1, 0);
        batch_stamp_.resize(id + 1, 0);
      }
      owner_of_[id] = static_cast<std::uint32_t>(slot);
      pending_of_[id] = 0;
      batch_stamp_[id] = 0;
      conn.sessions.push_back(id);
      ++opens_since_measure_;
      reply.status = Status::kOk;
      reply.session_id = id;
      QueueReply(slot, reply);
      return;
    }
    case MsgType::kCloseSession: {
      const std::uint64_t id = request.header.session_id;
      if (id >= owner_of_.size() || owner_of_[id] != slot) {
        reply.status = Status::kError;
        QueueReply(slot, reply);
        return;
      }
      // A CLOSE overtaking its own pipelined STEPs: answer those with
      // ERROR first (never drop them silently), then tear down.
      if (pending_of_[id] > 0) FailPendingOf(id, Status::kError);
      service_.CloseSession(id);
      owner_of_[id] = kNoOwner;
      for (std::size_t i = 0; i < conn.sessions.size(); ++i) {
        if (conn.sessions[i] == id) {
          conn.sessions[i] = conn.sessions.back();
          conn.sessions.pop_back();
          break;
        }
      }
      reply.status = Status::kOk;
      QueueReply(slot, reply);
      return;
    }
    case MsgType::kStats: {
      const ServerStats stats = BuildStats();
      reply.status = Status::kOk;
      QueueReply(slot, reply, &stats);
      return;
    }
    case MsgType::kStep: {
      const std::uint64_t id = request.header.session_id;
      if (id >= owner_of_.size() || owner_of_[id] != slot ||
          request.state_dim != model_->InputSize()) {
        reply.status = Status::kError;
        QueueReply(slot, reply);
        return;
      }
      const std::size_t max_in_flight =
          config_.max_in_flight > 0
              ? config_.max_in_flight
              : std::numeric_limits<std::size_t>::max();
      const std::size_t shard = service_.ShardOfSession(id);
      if (pending_.size() >= max_in_flight ||
          (config_.lane_high_water > 0 &&
           shard_pending_[shard] >= config_.lane_high_water)) {
        reply.status = Status::kBusy;
        ++stats_.busy;
        QueueReply(slot, reply);
        return;
      }
      PendingStep step;
      if (!state_pool_.empty()) {
        step.state = std::move(state_pool_.back());
        state_pool_.pop_back();
      }
      step.state.resize(request.state_dim);
      request.CopyState(step.state);
      step.conn = static_cast<std::uint32_t>(slot);
      step.request_id = request.header.request_id;
      step.session = id;
      pending_.push_back(std::move(step));
      ++shard_pending_[shard];
      ++pending_of_[id];
      ++conn.in_flight;
      if (config_.pause_reads_above > 0 &&
          conn.in_flight >= config_.pause_reads_above) {
        conn.paused = true;
      }
      return;
    }
  }
  // Unknown types never reach here (DecodeRequest rejects them).
}

void NetServer::RunBatch() {
  ++batch_round_;
  round_requests_.clear();
  round_pending_idx_.clear();
  const std::size_t cap =
      config_.max_batch > 0 ? config_.max_batch : pending_.size();
  for (std::size_t i = 0;
       i < pending_.size() && round_requests_.size() < cap; ++i) {
    const PendingStep& step = pending_[i];
    // One decision per session per round (the service requires it: a
    // session's next state depends on its previous action). Pipelined
    // duplicates stay pending for the next round.
    if (batch_stamp_[step.session] == batch_round_) continue;
    batch_stamp_[step.session] = batch_round_;
    round_requests_.push_back({step.session, &step.state});
    round_pending_idx_.push_back(i);
  }
  round_actions_.resize(round_requests_.size());
  service_.DecideBatch(round_requests_, round_actions_);
  ++stats_.epochs;
  const std::uint64_t epoch = service_.RoundCount();

  // Complete replies from the collected epoch: encode into the owning
  // connections' output queues (flushed after the batch - the decision
  // path itself never touched a socket).
  for (std::size_t t = 0; t < round_pending_idx_.size(); ++t) {
    PendingStep& step = pending_[round_pending_idx_[t]];
    Reply reply;
    reply.type = MsgType::kStep;
    reply.status = Status::kOk;
    reply.flags = service_.Defaulted(step.session) ? kFlagDefaulted : 0;
    reply.action = static_cast<std::int32_t>(round_actions_[t]);
    reply.request_id = step.request_id;
    reply.session_id = step.session;
    reply.epoch = epoch;
    QueueReply(step.conn, reply);
    ++stats_.decided;
    --shard_pending_[service_.ShardOfSession(step.session)];
    --pending_of_[step.session];
    Connection& conn = *connections_[step.conn];
    --conn.in_flight;
    if (conn.paused && config_.pause_reads_above > 0 &&
        conn.in_flight <= config_.pause_reads_above / 2) {
      conn.paused = false;
      unpaused_.push_back(step.conn);
    }
    state_pool_.push_back(std::move(step.state));
  }

  // Compact: drop answered entries (ascending indices), keep deferrals
  // in arrival order.
  std::size_t write = 0;
  std::size_t next_answered = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (next_answered < round_pending_idx_.size() &&
        round_pending_idx_[next_answered] == i) {
      ++next_answered;
      continue;
    }
    if (write != i) pending_[write] = std::move(pending_[i]);
    ++write;
  }
  pending_.resize(write);

  // Resume paused connections whose backlog drained: parse what their
  // buffers already hold, then drain the socket explicitly (paused
  // edge-triggered fds owe us no further events for old data).
  for (const std::uint32_t slot : unpaused_) {
    Connection& conn = *connections_[slot];
    if (!conn.open || conn.paused) continue;
    if (!ParseBuffered(slot) || !ReadAndParse(slot)) CloseConnection(slot);
  }
  unpaused_.clear();
}

void NetServer::FailPendingOf(std::uint64_t session, Status status) {
  std::size_t write = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingStep& step = pending_[i];
    if (step.session != session) {
      if (write != i) pending_[write] = std::move(pending_[i]);
      ++write;
      continue;
    }
    Reply reply;
    reply.type = MsgType::kStep;
    reply.status = status;
    reply.request_id = step.request_id;
    reply.session_id = step.session;
    reply.epoch = service_.RoundCount();
    QueueReply(step.conn, reply);
    --shard_pending_[service_.ShardOfSession(step.session)];
    --pending_of_[step.session];
    --connections_[step.conn]->in_flight;
    state_pool_.push_back(std::move(step.state));
  }
  pending_.resize(write);
}

void NetServer::CloseConnection(std::size_t slot) {
  Connection& conn = *connections_[slot];
  if (!conn.open) return;
  // Drop this peer's pending steps without replies (the socket is gone);
  // the shard/session accounting must still come back down.
  std::size_t write = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingStep& step = pending_[i];
    if (step.conn != slot) {
      if (write != i) pending_[write] = std::move(pending_[i]);
      ++write;
      continue;
    }
    --shard_pending_[service_.ShardOfSession(step.session)];
    --pending_of_[step.session];
    state_pool_.push_back(std::move(step.state));
  }
  pending_.resize(write);

  for (const std::uint64_t id : conn.sessions) {
    service_.CloseSession(id);
    owner_of_[id] = kNoOwner;
  }
  conn.sessions.clear();

  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conn.fd = -1;
  conn.open = false;
  conn.paused = false;
  conn.want_write = false;
  conn.dirty = false;
  conn.in_flight = 0;
  conn.in.clear();
  conn.in_off = 0;
  for (auto& frame : conn.out_q) {
    frame.clear();
    spare_frames_.push_back(std::move(frame));
  }
  conn.out_q.clear();
  conn.out_head = 0;
  conn.out_head_off = 0;
  --open_connections_;
  // Recycle the slot only after the current epoll event array is fully
  // processed (Run moves these into free_conn_slots_), so stale events
  // for the old fd cannot alias a fresh connection.
  pending_free_slots_swap_.push_back(static_cast<std::uint32_t>(slot));
}

void NetServer::QueueReply(std::size_t slot, const Reply& reply,
                           const ServerStats* stats) {
  Connection& conn = *connections_[slot];
  std::vector<std::uint8_t> frame;
  if (!spare_frames_.empty()) {
    frame = std::move(spare_frames_.back());
    spare_frames_.pop_back();
  }
  AppendReplyFrame(frame, reply, stats);
  conn.out_q.push_back(std::move(frame));
  if (!conn.dirty) {
    conn.dirty = true;
    dirty_.push_back(static_cast<std::uint32_t>(slot));
  }
}

void NetServer::FlushDirty() {
  for (const std::uint32_t slot : dirty_) {
    Connection& conn = *connections_[slot];
    conn.dirty = false;
    if (conn.open) FlushWrites(slot);
  }
  dirty_.clear();
}

void NetServer::FlushWrites(std::size_t slot) {
  Connection& conn = *connections_[slot];
  while (conn.out_head < conn.out_q.size()) {
    iovec iov[kMaxIov];
    int iov_count = 0;
    for (std::size_t i = conn.out_head;
         i < conn.out_q.size() && iov_count < kMaxIov; ++i) {
      const std::size_t off = i == conn.out_head ? conn.out_head_off : 0;
      iov[iov_count].iov_base =
          const_cast<std::uint8_t*>(conn.out_q[i].data() + off);
      iov[iov_count].iov_len = conn.out_q[i].size() - off;
      ++iov_count;
    }
    const ssize_t wrote = ::writev(conn.fd, iov, iov_count);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(slot);
      return;
    }
    // Partial-write continuation: advance (frame, offset) through the
    // queue; an unfinished head frame resumes at out_head_off.
    std::size_t remaining = static_cast<std::size_t>(wrote);
    while (remaining > 0) {
      std::vector<std::uint8_t>& head = conn.out_q[conn.out_head];
      const std::size_t left = head.size() - conn.out_head_off;
      if (remaining >= left) {
        remaining -= left;
        head.clear();
        spare_frames_.push_back(std::move(head));
        ++conn.out_head;
        conn.out_head_off = 0;
      } else {
        conn.out_head_off += remaining;
        remaining = 0;
      }
    }
  }
  if (conn.out_head == conn.out_q.size()) {
    conn.out_q.clear();
    conn.out_head = 0;
    conn.out_head_off = 0;
  }
  const bool want_write = conn.out_head < conn.out_q.size();
  if (want_write != conn.want_write) {
    conn.want_write = want_write;
    UpdateEpollInterest(slot);
  }
}

void NetServer::UpdateEpollInterest(std::size_t slot) {
  Connection& conn = *connections_[slot];
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | (conn.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = slot;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

ServerStats NetServer::BuildStats() {
  stats_.open_sessions = service_.ActiveSessionCount();
  session_bytes_cache_ = service_.MemoryStats().SessionBytes();
  opens_since_measure_ = 0;
  stats_.session_bytes = session_bytes_cache_;
  stats_.in_flight = pending_.size();
  stats_.connections = open_connections_;
  return stats_;
}

ServerStats NetServer::Stats() const {
  ServerStats stats = stats_;
  stats.open_sessions = service_.ActiveSessionCount();
  stats.in_flight = pending_.size();
  stats.connections = open_connections_;
  return stats;
}

}  // namespace osap::net
