#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/backend_epoll.h"
#include "net/backend_uring.h"
#include "net/edge.h"
#include "util/check.h"

namespace osap::net {

namespace {

/// Compact the input buffer once this many consumed bytes accumulate.
constexpr std::size_t kCompactAbove = 64 * 1024;
/// Refresh the cached ServiceMemoryStats session-bytes gate every this
/// many admitted opens (the walk touches every lane of the edge's group).
constexpr std::size_t kBytesGateRefresh = 64;
/// Graceful-shutdown budget: after Stop(), each edge keeps answering and
/// flushing for at most this long before closing its connections.
constexpr std::chrono::seconds kDrainDeadline{5};

constexpr std::uint32_t kNoOwner = 0xffffffffu;

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

const char* BackendKindName(BackendKind kind) {
  return kind == BackendKind::kUring ? "uring" : "epoll";
}

bool ParseBackendKind(std::string_view name, BackendKind& out) {
  if (name == "epoll") {
    out = BackendKind::kEpoll;
    return true;
  }
  if (name == "uring" || name == "io_uring") {
    out = BackendKind::kUring;
    return true;
  }
  return false;
}

std::unique_ptr<Backend> MakeBackend(BackendKind kind, NetServer& server,
                                     Edge& edge) {
  if (kind == BackendKind::kUring) {
    return std::make_unique<UringBackend>(server, edge);
  }
  return std::make_unique<EpollBackend>(server, edge);
}

NetServer::NetServer(std::shared_ptr<const serve::ServingModel> model,
                     NetServerConfig config)
    : model_(std::move(model)),
      config_(config),
      service_(
          [&]() -> std::shared_ptr<const serve::ServingModel> {
            OSAP_REQUIRE(model_ != nullptr, "NetServer: null model");
            return model_;
          }(),
          [&] {
            OSAP_REQUIRE(config.edge_threads >= 1,
                         "NetServer: edge_threads must be >= 1");
            serve::DecisionServiceConfig svc = config.service;
            OSAP_REQUIRE(svc.shard_count >= config.edge_threads,
                         "NetServer: shard_count must be >= edge_threads");
            // One submitter group per edge thread: each edge owns its
            // contiguous slice of the shard lanes outright.
            svc.submitter_count = config.edge_threads;
            // Bound the shard lanes to the admission high-water mark:
            // admission keeps per-lane pending below the mark, so a ring
            // overflow can only mean an edge bug - fail loudly instead
            // of growing silently.
            if (config.lane_high_water > 0 && svc.lane_capacity_bound == 0) {
              svc.lane_capacity_bound = config.lane_high_water;
            }
            return svc;
          }()) {
  backend_kind_ = config_.backend;
  if (backend_kind_ == BackendKind::kUring && !UringBackendAvailable()) {
    // Runtime fallback (sandboxed CI, old kernels): the server still
    // comes up, on the reference arm, and says so once.
    std::fprintf(stderr,
                 "NetServer: io_uring unavailable (%s); falling back to "
                 "epoll\n",
                 UringUnavailableReason());
    backend_kind_ = BackendKind::kEpoll;
  }
  edges_.reserve(config_.edge_threads);
  for (std::size_t e = 0; e < config_.edge_threads; ++e) {
    auto edge = std::make_unique<Edge>();
    edge->index = e;
    edge->group_begin = service_.GroupBegin(e);
    edge->group_width = service_.GroupEnd(e) - edge->group_begin;
    edge->shard_pending.assign(edge->group_width, 0);
    edges_.push_back(std::move(edge));
  }
}

NetServer::~NetServer() {
  for (auto& edge : edges_) {
    for (auto& conn : edge->connections) {
      if (conn && conn->open && conn->fd >= 0) ::close(conn->fd);
    }
    if (edge->listen_fd >= 0) ::close(edge->listen_fd);
    if (edge->wake_fd >= 0) ::close(edge->wake_fd);
  }
}

void NetServer::StartEdge(std::size_t e) {
  Edge& edge = *edges_[e];
  edge.listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                         SOCK_CLOEXEC,
                            0);
  if (edge.listen_fd < 0) ThrowErrno("NetServer: socket");
  int one = 1;
  ::setsockopt(edge.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  // Every edge (including the first) binds its own listener to the same
  // port under SO_REUSEPORT; the kernel hashes each incoming 4-tuple to
  // one listener, sharding accepts across the edge threads with no
  // shared accept lock.
  if (::setsockopt(edge.listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                   sizeof one) < 0) {
    ThrowErrno("NetServer: setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  // Edge 0 resolves the configured port (possibly 0 -> ephemeral); the
  // rest bind the resolved one.
  addr.sin_port = htons(e == 0 ? config_.port : port_);
  if (::bind(edge.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) < 0) {
    ThrowErrno("NetServer: bind");
  }
  if (e == 0) {
    socklen_t len = sizeof addr;
    if (::getsockname(edge.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                      &len) < 0) {
      ThrowErrno("NetServer: getsockname");
    }
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(edge.listen_fd, config_.listen_backlog) < 0) {
    ThrowErrno("NetServer: listen");
  }

  edge.wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (edge.wake_fd < 0) ThrowErrno("NetServer: eventfd");

  edge.backend = MakeBackend(backend_kind_, *this, edge);
  edge.backend->Init();
}

void NetServer::Start() {
  OSAP_REQUIRE(edges_[0]->listen_fd < 0, "NetServer::Start: already started");
  for (std::size_t e = 0; e < edges_.size(); ++e) StartEdge(e);
}

void NetServer::Stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  for (auto& edge : edges_) {
    if (edge->wake_fd < 0) continue;
    // Best effort: a full eventfd still wakes the loop.
    [[maybe_unused]] const ssize_t n =
        ::write(edge->wake_fd, &one, sizeof one);
  }
}

void NetServer::Run() {
  OSAP_REQUIRE(edges_[0]->backend != nullptr,
               "NetServer::Run: call Start() first");
  edge_runners_.clear();
  edge_runners_.reserve(edges_.size() - 1);
  for (std::size_t e = 1; e < edges_.size(); ++e) {
    edge_runners_.emplace_back([this, e] {
      Edge& edge = *edges_[e];
      try {
        RunEdge(edge);
      } catch (...) {
        edge.failure = std::current_exception();
        Stop();  // one edge down takes the server down loudly
      }
    });
  }
  try {
    RunEdge(*edges_[0]);
  } catch (...) {
    edges_[0]->failure = std::current_exception();
    Stop();
  }
  for (std::thread& runner : edge_runners_) runner.join();
  edge_runners_.clear();
  for (auto& edge : edges_) {
    if (edge->failure != nullptr) {
      const std::exception_ptr failure = edge->failure;
      edge->failure = nullptr;
      std::rethrow_exception(failure);
    }
  }
}

void NetServer::RunEdge(Edge& edge) {
  while (!stop_.load(std::memory_order_acquire)) {
    edge.pending_free_slots_swap.clear();
    // Block only when idle; with admitted work pending, gather whatever
    // arrived during the previous round and run a batch.
    edge.backend->Pump(edge.pending.empty());
    // Flush admission replies (BUSY / FULL / opens) before the decision
    // round so rejected clients hear back without waiting on compute.
    FlushDirty(edge);
    if (!edge.pending.empty()) RunBatch(edge);
    FlushDirty(edge);
    // Slots freed this iteration become reusable only now (stale events
    // for a dead fd must never alias a fresh connection).
    for (const std::uint32_t slot : edge.pending_free_slots_swap) {
      edge.free_conn_slots.push_back(slot);
    }
  }
  DrainOnStop(edge);
}

void NetServer::DrainOnStop(Edge& edge) {
  // Graceful shutdown: every STEP admitted before the stop gets its
  // decision, every queued reply reaches the socket (bounded blocking),
  // and only then do connections close - a client that stops sending on
  // SIGTERM sees all of its sent requests answered before EOF. Nothing
  // new is read or accepted once the stop flag is up.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline = Clock::now() + kDrainDeadline;
  // Quiesce the backend first: cancel and reap every in-flight op so the
  // direct blocking flush below is the only writer left on the sockets.
  edge.backend->PrepareDrain();
  // Pipelined duplicates defer one round each, so loop batches until the
  // admitted backlog is empty.
  while (!edge.pending.empty() && Clock::now() < deadline) {
    RunBatch(edge);
    FlushDirty(edge);
  }
  for (std::size_t slot = 0; slot < edge.connections.size(); ++slot) {
    Connection* conn = edge.connections[slot].get();
    if (conn == nullptr || !conn->open) continue;
    while (conn->open && conn->out_head < conn->out_q.size()) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) break;
      pollfd pfd{};
      pfd.fd = conn->fd;
      pfd.events = POLLOUT;
      const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
      edge.io_syscalls.fetch_add(1, std::memory_order_relaxed);
      if (pr < 0 && errno == EINTR) continue;  // deadline still bounds us
      if (pr <= 0) break;
      DirectFlush(edge, slot);  // may close the connection on error
    }
  }
  for (std::size_t slot = 0; slot < edge.connections.size(); ++slot) {
    Connection* conn = edge.connections[slot].get();
    if (conn != nullptr && conn->open) CloseConnection(edge, slot);
  }
}

void NetServer::AdmitConnection(Edge& edge, int fd) {
  // The connection cap is shared across edges: reserve, verify, undo.
  if (open_connections_.fetch_add(1, std::memory_order_relaxed) >=
      config_.max_connections) {
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
    ::close(fd);  // hard admission: no fd budget to even say BUSY
    return;
  }
  // Small pipelined frames must not wait out Nagle on the reply path.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  std::uint32_t slot;
  if (!edge.free_conn_slots.empty()) {
    slot = edge.free_conn_slots.back();
    edge.free_conn_slots.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(edge.connections.size());
    edge.connections.push_back(std::make_unique<Connection>());
  }
  Connection& conn = *edge.connections[slot];
  conn.fd = fd;
  conn.open = true;
  if (!edge.backend->OnConnectionOpened(slot)) {
    ::close(fd);
    conn.fd = -1;
    conn.open = false;
    edge.free_conn_slots.push_back(slot);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool NetServer::ParseBuffered(Edge& edge, std::size_t slot) {
  Connection& conn = *edge.connections[slot];
  while (!conn.paused) {
    const std::size_t avail = conn.in.size() - conn.in_off;
    if (avail < kLengthPrefixBytes) break;
    const std::uint32_t body = GetU32(conn.in.data() + conn.in_off);
    if (body > kMaxFrameBody || body < kRequestHeaderBytes) {
      return false;  // unframeable stream: no way to resynchronize
    }
    if (avail < kLengthPrefixBytes + body) break;
    DecodedRequest request;
    if (DecodeRequest({conn.in.data() + conn.in_off + kLengthPrefixBytes,
                       body},
                      request) != DecodeResult::kOk) {
      return false;
    }
    conn.in_off += kLengthPrefixBytes + body;
    HandleRequest(edge, slot, request);
  }
  if (conn.in_off == conn.in.size()) {
    conn.in.clear();
    conn.in_off = 0;
  } else if (conn.in_off >= kCompactAbove) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_off));
    conn.in_off = 0;
  }
  return true;
}

std::size_t NetServer::DenseIndex(const Edge& edge,
                                  std::uint64_t session) const {
  const std::size_t shard =
      static_cast<std::size_t>(session) % service_.ShardCount();
  return (static_cast<std::size_t>(session) / service_.ShardCount()) *
             edge.group_width +
         (shard - edge.group_begin);
}

std::size_t NetServer::GroupSessionBytes(const Edge& edge) const {
  // The single-edge server's one group owns the whole service including
  // the global id free list - report the exact full accounting there.
  if (edges_.size() == 1) return service_.MemoryStats().SessionBytes();
  return service_.MemoryStatsOfGroup(edge.index).SessionBytes();
}

void NetServer::HandleRequest(Edge& edge, std::size_t slot,
                              const DecodedRequest& request) {
  Connection& conn = *edge.connections[slot];
  Reply reply;
  reply.type = request.header.type;
  reply.request_id = request.header.request_id;
  reply.session_id = request.header.session_id;
  reply.epoch = service_.RoundCount();

  // A session is addressable on this edge only if its shard falls in the
  // edge's group (always true single-edge; a session opened on another
  // edge's listener is kError here - ids are edge-affine by design).
  const std::size_t shard_count = service_.ShardCount();
  const auto on_edge = [&](std::uint64_t id) {
    const std::size_t shard = static_cast<std::size_t>(id) % shard_count;
    return shard >= edge.group_begin &&
           shard < edge.group_begin + edge.group_width;
  };

  switch (request.header.type) {
    case MsgType::kOpenSession: {
      const std::size_t max_sessions =
          config_.max_sessions > 0
              ? config_.max_sessions
              : std::numeric_limits<std::size_t>::max();
      bool over_bytes = false;
      if (config_.max_session_bytes > 0) {
        if (edge.opens_since_measure >= kBytesGateRefresh) {
          edge.session_bytes.store(GroupSessionBytes(edge),
                                   std::memory_order_relaxed);
          edge.opens_since_measure = 0;
        }
        // Own cache just refreshed; other edges' caches may lag by up to
        // kBytesGateRefresh opens each - the gate is a budget, not an
        // invariant.
        std::uint64_t total_bytes = 0;
        for (const auto& e : edges_) {
          total_bytes += e->session_bytes.load(std::memory_order_relaxed);
        }
        over_bytes = total_bytes >= config_.max_session_bytes;
      }
      if (service_.ActiveSessionCount() >= max_sessions || over_bytes) {
        reply.status = Status::kFull;
        edge.rejected_opens.fetch_add(1, std::memory_order_relaxed);
        QueueReply(edge, slot, reply);
        return;
      }
      std::uint64_t id;
      if (edges_.size() == 1) {
        id = service_.OpenSession();
      } else {
        // Spread this edge's sessions round-robin over its own lanes.
        const std::size_t shard =
            edge.group_begin + edge.open_cursor % edge.group_width;
        ++edge.open_cursor;
        id = service_.OpenSessionOnShard(shard);
      }
      const std::size_t dense = DenseIndex(edge, id);
      if (edge.owner_of.size() <= dense) {
        edge.owner_of.resize(dense + 1, kNoOwner);
        edge.pending_of.resize(dense + 1, 0);
        edge.batch_stamp.resize(dense + 1, 0);
      }
      edge.owner_of[dense] = static_cast<std::uint32_t>(slot);
      edge.pending_of[dense] = 0;
      edge.batch_stamp[dense] = 0;
      conn.sessions.push_back(id);
      ++edge.opens_since_measure;
      reply.status = Status::kOk;
      reply.session_id = id;
      QueueReply(edge, slot, reply);
      return;
    }
    case MsgType::kCloseSession: {
      const std::uint64_t id = request.header.session_id;
      const std::size_t dense = on_edge(id) ? DenseIndex(edge, id) : 0;
      if (!on_edge(id) || dense >= edge.owner_of.size() ||
          edge.owner_of[dense] != slot) {
        reply.status = Status::kError;
        edge.errors.fetch_add(1, std::memory_order_relaxed);
        QueueReply(edge, slot, reply);
        return;
      }
      // A CLOSE overtaking its own pipelined STEPs: answer those with
      // ERROR first (never drop them silently), then tear down.
      if (edge.pending_of[dense] > 0) FailPendingOf(edge, id, Status::kError);
      service_.CloseSession(id);
      edge.owner_of[dense] = kNoOwner;
      for (std::size_t i = 0; i < conn.sessions.size(); ++i) {
        if (conn.sessions[i] == id) {
          conn.sessions[i] = conn.sessions.back();
          conn.sessions.pop_back();
          break;
        }
      }
      reply.status = Status::kOk;
      QueueReply(edge, slot, reply);
      return;
    }
    case MsgType::kStats: {
      const ServerStats stats = BuildStats(edge);
      reply.status = Status::kOk;
      QueueReply(edge, slot, reply, &stats);
      return;
    }
    case MsgType::kStep: {
      const std::uint64_t id = request.header.session_id;
      const std::size_t dense = on_edge(id) ? DenseIndex(edge, id) : 0;
      if (!on_edge(id) || dense >= edge.owner_of.size() ||
          edge.owner_of[dense] != slot ||
          request.state_dim != model_->InputSize()) {
        reply.status = Status::kError;
        edge.errors.fetch_add(1, std::memory_order_relaxed);
        QueueReply(edge, slot, reply);
        return;
      }
      const std::size_t lane =
          static_cast<std::size_t>(id) % shard_count - edge.group_begin;
      // Reserve a slot in the shared in-flight budget, then check the
      // edge-local lane mark; release the reservation on any rejection.
      const std::size_t prev =
          in_flight_.fetch_add(1, std::memory_order_relaxed);
      const bool over_budget =
          config_.max_in_flight > 0 && prev >= config_.max_in_flight;
      const bool over_lane =
          config_.lane_high_water > 0 &&
          edge.shard_pending[lane] >= config_.lane_high_water;
      if (over_budget || over_lane) {
        in_flight_.fetch_sub(1, std::memory_order_relaxed);
        reply.status = Status::kBusy;
        edge.busy.fetch_add(1, std::memory_order_relaxed);
        QueueReply(edge, slot, reply);
        return;
      }
      Edge::PendingStep step;
      if (!edge.state_pool.empty()) {
        step.state = std::move(edge.state_pool.back());
        edge.state_pool.pop_back();
      }
      step.state.resize(request.state_dim);
      request.CopyState(step.state);
      step.conn = static_cast<std::uint32_t>(slot);
      step.request_id = request.header.request_id;
      step.session = id;
      step.dense = dense;
      edge.pending.push_back(std::move(step));
      ++edge.shard_pending[lane];
      ++edge.pending_of[dense];
      ++conn.in_flight;
      if (config_.pause_reads_above > 0 &&
          conn.in_flight >= config_.pause_reads_above) {
        conn.paused = true;
      }
      return;
    }
  }
  // Unknown types never reach here (DecodeRequest rejects them).
}

void NetServer::RunBatch(Edge& edge) {
  ++edge.batch_round;
  edge.round_requests.clear();
  edge.round_pending_idx.clear();
  const std::size_t cap =
      config_.max_batch > 0 ? config_.max_batch : edge.pending.size();
  for (std::size_t i = 0;
       i < edge.pending.size() && edge.round_requests.size() < cap; ++i) {
    const Edge::PendingStep& step = edge.pending[i];
    // One decision per session per round (the service requires it: a
    // session's next state depends on its previous action). Pipelined
    // duplicates stay pending for the next round.
    if (edge.batch_stamp[step.dense] == edge.batch_round) continue;
    edge.batch_stamp[step.dense] = edge.batch_round;
    edge.round_requests.push_back({step.session, &step.state});
    edge.round_pending_idx.push_back(i);
  }
  edge.round_actions.resize(edge.round_requests.size());
  service_.DecideBatchGroup(edge.index, edge.round_requests,
                            edge.round_actions);
  edge.epochs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t epoch = service_.RoundCount();

  // Complete replies from the collected epoch: encode into the owning
  // connections' output queues (flushed after the batch - the decision
  // path itself never touched a socket).
  const std::size_t shard_count = service_.ShardCount();
  for (std::size_t t = 0; t < edge.round_pending_idx.size(); ++t) {
    Edge::PendingStep& step = edge.pending[edge.round_pending_idx[t]];
    Reply reply;
    reply.type = MsgType::kStep;
    reply.status = Status::kOk;
    reply.flags = service_.Defaulted(step.session) ? kFlagDefaulted : 0;
    reply.action = static_cast<std::int32_t>(edge.round_actions[t]);
    reply.request_id = step.request_id;
    reply.session_id = step.session;
    reply.epoch = epoch;
    QueueReply(edge, step.conn, reply);
    --edge.shard_pending[static_cast<std::size_t>(step.session) %
                             shard_count -
                         edge.group_begin];
    --edge.pending_of[step.dense];
    Connection& conn = *edge.connections[step.conn];
    --conn.in_flight;
    if (conn.paused && config_.pause_reads_above > 0 &&
        conn.in_flight <= config_.pause_reads_above / 2) {
      conn.paused = false;
      edge.unpaused.push_back(step.conn);
    }
    edge.state_pool.push_back(std::move(step.state));
  }
  edge.decided.fetch_add(edge.round_pending_idx.size(),
                         std::memory_order_relaxed);
  in_flight_.fetch_sub(edge.round_pending_idx.size(),
                       std::memory_order_relaxed);

  // Compact: drop answered entries (ascending indices), keep deferrals
  // in arrival order.
  std::size_t write = 0;
  std::size_t next_answered = 0;
  for (std::size_t i = 0; i < edge.pending.size(); ++i) {
    if (next_answered < edge.round_pending_idx.size() &&
        edge.round_pending_idx[next_answered] == i) {
      ++next_answered;
      continue;
    }
    if (write != i) edge.pending[write] = std::move(edge.pending[i]);
    ++write;
  }
  edge.pending.resize(write);

  // Resume paused connections whose backlog drained: parse what their
  // buffers already hold, then have the backend deliver reads again
  // (paused edge-triggered fds / cancelled multishot recvs owe us no
  // further events for old data). Skipped once stopping - the drain
  // path answers what is queued but reads nothing new.
  if (!stop_.load(std::memory_order_acquire)) {
    for (const std::uint32_t slot : edge.unpaused) {
      Connection& conn = *edge.connections[slot];
      if (!conn.open || conn.paused) continue;
      if (!ParseBuffered(edge, slot)) {
        CloseConnection(edge, slot);
        continue;
      }
      // Parsing buffered frames may re-pause; only a still-unpaused
      // connection gets its read path re-armed.
      if (conn.open && !conn.paused) edge.backend->OnReadsResumed(slot);
    }
  }
  edge.unpaused.clear();
}

void NetServer::FailPendingOf(Edge& edge, std::uint64_t session,
                              Status status) {
  const std::size_t shard_count = service_.ShardCount();
  std::size_t write = 0;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < edge.pending.size(); ++i) {
    Edge::PendingStep& step = edge.pending[i];
    if (step.session != session) {
      if (write != i) edge.pending[write] = std::move(edge.pending[i]);
      ++write;
      continue;
    }
    Reply reply;
    reply.type = MsgType::kStep;
    reply.status = status;
    reply.request_id = step.request_id;
    reply.session_id = step.session;
    reply.epoch = service_.RoundCount();
    QueueReply(edge, step.conn, reply);
    --edge.shard_pending[static_cast<std::size_t>(step.session) %
                             shard_count -
                         edge.group_begin];
    --edge.pending_of[step.dense];
    --edge.connections[step.conn]->in_flight;
    edge.state_pool.push_back(std::move(step.state));
    ++failed;
  }
  edge.pending.resize(write);
  if (failed > 0) {
    in_flight_.fetch_sub(failed, std::memory_order_relaxed);
    if (status == Status::kError) {
      edge.errors.fetch_add(failed, std::memory_order_relaxed);
    }
  }
}

void NetServer::CloseConnection(Edge& edge, std::size_t slot) {
  Connection& conn = *edge.connections[slot];
  if (!conn.open) return;
  // Drop this peer's pending steps without replies (the socket is gone);
  // the shard/session accounting must still come back down.
  const std::size_t shard_count = service_.ShardCount();
  std::size_t write = 0;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < edge.pending.size(); ++i) {
    Edge::PendingStep& step = edge.pending[i];
    if (step.conn != slot) {
      if (write != i) edge.pending[write] = std::move(edge.pending[i]);
      ++write;
      continue;
    }
    --edge.shard_pending[static_cast<std::size_t>(step.session) %
                             shard_count -
                         edge.group_begin];
    --edge.pending_of[step.dense];
    edge.state_pool.push_back(std::move(step.state));
    ++dropped;
  }
  edge.pending.resize(write);
  if (dropped > 0) in_flight_.fetch_sub(dropped, std::memory_order_relaxed);

  for (const std::uint64_t id : conn.sessions) {
    service_.CloseSession(id);
    edge.owner_of[DenseIndex(edge, id)] = kNoOwner;
  }
  conn.sessions.clear();

  // The backend forgets / cancels the slot's in-flight IO before the fd
  // goes away; frames an in-flight send still references are kept alive
  // by the backend, so recycling the queue below is safe.
  edge.backend->OnConnectionClosing(slot);
  ::close(conn.fd);
  conn.fd = -1;
  conn.open = false;
  conn.paused = false;
  conn.want_write = false;
  conn.dirty = false;
  conn.in_flight = 0;
  conn.in.clear();
  conn.in_off = 0;
  for (auto& frame : conn.out_q) {
    frame.clear();
    edge.spare_frames.push_back(std::move(frame));
  }
  conn.out_q.clear();
  conn.out_head = 0;
  conn.out_head_off = 0;
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  // Recycle the slot only after the current IO round is fully processed
  // (RunEdge moves these into free_conn_slots), so stale events for the
  // old fd cannot alias a fresh connection.
  edge.pending_free_slots_swap.push_back(static_cast<std::uint32_t>(slot));
}

void NetServer::QueueReply(Edge& edge, std::size_t slot, const Reply& reply,
                           const ServerStats* stats) {
  Connection& conn = *edge.connections[slot];
  std::vector<std::uint8_t> frame;
  if (!edge.spare_frames.empty()) {
    frame = std::move(edge.spare_frames.back());
    edge.spare_frames.pop_back();
  }
  AppendReplyFrame(frame, reply, stats);
  conn.out_q.push_back(std::move(frame));
  if (!conn.dirty) {
    conn.dirty = true;
    edge.dirty.push_back(static_cast<std::uint32_t>(slot));
  }
}

void NetServer::FlushDirty(Edge& edge) {
  for (const std::uint32_t slot : edge.dirty) {
    Connection& conn = *edge.connections[slot];
    conn.dirty = false;
    if (conn.open) edge.backend->FlushWrites(slot);
  }
  edge.dirty.clear();
  // The uring arm queues SENDMSG SQEs above; submit them now so replies
  // leave the process before (not after) the next decision round.
  edge.backend->Kick();
}

void NetServer::DirectFlush(Edge& edge, std::size_t slot) {
  Connection& conn = *edge.connections[slot];
  while (conn.out_head < conn.out_q.size()) {
    iovec iov[kMaxIov];
    int iov_count = 0;
    for (std::size_t i = conn.out_head;
         i < conn.out_q.size() && iov_count < kMaxIov; ++i) {
      const std::size_t off = i == conn.out_head ? conn.out_head_off : 0;
      iov[iov_count].iov_base =
          const_cast<std::uint8_t*>(conn.out_q[i].data() + off);
      iov[iov_count].iov_len = conn.out_q[i].size() - off;
      ++iov_count;
    }
    // sendmsg, not writev: MSG_NOSIGNAL turns a peer reset mid-reply
    // into EPIPE instead of a process-fatal SIGPIPE.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iov_count);
    const ssize_t wrote = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    edge.io_syscalls.fetch_add(1, std::memory_order_relaxed);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(edge, slot);
      return;
    }
    ConsumeOutput(edge, slot, static_cast<std::size_t>(wrote));
  }
}

void NetServer::ConsumeOutput(Edge& edge, std::size_t slot,
                              std::size_t wrote) {
  Connection& conn = *edge.connections[slot];
  // Partial-write continuation: advance (frame, offset) through the
  // queue; an unfinished head frame resumes at out_head_off.
  std::size_t remaining = wrote;
  while (remaining > 0) {
    std::vector<std::uint8_t>& head = conn.out_q[conn.out_head];
    const std::size_t left = head.size() - conn.out_head_off;
    if (remaining >= left) {
      remaining -= left;
      head.clear();
      edge.spare_frames.push_back(std::move(head));
      ++conn.out_head;
      conn.out_head_off = 0;
    } else {
      conn.out_head_off += remaining;
      remaining = 0;
    }
  }
  if (conn.out_head == conn.out_q.size()) {
    conn.out_q.clear();
    conn.out_head = 0;
    conn.out_head_off = 0;
  }
}

ServerStats NetServer::BuildStats(Edge& edge) {
  edge.session_bytes.store(GroupSessionBytes(edge),
                           std::memory_order_relaxed);
  edge.opens_since_measure = 0;
  return Stats();
}

ServerStats NetServer::Stats() const {
  ServerStats stats;
  stats.open_sessions = service_.ActiveSessionCount();
  for (const auto& e : edges_) {
    stats.session_bytes += e->session_bytes.load(std::memory_order_relaxed);
    stats.decided += e->decided.load(std::memory_order_relaxed);
    stats.busy += e->busy.load(std::memory_order_relaxed);
    stats.rejected_opens +=
        e->rejected_opens.load(std::memory_order_relaxed);
    stats.epochs += e->epochs.load(std::memory_order_relaxed);
    stats.errors += e->errors.load(std::memory_order_relaxed);
  }
  stats.in_flight = in_flight_.load(std::memory_order_relaxed);
  stats.connections = open_connections_.load(std::memory_order_relaxed);
  stats.calibration_active = service_.OnlineCalibration() ? 1 : 0;
  stats.SetCalibrationAlpha(service_.LiveAlpha());
  stats.calibration_observed = service_.CalibrationObservations();
  stats.calibration_exceeded = service_.CalibrationExceedances();
  return stats;
}

std::uint64_t NetServer::IoSyscalls() const {
  std::uint64_t total = 0;
  for (const auto& e : edges_) {
    total += e->io_syscalls.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace osap::net
