// Environment interface: the MDP of Section 2.1. At each discrete step the
// agent picks an action, the environment transitions and emits a reward.
#pragma once

#include <cstddef>

#include "mdp/types.h"

namespace osap::mdp {

/// Result of one environment step.
struct StepResult {
  State next_state;
  double reward = 0.0;
  bool done = false;
};

class Environment {
 public:
  virtual ~Environment() = default;

  /// Starts a new episode and returns the initial observation.
  virtual State Reset() = 0;

  /// Applies an action; undefined before Reset or after done.
  virtual StepResult Step(Action action) = 0;

  /// Size of the discrete action set A.
  virtual std::size_t ActionCount() const = 0;

  /// Dimension of the observation vector.
  virtual std::size_t StateSize() const = 0;
};

}  // namespace osap::mdp
