// Policy interfaces (paper Section 2.1): a mapping from the observation
// history to (a distribution over) actions. Policies that can report their
// full action distribution implement StochasticPolicy - the U_pi ensemble
// estimator needs those distributions to compute KL disagreement.
#pragma once

#include <string>
#include <vector>

#include "mdp/types.h"

namespace osap::mdp {

class Policy {
 public:
  virtual ~Policy() = default;

  /// Chooses an action for the current observation. Stateful policies may
  /// also use their internal history.
  virtual Action SelectAction(const State& state) = 0;

  /// Clears per-episode internal state (no-op for memoryless policies).
  virtual void Reset() {}

  /// Stable display name, e.g. "pensieve", "buffer_based".
  virtual std::string Name() const = 0;
};

/// A policy that exposes its per-state probability distribution over
/// actions (e.g. a softmax actor).
class StochasticPolicy : public Policy {
 public:
  /// Probability of each action in the current state; sums to 1.
  virtual std::vector<double> ActionDistribution(const State& state) = 0;
};

}  // namespace osap::mdp
