#include "mdp/trajectory.h"

#include "util/check.h"

namespace osap::mdp {

double Trajectory::TotalReward() const {
  double total = 0.0;
  for (const Transition& t : transitions) total += t.reward;
  return total;
}

std::vector<double> DiscountedReturns(std::span<const double> rewards,
                                      double gamma, double bootstrap_value) {
  OSAP_REQUIRE(gamma >= 0.0 && gamma <= 1.0,
               "DiscountedReturns: gamma must be in [0, 1]");
  std::vector<double> returns(rewards.size());
  double g = bootstrap_value;
  for (std::size_t i = rewards.size(); i > 0; --i) {
    g = rewards[i - 1] + gamma * g;
    returns[i - 1] = g;
  }
  return returns;
}

}  // namespace osap::mdp
