#include "mdp/rollout.h"

namespace osap::mdp {

Trajectory Rollout(Environment& env, Policy& policy, std::size_t max_steps) {
  Trajectory trajectory;
  policy.Reset();
  State state = env.Reset();
  std::size_t steps = 0;
  while (max_steps == 0 || steps < max_steps) {
    const Action action = policy.SelectAction(state);
    StepResult result = env.Step(action);
    trajectory.transitions.push_back(
        Transition{std::move(state), action, result.reward});
    state = std::move(result.next_state);
    ++steps;
    if (result.done) break;
  }
  return trajectory;
}

}  // namespace osap::mdp
