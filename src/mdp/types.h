// Core types of the sequential decision-making model (paper Section 2.1):
// discrete time, discrete actions, real-vector observations. The paper's
// formulation is a general MDP; our State is the agent's observation vector
// (for ABR, the Pensieve state encoding).
#pragma once

#include <vector>

namespace osap::mdp {

/// Observation vector handed to policies and value functions.
using State = std::vector<double>;

/// Discrete action index in [0, ActionCount).
using Action = int;

}  // namespace osap::mdp
