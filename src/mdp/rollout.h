// Rollout engine: runs a policy in an environment until termination (or a
// step cap) and records the trajectory.
#pragma once

#include <cstddef>

#include "mdp/environment.h"
#include "mdp/policy.h"
#include "mdp/trajectory.h"

namespace osap::mdp {

/// Runs one episode. `max_steps` caps runaway episodes (0 = no cap beyond
/// environment termination). Resets both the environment and the policy.
Trajectory Rollout(Environment& env, Policy& policy,
                   std::size_t max_steps = 0);

}  // namespace osap::mdp
