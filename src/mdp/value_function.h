// Value-function interface (paper Section 2.1): V maps a state to the
// predicted discounted return under some policy. The U_V estimator compares
// an ensemble of these.
#pragma once

#include "mdp/types.h"

namespace osap::mdp {

class ValueFunction {
 public:
  virtual ~ValueFunction() = default;

  /// Predicted discounted return from `state`.
  virtual double Value(const State& state) = 0;
};

}  // namespace osap::mdp
