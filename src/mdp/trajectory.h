// Trajectories and return computations shared by the A2C trainer, the
// external value-function trainer, and the evaluation harness.
#pragma once

#include <span>
#include <vector>

#include "mdp/types.h"

namespace osap::mdp {

/// One (s_t, a_t, r_t) transition.
struct Transition {
  State state;
  Action action = 0;
  double reward = 0.0;
};

/// A full episode.
struct Trajectory {
  std::vector<Transition> transitions;

  /// Undiscounted episode return (e.g. total QoE of a streaming session).
  double TotalReward() const;

  std::size_t Length() const { return transitions.size(); }
  bool Empty() const { return transitions.empty(); }
};

/// Discounted returns-to-go: G_t = r_t + gamma * G_{t+1}, with
/// G_T = bootstrap_value beyond the last transition (0 for terminated
/// episodes). gamma must be in [0, 1].
std::vector<double> DiscountedReturns(std::span<const double> rewards,
                                      double gamma,
                                      double bootstrap_value = 0.0);

}  // namespace osap::mdp
