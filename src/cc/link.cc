#include "cc/link.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace osap::cc {

BottleneckLink::BottleneckLink(LinkConfig config) : config_(config) {
  OSAP_REQUIRE(config_.base_rtt_seconds > 0.0,
               "LinkConfig: base RTT must be > 0");
  OSAP_REQUIRE(config_.queue_bdp > 0.0, "LinkConfig: queue must be > 0 BDP");
  OSAP_REQUIRE(config_.mi_seconds > 0.0,
               "LinkConfig: monitor interval must be > 0");
}

void BottleneckLink::Start(const traces::Trace& trace) {
  trace_ = &trace;
  queue_bits_ = 0.0;
  mi_index_ = 0;
}

MiReport BottleneckLink::Send(double rate_mbps) {
  OSAP_REQUIRE(Started(), "BottleneckLink::Send before Start");
  OSAP_REQUIRE(rate_mbps >= 0.0, "BottleneckLink::Send: negative rate");

  const double dt = config_.mi_seconds;
  const double capacity_mbps = trace_->ThroughputAt(TimeSeconds());
  const double capacity_bits = capacity_mbps * 1e6 * dt;
  const double inflow_bits = rate_mbps * 1e6 * dt;
  // Fixed drop-tail buffer (reference-BDP bytes, independent of the
  // instantaneous capacity).
  const double queue_capacity_bits = config_.queue_bdp *
                                     config_.reference_bandwidth_mbps * 1e6 *
                                     config_.base_rtt_seconds;

  // Fluid update: the queue absorbs the rate/capacity mismatch; overflow
  // is dropped. Half the interval's arrivals see the average queue.
  const double queue_before = queue_bits_;
  double queue_after = queue_before + inflow_bits - capacity_bits;
  double lost_bits = 0.0;
  if (queue_after > queue_capacity_bits) {
    lost_bits = queue_after - queue_capacity_bits;
    queue_after = queue_capacity_bits;
  }
  queue_after = std::max(0.0, queue_after);

  // Delivered this interval: whatever drained through the link, bounded
  // by capacity and by what was available (prior queue + arrivals).
  const double drained =
      std::min(capacity_bits, queue_before + inflow_bits - lost_bits);

  MiReport report;
  report.send_rate_mbps = rate_mbps;
  report.capacity_mbps = capacity_mbps;
  report.delivered_mbps = std::max(0.0, drained) / 1e6 / dt;
  report.loss_rate =
      inflow_bits > 0.0 ? std::min(1.0, lost_bits / inflow_bits) : 0.0;
  const double avg_queue_bits = 0.5 * (queue_before + queue_after);
  report.avg_latency_seconds =
      config_.base_rtt_seconds + avg_queue_bits / (capacity_mbps * 1e6);

  queue_bits_ = queue_after;
  ++mi_index_;
  return report;
}

}  // namespace osap::cc
