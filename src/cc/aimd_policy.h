// The battle-tested default policy for the congestion-control domain: a
// TCP-flavoured AIMD rule at monitor-interval granularity. On congestion
// evidence (send ratio or latency inflation above thresholds) it picks the
// strongest decrease action; otherwise the gentlest increase. Plays the
// role Buffer-Based plays in the ABR case study - simple, throughput-
// agnostic, and hard to break.
#pragma once

#include "cc/cc_environment.h"
#include "mdp/policy.h"

namespace osap::cc {

struct AimdConfig {
  /// Congestion when sent/delivered exceeds this (loss or queue growth).
  double send_ratio_threshold = 1.05;
  /// Congestion when latency exceeds this multiple of the minimum.
  double latency_ratio_threshold = 1.15;
};

class AimdPolicy final : public mdp::Policy {
 public:
  /// Needs the layout to read the signals and the multipliers to choose
  /// its decrease/increase actions (smallest and the mildest > 1).
  AimdPolicy(const CcStateLayout& layout,
             const std::vector<double>& rate_multipliers,
             AimdConfig config = {});

  mdp::Action SelectAction(const mdp::State& state) override;
  std::string Name() const override { return "aimd"; }

  mdp::Action decrease_action() const { return decrease_action_; }
  mdp::Action increase_action() const { return increase_action_; }

 private:
  CcStateLayout layout_;
  AimdConfig config_;
  mdp::Action decrease_action_ = 0;
  mdp::Action increase_action_ = 0;
};

}  // namespace osap::cc
