#include "cc/cc_environment.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace osap::cc {

CcEnvironment::CcEnvironment(CcEnvironmentConfig config)
    : config_(std::move(config)), link_(config_.link) {
  OSAP_REQUIRE(config_.rate_multipliers.size() >= 2,
               "CcEnvironment: need >= 2 actions");
  for (double m : config_.rate_multipliers) {
    OSAP_REQUIRE(m > 0.0, "CcEnvironment: multipliers must be > 0");
  }
  OSAP_REQUIRE(config_.layout.history >= 2,
               "CcEnvironment: history must be >= 2");
  OSAP_REQUIRE(config_.initial_rate_mbps >= config_.min_rate_mbps &&
                   config_.initial_rate_mbps <= config_.max_rate_mbps,
               "CcEnvironment: initial rate out of bounds");
  OSAP_REQUIRE(config_.episode_mis >= 2,
               "CcEnvironment: episodes need >= 2 monitor intervals");
}

void CcEnvironment::SetTracePool(std::span<const traces::Trace> pool,
                                 std::uint64_t seed) {
  OSAP_REQUIRE(!pool.empty(), "SetTracePool: empty pool");
  pool_ = pool;
  pool_rng_ = Rng(seed);
  fixed_trace_ = nullptr;
}

void CcEnvironment::SetFixedTrace(const traces::Trace& trace) {
  fixed_trace_ = &trace;
  pool_ = {};
}

mdp::State CcEnvironment::Reset() {
  OSAP_REQUIRE(fixed_trace_ != nullptr || !pool_.empty(),
               "CcEnvironment::Reset: no trace configured");
  const traces::Trace* trace =
      fixed_trace_ != nullptr
          ? fixed_trace_
          : &pool_[static_cast<std::size_t>(
                pool_rng_.UniformInt(pool_.size()))];
  link_.Start(*trace);
  rate_mbps_ = config_.initial_rate_mbps;
  min_latency_seconds_ = config_.link.base_rtt_seconds;
  prev_latency_seconds_ = config_.link.base_rtt_seconds;
  mi_count_ = 0;
  features_.assign(config_.layout.Size(), 0.0);
  last_report_ = MiReport{};
  return BuildState();
}

mdp::StepResult CcEnvironment::Step(mdp::Action action) {
  OSAP_REQUIRE(link_.Started(), "CcEnvironment::Step before Reset");
  OSAP_REQUIRE(
      action >= 0 &&
          static_cast<std::size_t>(action) < config_.rate_multipliers.size(),
      "CcEnvironment::Step: action out of range");

  rate_mbps_ = std::clamp(
      rate_mbps_ *
          config_.rate_multipliers[static_cast<std::size_t>(action)],
      config_.min_rate_mbps, config_.max_rate_mbps);
  last_report_ = link_.Send(rate_mbps_);
  ++mi_count_;

  // Aurora's scale-free statistics for this MI.
  min_latency_seconds_ =
      std::min(min_latency_seconds_, last_report_.avg_latency_seconds);
  const double latency_gradient =
      (last_report_.avg_latency_seconds - prev_latency_seconds_) /
      config_.link.mi_seconds;
  prev_latency_seconds_ = last_report_.avg_latency_seconds;
  const double latency_ratio =
      last_report_.avg_latency_seconds / min_latency_seconds_;
  const double send_ratio =
      last_report_.send_rate_mbps /
      std::max(last_report_.delivered_mbps, 1e-6);

  // Slide the feature window.
  features_.erase(features_.begin(),
                  features_.begin() + CcStateLayout::kFeaturesPerMi);
  features_.push_back(latency_gradient);
  features_.push_back(latency_ratio);
  features_.push_back(send_ratio);
  features_.push_back(last_report_.delivered_mbps /
                      CcStateLayout::kDeliveredNormMbps);

  mdp::StepResult result;
  result.reward = config_.throughput_weight * last_report_.delivered_mbps -
                  config_.latency_weight *
                      (last_report_.avg_latency_seconds -
                       config_.link.base_rtt_seconds) -
                  config_.loss_weight * last_report_.loss_rate;
  result.done = mi_count_ >= config_.episode_mis;
  result.next_state = BuildState();
  return result;
}

mdp::State CcEnvironment::BuildState() const { return features_; }

}  // namespace osap::cc
