// Bottleneck-link substrate for the congestion-control domain.
//
// The paper's conclusion calls for "the exploration of online safety
// assurance in other application domains"; internet congestion control is
// the domain its own reference [20] (Jay, Rotman, Godfrey, Schapira,
// Tamar - "A deep reinforcement learning perspective on internet
// congestion control", ICML '19, the Aurora system) studies, so we build
// it as the second OSAP application.
//
// The link is the standard single-bottleneck fluid model Aurora trains
// against: a sender emits at a chosen rate over a link whose capacity
// follows a throughput trace (the same traces::Trace machinery as the ABR
// datasets); excess traffic fills a drop-tail queue sized in
// bandwidth-delay products; queueing adds latency; overflow is loss. Time
// advances in fixed monitor intervals (MIs), the granularity at which
// rate-control decisions are made and statistics are observed.
#pragma once

#include <cstddef>

#include "traces/trace.h"

namespace osap::cc {

struct LinkConfig {
  /// Two-way propagation delay (no queueing).
  double base_rtt_seconds = 0.05;
  /// Drop-tail buffer size in bandwidth-delay products of the reference
  /// bandwidth - a fixed byte budget, as in real routers, so low-capacity
  /// episodes exhibit bufferbloat (latency) rather than instant loss.
  double queue_bdp = 2.0;
  double reference_bandwidth_mbps = 10.0;
  /// Monitor-interval duration.
  double mi_seconds = 0.1;
};

/// What the sender observes about one monitor interval.
struct MiReport {
  double send_rate_mbps = 0.0;       // what the sender attempted
  double delivered_mbps = 0.0;       // what actually got through
  double loss_rate = 0.0;            // lost bits / sent bits, in [0, 1]
  double avg_latency_seconds = 0.0;  // base RTT + mean queueing delay
  double capacity_mbps = 0.0;        // ground truth (telemetry only)
};

/// Deterministic fluid simulation of one flow over one bottleneck.
class BottleneckLink {
 public:
  explicit BottleneckLink(LinkConfig config = {});

  /// Starts a connection over the given capacity trace at time 0.
  /// The trace must outlive its use.
  void Start(const traces::Trace& trace);

  /// Sends at `rate_mbps` for one monitor interval; returns what happened.
  MiReport Send(double rate_mbps);

  /// Queued bits awaiting transmission.
  double QueueBits() const { return queue_bits_; }

  /// Wall-clock position in the (cyclically repeating) trace. Computed
  /// as interval-count * mi_seconds so it does not drift the way a
  /// floating-point accumulator would.
  double TimeSeconds() const {
    return static_cast<double>(mi_index_) * config_.mi_seconds;
  }

  bool Started() const { return trace_ != nullptr; }
  const LinkConfig& config() const { return config_; }

 private:
  LinkConfig config_;
  const traces::Trace* trace_ = nullptr;
  double queue_bits_ = 0.0;
  std::size_t mi_index_ = 0;
};

}  // namespace osap::cc
