// Network builders for the congestion-control agent: Aurora uses a small
// fully-connected actor-critic over the monitor-interval history (two
// hidden layers, tanh in the original; we use the library's ReLU stack).
#pragma once

#include "cc/cc_environment.h"
#include "nn/actor_critic_net.h"
#include "util/rng.h"

namespace osap::cc {

struct CcNetConfig {
  std::size_t hidden1 = 32;
  std::size_t hidden2 = 16;
};

/// A 1-output value network over the CC state (critic / U_V member).
nn::CompositeNet BuildCcValueNet(const CcStateLayout& layout,
                                 const CcNetConfig& config, Rng& rng);

/// A freshly-initialized actor-critic pair for `action_count` rate
/// multipliers.
nn::ActorCriticNet MakeCcActorCritic(const CcStateLayout& layout,
                                     std::size_t action_count,
                                     const CcNetConfig& config, Rng& rng);

}  // namespace osap::cc
