#include "cc/aimd_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace osap::cc {

AimdPolicy::AimdPolicy(const CcStateLayout& layout,
                       const std::vector<double>& rate_multipliers,
                       AimdConfig config)
    : layout_(layout), config_(config) {
  OSAP_REQUIRE(!rate_multipliers.empty(), "AimdPolicy: no actions");
  OSAP_REQUIRE(config_.send_ratio_threshold > 1.0,
               "AimdPolicy: send-ratio threshold must be > 1");
  OSAP_REQUIRE(config_.latency_ratio_threshold > 1.0,
               "AimdPolicy: latency-ratio threshold must be > 1");
  // Multiplicative decrease: the smallest multiplier. Additive-ish
  // increase: the smallest multiplier strictly above 1.
  double smallest = std::numeric_limits<double>::infinity();
  double mildest_up = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < rate_multipliers.size(); ++i) {
    if (rate_multipliers[i] < smallest) {
      smallest = rate_multipliers[i];
      decrease_action_ = static_cast<mdp::Action>(i);
    }
    if (rate_multipliers[i] > 1.0 && rate_multipliers[i] < mildest_up) {
      mildest_up = rate_multipliers[i];
      increase_action_ = static_cast<mdp::Action>(i);
    }
  }
  OSAP_REQUIRE(smallest < 1.0,
               "AimdPolicy: the action set needs a decrease multiplier");
  OSAP_REQUIRE(std::isfinite(mildest_up),
               "AimdPolicy: the action set needs an increase multiplier");
}

mdp::Action AimdPolicy::SelectAction(const mdp::State& state) {
  OSAP_REQUIRE(state.size() == layout_.Size(),
               "AimdPolicy: state size mismatch");
  const double send_ratio = layout_.LatestSendRatio(state);
  const double latency_ratio = layout_.LatestLatencyRatio(state);
  // Before the first MI (all-zero state), probe upward.
  if (send_ratio <= 0.0) return increase_action_;
  const bool congested = send_ratio > config_.send_ratio_threshold ||
                         latency_ratio > config_.latency_ratio_threshold;
  return congested ? decrease_action_ : increase_action_;
}

}  // namespace osap::cc
