#include "cc/cc_net.h"

#include "util/check.h"

namespace osap::cc {

namespace {

nn::CompositeNet Build(const CcStateLayout& layout, std::size_t outputs,
                       const CcNetConfig& config, Rng& rng) {
  nn::CompositeNet net;
  nn::Sequential branch;
  branch.AddLinearReLU(layout.Size(), config.hidden1, rng);
  branch.AddLinearReLU(config.hidden1, config.hidden2, rng);
  net.AddBranch(0, layout.Size(), std::move(branch));
  nn::Sequential trunk;
  trunk.Add(std::make_unique<nn::Linear>(config.hidden2, outputs, rng));
  net.SetTrunk(std::move(trunk));
  return net;
}

}  // namespace

nn::CompositeNet BuildCcValueNet(const CcStateLayout& layout,
                                 const CcNetConfig& config, Rng& rng) {
  return Build(layout, 1, config, rng);
}

nn::ActorCriticNet MakeCcActorCritic(const CcStateLayout& layout,
                                     std::size_t action_count,
                                     const CcNetConfig& config, Rng& rng) {
  OSAP_REQUIRE(action_count >= 2, "MakeCcActorCritic: need >= 2 actions");
  return nn::ActorCriticNet(Build(layout, action_count, config, rng),
                            Build(layout, 1, config, rng));
}

}  // namespace osap::cc
