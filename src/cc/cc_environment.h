// MDP adapter for congestion control, following Aurora (Jay et al.,
// ICML '19 - the paper's reference [20]).
//
// Observations: the last `history` monitor intervals' statistic vectors
//   [ latency gradient   (d latency / d t, seconds per second),
//     latency ratio      (MI latency / connection-minimum latency),
//     send ratio         (sent / delivered),
//     delivered rate     (Mbps / 10) ],
// oldest-first. The first three are Aurora's deliberately scale-free
// statistics; the fourth is an absolute-throughput feature like the one
// Pensieve consumes. Absolute features help in-distribution (the agent
// can learn the training links' capacity range outright) and are exactly
// what fails to generalize when the deployment distribution shifts - the
// failure mode OSAP guards (in pilot runs, a purely scale-free agent
// transferred downward gracefully; the absolute feature restores the
// paper's brittleness realistically). The newest delivered rate is what
// the U_S novelty probe monitors.
//
// Actions: discrete rate multipliers applied to the current sending rate
// (softmax-friendly discretization of Aurora's continuous rate delta).
//
// Reward (Aurora's linear objective):
//   10 * delivered_Mbps - 1000 * avg_latency_s - 2000 * loss_rate.
#pragma once

#include <span>
#include <vector>

#include "cc/link.h"
#include "mdp/environment.h"
#include "traces/trace.h"
#include "util/rng.h"

namespace osap::cc {

/// Offsets/decoders for the congestion-control observation vector.
struct CcStateLayout {
  std::size_t history = 10;  // monitor intervals remembered

  static constexpr std::size_t kFeaturesPerMi = 4;
  static constexpr double kDeliveredNormMbps = 10.0;

  std::size_t Size() const { return history * kFeaturesPerMi; }
  std::size_t LatencyGradientIndex(std::size_t i) const {
    return i * kFeaturesPerMi;
  }
  std::size_t LatencyRatioIndex(std::size_t i) const {
    return i * kFeaturesPerMi + 1;
  }
  std::size_t SendRatioIndex(std::size_t i) const {
    return i * kFeaturesPerMi + 2;
  }
  std::size_t DeliveredIndex(std::size_t i) const {
    return i * kFeaturesPerMi + 3;
  }
  /// Newest send ratio (sent/delivered >= 1; ~1 when the link keeps up).
  double LatestSendRatio(const mdp::State& s) const {
    return s[SendRatioIndex(history - 1)];
  }
  double LatestLatencyRatio(const mdp::State& s) const {
    return s[LatencyRatioIndex(history - 1)];
  }
  /// Newest delivered rate in Mbps (the U_S monitoring signal).
  double LatestDeliveredMbps(const mdp::State& s) const {
    return s[DeliveredIndex(history - 1)] * kDeliveredNormMbps;
  }
};

struct CcEnvironmentConfig {
  LinkConfig link;
  CcStateLayout layout;
  /// Rate multipliers, one per action (must include a no-op-ish value).
  std::vector<double> rate_multipliers = {0.7, 0.93, 1.0, 1.07, 1.4};
  /// Initial sending rate and hard bounds.
  double initial_rate_mbps = 2.0;
  double min_rate_mbps = 0.02;
  double max_rate_mbps = 60.0;
  /// Monitor intervals per episode (connection length).
  std::size_t episode_mis = 400;
  /// Aurora reward weights.
  double throughput_weight = 10.0;
  double latency_weight = 1000.0;
  double loss_weight = 2000.0;
};

class CcEnvironment final : public mdp::Environment {
 public:
  explicit CcEnvironment(CcEnvironmentConfig config = {});

  /// Training mode: Reset() picks a capacity trace uniformly per episode.
  void SetTracePool(std::span<const traces::Trace> pool, std::uint64_t seed);

  /// Evaluation mode: Reset() always replays this trace.
  void SetFixedTrace(const traces::Trace& trace);

  // mdp::Environment
  mdp::State Reset() override;
  mdp::StepResult Step(mdp::Action action) override;
  std::size_t ActionCount() const override {
    return config_.rate_multipliers.size();
  }
  std::size_t StateSize() const override { return config_.layout.Size(); }

  /// Telemetry for logging / the safety layer.
  double CurrentRateMbps() const { return rate_mbps_; }
  const MiReport& LastReport() const { return last_report_; }
  const CcStateLayout& layout() const { return config_.layout; }
  const CcEnvironmentConfig& config() const { return config_; }

 private:
  CcEnvironmentConfig config_;
  BottleneckLink link_;

  std::span<const traces::Trace> pool_;
  Rng pool_rng_;
  const traces::Trace* fixed_trace_ = nullptr;

  double rate_mbps_ = 0.0;
  double min_latency_seconds_ = 0.0;
  double prev_latency_seconds_ = 0.0;
  std::size_t mi_count_ = 0;
  std::vector<double> features_;  // rolling window, oldest-first
  MiReport last_report_;

  mdp::State BuildState() const;
};

}  // namespace osap::cc
