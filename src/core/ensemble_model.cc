#include "core/ensemble_model.h"

#include <algorithm>
#include <cmath>

#include "nn/losses.h"
#include "nn/matrix.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/kl.h"

namespace osap::core {

namespace {

/// Per-thread per-decision scratch: the whole scoring call is allocation-
/// free once these are warm (ensembles are queried once per ABR decision,
/// so this is the hot path the paper's online-cost claim rests on).
struct DecisionScratch {
  nn::InferScratch infer;
  nn::Matrix probs;         // K x ActionCount softmax rows (U_pi only)
  nn::Matrix batch_states;  // B x InputSize state rows (ScoreStates only)
  util::Arena arena;
};

DecisionScratch& LocalDecisionScratch() {
  thread_local DecisionScratch scratch;
  return scratch;
}

/// Allocation-free SurvivingMembers over caller-provided index storage:
/// stable insertion sort by distance (same permutation as the stable_sort
/// in SurvivingMembers), then the kept indices ascending.
std::span<std::size_t> SurviveInto(std::span<const double> distances,
                                   std::size_t keep,
                                   std::span<std::size_t> order) {
  const std::size_t n = distances.size();
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t idx = order[i];
    const double d = distances[idx];
    std::size_t j = i;
    while (j > 0 && distances[order[j - 1]] > d) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = idx;
  }
  std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep));
  return order.first(keep);
}

/// States scored per fused InferBatch pass in ScoreStates. Bounds the
/// scratch activations while still amortizing each member's weight
/// streaming over 32 states (single-state inference is weight-bandwidth
/// bound).
constexpr std::size_t kScoreBatch = 32;

/// U_pi steps 2-3 over the n softmaxed member rows sitting in s.probs:
/// distances from the full-ensemble mean, drop the farthest, sum KL from
/// the survivors' mean. Shared verbatim by every scoring entry so all
/// produce identical bits for a given probs block.
double TrimmedKlScore(DecisionScratch& s, std::size_t n, std::size_t keep) {
  const std::size_t dim = s.probs.cols();
  s.arena.Reset();
  const std::span<double> mean = s.arena.Alloc<double>(dim);
  std::fill(mean.begin(), mean.end(), 0.0);
  for (std::size_t m = 0; m < n; ++m) {
    const double* d = s.probs.data() + m * dim;
    for (std::size_t i = 0; i < dim; ++i) mean[i] += d[i];
  }
  for (std::size_t i = 0; i < dim; ++i) {
    mean[i] /= static_cast<double>(n);
  }
  const std::span<double> distances = s.arena.Alloc<double>(n);
  for (std::size_t m = 0; m < n; ++m) {
    distances[m] = KlDivergence(s.probs.Row(m), mean);
  }
  const std::span<std::size_t> survivors =
      SurviveInto(distances, keep, s.arena.Alloc<std::size_t>(n));

  const std::span<double> kept_mean = s.arena.Alloc<double>(dim);
  std::fill(kept_mean.begin(), kept_mean.end(), 0.0);
  for (const std::size_t idx : survivors) {
    const double* d = s.probs.data() + idx * dim;
    for (std::size_t i = 0; i < dim; ++i) kept_mean[i] += d[i];
  }
  for (std::size_t i = 0; i < dim; ++i) {
    kept_mean[i] /= static_cast<double>(survivors.size());
  }
  double score = 0.0;
  for (const std::size_t idx : survivors) {
    score += KlDivergence(s.probs.Row(idx), kept_mean);
  }
  return score;
}

/// U_V trimming over member values in rows [first_row, first_row + n) of
/// an inference result: mean, drop the farthest, sum absolute deviations
/// from the survivors' mean. Shared verbatim by every scoring entry.
double TrimmedValueScore(DecisionScratch& s, const nn::Matrix& out,
                         std::size_t first_row, std::size_t n,
                         std::size_t keep) {
  s.arena.Reset();
  const std::span<double> values = s.arena.Alloc<double>(n);
  for (std::size_t m = 0; m < n; ++m) values[m] = out.At(first_row + m, 0);
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(n);
  const std::span<double> distances = s.arena.Alloc<double>(n);
  for (std::size_t m = 0; m < n; ++m) {
    distances[m] = std::abs(values[m] - mean);
  }
  const std::span<std::size_t> survivors =
      SurviveInto(distances, keep, s.arena.Alloc<std::size_t>(n));
  double kept_mean = 0.0;
  for (const std::size_t idx : survivors) kept_mean += values[idx];
  kept_mean /= static_cast<double>(survivors.size());
  double score = 0.0;
  for (const std::size_t idx : survivors) {
    score += std::abs(values[idx] - kept_mean);
  }
  return score;
}

/// Packs states[done .. done+batch) into s.batch_states rows (the
/// leading `input` columns of each state, as Infer would read them).
void PackStates(std::span<const mdp::State> states, std::size_t done,
                std::size_t batch, std::size_t input, DecisionScratch& s) {
  s.batch_states.ReshapeUninitialized(batch, input);
  for (std::size_t b = 0; b < batch; ++b) {
    const mdp::State& st = states[done + b];
    OSAP_REQUIRE(st.size() >= input, "ScoreStates: state too narrow");
    std::copy(st.data(), st.data() + input, s.batch_states.Row(b).data());
  }
}

}  // namespace

EnsembleModel::EnsembleModel(Kind kind,
                             std::vector<const nn::CompositeNet*> members,
                             std::size_t discard)
    : batched_(std::move(members)), kind_(kind) {
  OSAP_REQUIRE(discard < batched_.MemberCount(),
               "EnsembleModel: discard must leave >= 1 member");
  if (kind_ == Kind::kValueDeviation) {
    OSAP_REQUIRE(batched_.OutputSize() == 1,
                 "EnsembleModel: value members must output one value");
  }
  keep_ = batched_.MemberCount() - discard;
}

double EnsembleModel::ScoreOne(std::span<const double> state) const {
  DecisionScratch& s = LocalDecisionScratch();
  const std::size_t n = MemberCount();
  const nn::Matrix& out = batched_.Infer(state, s.infer);
  if (kind_ == Kind::kValueDeviation) {
    return TrimmedValueScore(s, out, 0, n, keep_);
  }
  // U_pi: per-member action distributions from the fused logits, then
  // trim the farthest members and sum KL from the survivors' mean. All
  // short-lived arrays come from the arena (pointer bumps after warm-up);
  // the accumulation order matches MeanDistribution (member-major sums,
  // then one divide) so scores are unchanged.
  s.probs.ReshapeUninitialized(n, out.cols());
  for (std::size_t m = 0; m < n; ++m) {
    nn::SoftmaxInto(out.Row(m), s.probs.Row(m));
  }
  return TrimmedKlScore(s, n, keep_);
}

void EnsembleModel::ScoreStates(std::span<const mdp::State> states,
                                std::span<double> out) const {
  OSAP_REQUIRE(out.size() >= states.size(),
               "ScoreStates: output span too short");
  DecisionScratch& s = LocalDecisionScratch();
  const std::size_t n = MemberCount();
  const std::size_t input = InputSize();
  for (std::size_t done = 0; done < states.size(); done += kScoreBatch) {
    const std::size_t batch = std::min(kScoreBatch, states.size() - done);
    PackStates(states, done, batch, input, s);
    const nn::Matrix& result = batched_.InferBatch(s.batch_states, s.infer);
    for (std::size_t b = 0; b < batch; ++b) {
      if (kind_ == Kind::kValueDeviation) {
        out[done + b] = TrimmedValueScore(s, result, b * n, n, keep_);
      } else {
        s.probs.ReshapeUninitialized(n, result.cols());
        for (std::size_t m = 0; m < n; ++m) {
          nn::SoftmaxInto(result.Row(b * n + m), s.probs.Row(m));
        }
        out[done + b] = TrimmedKlScore(s, n, keep_);
      }
    }
  }
}

void EnsembleModel::ScorePacked(const nn::Matrix& states,
                                std::span<double> out,
                                std::span<mdp::Action> greedy_first) const {
  const std::size_t batch = states.rows();
  if (batch == 0) return;
  OSAP_REQUIRE(out.size() >= batch, "ScorePacked: output span too short");
  OSAP_REQUIRE(greedy_first.empty() || (kind_ == Kind::kPolicyKl &&
                                        greedy_first.size() >= batch),
               "ScorePacked: greedy_first needs kPolicyKl and >= B slots");
  DecisionScratch& s = LocalDecisionScratch();
  const std::size_t n = MemberCount();
  // One fused pass over the whole pack: member weights stream exactly once
  // per op for the entire shard batch. Per-row numerics are unchanged
  // (InferBatch rows are bit-identical to Infer), so batch grouping is
  // invisible in the scores.
  const nn::Matrix& result = batched_.InferBatch(states, s.infer);
  for (std::size_t b = 0; b < batch; ++b) {
    if (kind_ == Kind::kValueDeviation) {
      out[b] = TrimmedValueScore(s, result, b * n, n, keep_);
    } else {
      s.probs.ReshapeUninitialized(n, result.cols());
      for (std::size_t m = 0; m < n; ++m) {
        nn::SoftmaxInto(result.Row(b * n + m), s.probs.Row(m));
      }
      if (!greedy_first.empty()) {
        // First maximal probability of member 0's freshly softmaxed row -
        // the exact greedy selection the deployed policy runs on the same
        // bits (see ServingModel::GreedyActions for why the softmax is not
        // skipped).
        const std::span<const double> p0 = s.probs.Row(0);
        greedy_first[b] = static_cast<mdp::Action>(
            std::distance(p0.begin(), std::max_element(p0.begin(), p0.end())));
      }
      out[b] = TrimmedKlScore(s, n, keep_);
    }
  }
}

}  // namespace osap::core
