// SafeAgent: the paper's safety-assurance composition. Wraps a learned
// policy, a battle-tested default policy, an uncertainty estimator and a
// defaulting trigger into a single mdp::Policy. While the trigger has not
// fired, actions come from the learned policy; once it fires, the agent
// transitions to the default policy - permanently for the remainder of the
// session in the paper's setup (kPermanent), or until the signal stays
// quiet for `revoke_after` consecutive steps in the revocable extension we
// ablate (kRevocable, DESIGN.md section 7).
#pragma once

#include <memory>

#include "core/trigger.h"
#include "core/uncertainty.h"
#include "mdp/policy.h"

namespace osap::core {

enum class DefaultingMode {
  kPermanent,  // paper behaviour: default for the rest of the session
  kRevocable,  // ablation: return to the learned policy when safe again
};

struct SafeAgentConfig {
  TriggerConfig trigger;
  DefaultingMode mode = DefaultingMode::kPermanent;
  /// kRevocable: consecutive non-firing, certain steps needed to revoke.
  std::size_t revoke_after = 15;
};

class SafeAgent final : public mdp::Policy {
 public:
  SafeAgent(std::shared_ptr<mdp::Policy> learned,
            std::shared_ptr<mdp::Policy> fallback,
            std::shared_ptr<UncertaintyEstimator> estimator,
            SafeAgentConfig config);

  mdp::Action SelectAction(const mdp::State& state) override;
  void Reset() override;
  std::string Name() const override;

  /// True while actions come from the default policy.
  bool Defaulted() const { return defaulted_; }

  /// Steps taken in the current session (decisions made).
  std::size_t StepCount() const { return steps_; }

  /// Step index at which the agent defaulted (meaningful when Defaulted()
  /// has ever been true this session; 0 otherwise).
  std::size_t DefaultStep() const { return default_step_; }

  /// Fraction of this session's decisions made by the default policy.
  double DefaultedFraction() const;

  const UncertaintyEstimator& estimator() const { return *estimator_; }

 private:
  std::shared_ptr<mdp::Policy> learned_;
  std::shared_ptr<mdp::Policy> fallback_;
  std::shared_ptr<UncertaintyEstimator> estimator_;
  SafeAgentConfig config_;
  DefaultTrigger trigger_;

  bool defaulted_ = false;
  std::size_t steps_ = 0;
  std::size_t default_step_ = 0;
  std::size_t defaulted_steps_ = 0;
  std::size_t certain_streak_ = 0;  // kRevocable bookkeeping
};

}  // namespace osap::core
