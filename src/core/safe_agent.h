// SafeAgent: the paper's safety-assurance composition. Wraps a learned
// policy, a battle-tested default policy, an uncertainty estimator and a
// defaulting trigger into a single mdp::Policy. While the trigger has not
// fired, actions come from the learned policy; once it fires, the agent
// transitions to the default policy - permanently for the remainder of the
// session in the paper's setup (kPermanent), or until the signal stays
// quiet for `revoke_after` consecutive steps in the revocable extension we
// ablate (kRevocable, DESIGN.md section 7).
//
// The defaulting state machine itself lives in SafetyCore (which also
// defines DefaultingMode and SafeAgentConfig); this class binds it to
// concrete policies and an estimator for the one-session sequential loop.
#pragma once

#include <memory>

#include "core/safety_core.h"
#include "core/uncertainty.h"
#include "mdp/policy.h"

namespace osap::core {

class SafeAgent final : public mdp::Policy {
 public:
  SafeAgent(std::shared_ptr<mdp::Policy> learned,
            std::shared_ptr<mdp::Policy> fallback,
            std::shared_ptr<UncertaintyEstimator> estimator,
            SafeAgentConfig config);

  mdp::Action SelectAction(const mdp::State& state) override;
  void Reset() override;
  std::string Name() const override;

  /// True while actions come from the default policy.
  bool Defaulted() const { return core_.Defaulted(); }

  /// Steps taken in the current session (decisions made).
  std::size_t StepCount() const { return core_.StepCount(); }

  /// Step index at which the agent defaulted (meaningful when Defaulted()
  /// has ever been true this session; 0 otherwise).
  std::size_t DefaultStep() const { return core_.DefaultStep(); }

  /// Fraction of this session's decisions made by the default policy.
  double DefaultedFraction() const { return core_.DefaultedFraction(); }

  const UncertaintyEstimator& estimator() const { return *estimator_; }

 private:
  std::shared_ptr<mdp::Policy> learned_;
  std::shared_ptr<mdp::Policy> fallback_;
  std::shared_ptr<UncertaintyEstimator> estimator_;
  SafetyCore core_;
};

}  // namespace osap::core
