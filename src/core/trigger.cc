#include "core/trigger.h"

#include "util/check.h"

namespace osap::core {

DefaultTrigger::DefaultTrigger(TriggerConfig config)
    : config_(config), window_(config.k > 0 ? config.k : 1) {
  OSAP_REQUIRE(config_.l >= 1, "DefaultTrigger: l must be >= 1");
  if (config_.mode == TriggerMode::kWindowVariance) {
    OSAP_REQUIRE(config_.k >= 2,
                 "DefaultTrigger: variance mode needs k >= 2");
    OSAP_REQUIRE(config_.alpha >= 0.0,
                 "DefaultTrigger: alpha must be >= 0");
  }
}

bool DefaultTrigger::Update(double score) {
  bool uncertain = false;
  switch (config_.mode) {
    case TriggerMode::kBinary:
      uncertain = score >= 0.5;
      break;
    case TriggerMode::kWindowVariance:
      window_.Push(score);
      // Not uncertain until the window is populated: variance over a
      // partial window would compare incomparable quantities.
      uncertain = window_.Full() && window_.Variance() > config_.alpha;
      break;
  }
  consecutive_ = uncertain ? consecutive_ + 1 : 0;
  return consecutive_ >= config_.l;
}

void DefaultTrigger::Reset() {
  window_.Reset();
  consecutive_ = 0;
}

}  // namespace osap::core
