#include "core/novelty_detector.h"

#include "util/check.h"

namespace osap::core {

namespace {

void ValidateExtractorConfig(const NoveltyDetectorConfig& config) {
  OSAP_REQUIRE(config.throughput_window >= 2,
               "NoveltyDetector: throughput window must be >= 2");
  OSAP_REQUIRE(config.k >= 1, "NoveltyDetector: k must be >= 1");
}

/// Validates config + storage and returns the window's slice of it.
std::span<double> WindowSlice(const NoveltyDetectorConfig& config,
                              std::span<double> storage) {
  ValidateExtractorConfig(config);
  OSAP_REQUIRE(
      storage.size() >= NoveltyFeatureExtractor::StorageDoubles(config),
      "NoveltyFeatureExtractor: storage too small");
  return storage.first(config.throughput_window);
}

}  // namespace

NoveltyFeatureExtractor::NoveltyFeatureExtractor(
    const NoveltyDetectorConfig& config)
    : window_((ValidateExtractorConfig(config), config.throughput_window)),
      owned_pairs_(new double[2 * config.k]),
      k_(static_cast<std::uint32_t>(config.k)) {
  pairs_ = owned_pairs_.get();
}

NoveltyFeatureExtractor::NoveltyFeatureExtractor(
    const NoveltyDetectorConfig& config, std::span<double> storage)
    : window_(WindowSlice(config, storage)),
      pairs_(storage.data() + config.throughput_window),
      k_(static_cast<std::uint32_t>(config.k)) {}

NoveltyFeatureExtractor::~NoveltyFeatureExtractor() = default;

NoveltyFeatureExtractor::NoveltyFeatureExtractor(
    const NoveltyFeatureExtractor& other)
    : window_(other.window_),  // deep copy into owned storage
      owned_pairs_(new double[2 * other.k_]),
      k_(other.k_),
      head_(other.head_),
      count_(other.count_) {
  pairs_ = owned_pairs_.get();
  // Only the populated region is meaningful (head_ stays 0 until the ring
  // fills, so the valid pairs are the first count_ when warming up and
  // all k_ once full).
  const std::uint32_t valid = 2 * (count_ < k_ ? count_ : k_);
  for (std::uint32_t i = 0; i < valid; ++i) pairs_[i] = other.pairs_[i];
}

NoveltyFeatureExtractor& NoveltyFeatureExtractor::operator=(
    const NoveltyFeatureExtractor& other) {
  if (this == &other) return *this;
  NoveltyFeatureExtractor copy(other);
  *this = std::move(copy);
  return *this;
}

NoveltyFeatureExtractor::NoveltyFeatureExtractor(
    NoveltyFeatureExtractor&& other) noexcept
    : window_(std::move(other.window_)),
      pairs_(other.pairs_),
      owned_pairs_(std::move(other.owned_pairs_)),
      k_(other.k_),
      head_(other.head_),
      count_(other.count_) {
  other.pairs_ = nullptr;
  other.k_ = other.head_ = other.count_ = 0;
}

NoveltyFeatureExtractor& NoveltyFeatureExtractor::operator=(
    NoveltyFeatureExtractor&& other) noexcept {
  if (this == &other) return *this;
  window_ = std::move(other.window_);
  owned_pairs_ = std::move(other.owned_pairs_);
  pairs_ = other.pairs_;
  k_ = other.k_;
  head_ = other.head_;
  count_ = other.count_;
  other.pairs_ = nullptr;
  other.k_ = other.head_ = other.count_ = 0;
  return *this;
}

std::optional<std::vector<double>> NoveltyFeatureExtractor::Push(
    double throughput_mbps) {
  std::vector<double> feature(2 * static_cast<std::size_t>(k_));
  if (!Push(throughput_mbps, feature)) return std::nullopt;
  return feature;
}

bool NoveltyFeatureExtractor::Push(double throughput_mbps,
                                   std::span<double> out) {
  OSAP_REQUIRE(out.size() >= 2 * static_cast<std::size_t>(k_),
               "NoveltyFeatureExtractor::Push: output span too short");
  window_.Push(throughput_mbps);
  if (!window_.Full()) return false;
  // Overwrite the oldest slot; until the ring fills, the oldest slot is
  // simply the next unused one.
  const std::uint32_t slot = (head_ + count_) % k_;
  pairs_[2 * slot] = window_.Mean();
  pairs_[2 * slot + 1] = window_.StdDev();
  if (count_ < k_) {
    ++count_;
  } else {
    head_ = (head_ + 1) % k_;
  }
  if (count_ < k_) return false;
  std::size_t i = 0;
  for (std::uint32_t p = 0; p < k_; ++p) {
    const std::uint32_t source = (head_ + p) % k_;
    out[i++] = pairs_[2 * source];
    out[i++] = pairs_[2 * source + 1];
  }
  return true;
}

void NoveltyFeatureExtractor::Reset() {
  window_.Reset();
  head_ = 0;
  count_ = 0;
}

NoveltyDetector::NoveltyDetector(NoveltyDetectorConfig config,
                                 const abr::AbrStateLayout& layout)
    : NoveltyDetector(config, [layout](const mdp::State& s) {
        OSAP_REQUIRE(s.size() == layout.Size(),
                     "NoveltyDetector: state size mismatch");
        return layout.LatestThroughputMbps(s);
      }) {}

NoveltyDetector::NoveltyDetector(NoveltyDetectorConfig config, Probe probe)
    : config_(config),
      probe_(std::move(probe)),
      model_(config.svm),
      extractor_(config) {
  OSAP_REQUIRE(probe_ != nullptr, "NoveltyDetector: null probe");
}

std::vector<std::vector<double>> NoveltyDetector::ExtractFeatures(
    std::span<const double> throughput_sequence,
    const NoveltyDetectorConfig& config) {
  NoveltyFeatureExtractor extractor(config);
  std::vector<std::vector<double>> features;
  for (double mbps : throughput_sequence) {
    if (auto feature = extractor.Push(mbps)) {
      features.push_back(std::move(*feature));
    }
  }
  return features;
}

void NoveltyDetector::Fit(
    const std::vector<std::vector<double>>& features) {
  OSAP_REQUIRE(!features.empty(),
               "NoveltyDetector::Fit: no features (sessions too short for "
               "the configured window and k?)");
  model_.Fit(features);
}

void NoveltyDetector::Reset() {
  extractor_.Reset();
  ready_ = false;
}

double NoveltyDetector::Score(const mdp::State& state) {
  OSAP_REQUIRE(Fitted(), "NoveltyDetector::Score before Fit/LoadModel");
  const double observation = probe_(state);
  // Warm-up steps (before the first measurement) report non-positive
  // observations; feeding those would poison the window.
  if (observation <= 0.0) return 0.0;
  const auto feature = extractor_.Push(observation);
  if (!feature.has_value()) {
    ready_ = false;
    return 0.0;
  }
  ready_ = true;
  return model_.IsInlier(*feature) ? 0.0 : 1.0;
}

void NoveltyDetector::Save(const std::filesystem::path& path) const {
  model_.Save(path);
}

void NoveltyDetector::LoadModel(const std::filesystem::path& path) {
  model_ = svm::OneClassSvm::Load(path);
}

}  // namespace osap::core
