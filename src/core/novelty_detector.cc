#include "core/novelty_detector.h"

#include "util/check.h"

namespace osap::core {

NoveltyFeatureExtractor::NoveltyFeatureExtractor(
    const NoveltyDetectorConfig& config)
    : config_(config), window_(config.throughput_window) {
  OSAP_REQUIRE(config.throughput_window >= 2,
               "NoveltyDetector: throughput window must be >= 2");
  OSAP_REQUIRE(config.k >= 1, "NoveltyDetector: k must be >= 1");
  pairs_.resize(config.k);
}

std::optional<std::vector<double>> NoveltyFeatureExtractor::Push(
    double throughput_mbps) {
  std::vector<double> feature(2 * config_.k);
  if (!Push(throughput_mbps, feature)) return std::nullopt;
  return feature;
}

bool NoveltyFeatureExtractor::Push(double throughput_mbps,
                                   std::span<double> out) {
  OSAP_REQUIRE(out.size() >= 2 * config_.k,
               "NoveltyFeatureExtractor::Push: output span too short");
  window_.Push(throughput_mbps);
  if (!window_.Full()) return false;
  // Overwrite the oldest slot; until the ring fills, the oldest slot is
  // simply the next unused one.
  const std::size_t slot = (head_ + count_) % config_.k;
  pairs_[slot] = {window_.Mean(), window_.StdDev()};
  if (count_ < config_.k) {
    ++count_;
  } else {
    head_ = (head_ + 1) % config_.k;
  }
  if (count_ < config_.k) return false;
  std::size_t i = 0;
  for (std::size_t p = 0; p < config_.k; ++p) {
    const auto& [mean, stddev] = pairs_[(head_ + p) % config_.k];
    out[i++] = mean;
    out[i++] = stddev;
  }
  return true;
}

void NoveltyFeatureExtractor::Reset() {
  window_.Reset();
  head_ = 0;
  count_ = 0;
}

NoveltyDetector::NoveltyDetector(NoveltyDetectorConfig config,
                                 const abr::AbrStateLayout& layout)
    : NoveltyDetector(config, [layout](const mdp::State& s) {
        OSAP_REQUIRE(s.size() == layout.Size(),
                     "NoveltyDetector: state size mismatch");
        return layout.LatestThroughputMbps(s);
      }) {}

NoveltyDetector::NoveltyDetector(NoveltyDetectorConfig config, Probe probe)
    : config_(config),
      probe_(std::move(probe)),
      model_(config.svm),
      extractor_(config) {
  OSAP_REQUIRE(probe_ != nullptr, "NoveltyDetector: null probe");
}

std::vector<std::vector<double>> NoveltyDetector::ExtractFeatures(
    std::span<const double> throughput_sequence,
    const NoveltyDetectorConfig& config) {
  NoveltyFeatureExtractor extractor(config);
  std::vector<std::vector<double>> features;
  for (double mbps : throughput_sequence) {
    if (auto feature = extractor.Push(mbps)) {
      features.push_back(std::move(*feature));
    }
  }
  return features;
}

void NoveltyDetector::Fit(
    const std::vector<std::vector<double>>& features) {
  OSAP_REQUIRE(!features.empty(),
               "NoveltyDetector::Fit: no features (sessions too short for "
               "the configured window and k?)");
  model_.Fit(features);
}

void NoveltyDetector::Reset() {
  extractor_.Reset();
  ready_ = false;
}

double NoveltyDetector::Score(const mdp::State& state) {
  OSAP_REQUIRE(Fitted(), "NoveltyDetector::Score before Fit/LoadModel");
  const double observation = probe_(state);
  // Warm-up steps (before the first measurement) report non-positive
  // observations; feeding those would poison the window.
  if (observation <= 0.0) return 0.0;
  const auto feature = extractor_.Push(observation);
  if (!feature.has_value()) {
    ready_ = false;
    return 0.0;
  }
  ready_ = true;
  return model_.IsInlier(*feature) ? 0.0 : 1.0;
}

void NoveltyDetector::Save(const std::filesystem::path& path) const {
  model_.Save(path);
}

void NoveltyDetector::LoadModel(const std::filesystem::path& path) {
  model_ = svm::OneClassSvm::Load(path);
}

}  // namespace osap::core
