// U_pi and U_V: output-side uncertainty via ensemble disagreement (paper
// Sections 2.4 and 3.1).
//
// Both estimators hold an ensemble of i = 5 networks trained identically
// except for weight initialization. Per decision:
//   1. every member produces its output for the current state (an action
//      distribution for U_pi, a scalar value for U_V);
//   2. the `discard` = 2 outputs farthest from the ensemble average are
//      dropped (the paper's robustification);
//   3. the uncertainty is the sum of distances of the surviving outputs
//      from the survivors' average - KL divergence for distributions,
//      absolute deviation for values.
//
// The scoring math and packed member weights live in the shared, immutable
// core::EnsembleModel (one per ensemble per process); these classes are
// thin stateless adapters onto the UncertaintyEstimator interface. The
// serving path skips the adapter and batches states from many sessions
// straight through the model (see src/serve/).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/ensemble_model.h"
#include "core/uncertainty.h"
#include "nn/actor_critic_net.h"
#include "nn/sequential.h"

namespace osap::core {

/// Shared trimming logic: given per-member distances from the full-ensemble
/// mean, returns the indices of the `keep` members with smallest distance
/// (stable order). Exposed for tests.
std::vector<std::size_t> SurvivingMembers(
    const std::vector<double>& distances_from_mean, std::size_t keep);

/// U_pi: sum of KL divergences of surviving members' action distributions
/// from the survivors' mean distribution.
class AgentEnsembleEstimator final : public UncertaintyEstimator {
 public:
  AgentEnsembleEstimator(
      std::vector<std::shared_ptr<nn::ActorCriticNet>> members,
      std::size_t discard = 2);

  void Reset() override {}
  double Score(const mdp::State& state) override;
  void ScoreBatch(std::span<const mdp::State> states,
                  std::span<double> out) override;
  bool Ready() const override { return true; }
  std::string Name() const override { return "agent_ensemble"; }

  std::size_t MemberCount() const { return members_.size(); }

  /// The shared immutable scoring model (weight snapshot + trim math).
  std::shared_ptr<const EnsembleModel> model() const { return model_; }

 private:
  std::vector<std::shared_ptr<nn::ActorCriticNet>> members_;
  std::shared_ptr<const EnsembleModel> model_;
};

/// U_V: sum of absolute deviations of surviving members' values from the
/// survivors' mean value.
class ValueEnsembleEstimator final : public UncertaintyEstimator {
 public:
  ValueEnsembleEstimator(
      std::vector<std::shared_ptr<nn::CompositeNet>> members,
      std::size_t discard = 2);

  void Reset() override {}
  double Score(const mdp::State& state) override;
  void ScoreBatch(std::span<const mdp::State> states,
                  std::span<double> out) override;
  bool Ready() const override { return true; }
  std::string Name() const override { return "value_ensemble"; }

  std::size_t MemberCount() const { return members_.size(); }

  /// The shared immutable scoring model (weight snapshot + trim math).
  std::shared_ptr<const EnsembleModel> model() const { return model_; }

 private:
  std::vector<std::shared_ptr<nn::CompositeNet>> members_;
  std::shared_ptr<const EnsembleModel> model_;
};

}  // namespace osap::core
