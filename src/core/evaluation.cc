#include "core/evaluation.h"

#include <optional>

#include "mdp/rollout.h"
#include "util/check.h"

namespace osap::core {

EvalResult EvaluatePolicy(mdp::Policy& policy, abr::AbrEnvironment& env,
                          std::span<const traces::Trace> traces) {
  OSAP_REQUIRE(!traces.empty(), "EvaluatePolicy: no traces");
  EvalResult result;
  result.per_trace_qoe.reserve(traces.size());
  for (const traces::Trace& trace : traces) {
    env.SetFixedTrace(trace);
    const mdp::Trajectory trajectory = mdp::Rollout(env, policy);
    OSAP_CHECK_MSG(!trajectory.Empty(), "EvaluatePolicy: empty session");
    result.per_trace_qoe.push_back(trajectory.TotalReward());
  }
  return result;
}

EvalResult EvaluatePolicyParallel(
    const std::function<std::shared_ptr<mdp::Policy>()>& make_policy,
    const abr::AbrEnvironment& env, std::span<const traces::Trace> traces,
    util::ThreadPool& pool, util::ParallelOptions options) {
  OSAP_REQUIRE(!traces.empty(), "EvaluatePolicy: no traces");
  EvalResult result;
  result.per_trace_qoe.assign(traces.size(), 0.0);
  // One policy + environment per participating thread, built on that
  // thread's first claimed trace and reused for the rest of its items.
  // Cache-line alignment keeps neighboring threads' scratch (notably the
  // environment's mutable buffer/chunk state) off shared lines.
  struct alignas(64) WorkerScratch {
    std::shared_ptr<mdp::Policy> policy;
    std::optional<abr::AbrEnvironment> env;
  };
  std::vector<WorkerScratch> scratch(pool.SlotCount());
  if (options.chunk == 0) options.chunk = 1;  // items are whole sessions
  pool.ParallelFor(
      0, traces.size(),
      [&](std::size_t i) {
        WorkerScratch& ws = scratch[util::ThreadPool::CurrentSlot()];
        if (ws.policy == nullptr) {
          ws.policy = make_policy();
          OSAP_CHECK_MSG(ws.policy != nullptr,
                         "EvaluatePolicyParallel: null policy");
          ws.env.emplace(env);
        }
        ws.env->SetFixedTrace(traces[i]);
        const mdp::Trajectory trajectory = mdp::Rollout(*ws.env, *ws.policy);
        OSAP_CHECK_MSG(!trajectory.Empty(), "EvaluatePolicy: empty session");
        result.per_trace_qoe[i] = trajectory.TotalReward();
      },
      options);
  return result;
}

}  // namespace osap::core
