#include "core/evaluation.h"

#include "mdp/rollout.h"
#include "util/check.h"

namespace osap::core {

EvalResult EvaluatePolicy(mdp::Policy& policy, abr::AbrEnvironment& env,
                          std::span<const traces::Trace> traces) {
  OSAP_REQUIRE(!traces.empty(), "EvaluatePolicy: no traces");
  EvalResult result;
  result.per_trace_qoe.reserve(traces.size());
  for (const traces::Trace& trace : traces) {
    env.SetFixedTrace(trace);
    const mdp::Trajectory trajectory = mdp::Rollout(env, policy);
    OSAP_CHECK_MSG(!trajectory.Empty(), "EvaluatePolicy: empty session");
    result.per_trace_qoe.push_back(trajectory.TotalReward());
  }
  return result;
}

EvalResult EvaluatePolicyParallel(
    const std::function<std::shared_ptr<mdp::Policy>()>& make_policy,
    const abr::AbrEnvironment& env, std::span<const traces::Trace> traces,
    util::ThreadPool& pool) {
  OSAP_REQUIRE(!traces.empty(), "EvaluatePolicy: no traces");
  EvalResult result;
  result.per_trace_qoe.assign(traces.size(), 0.0);
  pool.ParallelFor(0, traces.size(), [&](std::size_t i) {
    std::shared_ptr<mdp::Policy> policy = make_policy();
    OSAP_CHECK_MSG(policy != nullptr, "EvaluatePolicyParallel: null policy");
    abr::AbrEnvironment local_env = env;
    local_env.SetFixedTrace(traces[i]);
    const mdp::Trajectory trajectory = mdp::Rollout(local_env, *policy);
    OSAP_CHECK_MSG(!trajectory.Empty(), "EvaluatePolicy: empty session");
    result.per_trace_qoe[i] = trajectory.TotalReward();
  });
  return result;
}

}  // namespace osap::core
