#include "core/evaluation.h"

#include "mdp/rollout.h"
#include "util/check.h"

namespace osap::core {

EvalResult EvaluatePolicy(mdp::Policy& policy, abr::AbrEnvironment& env,
                          std::span<const traces::Trace> traces) {
  OSAP_REQUIRE(!traces.empty(), "EvaluatePolicy: no traces");
  EvalResult result;
  result.per_trace_qoe.reserve(traces.size());
  for (const traces::Trace& trace : traces) {
    env.SetFixedTrace(trace);
    const mdp::Trajectory trajectory = mdp::Rollout(env, policy);
    OSAP_CHECK_MSG(!trajectory.Empty(), "EvaluatePolicy: empty session");
    result.per_trace_qoe.push_back(trajectory.TotalReward());
  }
  return result;
}

}  // namespace osap::core
