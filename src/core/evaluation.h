// Deterministic policy evaluation over a set of test traces: one full
// video session per trace, QoE per session. All figure benches reduce to
// this primitive.
#pragma once

#include <span>
#include <vector>

#include "abr/abr_environment.h"
#include "mdp/policy.h"
#include "traces/trace.h"
#include "util/stats.h"

namespace osap::core {

struct EvalResult {
  /// Session QoE per evaluated trace (order matches the trace span).
  std::vector<double> per_trace_qoe;

  double MeanQoe() const { return Mean(per_trace_qoe); }
  Summary Summarize() const { return osap::Summarize(per_trace_qoe); }
};

/// Streams one full video per trace under `policy` and records session QoE.
/// The policy (and, for SafeAgent, its estimator/trigger) is Reset before
/// every session.
EvalResult EvaluatePolicy(mdp::Policy& policy, abr::AbrEnvironment& env,
                          std::span<const traces::Trace> traces);

}  // namespace osap::core
