// Deterministic policy evaluation over a set of test traces: one full
// video session per trace, QoE per session. All figure benches reduce to
// this primitive.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "abr/abr_environment.h"
#include "mdp/policy.h"
#include "traces/trace.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace osap::core {

struct EvalResult {
  /// Session QoE per evaluated trace (order matches the trace span).
  std::vector<double> per_trace_qoe;

  double MeanQoe() const { return Mean(per_trace_qoe); }
  Summary Summarize() const { return osap::Summarize(per_trace_qoe); }
};

/// Streams one full video per trace under `policy` and records session QoE.
/// The policy (and, for SafeAgent, its estimator/trigger) is Reset before
/// every session.
EvalResult EvaluatePolicy(mdp::Policy& policy, abr::AbrEnvironment& env,
                          std::span<const traces::Trace> traces);

/// Parallel variant: per-trace rollouts are distributed over the pool,
/// each participating thread working on its own copy of `env` with its
/// own policy from `make_policy` (called at most once per thread, possibly
/// concurrently - it must be thread-safe; the policy and environment are
/// then reused across every trace that thread claims). Results are
/// written by trace index, so the output is bit-identical to
/// EvaluatePolicy whenever a fresh policy behaves like a Reset one -
/// Rollout Resets the policy before each session - which is true for
/// every scheme here except RandomPolicy, whose RNG deliberately carries
/// across sessions (evaluate it serially).
///
/// `options.max_workers` caps how many pool workers join (the threads
/// knob for a shared pool); `options.chunk` defaults to 1 because each
/// item is a whole video session.
EvalResult EvaluatePolicyParallel(
    const std::function<std::shared_ptr<mdp::Policy>()>& make_policy,
    const abr::AbrEnvironment& env, std::span<const traces::Trace> traces,
    util::ThreadPool& pool, util::ParallelOptions options = {});

}  // namespace osap::core
