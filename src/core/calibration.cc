#include "core/calibration.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/stats.h"

namespace osap::core {

CalibrationResult CalibrateAlpha(
    const std::function<double(double)>& in_dist_qoe, double target_qoe,
    double alpha_lo, double alpha_hi, const CalibrationConfig& config) {
  OSAP_REQUIRE(alpha_lo >= 0.0 && alpha_hi > alpha_lo,
               "CalibrateAlpha: need 0 <= alpha_lo < alpha_hi");
  OSAP_REQUIRE(config.max_iterations >= 1,
               "CalibrateAlpha: need >= 1 iteration");

  CalibrationResult best;
  best.target_qoe = target_qoe;
  double best_gap = std::numeric_limits<double>::infinity();
  double lo = alpha_lo;
  double hi = alpha_hi;
  const double tol = config.tolerance * std::max(std::abs(target_qoe), 1.0);

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double qoe = in_dist_qoe(mid);
    const double gap = std::abs(qoe - target_qoe);
    if (gap < best_gap) {
      best_gap = gap;
      best.alpha = mid;
      best.achieved_qoe = qoe;
    }
    best.iterations = it + 1;
    if (gap <= tol) break;
    // QoE increases with alpha in-distribution: too low means we are
    // defaulting too eagerly, so raise the threshold.
    if (qoe < target_qoe) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace osap::core
