#include "core/ensemble_estimators.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace osap::core {

std::vector<std::size_t> SurvivingMembers(
    const std::vector<double>& distances_from_mean, std::size_t keep) {
  OSAP_REQUIRE(keep > 0 && keep <= distances_from_mean.size(),
               "SurvivingMembers: keep must be in [1, member count]");
  std::vector<std::size_t> order(distances_from_mean.size());
  std::iota(order.begin(), order.end(), 0);
  // Stable sort so equal distances keep ensemble order (determinism).
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return distances_from_mean[a] < distances_from_mean[b];
                   });
  order.resize(keep);
  std::sort(order.begin(), order.end());
  return order;
}

namespace {

// Null members become null pointers here so BatchedEnsemble's own
// validation (throwing std::invalid_argument) runs before any dereference.
std::vector<const nn::CompositeNet*> ActorViews(
    const std::vector<std::shared_ptr<nn::ActorCriticNet>>& members) {
  std::vector<const nn::CompositeNet*> views;
  views.reserve(members.size());
  for (const auto& m : members) views.push_back(m ? &m->actor() : nullptr);
  return views;
}

std::vector<const nn::CompositeNet*> NetViews(
    const std::vector<std::shared_ptr<nn::CompositeNet>>& members) {
  std::vector<const nn::CompositeNet*> views;
  views.reserve(members.size());
  for (const auto& m : members) views.push_back(m.get());
  return views;
}

}  // namespace

AgentEnsembleEstimator::AgentEnsembleEstimator(
    std::vector<std::shared_ptr<nn::ActorCriticNet>> members,
    std::size_t discard)
    : members_(std::move(members)),
      model_(std::make_shared<const EnsembleModel>(
          EnsembleModel::Kind::kPolicyKl, ActorViews(members_), discard)) {}

double AgentEnsembleEstimator::Score(const mdp::State& state) {
  return model_->ScoreOne(state);
}

void AgentEnsembleEstimator::ScoreBatch(std::span<const mdp::State> states,
                                        std::span<double> out) {
  model_->ScoreStates(states, out);
}

ValueEnsembleEstimator::ValueEnsembleEstimator(
    std::vector<std::shared_ptr<nn::CompositeNet>> members,
    std::size_t discard)
    : members_(std::move(members)),
      model_(std::make_shared<const EnsembleModel>(
          EnsembleModel::Kind::kValueDeviation, NetViews(members_),
          discard)) {}

double ValueEnsembleEstimator::Score(const mdp::State& state) {
  return model_->ScoreOne(state);
}

void ValueEnsembleEstimator::ScoreBatch(std::span<const mdp::State> states,
                                        std::span<double> out) {
  model_->ScoreStates(states, out);
}

}  // namespace osap::core
