#include "core/ensemble_estimators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/losses.h"
#include "nn/matrix.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/kl.h"

namespace osap::core {

std::vector<std::size_t> SurvivingMembers(
    const std::vector<double>& distances_from_mean, std::size_t keep) {
  OSAP_REQUIRE(keep > 0 && keep <= distances_from_mean.size(),
               "SurvivingMembers: keep must be in [1, member count]");
  std::vector<std::size_t> order(distances_from_mean.size());
  std::iota(order.begin(), order.end(), 0);
  // Stable sort so equal distances keep ensemble order (determinism).
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return distances_from_mean[a] < distances_from_mean[b];
                   });
  order.resize(keep);
  std::sort(order.begin(), order.end());
  return order;
}

namespace {

// Null members become null pointers here so BatchedEnsemble's own
// validation (throwing std::invalid_argument) runs before any dereference.
std::vector<const nn::CompositeNet*> ActorViews(
    const std::vector<std::shared_ptr<nn::ActorCriticNet>>& members) {
  std::vector<const nn::CompositeNet*> views;
  views.reserve(members.size());
  for (const auto& m : members) views.push_back(m ? &m->actor() : nullptr);
  return views;
}

std::vector<const nn::CompositeNet*> NetViews(
    const std::vector<std::shared_ptr<nn::CompositeNet>>& members) {
  std::vector<const nn::CompositeNet*> views;
  views.reserve(members.size());
  for (const auto& m : members) views.push_back(m.get());
  return views;
}

/// Per-thread per-decision scratch: the whole Score call is allocation-
/// free once these are warm (ensembles are queried once per ABR decision,
/// so this is the hot path the paper's online-cost claim rests on).
struct DecisionScratch {
  nn::InferScratch infer;
  nn::Matrix probs;         // K x ActionCount softmax rows (U_pi only)
  nn::Matrix batch_states;  // B x InputSize state rows (ScoreBatch only)
  util::Arena arena;
};

DecisionScratch& LocalDecisionScratch() {
  thread_local DecisionScratch scratch;
  return scratch;
}

/// Allocation-free SurvivingMembers over caller-provided index storage:
/// stable insertion sort by distance (same permutation as the stable_sort
/// in SurvivingMembers), then the kept indices ascending.
std::span<std::size_t> SurviveInto(std::span<const double> distances,
                                   std::size_t keep,
                                   std::span<std::size_t> order) {
  const std::size_t n = distances.size();
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t idx = order[i];
    const double d = distances[idx];
    std::size_t j = i;
    while (j > 0 && distances[order[j - 1]] > d) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = idx;
  }
  std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep));
  return order.first(keep);
}

/// States scored per fused InferBatch pass. Bounds the scratch
/// activations while still amortizing each member's weight streaming
/// over 32 states (single-state inference is weight-bandwidth bound).
constexpr std::size_t kScoreBatch = 32;

/// U_pi steps 2-3 over the n softmaxed member rows sitting in s.probs:
/// distances from the full-ensemble mean, drop the farthest, sum KL from
/// the survivors' mean. Shared verbatim by Score and ScoreBatch so both
/// produce identical bits for a given probs block.
double TrimmedKlScore(DecisionScratch& s, std::size_t n, std::size_t keep) {
  const std::size_t dim = s.probs.cols();
  s.arena.Reset();
  const std::span<double> mean = s.arena.Alloc<double>(dim);
  std::fill(mean.begin(), mean.end(), 0.0);
  for (std::size_t m = 0; m < n; ++m) {
    const double* d = s.probs.data() + m * dim;
    for (std::size_t i = 0; i < dim; ++i) mean[i] += d[i];
  }
  for (std::size_t i = 0; i < dim; ++i) {
    mean[i] /= static_cast<double>(n);
  }
  const std::span<double> distances = s.arena.Alloc<double>(n);
  for (std::size_t m = 0; m < n; ++m) {
    distances[m] = KlDivergence(s.probs.Row(m), mean);
  }
  const std::span<std::size_t> survivors =
      SurviveInto(distances, keep, s.arena.Alloc<std::size_t>(n));

  const std::span<double> kept_mean = s.arena.Alloc<double>(dim);
  std::fill(kept_mean.begin(), kept_mean.end(), 0.0);
  for (const std::size_t idx : survivors) {
    const double* d = s.probs.data() + idx * dim;
    for (std::size_t i = 0; i < dim; ++i) kept_mean[i] += d[i];
  }
  for (std::size_t i = 0; i < dim; ++i) {
    kept_mean[i] /= static_cast<double>(survivors.size());
  }
  double score = 0.0;
  for (const std::size_t idx : survivors) {
    score += KlDivergence(s.probs.Row(idx), kept_mean);
  }
  return score;
}

/// U_V trimming over member values in rows [first_row, first_row + n) of
/// an inference result: mean, drop the farthest, sum absolute deviations
/// from the survivors' mean. Shared verbatim by Score and ScoreBatch.
double TrimmedValueScore(DecisionScratch& s, const nn::Matrix& out,
                         std::size_t first_row, std::size_t n,
                         std::size_t keep) {
  s.arena.Reset();
  const std::span<double> values = s.arena.Alloc<double>(n);
  for (std::size_t m = 0; m < n; ++m) values[m] = out.At(first_row + m, 0);
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(n);
  const std::span<double> distances = s.arena.Alloc<double>(n);
  for (std::size_t m = 0; m < n; ++m) {
    distances[m] = std::abs(values[m] - mean);
  }
  const std::span<std::size_t> survivors =
      SurviveInto(distances, keep, s.arena.Alloc<std::size_t>(n));
  double kept_mean = 0.0;
  for (const std::size_t idx : survivors) kept_mean += values[idx];
  kept_mean /= static_cast<double>(survivors.size());
  double score = 0.0;
  for (const std::size_t idx : survivors) {
    score += std::abs(values[idx] - kept_mean);
  }
  return score;
}

/// Packs states[done .. done+batch) into s.batch_states rows (the
/// leading `input` columns of each state, as Infer would read them).
void PackStates(std::span<const mdp::State> states, std::size_t done,
                std::size_t batch, std::size_t input, DecisionScratch& s) {
  s.batch_states.ReshapeUninitialized(batch, input);
  for (std::size_t b = 0; b < batch; ++b) {
    const mdp::State& st = states[done + b];
    OSAP_REQUIRE(st.size() >= input, "ScoreBatch: state too narrow");
    std::copy(st.data(), st.data() + input, s.batch_states.Row(b).data());
  }
}

}  // namespace

AgentEnsembleEstimator::AgentEnsembleEstimator(
    std::vector<std::shared_ptr<nn::ActorCriticNet>> members,
    std::size_t discard)
    : members_(std::move(members)), batched_actors_(ActorViews(members_)) {
  OSAP_REQUIRE(discard < members_.size(),
               "AgentEnsembleEstimator: discard must leave >= 1 member");
  keep_ = members_.size() - discard;
}

double AgentEnsembleEstimator::Score(const mdp::State& state) {
  DecisionScratch& s = LocalDecisionScratch();
  const std::size_t n = members_.size();

  // 1. Per-member action distributions via one fused batched pass.
  const nn::Matrix& logits = batched_actors_.Infer(state, s.infer);
  s.probs.ReshapeUninitialized(n, logits.cols());
  for (std::size_t m = 0; m < n; ++m) {
    nn::SoftmaxInto(logits.Row(m), s.probs.Row(m));
  }

  // 2-3. Trim the farthest members and sum KL from the survivors' mean.
  // All short-lived arrays come from the arena (pointer bumps after
  // warm-up); the accumulation order matches MeanDistribution
  // (member-major sums, then one divide) so scores are unchanged.
  return TrimmedKlScore(s, n, keep_);
}

void AgentEnsembleEstimator::ScoreBatch(std::span<const mdp::State> states,
                                        std::span<double> out) {
  OSAP_REQUIRE(out.size() >= states.size(),
               "ScoreBatch: output span too short");
  DecisionScratch& s = LocalDecisionScratch();
  const std::size_t n = members_.size();
  const std::size_t input = batched_actors_.InputSize();
  for (std::size_t done = 0; done < states.size(); done += kScoreBatch) {
    const std::size_t batch = std::min(kScoreBatch, states.size() - done);
    PackStates(states, done, batch, input, s);
    const nn::Matrix& logits = batched_actors_.InferBatch(s.batch_states,
                                                          s.infer);
    for (std::size_t b = 0; b < batch; ++b) {
      s.probs.ReshapeUninitialized(n, logits.cols());
      for (std::size_t m = 0; m < n; ++m) {
        nn::SoftmaxInto(logits.Row(b * n + m), s.probs.Row(m));
      }
      out[done + b] = TrimmedKlScore(s, n, keep_);
    }
  }
}

ValueEnsembleEstimator::ValueEnsembleEstimator(
    std::vector<std::shared_ptr<nn::CompositeNet>> members,
    std::size_t discard)
    : members_(std::move(members)), batched_values_(NetViews(members_)) {
  OSAP_REQUIRE(discard < members_.size(),
               "ValueEnsembleEstimator: discard must leave >= 1 member");
  for (const auto& m : members_) {
    OSAP_REQUIRE(m->OutputSize() == 1,
                 "ValueEnsembleEstimator: members must output one value");
  }
  keep_ = members_.size() - discard;
}

double ValueEnsembleEstimator::Score(const mdp::State& state) {
  DecisionScratch& s = LocalDecisionScratch();
  const nn::Matrix& out = batched_values_.Infer(state, s.infer);
  return TrimmedValueScore(s, out, 0, members_.size(), keep_);
}

void ValueEnsembleEstimator::ScoreBatch(std::span<const mdp::State> states,
                                        std::span<double> out) {
  OSAP_REQUIRE(out.size() >= states.size(),
               "ScoreBatch: output span too short");
  DecisionScratch& s = LocalDecisionScratch();
  const std::size_t n = members_.size();
  const std::size_t input = batched_values_.InputSize();
  for (std::size_t done = 0; done < states.size(); done += kScoreBatch) {
    const std::size_t batch = std::min(kScoreBatch, states.size() - done);
    PackStates(states, done, batch, input, s);
    const nn::Matrix& vals = batched_values_.InferBatch(s.batch_states,
                                                        s.infer);
    for (std::size_t b = 0; b < batch; ++b) {
      out[done + b] = TrimmedValueScore(s, vals, b * n, n, keep_);
    }
  }
}

}  // namespace osap::core
