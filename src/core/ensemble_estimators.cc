#include "core/ensemble_estimators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/losses.h"
#include "nn/matrix.h"
#include "util/check.h"
#include "util/kl.h"

namespace osap::core {

std::vector<std::size_t> SurvivingMembers(
    const std::vector<double>& distances_from_mean, std::size_t keep) {
  OSAP_REQUIRE(keep > 0 && keep <= distances_from_mean.size(),
               "SurvivingMembers: keep must be in [1, member count]");
  std::vector<std::size_t> order(distances_from_mean.size());
  std::iota(order.begin(), order.end(), 0);
  // Stable sort so equal distances keep ensemble order (determinism).
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return distances_from_mean[a] < distances_from_mean[b];
                   });
  order.resize(keep);
  std::sort(order.begin(), order.end());
  return order;
}

namespace {

// Null members become null pointers here so BatchedEnsemble's own
// validation (throwing std::invalid_argument) runs before any dereference.
std::vector<const nn::CompositeNet*> ActorViews(
    const std::vector<std::shared_ptr<nn::ActorCriticNet>>& members) {
  std::vector<const nn::CompositeNet*> views;
  views.reserve(members.size());
  for (const auto& m : members) views.push_back(m ? &m->actor() : nullptr);
  return views;
}

std::vector<const nn::CompositeNet*> NetViews(
    const std::vector<std::shared_ptr<nn::CompositeNet>>& members) {
  std::vector<const nn::CompositeNet*> views;
  views.reserve(members.size());
  for (const auto& m : members) views.push_back(m.get());
  return views;
}

nn::InferScratch& EstimatorScratch() {
  thread_local nn::InferScratch scratch;
  return scratch;
}

}  // namespace

AgentEnsembleEstimator::AgentEnsembleEstimator(
    std::vector<std::shared_ptr<nn::ActorCriticNet>> members,
    std::size_t discard)
    : members_(std::move(members)), batched_actors_(ActorViews(members_)) {
  OSAP_REQUIRE(discard < members_.size(),
               "AgentEnsembleEstimator: discard must leave >= 1 member");
  keep_ = members_.size() - discard;
}

double AgentEnsembleEstimator::Score(const mdp::State& state) {
  // 1. Per-member action distributions via one fused batched pass.
  const nn::Matrix& logits = batched_actors_.Infer(state, EstimatorScratch());
  std::vector<std::vector<double>> dists;
  dists.reserve(members_.size());
  for (std::size_t m = 0; m < members_.size(); ++m) {
    dists.push_back(nn::Softmax(logits.Row(m)));
  }

  // 2. Distances from the full-ensemble mean; drop the farthest.
  const std::vector<double> mean = MeanDistribution(dists);
  std::vector<double> distances;
  distances.reserve(dists.size());
  for (const auto& d : dists) distances.push_back(KlDivergence(d, mean));
  const std::vector<std::size_t> survivors =
      SurvivingMembers(distances, keep_);

  // 3. Uncertainty: sum of KL distances from the survivors' mean.
  std::vector<std::vector<double>> kept;
  kept.reserve(survivors.size());
  for (std::size_t idx : survivors) kept.push_back(dists[idx]);
  const std::vector<double> kept_mean = MeanDistribution(kept);
  double score = 0.0;
  for (const auto& d : kept) score += KlDivergence(d, kept_mean);
  return score;
}

ValueEnsembleEstimator::ValueEnsembleEstimator(
    std::vector<std::shared_ptr<nn::CompositeNet>> members,
    std::size_t discard)
    : members_(std::move(members)), batched_values_(NetViews(members_)) {
  OSAP_REQUIRE(discard < members_.size(),
               "ValueEnsembleEstimator: discard must leave >= 1 member");
  for (const auto& m : members_) {
    OSAP_REQUIRE(m->OutputSize() == 1,
                 "ValueEnsembleEstimator: members must output one value");
  }
  keep_ = members_.size() - discard;
}

double ValueEnsembleEstimator::Score(const mdp::State& state) {
  const nn::Matrix& out = batched_values_.Infer(state, EstimatorScratch());
  std::vector<double> values;
  values.reserve(members_.size());
  for (std::size_t m = 0; m < members_.size(); ++m) {
    values.push_back(out.At(m, 0));
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  std::vector<double> distances;
  distances.reserve(values.size());
  for (double v : values) distances.push_back(std::abs(v - mean));
  const std::vector<std::size_t> survivors =
      SurvivingMembers(distances, keep_);
  double kept_mean = 0.0;
  for (std::size_t idx : survivors) kept_mean += values[idx];
  kept_mean /= static_cast<double>(survivors.size());
  double score = 0.0;
  for (std::size_t idx : survivors) {
    score += std::abs(values[idx] - kept_mean);
  }
  return score;
}

}  // namespace osap::core
