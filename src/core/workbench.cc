#include "core/workbench.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "core/conformal.h"
#include "core/normalization.h"
#include "core/replay_calibration.h"
#include "mdp/rollout.h"
#include "nn/serialize.h"
#include "policies/buffer_based.h"
#include "policies/pensieve_policy.h"
#include "policies/random_policy.h"
#include "rl/ensemble.h"
#include "util/check.h"
#include "util/logging.h"

namespace osap::core {

namespace {

/// FNV-1a over the config's behaviour-affecting fields.
std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t DatasetSeed(std::uint64_t base, traces::DatasetId id) {
  return base * 0x9E3779B97F4A7C15ULL + 0x243F6A8885A308D3ULL *
         (static_cast<std::uint64_t>(id) + 1);
}

}  // namespace

std::string SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPensieve:
      return "pensieve";
    case Scheme::kBufferBased:
      return "buffer_based";
    case Scheme::kRandom:
      return "random";
    case Scheme::kNoveltyDetection:
      return "nd";
    case Scheme::kAgentEnsemble:
      return "a_ensemble";
    case Scheme::kValueEnsemble:
      return "v_ensemble";
  }
  OSAP_CHECK_MSG(false, "SchemeName: unknown scheme");
  return {};
}

std::vector<Scheme> SafetySchemes() {
  return {Scheme::kNoveltyDetection, Scheme::kAgentEnsemble,
          Scheme::kValueEnsemble};
}

WorkbenchConfig FastWorkbenchConfig() {
  WorkbenchConfig cfg;
  cfg.dataset.trace_count = 12;
  cfg.dataset.trace_duration_seconds = 200.0;
  cfg.train_video_repeats = 1;
  cfg.eval_video_repeats = 1;
  cfg.net.conv_filters = 8;
  cfg.net.hidden = 16;
  cfg.a2c.episodes = 30;
  cfg.value_train.rollout_episodes = 6;
  cfg.value_train.epochs = 5;
  cfg.ensemble_size = 3;
  cfg.ensemble_discard = 1;
  cfg.nd_window = 5;
  cfg.nd_k_empirical = 3;
  cfg.nd_k_synthetic = 5;
  cfg.calibration.max_iterations = 5;
  cfg.use_cache = false;
  return cfg;
}

Workbench::Workbench(WorkbenchConfig config)
    : config_(std::move(config)),
      train_video_(abr::MakeEnvivioLikeVideo(config_.train_video_repeats)),
      eval_video_(abr::MakeEnvivioLikeVideo(config_.eval_video_repeats)) {
  OSAP_REQUIRE(config_.ensemble_size > config_.ensemble_discard,
               "Workbench: ensemble_discard must leave >= 1 member");
  layout_.levels = eval_video_.LevelCount();
}

std::size_t Workbench::ResolvedThreads() const {
  return config_.threads == 0 ? util::ThreadPool::HardwareConcurrency()
                              : config_.threads;
}

util::ThreadPool& Workbench::Pool() const { return util::ThreadPool::Shared(); }

util::ParallelOptions Workbench::EvalOptions() const {
  // The calling thread participates in ParallelFor, so a budget of T
  // threads means at most T - 1 pool workers; T = 1 caps the pool out
  // entirely and ParallelFor degrades to the plain serial loop. Chunk 1
  // because every workbench item is coarse (a whole session or a whole
  // ensemble member).
  util::ParallelOptions options;
  options.max_workers = ResolvedThreads() - 1;
  options.chunk = 1;
  return options;
}

std::string Workbench::CacheKey() const {
  std::ostringstream os;
  os << config_.dataset.trace_count << '|'
     << config_.dataset.trace_duration_seconds << '|'
     << config_.dataset.seed << '|' << config_.train_video_repeats << '|'
     << config_.eval_video_repeats << '|' << config_.net.conv_filters << '|'
     << config_.net.conv_kernel << '|' << config_.net.hidden << '|'
     << config_.a2c.episodes << '|' << config_.a2c.gamma << '|'
     << config_.a2c.actor_learning_rate << '|'
     << config_.a2c.critic_learning_rate << '|'
     << config_.a2c.entropy_coef_start << '|'
     << config_.a2c.entropy_coef_end << '|'
     << config_.value_train.rollout_episodes << '|'
     << config_.value_train.epochs << '|' << config_.ensemble_size << '|'
     << config_.ensemble_discard << '|' << config_.nd_window << '|'
     << config_.nd_k_empirical << '|' << config_.nd_k_synthetic << '|'
     << config_.nd_nu << '|' << config_.trigger_l << '|'
     << config_.trigger_k << '|' << config_.seed << "|sel1";
  // Training-schedule switches append only when enabled, so every
  // previously-cached bundle keeps its key.
  if (config_.a2c.rollouts_per_update > 1) {
    os << "|rpu" << config_.a2c.rollouts_per_update;
  }
  if (config_.value_train.parallel_collection) os << "|pvc1";
  // Conformal threshold selection changes the cached alphas, so it keys
  // the bundle; the bisection default keeps its pre-existing key.
  if (config_.conformal_calibration) {
    os << "|conf" << config_.conformal_miscoverage << ':'
       << config_.conformal_refine_radius;
  }
  std::ostringstream key;
  key << std::hex << Fnv1a(os.str());
  return key.str();
}

const traces::Dataset& Workbench::DatasetFor(traces::DatasetId id) {
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    it = datasets_.emplace(id, traces::BuildDataset(id, config_.dataset))
             .first;
  }
  return it->second;
}

std::filesystem::path Workbench::BundleDir(traces::DatasetId id) const {
  return config_.cache_dir / CacheKey() / traces::DatasetName(id);
}

NoveltyDetectorConfig Workbench::NdConfigFor(traces::DatasetId id) const {
  NoveltyDetectorConfig cfg;
  cfg.throughput_window = config_.nd_window;
  cfg.k = traces::IsSyntheticIid(id) ? config_.nd_k_synthetic
                                     : config_.nd_k_empirical;
  cfg.svm.nu = config_.nd_nu;
  return cfg;
}

abr::AbrEnvironment Workbench::MakeEvalEnvironment() const {
  abr::AbrEnvironmentConfig cfg;
  cfg.layout = layout_;
  return abr::AbrEnvironment(eval_video_, cfg);
}

abr::AbrEnvironment Workbench::MakeTrainEnvironment(traces::DatasetId id) {
  abr::AbrEnvironmentConfig cfg;
  cfg.layout = layout_;
  abr::AbrEnvironment env(train_video_, cfg);
  env.SetTracePool(DatasetFor(id).train, DatasetSeed(config_.seed, id) ^ 1);
  return env;
}

void Workbench::TrainOrLoadAgents(TrainedBundle& bundle) {
  const auto dir = BundleDir(bundle.id);
  const rl::ActorCriticFactory factory = [this](Rng& rng) {
    return policies::MakePensieveActorCritic(layout_, config_.net, rng);
  };

  bool all_cached = config_.use_cache;
  if (all_cached) {
    for (std::size_t m = 0; m < config_.ensemble_size; ++m) {
      if (!std::filesystem::exists(dir /
                                   ("agent_" + std::to_string(m) + ".bin"))) {
        all_cached = false;
        break;
      }
    }
  }

  if (all_cached) {
    // Rebuild the topologies and overwrite the weights from the cache. A
    // corrupt or stale file falls back to retraining instead of failing.
    try {
      Rng dummy(0);
      for (std::size_t m = 0; m < config_.ensemble_size; ++m) {
        auto net = std::make_shared<nn::ActorCriticNet>(factory(dummy));
        nn::LoadParamsFromFile(
            dir / ("agent_" + std::to_string(m) + ".bin"),
            net->AllParams());
        bundle.agents.push_back(std::move(net));
      }
      OSAP_LOG(kInfo) << "[" << traces::DatasetName(bundle.id)
                      << "] loaded agent ensemble from cache";
      return;
    } catch (const std::exception& e) {
      OSAP_LOG(kWarn) << "[" << traces::DatasetName(bundle.id)
                      << "] agent cache unusable (" << e.what()
                      << "); retraining";
      bundle.agents.clear();
    }
  }

  OSAP_LOG(kInfo) << "[" << traces::DatasetName(bundle.id) << "] training "
                  << config_.ensemble_size << " agents ("
                  << config_.a2c.episodes << " episodes each, "
                  << ResolvedThreads() << " threads)";
  abr::AbrEnvironment env = MakeTrainEnvironment(bundle.id);
  rl::A2cConfig a2c = config_.a2c;
  rl::AgentEnsembleResult ensemble;
  if (a2c.rollouts_per_update > 1) {
    // Batched-update schedule: episodes within an update are collected
    // concurrently. Every (member, episode) rolls out on its own copy of
    // the shared environment fast-forwarded to that episode's position in
    // the global stream, so the trace sequence is a function of the
    // indices alone and results are bit-identical at every thread count.
    const rl::MemberEpisodeEnvFactory env_for_episode =
        [&env, episodes = config_.a2c.episodes](std::size_t m,
                                                std::size_t e) {
          auto copy = std::make_unique<abr::AbrEnvironment>(env);
          copy->SkipPoolEpisodes(m * episodes + e);
          return std::unique_ptr<mdp::Environment>(std::move(copy));
        };
    ensemble = rl::TrainAgentEnsembleParallel(
        config_.ensemble_size, factory, env_for_episode, a2c,
        DatasetSeed(config_.seed, bundle.id), Pool(), EvalOptions());
  } else {
    // Member m trains on a copy of the shared environment fast-forwarded
    // past the first m members' episodes, reproducing the serial episode
    // stream bit-exactly (TrainA2c resets exactly `episodes` times).
    const rl::MemberEnvFactory env_for_member =
        [&env, episodes = config_.a2c.episodes](std::size_t m) {
          auto copy = std::make_unique<abr::AbrEnvironment>(env);
          copy->SkipPoolEpisodes(m * episodes);
          return std::unique_ptr<mdp::Environment>(std::move(copy));
        };
    ensemble = rl::TrainAgentEnsembleParallel(
        config_.ensemble_size, factory, env_for_member, a2c,
        DatasetSeed(config_.seed, bundle.id), Pool(), EvalOptions());
  }
  bundle.agents = std::move(ensemble.members);

  // Model selection: deploy the ensemble member with the best greedy
  // validation QoE (member 0 is "the" agent everywhere downstream - the
  // U_V ensemble trains on its experience, ND on its sessions, and every
  // scheme streams with it). The U_pi ensemble still uses all members.
  {
    const abr::AbrEnvironment eval_env = MakeEvalEnvironment();
    const auto& validation = DatasetFor(bundle.id).validation;
    std::vector<double> qoes(bundle.agents.size());
    Pool().ParallelFor(
        0, bundle.agents.size(),
        [&](std::size_t m) {
          policies::PensievePolicy policy(bundle.agents[m],
                                          policies::ActionSelection::kGreedy,
                                          /*seed=*/0);
          abr::AbrEnvironment member_env = eval_env;
          qoes[m] = EvaluatePolicy(policy, member_env, validation).MeanQoe();
        },
        EvalOptions());
    double best_qoe = -std::numeric_limits<double>::infinity();
    std::size_t best = 0;
    for (std::size_t m = 0; m < qoes.size(); ++m) {
      if (qoes[m] > best_qoe) {
        best_qoe = qoes[m];
        best = m;
      }
    }
    std::swap(bundle.agents[0], bundle.agents[best]);
    OSAP_LOG(kInfo) << "[" << traces::DatasetName(bundle.id)
                    << "] deployed member " << best << " (validation QoE "
                    << best_qoe << ")";
  }

  if (config_.use_cache) {
    for (std::size_t m = 0; m < bundle.agents.size(); ++m) {
      nn::SaveParamsToFile(dir / ("agent_" + std::to_string(m) + ".bin"),
                           bundle.agents[m]->AllParams());
    }
  }
}

void Workbench::TrainOrLoadValueNets(TrainedBundle& bundle) {
  const auto dir = BundleDir(bundle.id);
  const rl::ValueNetFactory factory = [this](Rng& rng) {
    return policies::BuildPensieveNet(layout_, 1, config_.net, rng);
  };

  bool all_cached = config_.use_cache;
  if (all_cached) {
    for (std::size_t m = 0; m < config_.ensemble_size; ++m) {
      if (!std::filesystem::exists(dir /
                                   ("value_" + std::to_string(m) + ".bin"))) {
        all_cached = false;
        break;
      }
    }
  }

  if (all_cached) {
    try {
      Rng dummy(0);
      for (std::size_t m = 0; m < config_.ensemble_size; ++m) {
        auto net = std::make_shared<nn::CompositeNet>(factory(dummy));
        nn::LoadParamsFromFile(
            dir / ("value_" + std::to_string(m) + ".bin"), net->Params());
        bundle.value_nets.push_back(std::move(net));
      }
      OSAP_LOG(kInfo) << "[" << traces::DatasetName(bundle.id)
                      << "] loaded value ensemble from cache";
      return;
    } catch (const std::exception& e) {
      OSAP_LOG(kWarn) << "[" << traces::DatasetName(bundle.id)
                      << "] value cache unusable (" << e.what()
                      << "); retraining";
      bundle.value_nets.clear();
    }
  }

  OSAP_LOG(kInfo) << "[" << traces::DatasetName(bundle.id) << "] training "
                  << config_.ensemble_size << " value functions";
  abr::AbrEnvironment env = MakeTrainEnvironment(bundle.id);
  // Experience comes from the deployed agent exploring (sampled actions),
  // i.e. "the agent-environment interaction while training" (Section 2.4).
  const std::uint64_t driver_seed = DatasetSeed(config_.seed, bundle.id) ^ 2;
  if (config_.value_train.parallel_collection) {
    // Parallel collection: each episode rolls out on its own copy of the
    // training environment advanced to the episode's pool position, driven
    // by a fresh sampling policy seeded from the episode index.
    const rl::RolloutEnvFactory env_for_episode = [&env](std::size_t e) {
      auto copy = std::make_unique<abr::AbrEnvironment>(env);
      copy->SkipPoolEpisodes(e);
      return std::unique_ptr<mdp::Environment>(std::move(copy));
    };
    const rl::RolloutPolicyFactory policy_for_episode =
        [&bundle, driver_seed](std::size_t e) {
          const std::uint64_t seed =
              driver_seed * 0x9E3779B97F4A7C15ULL +
              0xD1B54A32D192ED03ULL * (e + 1);
          return std::unique_ptr<mdp::Policy>(
              std::make_unique<policies::PensievePolicy>(
                  bundle.agents.front(),
                  policies::ActionSelection::kSample, seed));
        };
    bundle.value_nets = rl::TrainValueEnsembleParallel(
        config_.ensemble_size, factory, env_for_episode, policy_for_episode,
        config_.value_train, DatasetSeed(config_.seed, bundle.id) ^ 3, Pool(),
        EvalOptions());
  } else {
    policies::PensievePolicy driver(bundle.agents.front(),
                                    policies::ActionSelection::kSample,
                                    driver_seed);
    bundle.value_nets = rl::TrainValueEnsembleParallel(
        config_.ensemble_size, factory, env, driver, config_.value_train,
        DatasetSeed(config_.seed, bundle.id) ^ 3, Pool(), EvalOptions());
  }
  if (config_.use_cache) {
    for (std::size_t m = 0; m < bundle.value_nets.size(); ++m) {
      nn::SaveParamsToFile(dir / ("value_" + std::to_string(m) + ".bin"),
                           bundle.value_nets[m]->Params());
    }
  }
}

void Workbench::FitOrLoadNoveltyDetector(TrainedBundle& bundle) {
  const auto dir = BundleDir(bundle.id);
  const auto path = dir / "ocsvm.bin";
  bundle.novelty =
      std::make_shared<NoveltyDetector>(NdConfigFor(bundle.id), layout_);
  if (config_.use_cache && std::filesystem::exists(path)) {
    try {
      bundle.novelty->LoadModel(path);
      OSAP_LOG(kInfo) << "[" << traces::DatasetName(bundle.id)
                      << "] loaded OC-SVM from cache";
      return;
    } catch (const std::exception& e) {
      OSAP_LOG(kWarn) << "[" << traces::DatasetName(bundle.id)
                      << "] OC-SVM cache unusable (" << e.what()
                      << "); refitting";
    }
  }

  // Collect per-session chunk-throughput sequences by streaming the
  // training traces with the deployed agent.
  OSAP_LOG(kInfo) << "[" << traces::DatasetName(bundle.id)
                  << "] fitting OC-SVM novelty detector";
  const abr::AbrEnvironment env = MakeTrainEnvironment(bundle.id);
  const auto& train_traces = DatasetFor(bundle.id).train;
  const NoveltyDetectorConfig nd_cfg = NdConfigFor(bundle.id);
  // Per-trace sessions are independent (fixed-trace resets consume no pool
  // randomness and the greedy driver is deterministic), so they run on the
  // pool; per-trace feature lists are flattened in trace order afterwards
  // to match the serial collection exactly.
  std::vector<std::vector<std::vector<double>>> per_trace(
      train_traces.size());
  Pool().ParallelFor(
      0, train_traces.size(),
      [&](std::size_t i) {
        abr::AbrEnvironment local_env = env;
        policies::PensievePolicy driver(bundle.agents.front(),
                                        policies::ActionSelection::kGreedy,
                                        /*seed=*/0);
        local_env.SetFixedTrace(train_traces[i]);
        driver.Reset();
        std::vector<double> throughputs;
        mdp::State state = local_env.Reset();
        bool done = false;
        while (!done) {
          mdp::StepResult step = local_env.Step(driver.SelectAction(state));
          throughputs.push_back(local_env.LastDownload().throughput_mbps);
          state = std::move(step.next_state);
          done = step.done;
        }
        per_trace[i] = NoveltyDetector::ExtractFeatures(throughputs, nd_cfg);
      },
      EvalOptions());
  std::vector<std::vector<double>> features;
  for (auto& session : per_trace) {
    for (auto& f : session) features.push_back(std::move(f));
  }
  bundle.novelty->Fit(features);
  if (config_.use_cache) bundle.novelty->Save(path);
}

SafeAgentConfig Workbench::TriggerFor(Scheme scheme,
                                      const TrainedBundle& bundle) const {
  SafeAgentConfig cfg;
  cfg.trigger.l = config_.trigger_l;
  cfg.trigger.k = config_.trigger_k;
  switch (scheme) {
    case Scheme::kNoveltyDetection:
      cfg.trigger.mode = TriggerMode::kBinary;
      break;
    case Scheme::kAgentEnsemble:
      cfg.trigger.mode = TriggerMode::kWindowVariance;
      cfg.trigger.alpha = bundle.alpha_pi;
      break;
    case Scheme::kValueEnsemble:
      cfg.trigger.mode = TriggerMode::kWindowVariance;
      cfg.trigger.alpha = bundle.alpha_v;
      break;
    default:
      OSAP_CHECK_MSG(false, "TriggerFor: not a safety scheme");
  }
  return cfg;
}

std::shared_ptr<mdp::Policy> Workbench::MakeGreedyPensieve(
    const TrainedBundle& bundle) const {
  return std::make_shared<policies::PensievePolicy>(
      bundle.agents.front(), policies::ActionSelection::kGreedy, /*seed=*/0);
}

std::shared_ptr<mdp::Policy> Workbench::MakeBufferBased() const {
  return std::make_shared<policies::BufferBasedPolicy>(eval_video_, layout_);
}

void Workbench::CalibrateOrLoadThresholds(TrainedBundle& bundle) {
  const auto path = BundleDir(bundle.id) / "calibration.txt";
  if (config_.use_cache && std::filesystem::exists(path)) {
    std::ifstream in(path);
    if (in >> bundle.nd_in_dist_qoe >> bundle.alpha_pi >> bundle.alpha_v) {
      OSAP_LOG(kInfo) << "[" << traces::DatasetName(bundle.id)
                      << "] loaded calibration from cache";
      return;
    }
  }
  OSAP_LOG(kInfo) << "[" << traces::DatasetName(bundle.id)
                  << "] calibrating thresholds";

  abr::AbrEnvironment env = MakeEvalEnvironment();
  const auto& validation = DatasetFor(bundle.id).validation;
  OSAP_CHECK_MSG(!validation.empty(), "calibration needs validation traces");

  // The replay path records each validation trace's no-default rollout
  // ONCE (the greedy trajectory is estimator-independent), scores it per
  // estimator, and replays triggers against the recorded series (see
  // replay_calibration.h). The ND target AND the bisection candidates
  // all come from that single recording; the full re-evaluation path is
  // kept behind the flag because the equivalence test compares the two.
  std::optional<CalibrationReplay<abr::AbrEnvironment>> replay;
  if (config_.calibration_replay) {
    replay.emplace([&] { return MakeGreedyPensieve(bundle); },
                   [&] { return MakeBufferBased(); }, env, validation,
                   config_.trigger_k, config_.trigger_l, Pool(),
                   EvalOptions());
  }

  // Target: the ND scheme's in-distribution QoE with the paper's fixed
  // thresholding (binary OOD flag, l consecutive). Sessions fan out over
  // the shared pool; results are positionally deterministic, so the
  // target matches the serial evaluation bit-exactly.
  if (replay.has_value()) {
    replay->ScoreWith([&]() -> std::shared_ptr<UncertaintyEstimator> {
      return std::make_shared<NoveltyDetector>(*bundle.novelty);
    });
    bundle.nd_in_dist_qoe = replay->MeanQoeAtBinaryTrigger();
  } else {
    const SafeAgentConfig nd_cfg =
        TriggerFor(Scheme::kNoveltyDetection, bundle);
    const auto make_nd = [&]() -> std::shared_ptr<mdp::Policy> {
      auto estimator = std::make_shared<NoveltyDetector>(*bundle.novelty);
      estimator->Reset();
      return std::make_shared<SafeAgent>(MakeGreedyPensieve(bundle),
                                         MakeBufferBased(), estimator,
                                         nd_cfg);
    };
    bundle.nd_in_dist_qoe =
        EvaluatePolicyParallel(make_nd, env, validation, Pool(),
                               EvalOptions())
            .MeanQoe();
  }

  // Calibrate each continuous scheme's alpha to the ND target.
  using EstimatorFactory =
      CalibrationReplay<abr::AbrEnvironment>::EstimatorFactory;
  const auto calibrate = [&](const EstimatorFactory& make_estimator)
      -> double {
    if (replay.has_value()) {
      replay->ScoreWith(make_estimator);
      const auto qoe_at = [&](double alpha) {
        return replay->MeanQoeAt(alpha);
      };
      if (config_.conformal_calibration) {
        // Conformal-batch selection (DESIGN.md §11): one scan for the
        // per-session never-trigger scores, one order statistic, and at
        // most 2 * refine_radius + 1 QoE probes against the ND target —
        // no bisection.
        std::vector<double> scores = SessionNonconformities(
            replay->Sessions(), config_.trigger_k, config_.trigger_l);
        const double n1 = static_cast<double>(scores.size() + 1);
        ConformalConfig conformal;
        conformal.refine_radius = config_.conformal_refine_radius;
        // Same stop rule as the bisection: quit refining once a probe
        // matches the ND target within the calibration tolerance.
        conformal.tolerance = config_.calibration.tolerance;
        conformal.miscoverage = std::clamp(
            config_.conformal_miscoverage > 0.0
                ? config_.conformal_miscoverage
                : BinaryTriggerRate(replay->Sessions(), config_.trigger_l),
            1.0 / n1, 1.0 - 1.0 / n1);
        const ConformalResult result =
            conformal.refine_radius == 0
                ? ConformalAlpha(std::move(scores), conformal)
                : ConformalAlphaMatchingQoe(std::move(scores), conformal,
                                            qoe_at, bundle.nd_in_dist_qoe);
        OSAP_LOG(kInfo) << "[" << traces::DatasetName(bundle.id)
                        << "] conformal alpha " << result.alpha << " (rank "
                        << result.rank << "/" << result.sessions
                        << ", miscoverage " << result.miscoverage << ", "
                        << result.evaluations << " QoE probes)";
        return result.alpha;
      }
      const double hi = replay->MaxFullWindowVariance();
      if (hi <= 0.0) return 0.0;  // signal never varies: any alpha works
      const CalibrationResult result = CalibrateAlpha(
          qoe_at, bundle.nd_in_dist_qoe, 0.0, hi * 1.25,
          config_.calibration);
      return result.alpha;
    }
    OSAP_CHECK_MSG(!config_.conformal_calibration,
                   "conformal calibration requires calibration_replay");
    auto estimator = make_estimator();
    auto driver = MakeGreedyPensieve(bundle);
    const double hi = MaxWindowVariance(*estimator, *driver, env, validation,
                                        config_.trigger_k);
    if (hi <= 0.0) return 0.0;  // signal never varies: any alpha works
    const auto qoe_at = [&](double alpha) {
      SafeAgentConfig cfg;
      cfg.trigger.mode = TriggerMode::kWindowVariance;
      cfg.trigger.k = config_.trigger_k;
      cfg.trigger.l = config_.trigger_l;
      cfg.trigger.alpha = alpha;
      SafeAgent agent(MakeGreedyPensieve(bundle), MakeBufferBased(),
                      estimator, cfg);
      return EvaluatePolicy(agent, env, validation).MeanQoe();
    };
    const CalibrationResult result = CalibrateAlpha(
        qoe_at, bundle.nd_in_dist_qoe, 0.0, hi * 1.25, config_.calibration);
    return result.alpha;
  };

  bundle.alpha_pi = calibrate([&]() -> std::shared_ptr<UncertaintyEstimator> {
    return std::make_shared<AgentEnsembleEstimator>(bundle.agents,
                                                    config_.ensemble_discard);
  });
  bundle.alpha_v = calibrate([&]() -> std::shared_ptr<UncertaintyEstimator> {
    return std::make_shared<ValueEnsembleEstimator>(bundle.value_nets,
                                                    config_.ensemble_discard);
  });

  if (config_.use_cache) {
    std::filesystem::create_directories(BundleDir(bundle.id));
    std::ofstream out(path, std::ios::trunc);
    out.precision(17);
    out << bundle.nd_in_dist_qoe << ' ' << bundle.alpha_pi << ' '
        << bundle.alpha_v << '\n';
  }
}

const TrainedBundle& Workbench::BundleFor(traces::DatasetId id) {
  auto it = bundles_.find(id);
  if (it != bundles_.end()) return it->second;
  TrainedBundle bundle;
  bundle.id = id;
  TrainOrLoadAgents(bundle);
  TrainOrLoadValueNets(bundle);
  FitOrLoadNoveltyDetector(bundle);
  CalibrateOrLoadThresholds(bundle);
  return bundles_.emplace(id, std::move(bundle)).first->second;
}

std::shared_ptr<mdp::Policy> Workbench::MakePolicyFromBundle(
    Scheme scheme, const TrainedBundle* bundle) const {
  if (scheme != Scheme::kBufferBased && scheme != Scheme::kRandom) {
    OSAP_CHECK_MSG(bundle != nullptr,
                   "MakePolicyFromBundle: scheme needs a trained bundle");
  }
  switch (scheme) {
    case Scheme::kBufferBased:
      return MakeBufferBased();
    case Scheme::kRandom:
      return std::make_shared<policies::RandomPolicy>(
          eval_video_.LevelCount(), config_.seed ^ 0xABCDEF);
    case Scheme::kPensieve:
      return MakeGreedyPensieve(*bundle);
    case Scheme::kNoveltyDetection: {
      // Fresh detector per policy (shares the fitted model, owns its own
      // observation window).
      auto estimator = std::make_shared<NoveltyDetector>(*bundle->novelty);
      estimator->Reset();
      return std::make_shared<SafeAgent>(MakeGreedyPensieve(*bundle),
                                         MakeBufferBased(), estimator,
                                         TriggerFor(scheme, *bundle));
    }
    case Scheme::kAgentEnsemble: {
      auto estimator = std::make_shared<AgentEnsembleEstimator>(
          bundle->agents, config_.ensemble_discard);
      return std::make_shared<SafeAgent>(MakeGreedyPensieve(*bundle),
                                         MakeBufferBased(), estimator,
                                         TriggerFor(scheme, *bundle));
    }
    case Scheme::kValueEnsemble: {
      auto estimator = std::make_shared<ValueEnsembleEstimator>(
          bundle->value_nets, config_.ensemble_discard);
      return std::make_shared<SafeAgent>(MakeGreedyPensieve(*bundle),
                                         MakeBufferBased(), estimator,
                                         TriggerFor(scheme, *bundle));
    }
  }
  OSAP_CHECK_MSG(false, "MakePolicy: unknown scheme");
  return nullptr;
}

std::shared_ptr<mdp::Policy> Workbench::MakePolicy(Scheme scheme,
                                                   traces::DatasetId train) {
  const TrainedBundle* bundle = nullptr;
  if (scheme != Scheme::kBufferBased && scheme != Scheme::kRandom) {
    bundle = &BundleFor(train);
  }
  return MakePolicyFromBundle(scheme, bundle);
}

const EvalResult& Workbench::Evaluate(Scheme scheme, traces::DatasetId train,
                                      traces::DatasetId test) {
  // Baselines do not depend on the training distribution; collapse the key
  // so they are evaluated once per test set.
  if (scheme == Scheme::kBufferBased || scheme == Scheme::kRandom) {
    train = test;
  }
  const auto key = std::make_tuple(static_cast<int>(scheme),
                                   static_cast<int>(train),
                                   static_cast<int>(test));
  auto it = eval_cache_.find(key);
  if (it != eval_cache_.end()) return it->second;

  // Materialize the bundle and datasets on this thread before fanning out.
  const TrainedBundle* bundle = nullptr;
  if (scheme != Scheme::kBufferBased && scheme != Scheme::kRandom) {
    bundle = &BundleFor(train);
  }
  const auto& test_traces = DatasetFor(test).test;
  EvalResult result;
  if (scheme == Scheme::kRandom || ResolvedThreads() <= 1 ||
      test_traces.size() <= 1) {
    // Random stays serial on purpose: its action RNG carries across
    // sessions, so per-trace results depend on evaluation order.
    std::shared_ptr<mdp::Policy> policy = MakePolicyFromBundle(scheme, bundle);
    abr::AbrEnvironment env = MakeEvalEnvironment();
    result = EvaluatePolicy(*policy, env, test_traces);
  } else {
    const abr::AbrEnvironment env = MakeEvalEnvironment();
    result = EvaluatePolicyParallel(
        [this, scheme, bundle] { return MakePolicyFromBundle(scheme, bundle); },
        env, test_traces, Pool(), EvalOptions());
  }
  return eval_cache_.emplace(key, std::move(result)).first->second;
}

double Workbench::NormalizedMean(Scheme scheme, traces::DatasetId train,
                                 traces::DatasetId test) {
  const double qoe = Evaluate(scheme, train, test).MeanQoe();
  const double random_qoe = Evaluate(Scheme::kRandom, test, test).MeanQoe();
  const double bb_qoe = Evaluate(Scheme::kBufferBased, test, test).MeanQoe();
  return NormalizedScore(qoe, random_qoe, bb_qoe);
}

std::vector<double> Workbench::NormalizedPerTrace(Scheme scheme,
                                                  traces::DatasetId train,
                                                  traces::DatasetId test) {
  const EvalResult& result = Evaluate(scheme, train, test);
  const double random_qoe = Evaluate(Scheme::kRandom, test, test).MeanQoe();
  const double bb_qoe = Evaluate(Scheme::kBufferBased, test, test).MeanQoe();
  std::vector<double> scores;
  scores.reserve(result.per_trace_qoe.size());
  for (double qoe : result.per_trace_qoe) {
    scores.push_back(NormalizedScore(qoe, random_qoe, bb_qoe));
  }
  return scores;
}

}  // namespace osap::core
