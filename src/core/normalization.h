// The paper's normalized performance scale (Section 3.3): a score of 0
// corresponds to the Random policy's QoE on the dataset under test and a
// score of 1 to Buffer-Based's QoE; figures 3-5 plot these scores on an
// axis that is linear inside [-1, 1] and log-scaled outside.
#pragma once

namespace osap::core {

/// (qoe - random) / (bb - random). When BB and Random tie (degenerate
/// denominator), returns 0 - the scale carries no information there.
double NormalizedScore(double qoe, double random_qoe, double bb_qoe);

/// The paper's figure axis transform: identity inside [-1, 1]; outside,
/// sign(v) * (1 + log10(|v|)) so that, e.g., +10 plots at +2 and -100 at
/// -3. Used when printing figure series so the dumped numbers match the
/// visual geometry of the paper's plots.
double LogLinearAxis(double value);

}  // namespace osap::core
