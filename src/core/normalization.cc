#include "core/normalization.h"

#include <cmath>

namespace osap::core {

double NormalizedScore(double qoe, double random_qoe, double bb_qoe) {
  const double denom = bb_qoe - random_qoe;
  if (std::abs(denom) < 1e-9) return 0.0;
  return (qoe - random_qoe) / denom;
}

double LogLinearAxis(double value) {
  if (value >= -1.0 && value <= 1.0) return value;
  const double sign = value < 0.0 ? -1.0 : 1.0;
  return sign * (1.0 + std::log10(std::abs(value)));
}

}  // namespace osap::core
