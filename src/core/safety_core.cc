#include "core/safety_core.h"

#include "util/check.h"

namespace osap::core {

SafetyCore::SafetyCore(const SafeAgentConfig& config)
    : config_(config), trigger_(config.trigger) {
  if (config_.mode == DefaultingMode::kRevocable) {
    OSAP_REQUIRE(config_.revoke_after >= 1,
                 "SafetyCore: revoke_after must be >= 1");
  }
}

bool SafetyCore::Observe(double score) {
  const bool fired = trigger_.Update(score);

  if (!defaulted_) {
    if (fired) {
      defaulted_ = true;
      default_step_ = steps_;
      certain_streak_ = 0;
    }
  } else if (config_.mode == DefaultingMode::kRevocable) {
    // Revoke after a sustained quiet period: the trigger must not fire and
    // the uncertain-streak must be clear.
    if (!fired && trigger_.ConsecutiveUncertain() == 0) {
      ++certain_streak_;
      if (certain_streak_ >= config_.revoke_after) {
        defaulted_ = false;
        certain_streak_ = 0;
      }
    } else {
      certain_streak_ = 0;
    }
  }

  ++steps_;
  if (defaulted_) {
    ++defaulted_steps_;
    return true;
  }
  return false;
}

void SafetyCore::Reset() {
  trigger_.Reset();
  defaulted_ = false;
  steps_ = 0;
  default_step_ = 0;
  defaulted_steps_ = 0;
  certain_streak_ = 0;
}

double SafetyCore::DefaultedFraction() const {
  if (steps_ == 0) return 0.0;
  return static_cast<double>(defaulted_steps_) /
         static_cast<double>(steps_);
}

}  // namespace osap::core
