#include "core/safety_core.h"

#include "util/check.h"

namespace osap::core {

void ValidateSafeAgentConfig(const SafeAgentConfig& config) {
  OSAP_REQUIRE(config.trigger.l >= 1, "DefaultTrigger: l must be >= 1");
  if (config.trigger.mode == TriggerMode::kWindowVariance) {
    OSAP_REQUIRE(config.trigger.k >= 2,
                 "DefaultTrigger: variance mode needs k >= 2");
    OSAP_REQUIRE(config.trigger.alpha >= 0.0,
                 "DefaultTrigger: alpha must be >= 0");
  }
  if (config.mode == DefaultingMode::kRevocable) {
    OSAP_REQUIRE(config.revoke_after >= 1,
                 "SafetyCore: revoke_after must be >= 1");
  }
}

SafetyCore::SafetyCore(const SafeAgentConfig& config)
    : config_(config), ring_(SafetyRingDoubles(config)) {
  ValidateSafeAgentConfig(config_);
}

void SafetyCore::Reset() {
  state_ = SafetyState{};
  cold_ = SafetyCold{};
}

double SafetyCore::DefaultedFraction() const {
  if (state_.steps == 0) return 0.0;
  return static_cast<double>(state_.defaulted_steps) /
         static_cast<double>(state_.steps);
}

}  // namespace osap::core
