// Conformal threshold calibration (DESIGN.md §11; "Safe, OOD-Adaptive
// MPC with Conformalized Neural Network Ensembles", PAPERS.md).
//
// The bisection in calibration.h searches alpha by repeatedly asking
// "what QoE would the safety-enhanced agent attain at this threshold?" —
// each probe is a trigger scan plus fallback-suffix replays. Conformal
// calibration inverts the question: compute, once per recorded session,
// the *minimal threshold at which that session never defaults* (its
// nonconformity score), and read the threshold for a target session
// miscoverage rate epsilon straight off the order statistics:
//
//     alpha = s_(ceil((n+1)(1-epsilon)))
//
// The split-conformal guarantee: if a fresh in-distribution session is
// exchangeable with the n calibration sessions, it defaults with
// probability at most epsilon (and at least epsilon - 1/(n+1)) — a
// finite-sample bound, no distributional assumptions. Selection is one
// O(total steps) scan plus a sort of n scores: no environment stepping,
// no inference, no suffix replay.
//
// Two entry points:
//  - ConformalAlpha: pure rank selection for a given epsilon.
//  - ConformalAlphaMatchingQoe: epsilon is derived implicitly from a
//    QoE target (the paper's calibration contract: match the ND
//    scheme's in-distribution QoE) by probing the few order statistics
//    bracketing a seed rank with a caller-supplied QoE oracle —
//    bounded to `2*refine_radius + 1` probes, against the bisection's
//    max_iterations.
//
// StreamingConformal is the O(1)-per-decision arm: the same trigger
// statistic the live compare uses (full-window variance, or the raw
// score for binary triggers) feeds a windowed P² sketch, and the
// threshold is the sketch's (1-epsilon)-quantile — re-read at epoch
// boundaries, so it tracks gradual drift the frozen offline alpha
// cannot. serve::DecisionService shards this: one sketch per shard
// lane, merged via P2Quantile::MergedQuantile into a process-wide
// snapshot (DESIGN.md §11).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/replay_calibration.h"
#include "util/p2_quantile.h"

namespace osap::core {

struct ConformalConfig {
  /// Target session miscoverage: the calibrated threshold lets a fresh
  /// in-distribution session default with probability <= miscoverage.
  double miscoverage = 0.05;
  /// ConformalAlphaMatchingQoe: order statistics probed on each side of
  /// the seed rank (at most 2 * refine_radius + 1 QoE evaluations).
  std::size_t refine_radius = 1;
  /// ConformalAlphaMatchingQoe early stop: ranks are probed outward from
  /// the seed, and the search ends at the first probe whose QoE lands
  /// within tolerance * max(|target|, 1) of the target - the stop rule
  /// CalibrateAlpha applies. 0 disables the early stop (every distinct
  /// order statistic in the radius is probed and the closest wins).
  double tolerance = 0.0;
};

struct ConformalResult {
  /// Calibrated threshold.
  double alpha = 0.0;
  /// The epsilon the returned rank corresponds to.
  double miscoverage = 0.0;
  /// Fraction of calibration sessions that default at `alpha` (their
  /// nonconformity score exceeds it).
  double empirical_miscoverage = 0.0;
  /// 1-based order-statistic rank selected.
  std::size_t rank = 0;
  /// Calibration set size.
  std::size_t sessions = 0;
  /// QoE oracle probes spent (0 for pure rank selection).
  std::size_t evaluations = 0;
  /// Oracle value at `alpha` (ConformalAlphaMatchingQoe only).
  double achieved_qoe = 0.0;
};

/// Minimal variance threshold at which the recorded session never
/// triggers the (k, l) window-variance trigger: the largest over the
/// session of the minimum variance across l consecutive full-window
/// steps (sliding-window minimum; 0 when no such run exists, since any
/// alpha >= 0 then keeps the session default-free). The session
/// defaults at threshold alpha iff alpha < this score — exactly
/// FirstTriggerStep's firing condition.
double SessionNonconformity(const ReplaySession& session, std::size_t k,
                            std::size_t l);

/// SessionNonconformity over every session, in session order.
std::vector<double> SessionNonconformities(
    std::span<const ReplaySession> sessions, std::size_t k, std::size_t l);

/// Fraction of sessions whose binary trigger (score >= 0.5, l
/// consecutive) fires on the recording: the ND scheme's in-distribution
/// session default rate, the natural epsilon for matching its QoE.
double BinaryTriggerRate(std::span<const ReplaySession> sessions,
                         std::size_t l);

/// Pure conformal selection: sorts the scores and returns the
/// ceil((n+1)(1-epsilon)) order statistic (the max score when the rank
/// exceeds n — zero calibration-set defaults). O(n log n), no oracle.
ConformalResult ConformalAlpha(std::vector<double> scores,
                               const ConformalConfig& config);

/// Conformal selection matching a QoE target: seeds the rank at
/// ConformalAlpha(config.miscoverage), probes `qoe_at` at the distinct
/// order statistics within refine_radius ranks of the seed, and keeps
/// the alpha whose QoE lands closest to `target_qoe`. Bounded QoE
/// probes (vs the bisection's max_iterations), same replay oracle.
ConformalResult ConformalAlphaMatchingQoe(
    std::vector<double> scores, const ConformalConfig& config,
    const std::function<double(double)>& qoe_at, double target_qoe);

/// O(1)-per-decision streaming arm: trigger statistics feed a windowed
/// P² sketch at quantile (1 - miscoverage); RefreshAlpha() re-reads the
/// sketch into the live threshold. Coverage counters compare each
/// observation against the threshold that was live when it arrived, so
/// EmpiricalMiscoverage() is the online miscoverage estimate the
/// coverage tests pin. Single-threaded; the sharded serving arrangement
/// lives in serve::DecisionService.
class StreamingConformal {
 public:
  /// `window`: observations per sketch generation (the estimator
  /// reflects the last window..2*window statistics). `initial_alpha`
  /// is served until the first RefreshAlpha() with a non-empty sketch.
  StreamingConformal(double miscoverage, std::size_t window,
                     double initial_alpha);

  /// Records one trigger statistic: O(1) sketch update + coverage
  /// count against the currently live threshold.
  void Observe(double statistic);

  /// Recomputes the live threshold from the sketch (no-op while the
  /// sketch is empty). Returns the threshold now live.
  double RefreshAlpha();

  double Alpha() const { return alpha_; }
  double Miscoverage() const { return miscoverage_; }
  std::size_t Observations() const { return observations_; }
  std::size_t Exceedances() const { return exceedances_; }

  /// Fraction of observed statistics that exceeded the live threshold;
  /// tracks `miscoverage` once the sketch has warmed up.
  double EmpiricalMiscoverage() const {
    return observations_ == 0
               ? 0.0
               : static_cast<double>(exceedances_) /
                     static_cast<double>(observations_);
  }

  const util::WindowedP2Quantile& Sketch() const { return sketch_; }

 private:
  util::WindowedP2Quantile sketch_;
  double miscoverage_;
  double alpha_;
  std::size_t observations_ = 0;
  std::size_t exceedances_ = 0;
};

}  // namespace osap::core
