// Record-and-replay alpha calibration (paper Sections 2.5 / 3.1).
//
// CalibrateAlpha bisects the variance threshold alpha so the U_pi / U_V
// schemes match the ND scheme's in-distribution QoE. Evaluating one
// candidate alpha the direct way costs a full SafeAgent evaluation - every
// step runs the ensemble forward pass AND the learned policy's network -
// and the bisection pays that per iteration.
//
// Two structural facts make a cheaper scheme bit-identical:
//
// 1. With the permanent-defaulting SafeAgent, the trajectory is
//    *alpha-independent up to the first trigger step*. Until the trigger
//    fires, actions come from the (deterministic, stateless) greedy
//    learned policy, so states, uncertainty scores, and the trigger's
//    window variances are the same for every alpha; alpha only decides
//    WHERE the variance series first sustains l consecutive exceedances.
//
// 2. The no-default trajectory is also *estimator-independent*: the
//    driver never consults the estimator, so ANY estimator's score
//    series over the recording - including the stateful novelty
//    detector's, which is deterministic in the state sequence since its
//    last Reset - is exactly what a live safe session would have seen
//    before its first default. U_S, U_pi, and U_V all walk the SAME
//    states.
//
// So we roll out the no-default trajectory ONCE per validation trace -
// shared by every estimator being calibrated - recording actions,
// per-step rewards, per-step prefix reward sums, the observed states,
// and a per-step Env::ResumePoint (the environment's dynamic state only;
// far cheaper than copying whole environments, which drag immutable
// video/config tables along). ScoreWith(factory) then derives an
// estimator's score series by resetting a fresh instance per trace and
// scoring the recorded states in step order (via ScoreBatch, which the
// ensemble estimators fuse into weight-streaming batched inference), and
// its trigger-window variance series by pushing those scores through a
// real SlidingWindowStats (its variance comes from incremental sums, so
// the values are history-dependent and must repeat the same update
// sequence). Each candidate alpha then (a) finds its first trigger step T
// by scanning the scored series with the exact DefaultTrigger update
// rule, and (b) resumes the session from resume point T under the
// fallback policy - only the post-default suffix is ever simulated, with
// no network inference at all. The prefix QoE is the recorded running sum
// at T (same additions in the same order), suffix rewards continue
// accumulating from it in step order, and per-trace means reduce in trace
// order, so the result is bit-identical to the full re-evaluation. The
// binary-trigger scan (MeanQoeAtBinaryTrigger) replays the ND scheme's
// fixed thresholding the same way, so the calibration TARGET comes from
// the recording too.
//
// Requirements:
//  - the estimator factory yields independent instances whose score
//    series is a deterministic function of the post-Reset state sequence
//    (each worker scores whole sessions on its own instance, so the
//    instances themselves need not be thread-safe);
//  - the learned policy is deterministic and stateless (greedy);
//  - SafeAgent runs in the permanent defaulting mode.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/uncertainty.h"
#include "mdp/environment.h"
#include "mdp/policy.h"
#include "traces/trace.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace osap::core {

/// One recorded no-default session: what the SafeAgent's pre-trigger
/// trajectory looks like for ANY alpha.
struct ReplaySession {
  std::vector<mdp::Action> actions;  // greedy learned action per step
  std::vector<double> rewards;       // reward per step
  /// Raw estimator score per step. Filled by CalibrationReplay::ScoreWith
  /// for the estimator under calibration.
  std::vector<double> scores;
  /// Trigger window variance after pushing step t's score (0 until the
  /// window is full; never compared before then). Filled by ScoreWith.
  std::vector<double> variances;
  /// reward_prefix[t] = rewards[0] + ... + rewards[t-1], accumulated
  /// sequentially in step order (so it equals the running QoE total a
  /// live session would hold entering step t). reward_prefix[0] = 0.
  std::vector<double> reward_prefix;
  /// Observed state entering each step (what the policies saw).
  std::vector<mdp::State> states;
  double total_qoe = 0.0;  // rewards summed in step order
};

inline constexpr std::size_t kReplayNoTrigger =
    std::numeric_limits<std::size_t>::max();

/// First step at which a window-variance trigger with threshold `alpha`
/// fires on the recorded series, or kReplayNoTrigger. Replicates
/// DefaultTrigger::Update exactly: uncertain once the k-window is full
/// and its variance exceeds alpha; fires after l consecutive uncertain
/// steps.
inline std::size_t FirstTriggerStep(const ReplaySession& session,
                                    double alpha, std::size_t k,
                                    std::size_t l) {
  std::size_t consecutive = 0;
  for (std::size_t t = 0; t < session.variances.size(); ++t) {
    const bool uncertain = t + 1 >= k && session.variances[t] > alpha;
    consecutive = uncertain ? consecutive + 1 : 0;
    if (consecutive >= l) return t;
  }
  return kReplayNoTrigger;
}

/// First step at which the binary trigger (TriggerMode::kBinary: a step
/// is uncertain when its score is >= 0.5, no window, no warm-up) fires on
/// the recorded score series, or kReplayNoTrigger.
inline std::size_t FirstBinaryTriggerStep(const ReplaySession& session,
                                          std::size_t l) {
  std::size_t consecutive = 0;
  for (std::size_t t = 0; t < session.scores.size(); ++t) {
    consecutive = session.scores[t] >= 0.5 ? consecutive + 1 : 0;
    if (consecutive >= l) return t;
  }
  return kReplayNoTrigger;
}

/// Records the no-default rollouts for a validation set once, then
/// answers MeanQoeAt(alpha) / MeanQoeAtBinaryTrigger() queries by
/// trigger-scan + suffix replay. The recording is estimator-independent;
/// call ScoreWith(factory) before the score-dependent queries (and again
/// to switch estimators over the same trajectories). `Env` needs
/// SetFixedTrace / Reset / Step, copy construction, and the
/// SaveResumePoint / RestoreResumePoint pair (AbrEnvironment).
template <typename Env>
class CalibrationReplay {
 public:
  using PolicyFactory = std::function<std::shared_ptr<mdp::Policy>()>;
  using EstimatorFactory =
      std::function<std::shared_ptr<UncertaintyEstimator>()>;
  using ResumePoint = typename Env::ResumePoint;

  /// Rolls out every trace under the learned policy, recording the
  /// trajectory (states, actions, rewards, prefix sums, resume points).
  /// Recording fans out over `pool` with per-thread env copy + driver.
  CalibrationReplay(const PolicyFactory& make_learned,
                    PolicyFactory make_fallback, const Env& env,
                    std::span<const traces::Trace> traces, std::size_t k,
                    std::size_t l, util::ThreadPool& pool,
                    util::ParallelOptions options = {})
      : make_fallback_(std::move(make_fallback)),
        env_(env),
        traces_(traces),
        k_(k),
        l_(l),
        pool_(pool),
        options_(options) {
    OSAP_REQUIRE(!traces.empty(), "CalibrationReplay: no traces");
    OSAP_REQUIRE(k >= 2, "CalibrationReplay: variance window needs k >= 2");
    OSAP_REQUIRE(l >= 1, "CalibrationReplay: l must be >= 1");
    if (options_.chunk == 0) options_.chunk = 1;  // whole-session items
    sessions_.resize(traces.size());
    snapshots_.resize(traces.size());
    struct alignas(64) WorkerScratch {
      std::shared_ptr<mdp::Policy> driver;
      std::optional<Env> env;
    };
    std::vector<WorkerScratch> scratch(pool.SlotCount());
    pool.ParallelFor(
        0, traces.size(),
        [&](std::size_t i) {
          WorkerScratch& ws = scratch[util::ThreadPool::CurrentSlot()];
          if (ws.driver == nullptr) {
            ws.driver = make_learned();
            OSAP_CHECK_MSG(ws.driver != nullptr,
                           "CalibrationReplay: null learned policy");
            ws.env.emplace(env);
          }
          sessions_[i] = Record(*ws.env, *ws.driver, traces[i], snapshots_[i]);
        },
        options_);
  }

  /// Scores every recorded state with a fresh estimator from `factory`
  /// and installs the per-step score and trigger-window variance series
  /// used by the trigger scans. Per trace: Reset the estimator, then
  /// score the states in step order via ScoreBatch (bit-identical to the
  /// Score calls SafeAgent::SelectAction would issue; the ensemble
  /// estimators fuse it into batched inference that streams each packed
  /// weight block once per 32 states instead of once per state), then
  /// push the scores through a fresh SlidingWindowStats for the variance
  /// series. Fans out per trace over the pool with one estimator
  /// instance per worker slot, so stateful estimators (the novelty
  /// detector) are safe without locking.
  void ScoreWith(const EstimatorFactory& factory) {
    struct alignas(64) WorkerScratch {
      std::shared_ptr<UncertaintyEstimator> estimator;
    };
    std::vector<WorkerScratch> scratch(pool_.SlotCount());
    pool_.ParallelFor(
        0, sessions_.size(),
        [&](std::size_t i) {
          WorkerScratch& ws = scratch[util::ThreadPool::CurrentSlot()];
          if (ws.estimator == nullptr) {
            ws.estimator = factory();
            OSAP_CHECK_MSG(ws.estimator != nullptr,
                           "CalibrationReplay: null estimator");
          }
          ReplaySession& session = sessions_[i];
          ws.estimator->Reset();
          session.scores.resize(session.states.size());
          ws.estimator->ScoreBatch(session.states, session.scores);
          SlidingWindowStats window(k_);
          session.variances.resize(session.states.size());
          for (std::size_t t = 0; t < session.states.size(); ++t) {
            window.Push(session.scores[t]);
            session.variances[t] = window.Full() ? window.Variance() : 0.0;
          }
        },
        options_);
    scored_ = true;
  }

  std::size_t SessionCount() const { return sessions_.size(); }
  const ReplaySession& Session(std::size_t i) const { return sessions_[i]; }

  /// All recorded sessions, in trace order. Score/variance series
  /// reflect the most recent ScoreWith (the conformal batch arm reads
  /// its nonconformity scores off these).
  std::span<const ReplaySession> Sessions() const { return sessions_; }

  /// Max full-window variance across every recorded step, floored at 0.
  /// Bit-identical to MaxWindowVariance over the same traces (same score
  /// sequence pushed through the same SlidingWindowStats).
  double MaxFullWindowVariance() const {
    OSAP_CHECK_MSG(scored_, "CalibrationReplay: call ScoreWith first");
    double max_variance = 0.0;
    for (const ReplaySession& s : sessions_) {
      for (std::size_t t = 0; t < s.variances.size(); ++t) {
        if (t + 1 >= k_ && s.variances[t] > max_variance) {
          max_variance = s.variances[t];
        }
      }
    }
    return max_variance;
  }

  /// Mean QoE the SafeAgent would attain at variance threshold `alpha`:
  /// bit-identical to a full EvaluatePolicy(...).MeanQoe() with a fresh
  /// SafeAgent, at environment-stepping cost (no network inference).
  /// Per-trace replays fan out over the pool.
  double MeanQoeAt(double alpha) {
    return MeanQoeWith([&](const ReplaySession& session) {
      return FirstTriggerStep(session, alpha, k_, l_);
    });
  }

  /// Mean QoE the SafeAgent would attain with the binary trigger (the ND
  /// scheme's fixed thresholding): bit-identical to the full evaluation
  /// the same way. This is the calibration TARGET, derived from the same
  /// recording the candidates replay against.
  double MeanQoeAtBinaryTrigger() {
    return MeanQoeWith([&](const ReplaySession& session) {
      return FirstBinaryTriggerStep(session, l_);
    });
  }

 private:
  /// One no-default rollout under the greedy learned policy. Purely
  /// trajectory: estimator scoring happens later in ScoreWith, over the
  /// states recorded here.
  ReplaySession Record(Env& env, mdp::Policy& driver,
                       const traces::Trace& trace,
                       std::vector<ResumePoint>& snapshots) const {
    ReplaySession session;
    snapshots.clear();
    env.SetFixedTrace(trace);
    driver.Reset();
    mdp::State state = env.Reset();
    bool done = false;
    while (!done) {
      // Resume point entering step t: exactly what a SafeAgent that
      // defaults on step t would resume from (the prefix actions already
      // applied).
      snapshots.push_back(env.SaveResumePoint());
      session.states.push_back(state);
      session.reward_prefix.push_back(session.total_qoe);
      const mdp::Action action = driver.SelectAction(state);
      mdp::StepResult step = env.Step(action);
      session.actions.push_back(action);
      session.rewards.push_back(step.reward);
      session.total_qoe += step.reward;
      state = std::move(step.next_state);
      done = step.done;
    }
    OSAP_CHECK_MSG(!session.actions.empty(),
                   "CalibrationReplay: empty session");
    return session;
  }

  /// Shared trigger-scan + suffix-replay loop: `first_trigger_of` maps a
  /// session to its firing step (or kReplayNoTrigger) for the trigger
  /// being evaluated.
  template <typename FirstTriggerFn>
  double MeanQoeWith(const FirstTriggerFn& first_trigger_of) {
    OSAP_CHECK_MSG(scored_, "CalibrationReplay: call ScoreWith first");
    std::vector<double> qoe(sessions_.size(), 0.0);
    struct alignas(64) WorkerScratch {
      std::shared_ptr<mdp::Policy> fallback;
      std::optional<Env> env;
    };
    std::vector<WorkerScratch> scratch(pool_.SlotCount());
    pool_.ParallelFor(
        0, sessions_.size(),
        [&](std::size_t i) {
          const std::size_t first = first_trigger_of(sessions_[i]);
          if (first == kReplayNoTrigger) {
            qoe[i] = sessions_[i].total_qoe;
            return;
          }
          WorkerScratch& ws = scratch[util::ThreadPool::CurrentSlot()];
          if (ws.fallback == nullptr) {
            ws.fallback = make_fallback_();
            OSAP_CHECK_MSG(ws.fallback != nullptr,
                           "CalibrationReplay: null fallback policy");
            ws.env.emplace(env_);
          }
          qoe[i] = ReplayQoe(sessions_[i], snapshots_[i][first], first,
                             *ws.fallback, *ws.env);
        },
        options_);
    return Mean(qoe);
  }

  /// Restores the resume point taken entering `first_trigger` into the
  /// worker's env and runs the fallback policy to the end (the SafeAgent
  /// switches policies on the firing step itself). The running total
  /// starts from the recorded prefix sum and suffix rewards accumulate in
  /// step order, matching Trajectory::TotalReward exactly.
  double ReplayQoe(const ReplaySession& session, const ResumePoint& resume,
                   std::size_t first_trigger, mdp::Policy& fallback,
                   Env& env) const {
    env.RestoreResumePoint(resume);
    fallback.Reset();
    double total = session.reward_prefix[first_trigger];
    mdp::State state = session.states[first_trigger];
    bool done = false;
    while (!done) {
      mdp::StepResult step = env.Step(fallback.SelectAction(state));
      total += step.reward;
      state = std::move(step.next_state);
      done = step.done;
    }
    return total;
  }

  PolicyFactory make_fallback_;
  Env env_;
  std::span<const traces::Trace> traces_;
  std::size_t k_;
  std::size_t l_;
  util::ThreadPool& pool_;
  util::ParallelOptions options_;
  std::vector<ReplaySession> sessions_;
  /// snapshots_[i][t]: env dynamic state entering step t of session i.
  /// The resume points hold non-owning trace pointers into `traces_`,
  /// which outlives this object by contract.
  std::vector<std::vector<ResumePoint>> snapshots_;
  bool scored_ = false;
};

}  // namespace osap::core
