// Per-chunk session tracing: streams one video session and records every
// decision with its consequences (bitrate, download time, rebuffering,
// buffer level, measured throughput, reward) plus - when the policy is a
// SafeAgent - whether the default policy was in control. This is the
// instrumentation behind the examples' chunk-by-chunk logs and a useful
// debugging surface for downstream users; WriteSessionCsv exports a trace
// for external plotting.
#pragma once

#include <cstddef>
#include <filesystem>
#include <vector>

#include "abr/abr_environment.h"
#include "mdp/policy.h"
#include "traces/trace.h"

namespace osap::core {

/// One streamed chunk and everything observable about it.
struct ChunkRecord {
  std::size_t chunk = 0;
  mdp::Action action = 0;
  double bitrate_kbps = 0.0;
  double download_seconds = 0.0;
  double rebuffer_seconds = 0.0;
  double buffer_seconds = 0.0;
  double throughput_mbps = 0.0;
  double reward = 0.0;
  /// True when a SafeAgent had handed control to its default policy for
  /// this decision (always false for plain policies).
  bool defaulted = false;
};

/// A fully traced session.
struct SessionTrace {
  std::vector<ChunkRecord> chunks;

  /// Session QoE (sum of per-chunk rewards).
  double TotalQoe() const;

  /// Total stall time across the session.
  double TotalRebufferSeconds() const;

  /// Number of bitrate switches (chunks whose action differs from the
  /// previous chunk's).
  std::size_t SwitchCount() const;

  /// Index of the first chunk streamed under the default policy, or
  /// chunks.size() when the safety net never fired / no SafeAgent.
  std::size_t FirstDefaultedChunk() const;

  /// Fraction of decisions made by the default policy.
  double DefaultedFraction() const;
};

/// Streams one full video over `trace` with `policy` (Reset on both) and
/// records every chunk.
SessionTrace StreamSession(abr::AbrEnvironment& env, mdp::Policy& policy,
                           const traces::Trace& trace);

/// Writes a session trace as CSV (one row per chunk, header included).
void WriteSessionCsv(const SessionTrace& session,
                     const std::filesystem::path& path);

}  // namespace osap::core
