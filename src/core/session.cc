#include "core/session.h"

#include "core/safe_agent.h"
#include "util/check.h"
#include "util/csv.h"

namespace osap::core {

double SessionTrace::TotalQoe() const {
  double total = 0.0;
  for (const ChunkRecord& c : chunks) total += c.reward;
  return total;
}

double SessionTrace::TotalRebufferSeconds() const {
  double total = 0.0;
  for (const ChunkRecord& c : chunks) total += c.rebuffer_seconds;
  return total;
}

std::size_t SessionTrace::SwitchCount() const {
  std::size_t switches = 0;
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    if (chunks[i].action != chunks[i - 1].action) ++switches;
  }
  return switches;
}

std::size_t SessionTrace::FirstDefaultedChunk() const {
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (chunks[i].defaulted) return i;
  }
  return chunks.size();
}

double SessionTrace::DefaultedFraction() const {
  if (chunks.empty()) return 0.0;
  std::size_t defaulted = 0;
  for (const ChunkRecord& c : chunks) {
    if (c.defaulted) ++defaulted;
  }
  return static_cast<double>(defaulted) /
         static_cast<double>(chunks.size());
}

SessionTrace StreamSession(abr::AbrEnvironment& env, mdp::Policy& policy,
                           const traces::Trace& trace) {
  env.SetFixedTrace(trace);
  policy.Reset();
  auto* safe = dynamic_cast<SafeAgent*>(&policy);

  SessionTrace session;
  mdp::State state = env.Reset();
  bool done = false;
  std::size_t chunk = 0;
  while (!done) {
    ChunkRecord record;
    record.chunk = chunk;
    record.action = policy.SelectAction(state);
    // SafeAgent updates its defaulted flag inside SelectAction, so this
    // reflects who actually made the decision above.
    record.defaulted = safe != nullptr && safe->Defaulted();
    const mdp::StepResult result = env.Step(record.action);
    const abr::DownloadResult& d = env.LastDownload();
    record.bitrate_kbps =
        env.video().BitrateKbps(static_cast<std::size_t>(record.action));
    record.download_seconds = d.download_seconds;
    record.rebuffer_seconds = d.rebuffer_seconds;
    record.buffer_seconds = d.buffer_seconds;
    record.throughput_mbps = d.throughput_mbps;
    record.reward = result.reward;
    session.chunks.push_back(record);
    state = result.next_state;
    done = result.done;
    ++chunk;
  }
  return session;
}

void WriteSessionCsv(const SessionTrace& session,
                     const std::filesystem::path& path) {
  CsvWriter writer(path);
  writer.WriteHeader({"chunk", "action", "bitrate_kbps", "download_s",
                      "rebuffer_s", "buffer_s", "throughput_mbps", "reward",
                      "defaulted"});
  for (const ChunkRecord& c : session.chunks) {
    writer.WriteNumericRow({static_cast<double>(c.chunk),
                            static_cast<double>(c.action), c.bitrate_kbps,
                            c.download_seconds, c.rebuffer_seconds,
                            c.buffer_seconds, c.throughput_mbps, c.reward,
                            c.defaulted ? 1.0 : 0.0});
  }
}

}  // namespace osap::core
