// The experiment workbench: one object that owns everything needed to
// regenerate the paper's evaluation - datasets, trained agents, ensembles,
// fitted novelty detectors, calibrated thresholds - with an on-disk cache
// so that the per-figure bench binaries are cheap after the first run.
//
// The workbench reproduces the paper's pipeline per training distribution:
//   1. build the dataset (70/30 split, validation = 30% of train);
//   2. train an ensemble of 5 Pensieve agents (A2C; member 0 is "the"
//      deployed agent) on the training traces;
//   3. train an ensemble of 5 external value functions on experience from
//      the deployed agent;
//   4. fit the U_S OC-SVM on [mean, stddev] throughput-window features
//      from the deployed agent's training sessions (k = 5 empirical /
//      30 synthetic);
//   5. evaluate the ND scheme in-distribution (validation traces) and
//      calibrate the U_pi / U_V variance thresholds alpha to match it.
// Evaluation then runs any scheme against any test distribution's held-out
// test traces.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "abr/abr_environment.h"
#include "core/calibration.h"
#include "core/ensemble_estimators.h"
#include "core/evaluation.h"
#include "core/novelty_detector.h"
#include "core/safe_agent.h"
#include "policies/pensieve_net.h"
#include "rl/a2c.h"
#include "rl/value_trainer.h"
#include "traces/dataset.h"
#include "util/thread_pool.h"

namespace osap::core {

/// Everything Figure 1-5 compares.
enum class Scheme {
  kPensieve = 0,          // vanilla learned policy (no safety assurance)
  kBufferBased = 1,       // the default policy by itself
  kRandom = 2,            // the naive baseline anchoring the score scale
  kNoveltyDetection = 3,  // Pensieve + U_S safety net ("ND")
  kAgentEnsemble = 4,     // Pensieve + U_pi safety net ("A-ensemble")
  kValueEnsemble = 5,     // Pensieve + U_V safety net ("V-ensemble")
};

std::string SchemeName(Scheme scheme);

/// The three safety-enhanced variants, in the paper's order.
std::vector<Scheme> SafetySchemes();

struct WorkbenchConfig {
  traces::DatasetConfig dataset;

  /// Video length in 48-chunk units for training episodes and evaluation
  /// sessions. The paper streams the 5x-concatenated (240-chunk) video;
  /// training on full-length sessions is also what makes the agent learn
  /// buffer management across multiple drain cycles.
  std::size_t train_video_repeats = 5;
  std::size_t eval_video_repeats = 5;

  policies::PensieveNetConfig net;
  rl::A2cConfig a2c;
  rl::ValueTrainConfig value_train;

  std::size_t ensemble_size = 5;
  std::size_t ensemble_discard = 2;

  std::size_t nd_window = 10;
  std::size_t nd_k_empirical = 5;
  std::size_t nd_k_synthetic = 30;
  double nd_nu = 0.05;

  /// Trigger parameters (paper Section 3.1): l consecutive uncertain
  /// steps; k-step variance window for the continuous signals.
  std::size_t trigger_l = 3;
  std::size_t trigger_k = 5;

  CalibrationConfig calibration;

  std::filesystem::path cache_dir = "osap_cache";
  bool use_cache = true;
  std::uint64_t seed = 7;

  /// Worker-thread budget for per-trace evaluation rollouts, per-member
  /// ensemble training, ND feature collection, and calibration. 0 =
  /// hardware concurrency; 1 reproduces the serial path. The budget caps
  /// the process-wide shared pool (util::ThreadPool::Shared()) per call
  /// rather than sizing a private pool. Results are bit-identical at
  /// every setting (see DESIGN.md "Threading model"), so this
  /// deliberately does NOT enter CacheKey().
  std::size_t threads = 0;

  /// Calibrate alpha by record-and-replay (one recorded no-default
  /// rollout per validation trace; candidates scan the recorded variance
  /// series and replay only the post-default suffix) instead of a full
  /// SafeAgent re-evaluation per bisection iteration. Bit-identical
  /// results either way (the equivalence is pinned by tests), so this
  /// also stays out of CacheKey(); the flag exists for those tests.
  bool calibration_replay = true;

  /// Select thresholds by conformal quantile calibration over the same
  /// replay recordings (DESIGN.md §11) instead of the QoE bisection:
  /// per-session never-trigger nonconformity scores, threshold = the
  /// conformal-rank order statistic, plus a bounded QoE refinement
  /// against the ND target. Requires calibration_replay. The selected
  /// alphas differ from the bisection's (the QoE matches within
  /// CalibrationConfig::tolerance but the search is different), so this
  /// DOES enter CacheKey() — the bisection default keeps its key.
  bool conformal_calibration = false;

  /// Target session miscoverage for conformal mode; < 0 derives epsilon
  /// from the ND scheme's recorded session default rate (the paper's
  /// QoE-match contract).
  double conformal_miscoverage = -1.0;

  /// Order statistics probed either side of the conformal rank when
  /// refining against the ND QoE target (0 = pure rank selection, no
  /// suffix replays at all).
  std::size_t conformal_refine_radius = 1;
};

/// A WorkbenchConfig sized for unit/integration tests: tiny nets, few
/// episodes, few traces. Behavioural shape is preserved; wall-time is not.
WorkbenchConfig FastWorkbenchConfig();

/// Per-training-distribution artifacts.
struct TrainedBundle {
  traces::DatasetId id{};
  std::vector<std::shared_ptr<nn::ActorCriticNet>> agents;
  std::vector<std::shared_ptr<nn::CompositeNet>> value_nets;
  std::shared_ptr<NoveltyDetector> novelty;
  double alpha_pi = 0.0;
  double alpha_v = 0.0;
  /// ND scheme's in-distribution (validation) QoE - the calibration target.
  double nd_in_dist_qoe = 0.0;
};

class Workbench {
 public:
  explicit Workbench(WorkbenchConfig config = {});

  const WorkbenchConfig& config() const { return config_; }

  /// Digest of every behaviour-affecting config field; names the cache
  /// directory so stale caches are never reused.
  std::string CacheKey() const;

  /// Lazily builds and memoizes a dataset / trained bundle.
  const traces::Dataset& DatasetFor(traces::DatasetId id);
  const TrainedBundle& BundleFor(traces::DatasetId id);

  /// Evaluates a scheme trained on `train` against `test`'s held-out test
  /// traces (memoized). Baseline schemes ignore `train`.
  const EvalResult& Evaluate(Scheme scheme, traces::DatasetId train,
                             traces::DatasetId test);

  /// Paper-normalized mean score on `test`: 0 = Random, 1 = BB.
  double NormalizedMean(Scheme scheme, traces::DatasetId train,
                        traces::DatasetId test);

  /// Per-trace normalized scores (for CDFs); trace-wise normalization
  /// uses the per-dataset mean Random/BB QoE.
  std::vector<double> NormalizedPerTrace(Scheme scheme,
                                         traces::DatasetId train,
                                         traces::DatasetId test);

  /// Fresh evaluation environment (240-chunk video).
  abr::AbrEnvironment MakeEvalEnvironment() const;

  /// Fresh training environment (48-chunk video) pooled over the
  /// dataset's training traces.
  abr::AbrEnvironment MakeTrainEnvironment(traces::DatasetId id);

  /// Builds the policy a scheme evaluates with: baselines, vanilla
  /// Pensieve, or a SafeAgent wrapping Pensieve with the scheme's
  /// estimator and (calibrated) trigger.
  std::shared_ptr<mdp::Policy> MakePolicy(Scheme scheme,
                                          traces::DatasetId train);

  const abr::VideoSpec& eval_video() const { return eval_video_; }
  const abr::AbrStateLayout& layout() const { return layout_; }

 private:
  WorkbenchConfig config_;
  abr::VideoSpec train_video_;
  abr::VideoSpec eval_video_;
  abr::AbrStateLayout layout_;

  std::map<traces::DatasetId, traces::Dataset> datasets_;
  std::map<traces::DatasetId, TrainedBundle> bundles_;
  std::map<std::tuple<int, int, int>, EvalResult> eval_cache_;

  /// Total threads applied to parallel sections (>= 1).
  std::size_t ResolvedThreads() const;
  /// The process-wide shared pool; the thread budget is applied per call
  /// through EvalOptions(), not by sizing the pool.
  util::ThreadPool& Pool() const;
  /// ParallelFor options implementing the `threads` budget: at most
  /// ResolvedThreads() - 1 pool workers join the caller, one whole
  /// item (session / member) per claim.
  util::ParallelOptions EvalOptions() const;

  /// Thread-safe MakePolicy core: builds a policy for `scheme` from an
  /// already-materialized bundle without touching workbench caches.
  /// `bundle` may be null only for bundle-free schemes (BB, Random).
  std::shared_ptr<mdp::Policy> MakePolicyFromBundle(
      Scheme scheme, const TrainedBundle* bundle) const;

  std::filesystem::path BundleDir(traces::DatasetId id) const;
  NoveltyDetectorConfig NdConfigFor(traces::DatasetId id) const;
  void TrainOrLoadAgents(TrainedBundle& bundle);
  void TrainOrLoadValueNets(TrainedBundle& bundle);
  void FitOrLoadNoveltyDetector(TrainedBundle& bundle);
  void CalibrateOrLoadThresholds(TrainedBundle& bundle);

  std::shared_ptr<mdp::Policy> MakeGreedyPensieve(
      const TrainedBundle& bundle) const;
  std::shared_ptr<mdp::Policy> MakeBufferBased() const;
  SafeAgentConfig TriggerFor(Scheme scheme, const TrainedBundle& bundle) const;
};

}  // namespace osap::core
