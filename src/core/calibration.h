// Threshold calibration (paper Sections 2.5 and 3.1).
//
// To compare schemes built on incommensurable uncertainty signals fairly,
// the paper fixes the U_S (ND) scheme's thresholding strategy and then
// calibrates the U_pi / U_V variance thresholds alpha so that all three
// schemes attain the SAME in-distribution QoE. In-distribution QoE is an
// increasing function of alpha (a higher threshold defaults less and the
// learned policy dominates the default in-distribution), so a bisection
// over alpha suffices.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <stdexcept>

#include "core/uncertainty.h"
#include "mdp/environment.h"
#include "util/stats.h"
#include "mdp/policy.h"
#include "traces/trace.h"

namespace osap::core {

struct CalibrationConfig {
  /// Stop when |achieved - target| <= tolerance * max(|target|, 1).
  double tolerance = 0.02;
  std::size_t max_iterations = 14;
};

struct CalibrationResult {
  double alpha = 0.0;
  double achieved_qoe = 0.0;
  double target_qoe = 0.0;
  std::size_t iterations = 0;
};

/// Bisects alpha in [alpha_lo, alpha_hi] so that `in_dist_qoe(alpha)`
/// matches `target_qoe`. Returns the evaluated alpha whose QoE was closest
/// to the target. `in_dist_qoe` is typically "mean QoE of the safety-
/// enhanced agent over the training distribution's validation traces".
CalibrationResult CalibrateAlpha(
    const std::function<double(double)>& in_dist_qoe, double target_qoe,
    double alpha_lo, double alpha_hi, const CalibrationConfig& config = {});

/// Upper bound for the alpha search: the maximum k-step sliding-window
/// variance of `estimator`'s score observed while `driver` streams the
/// given traces. Any alpha above this never defaults on these sessions.
/// Works with any trace-replaying environment (AbrEnvironment,
/// cc::CcEnvironment, ...): `Env` needs SetFixedTrace / Reset / Step.
template <typename Env>
double MaxWindowVariance(UncertaintyEstimator& estimator,
                         mdp::Policy& driver, Env& env,
                         std::span<const traces::Trace> traces,
                         std::size_t k) {
  if (traces.empty()) {
    throw std::invalid_argument("MaxWindowVariance: no traces");
  }
  if (k < 2) {
    throw std::invalid_argument("MaxWindowVariance: k must be >= 2");
  }
  double max_variance = 0.0;
  for (const traces::Trace& trace : traces) {
    env.SetFixedTrace(trace);
    estimator.Reset();
    driver.Reset();
    SlidingWindowStats window(k);
    mdp::State state = env.Reset();
    bool done = false;
    while (!done) {
      window.Push(estimator.Score(state));
      if (window.Full()) {
        max_variance = std::max(max_variance, window.Variance());
      }
      mdp::StepResult step = env.Step(driver.SelectAction(state));
      state = std::move(step.next_state);
      done = step.done;
    }
  }
  return max_variance;
}

}  // namespace osap::core
