// The defaulting trigger (paper Section 2.5): converts the per-step
// uncertainty score into the decision to abandon the learned policy.
//
// Two thresholding modes cover the paper's schemes:
//  - kBinary (U_S): a step is uncertain when the score is 1 (the OC-SVM
//    says out-of-distribution); the trigger fires after l consecutive
//    uncertain steps (paper: l = 3).
//  - kWindowVariance (U_pi / U_V): the score is pushed into a sliding
//    window of the last k steps (paper: k = 5); a step is uncertain when
//    the window variance exceeds alpha; the trigger fires after l
//    consecutive uncertain steps. alpha is set by calibration
//    (calibration.h).
#pragma once

#include <cstddef>

#include "util/stats.h"

namespace osap::core {

enum class TriggerMode {
  kBinary,
  kWindowVariance,
};

struct TriggerConfig {
  TriggerMode mode = TriggerMode::kBinary;
  /// Sliding-window length for kWindowVariance.
  std::size_t k = 5;
  /// Consecutive uncertain steps required to fire.
  std::size_t l = 3;
  /// Variance threshold for kWindowVariance (ignored by kBinary).
  double alpha = 0.0;
};

class DefaultTrigger {
 public:
  explicit DefaultTrigger(TriggerConfig config);

  /// Consumes one uncertainty score; returns true when the defaulting
  /// condition is met at this step (the caller latches the decision).
  bool Update(double score);

  /// Uncertain-step streak length so far.
  std::size_t ConsecutiveUncertain() const { return consecutive_; }

  /// Variance of the current score window (kWindowVariance diagnostics).
  double WindowVariance() const { return window_.Variance(); }

  void Reset();

  const TriggerConfig& config() const { return config_; }

 private:
  TriggerConfig config_;
  SlidingWindowStats window_;
  std::size_t consecutive_ = 0;
};

}  // namespace osap::core
