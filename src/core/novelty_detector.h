// U_S: novelty detection over observed environment states (paper
// Sections 2.4 and 3.1).
//
// Per step, the detector computes the mean and standard deviation of the
// `throughput_window` (10) most recent measured network throughputs; a
// sample is the concatenation of the `k` latest such [mean, stddev] pairs
// (k = 5 for the empirical datasets, 30 for the synthetic ones). A one-class
// SVM trained on samples from the training distribution classifies each
// test sample as in-distribution (+1) or out-of-distribution (-1); the
// Score is 0 / 1 accordingly.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "abr/state.h"
#include "core/uncertainty.h"
#include "svm/ocsvm.h"
#include "util/stats.h"

namespace osap::core {

struct NoveltyDetectorConfig {
  /// Throughput samples per [mean, stddev] pair.
  std::size_t throughput_window = 10;
  /// Number of latest pairs per OC-SVM sample (paper: 5 empirical /
  /// 30 synthetic).
  std::size_t k = 5;
  svm::OcSvmConfig svm;
};

/// Streams throughput observations into OC-SVM feature vectors; shared by
/// online detection and offline training-set extraction so both see
/// identical features.
///
/// All variable state (the throughput window plus the [mean, stddev] pair
/// ring) fits in StorageDoubles(config) doubles. The config constructor
/// allocates it privately; the placement constructor carves it from
/// caller-owned memory, which is how the serving path packs thousands of
/// per-session extractors into shard slabs with zero private
/// allocations. Copies are deep into owned storage; moves steal it.
class NoveltyFeatureExtractor {
 public:
  explicit NoveltyFeatureExtractor(const NoveltyDetectorConfig& config);

  /// Places the extractor's variable state into `storage` (>=
  /// StorageDoubles(config) doubles, uninitialized is fine). The caller
  /// keeps the memory alive and in place for the extractor's lifetime.
  NoveltyFeatureExtractor(const NoveltyDetectorConfig& config,
                          std::span<double> storage);

  ~NoveltyFeatureExtractor();
  NoveltyFeatureExtractor(const NoveltyFeatureExtractor& other);
  NoveltyFeatureExtractor& operator=(const NoveltyFeatureExtractor& other);
  NoveltyFeatureExtractor(NoveltyFeatureExtractor&& other) noexcept;
  NoveltyFeatureExtractor& operator=(NoveltyFeatureExtractor&& other) noexcept;

  /// Doubles of backing storage an extractor for `config` needs: the
  /// throughput window plus k interleaved [mean, stddev] pairs.
  static std::size_t StorageDoubles(const NoveltyDetectorConfig& config) {
    return config.throughput_window + 2 * config.k;
  }

  /// Pushes one throughput observation (Mbps). Returns the feature vector
  /// (2k dims: k x [mean, stddev], oldest pair first) once enough history
  /// has accumulated, std::nullopt during warm-up.
  std::optional<std::vector<double>> Push(double throughput_mbps);

  /// Allocation-free overload: writes the feature into `out` (>= 2k dims)
  /// and returns true, or returns false during warm-up with `out`
  /// untouched. Same streaming state and values as the optional overload;
  /// this is what the serving path stages shard batches through.
  bool Push(double throughput_mbps, std::span<double> out);

  /// Feature dimensionality (2k).
  std::size_t FeatureSize() const { return 2 * k_; }

  void Reset();

 private:
  SlidingWindowStats window_;
  // k latest [mean, stddev] pairs, interleaved in a fixed-capacity ring
  // (head_ indexes the oldest). A deque here would hit the allocator on
  // every eviction; the serving path pushes one pair per session per
  // round, so the pair history is hot state and must stay
  // allocation-free after warm-up.
  double* pairs_ = nullptr;
  std::unique_ptr<double[]> owned_pairs_;  // set iff pairs_ is private
  std::uint32_t k_ = 0;
  std::uint32_t head_ = 0;   // index of oldest pair once the ring is full
  std::uint32_t count_ = 0;  // pairs currently held (< k during warm-up)
};

class NoveltyDetector final : public UncertaintyEstimator {
 public:
  /// Extracts the monitored scalar from an observation; values <= 0 are
  /// treated as "no measurement yet" (warm-up) and skipped.
  using Probe = std::function<double(const mdp::State&)>;

  /// ABR convenience constructor: monitors the newest measured chunk
  /// throughput from the Pensieve state encoding.
  NoveltyDetector(NoveltyDetectorConfig config,
                  const abr::AbrStateLayout& layout);

  /// Domain-agnostic constructor: monitors whatever scalar `probe`
  /// extracts from the state (e.g. the send/deliver ratio of a congestion
  /// control agent). OSAP itself is domain-independent (paper Section 2);
  /// only this observation probe is application-specific.
  NoveltyDetector(NoveltyDetectorConfig config, Probe probe);

  /// Extracts every feature vector from one session's chunk-throughput
  /// sequence (offline training-set construction).
  static std::vector<std::vector<double>> ExtractFeatures(
      std::span<const double> throughput_sequence,
      const NoveltyDetectorConfig& config);

  /// Fits the OC-SVM on features extracted from training sessions.
  void Fit(const std::vector<std::vector<double>>& features);

  // UncertaintyEstimator
  void Reset() override;
  double Score(const mdp::State& state) override;
  bool Ready() const override { return ready_; }
  std::string Name() const override { return "novelty_detection"; }

  bool Fitted() const { return model_.Fitted(); }
  const svm::OneClassSvm& model() const { return model_; }
  /// The observation probe (shared by the serving path's per-session
  /// extractors so they see exactly the scalar Score would monitor).
  const Probe& probe() const { return probe_; }
  const NoveltyDetectorConfig& config() const { return config_; }

  /// Model persistence (the workbench caches fitted detectors).
  void Save(const std::filesystem::path& path) const;
  void LoadModel(const std::filesystem::path& path);

 private:
  NoveltyDetectorConfig config_;
  Probe probe_;
  svm::OneClassSvm model_;
  NoveltyFeatureExtractor extractor_;
  bool ready_ = false;
};

}  // namespace osap::core
