// SafetyCore: the per-session half of the SafeAgent split - the defaulting
// state machine (trigger, defaulted flag, revocation streak, step counters)
// with no policies or estimators attached. One SafetyCore is a few dozen
// bytes of mutable state, so a serving shard keeps one per session and
// feeds it scores computed by the shared immutable models (EnsembleModel /
// OneClassSvm); SafeAgent composes the same class behind mdp::Policy for
// the sequential loop. Both paths therefore run literally the same state
// machine, which is how the service's batched decisions stay bit-identical
// to the sequential agent (pinned by equivalence tests).
#pragma once

#include <cstddef>

#include "core/trigger.h"

namespace osap::core {

enum class DefaultingMode {
  kPermanent,  // paper behaviour: default for the rest of the session
  kRevocable,  // ablation: return to the learned policy when safe again
};

struct SafeAgentConfig {
  TriggerConfig trigger;
  DefaultingMode mode = DefaultingMode::kPermanent;
  /// kRevocable: consecutive non-firing, certain steps needed to revoke.
  std::size_t revoke_after = 15;
};

class SafetyCore {
 public:
  explicit SafetyCore(const SafeAgentConfig& config);

  /// One decision step: feeds this step's uncertainty score through the
  /// trigger and the defaulting/revocation state machine. Returns true
  /// when this step's action must come from the default policy.
  bool Observe(double score);

  void Reset();

  /// True while actions come from the default policy.
  bool Defaulted() const { return defaulted_; }

  /// Steps observed in the current session (decisions made).
  std::size_t StepCount() const { return steps_; }

  /// Step index at which the session defaulted (meaningful when
  /// Defaulted() has ever been true this session; 0 otherwise).
  std::size_t DefaultStep() const { return default_step_; }

  /// Fraction of this session's decisions made by the default policy.
  double DefaultedFraction() const;

 private:
  SafeAgentConfig config_;
  DefaultTrigger trigger_;

  bool defaulted_ = false;
  std::size_t steps_ = 0;
  std::size_t default_step_ = 0;
  std::size_t defaulted_steps_ = 0;
  std::size_t certain_streak_ = 0;  // kRevocable bookkeeping
};

}  // namespace osap::core
