// SafetyCore: the per-session half of the SafeAgent split - the defaulting
// state machine (trigger, defaulted flag, revocation streak, step counters)
// with no policies or estimators attached. SafeAgent composes it behind
// mdp::Policy for the sequential loop; the serving path runs the same
// machine over dense per-shard arrays.
//
// The machine itself is the free function SafetyObserve over two PODs:
// SafetyState packs the hot fields an epoch scan touches (trigger window
// moments + ring cursors + streaks, 48 bytes) and SafetyCold the fields
// only introspection reads. The variance trigger's score ring lives in
// caller-provided memory - SafetyCore gives it a private heap buffer, a
// serving shard packs all its sessions' rings into one contiguous array -
// so one session costs tens of bytes, not an allocation. Both callers run
// literally the same arithmetic in the same order, which is how the
// service's batched decisions stay bit-identical to the sequential
// SafeAgent (pinned by equivalence tests).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/trigger.h"

namespace osap::core {

enum class DefaultingMode {
  kPermanent,  // paper behaviour: default for the rest of the session
  kRevocable,  // ablation: return to the learned policy when safe again
};

struct SafeAgentConfig {
  TriggerConfig trigger;
  DefaultingMode mode = DefaultingMode::kPermanent;
  /// kRevocable: consecutive non-firing, certain steps needed to revoke.
  std::size_t revoke_after = 15;
};

/// Validates the requirements DefaultTrigger and SafetyCore enforce
/// (l >= 1; variance mode: k >= 2 and alpha >= 0; revocable:
/// revoke_after >= 1). Throws std::invalid_argument on violation. Callers
/// that bypass the SafetyCore constructor (the serving path's dense
/// tables) validate through this instead.
void ValidateSafeAgentConfig(const SafeAgentConfig& config);

/// Hot per-session defaulting state: everything one SafetyObserve step
/// reads and writes except the score ring. Plain data so a serving shard
/// keeps its sessions in one dense array (struct-of-arrays session
/// table); zero-initialization is the fresh-session state.
struct SafetyState {
  double win_sum = 0.0;              // variance-trigger window moments
  double win_sq = 0.0;
  std::uint32_t win_size = 0;        // scores currently in the ring
  std::uint32_t win_head = 0;        // oldest ring slot once full
  std::uint32_t consecutive = 0;     // uncertain-step streak
  std::uint32_t certain_streak = 0;  // kRevocable bookkeeping
  std::uint32_t steps = 0;           // decisions made this session
  std::uint32_t defaulted_steps = 0;
  bool defaulted = false;
};

/// Cold per-session fields: written at most once per defaulting episode,
/// read only by introspection - split out so the epoch scan's cache lines
/// carry hot state only.
struct SafetyCold {
  std::uint32_t default_step = 0;  // step index the session defaulted at
};

/// Score-ring doubles SafetyObserve needs per session for `config`
/// (trigger.k for the variance trigger, 0 for the binary trigger - binary
/// U_S sessions pay no ring bytes at all).
inline std::size_t SafetyRingDoubles(const SafeAgentConfig& config) {
  return config.trigger.mode == TriggerMode::kWindowVariance
             ? config.trigger.k
             : 0;
}

/// One decision step of the defaulting state machine with an explicit
/// trigger threshold: feeds `score` through the trigger
/// (DefaultTrigger::Update semantics, with the sliding window living in
/// `ring`) and the defaulting/revocation logic, comparing against
/// `alpha` instead of the threshold baked into `config` (for the binary
/// trigger, `alpha` replaces the fixed 0.5 score cut). When
/// `statistic_out` is non-null, the trigger statistic actually compared
/// this step (the full-window variance, or the raw score for the binary
/// trigger) is written to it; it is left untouched on warm-up steps
/// whose window is not yet full. This is the online-calibration entry
/// point: the serving path reads `alpha` from an atomic snapshot and
/// feeds `*statistic_out` to its per-shard quantile sketch
/// (DESIGN.md §11). `ring` must hold SafetyRingDoubles(config) doubles
/// (may be null for the binary trigger). Returns true when this step's
/// action must come from the default policy. `config` must be
/// validated.
inline bool SafetyObserveLive(const SafeAgentConfig& config,
                              SafetyState& state, SafetyCold& cold,
                              double* ring, double score, double alpha,
                              double* statistic_out) {
  // Trigger half: replicates DefaultTrigger::Update (and the
  // SlidingWindowStats push/variance arithmetic it wraps) operation for
  // operation - the float story must match the sequential path exactly.
  bool uncertain = false;
  switch (config.trigger.mode) {
    case TriggerMode::kBinary:
      uncertain = score >= alpha;
      if (statistic_out != nullptr) *statistic_out = score;
      break;
    case TriggerMode::kWindowVariance: {
      const auto k = static_cast<std::uint32_t>(config.trigger.k);
      if (state.win_size < k) {
        ring[state.win_size++] = score;
      } else {
        const double old = ring[state.win_head];
        state.win_sum -= old;
        state.win_sq -= old * old;
        ring[state.win_head] = score;
        state.win_head = (state.win_head + 1) % k;
      }
      state.win_sum += score;
      state.win_sq += score * score;
      // Not uncertain until the window is populated: variance over a
      // partial window would compare incomparable quantities.
      if (state.win_size == k) {
        const double n = static_cast<double>(k);
        const double m = state.win_sum / n;
        // Guard against tiny negative values from cancellation.
        const double variance = std::max(0.0, state.win_sq / n - m * m);
        uncertain = variance > alpha;
        if (statistic_out != nullptr) *statistic_out = variance;
      }
      break;
    }
  }
  state.consecutive = uncertain ? state.consecutive + 1 : 0;
  const bool fired = state.consecutive >= config.trigger.l;

  // Defaulting half: replicates SafetyCore::Observe.
  if (!state.defaulted) {
    if (fired) {
      state.defaulted = true;
      cold.default_step = state.steps;
      state.certain_streak = 0;
    }
  } else if (config.mode == DefaultingMode::kRevocable) {
    // Revoke after a sustained quiet period: the trigger must not fire
    // and the uncertain-streak must be clear.
    if (!fired && state.consecutive == 0) {
      ++state.certain_streak;
      if (state.certain_streak >= config.revoke_after) {
        state.defaulted = false;
        state.certain_streak = 0;
      }
    } else {
      state.certain_streak = 0;
    }
  }

  ++state.steps;
  if (state.defaulted) {
    ++state.defaulted_steps;
    return true;
  }
  return false;
}

/// One decision step at the config's own threshold (the fixed 0.5 score
/// cut for the binary trigger, `config.trigger.alpha` for the variance
/// trigger). The bit-pinned reference arm every equivalence test runs.
inline bool SafetyObserve(const SafeAgentConfig& config, SafetyState& state,
                          SafetyCold& cold, double* ring, double score) {
  return SafetyObserveLive(
      config, state, cold, ring, score,
      config.trigger.mode == TriggerMode::kBinary ? 0.5
                                                  : config.trigger.alpha,
      nullptr);
}

class SafetyCore {
 public:
  explicit SafetyCore(const SafeAgentConfig& config);

  /// One decision step: feeds this step's uncertainty score through the
  /// trigger and the defaulting/revocation state machine. Returns true
  /// when this step's action must come from the default policy.
  bool Observe(double score) {
    return SafetyObserve(config_, state_, cold_, ring_.data(), score);
  }

  void Reset();

  /// True while actions come from the default policy.
  bool Defaulted() const { return state_.defaulted; }

  /// Steps observed in the current session (decisions made).
  std::size_t StepCount() const { return state_.steps; }

  /// Step index at which the session defaulted (meaningful when
  /// Defaulted() has ever been true this session; 0 otherwise).
  std::size_t DefaultStep() const { return cold_.default_step; }

  /// Fraction of this session's decisions made by the default policy.
  double DefaultedFraction() const;

 private:
  SafeAgentConfig config_;
  std::vector<double> ring_;  // variance-trigger score window (k doubles)
  SafetyState state_;
  SafetyCold cold_;
};

}  // namespace osap::core
