// The shared-model half of the U_pi / U_V estimator split: packed ensemble
// weights plus the paper's trim-and-disagree scoring math, with no mutable
// state at all. One EnsembleModel is built per process and serves any
// number of concurrent sessions - the ensemble signals are memoryless, so
// the per-session "context" of these estimators is empty and a serving
// shard can pack every pending session's state into one contiguous batch
// (ScorePacked) and make a single fused pass over the member weights
// instead of one weight-streaming pass per session.
//
// Every entry point is const and thread-safe (scratch is thread-local);
// scores are bit-identical across ScoreOne / ScoreStates / ScorePacked for
// a given state, which is what lets the sharded decision service reproduce
// the sequential SafeAgent loop exactly (pinned by equivalence tests).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mdp/types.h"
#include "nn/ensemble_forward.h"

namespace osap::core {

class EnsembleModel {
 public:
  enum class Kind {
    kPolicyKl,        // U_pi: trimmed KL disagreement over action softmaxes
    kValueDeviation,  // U_V: trimmed absolute deviation over scalar values
  };

  /// Packs the members' weights (snapshot; rebuild after retraining). All
  /// members must share one topology; `discard` must leave >= 1 member.
  EnsembleModel(Kind kind, std::vector<const nn::CompositeNet*> members,
                std::size_t discard);

  /// Scores a single state via the fused single-state inference path
  /// (what the streaming estimators run per decision).
  double ScoreOne(std::span<const double> state) const;

  /// Scores `states` in kScoreBatch-sized blocks; out[i] is bit-identical
  /// to ScoreOne(states[i]). This is the offline-scoring entry (replay
  /// calibration) - blocking bounds the scratch activations.
  void ScoreStates(std::span<const mdp::State> states,
                   std::span<double> out) const;

  /// Scores B pre-packed state rows (B x InputSize; wider rows use the
  /// leading InputSize columns) with ONE fused InferBatch pass over the
  /// whole pack - the serving hot path, where B is a shard's entire
  /// pending-session batch. out[b] is bit-identical to ScoreOne(row b).
  ///
  /// kPolicyKl only: a non-empty `greedy_first` (>= B) additionally
  /// receives member 0's greedy action per row - softmax the logits, take
  /// the first maximal probability, exactly the deployed-policy selection.
  /// The member-0 distributions are already computed for the KL score, so
  /// a U_pi serving shard gets its deployed-actor actions for free instead
  /// of paying a second inference pass over the same weights.
  void ScorePacked(const nn::Matrix& states, std::span<double> out,
                   std::span<mdp::Action> greedy_first = {}) const;

  Kind kind() const { return kind_; }
  std::size_t MemberCount() const { return batched_.MemberCount(); }
  std::size_t InputSize() const { return batched_.InputSize(); }
  std::size_t OutputSize() const { return batched_.OutputSize(); }
  std::size_t Keep() const { return keep_; }

 private:
  nn::BatchedEnsemble batched_;
  Kind kind_;
  std::size_t keep_;
};

}  // namespace osap::core
