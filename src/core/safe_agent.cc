#include "core/safe_agent.h"

#include "util/check.h"

namespace osap::core {

SafeAgent::SafeAgent(std::shared_ptr<mdp::Policy> learned,
                     std::shared_ptr<mdp::Policy> fallback,
                     std::shared_ptr<UncertaintyEstimator> estimator,
                     SafeAgentConfig config)
    : learned_(std::move(learned)),
      fallback_(std::move(fallback)),
      estimator_(std::move(estimator)),
      config_(config),
      trigger_(config.trigger) {
  OSAP_REQUIRE(learned_ != nullptr, "SafeAgent: null learned policy");
  OSAP_REQUIRE(fallback_ != nullptr, "SafeAgent: null default policy");
  OSAP_REQUIRE(estimator_ != nullptr, "SafeAgent: null estimator");
  if (config_.mode == DefaultingMode::kRevocable) {
    OSAP_REQUIRE(config_.revoke_after >= 1,
                 "SafeAgent: revoke_after must be >= 1");
  }
}

mdp::Action SafeAgent::SelectAction(const mdp::State& state) {
  // The estimator observes every step (it maintains sliding windows even
  // while defaulted, which is what makes revocation meaningful).
  const double score = estimator_->Score(state);
  const bool fired = trigger_.Update(score);

  if (!defaulted_) {
    if (fired) {
      defaulted_ = true;
      default_step_ = steps_;
      certain_streak_ = 0;
    }
  } else if (config_.mode == DefaultingMode::kRevocable) {
    // Revoke after a sustained quiet period: the trigger must not fire and
    // the uncertain-streak must be clear.
    if (!fired && trigger_.ConsecutiveUncertain() == 0) {
      ++certain_streak_;
      if (certain_streak_ >= config_.revoke_after) {
        defaulted_ = false;
        certain_streak_ = 0;
      }
    } else {
      certain_streak_ = 0;
    }
  }

  ++steps_;
  if (defaulted_) {
    ++defaulted_steps_;
    return fallback_->SelectAction(state);
  }
  return learned_->SelectAction(state);
}

void SafeAgent::Reset() {
  learned_->Reset();
  fallback_->Reset();
  estimator_->Reset();
  trigger_.Reset();
  defaulted_ = false;
  steps_ = 0;
  default_step_ = 0;
  defaulted_steps_ = 0;
  certain_streak_ = 0;
}

std::string SafeAgent::Name() const {
  return "safe(" + learned_->Name() + "->" + fallback_->Name() + "," +
         estimator_->Name() + ")";
}

double SafeAgent::DefaultedFraction() const {
  if (steps_ == 0) return 0.0;
  return static_cast<double>(defaulted_steps_) /
         static_cast<double>(steps_);
}

}  // namespace osap::core
