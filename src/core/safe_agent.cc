#include "core/safe_agent.h"

#include "util/check.h"

namespace osap::core {

SafeAgent::SafeAgent(std::shared_ptr<mdp::Policy> learned,
                     std::shared_ptr<mdp::Policy> fallback,
                     std::shared_ptr<UncertaintyEstimator> estimator,
                     SafeAgentConfig config)
    : learned_(std::move(learned)),
      fallback_(std::move(fallback)),
      estimator_(std::move(estimator)),
      core_(config) {
  OSAP_REQUIRE(learned_ != nullptr, "SafeAgent: null learned policy");
  OSAP_REQUIRE(fallback_ != nullptr, "SafeAgent: null default policy");
  OSAP_REQUIRE(estimator_ != nullptr, "SafeAgent: null estimator");
}

mdp::Action SafeAgent::SelectAction(const mdp::State& state) {
  // The estimator observes every step (it maintains sliding windows even
  // while defaulted, which is what makes revocation meaningful).
  const double score = estimator_->Score(state);
  if (core_.Observe(score)) {
    return fallback_->SelectAction(state);
  }
  return learned_->SelectAction(state);
}

void SafeAgent::Reset() {
  learned_->Reset();
  fallback_->Reset();
  estimator_->Reset();
  core_.Reset();
}

std::string SafeAgent::Name() const {
  return "safe(" + learned_->Name() + "->" + fallback_->Name() + "," +
         estimator_->Name() + ")";
}

}  // namespace osap::core
