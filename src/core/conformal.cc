#include "core/conformal.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/check.h"

namespace osap::core {

double SessionNonconformity(const ReplaySession& session, std::size_t k,
                            std::size_t l) {
  OSAP_REQUIRE(k >= 2, "SessionNonconformity: k must be >= 2");
  OSAP_REQUIRE(l >= 1, "SessionNonconformity: l must be >= 1");
  const std::size_t steps = session.variances.size();
  if (steps < k - 1 + l) return 0.0;
  // Sliding-window minimum (monotone deque of indices) over the
  // full-window suffix variances[k-1..steps): the trigger fires at
  // threshold alpha iff some l-run of full-window steps all exceed it,
  // i.e. iff alpha < max over runs of the run minimum.
  double best = 0.0;
  std::deque<std::size_t> minima;  // indices, variances increasing
  for (std::size_t t = k - 1; t < steps; ++t) {
    while (!minima.empty() &&
           session.variances[minima.back()] >= session.variances[t]) {
      minima.pop_back();
    }
    minima.push_back(t);
    if (t + 1 >= k - 1 + l) {
      if (minima.front() + l <= t) minima.pop_front();
      best = std::max(best, session.variances[minima.front()]);
    }
  }
  return best;
}

std::vector<double> SessionNonconformities(
    std::span<const ReplaySession> sessions, std::size_t k, std::size_t l) {
  std::vector<double> scores;
  scores.reserve(sessions.size());
  for (const ReplaySession& session : sessions) {
    scores.push_back(SessionNonconformity(session, k, l));
  }
  return scores;
}

double BinaryTriggerRate(std::span<const ReplaySession> sessions,
                         std::size_t l) {
  if (sessions.empty()) return 0.0;
  std::size_t fired = 0;
  for (const ReplaySession& session : sessions) {
    if (FirstBinaryTriggerStep(session, l) != kReplayNoTrigger) ++fired;
  }
  return static_cast<double>(fired) / static_cast<double>(sessions.size());
}

namespace {

/// Shared rank machinery: sorts scores ascending and resolves the
/// conformal rank for epsilon. Rank r > n means "above every
/// calibration score": serve the max (the trigger compares strictly,
/// so the max itself keeps every calibration session default-free).
std::size_t ConformalRank(std::size_t n, double epsilon) {
  const double raw =
      std::ceil(static_cast<double>(n + 1) * (1.0 - epsilon));
  const double clamped = std::clamp(raw, 1.0, static_cast<double>(n));
  return static_cast<std::size_t>(clamped);
}

double EmpiricalMiscoverageAt(std::span<const double> sorted, double alpha) {
  // Sessions default iff their score exceeds alpha (strict compare).
  const auto first_above =
      std::upper_bound(sorted.begin(), sorted.end(), alpha);
  return static_cast<double>(sorted.end() - first_above) /
         static_cast<double>(sorted.size());
}

}  // namespace

ConformalResult ConformalAlpha(std::vector<double> scores,
                               const ConformalConfig& config) {
  OSAP_REQUIRE(!scores.empty(), "ConformalAlpha: no calibration scores");
  OSAP_REQUIRE(config.miscoverage > 0.0 && config.miscoverage < 1.0,
               "ConformalAlpha: miscoverage must be in (0, 1)");
  std::sort(scores.begin(), scores.end());
  ConformalResult result;
  result.sessions = scores.size();
  result.miscoverage = config.miscoverage;
  result.rank = ConformalRank(scores.size(), config.miscoverage);
  result.alpha = scores[result.rank - 1];
  result.empirical_miscoverage =
      EmpiricalMiscoverageAt(scores, result.alpha);
  return result;
}

ConformalResult ConformalAlphaMatchingQoe(
    std::vector<double> scores, const ConformalConfig& config,
    const std::function<double(double)>& qoe_at, double target_qoe) {
  OSAP_REQUIRE(!scores.empty(),
               "ConformalAlphaMatchingQoe: no calibration scores");
  OSAP_REQUIRE(qoe_at != nullptr, "ConformalAlphaMatchingQoe: no oracle");
  std::sort(scores.begin(), scores.end());
  const std::size_t n = scores.size();
  const std::size_t seed = ConformalRank(n, config.miscoverage);
  const std::size_t lo =
      seed > config.refine_radius ? seed - config.refine_radius : 1;
  const std::size_t hi = std::min(n, seed + config.refine_radius);

  // Probe outward from the seed (seed, seed-1, seed+1, ...): with a
  // nonzero tolerance the flat in-distribution QoE surface then costs
  // one probe, not 2*refine_radius + 1.
  std::vector<std::size_t> order;
  order.push_back(seed);
  for (std::size_t d = 1; d <= config.refine_radius; ++d) {
    if (seed >= lo + d) order.push_back(seed - d);
    if (seed + d <= hi) order.push_back(seed + d);
  }
  const double stop_gap =
      config.tolerance > 0.0
          ? config.tolerance * std::max(std::abs(target_qoe), 1.0)
          : -1.0;

  ConformalResult result;
  result.sessions = n;
  double best_gap = std::numeric_limits<double>::infinity();
  std::vector<double> probed;
  for (const std::size_t rank : order) {
    const double alpha = scores[rank - 1];
    if (std::find(probed.begin(), probed.end(), alpha) != probed.end()) {
      continue;  // duplicate order statistic
    }
    probed.push_back(alpha);
    const double qoe = qoe_at(alpha);
    ++result.evaluations;
    const double gap = std::abs(qoe - target_qoe);
    if (gap < best_gap) {
      best_gap = gap;
      result.alpha = alpha;
      result.achieved_qoe = qoe;
      result.rank = rank;
    }
    if (gap <= stop_gap) break;
  }
  // The epsilon this rank corresponds to (invert rank = ceil((n+1)(1-e))).
  result.miscoverage =
      1.0 - static_cast<double>(result.rank) / static_cast<double>(n + 1);
  result.empirical_miscoverage =
      EmpiricalMiscoverageAt(scores, result.alpha);
  return result;
}

StreamingConformal::StreamingConformal(double miscoverage,
                                       std::size_t window,
                                       double initial_alpha)
    : sketch_(1.0 - miscoverage, window),
      miscoverage_(miscoverage),
      alpha_(initial_alpha) {
  OSAP_REQUIRE(miscoverage > 0.0 && miscoverage < 1.0,
               "StreamingConformal: miscoverage must be in (0, 1)");
}

void StreamingConformal::Observe(double statistic) {
  ++observations_;
  if (statistic > alpha_) ++exceedances_;
  sketch_.Add(statistic);
}

double StreamingConformal::RefreshAlpha() {
  if (sketch_.Count() > 0) alpha_ = sketch_.Value();
  return alpha_;
}

}  // namespace osap::core
