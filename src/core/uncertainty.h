// The uncertainty-estimator interface at the heart of OSAP (paper
// Section 2): a per-step scalar signal quantifying how unreliable the
// learned agent's next decision is. Three concrete signals are provided,
// one per MDP term the paper identifies:
//   U_S  - state novelty            (NoveltyDetector, novelty_detector.h)
//   U_pi - policy disagreement      (AgentEnsembleEstimator)
//   U_V  - value disagreement       (ValueEnsembleEstimator)
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "mdp/types.h"

namespace osap::core {

class UncertaintyEstimator {
 public:
  virtual ~UncertaintyEstimator() = default;

  /// Clears per-session state (observation windows); call between
  /// streaming sessions.
  virtual void Reset() = 0;

  /// Consumes the current observation and returns the uncertainty score.
  /// Higher = more uncertain. For the binary U_S signal the score is
  /// 0 (in-distribution) or 1 (out-of-distribution); U_pi / U_V are
  /// continuous and non-negative.
  virtual double Score(const mdp::State& state) = 0;

  /// Scores `states` in order: out[i] is bit-identical to what Score
  /// would have returned for states[i] in the same sequence (stateful
  /// estimators consume the batch exactly as repeated Score calls
  /// would). `out` must have `states.size()` slots. The default loops
  /// Score; the ensemble estimators override it with a fused pass that
  /// streams the packed member weights once per batch instead of once
  /// per state - the win offline scoring passes (replay calibration)
  /// are built on.
  virtual void ScoreBatch(std::span<const mdp::State> states,
                          std::span<double> out) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      out[i] = Score(states[i]);
    }
  }

  /// False while the estimator is still warming up (e.g. the ND window is
  /// not yet full); Score returns 0 in that phase.
  virtual bool Ready() const = 0;

  virtual std::string Name() const = 0;
};

}  // namespace osap::core
